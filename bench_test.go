// Package cadycore's root benchmark suite regenerates every evaluation
// artifact of the paper as a testing.B benchmark (DESIGN.md §4 maps each to
// its figure/table):
//
//	BenchmarkFigure1CommVsComp   — Figure 1 (communication vs computation share)
//	BenchmarkFigure6Collective*  — Figure 6 (collective communication time)
//	BenchmarkFigure7Stencil*     — Figure 7 (stencil communication time)
//	BenchmarkFigure8Runtime*     — Figure 8 (total dynamical-core runtime)
//	BenchmarkTheoryCosts         — Section 5.3 model vs measured counters
//	BenchmarkAblation*           — per-ingredient contribution of Algorithm 2
//	Benchmark<kernel>            — micro-benchmarks of the substrate kernels
//
// The Figure benches report the simulated (LogP-model) times as custom
// metrics: simC_ms (collective), simS_ms (stencil), simT_ms (total),
// comm_pct, and overlap_pct (the hidden share of communication time).
// Real wall time per run is the usual ns/op. Run with
//
//	go test -bench=. -benchmem .
//
// and use cmd/experiments for the full multi-p sweeps.
package cadycore

import (
	"math/rand"
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/field"
	"cadycore/internal/fft"
	"cadycore/internal/filter"
	"cadycore/internal/grid"
	"cadycore/internal/harness"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/operators"
	"cadycore/internal/state"
	"cadycore/internal/topo"
)

// benchOptions is the mesh/model the figure benches run: small enough for
// go test, big enough to show the paper's shapes.
func benchOptions() harness.Options {
	o := harness.Defaults()
	o.Nx, o.Ny, o.Nz = 96, 48, 12
	o.Steps = 1
	o.Ps = []int{16}
	return o
}

func runCell(b *testing.B, alg dycore.Algorithm, p int, mut func(*dycore.Config)) dycore.RunResult {
	b.Helper()
	o := benchOptions()
	g := grid.New(o.Nx, o.Ny, o.Nz)
	cfg := dycore.DefaultConfig()
	cfg.M = o.M
	cfg.Dt1, cfg.Dt2 = o.Dt1, o.Dt2
	if mut != nil {
		mut(&cfg)
	}
	var set dycore.Setup
	if alg == dycore.AlgBaselineXY {
		px, py, ok := harness.XYFactors(p, o.Nx, o.Ny)
		if !ok {
			b.Skip("no X-Y layout")
		}
		set = dycore.Setup{Alg: alg, PA: px, PB: py, Cfg: cfg}
	} else {
		py, pz, ok := harness.YZFactors(p, o.Ny, o.Nz)
		if !ok {
			b.Skip("no Y-Z layout")
		}
		set = dycore.Setup{Alg: alg, PA: py, PB: pz, Cfg: cfg}
	}
	hs := heldsuarez.Standard()
	hook := func(g *grid.Grid, st *state.State, step int) { hs.Apply(g, st, cfg.Dt2) }
	var res dycore.RunResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = dycore.RunWithHook(set, g, o.Model, heldsuarez.InitialState, o.Steps, hook)
	}
	b.StopTimer()
	return res
}

func reportFigureMetrics(b *testing.B, res dycore.RunResult) {
	b.Helper()
	b.ReportMetric(res.Agg.CollectiveTime()*1e3, "simC_ms")
	b.ReportMetric(res.Agg.StencilTime()*1e3, "simS_ms")
	b.ReportMetric(res.Agg.SimTime*1e3, "simT_ms")
	ct := res.Agg.TotalCommTime()
	b.ReportMetric(100*ct/(ct+res.Agg.CompTimeMax), "comm_pct")
	b.ReportMetric(100*res.Agg.OverlapFraction(), "overlap_pct")
}

// ---- Figure 1 ----

func BenchmarkFigure1CommVsComp(b *testing.B) {
	res := runCell(b, dycore.AlgBaselineYZ, 16, nil)
	reportFigureMetrics(b, res)
}

// ---- Figures 6, 7, 8: one bench per algorithm; the simC/simS/simT
// metrics of the three benches are the three series of each figure ----

func BenchmarkFigure678OriginalXY(b *testing.B) {
	reportFigureMetrics(b, runCell(b, dycore.AlgBaselineXY, 16, nil))
}

func BenchmarkFigure678OriginalYZ(b *testing.B) {
	reportFigureMetrics(b, runCell(b, dycore.AlgBaselineYZ, 16, nil))
}

func BenchmarkFigure678CommAvoiding(b *testing.B) {
	reportFigureMetrics(b, runCell(b, dycore.AlgCommAvoid, 16, nil))
}

// ---- Section 5.3 ----

func BenchmarkTheoryCosts(b *testing.B) {
	o := benchOptions()
	var rows []harness.TheoryRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o2 := o
		o2.Prime()
		rows = harness.TheoryTable(o2)
	}
	b.StopTimer()
	if len(rows) > 0 {
		b.ReportMetric(float64(rows[len(rows)-1].BytesMeasured)/1e6, "MB_meas")
	}
}

// ---- Ablations: each ingredient of Algorithm 2 switched off ----

func BenchmarkAblationFullCA(b *testing.B) {
	reportFigureMetrics(b, runCell(b, dycore.AlgCommAvoid, 16, nil))
}

func BenchmarkAblationExactC(b *testing.B) {
	reportFigureMetrics(b, runCell(b, dycore.AlgCommAvoid, 16, func(c *dycore.Config) { c.ExactC = true }))
}

func BenchmarkAblationNoOverlap(b *testing.B) {
	reportFigureMetrics(b, runCell(b, dycore.AlgCommAvoid, 16, func(c *dycore.Config) { c.NoOverlap = true }))
}

func BenchmarkAblationNoFusedSmoothing(b *testing.B) {
	reportFigureMetrics(b, runCell(b, dycore.AlgCommAvoid, 16, func(c *dycore.Config) { c.NoFusedSmoothing = true }))
}

// ---- Substrate micro-benchmarks ----

func benchState(g *grid.Grid) (*state.State, field.Block) {
	b := field.Block{
		Nx: g.Nx, Ny: g.Ny, Nz: g.Nz,
		I0: 0, I1: g.Nx, J0: 0, J1: g.Ny, K0: 0, K1: g.Nz,
		Hx: 3, Hy: 2, Hz: 1,
	}
	st := state.New(b)
	heldsuarez.InitialState(g, st)
	st.FillLocalBounds()
	return st, b
}

func BenchmarkAdaptationKernel(b *testing.B) {
	g := grid.New(96, 48, 12)
	st, blk := benchState(g)
	sur := operators.NewSurface(blk)
	sur.Update(st.Psa)
	divp := field.NewF3(blk)
	operators.DivP(g, st.U, st.V, sur, divp, blk.Owned())
	cres := operators.NewCRes(blk)
	operators.CSum(g, nil, nil, divp, cres, blk.Owned(), 0, g.Nz)
	out := operators.NewTendency(blk)
	cfg := operators.DefaultAdaptConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		operators.Adaptation(g, cfg, st, sur, cres, out, blk.Owned())
	}
	b.SetBytes(int64(8 * blk.Owned().Count()))
}

func BenchmarkAdvectionKernel(b *testing.B) {
	g := grid.New(96, 48, 12)
	st, blk := benchState(g)
	sur := operators.NewSurface(blk)
	sur.Update(st.Psa)
	divp := field.NewF3(blk)
	operators.DivP(g, st.U, st.V, sur, divp, blk.Owned())
	cres := operators.NewCRes(blk)
	operators.CSum(g, nil, nil, divp, cres, blk.Owned(), 0, g.Nz)
	cres.PWI.FillXPeriodic()
	cres.DBar.FillXPeriodic()
	field.FillPolesY(cres.PWI, field.Even, field.CenterY)
	out := operators.NewTendency(blk)
	// Persistent scratch, like the integrators hold — the nil-scratch
	// Advection path is for one-shot/test use only.
	sc := operators.NewAdvScratch(blk)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		operators.AdvectionScratch(g, st, sur, cres, out, blk.Owned(), sc)
	}
	b.SetBytes(int64(8 * blk.Owned().Count()))
}

func BenchmarkSmoothingKernel(b *testing.B) {
	g := grid.New(96, 48, 12)
	st, blk := benchState(g)
	smo := operators.NewSmoother(g, 1.0)
	out := state.New(blk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		smo.SmoothFull(st, out, blk.Owned())
	}
	b.SetBytes(int64(8 * blk.Owned().Count()))
}

func BenchmarkDivPKernel(b *testing.B) {
	g := grid.New(96, 48, 12)
	st, blk := benchState(g)
	sur := operators.NewSurface(blk)
	sur.Update(st.Psa)
	out := field.NewF3(blk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		operators.DivP(g, st.U, st.V, sur, out, blk.Owned())
	}
	b.SetBytes(int64(8 * blk.Owned().Count()))
}

func BenchmarkFilterSerial(b *testing.B) {
	g := grid.New(96, 48, 12)
	st, blk := benchState(g)
	rng := rand.New(rand.NewSource(1))
	for i := range st.Phi.Data {
		st.Phi.Data[i] = rng.NormFloat64()
	}
	f := filter.New(g, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Apply(st.Phi, blk.Owned())
	}
}

func BenchmarkFFT720(b *testing.B) {
	// The paper's zonal extent.
	p := fft.NewPlan(720)
	x := make([]complex128, 720)
	for i := range x {
		x[i] = complex(float64(i%7), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkHaloExchangeShallow(b *testing.B) {
	benchExchange(b, 1, 1)
}

func BenchmarkHaloExchangeDeep(b *testing.B) {
	benchExchange(b, 11, 9)
}

func benchExchange(b *testing.B, dy, dz int) {
	b.Helper()
	g := grid.New(96, 48, 12)
	const py, pz = 4, 2
	w := comm.NewWorld(py*pz, comm.Zero())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(c *comm.Comm) {
			tp := topo.New(c, g, 1, py, pz, 3, 11, 9)
			st := state.New(tp.Block)
			heldsuarez.InitialState(g, st)
			ex := tp.NewExchanger(0, dy, dz)
			ex.Exchange(st.F3s(), st.F2s())
		})
	}
}

func BenchmarkRingAllreduce(b *testing.B) {
	const p, n = 8, 4096
	w := comm.NewWorld(p, comm.Zero())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(c *comm.Comm) {
			data := make([]float64, n)
			c.Allreduce(data, comm.Sum)
		})
	}
	b.SetBytes(int64(8 * n * p))
}