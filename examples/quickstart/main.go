// Quickstart: run the communication-avoiding dynamical core for a few time
// steps on a small mesh with a 2×2 Y-Z process grid, and print what the
// algorithm did — the minimal end-to-end use of the library.
package main

import (
	"fmt"

	"cadycore/internal/comm"
	"cadycore/internal/diag"
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
)

func main() {
	// A 3° mesh with 10 σ levels.
	g := grid.New(120, 60, 10)

	// The paper's configuration: M = 3 nonlinear adaptation iterations per
	// step, adaptation step Δt1 ≪ advection step Δt2.
	cfg := dycore.DefaultConfig()
	cfg.Dt1, cfg.Dt2 = 30, 180

	// Algorithm 2 (communication-avoiding) on a p_y × p_z = 2×2 grid.
	setup := dycore.Setup{Alg: dycore.AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg}

	fmt.Printf("running %s on %s with %d ranks\n", setup.Alg, g, setup.Procs())
	res := dycore.Run(setup, g, comm.TianheLike(), heldsuarez.InitialState, 5)

	fmt.Printf("\nper-step communication structure (rank 0 counters over %d steps + bootstrap):\n", res.Count.Steps)
	fmt.Printf("  halo-exchange rounds: %d   (Algorithm 2: two per step — adaptation+smoothing, advection)\n",
		res.Count.HaloExchanges)
	fmt.Printf("  z-collectives (Ĉ):    %d   (2M per step instead of the original 3M)\n",
		res.Count.CEvaluations)
	fmt.Printf("  Fourier filterings:   %d   (all local: p_x = 1, Section 4.2.1)\n",
		res.Count.FilterCalls)

	fmt.Printf("\ncommunication totals: %d messages, %.3g MB\n",
		res.Agg.MsgsSent, float64(res.Agg.BytesSent)/1e6)
	fmt.Printf("simulated runtime: %.4g s (communication %.4g s, computation %.4g s)\n",
		res.Agg.SimTime, res.Agg.TotalCommTime(), res.Agg.CompTimeMax)

	fmt.Printf("\nphysics sanity: finite=%v, mean ps=%.2f hPa, dry mass=%.4g kg, max wind=%.2f m/s\n",
		diag.AllFinite(res.Finals),
		diag.MeanSurfacePressure(g, res.Finals)/100,
		diag.GlobalDryMass(g, res.Finals),
		diag.MaxWind(g, res.Finals))
}
