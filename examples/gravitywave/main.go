// Gravity-wave example: why the dynamical core runs the adaptation process
// M times with Δt1 ≪ Δt2. A compact geopotential anomaly radiates external
// gravity waves at roughly the tensor transform's design speed b = 87.8 m/s
// — the fastest signal in the model, which sets the adaptation CFL limit.
// This demo drops a warm pulse on the equator, integrates, and prints the
// surface-pressure wave front spreading away from the source.
package main

import (
	"fmt"
	"math"
	"strings"

	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/physics"
	"cadycore/internal/testcases"
)

func main() {
	g := grid.New(96, 24, 6)
	lam0 := math.Pi
	init := testcases.GravityWavePulse(8, 0.22, lam0)

	cfg := dycore.DefaultConfig()
	cfg.Dt1, cfg.Dt2 = 50, 300
	set := dycore.Setup{Alg: dycore.AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg}

	fmt.Printf("warm pulse at λ=180° on the equator, %s\n", g)
	fmt.Printf("expected front speed: near b = %.1f m/s (one grid cell ≈ %.0f s)\n\n",
		physics.B, physics.EarthRadius*g.DLambda/physics.B)

	jEq := g.Ny / 2
	var prevFront float64
	var prevT float64
	for _, steps := range []int{10, 30, 60, 90, 120} {
		res := dycore.Run(set, g, comm.Zero(), dycore.InitFunc(init), steps)

		// Assemble the equatorial psa row from the rank states.
		row := make([]float64, g.Nx)
		for _, st := range res.Finals {
			b := st.B
			if jEq < b.J0 || jEq >= b.J1 || b.K0 != 0 {
				continue
			}
			for i := 0; i < g.Nx; i++ {
				row[i] = st.Psa.At(i, jEq)
			}
		}
		maxA := 0.0
		for _, v := range row {
			if a := math.Abs(v); a > maxA {
				maxA = a
			}
		}
		front := 0.0
		for i, v := range row {
			if math.Abs(v) > 0.2*maxA {
				d := math.Abs(angDist(g.Lambda[i], lam0))
				if d > front {
					front = d
				}
			}
		}
		frontM := front * physics.EarthRadius * g.SinC[jEq]
		tNow := float64(steps) * cfg.Dt2
		speed := 0.0
		if prevT > 0 {
			speed = (frontM - prevFront) / (tNow - prevT)
		}
		fmt.Printf("t=%5.0f min  |psa|max=%7.1f Pa  front=%6.0f km", tNow/60, maxA, frontM/1e3)
		if speed != 0 {
			fmt.Printf("  speed since last ≈ %5.1f m/s", speed)
		}
		fmt.Println()
		fmt.Println("   " + sparkline(row))
		prevFront, prevT = frontM, tNow
	}
	fmt.Println("\nthe front advances at the gravity-wave speed while the anomaly")
	fmt.Println("deepens in place — the 'adaptation' of the mass and wind fields the")
	fmt.Println("paper's fast inner iteration (F̃ĈÂ with Δt1) exists to resolve.")
}

// sparkline renders the psa row as a coarse ASCII profile.
func sparkline(row []float64) string {
	maxA := 1e-12
	for _, v := range row {
		if a := math.Abs(v); a > maxA {
			maxA = a
		}
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	var sb strings.Builder
	for i := 0; i < len(row); i += 2 {
		level := (row[i]/maxA + 1) / 2 * float64(len(glyphs)-1)
		sb.WriteRune(glyphs[int(level+0.5)])
	}
	return sb.String()
}

func angDist(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	if d < -math.Pi {
		d += 2 * math.Pi
	}
	return d
}
