// Scaling example: run the three algorithms of the paper — original X-Y,
// original Y-Z, communication-avoiding — on the same mesh and rank count,
// and print the communication breakdown side by side: the in-miniature
// version of the paper's Figures 6–8.
package main

import (
	"fmt"

	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/harness"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/state"
)

func main() {
	const p = 16
	g := grid.New(96, 48, 12)
	cfg := dycore.DefaultConfig()
	cfg.Dt1, cfg.Dt2 = 30, 180
	const steps = 2

	hs := heldsuarez.Standard()
	hook := func(g *grid.Grid, st *state.State, step int) { hs.Apply(g, st, cfg.Dt2) }

	fmt.Printf("three algorithms on %s at p = %d, %d steps, Held-Suarez workload\n\n", g, p, steps)
	fmt.Printf("%-16s%12s%12s%14s%14s%12s%10s\n",
		"algorithm", "exchanges", "z-colls", "collective(s)", "stencil(s)", "total(s)", "msgs")

	type row struct {
		name                     string
		res                      dycore.RunResult
	}
	var rows []row
	for _, alg := range []dycore.Algorithm{dycore.AlgBaselineXY, dycore.AlgBaselineYZ, dycore.AlgCommAvoid} {
		var set dycore.Setup
		if alg == dycore.AlgBaselineXY {
			px, py, ok := harness.XYFactors(p, g.Nx, g.Ny)
			if !ok {
				continue
			}
			set = dycore.Setup{Alg: alg, PA: px, PB: py, Cfg: cfg}
		} else {
			py, pz, ok := harness.YZFactors(p, g.Ny, g.Nz)
			if !ok {
				continue
			}
			set = dycore.Setup{Alg: alg, PA: py, PB: pz, Cfg: cfg}
		}
		res := dycore.RunWithHook(set, g, comm.TianheLike(), heldsuarez.InitialState, steps, hook)
		rows = append(rows, row{alg.String(), res})
		fmt.Printf("%-16s%12d%12d%14.5g%14.5g%12.5g%10d\n",
			alg.String(), res.Count.HaloExchanges, res.Count.CEvaluations,
			res.Agg.CollectiveTime(), res.Agg.StencilTime(), res.Agg.SimTime, res.Agg.MsgsSent)
	}

	if len(rows) == 3 {
		xy, yz, ca := rows[0].res, rows[1].res, rows[2].res
		fmt.Printf("\npaper's headline comparisons at this scale:\n")
		fmt.Printf("  CA vs original-YZ collective speedup: %.2fx (paper avg: 1.4x)\n",
			safeDiv(yz.Agg.CollectiveTime(), ca.Agg.CollectiveTime()))
		fmt.Printf("  CA vs original-YZ stencil speedup:    %.2fx (paper avg: 3.9x)\n",
			safeDiv(yz.Agg.StencilTime(), ca.Agg.StencilTime()))
		fmt.Printf("  CA total-runtime reduction vs X-Y:    %.0f%% (paper max: 54%%)\n",
			100*(1-ca.Agg.SimTime/xy.Agg.SimTime))
		fmt.Printf("  exchange rounds per step: %d -> %d (paper: 13 -> 2 for M=3)\n",
			(yz.Count.HaloExchanges-1)/int64(steps), (ca.Count.HaloExchanges-2)/int64(steps))
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
