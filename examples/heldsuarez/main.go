// Held–Suarez example: spin the dry dynamical core up under the H-S forcing
// (the paper's Section 5.1 benchmark) and watch the circulation develop —
// the surface easterlies/westerlies pattern and the meridional temperature
// gradient. Demonstrates coupling pointwise physics to the dynamics through
// the step hook, and the diagnostics package.
package main

import (
	"fmt"

	"cadycore/internal/comm"
	"cadycore/internal/diag"
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/state"
)

func main() {
	g := grid.New(64, 32, 10)
	cfg := dycore.DefaultConfig()
	cfg.Dt1, cfg.Dt2 = 50, 300

	hs := heldsuarez.Standard()
	hook := func(g *grid.Grid, st *state.State, step int) { hs.Apply(g, st, cfg.Dt2) }

	const hours = 12
	steps := hours * 3600 / int(cfg.Dt2)
	setup := dycore.Setup{Alg: dycore.AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg}

	fmt.Printf("Held-Suarez spin-up: %s, %d ranks, %d steps (%d model hours)\n",
		g, setup.Procs(), steps, hours)
	res := dycore.RunWithHook(setup, g, comm.Zero(), heldsuarez.InitialState, steps, hook)

	if !diag.AllFinite(res.Finals) {
		fmt.Println("unstable run")
		return
	}

	ubar := diag.ZonalMeanU(g, res.Finals)
	tbar := diag.ZonalMeanT(g, res.Finals)

	fmt.Println("\nzonal-mean zonal wind ū (m/s) at selected levels:")
	fmt.Printf("%8s", "lat")
	for j := 0; j < g.Ny; j += 4 {
		fmt.Printf("%7.0f", g.LatitudeDeg(j))
	}
	fmt.Println()
	for _, k := range []int{2, g.Nz / 2, g.Nz - 1} {
		fmt.Printf("σ=%5.2f ", g.Sigma[k])
		for j := 0; j < g.Ny; j += 4 {
			fmt.Printf("%7.1f", ubar[k][j])
		}
		fmt.Println()
	}

	fmt.Println("\nzonal-mean temperature T̄ (K):")
	for _, k := range []int{2, g.Nz / 2, g.Nz - 1} {
		fmt.Printf("σ=%5.2f ", g.Sigma[k])
		for j := 0; j < g.Ny; j += 4 {
			fmt.Printf("%7.1f", tbar[k][j])
		}
		fmt.Println()
	}

	eqT := tbar[g.Nz-1][g.Ny/2]
	poT := tbar[g.Nz-1][0]
	fmt.Printf("\nsurface equator-pole temperature contrast: %.1f K (forcing target ~%0.f K)\n",
		eqT-poT, hs.DeltaTy)
	fmt.Printf("dry mass %.5g kg, mean ps %.2f hPa, max wind %.1f m/s\n",
		diag.GlobalDryMass(g, res.Finals),
		diag.MeanSurfacePressure(g, res.Finals)/100,
		diag.MaxWind(g, res.Finals))
}
