// Polar-filter example: why the dynamical core Fourier-filters high
// latitudes, and what the filter does. Builds a field with energy across
// all zonal wavenumbers, applies F̃, and prints the per-latitude wavenumber
// cutoffs and the retained spectra — plus the CFL arithmetic that motivates
// it (meridian convergence shrinks Δx by sinθ, the filter compensates).
package main

import (
	"fmt"
	"math"
	"math/cmplx"

	"cadycore/internal/fft"
	"cadycore/internal/field"
	"cadycore/internal/filter"
	"cadycore/internal/grid"
	"cadycore/internal/physics"
)

func main() {
	g := grid.New(128, 32, 2)
	f := filter.New(g, 60) // filter poleward of 60°

	fmt.Println("latitude-dependent zonal wavenumber cutoff m_max(θ):")
	fmt.Printf("%10s%12s%12s%14s%16s\n", "lat (°)", "m_max", "filtered?", "Δx (km)", "CFL dt (s, 100m/s)")
	for j := 0; j < g.Ny; j += 2 {
		dx := physics.EarthRadius * g.SinC[j] * g.DLambda
		fmt.Printf("%10.1f%12d%12v%14.1f%16.1f\n",
			g.LatitudeDeg(j), f.MMax(j), f.Active(j), dx/1e3, dx/100)
	}

	// A test field: equal-amplitude waves at m = 2, 10, 40.
	b := field.Block{Nx: g.Nx, Ny: g.Ny, Nz: 2, I0: 0, I1: g.Nx, J0: 0, J1: g.Ny, K0: 0, K1: 2, Hx: 0, Hy: 0, Hz: 0}
	fld := field.NewF3(b)
	for j := 0; j < g.Ny; j++ {
		for i := 0; i < g.Nx; i++ {
			lam := g.Lambda[i]
			fld.Set(i, j, 0, math.Sin(2*lam)+math.Sin(10*lam)+math.Sin(40*lam))
		}
	}

	f.Apply(fld, b.Owned())

	fmt.Println("\nretained spectral amplitude after filtering (waves m = 2, 10, 40):")
	fmt.Printf("%10s%10s%10s%10s\n", "lat (°)", "m=2", "m=10", "m=40")
	plan := fft.NewPlan(g.Nx)
	row := make([]float64, g.Nx)
	for _, j := range []int{0, 2, 5, 10, 15} {
		base := fld.Index(0, j, 0)
		copy(row, fld.Data[base:base+g.Nx])
		coef := plan.ForwardReal(row, nil)
		amp := func(m int) float64 { return 2 * cmplx.Abs(coef[m]) / float64(g.Nx) }
		fmt.Printf("%10.1f%10.2f%10.2f%10.2f\n", g.LatitudeDeg(j), amp(2), amp(10), amp(40))
	}
	fmt.Println("\nnear the pole only the gravest waves survive; equatorward of the")
	fmt.Println("cutoff the field passes through bit-identically. Under the Y-Z")
	fmt.Println("decomposition (p_x = 1) all of this is rank-local: the filter costs")
	fmt.Println("no communication at all (paper Section 4.2.1, Theorem 4.1).")
}
