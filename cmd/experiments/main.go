// Command experiments regenerates the paper's evaluation: Figures 1, 6, 7
// and 8 and the Section 5.3 theory table, printed as text tables.
//
// Usage:
//
//	experiments [-fig all|1|6|7|8|theory] [-nx N -ny N -nz N] [-m M]
//	            [-steps K] [-ps 16,32,64,128]
//
// The default mesh is a scaled version of the paper's 720×360×30 that runs
// in minutes on one machine; pass -nx 720 -ny 360 -nz 30 for the full 50 km
// mesh (needs tens of GB of memory at high -ps).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cadycore/internal/harness"
	"cadycore/internal/opflow"
)

func main() {
	o := harness.Defaults()
	fig := flag.String("fig", "all", "which figure to regenerate: all, 1, 6, 7, 8, theory, 3d, weak, flow, ablation")
	csv := flag.Bool("csv", false, "emit CSV instead of text tables (figures only)")
	nx := flag.Int("nx", o.Nx, "mesh points in longitude")
	ny := flag.Int("ny", o.Ny, "mesh points in latitude")
	nz := flag.Int("nz", o.Nz, "mesh levels")
	m := flag.Int("m", o.M, "nonlinear iterations per step (paper: 3)")
	steps := flag.Int("steps", o.Steps, "time steps per measurement")
	psFlag := flag.String("ps", intsToCSV(o.Ps), "comma-separated process counts")
	flag.Parse()

	o.Nx, o.Ny, o.Nz, o.M, o.Steps = *nx, *ny, *nz, *m, *steps
	ps, err := csvToInts(*psFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -ps:", err)
		os.Exit(2)
	}
	o.Ps = harness.SortedPs(ps)
	o.Prime()

	fmt.Printf("mesh %dx%dx%d, M=%d, %d steps, Held-Suarez workload, simulated Tianhe-like network\n\n",
		o.Nx, o.Ny, o.Nz, o.M, o.Steps)

	render := func(f harness.Figure) {
		if *csv {
			fmt.Print(f.CSV())
			return
		}
		fmt.Println(f.Format())
	}

	switch *fig {
	case "all":
		for _, f := range harness.AllFigures(o) {
			render(f)
		}
		fmt.Println(harness.FormatTheory(harness.TheoryTable(o)))
	case "1":
		render(harness.Figure1(o))
	case "6":
		render(harness.Figure6(o))
	case "7":
		render(harness.Figure7(o))
	case "8":
		render(harness.Figure8(o))
	case "3d":
		render(harness.Figure3D(o))
	case "weak":
		render(harness.FigureWeak(o))
	case "ablation":
		render(harness.FigureAblation(o))
	case "flow":
		fmt.Println(opflow.Describe(o.M))
		a := opflow.Advise(o.Nx, o.Ny, o.Nz, o.Ps[len(o.Ps)-1], o.M)
		fmt.Println("decomposition advice:", a.Reason)
	case "theory":
		fmt.Println(harness.FormatTheory(harness.TheoryTable(o)))
	default:
		fmt.Fprintln(os.Stderr, "unknown -fig:", *fig)
		os.Exit(2)
	}
}

func intsToCSV(ps []int) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = strconv.Itoa(p)
	}
	return strings.Join(parts, ",")
}

func csvToInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("process count %d must be positive", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no process counts given")
	}
	return out, nil
}
