// Command cadyvet is the module's static-analysis vet tool. It speaks the
// cmd/go vet tool protocol, so it runs as
//
//	go build -o bin/cadyvet ./cmd/cadyvet
//	go vet -vettool=bin/cadyvet ./...
//
// and checks the whole module (with per-package caching and cross-package
// facts provided by the go command). `cadyvet -list` prints the enabled
// analyzers. See internal/analysis for the suite — allocfree, commsym,
// detorder, overlap, guardedby, crashsafe, goleak — and the //cadyvet:*
// annotation vocabulary.
package main

import "cadycore/internal/analysis"

func main() { analysis.Main() }
