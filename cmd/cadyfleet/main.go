// Command cadyfleet is the fleet coordinator daemon: it fronts N cadyserved
// backends behind the same HTTP/JSON job API, sharding jobs across them,
// enforcing per-tenant quotas and priority classes, migrating jobs off dead
// backends (resuming from the shared checkpoint store) and fanning ensembles
// into perturbed members.
//
// Usage:
//
//	cadyfleet -backends http://h1:8081,http://h2:8082,... -store DIR
//	          [-addr :8080] [-quota N] [-quotas t1=4,t2=16]
//	          [-classes vip=high,batch=low] [-probe-interval 500ms]
//	          [-fail-threshold 3] [-watch-interval 200ms] [-max-migrations 3]
//
// Every backend must run cadyserved with -shared pointing at the same -store
// directory; it is both the migration substrate (checkpoints dual-written by
// the backends) and where the coordinator persists its routing state
// (fleet.json), so a restarted coordinator reconciles rather than restarts.
//
// Endpoints (the job API mirrors cadyserved):
//
//	POST /jobs               submit (X-Tenant header; 429 + Retry-After over quota)
//	GET  /jobs               list, ?status= filter, ?offset=/&limit= pagination
//	GET  /jobs/{id}          live status (proxied from the owning backend)
//	POST /jobs/{id}/cancel   cancel wherever the job is
//	POST /ensembles          fan one run spec into K perturbed members
//	GET  /ensembles/{id}     member states + min/max/mean diagnostics
//	GET  /backends           backend health; POST /backends registers one
//	POST /backends/drain     {"url": ...} forwards the backend drain hook
//	GET  /metrics            fleet metrics incl. scrape-and-sum backend aggregates
//	GET  /healthz            liveness
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"cadycore/internal/fleet"
)

// parseKV parses "a=1,b=2" flags.
func parseKV(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]string{}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("bad key=value entry %q", kv)
		}
		out[k] = v
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	backends := flag.String("backends", "", "comma-separated backend base URLs (required)")
	store := flag.String("store", "", "shared checkpoint-store directory (required; backends use -shared on the same path)")
	quota := flag.Int("quota", 8, "default per-tenant in-flight job quota")
	quotas := flag.String("quotas", "", "per-tenant quota overrides, tenant=N[,tenant=N...]")
	classes := flag.String("classes", "", "tenant priority classes, tenant=high|normal|low[,...]")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "backend health-probe cadence")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive probe failures before a backend is declared dead")
	watchInterval := flag.Duration("watch-interval", 200*time.Millisecond, "backend job-list reconciliation cadence")
	maxMigrations := flag.Int("max-migrations", 3, "migration budget per job")
	flag.Parse()

	if *backends == "" || *store == "" {
		fmt.Fprintln(os.Stderr, "cadyfleet: -backends and -store are required")
		os.Exit(2)
	}
	cfg := fleet.Config{
		Backends:      strings.Split(*backends, ","),
		StoreDir:      *store,
		DefaultQuota:  *quota,
		ProbeInterval: *probeInterval,
		FailThreshold: *failThreshold,
		WatchInterval: *watchInterval,
		MaxMigrations: *maxMigrations,
	}
	if kv, err := parseKV(*quotas); err != nil {
		fmt.Fprintln(os.Stderr, "cadyfleet: -quotas:", err)
		os.Exit(2)
	} else if kv != nil {
		cfg.Quotas = map[string]int{}
		tenants := make([]string, 0, len(kv))
		//cadyvet:unordered key collection only; the loop below is sorted
		for t := range kv {
			tenants = append(tenants, t)
		}
		sort.Strings(tenants)
		for _, t := range tenants {
			var n int
			if _, err := fmt.Sscanf(kv[t], "%d", &n); err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "cadyfleet: -quotas: bad quota %q for tenant %s\n", kv[t], t)
				os.Exit(2)
			}
			cfg.Quotas[t] = n
		}
	}
	if kv, err := parseKV(*classes); err != nil {
		fmt.Fprintln(os.Stderr, "cadyfleet: -classes:", err)
		os.Exit(2)
	} else if kv != nil {
		cfg.Classes = kv
	}

	coord, err := fleet.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cadyfleet:", err)
		os.Exit(1)
	}
	hs := &http.Server{Addr: *addr, Handler: coord}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("cadyfleet listening on %s (%d backends, store %s)\n",
		*addr, len(cfg.Backends), *store)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "cadyfleet:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Println("cadyfleet: stopping (backends and their jobs are left running)")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "cadyfleet: shutdown:", err)
	}
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "cadyfleet: http shutdown:", err)
	}
	fmt.Println("cadyfleet: stopped")
}
