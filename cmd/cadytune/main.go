// Command cadytune is the autotuner front end: it calibrates a machine
// profile, plans decompositions with the calibrated cost model, runs the
// planned layout, and benchmarks the plan against the exhaustively measured
// candidate space.
//
// Usage:
//
//	cadytune calibrate [-o machine.json] [-rounds N] [-kernel-ms D]
//	cadytune plan -p P [-nx N -ny N -nz N] [-m M] [-profile machine.json]
//	              [-cache DIR] [-topk K] [-max-workers W]
//	cadytune run  (plan flags) [-steps K]
//	cadytune bench (plan flags) [-steps K] [-o BENCH_tune.json] [-check]
//
// plan prints the chosen plan as JSON. bench measures EVERY feasible
// candidate at the given rank budget on the simulated machine and reports
// how the planner's pick compares with the exhaustive best and worst;
// -check exits non-zero unless the pick is within 10% of the best and at
// least 1.5x faster than the worst.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/tune"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "calibrate":
		cmdCalibrate(os.Args[2:])
	case "plan":
		cmdPlan(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	case "bench":
		cmdBench(os.Args[2:])
	default:
		fmt.Fprintln(os.Stderr, "cadytune: unknown subcommand", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cadytune {calibrate|plan|run|bench} [flags]  (cadytune <cmd> -h for flags)")
}

func cmdCalibrate(args []string) {
	fs := flag.NewFlagSet("calibrate", flag.ExitOnError)
	out := fs.String("o", "machine.json", "output profile path")
	rounds := fs.Int("rounds", 16, "ping-pong rounds per payload size")
	kernelMs := fs.Int("kernel-ms", 50, "minimum wall time per kernel measurement (ms)")
	nx := fs.Int("nx", 64, "kernel-benchmark mesh points in longitude")
	ny := fs.Int("ny", 32, "kernel-benchmark mesh points in latitude")
	nz := fs.Int("nz", 8, "kernel-benchmark mesh levels")
	fs.Parse(args)

	p := tune.Calibrate(tune.CalibrateOptions{
		Rounds: *rounds, Nx: *nx, Ny: *ny, Nz: *nz,
		MinKernelTime: time.Duration(*kernelMs) * time.Millisecond,
	})
	if err := p.Save(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("calibrated profile %s -> %s\n", p.Hash(), *out)
	fmt.Printf("  alpha %.3g s  beta %.3g s/B  (latency %.3g s, overhead %.3g s)\n",
		p.Alpha, p.Beta, p.NetModel().Latency, p.Overhead)
	fmt.Printf("  kernel rates (points/s): adapt %.3g  advect %.3g  smooth %.3g  csum %.3g  filter-row %.3g\n",
		p.Kernels.Adapt, p.Kernels.Advect, p.Kernels.Smooth, p.Kernels.CSum, p.Kernels.FilterRow)
}

// planFlags are the flags shared by plan, run and bench.
type planFlags struct {
	procs, nx, ny, nz, m          int
	topk, pilotSteps, maxWorkers  int
	profilePath, cacheDir         string
	varyM, noUnbalanced, noStaged bool
}

func addPlanFlags(fs *flag.FlagSet) *planFlags {
	var pf planFlags
	fs.IntVar(&pf.procs, "p", 4, "rank budget")
	fs.IntVar(&pf.nx, "nx", 192, "mesh points in longitude")
	fs.IntVar(&pf.ny, "ny", 96, "mesh points in latitude")
	fs.IntVar(&pf.nz, "nz", 24, "mesh levels")
	fs.IntVar(&pf.m, "m", 3, "nonlinear iterations per step")
	fs.IntVar(&pf.topk, "topk", 4, "pilot-run this many analytic leaders (negative: analytic only)")
	fs.IntVar(&pf.pilotSteps, "pilot-steps", 2, "steps per pilot run")
	fs.IntVar(&pf.maxWorkers, "max-workers", 1, "largest Config.Workers candidate")
	fs.StringVar(&pf.profilePath, "profile", "", "machine profile (default: analytic Tianhe-like profile)")
	fs.StringVar(&pf.cacheDir, "cache", "", "plan memo directory (empty: no memoization)")
	fs.BoolVar(&pf.varyM, "vary-m", false, "also search M-1 and M+1 (changes physics accuracy)")
	fs.BoolVar(&pf.noUnbalanced, "no-unbalanced", false, "disable weighted y-row partition candidates")
	fs.BoolVar(&pf.noStaged, "no-staged", false, "disable staged-exchange (shallow halo) CA candidates")
	return &pf
}

func (pf *planFlags) planner() *tune.Planner {
	prof := tune.DefaultProfile()
	if pf.profilePath != "" {
		var err error
		if prof, err = tune.LoadProfile(pf.profilePath); err != nil {
			fatal(err)
		}
	}
	pl := &tune.Planner{
		Profile:    prof,
		TopK:       pf.topk,
		PilotSteps: pf.pilotSteps,
		Search: tune.SearchOptions{
			MaxWorkers:   pf.maxWorkers,
			VaryM:        pf.varyM,
			NoUnbalanced: pf.noUnbalanced,
			NoStaged:     pf.noStaged,
		},
	}
	if pf.cacheDir != "" {
		pl.Cache = tune.NewCache(pf.cacheDir)
	}
	return pl
}

func (pf *planFlags) config() dycore.Config {
	cfg := dycore.DefaultConfig()
	cfg.M = pf.m
	return cfg
}

func (pf *planFlags) plan() (*tune.Planner, *grid.Grid, dycore.Config, tune.Plan) {
	pl := pf.planner()
	g := grid.New(pf.nx, pf.ny, pf.nz)
	cfg := pf.config()
	plan, err := pl.Plan(g, pf.procs, cfg)
	if err != nil {
		fatal(err)
	}
	return pl, g, cfg, plan
}

func cmdPlan(args []string) {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	pf := addPlanFlags(fs)
	fs.Parse(args)
	_, _, _, plan := pf.plan()
	b, _ := json.MarshalIndent(plan, "", "  ")
	fmt.Println(string(b))
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	pf := addPlanFlags(fs)
	steps := fs.Int("steps", 4, "time steps")
	fs.Parse(args)
	pl, g, cfg, plan := pf.plan()
	fmt.Printf("plan: %s (predicted %.4g s/step)\n", plan, plan.PredictedStep)
	sim := pl.MeasureStep(plan.Candidate(), g, cfg, *steps)
	fmt.Printf("ran %d steps on the simulated machine: %.4g s/step\n", *steps, sim)
}

// benchEntry is one measured candidate of a bench sweep.
type benchEntry struct {
	Key        string  `json:"key"`
	PredictedS float64 `json:"predicted_step_s"`
	MeasuredS  float64 `json:"measured_step_s"`
}

// benchReport is the BENCH_tune.json schema: the planner's pick versus the
// exhaustively measured candidate space at one rank budget.
type benchReport struct {
	Mesh        [3]int `json:"mesh"`
	Procs       int    `json:"procs"`
	M           int    `json:"m"`
	Steps       int    `json:"steps"`
	ProfileHash string `json:"profile_hash"`

	Planned benchEntry `json:"planned"`
	Best    benchEntry `json:"best"`
	Worst   benchEntry `json:"worst"`

	// PlannedOverBest is planned/best measured step time (1.0 = the planner
	// found the optimum; acceptance wants <= 1.10).
	PlannedOverBest float64 `json:"planned_over_best"`
	// WorstOverPlanned is worst/planned measured step time (how much the
	// plan saves over the worst layout; acceptance wants >= 1.5).
	WorstOverPlanned float64 `json:"worst_over_planned"`

	Candidates []benchEntry `json:"candidates"`
}

func cmdBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	pf := addPlanFlags(fs)
	steps := fs.Int("steps", 2, "steps per measured candidate")
	out := fs.String("o", "BENCH_tune.json", "output JSON path")
	check := fs.Bool("check", false, "exit non-zero unless planned<=1.10x best and worst>=1.5x planned")
	fs.Parse(args)

	pl, g, cfg, plan := pf.plan()
	cands := tune.Candidates(g, pf.procs, cfg, pl.Profile, pl.Search)
	fmt.Printf("plan: %s\nmeasuring all %d feasible candidates at P=%d on %dx%dx%d...\n",
		plan, len(cands), pf.procs, g.Nx, g.Ny, g.Nz)

	entries := make([]benchEntry, len(cands))
	for i, c := range cands {
		entries[i] = benchEntry{
			Key:        c.Key(),
			PredictedS: tune.Evaluate(g, cfg, pl.Profile, c).Total,
			MeasuredS:  pl.MeasureStep(c, g, cfg, *steps),
		}
		fmt.Printf("  %-28s predicted %.4g  measured %.4g s/step\n",
			entries[i].Key, entries[i].PredictedS, entries[i].MeasuredS)
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].MeasuredS != entries[b].MeasuredS {
			return entries[a].MeasuredS < entries[b].MeasuredS
		}
		return entries[a].Key < entries[b].Key
	})

	rep := benchReport{
		Mesh: [3]int{g.Nx, g.Ny, g.Nz}, Procs: pf.procs, M: cfg.M, Steps: *steps,
		ProfileHash: pl.Profile.Hash(),
		Best:        entries[0],
		Worst:       entries[len(entries)-1],
		Candidates:  entries,
	}
	plannedKey := plan.Candidate().Key()
	for _, e := range entries {
		if e.Key == plannedKey {
			rep.Planned = e
			break
		}
	}
	if rep.Planned.Key == "" {
		fatal(fmt.Errorf("planned candidate %s missing from the enumeration", plannedKey))
	}
	if rep.Best.MeasuredS > 0 {
		rep.PlannedOverBest = rep.Planned.MeasuredS / rep.Best.MeasuredS
	}
	if rep.Planned.MeasuredS > 0 {
		rep.WorstOverPlanned = rep.Worst.MeasuredS / rep.Planned.MeasuredS
	}

	b, _ := json.MarshalIndent(rep, "", "  ")
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("planned %s: %.4g s/step = %.3fx best (%s), worst/planned %.2fx -> %s\n",
		rep.Planned.Key, rep.Planned.MeasuredS, rep.PlannedOverBest, rep.Best.Key,
		rep.WorstOverPlanned, *out)

	if *check {
		ok := true
		if rep.PlannedOverBest > 1.10 {
			fmt.Fprintf(os.Stderr, "FAIL: planned layout is %.3fx the best (want <= 1.10)\n", rep.PlannedOverBest)
			ok = false
		}
		if rep.WorstOverPlanned < 1.5 {
			fmt.Fprintf(os.Stderr, "FAIL: worst/planned %.2fx (want >= 1.5)\n", rep.WorstOverPlanned)
			ok = false
		}
		if !ok {
			os.Exit(1)
		}
		fmt.Println("check passed: within 10% of exhaustive best, >= 1.5x over worst")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cadytune:", err)
	os.Exit(1)
}
