// Command dycore runs one configuration of the dynamical core — algorithm,
// mesh, process grid, step count — and reports communication statistics and
// physical diagnostics. It is the workhorse for exploring a single cell of
// the experiment matrix.
//
// Usage:
//
//	dycore [-alg ca|yz|xy] [-nx N -ny N -nz N] [-pa N -pb N] [-m M]
//	       [-steps K] [-dt1 s -dt2 s] [-hs] [-exactc] [-nooverlap] [-nofuse]
//	dycore -auto [-procs P] [-profile machine.json] [...]
//	dycore -chaos plan.json [-max-restarts N] [-save ck -save-every K] [...]
//
// For -alg yz/ca the process grid is p_y × p_z = pa × pb; for -alg xy it is
// p_x × p_y. With -auto the autotuner (internal/tune) chooses the algorithm,
// process grid, worker count and y-row partition for -procs ranks instead;
// -profile supplies a calibrated machine profile (cadytune calibrate),
// otherwise the analytic Tianhe-like profile is used.
//
// With -chaos, the JSON fault plan (internal/fault) is injected into the
// run: stragglers, jitter and send errors perturb the simulated clock, and
// an injected rank crash aborts the run, which then restarts from the
// latest -save/-save-every checkpoint (from the initial state when none
// exists), up to -max-restarts times.
//
//cadyvet:persistence -save checkpoints are resumed from after a crash; writes go through checkpoint.WriteAtomic
package main

import (
	"flag"
	"fmt"
	"os"

	"cadycore/internal/balance"
	"cadycore/internal/checkpoint"
	"cadycore/internal/comm"
	"cadycore/internal/diag"
	"cadycore/internal/dycore"
	"cadycore/internal/fault"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/state"
	"cadycore/internal/trace"
	"cadycore/internal/tune"
)

func main() {
	alg := flag.String("alg", "ca", "algorithm: ca (communication-avoiding), yz, xy (original)")
	nx := flag.Int("nx", 120, "mesh points in longitude")
	ny := flag.Int("ny", 60, "mesh points in latitude")
	nz := flag.Int("nz", 16, "mesh levels")
	pa := flag.Int("pa", 2, "first process-grid extent (p_y, or p_x for -alg xy)")
	pb := flag.Int("pb", 2, "second process-grid extent (p_z, or p_y for -alg xy)")
	m := flag.Int("m", 3, "nonlinear iterations per step")
	steps := flag.Int("steps", 4, "time steps")
	dt1 := flag.Float64("dt1", 30, "adaptation time step (s)")
	dt2 := flag.Float64("dt2", 180, "advection time step (s)")
	hs := flag.Bool("hs", true, "apply Held-Suarez forcing between steps")
	exactC := flag.Bool("exactc", false, "ablation: disable the approximate nonlinear iteration")
	noOverlap := flag.Bool("nooverlap", false, "ablation: disable computation/communication overlap")
	noFuse := flag.Bool("nofuse", false, "ablation: disable the fused former/later smoothing")
	spectral := flag.Bool("spectral", false, "spectral smoothing fast path: composed-symbol FFT per zonal row (needs p_x = 1)")
	timeline := flag.Bool("timeline", false, "print a per-rank ASCII timeline of the simulated run")
	shiftPoles := flag.Bool("shiftpoles", false, "exact (antipodal-meridian) pole mirror; requires p_x = 1")
	saveFile := flag.String("save", "", "write a restart checkpoint to this file at the end")
	saveEvery := flag.Int("save-every", 0, "also write the -save checkpoint every K steps (crash durability; 0 = only at the end)")
	loadFile := flag.String("load", "", "initialize from a restart checkpoint instead of the H-S initial state")
	auto := flag.Bool("auto", false, "let the autotuner choose algorithm, process grid and row partition")
	procs := flag.Int("procs", 0, "rank budget for -auto (default pa*pb)")
	profilePath := flag.String("profile", "", "machine profile for -auto/-rebalance (default: analytic Tianhe-like profile)")
	rebalance := flag.Bool("rebalance", false, "live load rebalancing: watch per-rank compute, re-plan and migrate mid-run")
	chaosPath := flag.String("chaos", "", "fault-injection plan (JSON); crashed runs restart from the latest checkpoint")
	maxRestarts := flag.Int("max-restarts", 3, "restarts after an injected rank crash (use -save -save-every to keep progress)")
	flag.Parse()

	if *saveEvery < 0 {
		fmt.Fprintln(os.Stderr, "-save-every must be >= 0")
		os.Exit(2)
	}
	if *saveEvery > 0 && *saveFile == "" {
		fmt.Fprintln(os.Stderr, "-save-every requires -save")
		os.Exit(2)
	}
	if *rebalance && (*timeline || *saveEvery > 0) {
		fmt.Fprintln(os.Stderr, "-rebalance is incompatible with -timeline and -save-every")
		os.Exit(2)
	}

	cfg := dycore.DefaultConfig()
	cfg.M = *m
	cfg.Dt1, cfg.Dt2 = *dt1, *dt2
	cfg.ExactC, cfg.NoOverlap, cfg.NoFusedSmoothing = *exactC, *noOverlap, *noFuse
	cfg.SpectralSmooth = *spectral
	cfg.ShiftedPoleMirror = *shiftPoles

	g := grid.New(*nx, *ny, *nz)
	prof := tune.DefaultProfile()
	if *profilePath != "" {
		var err error
		if prof, err = tune.LoadProfile(*profilePath); err != nil {
			fmt.Fprintln(os.Stderr, "profile:", err)
			os.Exit(1)
		}
	}
	var set dycore.Setup
	if *auto {
		budget := *procs
		if budget == 0 {
			budget = *pa * *pb
		}
		planner := &tune.Planner{Profile: prof}
		plan, err := planner.Plan(g, budget, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "autotune:", err)
			os.Exit(1)
		}
		fmt.Printf("autotuned plan: %s (predicted %.4g s/step, pilot %.4g s/step)\n",
			plan, plan.PredictedStep, plan.PilotStep)
		set = plan.Setup(cfg)
	} else {
		var a dycore.Algorithm
		switch *alg {
		case "ca":
			a = dycore.AlgCommAvoid
		case "yz":
			a = dycore.AlgBaselineYZ
		case "xy":
			a = dycore.AlgBaselineXY
		default:
			fmt.Fprintln(os.Stderr, "unknown -alg:", *alg)
			os.Exit(2)
		}
		set = dycore.Setup{Alg: a, PA: *pa, PB: *pb, Cfg: cfg}
	}

	var hook dycore.StepHook
	if *hs {
		f := heldsuarez.Standard()
		hook = func(g *grid.Grid, st *state.State, step int) { f.Apply(g, st, cfg.Dt2) }
	}

	init := dycore.InitFunc(heldsuarez.InitialState)
	if *loadFile != "" {
		fh, err := os.Open(*loadFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "load:", err)
			os.Exit(1)
		}
		snap, err := checkpoint.Read(fh)
		fh.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "load:", err)
			os.Exit(1)
		}
		init = snap.InitFunc()
		fmt.Printf("restarting from %s\n", *loadFile)
	}

	fmt.Printf("%s on %s, process grid %dx%d (%d ranks), M=%d, %d steps\n",
		set.Alg, g, set.PA, set.PB, set.Procs(), set.Cfg.M, *steps)

	var inj *fault.Injector
	if *chaosPath != "" {
		plan, err := fault.Load(*chaosPath)
		if err == nil {
			err = plan.Validate(set.Procs())
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		inj = fault.New(plan)
	}

	var res dycore.RunResult
	var rec *comm.Recorder
	if *rebalance {
		cand, err := balance.CandidateOf(set)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rebalance:", err)
			os.Exit(1)
		}
		ctl, err := balance.NewController(balance.Policy{}, g, cfg, prof, *steps, cand)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rebalance:", err)
			os.Exit(1)
		}
		out, err := balance.Run(ctl, g, comm.TianheLike(), init, *steps, hook, inj, *maxRestarts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rebalance:", err)
			os.Exit(1)
		}
		if len(out.Migrations) == 0 {
			fmt.Println("rebalance: no migration needed")
		}
		for _, mg := range out.Migrations {
			fmt.Printf("rebalance: step %d migrated %s -> %s (predicted gain %.4g s, cost %.4g s)\n",
				mg.Step, mg.From, mg.To, mg.PredictedGain, mg.Cost)
		}
		set = out.Setup
		res.Agg = out.Agg
		res.Agg.SimTime = out.SimTime // include the modeled migration cost
		res.Count = out.Count
		res.Finals = out.Finals
		res.StepsDone = out.StepsDone
		finishRun(g, *saveFile, res, rec)
		return
	}

	// lastSnap/lastStep track the newest checkpoint in memory so an injected
	// crash can restart from it (the file written by -save-every is its
	// durable twin).
	var lastSnap *checkpoint.Global
	lastStep := 0
	segBase := 0
	segInit := init
	segResume := *loadFile != "" // checkpoint states owe deferred smoothing
	for attempt := 0; ; attempt++ {
		base := segBase
		opts := dycore.RunOpts{Hook: hook, Traced: *timeline, Resume: segResume}
		if *saveEvery > 0 {
			// The same snapshot cadence the job service uses: the runner
			// quiesces all ranks at the boundary, the callback gathers and
			// writes atomically (temp + fsync + rename) so a crash mid-write
			// never corrupts the previous checkpoint.
			opts.SnapshotEvery = *saveEvery
			opts.Snapshot = func(done int, sts []*state.State) {
				snap := checkpoint.Gather(g, sts)
				lastSnap, lastStep = snap, base+done
				if err := writeCheckpoint(*saveFile, snap); err != nil {
					fmt.Fprintln(os.Stderr, "save-every:", err)
					os.Exit(1)
				}
				fmt.Printf("checkpoint written to %s at step %d\n", *saveFile, base+done)
			}
		}
		if inj != nil {
			opts.Faults = inj.CommFaults(set.Procs())
			opts.CrashAt = inj.CrashFunc(base)
		}
		res, rec = dycore.RunWithOpts(set, g, comm.TianheLike(), segInit, *steps-base, opts)
		if res.Abort == nil {
			break
		}
		fmt.Printf("chaos: rank %d died after step %d\n", res.Abort.Rank, segBase+res.Abort.Step)
		if attempt >= *maxRestarts {
			fmt.Fprintf(os.Stderr, "chaos: restart budget %d exhausted\n", *maxRestarts)
			os.Exit(1)
		}
		if lastSnap != nil {
			segBase = lastStep
			segInit = lastSnap.InitFunc()
			segResume = true
		} else {
			segBase = 0
			segInit = init
			segResume = *loadFile != ""
		}
		fmt.Printf("chaos: restarting from step %d (restart %d/%d)\n", segBase, attempt+1, *maxRestarts)
	}

	finishRun(g, *saveFile, res, rec)
}

// finishRun writes the final checkpoint and prints the counter,
// communication, timeline and diagnostic reports shared by the plain and
// -rebalance run paths.
func finishRun(g *grid.Grid, saveFile string, res dycore.RunResult, rec *comm.Recorder) {
	if saveFile != "" {
		if err := writeCheckpoint(saveFile, checkpoint.Gather(g, res.Finals)); err != nil {
			fmt.Fprintln(os.Stderr, "save:", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written to %s\n", saveFile)
	}

	fmt.Printf("\n-- algorithm counters (rank 0) --\n")
	fmt.Printf("halo exchange rounds: %d\n", res.Count.HaloExchanges)
	fmt.Printf("C-evaluations (z-collectives): %d\n", res.Count.CEvaluations)
	fmt.Printf("filter applications: %d\n", res.Count.FilterCalls)

	fmt.Printf("\n-- communication (all ranks) --\n")
	fmt.Printf("messages sent: %d, bytes sent: %.3g MB\n",
		res.Agg.MsgsSent, float64(res.Agg.BytesSent)/1e6)
	fmt.Printf("collective ops entered: %d\n", res.Agg.Collectives)
	for _, cat := range comm.Categories() {
		fmt.Printf("  %-14s time %.4g s  msgs %d\n", cat, res.Agg.CommTime(cat), res.Agg.MsgsByCat[cat])
	}
	fmt.Printf("simulated total runtime: %.4g s (compute %.4g s)\n", res.Agg.SimTime, res.Agg.CompTimeMax)

	if rec != nil {
		fmt.Printf("\n-- simulated timeline --\n")
		fmt.Print(trace.Render(rec, 110).Format())
		u := trace.Utilization(rec)
		fmt.Printf("utilization: compute %.0f%%, communication %.0f%%, idle %.0f%%\n",
			100*u["compute"], 100*u["comm"], 100*u["idle"])
	}

	fmt.Printf("\n-- physical diagnostics --\n")
	fmt.Printf("all finite: %v\n", diag.AllFinite(res.Finals))
	fmt.Printf("mean surface pressure: %.2f hPa\n", diag.MeanSurfacePressure(g, res.Finals)/100)
	fmt.Printf("global dry mass: %.6g kg\n", diag.GlobalDryMass(g, res.Finals))
	fmt.Printf("max wind: %.2f m/s\n", diag.MaxWind(g, res.Finals))
	fmt.Printf("kinetic energy: %.6g, available energy: %.6g\n",
		diag.KineticEnergy(g, res.Finals), diag.AvailableEnergy(g, res.Finals))
}

// writeCheckpoint writes the snapshot durably through the blessed commit
// helper. The previous hand-rolled copy of the protocol stopped after the
// rename: without the parent-directory fsync a power loss could drop the
// just-renamed entry, losing the checkpoint the rename claimed to commit.
func writeCheckpoint(path string, snap *checkpoint.Global) error {
	return checkpoint.WriteAtomic(path, snap)
}
