// Command bench runs the kernel micro-benchmarks through testing.Benchmark
// and emits the results as JSON (BENCH_kernels.json by default) — a
// machine-readable record of the performance work: the real-FFT polar-filter
// fast path vs the complex reference, the zero-allocation stencil kernels,
// and the steady-state integrator step.
//
// The allocs/op column is the dynamic counterpart of the static allocfree
// check (`go vet -vettool` with cmd/cadyvet): every //cadyvet:allocfree hot
// path here — filter_apply, the three stencil kernels, both steps and the
// rfft row — reports 0 allocs/op. fft_complex's 1 alloc/op is the waived
// nil-scratch convenience path, which this benchmark exercises on purpose.
//
// Usage:
//
//	bench [-o BENCH_kernels.json] [-nx 96 -ny 48 -nz 12]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/field"
	"cadycore/internal/fft"
	"cadycore/internal/filter"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/operators"
	"cadycore/internal/state"
)

// result is one benchmark row of the JSON report.
type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
}

func run(name string, fn func(b *testing.B)) result {
	r := testing.Benchmark(fn)
	res := result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		N:           r.N,
	}
	fmt.Printf("%-28s %12.0f ns/op %8d allocs/op %10d B/op\n",
		res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	return res
}

func benchState(g *grid.Grid) (*state.State, field.Block) {
	b := field.Block{
		Nx: g.Nx, Ny: g.Ny, Nz: g.Nz,
		I0: 0, I1: g.Nx, J0: 0, J1: g.Ny, K0: 0, K1: g.Nz,
		Hx: 3, Hy: 2, Hz: 1,
	}
	st := state.New(b)
	heldsuarez.InitialState(g, st)
	st.FillLocalBounds()
	return st, b
}

func main() {
	out := flag.String("o", "BENCH_kernels.json", "output JSON file")
	nx := flag.Int("nx", 96, "mesh points in longitude")
	ny := flag.Int("ny", 48, "mesh points in latitude")
	nz := flag.Int("nz", 12, "mesh levels")
	flag.Parse()

	g := grid.New(*nx, *ny, *nz)
	var results []result

	// FFT: the complex plan vs the half-spectrum real plan at the mesh's
	// zonal extent. The real plan is the polar filter's fast path.
	n := g.Nx
	results = append(results, run("fft_complex", func(b *testing.B) {
		p := fft.NewPlan(n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(float64(i%7), 0)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Forward(x)
		}
	}))
	results = append(results, run("fft_real_halfspectrum", func(b *testing.B) {
		rp := fft.NewRealPlan(n)
		src := make([]float64, n)
		for i := range src {
			src[i] = float64(i % 7)
		}
		spec := make([]complex128, rp.SpecLen())
		scratch := make([]complex128, rp.ScratchLen())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rp.Forward(src, spec, scratch)
		}
	}))

	// Polar filter over the full owned rect (rfft path, allocation-free).
	results = append(results, run("filter_apply", func(b *testing.B) {
		st, blk := benchState(g)
		rng := rand.New(rand.NewSource(1))
		for i := range st.Phi.Data {
			st.Phi.Data[i] = rng.NormFloat64()
		}
		f := filter.New(g, 60)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Apply(st.Phi, blk.Owned())
		}
	}))

	// Stencil kernels over the owned rect.
	results = append(results, run("adaptation_kernel", func(b *testing.B) {
		st, blk := benchState(g)
		sur := operators.NewSurface(blk)
		sur.Update(st.Psa)
		divp := field.NewF3(blk)
		operators.DivP(g, st.U, st.V, sur, divp, blk.Owned())
		cres := operators.NewCRes(blk)
		operators.CSum(g, nil, nil, divp, cres, blk.Owned(), 0, g.Nz)
		out := operators.NewTendency(blk)
		cfg := operators.DefaultAdaptConfig()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			operators.Adaptation(g, cfg, st, sur, cres, out, blk.Owned())
		}
	}))
	results = append(results, run("advection_kernel", func(b *testing.B) {
		st, blk := benchState(g)
		sur := operators.NewSurface(blk)
		sur.Update(st.Psa)
		divp := field.NewF3(blk)
		operators.DivP(g, st.U, st.V, sur, divp, blk.Owned())
		cres := operators.NewCRes(blk)
		operators.CSum(g, nil, nil, divp, cres, blk.Owned(), 0, g.Nz)
		cres.PWI.FillXPeriodic()
		cres.DBar.FillXPeriodic()
		field.FillPolesY(cres.PWI, field.Even, field.CenterY)
		out := operators.NewTendency(blk)
		sc := operators.NewAdvScratch(blk)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			operators.AdvectionScratch(g, st, sur, cres, out, blk.Owned(), sc)
		}
	}))
	results = append(results, run("smoothing_kernel", func(b *testing.B) {
		st, blk := benchState(g)
		smo := operators.NewSmoother(g, 1.0)
		dst := state.New(blk)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			smo.SmoothFull(st, dst, blk.Owned())
		}
	}))

	// Steady-state single-rank integrator steps (the 0 allocs/op claim).
	for _, alg := range []dycore.Algorithm{dycore.AlgBaselineYZ, dycore.AlgCommAvoid} {
		alg := alg
		results = append(results, run("step_"+alg.String(), func(b *testing.B) {
			cfg := dycore.DefaultConfig()
			cfg.Dt1, cfg.Dt2 = 40, 240
			s := dycore.Setup{Alg: alg, PA: 1, PB: 1, Cfg: cfg}
			w := comm.NewWorld(1, comm.Zero())
			w.Run(func(c *comm.Comm) {
				tp, ig := s.Build(c, g)
				st := state.New(tp.Block)
				heldsuarez.InitialState(g, st)
				ig.(dycore.StateSetter).SetState(st)
				ig.Step() // warm up exchange buffers
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ig.Step()
				}
			})
		}))
	}

	report := map[string]interface{}{
		"mesh":    map[string]int{"nx": g.Nx, "ny": g.Ny, "nz": g.Nz},
		"results": results,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
