// Command bench runs the kernel micro-benchmarks through testing.Benchmark
// and emits the results as JSON (BENCH_kernels.json by default) — a
// machine-readable record of the performance work: the real-FFT polar-filter
// fast path vs the complex reference, the zero-allocation stencil kernels,
// and the steady-state integrator step.
//
// The allocs/op column is the dynamic counterpart of the static allocfree
// check (`go vet -vettool` with cmd/cadyvet): every //cadyvet:allocfree hot
// path here — filter_apply, the three stencil kernels, both steps and the
// rfft row — reports 0 allocs/op. fft_complex's 1 alloc/op is the waived
// nil-scratch convenience path, which this benchmark exercises on purpose.
//
// Usage:
//
//	bench [-o BENCH_kernels.json] [-nx 96 -ny 48 -nz 12]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"
	"time"

	"cadycore/internal/balance"
	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/fault"
	"cadycore/internal/fft"
	"cadycore/internal/field"
	"cadycore/internal/filter"
	"cadycore/internal/grid"
	"cadycore/internal/harness"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/operators"
	"cadycore/internal/state"
	"cadycore/internal/tune"
)

// result is one benchmark row of the JSON report.
type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
	// SimNsPerStep is the LogP-simulated nanoseconds per step of the
	// multi-rank step rows (step_*_overlap, step_*_quiesced); 0 elsewhere.
	SimNsPerStep float64 `json:"sim_ns_per_step,omitempty"`
	// OverlapFraction is hidden/(hidden+exposed) communication time of the
	// multi-rank step rows: the share of communication the critical-path
	// ranks covered with interior compute.
	OverlapFraction float64 `json:"overlap_fraction,omitempty"`
	// CompImbalance is the max/min per-rank simulated compute ratio of the
	// multi-rank step rows (1 = perfectly balanced; 0 = single rank).
	CompImbalance float64 `json:"comp_imbalance,omitempty"`
	// Exchangers carries the per-exchanger Begin/Finish and hidden/exposed
	// accounting of the multi-rank step rows.
	Exchangers []exchRow `json:"exchangers,omitempty"`
}

// exchRow is one exchanger's overlap accounting in the JSON report.
type exchRow struct {
	Label     string  `json:"label"`
	Begins    int64   `json:"begins"`
	Finishes  int64   `json:"finishes"`
	HiddenNs  float64 `json:"hidden_ns"`
	ExposedNs float64 `json:"exposed_ns"`
}

func run(name string, fn func(b *testing.B)) result {
	r := testing.Benchmark(fn)
	res := result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		N:           r.N,
	}
	fmt.Printf("%-28s %12.0f ns/op %8d allocs/op %10d B/op\n",
		res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	return res
}

// stepParallel runs a multi-rank LogP step benchmark: `steps` steps of the
// algorithm on a TianheLike world, with the Held–Suarez hook keeping the
// forcing path hot. It reports both the real wall clock per step (ns_per_op)
// and the simulated step time with its overlap accounting.
func stepParallel(name string, alg dycore.Algorithm, g *grid.Grid, procs, steps int, noOverlap, spectral bool) result {
	py, pz, ok := harness.YZFactors(procs, g.Ny, g.Nz)
	if !ok {
		fmt.Fprintf(os.Stderr, "no Y-Z layout for p=%d on %dx%dx%d; skipping %s\n",
			procs, g.Nx, g.Ny, g.Nz, name)
		return result{Name: name}
	}
	cfg := dycore.DefaultConfig()
	cfg.Dt1, cfg.Dt2 = 40, 240
	cfg.NoOverlap = noOverlap
	cfg.SpectralSmooth = spectral
	set := dycore.Setup{Alg: alg, PA: py, PB: pz, Cfg: cfg}
	hs := heldsuarez.Standard()
	hook := func(g *grid.Grid, st *state.State, step int) { hs.Apply(g, st, cfg.Dt2) }
	t0 := time.Now()
	res := dycore.RunWithHook(set, g, comm.TianheLike(), heldsuarez.InitialState, steps, hook)
	wall := time.Since(t0)
	row := result{
		Name:            name,
		NsPerOp:         float64(wall.Nanoseconds()) / float64(steps),
		N:               steps,
		SimNsPerStep:    res.Agg.SimTime * 1e9 / float64(steps),
		OverlapFraction: res.Agg.OverlapFraction(),
		CompImbalance:   res.Agg.CompImbalance(),
	}
	for _, ex := range res.Exch {
		row.Exchangers = append(row.Exchangers, exchRow{
			Label:     ex.Label,
			Begins:    ex.Begins,
			Finishes:  ex.Finishes,
			HiddenNs:  ex.HiddenSec * 1e9,
			ExposedNs: ex.ExposedSec * 1e9,
		})
	}
	fmt.Printf("%-28s %12.0f ns/op %12.0f sim-ns/step %8.1f%% overlapped\n",
		row.Name, row.NsPerOp, row.SimNsPerStep, 100*row.OverlapFraction)
	return row
}

// compareOverlap prints the overlapped-vs-quiesced LogP step time of the
// figure-6/7/8 cells (the -compare mode).
func compareOverlap(g *grid.Grid, procs, steps int) {
	fmt.Printf("overlap comparison on %dx%dx%d, p=%d (%d steps, TianheLike):\n",
		g.Nx, g.Ny, g.Nz, procs, steps)
	var caOv result
	for _, alg := range []dycore.Algorithm{dycore.AlgBaselineYZ, dycore.AlgCommAvoid} {
		ov := stepParallel("step_"+alg.String()+"_overlap", alg, g, procs, steps, false, false)
		qu := stepParallel("step_"+alg.String()+"_quiesced", alg, g, procs, steps, true, false)
		if alg == dycore.AlgCommAvoid {
			caOv = ov
		}
		if ov.SimNsPerStep <= 0 || qu.SimNsPerStep <= 0 {
			continue
		}
		fmt.Printf("  %-12s sim step %.3f ms overlapped vs %.3f ms quiesced (%.1f%% faster, overlap fraction %.1f%%)\n",
			alg.String(), ov.SimNsPerStep/1e6, qu.SimNsPerStep/1e6,
			100*(1-ov.SimNsPerStep/qu.SimNsPerStep), 100*ov.OverlapFraction)
	}
	sp := stepParallel("step_ca_spectral", dycore.AlgCommAvoid, g, procs, steps, false, true)
	if sp.SimNsPerStep > 0 && caOv.SimNsPerStep > 0 {
		fmt.Printf("  %-12s sim step %.3f ms spectral vs %.3f ms stencil (%.1f%% faster)\n",
			"ca-spectral", sp.SimNsPerStep/1e6, caOv.SimNsPerStep/1e6,
			100*(1-sp.SimNsPerStep/caOv.SimNsPerStep))
	}
}

// compareSpectral runs the comm-avoiding figure-mesh cell with stencil and
// spectral smoothing back to back and prints one machine-parseable line:
// the LogP sim step time of each path and the normalized final-state
// deviation between them. The CI spectral smoke asserts spectral < stencil
// and reldiff within tolerance from this output.
func compareSpectral(g *grid.Grid, procs, steps int) {
	py, pz, ok := harness.YZFactors(procs, g.Ny, g.Nz)
	if !ok {
		fmt.Fprintf(os.Stderr, "no Y-Z layout for p=%d on %dx%dx%d\n", procs, g.Nx, g.Ny, g.Nz)
		os.Exit(1)
	}
	cfg := dycore.DefaultConfig()
	cfg.Dt1, cfg.Dt2 = 40, 240
	hs := heldsuarez.Standard()
	hook := func(g *grid.Grid, st *state.State, step int) { hs.Apply(g, st, cfg.Dt2) }
	runOne := func(spectral bool) dycore.RunResult {
		c := cfg
		c.SpectralSmooth = spectral
		set := dycore.Setup{Alg: dycore.AlgCommAvoid, PA: py, PB: pz, Cfg: c}
		return dycore.RunWithHook(set, g, comm.TianheLike(), heldsuarez.InitialState, steps, hook)
	}
	sten := runOne(false)
	spec := runOne(true)
	scale := 0.0
	for _, v := range dycore.FlattenState(g, sten.Finals) {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	rel := dycore.MaxDiffGlobal(g, sten.Finals, spec.Finals) / (1 + scale)
	fmt.Printf("spectral_sim_ms=%.6f stencil_sim_ms=%.6f reldiff=%.3e\n",
		spec.Agg.SimTime*1e3/float64(steps), sten.Agg.SimTime*1e3/float64(steps), rel)
}

// rebalRow is one row of the -rebalance report: a full 24-step simulation of
// the same configuration under different fault/runtime conditions.
type rebalRow struct {
	Name string `json:"name"`
	// SimTimeS is the end-to-end simulated seconds (for the rebalanced row:
	// including the modeled migration cost).
	SimTimeS      float64 `json:"sim_time_s"`
	CompImbalance float64 `json:"comp_imbalance"`
	Migrations    int     `json:"migrations,omitempty"`
}

// compareRebalance runs the straggler scenario of the live-rebalancing soak
// (48x24x8 Y-Z mesh on 4 ranks, rank 3 slowed 10x) three ways — no fault,
// static layout under the straggler, and live-rebalanced under the straggler
// — and writes the comparison to `out`.
func compareRebalance(out string) {
	g := grid.New(48, 24, 8)
	cfg := dycore.DefaultConfig()
	cfg.M = 2
	cfg.Dt1, cfg.Dt2 = 40, 240
	set := dycore.Setup{Alg: dycore.AlgBaselineYZ, PA: 4, PB: 1, Cfg: cfg}
	const steps = 24
	hs := heldsuarez.Standard()
	hook := func(g *grid.Grid, st *state.State, step int) { hs.Apply(g, st, cfg.Dt2) }
	plan := fault.Plan{Seed: 1, Stragglers: []fault.Straggler{{Rank: 3, Scale: 10}}}
	pol := balance.Policy{Window: 4, Patience: 1, Cooldown: 1}

	row := func(name string, inject bool) rebalRow {
		opts := dycore.RunOpts{Hook: hook}
		if inject {
			opts.Faults = fault.New(plan).CommFaults(set.Procs())
		}
		res, _ := dycore.RunWithOpts(set, g, comm.TianheLike(), heldsuarez.InitialState, steps, opts)
		return rebalRow{Name: name, SimTimeS: res.Agg.SimTime, CompImbalance: res.Agg.CompImbalance()}
	}
	rows := []rebalRow{row("baseline_no_fault", false), row("static_straggler", true)}

	cand, err := balance.CandidateOf(set)
	if err == nil {
		var ctl *balance.Controller
		if ctl, err = balance.NewController(pol, g, cfg, tune.DefaultProfile(), steps, cand); err == nil {
			var o balance.Outcome
			if o, err = balance.Run(ctl, g, comm.TianheLike(), heldsuarez.InitialState, steps, hook, fault.New(plan), 3); err == nil {
				rows = append(rows, rebalRow{
					Name: "rebalanced_straggler", SimTimeS: o.SimTime,
					CompImbalance: o.Agg.CompImbalance(), Migrations: len(o.Migrations),
				})
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rebalance:", err)
		os.Exit(1)
	}

	for _, r := range rows {
		fmt.Printf("%-24s sim %.4f s  comp imbalance %.3f  migrations %d\n",
			r.Name, r.SimTimeS, r.CompImbalance, r.Migrations)
	}
	speedup := rows[1].SimTimeS / rows[2].SimTimeS
	fmt.Printf("rebalanced is %.1f%% faster than the static layout under the straggler\n",
		100*(1-rows[2].SimTimeS/rows[1].SimTimeS))

	report := map[string]interface{}{
		"mesh":                  map[string]int{"nx": g.Nx, "ny": g.Ny, "nz": g.Nz},
		"procs":                 set.Procs(),
		"steps":                 steps,
		"straggler":             map[string]float64{"rank": 3, "scale": 10},
		"policy":                pol,
		"results":               rows,
		"speedup_vs_static":     speedup,
		"rebalanced_faster_pct": 100 * (1 - rows[2].SimTimeS/rows[1].SimTimeS),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", out)
}

func benchState(g *grid.Grid) (*state.State, field.Block) {
	b := field.Block{
		Nx: g.Nx, Ny: g.Ny, Nz: g.Nz,
		I0: 0, I1: g.Nx, J0: 0, J1: g.Ny, K0: 0, K1: g.Nz,
		Hx: 3, Hy: 2, Hz: 1,
	}
	st := state.New(b)
	heldsuarez.InitialState(g, st)
	st.FillLocalBounds()
	return st, b
}

func main() {
	out := flag.String("o", "BENCH_kernels.json", "output JSON file")
	nx := flag.Int("nx", 96, "mesh points in longitude")
	ny := flag.Int("ny", 48, "mesh points in latitude")
	nz := flag.Int("nz", 12, "mesh levels")
	procs := flag.Int("p", 16, "ranks for the multi-rank step rows")
	steps := flag.Int("steps", 2, "steps per multi-rank step row")
	compare := flag.Bool("compare", false,
		"compare overlapped vs quiesced LogP step time on the figure-6/7/8 mesh and exit")
	rebal := flag.Bool("rebalance", false,
		"compare static vs live-rebalanced layout under a seeded straggler, write BENCH_rebalance.json and exit")
	spectral := flag.Bool("spectral", false,
		"compare spectral vs stencil smoothing on the CA figure-mesh cell (one parseable line) and exit")
	flag.Parse()

	g := grid.New(*nx, *ny, *nz)
	if *compare {
		compareOverlap(g, *procs, *steps)
		return
	}
	if *spectral {
		compareSpectral(g, *procs, *steps)
		return
	}
	if *rebal {
		o := *out
		if o == "BENCH_kernels.json" {
			o = "BENCH_rebalance.json"
		}
		compareRebalance(o)
		return
	}
	var results []result

	// FFT: the complex plan vs the half-spectrum real plan at the mesh's
	// zonal extent. The real plan is the polar filter's fast path.
	n := g.Nx
	results = append(results, run("fft_complex", func(b *testing.B) {
		p := fft.NewPlan(n)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(float64(i%7), 0)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Forward(x)
		}
	}))
	results = append(results, run("fft_real_halfspectrum", func(b *testing.B) {
		rp := fft.NewRealPlan(n)
		src := make([]float64, n)
		for i := range src {
			src[i] = float64(i % 7)
		}
		spec := make([]complex128, rp.SpecLen())
		scratch := make([]complex128, rp.ScratchLen())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rp.Forward(src, spec, scratch)
		}
	}))

	// Polar filter over the full owned rect (rfft path, allocation-free).
	results = append(results, run("filter_apply", func(b *testing.B) {
		st, blk := benchState(g)
		rng := rand.New(rand.NewSource(1))
		for i := range st.Phi.Data {
			st.Phi.Data[i] = rng.NormFloat64()
		}
		f := filter.New(g, 60)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Apply(st.Phi, blk.Owned())
		}
	}))

	// Stencil kernels over the owned rect.
	results = append(results, run("adaptation_kernel", func(b *testing.B) {
		st, blk := benchState(g)
		sur := operators.NewSurface(blk)
		sur.Update(st.Psa)
		divp := field.NewF3(blk)
		operators.DivP(g, st.U, st.V, sur, divp, blk.Owned())
		cres := operators.NewCRes(blk)
		operators.CSum(g, nil, nil, divp, cres, blk.Owned(), 0, g.Nz)
		out := operators.NewTendency(blk)
		cfg := operators.DefaultAdaptConfig()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			operators.Adaptation(g, cfg, st, sur, cres, out, blk.Owned())
		}
	}))
	results = append(results, run("advection_kernel", func(b *testing.B) {
		st, blk := benchState(g)
		sur := operators.NewSurface(blk)
		sur.Update(st.Psa)
		divp := field.NewF3(blk)
		operators.DivP(g, st.U, st.V, sur, divp, blk.Owned())
		cres := operators.NewCRes(blk)
		operators.CSum(g, nil, nil, divp, cres, blk.Owned(), 0, g.Nz)
		cres.PWI.FillXPeriodic()
		cres.DBar.FillXPeriodic()
		field.FillPolesY(cres.PWI, field.Even, field.CenterY)
		out := operators.NewTendency(blk)
		sc := operators.NewAdvScratch(blk)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			operators.AdvectionScratch(g, st, sur, cres, out, blk.Owned(), sc)
		}
	}))
	results = append(results, run("smoothing_kernel", func(b *testing.B) {
		st, blk := benchState(g)
		smo := operators.NewSmoother(g, 1.0)
		dst := state.New(blk)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			smo.SmoothFull(st, dst, blk.Owned())
		}
	}))
	results = append(results, run("smoothing_kernel_spectral", func(b *testing.B) {
		st, blk := benchState(g)
		spe := operators.NewSpectralSmoother(g, operators.NewSmoother(g, 1.0))
		dst := state.New(blk)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			spe.SmoothFull(st, dst, blk.Owned())
		}
	}))

	// Steady-state single-rank integrator steps (the 0 allocs/op claim).
	for _, alg := range []dycore.Algorithm{dycore.AlgBaselineYZ, dycore.AlgCommAvoid} {
		alg := alg
		results = append(results, run("step_"+alg.String(), func(b *testing.B) {
			cfg := dycore.DefaultConfig()
			cfg.Dt1, cfg.Dt2 = 40, 240
			s := dycore.Setup{Alg: alg, PA: 1, PB: 1, Cfg: cfg}
			w := comm.NewWorld(1, comm.Zero())
			w.Run(func(c *comm.Comm) {
				tp, ig := s.Build(c, g)
				st := state.New(tp.Block)
				heldsuarez.InitialState(g, st)
				ig.(dycore.StateSetter).SetState(st)
				ig.Step() // warm up exchange buffers
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ig.Step()
				}
			})
		}))
	}

	// Multi-rank LogP step rows: overlapped vs quiesced, with the
	// per-exchanger hidden/exposed split (the overlap-fraction observable).
	for _, alg := range []dycore.Algorithm{dycore.AlgBaselineYZ, dycore.AlgCommAvoid} {
		results = append(results,
			stepParallel("step_"+alg.String()+"_overlap", alg, g, *procs, *steps, false, false),
			stepParallel("step_"+alg.String()+"_quiesced", alg, g, *procs, *steps, true, false))
	}
	// The spectral-smoothing CA row: same cell as step_ca_overlap with the
	// composed-symbol fast path on — the BENCH_kernels.json evidence for the
	// spectral step-time improvement.
	results = append(results,
		stepParallel("step_ca_spectral", dycore.AlgCommAvoid, g, *procs, *steps, false, true))

	report := map[string]interface{}{
		"mesh":    map[string]int{"nx": g.Nx, "ny": g.Ny, "nz": g.Nz},
		"results": results,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
