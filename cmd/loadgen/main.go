// Command loadgen is a closed-loop load generator for the simulation job
// service: C concurrent clients each submit a job, poll it to a terminal
// state, and immediately submit the next, until N jobs have completed. It
// reports submit-to-complete latency quantiles, throughput and the
// admission-control rejection count as BENCH_service.json — the
// service-level companion of cmd/bench's kernel benchmarks.
//
// Usage:
//
//	loadgen [-addr host:port] [-n 24] [-c 4] [-steps 2] [-auto]
//	        [-ckpt-every k] [-max-restarts r] [-o BENCH_service.json]
//
// With -auto every job is submitted as {"layout": "auto", "procs": pa*pb}:
// the service's planner (internal/tune) chooses the algorithm, process grid
// and row partition, so the benchmark exercises the planning path end to end.
//
// Without -addr it boots an in-process service (-workers, -queue size it)
// on a loopback listener, so the benchmark is self-contained.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cadycore/internal/server"
)

type benchReport struct {
	Target    string `json:"target"`
	Jobs      int    `json:"jobs"`
	Clients   int    `json:"clients"`
	Workers   int    `json:"workers,omitempty"` // self-serve mode
	QueueCap  int    `json:"queue_cap,omitempty"`
	Steps     int    `json:"steps_per_job"`
	Auto      bool   `json:"auto_layout,omitempty"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	// Retries counts transient backpressure responses (429/503) the client
	// waited out per the server's Retry-After header before resubmitting;
	// Rejected counts submissions that gave up after exhausting retries.
	// Before this distinction every retried 429 was reported as a reject.
	Retries       int64   `json:"backpressure_retries"`
	Rejected      int64   `json:"rejected_submits"`
	WallSec       float64 `json:"wall_sec"`
	ThroughputJPS float64 `json:"throughput_jobs_per_sec"`
	StepsPerSec   float64 `json:"steps_per_sec"`
	P50Ms         float64 `json:"latency_p50_ms"`
	P90Ms         float64 `json:"latency_p90_ms"`
	P99Ms         float64 `json:"latency_p99_ms"`
	MeanMs        float64 `json:"latency_mean_ms"`
}

func main() {
	addr := flag.String("addr", "", "target service address (empty: boot an in-process service)")
	n := flag.Int("n", 24, "total jobs to complete")
	c := flag.Int("c", 4, "concurrent closed-loop clients")
	workers := flag.Int("workers", 2, "in-process service: worker pool size")
	queue := flag.Int("queue", 4, "in-process service: admission queue bound")
	alg := flag.String("alg", "yz", "job algorithm: ca, yz, xy")
	nx := flag.Int("nx", 48, "mesh points in longitude")
	ny := flag.Int("ny", 24, "mesh points in latitude")
	nz := flag.Int("nz", 8, "mesh levels")
	pa := flag.Int("pa", 2, "first process-grid extent")
	pb := flag.Int("pb", 2, "second process-grid extent")
	m := flag.Int("m", 2, "nonlinear iterations per step")
	steps := flag.Int("steps", 2, "steps per job")
	auto := flag.Bool("auto", false, "submit auto-layout jobs (planner picks alg/pa/pb for pa*pb ranks)")
	ckptEvery := flag.Int("ckpt-every", 0, "checkpoint jobs every k steps (0: only stop-triggered snapshots)")
	maxRestarts := flag.Int("max-restarts", -1, "per-job automatic restart budget (<0: server default)")
	out := flag.String("o", "BENCH_service.json", "output JSON path")
	flag.Parse()

	base := *addr
	rep := benchReport{Jobs: *n, Clients: *c, Steps: *steps}
	if base == "" {
		srv, err := server.New(server.Config{Workers: *workers, QueueCap: *queue})
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		go http.Serve(ln, srv)
		base = ln.Addr().String()
		rep.Workers = *workers
		rep.QueueCap = *queue
		fmt.Printf("loadgen: self-serving on %s (%d workers, queue %d)\n", base, *workers, *queue)
	}
	rep.Target = "http://" + base

	spec := map[string]any{
		"alg": *alg, "nx": *nx, "ny": *ny, "nz": *nz,
		"pa": *pa, "pb": *pb, "m": *m, "steps": *steps,
	}
	if *auto {
		spec = map[string]any{
			"layout": "auto", "procs": *pa * *pb,
			"nx": *nx, "ny": *ny, "nz": *nz, "m": *m, "steps": *steps,
		}
		rep.Auto = true
	}
	if *ckptEvery > 0 {
		spec["checkpoint_every"] = *ckptEvery
	}
	if *maxRestarts >= 0 {
		spec["max_restarts"] = *maxRestarts
	}
	specB, _ := json.Marshal(spec)

	var (
		mu        sync.Mutex
		latencies []time.Duration
		failed    int
		retries   atomic.Int64
		rejected  atomic.Int64
		remaining atomic.Int64
	)
	remaining.Store(int64(*n))
	client := &http.Client{Timeout: 30 * time.Second}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *c; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for remaining.Add(-1) >= 0 {
				t0 := time.Now()
				id, ok := submit(client, rep.Target, specB, &retries, &rejected)
				if !ok {
					mu.Lock()
					failed++
					mu.Unlock()
					continue
				}
				state := poll(client, rep.Target, id)
				lat := time.Since(t0)
				mu.Lock()
				if state == "completed" {
					latencies = append(latencies, lat)
				} else {
					failed++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	rep.WallSec = time.Since(start).Seconds()
	rep.Completed = len(latencies)
	rep.Failed = failed
	rep.Retries = retries.Load()
	rep.Rejected = rejected.Load()
	if rep.WallSec > 0 {
		rep.ThroughputJPS = float64(rep.Completed) / rep.WallSec
		rep.StepsPerSec = float64(rep.Completed**steps) / rep.WallSec
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50Ms = quantileMs(latencies, 0.50)
	rep.P90Ms = quantileMs(latencies, 0.90)
	rep.P99Ms = quantileMs(latencies, 0.99)
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	if len(latencies) > 0 {
		rep.MeanMs = float64(sum.Milliseconds()) / float64(len(latencies))
	}

	b, _ := json.MarshalIndent(rep, "", "  ")
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	fmt.Printf("completed %d/%d jobs in %.2fs (%.1f jobs/s), backpressure retries %d, rejected submits %d, p50 %.0fms p99 %.0fms -> %s\n",
		rep.Completed, rep.Jobs, rep.WallSec, rep.ThroughputJPS, rep.Retries, rep.Rejected, rep.P50Ms, rep.P99Ms, *out)
	if rep.Completed < rep.Jobs {
		os.Exit(1)
	}
}

// submit posts the job, retrying transient backpressure (429/503) with the
// closed-loop client parked for the server's advertised Retry-After —
// exactly what admission control is for. Retried responses count as
// backpressure retries; only a submission that gives up counts as rejected.
func submit(client *http.Client, base string, spec []byte, retries, rejected *atomic.Int64) (string, bool) {
	for attempt := 0; attempt < 2000; attempt++ {
		resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(spec))
		if err != nil {
			return "", false
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var st struct {
				ID string `json:"id"`
			}
			err := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			return st.ID, err == nil && st.ID != ""
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			wait := retryAfter(resp, 50*time.Millisecond)
			resp.Body.Close()
			retries.Add(1)
			time.Sleep(wait)
		default:
			resp.Body.Close()
			return "", false
		}
	}
	rejected.Add(1)
	return "", false
}

// retryAfter parses the delay-seconds form of the Retry-After header,
// falling back when it is absent or malformed.
func retryAfter(resp *http.Response, fallback time.Duration) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return fallback
}

func poll(client *http.Client, base, id string) string {
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/jobs/" + id)
		if err != nil {
			return "error"
		}
		var st struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return "error"
		}
		switch st.State {
		case "completed", "failed", "cancelled", "interrupted":
			return st.State
		}
		time.Sleep(5 * time.Millisecond)
	}
	return "timeout"
}

func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}
