// Command loadgen is a closed-loop load generator for the simulation job
// service: C concurrent clients each submit a job, poll it to a terminal
// state, and immediately submit the next, until N jobs have completed. It
// reports submit-to-complete latency quantiles, throughput and the
// admission-control rejection count as BENCH_service.json — the
// service-level companion of cmd/bench's kernel benchmarks.
//
// Usage:
//
//	loadgen [-addr host:port] [-n 24] [-c 4] [-steps 2] [-auto]
//	        [-ckpt-every k] [-max-restarts r] [-tenants t] [-ensemble k]
//	        [-fleet b] [-o BENCH_service.json]
//
// With -auto every job is submitted as {"layout": "auto", "procs": pa*pb}:
// the service's planner (internal/tune) chooses the algorithm, process grid
// and row partition, so the benchmark exercises the planning path end to end.
//
// With -tenants T the clients spread submissions over T tenants via the
// X-Tenant header and the report adds a per-tenant latency/reject breakdown
// — the multi-tenant fairness view of the same closed loop.
//
// With -fleet B the self-contained service is a sharded fleet: one
// cadyfleet-style coordinator fronting B in-process cadyserved backends over
// a shared checkpoint store, all on loopback. -workers/-queue size each
// backend. With -ensemble K every submission is a K-member ensemble
// (coordinator only) and a "job" completes when all members do.
//
// Without -addr it boots an in-process service (-workers, -queue size it)
// on a loopback listener, so the benchmark is self-contained.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cadycore/internal/checkpoint"
	"cadycore/internal/fleet"
	"cadycore/internal/server"
)

type latencyStats struct {
	P50Ms  float64 `json:"latency_p50_ms"`
	P90Ms  float64 `json:"latency_p90_ms"`
	P99Ms  float64 `json:"latency_p99_ms"`
	MeanMs float64 `json:"latency_mean_ms"`
}

type tenantReport struct {
	Completed int   `json:"completed"`
	Failed    int   `json:"failed"`
	Retries   int64 `json:"backpressure_retries"`
	Rejected  int64 `json:"rejected_submits"`
	latencyStats
}

type benchReport struct {
	Target     string `json:"target"`
	Jobs       int    `json:"jobs"`
	Clients    int    `json:"clients"`
	Workers    int    `json:"workers,omitempty"` // self-serve mode
	QueueCap   int    `json:"queue_cap,omitempty"`
	Steps      int    `json:"steps_per_job"`
	Auto       bool   `json:"auto_layout,omitempty"`
	Fleet      int    `json:"fleet_backends,omitempty"`
	Ensemble   int    `json:"ensemble_members,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Completed  int    `json:"completed"`
	Failed     int    `json:"failed"`
	// Retries counts transient backpressure responses (429/503) the client
	// waited out per the server's Retry-After header before resubmitting;
	// Rejected counts submissions that gave up after exhausting retries.
	// Before this distinction every retried 429 was reported as a reject.
	Retries       int64   `json:"backpressure_retries"`
	Rejected      int64   `json:"rejected_submits"`
	WallSec       float64 `json:"wall_sec"`
	ThroughputJPS float64 `json:"throughput_jobs_per_sec"`
	StepsPerSec   float64 `json:"steps_per_sec"`
	latencyStats

	// Tenants is the per-tenant breakdown when -tenants > 0.
	Tenants map[string]tenantReport `json:"tenants,omitempty"`
}

// perTenant accumulates one tenant's outcomes under the report mutex.
type perTenant struct {
	latencies []time.Duration
	failed    int
	retries   int64
	rejected  int64
}

func main() {
	addr := flag.String("addr", "", "target service address (empty: boot an in-process service)")
	n := flag.Int("n", 24, "total jobs to complete")
	c := flag.Int("c", 4, "concurrent closed-loop clients")
	workers := flag.Int("workers", 2, "in-process service: worker pool size (per backend with -fleet)")
	queue := flag.Int("queue", 4, "in-process service: admission queue bound (per backend with -fleet)")
	alg := flag.String("alg", "yz", "job algorithm: ca, yz, xy")
	nx := flag.Int("nx", 48, "mesh points in longitude")
	ny := flag.Int("ny", 24, "mesh points in latitude")
	nz := flag.Int("nz", 8, "mesh levels")
	pa := flag.Int("pa", 2, "first process-grid extent")
	pb := flag.Int("pb", 2, "second process-grid extent")
	m := flag.Int("m", 2, "nonlinear iterations per step")
	steps := flag.Int("steps", 2, "steps per job")
	auto := flag.Bool("auto", false, "submit auto-layout jobs (planner picks alg/pa/pb for pa*pb ranks)")
	ckptEvery := flag.Int("ckpt-every", 0, "checkpoint jobs every k steps (0: only stop-triggered snapshots)")
	maxRestarts := flag.Int("max-restarts", -1, "per-job automatic restart budget (<0: server default)")
	tenants := flag.Int("tenants", 0, "spread submissions over this many tenants via X-Tenant (0: none)")
	ensemble := flag.Int("ensemble", 0, "submit K-member ensembles instead of single jobs (fleet/coordinator targets only)")
	fleetN := flag.Int("fleet", 0, "self-serve a sharded fleet with this many backends behind one coordinator (0: single server)")
	quota := flag.Int("quota", 0, "fleet per-tenant in-flight quota (0: coordinator default)")
	out := flag.String("o", "BENCH_service.json", "output JSON path")
	flag.Parse()

	if *ensemble != 0 && (*ensemble < 2 || *ensemble > 64) {
		fmt.Fprintln(os.Stderr, "loadgen: -ensemble must be in [2, 64]")
		os.Exit(2)
	}
	if *ensemble > 0 && *fleetN == 0 && *addr == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -ensemble needs a coordinator target (-fleet or -addr of a cadyfleet)")
		os.Exit(2)
	}

	base := *addr
	rep := benchReport{Jobs: *n, Clients: *c, Steps: *steps, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	switch {
	case base == "" && *fleetN > 0:
		base = serveFleet(*fleetN, *workers, *queue, *quota)
		rep.Workers = *workers
		rep.QueueCap = *queue
		rep.Fleet = *fleetN
		fmt.Printf("loadgen: self-serving fleet on %s (%d backends, %d workers + queue %d each)\n",
			base, *fleetN, *workers, *queue)
	case base == "":
		srv, err := server.New(server.Config{Workers: *workers, QueueCap: *queue})
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		base = serveOn(srv)
		rep.Workers = *workers
		rep.QueueCap = *queue
		fmt.Printf("loadgen: self-serving on %s (%d workers, queue %d)\n", base, *workers, *queue)
	}
	rep.Target = "http://" + base
	rep.Ensemble = *ensemble

	spec := map[string]any{
		"alg": *alg, "nx": *nx, "ny": *ny, "nz": *nz,
		"pa": *pa, "pb": *pb, "m": *m, "steps": *steps,
	}
	if *auto {
		spec = map[string]any{
			"layout": "auto", "procs": *pa * *pb,
			"nx": *nx, "ny": *ny, "nz": *nz, "m": *m, "steps": *steps,
		}
		rep.Auto = true
	}
	if *ckptEvery > 0 {
		spec["checkpoint_every"] = *ckptEvery
	}
	if *maxRestarts >= 0 {
		spec["max_restarts"] = *maxRestarts
	}
	var specB []byte
	path, pollPath := "/jobs", "/jobs/"
	if *ensemble > 0 {
		specB, _ = json.Marshal(map[string]any{"job": spec, "members": *ensemble, "seed": 1})
		path, pollPath = "/ensembles", "/ensembles/"
	} else {
		specB, _ = json.Marshal(spec)
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		failed    int
		byTenant  = map[string]*perTenant{}
		retries   atomic.Int64
		rejected  atomic.Int64
		seq       atomic.Int64
		remaining atomic.Int64
	)
	remaining.Store(int64(*n))
	client := &http.Client{Timeout: 30 * time.Second}
	tenantOf := func(i int64) string {
		if *tenants <= 0 {
			return ""
		}
		return fmt.Sprintf("tenant-%d", i%int64(*tenants))
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *c; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for remaining.Add(-1) >= 0 {
				tenant := tenantOf(seq.Add(1) - 1)
				t0 := time.Now()
				id, nretry, gaveUp, ok := submit(client, rep.Target+path, specB, tenant)
				retries.Add(nretry)
				state := ""
				if ok {
					state = poll(client, rep.Target+pollPath, id)
				} else if gaveUp {
					rejected.Add(1)
				}
				lat := time.Since(t0)
				mu.Lock()
				pt := byTenant[tenant]
				if pt == nil {
					pt = &perTenant{}
					byTenant[tenant] = pt
				}
				pt.retries += nretry
				if state == "completed" {
					latencies = append(latencies, lat)
					pt.latencies = append(pt.latencies, lat)
				} else {
					failed++
					pt.failed++
					if gaveUp {
						pt.rejected++
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	rep.WallSec = time.Since(start).Seconds()
	rep.Completed = len(latencies)
	rep.Failed = failed
	rep.Retries = retries.Load()
	rep.Rejected = rejected.Load()
	jobsPer := 1
	if *ensemble > 0 {
		jobsPer = *ensemble
	}
	if rep.WallSec > 0 {
		rep.ThroughputJPS = float64(rep.Completed) / rep.WallSec
		rep.StepsPerSec = float64(rep.Completed*jobsPer**steps) / rep.WallSec
	}
	rep.latencyStats = summarize(latencies)
	if *tenants > 0 {
		rep.Tenants = map[string]tenantReport{}
		for t, pt := range byTenant {
			rep.Tenants[t] = tenantReport{
				Completed:    len(pt.latencies),
				Failed:       pt.failed,
				Retries:      pt.retries,
				Rejected:     pt.rejected,
				latencyStats: summarize(pt.latencies),
			}
		}
	}

	b, _ := json.MarshalIndent(rep, "", "  ")
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	fmt.Printf("completed %d/%d jobs in %.2fs (%.1f jobs/s), backpressure retries %d, rejected submits %d, p50 %.0fms p99 %.0fms -> %s\n",
		rep.Completed, rep.Jobs, rep.WallSec, rep.ThroughputJPS, rep.Retries, rep.Rejected, rep.P50Ms, rep.P99Ms, *out)
	if rep.Completed < rep.Jobs {
		os.Exit(1)
	}
}

// serveOn exposes a handler on an ephemeral loopback listener.
func serveOn(h http.Handler) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	go http.Serve(ln, h)
	return ln.Addr().String()
}

// serveFleet boots B in-process backends over one shared checkpoint store
// and a coordinator in front of them — the 1+B sharded topology on loopback.
func serveFleet(backends, workers, queue, quota int) string {
	dir, err := os.MkdirTemp("", "loadgen-fleet-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	urls := make([]string, backends)
	for i := range urls {
		store, err := checkpoint.NewDirStore(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		srv, err := server.New(server.Config{Workers: workers, QueueCap: queue, Shared: store})
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		urls[i] = "http://" + serveOn(srv)
	}
	coord, err := fleet.New(fleet.Config{Backends: urls, StoreDir: dir, DefaultQuota: quota})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	return serveOn(coord)
}

// submit posts the job, retrying transient backpressure (429/503) with the
// closed-loop client parked for the server's advertised Retry-After —
// exactly what admission control is for. Retried responses count as
// backpressure retries; only a submission that gives up counts as rejected.
func submit(client *http.Client, url string, spec []byte, tenant string) (id string, nretry int64, gaveUp, ok bool) {
	for attempt := 0; attempt < 2000; attempt++ {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(spec))
		if err != nil {
			return "", nretry, false, false
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := client.Do(req)
		if err != nil {
			return "", nretry, false, false
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var st struct {
				ID string `json:"id"`
			}
			err := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			return st.ID, nretry, false, err == nil && st.ID != ""
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			wait := retryAfter(resp, 50*time.Millisecond)
			resp.Body.Close()
			nretry++
			time.Sleep(wait)
		default:
			resp.Body.Close()
			return "", nretry, false, false
		}
	}
	return "", nretry, true, false
}

// retryAfter parses the delay-seconds form of the Retry-After header,
// falling back when it is absent or malformed.
func retryAfter(resp *http.Response, fallback time.Duration) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return fallback
}

func poll(client *http.Client, base, id string) string {
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + id)
		if err != nil {
			return "error"
		}
		var st struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return "error"
		}
		switch st.State {
		case "completed", "failed", "cancelled", "interrupted":
			return st.State
		}
		time.Sleep(5 * time.Millisecond)
	}
	return "timeout"
}

func summarize(latencies []time.Duration) latencyStats {
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var ls latencyStats
	ls.P50Ms = quantileMs(latencies, 0.50)
	ls.P90Ms = quantileMs(latencies, 0.90)
	ls.P99Ms = quantileMs(latencies, 0.99)
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	if len(latencies) > 0 {
		ls.MeanMs = float64(sum.Milliseconds()) / float64(len(latencies))
	}
	return ls
}

func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}
