// Command hsclimate runs the Held–Suarez dry benchmark for a number of
// model days and prints the zonal-mean climatology (zonal wind and
// temperature by latitude and level) — the standard validation plot of a
// dynamical core. With enough model days the zonal wind develops the
// characteristic midlatitude westerly jets.
//
// Usage:
//
//	hsclimate [-nx N -ny N -nz N] [-days D] [-dt2 s] [-pa N -pb N]
package main

import (
	"flag"
	"fmt"

	"cadycore/internal/comm"
	"cadycore/internal/diag"
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/state"
)

func main() {
	nx := flag.Int("nx", 64, "mesh points in longitude")
	ny := flag.Int("ny", 32, "mesh points in latitude")
	nz := flag.Int("nz", 10, "mesh levels")
	days := flag.Float64("days", 2, "model days to integrate")
	dt2 := flag.Float64("dt2", 300, "advection (model) time step in seconds")
	pa := flag.Int("pa", 1, "p_y")
	pb := flag.Int("pb", 1, "p_z")
	stretch := flag.Float64("stretch", 1, "σ-level stretching toward the surface (1 = uniform)")
	flag.Parse()

	g := grid.NewWithSigma(*nx, *ny, grid.StretchedSigmaInterfaces(*nz, *stretch))
	cfg := dycore.DefaultConfig()
	cfg.Dt2 = *dt2
	cfg.Dt1 = *dt2 / 6
	steps := int(*days * 86400 / *dt2)

	fmt.Printf("Held-Suarez on %s, %.3g model days (%d steps of %.0f s), communication-avoiding algorithm %dx%d\n",
		g, *days, steps, *dt2, *pa, *pb)

	f := heldsuarez.Standard()
	hook := func(g *grid.Grid, st *state.State, step int) { f.Apply(g, st, cfg.Dt2) }
	set := dycore.Setup{Alg: dycore.AlgCommAvoid, PA: *pa, PB: *pb, Cfg: cfg}
	res := dycore.RunWithHook(set, g, comm.Zero(), heldsuarez.InitialState, steps, hook)

	if !diag.AllFinite(res.Finals) {
		fmt.Println("RUN UNSTABLE: non-finite values appeared")
		return
	}

	ubar := diag.ZonalMeanU(g, res.Finals)
	tbar := diag.ZonalMeanT(g, res.Finals)

	fmt.Printf("\nzonal-mean zonal wind ū (m/s) — rows: σ levels (top→bottom), cols: latitude (N→S)\n")
	printLatHeader(g)
	for k := 0; k < g.Nz; k += max(1, g.Nz/8) {
		fmt.Printf("σ=%4.2f ", g.Sigma[k])
		for j := 0; j < g.Ny; j += max(1, g.Ny/12) {
			fmt.Printf("%7.1f", ubar[k][j])
		}
		fmt.Println()
	}

	fmt.Printf("\nzonal-mean temperature T̄ (K)\n")
	printLatHeader(g)
	for k := 0; k < g.Nz; k += max(1, g.Nz/8) {
		fmt.Printf("σ=%4.2f ", g.Sigma[k])
		for j := 0; j < g.Ny; j += max(1, g.Ny/12) {
			fmt.Printf("%7.1f", tbar[k][j])
		}
		fmt.Println()
	}

	fmt.Printf("\nglobal diagnostics: mean ps %.2f hPa, max wind %.1f m/s, dry mass %.6g kg\n",
		diag.MeanSurfacePressure(g, res.Finals)/100, diag.MaxWind(g, res.Finals),
		diag.GlobalDryMass(g, res.Finals))
}

func printLatHeader(g *grid.Grid) {
	fmt.Printf("%7s", "lat:")
	for j := 0; j < g.Ny; j += max(1, g.Ny/12) {
		fmt.Printf("%6.0f°", g.LatitudeDeg(j))
	}
	fmt.Println()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
