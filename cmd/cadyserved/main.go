// Command cadyserved is the simulation job service daemon: it serves the
// internal/server HTTP API — submit, monitor, cancel and resume
// dynamical-core runs and figure sweeps over a bounded queue and a worker
// pool, with checkpoint-backed durability and Prometheus-style metrics.
//
// Usage:
//
//	cadyserved [-addr :8080] [-workers N] [-queue N] [-dir DIR]
//	           [-shared DIR] [-chaos plan.json] [-max-restarts N]
//
// With -shared, the daemon attaches a shared checkpoint store (a directory
// all fleet backends mount): jobs submitted with a shared_key dual-write
// their checkpoints there and resume from the newest shared snapshot when
// they arrive with no local state — the cadyfleet migration path.
//
// With -chaos, the JSON fault plan (see internal/fault: rank crashes at
// given steps, stragglers, message jitter, transient send errors) is
// injected into every run job; jobs whose ranks die are restarted
// automatically from their latest checkpoint, up to -max-restarts times per
// job with exponential backoff.
//
// Endpoints:
//
//	POST /jobs               submit a job (JSON spec); 429 when the queue is full
//	GET  /jobs               list jobs
//	GET  /jobs/{id}          job status: progress, comm stats, diagnostics
//	POST /jobs/{id}/cancel   stop at the next step boundary (checkpointed)
//	POST /jobs/{id}/resume   re-enqueue from the latest checkpoint
//	GET  /metrics            Prometheus-style service metrics
//	GET  /healthz            liveness (503 while draining)
//
// SIGINT/SIGTERM triggers a graceful drain: running jobs stop at their next
// step boundary and are checkpointed, queued jobs stay persisted, then the
// process exits. With -dir, a restarted daemon recovers every persisted job.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cadycore/internal/checkpoint"
	"cadycore/internal/fault"
	"cadycore/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	workers := flag.Int("workers", 2, "concurrent job executors")
	queue := flag.Int("queue", 16, "admission queue bound")
	dir := flag.String("dir", "", "persistence directory for specs and checkpoints (empty = in-memory)")
	shared := flag.String("shared", "", "shared fleet checkpoint-store directory (empty = none)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "max wait for jobs to checkpoint on shutdown")
	chaos := flag.String("chaos", "", "fault-injection plan (JSON) applied to every run job")
	maxRestarts := flag.Int("max-restarts", 0, "automatic restarts per crashed job (0 = default policy of 3)")
	flag.Parse()

	cfg := server.Config{
		Workers:  *workers,
		QueueCap: *queue,
		Dir:      *dir,
		Restart:  server.RestartPolicy{MaxRestarts: *maxRestarts},
	}
	if *shared != "" {
		store, err := checkpoint.NewDirStore(*shared)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cadyserved:", err)
			os.Exit(1)
		}
		cfg.Shared = store
	}
	if *chaos != "" {
		plan, err := fault.Load(*chaos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cadyserved:", err)
			os.Exit(1)
		}
		cfg.Chaos = &plan
	}
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cadyserved:", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("cadyserved listening on %s (%d workers, queue %d", *addr, *workers, *queue)
	if *dir != "" {
		fmt.Printf(", dir %s", *dir)
	}
	if *shared != "" {
		fmt.Printf(", shared %s", *shared)
	}
	if *chaos != "" {
		fmt.Printf(", chaos %s", *chaos)
	}
	fmt.Println(")")

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "cadyserved:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Println("cadyserved: draining (running jobs stop at their next step boundary)")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "cadyserved: drain:", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "cadyserved: http shutdown:", err)
	}
	fmt.Println("cadyserved: stopped")
}
