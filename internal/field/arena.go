package field

// Arena is a per-rank pool of scratch fields on one block. Operators and
// integrators borrow temporaries with Get3/Get2 and return them with
// Put3/Put2; after a warm-up step every borrow is served from the free list,
// so steady-state execution performs no heap allocation. An Arena is not
// safe for concurrent use — give each goroutine (or each rank) its own.
type Arena struct {
	b  Block
	f3 []*F3
	f2 []*F2

	// high-water marks, for diagnostics and tests
	made3, made2 int
}

// NewArena builds an empty arena for block b.
func NewArena(b Block) *Arena {
	b.Validate()
	return &Arena{b: b}
}

// Block returns the block all pooled fields live on.
func (a *Arena) Block() Block { return a.b }

// Get3 borrows a zeroed 3-D field. The first few calls allocate; once the
// pool is warm, Get3 reuses returned fields and only pays the memclr.
func (a *Arena) Get3() *F3 {
	if n := len(a.f3); n > 0 {
		f := a.f3[n-1]
		a.f3 = a.f3[:n-1]
		f.Zero()
		return f
	}
	a.made3++
	return NewF3(a.b)
}

// Put3 returns a field borrowed with Get3. The field must be on the arena's
// block; returning foreign fields panics rather than corrupting the pool.
func (a *Arena) Put3(f *F3) {
	if f.B != a.b {
		panic("field: Put3 of a field from a different block")
	}
	a.f3 = append(a.f3, f)
}

// Get2 borrows a zeroed 2-D field.
func (a *Arena) Get2() *F2 {
	if n := len(a.f2); n > 0 {
		f := a.f2[n-1]
		a.f2 = a.f2[:n-1]
		for i := range f.Data {
			f.Data[i] = 0
		}
		return f
	}
	a.made2++
	return NewF2(a.b)
}

// Put2 returns a field borrowed with Get2.
func (a *Arena) Put2(f *F2) {
	if f.B != a.b {
		panic("field: Put2 of a field from a different block")
	}
	a.f2 = append(a.f2, f)
}

// Allocated reports how many 3-D and 2-D fields the arena has ever created —
// a steady-state loop must leave these constant.
func (a *Arena) Allocated() (n3, n2 int) { return a.made3, a.made2 }
