package field

import "fmt"

// F3 is a 3-D field on one rank's block, stored including halo cells in a
// single contiguous slice with x fastest (so zonal FFTs and x stencils sweep
// unit-stride memory), then y, then z.
//
// Points are addressed with global indices; F3 translates them to the local
// allocation. Indices may extend into the halo region; reaching beyond it
// panics in At/Set (kernels using raw indexing must stay in bounds by
// construction).
type F3 struct {
	B    Block
	Data []float64

	// cached layout
	sx, sy, sz int // storage dims
	ox, oy, oz int // global index of Data[0] (lowest halo corner)
}

// NewF3 allocates a zero-initialized field on the given block.
func NewF3(b Block) *F3 {
	b.Validate()
	sx, sy, sz := b.StorageDims()
	return &F3{
		B:    b,
		Data: make([]float64, sx*sy*sz),
		sx:   sx, sy: sy, sz: sz,
		ox: b.I0 - b.Hx, oy: b.J0 - b.Hy, oz: b.K0 - b.Hz,
	}
}

// Clone returns a deep copy.
func (f *F3) Clone() *F3 {
	g := NewF3(f.B)
	copy(g.Data, f.Data)
	return g
}

// Zero sets every stored value (including halos) to zero.
func (f *F3) Zero() {
	for i := range f.Data {
		f.Data[i] = 0
	}
}

// Index returns the flat offset of global point (i, j, k). It panics if the
// point is outside the storage (owned + halo) region.
func (f *F3) Index(i, j, k int) int {
	li, lj, lk := i-f.ox, j-f.oy, k-f.oz
	if uint(li) >= uint(f.sx) || uint(lj) >= uint(f.sy) || uint(lk) >= uint(f.sz) {
		panic(fmt.Sprintf("field: point (%d,%d,%d) outside storage of block %+v", i, j, k, f.B))
	}
	return (lk*f.sy+lj)*f.sx + li
}

// At returns the value at global point (i, j, k).
func (f *F3) At(i, j, k int) float64 { return f.Data[f.Index(i, j, k)] }

// Set stores v at global point (i, j, k).
func (f *F3) Set(i, j, k int, v float64) { f.Data[f.Index(i, j, k)] = v }

// Add accumulates v at global point (i, j, k).
func (f *F3) Add(i, j, k int, v float64) { f.Data[f.Index(i, j, k)] += v }

// Strides returns the flat strides (dx, dy, dz) such that moving one step in
// each global direction moves the flat index by that amount.
func (f *F3) Strides() (dx, dy, dz int) { return 1, f.sx, f.sx * f.sy }

// Row returns the storage slice of the x-row at (j, k), indexed by
// local offset: Row(j,k)[i − (I0 − Hx)] is the value at global (i, j, k).
// Kernels use it to read rows with one bounds check instead of one per
// point; combine with XOff.
func (f *F3) Row(j, k int) []float64 {
	base := f.Index(f.ox, j, k)
	return f.Data[base : base+f.sx]
}

// XOff converts a global longitude index to the offset used with Row.
func (f *F3) XOff(i int) int { return i - f.ox }

// Origin returns the global index of Data[0].
func (f *F3) Origin() (i, j, k int) { return f.ox, f.oy, f.oz }

// SameShape reports whether g has an identical block (and therefore layout).
func (f *F3) SameShape(g *F3) bool { return f.B == g.B }

// FillXPeriodic fills the x halo cells by local periodic copy. It is valid
// only when the block owns the full longitude circle (Y-Z decomposition);
// otherwise it panics — x halos must then be filled by communication.
// The copy covers the full y/z storage range (halo rows included) so that
// subsequent y/z exchanges and corner fills remain consistent.
func (f *F3) FillXPeriodic() {
	if !f.B.OwnsFullX() {
		panic("field: FillXPeriodic called on a block that does not own the full x circle")
	}
	h := f.B.Hx
	if h == 0 {
		return
	}
	nx := f.B.Nx
	for lk := 0; lk < f.sz; lk++ {
		for lj := 0; lj < f.sy; lj++ {
			row := (lk*f.sy + lj) * f.sx
			// storage x layout: [0,h) left halo | [h, h+nx) owned | [h+nx, h+nx+h) right halo
			for m := 0; m < h; m++ {
				f.Data[row+m] = f.Data[row+nx+m]            // left halo ← rightmost owned
				f.Data[row+h+nx+m] = f.Data[row+h+m]        // right halo ← leftmost owned
			}
		}
	}
}

// Pack copies the values in the global rect r (which must lie inside the
// storage region) into dst in row-major (k, j, i) order and returns the
// number of values written. dst must have capacity r.Count().
func (f *F3) Pack(r Rect, dst []float64) int {
	n := r.Count()
	if n == 0 {
		return 0
	}
	if len(dst) < n {
		panic(fmt.Sprintf("field: Pack buffer too small: %d < %d", len(dst), n))
	}
	w := 0
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			base := f.Index(r.I0, j, k)
			w += copy(dst[w:], f.Data[base:base+(r.I1-r.I0)])
		}
	}
	return w
}

// Unpack copies src (packed in the same order as Pack) into the global rect.
func (f *F3) Unpack(r Rect, src []float64) int {
	n := r.Count()
	if n == 0 {
		return 0
	}
	if len(src) < n {
		panic(fmt.Sprintf("field: Unpack buffer too small: %d < %d", len(src), n))
	}
	w := 0
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			base := f.Index(r.I0, j, k)
			w += copy(f.Data[base:base+(r.I1-r.I0)], src[w:])
		}
	}
	return w
}

// CopyRect copies the values of src in rect r into f. Both fields must cover
// r in their storage regions; blocks need not match.
func (f *F3) CopyRect(r Rect, src *F3) {
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			d := f.Index(r.I0, j, k)
			s := src.Index(r.I0, j, k)
			copy(f.Data[d:d+(r.I1-r.I0)], src.Data[s:s+(r.I1-r.I0)])
		}
	}
}
