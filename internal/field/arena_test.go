package field

import (
	"math/rand"
	"testing"
)

func arenaBlock() Block {
	return Block{Nx: 8, Ny: 6, Nz: 4, I0: 0, I1: 8, J0: 0, J1: 6, K0: 0, K1: 4, Hx: 2, Hy: 2, Hz: 1}
}

func TestArenaReusesFields(t *testing.T) {
	a := NewArena(arenaBlock())
	f := a.Get3()
	f.Set(3, 3, 2, 42)
	a.Put3(f)
	g := a.Get3()
	if g != f {
		t.Error("Get3 after Put3 should reuse the pooled field")
	}
	if g.At(3, 3, 2) != 0 {
		t.Error("reused field not zeroed")
	}
	if n3, _ := a.Allocated(); n3 != 1 {
		t.Errorf("allocated %d 3-D fields, want 1", n3)
	}

	p := a.Get2()
	p.Set(1, 1, 7)
	a.Put2(p)
	if q := a.Get2(); q != p || q.At(1, 1) != 0 {
		t.Error("2-D pool must reuse and zero")
	}
}

func TestArenaSteadyStateZeroAlloc(t *testing.T) {
	a := NewArena(arenaBlock())
	a.Put3(a.Get3()) // warm
	a.Put2(a.Get2())
	allocs := testing.AllocsPerRun(100, func() {
		f := a.Get3()
		p := a.Get2()
		a.Put2(p)
		a.Put3(f)
	})
	if allocs != 0 {
		t.Errorf("warm arena allocated %v per borrow cycle, want 0", allocs)
	}
}

func TestArenaRejectsForeignField(t *testing.T) {
	a := NewArena(arenaBlock())
	other := arenaBlock()
	other.Hx = 1
	defer func() {
		if recover() == nil {
			t.Error("Put3 of a foreign-block field must panic")
		}
	}()
	a.Put3(NewF3(other))
}

func TestLin3RectMatchesComposition(t *testing.T) {
	b := arenaBlock()
	rng := rand.New(rand.NewSource(7))
	x, y, z := NewF3(b), NewF3(b), NewF3(b)
	for i := range x.Data {
		x.Data[i], y.Data[i], z.Data[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
	}
	r := Rect{I0: 1, I1: 7, J0: 1, J1: 5, K0: 1, K1: 3}

	got := NewF3(b)
	Lin3Rect(got, 2, x, -1.5, y, 0.25, z, r)

	want := NewF3(b)
	Lin2Rect(want, 2, x, -1.5, y, r)
	AxpyRect(want, 0.25, z, r)

	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			for i := r.I0; i < r.I1; i++ {
				if got.At(i, j, k) != want.At(i, j, k) {
					t.Fatalf("(%d,%d,%d): fused %v vs composed %v", i, j, k, got.At(i, j, k), want.At(i, j, k))
				}
			}
		}
	}
	// Outside the rect both must be untouched (zero).
	if got.At(0, 0, 0) != 0 || want.At(0, 0, 0) != 0 {
		t.Error("rect ops wrote outside the rect")
	}
}

func TestAxpyRect2(t *testing.T) {
	b := arenaBlock()
	d, s := NewF2(b), NewF2(b)
	for i := range s.Data {
		s.Data[i] = float64(i)
	}
	r := Rect{I0: 2, I1: 6, J0: 1, J1: 4}
	AxpyRect2(d, 3, s, r)
	for j := 0; j < b.Ny; j++ {
		for i := 0; i < b.Nx; i++ {
			want := 0.0
			if i >= r.I0 && i < r.I1 && j >= r.J0 && j < r.J1 {
				want = 3 * s.At(i, j)
			}
			if d.At(i, j) != want {
				t.Fatalf("(%d,%d): got %v want %v", i, j, d.At(i, j), want)
			}
		}
	}
}
