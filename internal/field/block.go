// Package field provides the distributed field containers of the dynamical
// core: 3-D and 2-D blocks of a global latitude–longitude mesh with halo
// (ghost) cells, plus the pack/unpack, boundary-fill and linear-combination
// primitives the operators and the halo-exchange engine are built on.
//
// A Block describes the rectangular sub-box of the global mesh owned by one
// rank together with its halo widths. Fields address points with *global*
// indices; the container translates to local storage. Longitude (x) is
// periodic; the translation never wraps automatically — halo cells beyond the
// owned range must be filled explicitly (either by local periodic copy when a
// rank owns a full latitude circle, or by communication).
package field

import "fmt"

// Block describes the sub-box of the global Nx×Ny×Nz mesh owned by one rank,
// with halo widths (Hx, Hy, Hz) on each side. The owned ranges are
// half-open: i ∈ [I0, I1), j ∈ [J0, J1), k ∈ [K0, K1).
type Block struct {
	Nx, Ny, Nz int // global extents
	I0, I1     int // owned x range
	J0, J1     int // owned y range
	K0, K1     int // owned z range
	Hx, Hy, Hz int // halo widths
}

// Dims returns the owned extents (I1−I0, J1−J0, K1−K0).
func (b Block) Dims() (nx, ny, nz int) {
	return b.I1 - b.I0, b.J1 - b.J0, b.K1 - b.K0
}

// StorageDims returns the allocated extents including halos.
func (b Block) StorageDims() (sx, sy, sz int) {
	return b.I1 - b.I0 + 2*b.Hx, b.J1 - b.J0 + 2*b.Hy, b.K1 - b.K0 + 2*b.Hz
}

// OwnsFullX reports whether the block owns every longitude (the Y-Z
// decomposition case), so x halos can be filled by local periodic copy.
func (b Block) OwnsFullX() bool { return b.I0 == 0 && b.I1 == b.Nx }

// Owned returns the owned region as a Rect (halo excluded).
func (b Block) Owned() Rect {
	return Rect{I0: b.I0, I1: b.I1, J0: b.J0, J1: b.J1, K0: b.K0, K1: b.K1}
}

// WithHalo returns the full addressable region including halos.
func (b Block) WithHalo() Rect {
	return Rect{
		I0: b.I0 - b.Hx, I1: b.I1 + b.Hx,
		J0: b.J0 - b.Hy, J1: b.J1 + b.Hy,
		K0: b.K0 - b.Hz, K1: b.K1 + b.Hz,
	}
}

// Shrink returns the owned region shrunk by d cells on every side in the
// decomposed directions given; it is used to express "inner part" regions for
// communication/computation overlap. Directions with width 0 are unchanged.
func (r Rect) Shrink(dx, dy, dz int) Rect {
	return Rect{
		I0: r.I0 + dx, I1: r.I1 - dx,
		J0: r.J0 + dy, J1: r.J1 - dy,
		K0: r.K0 + dz, K1: r.K1 - dz,
	}
}

// Contains reports whether the rect contains the global point (i, j, k).
func (r Rect) Contains(i, j, k int) bool {
	return i >= r.I0 && i < r.I1 && j >= r.J0 && j < r.J1 && k >= r.K0 && k < r.K1
}

// Validate panics if the block is inconsistent (empty ranges, negative halos,
// ranges outside the global mesh in the non-periodic directions).
func (b Block) Validate() {
	if b.Nx <= 0 || b.Ny <= 0 || b.Nz <= 0 {
		panic(fmt.Sprintf("field: non-positive global extents in %+v", b))
	}
	if b.I0 >= b.I1 || b.J0 >= b.J1 || b.K0 >= b.K1 {
		panic(fmt.Sprintf("field: empty owned range in %+v", b))
	}
	if b.Hx < 0 || b.Hy < 0 || b.Hz < 0 {
		panic(fmt.Sprintf("field: negative halo width in %+v", b))
	}
	if b.I0 < 0 || b.I1 > b.Nx {
		panic(fmt.Sprintf("field: x range [%d,%d) outside [0,%d)", b.I0, b.I1, b.Nx))
	}
	if b.J0 < 0 || b.J1 > b.Ny {
		panic(fmt.Sprintf("field: y range [%d,%d) outside [0,%d)", b.J0, b.J1, b.Ny))
	}
	if b.K0 < 0 || b.K1 > b.Nz {
		panic(fmt.Sprintf("field: z range [%d,%d) outside [0,%d)", b.K0, b.K1, b.Nz))
	}
}

// Rect is a half-open box of global indices, used to describe pack/unpack and
// computation regions.
type Rect struct {
	I0, I1, J0, J1, K0, K1 int
}

// Count returns the number of points in the rect (0 if empty/inverted).
func (r Rect) Count() int {
	nx, ny, nz := r.I1-r.I0, r.J1-r.J0, r.K1-r.K0
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return 0
	}
	return nx * ny * nz
}

// Empty reports whether the rect contains no points.
func (r Rect) Empty() bool { return r.Count() == 0 }

// Intersect returns the intersection of two rects (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	return Rect{
		I0: maxInt(r.I0, o.I0), I1: minInt(r.I1, o.I1),
		J0: maxInt(r.J0, o.J0), J1: minInt(r.J1, o.J1),
		K0: maxInt(r.K0, o.K0), K1: minInt(r.K1, o.K1),
	}
}

// Flat2D returns the rect restricted to a single k plane semantics for 2-D
// fields: the K range is forced to [0, 1).
func (r Rect) Flat2D() Rect {
	r.K0, r.K1 = 0, 1
	return r
}

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)x[%d,%d)", r.I0, r.I1, r.J0, r.J1, r.K0, r.K1)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
