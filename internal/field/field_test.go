package field

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testBlock() Block {
	return Block{
		Nx: 12, Ny: 8, Nz: 4,
		I0: 0, I1: 12, J0: 2, J1: 6, K0: 1, K1: 3,
		Hx: 2, Hy: 2, Hz: 1,
	}
}

func TestBlockDims(t *testing.T) {
	b := testBlock()
	nx, ny, nz := b.Dims()
	if nx != 12 || ny != 4 || nz != 2 {
		t.Errorf("dims = %d %d %d", nx, ny, nz)
	}
	sx, sy, sz := b.StorageDims()
	if sx != 16 || sy != 8 || sz != 4 {
		t.Errorf("storage = %d %d %d", sx, sy, sz)
	}
	if !b.OwnsFullX() {
		t.Error("block owns all longitudes")
	}
}

func TestBlockValidate(t *testing.T) {
	bads := []Block{
		{Nx: 12, Ny: 8, Nz: 4, I0: 0, I1: 0, J0: 0, J1: 8, K0: 0, K1: 4},    // empty x
		{Nx: 12, Ny: 8, Nz: 4, I0: 0, I1: 12, J0: 0, J1: 9, K0: 0, K1: 4},   // y overflow
		{Nx: 12, Ny: 8, Nz: 4, I0: 0, I1: 12, J0: 0, J1: 8, K0: -1, K1: 4},  // z underflow
		{Nx: 12, Ny: 8, Nz: 4, I0: 0, I1: 12, J0: 0, J1: 8, K0: 0, K1: 4, Hx: -1}, // bad halo
	}
	for i, b := range bads {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			b.Validate()
		}()
	}
}

func TestRectOps(t *testing.T) {
	r := Rect{I0: 0, I1: 4, J0: 0, J1: 3, K0: 0, K1: 2}
	if r.Count() != 24 {
		t.Errorf("count = %d", r.Count())
	}
	if r.Empty() {
		t.Error("not empty")
	}
	inter := r.Intersect(Rect{I0: 2, I1: 10, J0: 1, J1: 2, K0: 0, K1: 5})
	if inter != (Rect{I0: 2, I1: 4, J0: 1, J1: 2, K0: 0, K1: 2}) {
		t.Errorf("intersect = %+v", inter)
	}
	if !r.Intersect(Rect{I0: 5, I1: 6, J0: 0, J1: 3, K0: 0, K1: 2}).Empty() {
		t.Error("disjoint intersect should be empty")
	}
	if !r.Contains(3, 2, 1) || r.Contains(4, 0, 0) {
		t.Error("contains wrong")
	}
	if s := r.Shrink(1, 1, 0); s != (Rect{I0: 1, I1: 3, J0: 1, J1: 2, K0: 0, K1: 2}) {
		t.Errorf("shrink = %+v", s)
	}
}

func TestF3IndexingAndHalo(t *testing.T) {
	f := NewF3(testBlock())
	f.Set(0, 2, 1, 42)    // owned corner
	f.Set(-2, 0, 0, 7)    // halo corner (lowest storage point)
	f.Set(13, 7, 3, 9)    // halo high corner
	if f.At(0, 2, 1) != 42 || f.At(-2, 0, 0) != 7 || f.At(13, 7, 3) != 9 {
		t.Error("roundtrip failed")
	}
	f.Add(0, 2, 1, 1)
	if f.At(0, 2, 1) != 43 {
		t.Error("Add failed")
	}
}

func TestF3OutOfBoundsPanics(t *testing.T) {
	f := NewF3(testBlock())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f.At(0, 8, 1) // beyond the y halo (6+2 = 8 exclusive)
}

func TestF3PackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := NewF3(testBlock())
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	r := Rect{I0: 2, I1: 7, J0: 3, J1: 6, K0: 1, K1: 3}
	buf := make([]float64, r.Count())
	n := f.Pack(r, buf)
	if n != r.Count() {
		t.Fatalf("packed %d, want %d", n, r.Count())
	}
	g := NewF3(testBlock())
	g.Unpack(r, buf)
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			for i := r.I0; i < r.I1; i++ {
				if g.At(i, j, k) != f.At(i, j, k) {
					t.Fatalf("mismatch at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestPackUnpackProperty(t *testing.T) {
	// Property: Unpack(Pack(rect)) restores exactly the rect, for random
	// rects inside the storage region.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := testBlock()
		src := NewF3(b)
		for i := range src.Data {
			src.Data[i] = rng.NormFloat64()
		}
		w := b.WithHalo()
		i0 := w.I0 + rng.Intn(4)
		j0 := w.J0 + rng.Intn(3)
		k0 := w.K0 + rng.Intn(2)
		r := Rect{I0: i0, I1: i0 + 1 + rng.Intn(w.I1-i0), J0: j0, J1: j0 + 1 + rng.Intn(w.J1-j0),
			K0: k0, K1: k0 + 1 + rng.Intn(w.K1-k0)}
		buf := make([]float64, r.Count())
		src.Pack(r, buf)
		dst := NewF3(b)
		dst.Unpack(r, buf)
		for k := r.K0; k < r.K1; k++ {
			for j := r.J0; j < r.J1; j++ {
				for i := r.I0; i < r.I1; i++ {
					if dst.At(i, j, k) != src.At(i, j, k) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFillXPeriodic(t *testing.T) {
	f := NewF3(testBlock())
	for j := 0; j < 8; j++ {
		for k := 0; k < 4; k++ {
			for i := 0; i < 12; i++ {
				f.Set(i, j, k, float64(100*i+10*j+k))
			}
		}
	}
	f.FillXPeriodic()
	for j := 0; j < 8; j++ {
		for k := 0; k < 4; k++ {
			if f.At(-1, j, k) != f.At(11, j, k) || f.At(-2, j, k) != f.At(10, j, k) {
				t.Fatalf("left halo wrong at j=%d k=%d", j, k)
			}
			if f.At(12, j, k) != f.At(0, j, k) || f.At(13, j, k) != f.At(1, j, k) {
				t.Fatalf("right halo wrong at j=%d k=%d", j, k)
			}
		}
	}
}

func TestFillXPeriodicPanicsOnPartialX(t *testing.T) {
	b := testBlock()
	b.I1 = 6 // partial circle
	f := NewF3(b)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f.FillXPeriodic()
}

func TestLinearOps(t *testing.T) {
	b := testBlock()
	x, y, d := NewF3(b), NewF3(b), NewF3(b)
	rng := rand.New(rand.NewSource(2))
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
		y.Data[i] = rng.NormFloat64()
	}
	Lin2(d, 2, x, 3, y)
	for i := range d.Data {
		if d.Data[i] != 2*x.Data[i]+3*y.Data[i] {
			t.Fatal("Lin2 wrong")
		}
	}
	z := x.Clone()
	Axpy(z, -2, y)
	for i := range z.Data {
		want := x.Data[i] - 2*y.Data[i]
		if z.Data[i] != want {
			t.Fatal("Axpy wrong")
		}
	}
	Mean2(d, x, y)
	for i := range d.Data {
		if d.Data[i] != 0.5*x.Data[i]+0.5*y.Data[i] {
			t.Fatal("Mean2 wrong")
		}
	}
	Scale(z, 0)
	if SumOwned(z) != 0 {
		t.Error("Scale(0) should zero")
	}
}

func TestOwnedReductions(t *testing.T) {
	b := testBlock()
	f := NewF3(b)
	// Poison the halos; owned reductions must ignore them.
	for i := range f.Data {
		f.Data[i] = 1e9
	}
	r := b.Owned()
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			for i := r.I0; i < r.I1; i++ {
				f.Set(i, j, k, 1)
			}
		}
	}
	if s := SumOwned(f); s != float64(r.Count()) {
		t.Errorf("SumOwned = %v, want %v", s, r.Count())
	}
	if m := MaxAbsOwned(f); m != 1 {
		t.Errorf("MaxAbsOwned = %v", m)
	}
	g := f.Clone()
	g.Set(3, 4, 2, -5)
	if d := MaxAbsDiffOwned(f, g); d != 6 {
		t.Errorf("MaxAbsDiffOwned = %v, want 6", d)
	}
}

func TestAllFiniteOwned(t *testing.T) {
	f := NewF3(testBlock())
	// NaN in the halo is fine.
	f.Set(-1, 0, 0, nan())
	if !AllFiniteOwned(f) {
		t.Error("halo NaN should not fail the owned check")
	}
	f.Set(5, 3, 2, nan())
	if AllFiniteOwned(f) {
		t.Error("owned NaN must fail")
	}
}

func nan() float64 { z := 0.0; return z / z }

func TestPoleMirrorCenterEven(t *testing.T) {
	b := Block{Nx: 8, Ny: 6, Nz: 2, I0: 0, I1: 8, J0: 0, J1: 6, K0: 0, K1: 2, Hx: 0, Hy: 2, Hz: 0}
	f := NewF3(b)
	for j := 0; j < 6; j++ {
		for i := 0; i < 8; i++ {
			f.Set(i, j, 0, float64(10+j))
		}
	}
	FillPolesY(f, Even, CenterY)
	if f.At(0, -1, 0) != 10 || f.At(0, -2, 0) != 11 {
		t.Errorf("north mirror: %v %v", f.At(0, -1, 0), f.At(0, -2, 0))
	}
	if f.At(0, 6, 0) != 15 || f.At(0, 7, 0) != 14 {
		t.Errorf("south mirror: %v %v", f.At(0, 6, 0), f.At(0, 7, 0))
	}
}

func TestPoleMirrorCenterOdd(t *testing.T) {
	b := Block{Nx: 8, Ny: 6, Nz: 2, I0: 0, I1: 8, J0: 0, J1: 6, K0: 0, K1: 2, Hx: 0, Hy: 1, Hz: 0}
	f := NewF3(b)
	for j := 0; j < 6; j++ {
		f.Set(3, j, 1, float64(1+j))
	}
	FillPolesY(f, Odd, CenterY)
	if f.At(3, -1, 1) != -1 {
		t.Errorf("odd north mirror: %v", f.At(3, -1, 1))
	}
	if f.At(3, 6, 1) != -6 {
		t.Errorf("odd south mirror: %v", f.At(3, 6, 1))
	}
}

func TestPoleMirrorFaceY(t *testing.T) {
	b := Block{Nx: 8, Ny: 6, Nz: 2, I0: 0, I1: 8, J0: 0, J1: 6, K0: 0, K1: 2, Hx: 0, Hy: 2, Hz: 0}
	f := NewF3(b)
	for j := 0; j < 6; j++ {
		for i := 0; i < 8; i++ {
			f.Set(i, j, 0, float64(1+j))
		}
	}
	FillPolesY(f, Odd, FaceY)
	// Row 0 is the pole itself: forced to zero.
	if f.At(2, 0, 0) != 0 {
		t.Errorf("pole row not zeroed: %v", f.At(2, 0, 0))
	}
	// Ghost rows mirror with the sign flip about the pole point.
	if f.At(2, -1, 0) != -f.At(2, 1, 0) || f.At(2, -2, 0) != -f.At(2, 2, 0) {
		t.Errorf("north face mirror wrong: %v %v", f.At(2, -1, 0), f.At(2, -2, 0))
	}
	// Virtual south pole row Ny is zeroed; beyond mirrors row Ny−1.
	if f.At(2, 6, 0) != 0 {
		t.Errorf("south pole row not zeroed: %v", f.At(2, 6, 0))
	}
	if f.At(2, 7, 0) != -f.At(2, 5, 0) {
		t.Errorf("south face mirror wrong: %v", f.At(2, 7, 0))
	}
}

func TestPoleMirrorDeepHaloFromInteriorBlock(t *testing.T) {
	// A block that does not own pole rows but whose deep halo extends past
	// the pole: the mirror must still fill the beyond-pole ghosts.
	b := Block{Nx: 8, Ny: 12, Nz: 2, I0: 0, I1: 8, J0: 3, J1: 6, K0: 0, K1: 2, Hx: 0, Hy: 5, Hz: 0}
	f := NewF3(b)
	for j := -2; j < 11; j++ { // storage rows; domain rows carry j+1
		for i := 0; i < 8; i++ {
			v := float64(j + 100)
			if j >= 0 {
				v = float64(j + 1)
			}
			f.Set(i, j, 0, v)
		}
	}
	// Overwrite domain rows with known values: row j holds j+1.
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			f.Set(i, j, 0, float64(j+1))
		}
	}
	FillPolesY(f, Even, CenterY)
	if f.At(0, -1, 0) != 1 || f.At(0, -2, 0) != 2 {
		t.Errorf("deep-halo pole mirror: %v %v", f.At(0, -1, 0), f.At(0, -2, 0))
	}
}

func TestFillVerticalZ(t *testing.T) {
	b := Block{Nx: 8, Ny: 4, Nz: 4, I0: 0, I1: 8, J0: 0, J1: 4, K0: 0, K1: 4, Hx: 0, Hy: 0, Hz: 2}
	f := NewF3(b)
	for k := 0; k < 4; k++ {
		for j := 0; j < 4; j++ {
			for i := 0; i < 8; i++ {
				f.Set(i, j, k, float64(k + 1))
			}
		}
	}
	FillVerticalZ(f)
	if f.At(0, 0, -1) != 1 || f.At(0, 0, -2) != 2 {
		t.Errorf("top mirror: %v %v", f.At(0, 0, -1), f.At(0, 0, -2))
	}
	if f.At(0, 0, 4) != 4 || f.At(0, 0, 5) != 3 {
		t.Errorf("bottom mirror: %v %v", f.At(0, 0, 4), f.At(0, 0, 5))
	}
}

func TestF2Basics(t *testing.T) {
	f := NewF2(testBlock())
	f.Set(3, 4, 5)
	f.Add(3, 4, 1)
	if f.At(3, 4) != 6 {
		t.Error("F2 set/add failed")
	}
	f.Set(-2, 0, 9) // halo
	if f.At(-2, 0) != 9 {
		t.Error("F2 halo access failed")
	}
	g := f.Clone()
	if MaxAbsDiffOwned2(f, g) != 0 {
		t.Error("clone differs")
	}
	r := Rect{I0: 1, I1: 5, J0: 2, J1: 5}
	buf := make([]float64, r.Flat2D().Count())
	f.Pack(r, buf)
	h := NewF2(testBlock())
	h.Unpack(r, buf)
	if h.At(3, 4) != 6 {
		t.Error("F2 pack/unpack failed")
	}
}

func TestF2FillXPeriodicAndPoles(t *testing.T) {
	b := Block{Nx: 8, Ny: 6, Nz: 2, I0: 0, I1: 8, J0: 0, J1: 6, K0: 0, K1: 2, Hx: 2, Hy: 2, Hz: 0}
	f := NewF2(b)
	for j := 0; j < 6; j++ {
		for i := 0; i < 8; i++ {
			f.Set(i, j, float64(i+10*j))
		}
	}
	f.FillXPeriodic()
	if f.At(-1, 3) != f.At(7, 3) || f.At(8, 3) != f.At(0, 3) {
		t.Error("F2 periodic fill wrong")
	}
	FillPolesY2(f, Even)
	if f.At(2, -1) != f.At(2, 0) || f.At(2, 6) != f.At(2, 5) {
		t.Error("F2 pole mirror wrong")
	}
}

func TestCopyRect(t *testing.T) {
	b := testBlock()
	src := NewF3(b)
	dst := NewF3(b)
	for i := range src.Data {
		src.Data[i] = float64(i)
	}
	r := Rect{I0: 3, I1: 6, J0: 3, J1: 5, K0: 1, K1: 3}
	dst.CopyRect(r, src)
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			for i := r.I0; i < r.I1; i++ {
				if dst.At(i, j, k) != src.At(i, j, k) {
					t.Fatal("CopyRect mismatch inside rect")
				}
			}
		}
	}
	if dst.At(0, 2, 1) != 0 {
		t.Error("CopyRect wrote outside rect")
	}
}

func TestShiftedPoleMirrorField(t *testing.T) {
	b := Block{Nx: 8, Ny: 6, Nz: 2, I0: 0, I1: 8, J0: 0, J1: 6, K0: 0, K1: 2, Hx: 2, Hy: 2, Hz: 0}
	f := NewF3(b)
	for j := 0; j < 6; j++ {
		for i := 0; i < 8; i++ {
			f.Set(i, j, 0, float64(10*j+i))
		}
	}
	FillPolesYShifted(f, Even, CenterY)
	// Ghost at (i, −1) must hold the value from (i+Nx/2 mod Nx, 0).
	for i := -2; i < 10; i++ { // including x halos of the ghost row
		want := f.At(((i+4)%8+8)%8, 0, 0)
		if got := f.At(i, -1, 0); got != want {
			t.Fatalf("north shifted ghost at i=%d: got %v want %v", i, got, want)
		}
	}
	// South side mirrors row 5 with the shift.
	if got, want := f.At(1, 6, 0), f.At(5, 5, 0); got != want {
		t.Errorf("south shifted ghost: got %v want %v", got, want)
	}
	// Odd parity flips sign.
	FillPolesYShifted(f, Odd, CenterY)
	if got, want := f.At(0, -1, 0), -f.At(4, 0, 0); got != want {
		t.Errorf("odd shifted ghost: got %v want %v", got, want)
	}
	// Requires full circles.
	part := b
	part.I1 = 4
	g2 := NewF3(part)
	defer func() {
		if recover() == nil {
			t.Error("partial-circle shifted mirror should panic")
		}
	}()
	FillPolesYShifted(g2, Even, CenterY)
}
