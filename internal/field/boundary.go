package field

// Boundary fills for the non-periodic directions. These are purely local
// operations executed by the ranks whose blocks touch a pole (y) or the model
// top/bottom (z) after halo exchange, so that stencil kernels can sweep the
// full computation region without branching on boundaries.
//
// Pole condition (documented substitution, see DESIGN.md §2): values are
// mirrored across the pole without the longitude shift of the exact spherical
// mirror; scalar fields mirror evenly (Even) and wind components mirror with
// a sign flip (Odd), which keeps cross-polar flow antisymmetric and is local
// in longitude under every decomposition.

// Parity selects the sign of the mirrored value at a pole.
type Parity int

const (
	// Even mirrors f(ghost) = +f(interior): scalars (Φ, p'_sa, P, T…).
	Even Parity = 1
	// Odd mirrors f(ghost) = −f(interior): velocity components (U, V).
	Odd Parity = -1
)

// Stagger describes where a field lives relative to cell centers in y.
type Stagger int

const (
	// CenterY fields live at latitude cell centers θ_j = (j+1/2)Δθ
	// (scalars and U).
	CenterY Stagger = iota
	// FaceY fields live at latitude interfaces θ_j = j·Δθ (V); row 0 is the
	// north pole itself and the (virtual) row Ny is the south pole.
	FaceY
)

// FillPolesY fills the y halo rows beyond the poles for blocks touching
// them; interior blocks are untouched. For FaceY fields it also enforces the
// physical polar condition V = 0 on the pole rows themselves.
//
// CenterY mirror about the polar interface:  f(−1−m) = s·f(m),
// f(Ny+m) = s·f(Ny−1−m).
// FaceY mirror about the pole point:         f(0) = 0, f(−m) = s·f(m),
// and about the virtual south pole:          f(Ny+m) = s·f(Ny−m) with the
// convention f(Ny) = 0 handled by the k of the stencil code via VAtSouthPole.
//
// The mirror sources may live in already-exchanged halo rows, so call this
// *after* the y/z halo exchange.
func FillPolesY(f *F3, p Parity, st Stagger) {
	b := f.B
	s := float64(p)
	ny := b.Ny
	// A block needs pole ghost rows whenever its *storage* (owned + halo)
	// extends past a pole, which with deep halos can happen even for blocks
	// that do not own pole rows. Mirror sources are rows inside the domain,
	// already valid after the halo exchange.
	loGhost := b.J0 - b.Hy // lowest stored row
	hiGhost := b.J1 + b.Hy // one past highest stored row
	switch st {
	case CenterY:
		// f(−1−m) = s·f(m) for every stored row −1−m < 0.
		for j := loGhost; j < 0; j++ {
			copyRowScaled(f, j, -1-j, s)
		}
		// f(ny+m) = s·f(ny−1−m) for every stored row ≥ ny.
		for j := ny; j < hiGhost; j++ {
			copyRowScaled(f, j, 2*ny-1-j, s)
		}
	case FaceY:
		// Row 0 is the north pole itself (V = 0); row ny the south pole.
		if loGhost <= 0 && 0 < hiGhost {
			zeroRow(f, 0)
		}
		for j := loGhost; j < 0; j++ {
			copyRowScaled(f, j, -j, s)
		}
		if loGhost <= ny && ny < hiGhost {
			zeroRow(f, ny)
		}
		for j := ny + 1; j < hiGhost; j++ {
			copyRowScaled(f, j, 2*ny-j, s)
		}
	}
}

// FillPolesY2 is FillPolesY for 2-D fields (CenterY scalars only, which is
// the only 2-D staggering the model uses).
func FillPolesY2(f *F2, p Parity) {
	b := f.B
	s := float64(p)
	ny := b.Ny
	for j := b.J0 - b.Hy; j < 0; j++ {
		copyRowScaled2(f, j, -1-j, s)
	}
	for j := ny; j < b.J1+b.Hy; j++ {
		copyRowScaled2(f, j, 2*ny-1-j, s)
	}
}

// FillVerticalZ fills the z halo layers beyond the model top (k < 0) and
// bottom (k ≥ Nz) with a zero-gradient mirror: f(−1−m) = f(m),
// f(Nz+m) = f(Nz−1−m). The physical boundary conditions σ̇ = 0 at σ = 0, 1
// are enforced inside the vertical operators; the mirror only keeps stencil
// sweeps branch-free.
func FillVerticalZ(f *F3) {
	b := f.B
	nz := b.Nz
	for k := b.K0 - b.Hz; k < 0; k++ {
		copyPlaneZ(f, k, -1-k)
	}
	for k := nz; k < b.K1+b.Hz; k++ {
		copyPlaneZ(f, k, 2*nz-1-k)
	}
}

// FillPolesYShifted is FillPolesY with the exact spherical mirror: the
// ghost value at longitude λ comes from longitude λ + π (the antipodal
// meridian), which is what crossing a pole physically does. It requires the
// block to own full longitude circles (p_x = 1, the Y-Z decomposition) —
// the shift is then a purely local copy. Scalars mirror evenly; wind
// components flip sign (their basis vectors reverse across the pole).
func FillPolesYShifted(f *F3, p Parity, st Stagger) {
	b := f.B
	if !b.OwnsFullX() {
		panic("field: FillPolesYShifted requires full longitude circles per rank")
	}
	s := float64(p)
	ny := b.Ny
	loGhost := b.J0 - b.Hy
	hiGhost := b.J1 + b.Hy
	switch st {
	case CenterY:
		for j := loGhost; j < 0; j++ {
			copyRowScaledShifted(f, j, -1-j, s)
		}
		for j := ny; j < hiGhost; j++ {
			copyRowScaledShifted(f, j, 2*ny-1-j, s)
		}
	case FaceY:
		if loGhost <= 0 && 0 < hiGhost {
			zeroRow(f, 0)
		}
		for j := loGhost; j < 0; j++ {
			copyRowScaledShifted(f, j, -j, s)
		}
		if loGhost <= ny && ny < hiGhost {
			zeroRow(f, ny)
		}
		for j := ny + 1; j < hiGhost; j++ {
			copyRowScaledShifted(f, j, 2*ny-j, s)
		}
	}
}

// FillPolesY2Shifted is the 2-D counterpart.
func FillPolesY2Shifted(f *F2, p Parity) {
	b := f.B
	if !b.OwnsFullX() {
		panic("field: FillPolesY2Shifted requires full longitude circles per rank")
	}
	s := float64(p)
	ny := b.Ny
	for j := b.J0 - b.Hy; j < 0; j++ {
		copyRowScaledShifted2(f, j, -1-j, s)
	}
	for j := ny; j < b.J1+b.Hy; j++ {
		copyRowScaledShifted2(f, j, 2*ny-1-j, s)
	}
}

// copyRowScaledShifted fills row jDst (including its x halos) with
// s·f(λ+π) of row jSrc, reading only owned longitudes of the source.
func copyRowScaledShifted(f *F3, jDst, jSrc int, s float64) {
	nx := f.B.Nx
	half := nx / 2
	for lk := 0; lk < f.sz; lk++ {
		k := lk + f.oz
		d := f.Index(f.ox, jDst, k)
		srcBase := f.Index(0, jSrc, k) // owned x origin of the source row
		for o := 0; o < f.sx; o++ {
			iGlob := o + f.ox // global longitude of the destination cell
			iSrc := ((iGlob+half)%nx + nx) % nx
			f.Data[d+o] = s * f.Data[srcBase+iSrc]
		}
	}
}

func copyRowScaledShifted2(f *F2, jDst, jSrc int, s float64) {
	nx := f.B.Nx
	half := nx / 2
	d := f.Index(f.ox, jDst)
	srcBase := f.Index(0, jSrc)
	for o := 0; o < f.sx; o++ {
		iGlob := o + f.ox
		iSrc := ((iGlob+half)%nx + nx) % nx
		f.Data[d+o] = s * f.Data[srcBase+iSrc]
	}
}

// copyRowScaled copies row jSrc to row jDst (all i in storage, all k in
// storage) scaled by s.
func copyRowScaled(f *F3, jDst, jSrc int, s float64) {
	for lk := 0; lk < f.sz; lk++ {
		k := lk + f.oz
		d := f.Index(f.ox, jDst, k)
		src := f.Index(f.ox, jSrc, k)
		for o := 0; o < f.sx; o++ {
			f.Data[d+o] = s * f.Data[src+o]
		}
	}
}

func zeroRow(f *F3, j int) {
	for lk := 0; lk < f.sz; lk++ {
		k := lk + f.oz
		d := f.Index(f.ox, j, k)
		for o := 0; o < f.sx; o++ {
			f.Data[d+o] = 0
		}
	}
}

func copyRowScaled2(f *F2, jDst, jSrc int, s float64) {
	d := f.Index(f.ox, jDst)
	src := f.Index(f.ox, jSrc)
	for o := 0; o < f.sx; o++ {
		f.Data[d+o] = s * f.Data[src+o]
	}
}

// copyPlaneZ copies the full horizontal plane at kSrc to kDst.
func copyPlaneZ(f *F3, kDst, kSrc int) {
	planeSize := f.sx * f.sy
	d := (kDst - f.oz) * planeSize
	s := (kSrc - f.oz) * planeSize
	copy(f.Data[d:d+planeSize], f.Data[s:s+planeSize])
}
