package field

import "math"

// The linear-combination helpers below operate on the full storage slice
// (owned + halo). Operating on halos too is deliberate: the deep-halo scheme
// of the communication-avoiding algorithm performs redundant updates in halo
// areas, so intermediate states must carry valid halo values through the
// same arithmetic as owned values.

// Copy sets dst ← src. Shapes must match.
func Copy(dst, src *F3) {
	mustSameShape(dst, src)
	copy(dst.Data, src.Data)
}

// Scale sets f ← c·f.
func Scale(f *F3, c float64) {
	for i := range f.Data {
		f.Data[i] *= c
	}
}

// Axpy sets dst ← dst + c·src.
func Axpy(dst *F3, c float64, src *F3) {
	mustSameShape(dst, src)
	d, s := dst.Data, src.Data
	for i := range d {
		d[i] += c * s[i]
	}
}

// Lin2 sets dst ← a·x + b·y.
func Lin2(dst *F3, a float64, x *F3, b float64, y *F3) {
	mustSameShape(dst, x)
	mustSameShape(dst, y)
	d, xv, yv := dst.Data, x.Data, y.Data
	for i := range d {
		d[i] = a*xv[i] + b*yv[i]
	}
}

// Mean2 sets dst ← (x + y)/2, the midpoint state used by the third internal
// update of each nonlinear iteration (Algorithm 1, lines 8/14).
func Mean2(dst, x, y *F3) { Lin2(dst, 0.5, x, 0.5, y) }

// Lin2Rect sets dst ← a·x + b·y over rect r only (global indices within the
// storage region). The deep-halo algorithm uses it to update exactly the
// still-valid region, like the production code does.
func Lin2Rect(dst *F3, a float64, x *F3, b float64, y *F3, r Rect) {
	mustSameShape(dst, x)
	mustSameShape(dst, y)
	n := r.I1 - r.I0
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			base := dst.Index(r.I0, j, k)
			d, xv, yv := dst.Data[base:base+n], x.Data[base:base+n], y.Data[base:base+n]
			for i := range d {
				d[i] = a*xv[i] + b*yv[i]
			}
		}
	}
}

// Lin3Rect sets dst ← a·x + b·y + c·z over rect r — one fused sweep instead
// of a Lin2Rect followed by an AxpyRect, halving the memory traffic of
// three-operand combinations.
func Lin3Rect(dst *F3, a float64, x *F3, b float64, y *F3, c float64, z *F3, r Rect) {
	mustSameShape(dst, x)
	mustSameShape(dst, y)
	mustSameShape(dst, z)
	n := r.I1 - r.I0
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			base := dst.Index(r.I0, j, k)
			d, xv, yv, zv := dst.Data[base:base+n], x.Data[base:base+n], y.Data[base:base+n], z.Data[base:base+n]
			for i := range d {
				d[i] = a*xv[i] + b*yv[i] + c*zv[i]
			}
		}
	}
}

// AxpyRect sets dst ← dst + c·src over rect r.
func AxpyRect(dst *F3, c float64, src *F3, r Rect) {
	mustSameShape(dst, src)
	n := r.I1 - r.I0
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			base := dst.Index(r.I0, j, k)
			d, s := dst.Data[base:base+n], src.Data[base:base+n]
			for i := range d {
				d[i] += c * s[i]
			}
		}
	}
}

// AxpyRect2 is AxpyRect for 2-D fields (the k range of r is ignored).
func AxpyRect2(dst *F2, c float64, src *F2, r Rect) {
	if dst.B != src.B {
		panic("field: 2-D shape mismatch")
	}
	r = r.Flat2D()
	n := r.I1 - r.I0
	for j := r.J0; j < r.J1; j++ {
		base := dst.Index(r.I0, j)
		d, s := dst.Data[base:base+n], src.Data[base:base+n]
		for i := range d {
			d[i] += c * s[i]
		}
	}
}

// Lin2Rect2 is Lin2Rect for 2-D fields (the k range of r is ignored).
func Lin2Rect2(dst *F2, a float64, x *F2, b float64, y *F2, r Rect) {
	if dst.B != x.B || dst.B != y.B {
		panic("field: 2-D shape mismatch")
	}
	r = r.Flat2D()
	n := r.I1 - r.I0
	for j := r.J0; j < r.J1; j++ {
		base := dst.Index(r.I0, j)
		d, xv, yv := dst.Data[base:base+n], x.Data[base:base+n], y.Data[base:base+n]
		for i := range d {
			d[i] = a*xv[i] + b*yv[i]
		}
	}
}

// Copy2 sets dst ← src for 2-D fields.
func Copy2(dst, src *F2) {
	if dst.B != src.B {
		panic("field: 2-D shape mismatch")
	}
	copy(dst.Data, src.Data)
}

// Scale2 sets f ← c·f for 2-D fields.
func Scale2(f *F2, c float64) {
	for i := range f.Data {
		f.Data[i] *= c
	}
}

// Axpy2 sets dst ← dst + c·src for 2-D fields.
func Axpy2(dst *F2, c float64, src *F2) {
	if dst.B != src.B {
		panic("field: 2-D shape mismatch")
	}
	d, s := dst.Data, src.Data
	for i := range d {
		d[i] += c * s[i]
	}
}

// Lin22 sets dst ← a·x + b·y for 2-D fields.
func Lin22(dst *F2, a float64, x *F2, b float64, y *F2) {
	if dst.B != x.B || dst.B != y.B {
		panic("field: 2-D shape mismatch")
	}
	d, xv, yv := dst.Data, x.Data, y.Data
	for i := range d {
		d[i] = a*xv[i] + b*yv[i]
	}
}

// MaxAbsOwned returns max |f| over the owned region (halo excluded), so the
// value is decomposition independent.
func MaxAbsOwned(f *F3) float64 {
	r := f.B.Owned()
	m := 0.0
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			base := f.Index(r.I0, j, k)
			for _, v := range f.Data[base : base+(r.I1-r.I0)] {
				if a := math.Abs(v); a > m {
					m = a
				}
			}
		}
	}
	return m
}

// SumOwned returns Σ f over the owned region.
func SumOwned(f *F3) float64 {
	r := f.B.Owned()
	s := 0.0
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			base := f.Index(r.I0, j, k)
			for _, v := range f.Data[base : base+(r.I1-r.I0)] {
				s += v
			}
		}
	}
	return s
}

// MaxAbsDiffOwned returns max |a − b| over the owned region. Shapes must
// match.
func MaxAbsDiffOwned(a, b *F3) float64 {
	mustSameShape(a, b)
	r := a.B.Owned()
	m := 0.0
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			ba := a.Index(r.I0, j, k)
			for o := 0; o < r.I1-r.I0; o++ {
				if d := math.Abs(a.Data[ba+o] - b.Data[ba+o]); d > m {
					m = d
				}
			}
		}
	}
	return m
}

// MaxAbsDiffOwned2 returns max |a − b| over the owned region for 2-D fields.
func MaxAbsDiffOwned2(a, b *F2) float64 {
	if a.B != b.B {
		panic("field: 2-D shape mismatch")
	}
	r := a.B.Owned()
	m := 0.0
	for j := r.J0; j < r.J1; j++ {
		ba := a.Index(r.I0, j)
		for o := 0; o < r.I1-r.I0; o++ {
			if d := math.Abs(a.Data[ba+o] - b.Data[ba+o]); d > m {
				m = d
			}
		}
	}
	return m
}

// AllFiniteOwned reports whether every owned value is finite (no NaN/Inf);
// it is the cheap stability check used by the long-run tests.
func AllFiniteOwned(f *F3) bool {
	r := f.B.Owned()
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			base := f.Index(r.I0, j, k)
			for _, v := range f.Data[base : base+(r.I1-r.I0)] {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
	}
	return true
}

func mustSameShape(a, b *F3) {
	if !a.SameShape(b) {
		panic("field: shape mismatch")
	}
}
