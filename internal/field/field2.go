package field

import "fmt"

// F2 is a 2-D horizontal field (a function of longitude and latitude only,
// such as the surface-pressure deviation p'_sa) on one rank's block. Its
// storage mirrors F3 with the z extent collapsed. Every rank in a z column
// holds a full replica of the 2-D field, matching how surface fields are
// kept consistent in the original MPI code.
type F2 struct {
	B    Block
	Data []float64

	sx, sy int
	ox, oy int
}

// NewF2 allocates a zero-initialized 2-D field on the horizontal footprint
// of the given block (the K range of the block is ignored).
func NewF2(b Block) *F2 {
	b.Validate()
	sx, sy, _ := b.StorageDims()
	return &F2{
		B:    b,
		Data: make([]float64, sx*sy),
		sx:   sx, sy: sy,
		ox: b.I0 - b.Hx, oy: b.J0 - b.Hy,
	}
}

// Clone returns a deep copy.
func (f *F2) Clone() *F2 {
	g := NewF2(f.B)
	copy(g.Data, f.Data)
	return g
}

// Zero sets every stored value (including halos) to zero.
func (f *F2) Zero() {
	for i := range f.Data {
		f.Data[i] = 0
	}
}

// Index returns the flat offset of global point (i, j); it panics if the
// point lies outside the storage region.
func (f *F2) Index(i, j int) int {
	li, lj := i-f.ox, j-f.oy
	if uint(li) >= uint(f.sx) || uint(lj) >= uint(f.sy) {
		panic(fmt.Sprintf("field: point (%d,%d) outside 2-D storage of block %+v", i, j, f.B))
	}
	return lj*f.sx + li
}

// At returns the value at global point (i, j).
func (f *F2) At(i, j int) float64 { return f.Data[f.Index(i, j)] }

// Set stores v at global point (i, j).
func (f *F2) Set(i, j int, v float64) { f.Data[f.Index(i, j)] = v }

// Add accumulates v at global point (i, j).
func (f *F2) Add(i, j int, v float64) { f.Data[f.Index(i, j)] += v }

// Strides returns the flat strides (dx, dy).
func (f *F2) Strides() (dx, dy int) { return 1, f.sx }

// Row returns the storage slice of latitude row j, indexed by local
// offset: Row(j)[i − (I0 − Hx)] is the value at global (i, j); see F3.Row.
func (f *F2) Row(j int) []float64 {
	base := f.Index(f.ox, j)
	return f.Data[base : base+f.sx]
}

// XOff converts a global longitude index to the offset used with Row.
func (f *F2) XOff(i int) int { return i - f.ox }

// Origin returns the global index of Data[0].
func (f *F2) Origin() (i, j int) { return f.ox, f.oy }

// FillXPeriodic fills the x halo cells by local periodic copy (Y-Z
// decomposition only; panics otherwise), covering halo rows in y as well.
func (f *F2) FillXPeriodic() {
	if !f.B.OwnsFullX() {
		panic("field: FillXPeriodic called on a block that does not own the full x circle")
	}
	h := f.B.Hx
	if h == 0 {
		return
	}
	nx := f.B.Nx
	for lj := 0; lj < f.sy; lj++ {
		row := lj * f.sx
		for m := 0; m < h; m++ {
			f.Data[row+m] = f.Data[row+nx+m]
			f.Data[row+h+nx+m] = f.Data[row+h+m]
		}
	}
}

// Pack copies the values of the (2-D) rect r into dst in (j, i) order. The k
// range of r is ignored.
func (f *F2) Pack(r Rect, dst []float64) int {
	r = r.Flat2D()
	n := r.Count()
	if n == 0 {
		return 0
	}
	if len(dst) < n {
		panic(fmt.Sprintf("field: Pack buffer too small: %d < %d", len(dst), n))
	}
	w := 0
	for j := r.J0; j < r.J1; j++ {
		base := f.Index(r.I0, j)
		w += copy(dst[w:], f.Data[base:base+(r.I1-r.I0)])
	}
	return w
}

// Unpack copies src into the (2-D) rect r.
func (f *F2) Unpack(r Rect, src []float64) int {
	r = r.Flat2D()
	n := r.Count()
	if n == 0 {
		return 0
	}
	if len(src) < n {
		panic(fmt.Sprintf("field: Unpack buffer too small: %d < %d", len(src), n))
	}
	w := 0
	for j := r.J0; j < r.J1; j++ {
		base := f.Index(r.I0, j)
		w += copy(f.Data[base:base+(r.I1-r.I0)], src[w:])
	}
	return w
}
