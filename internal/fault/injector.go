package fault

import (
	"sync"

	"cadycore/internal/comm"
)

// Injector executes a Plan across the (possibly restarted) segments of one
// run. It owns the crash bookkeeping: each Crash entry fires Count times
// (default once) over the whole lifetime of the injector, so a job that is
// killed at step k and automatically restarted from its checkpoint does not
// die at step k forever. Create one Injector per job and reuse it across
// restarts.
//
// An Injector is safe for concurrent use: CrashAt predicates are invoked
// from rank goroutines.
type Injector struct {
	plan Plan

	mu        sync.Mutex
	remaining map[crashKey]int
}

type crashKey struct{ rank, step int }

// New builds an injector for the plan. Crash entries with Count <= 0 fire
// once; duplicate (rank, step) entries accumulate.
func New(plan Plan) *Injector {
	in := &Injector{plan: plan, remaining: make(map[crashKey]int)}
	for _, c := range plan.Crashes {
		n := c.Count
		if n <= 0 {
			n = 1
		}
		in.remaining[crashKey{c.Rank, c.Step}] += n
	}
	return in
}

// Plan returns the plan the injector was built from.
func (in *Injector) Plan() Plan { return in.plan }

// CommFaults builds the comm-layer fault profile for a world of p ranks, or
// nil when the plan has no stragglers, jitter or send errors — a nil profile
// keeps the communication paths bitwise identical to a fault-free run.
// Call it once per run segment: each segment draws from a fresh stream
// seeded by the plan, so a restarted segment injects deterministically too.
func (in *Injector) CommFaults(p int) *comm.Faults {
	pl := in.plan
	if len(pl.Stragglers) == 0 && pl.Jitter == nil && pl.SendErrors == nil {
		return nil
	}
	f := comm.NewFaults(p, pl.Seed)
	for _, s := range pl.Stragglers {
		if s.Rank < p && s.Scale > 1 {
			f.Rank(s.Rank).ComputeScale = s.Scale
		}
	}
	if j := pl.Jitter; j != nil && j.Prob > 0 && j.MaxDelay > 0 {
		for _, r := range targetRanks(j.Ranks, p) {
			rf := f.Rank(r)
			rf.JitterProb = j.Prob
			rf.JitterMax = j.MaxDelay
		}
	}
	if se := pl.SendErrors; se != nil && se.Prob > 0 && se.Cost > 0 {
		for _, r := range targetRanks(se.Ranks, p) {
			rf := f.Rank(r)
			rf.SendErrProb = se.Prob
			rf.SendErrCost = se.Cost
		}
	}
	return f
}

// targetRanks expands an explicit rank list (clipped to the world) or, when
// empty, every rank of a p-rank world.
func targetRanks(ranks []int, p int) []int {
	if len(ranks) == 0 {
		all := make([]int, p)
		for r := range all {
			all[r] = r
		}
		return all
	}
	out := make([]int, 0, len(ranks))
	for _, r := range ranks {
		if r >= 0 && r < p {
			out = append(out, r)
		}
	}
	return out
}

// CrashFunc returns a dycore.RunOpts.CrashAt predicate for a run segment
// whose step counter starts at global step base (0 for a fresh run, the
// checkpointed step for a resumed one), or nil when no crash can still fire
// — so a fault-free segment pays no per-step overhead at all.
func (in *Injector) CrashFunc(base int) func(rank, done int) bool {
	in.mu.Lock()
	armed := false
	for k, n := range in.remaining {
		if n > 0 && k.step > base {
			armed = true
			break
		}
	}
	in.mu.Unlock()
	if !armed {
		return nil
	}
	return func(rank, done int) bool {
		key := crashKey{rank, base + done}
		in.mu.Lock()
		defer in.mu.Unlock()
		if in.remaining[key] > 0 {
			in.remaining[key]--
			return true
		}
		return false
	}
}
