// Package fault is the seeded, deterministic fault-injection harness for the
// simulated runtime. A Plan — typically loaded from JSON (the -chaos flag of
// cmd/dycore and cmd/cadyserved) — describes rank crashes at given steps,
// straggler ranks (compute-rate scaling), message-delay jitter and transient
// send errors. An Injector turns a Plan into the two hooks the runtime
// consumes: a comm.Faults profile (stragglers, jitter, send errors, drawn
// from per-rank splitmix64 streams so they are independent of goroutine
// scheduling) and a dycore.RunOpts.CrashAt predicate (rank death, surfaced as
// a typed abort at the step barrier).
//
// Determinism guarantee: injected faults depend only on the plan (seed
// included) and on each rank's own program order — never on wall-clock time
// or scheduling. An empty plan injects nothing and leaves the simulated
// clock, statistics and results bitwise identical to a fault-free run.
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Plan is the JSON-specifiable fault profile of one run.
type Plan struct {
	// Seed derives the per-rank random streams of the probabilistic faults
	// (jitter, send errors). Two runs of the same plan inject identically.
	Seed int64 `json:"seed"`
	// Crashes kills ranks after they complete given global steps.
	Crashes []Crash `json:"crashes,omitempty"`
	// Stragglers slows ranks down by scaling their simulated compute time.
	Stragglers []Straggler `json:"stragglers,omitempty"`
	// Jitter delays message availability at the receiver probabilistically.
	Jitter *Jitter `json:"jitter,omitempty"`
	// SendErrors charges senders simulated retransmit time probabilistically.
	SendErrors *SendErrors `json:"send_errors,omitempty"`
}

// Crash kills one rank after it completes global step Step (1-based), Count
// times across restarts (0 means once): with Count 1 the first attempt that
// reaches Step dies and the automatic restart sails past it.
type Crash struct {
	Rank  int `json:"rank"`
	Step  int `json:"step"`
	Count int `json:"count,omitempty"`
}

// Straggler multiplies one rank's simulated compute time by Scale (>= 1),
// i.e. divides its effective ComputeRate — the classic slow-node fault.
type Straggler struct {
	Rank  int     `json:"rank"`
	Scale float64 `json:"scale"`
}

// Jitter delays each message sent by the listed ranks (all ranks if empty)
// with probability Prob by a uniform draw from [0, MaxDelay) seconds of
// simulated time.
type Jitter struct {
	Ranks    []int   `json:"ranks,omitempty"`
	Prob     float64 `json:"prob"`
	MaxDelay float64 `json:"max_delay"`
}

// SendErrors makes each message sent by the listed ranks (all ranks if
// empty) fail transiently with probability Prob; every failure costs the
// sender Cost seconds of simulated retransmit time before the payload
// departs, repeating geometrically (bounded by the comm layer).
type SendErrors struct {
	Ranks []int   `json:"ranks,omitempty"`
	Prob  float64 `json:"prob"`
	Cost  float64 `json:"cost"`
}

// Empty reports whether the plan injects nothing at all.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Crashes) == 0 && len(p.Stragglers) == 0 &&
		p.Jitter == nil && p.SendErrors == nil)
}

// Validate checks the plan against a world of procs ranks; procs <= 0 skips
// the rank-range checks (for validation before the decomposition is known).
func (p *Plan) Validate(procs int) error {
	checkRank := func(what string, r int) error {
		if r < 0 {
			return fmt.Errorf("fault: %s rank %d is negative", what, r)
		}
		if procs > 0 && r >= procs {
			return fmt.Errorf("fault: %s rank %d outside world of %d ranks", what, r, procs)
		}
		return nil
	}
	checkProb := func(what string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("fault: %s probability %g outside [0, 1]", what, v)
		}
		return nil
	}
	for _, c := range p.Crashes {
		if err := checkRank("crash", c.Rank); err != nil {
			return err
		}
		if c.Step < 1 {
			return fmt.Errorf("fault: crash step %d must be >= 1", c.Step)
		}
		if c.Count < 0 {
			return fmt.Errorf("fault: crash count %d must be >= 0", c.Count)
		}
	}
	for _, s := range p.Stragglers {
		if err := checkRank("straggler", s.Rank); err != nil {
			return err
		}
		if s.Scale < 1 {
			return fmt.Errorf("fault: straggler scale %g must be >= 1", s.Scale)
		}
	}
	if j := p.Jitter; j != nil {
		if err := checkProb("jitter", j.Prob); err != nil {
			return err
		}
		if j.MaxDelay < 0 {
			return fmt.Errorf("fault: jitter max_delay %g must be >= 0", j.MaxDelay)
		}
		for _, r := range j.Ranks {
			if err := checkRank("jitter", r); err != nil {
				return err
			}
		}
	}
	if se := p.SendErrors; se != nil {
		if err := checkProb("send_errors", se.Prob); err != nil {
			return err
		}
		if se.Cost < 0 {
			return fmt.Errorf("fault: send_errors cost %g must be >= 0", se.Cost)
		}
		for _, r := range se.Ranks {
			if err := checkRank("send_errors", r); err != nil {
				return err
			}
		}
	}
	return nil
}

// Parse decodes a plan from JSON, rejecting unknown fields so a typo in a
// chaos plan fails loudly instead of silently injecting nothing.
func Parse(data []byte) (Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("fault: parsing plan: %w", err)
	}
	return p, nil
}

// Load reads and parses a plan file.
func Load(path string) (Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, fmt.Errorf("fault: reading plan: %w", err)
	}
	return Parse(data)
}
