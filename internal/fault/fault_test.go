package fault

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const samplePlan = `{
  "seed": 7,
  "crashes": [{"rank": 1, "step": 2}, {"rank": 0, "step": 5, "count": 2}],
  "stragglers": [{"rank": 2, "scale": 2.5}],
  "jitter": {"prob": 0.1, "max_delay": 0.001},
  "send_errors": {"ranks": [0, 3], "prob": 0.05, "cost": 0.0002}
}`

func TestParseRoundTrip(t *testing.T) {
	p, err := Parse([]byte(samplePlan))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Seed != 7 || len(p.Crashes) != 2 || len(p.Stragglers) != 1 {
		t.Fatalf("parsed plan %+v", p)
	}
	if p.Crashes[1].Count != 2 {
		t.Fatalf("crash count = %d, want 2", p.Crashes[1].Count)
	}
	if p.Jitter == nil || p.Jitter.MaxDelay != 0.001 {
		t.Fatalf("jitter %+v", p.Jitter)
	}
	if p.SendErrors == nil || len(p.SendErrors.Ranks) != 2 {
		t.Fatalf("send errors %+v", p.SendErrors)
	}
	if p.Empty() {
		t.Fatal("non-empty plan reported Empty")
	}
	if err := p.Validate(4); err != nil {
		t.Fatalf("Validate(4): %v", err)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"seed": 1, "crashs": []}`)); err == nil {
		t.Fatal("misspelled field accepted")
	}
}

func TestLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(samplePlan), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if p.Seed != 7 {
		t.Fatalf("seed = %d, want 7", p.Seed)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name  string
		plan  Plan
		procs int
		want  string
	}{
		{"crash step zero", Plan{Crashes: []Crash{{Rank: 0, Step: 0}}}, 4, "step"},
		{"crash negative count", Plan{Crashes: []Crash{{Rank: 0, Step: 1, Count: -1}}}, 4, "count"},
		{"crash rank out of range", Plan{Crashes: []Crash{{Rank: 4, Step: 1}}}, 4, "rank"},
		{"straggler scale below one", Plan{Stragglers: []Straggler{{Rank: 0, Scale: 0.5}}}, 4, "scale"},
		{"jitter prob above one", Plan{Jitter: &Jitter{Prob: 1.5, MaxDelay: 1}}, 4, "prob"},
		{"jitter negative delay", Plan{Jitter: &Jitter{Prob: 0.5, MaxDelay: -1}}, 4, "delay"},
		{"send error negative cost", Plan{SendErrors: &SendErrors{Prob: 0.5, Cost: -1}}, 4, "cost"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate(tc.procs)
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// procs <= 0 skips rank-range checks (world size unknown at parse time).
	p := Plan{Crashes: []Crash{{Rank: 99, Step: 1}}}
	if err := p.Validate(0); err != nil {
		t.Errorf("Validate(0) enforced rank range: %v", err)
	}
}

// TestCrashFuncOnceAcrossSegments: a single-shot crash fires exactly once
// even across restarted segments with shifted bases, and a drained injector
// returns a nil predicate (no per-step overhead on later segments).
func TestCrashFuncOnceAcrossSegments(t *testing.T) {
	inj := New(Plan{Crashes: []Crash{{Rank: 1, Step: 3}}})

	// Segment 1 starts at global step 0; the crash arms at local done 3.
	f := inj.CrashFunc(0)
	if f == nil {
		t.Fatal("segment 1: nil predicate with a crash armed")
	}
	if f(1, 1) || f(1, 2) || f(0, 3) {
		t.Fatal("crash fired early or on the wrong rank")
	}
	if !f(1, 3) {
		t.Fatal("crash did not fire at rank 1 step 3")
	}
	if f(1, 3) {
		t.Fatal("single-shot crash fired twice")
	}

	// Segment 2 resumes from step 2 (checkpoint before the crash): the
	// global step 3 is local done 1, but the budget is spent.
	if g := inj.CrashFunc(2); g != nil && g(1, 1) {
		t.Fatal("crash re-fired after restart")
	}
	// A segment past every armed step gets a nil predicate.
	if g := inj.CrashFunc(3); g != nil {
		t.Fatal("drained injector returned a live predicate")
	}
}

func TestCrashFuncCountAndBase(t *testing.T) {
	inj := New(Plan{Crashes: []Crash{{Rank: 0, Step: 4, Count: 2}}})
	// First segment from scratch: fires at done 4.
	f := inj.CrashFunc(0)
	if !f(0, 4) {
		t.Fatal("first crash did not fire")
	}
	// Restart from checkpoint at step 2: global step 4 is local done 2.
	g := inj.CrashFunc(2)
	if g == nil {
		t.Fatal("nil predicate with one crash remaining")
	}
	if g(0, 1) {
		t.Fatal("crash fired at global step 3")
	}
	if !g(0, 2) {
		t.Fatal("second crash did not fire at global step 4")
	}
	if h := inj.CrashFunc(2); h != nil {
		t.Fatal("predicate live after count exhausted")
	}
}

func TestCommFaultsShape(t *testing.T) {
	// Crash-only plans need no comm-level profile at all.
	if f := New(Plan{Crashes: []Crash{{Rank: 0, Step: 1}}}).CommFaults(4); f != nil {
		t.Fatal("crash-only plan produced a comm profile")
	}

	p, err := Parse([]byte(samplePlan))
	if err != nil {
		t.Fatal(err)
	}
	f := New(p).CommFaults(4)
	if f == nil {
		t.Fatal("nil comm profile for a plan with stragglers/jitter/send errors")
	}
	if f.Size() != 4 {
		t.Fatalf("profile size %d, want 4", f.Size())
	}
	if got := f.Rank(2).ComputeScale; got != 2.5 {
		t.Errorf("straggler scale = %g, want 2.5", got)
	}
	if got := f.Rank(0).ComputeScale; got != 1 {
		t.Errorf("non-straggler scale = %g, want 1", got)
	}
	// Jitter with no rank list applies to all ranks.
	for r := 0; r < 4; r++ {
		if f.Rank(r).JitterProb != 0.1 {
			t.Errorf("rank %d jitter prob = %g, want 0.1", r, f.Rank(r).JitterProb)
		}
	}
	// Send errors are limited to the listed ranks.
	for r, want := range map[int]float64{0: 0.05, 1: 0, 2: 0, 3: 0.05} {
		if got := f.Rank(r).SendErrProb; got != want {
			t.Errorf("rank %d send-error prob = %g, want %g", r, got, want)
		}
	}

	// Stragglers and listed ranks beyond the world size are clipped.
	small := New(p).CommFaults(2)
	if small == nil || small.Size() != 2 {
		t.Fatalf("clipped profile %+v", small)
	}
}
