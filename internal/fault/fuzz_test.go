package fault

import (
	"encoding/json"
	"testing"
)

// FuzzPlanDecode drives the chaos-plan JSON decoder with arbitrary bytes.
// Parse must never panic; a plan it accepts must survive Validate without
// panicking (for both the unknown-world and a concrete world size) and must
// round-trip through encoding/json to an equivalent plan, so a plan file
// rewritten by tooling keeps injecting the same faults.
func FuzzPlanDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"crashes": [{"rank": 1, "step": 3}]}`))
	f.Add([]byte(`{"stragglers": [{"rank": 0, "scale": 2.5}], "jitter": {"prob": 0.1, "max_delay": 0.02}}`))
	f.Add([]byte(`{"send_errors": {"ranks": [0, 3], "prob": 0.5, "cost": 1e-4}}`))
	f.Add([]byte(`{"crashes": [{"rank": -1, "step": 0}]}`))
	f.Add([]byte(`{"unknown_field": true}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		// Validation must be total on anything Parse accepts.
		_ = p.Validate(0)
		_ = p.Validate(4)

		// Round-trip: re-encode and re-parse, then compare the canonical
		// encodings (Plan is plain data, so JSON equality is plan equality).
		out, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("marshaling accepted plan: %v", err)
		}
		p2, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parsing own encoding %s: %v", out, err)
		}
		out2, err := json.Marshal(p2)
		if err != nil {
			t.Fatalf("re-marshaling: %v", err)
		}
		if string(out) != string(out2) {
			t.Fatalf("plan does not round-trip:\n first %s\nsecond %s", out, out2)
		}
		if p.Empty() != p2.Empty() {
			t.Fatalf("Empty() changed across round-trip")
		}
	})
}
