package costmodel

import "math"

// Spectral-smoothing compute forms: the §5.3 extension for the composed
// zonal-symbol fast path. The stencil smoothing pass costs a flat per-point
// charge; the spectral pass replaces the zonal convolution of each row with
// one real-FFT round trip, whose n_x·log2 n_x arithmetic amortizes to a
// log2 n_x per-point charge. The Θ forms alone would rank the spectral path
// worse (n_x·log2 n_x > n_x); the win lives entirely in the constants —
// a 25-point stencil application versus a few flops per butterfly — so these
// expressions carry the calibrated rates explicitly, the same way Calib
// attaches α/β to the communication Θ forms.

// SpectralSmoothPoint is the per-point compute charge of one composed-symbol
// smoothing application at zonal extent nx, in point-update equivalents:
// cRow·log2 n_x for the row's FFT round trip (forward, symbol multiply,
// inverse — amortized over the n_x points of the row) plus cY·yShare for the
// meridional 5-point coupling that stays stencil. yShare ∈ [0,1] is the
// fraction of smoothed field applications carrying the y coupling (the P2
// fields Φ and p'_sa; the pure-P1x winds skip it).
func SpectralSmoothPoint(nx int, cY, cRow, yShare float64) float64 {
	if nx < 2 {
		nx = 2
	}
	return cY*yShare + cRow*math.Log2(float64(nx))
}

// SpectralSmoothWins reports whether the spectral path out-prices the flat
// cSten per-point stencil pass at zonal extent nx. The crossover is at
// log2 n_x = (cSten − cY·yShare)/cRow; below it the spectral path wins,
// above it the stencil's n_x-independent constant takes over — the reason
// the tuner prices the switch per candidate layout instead of hard-coding
// either regime.
func SpectralSmoothWins(nx int, cSten, cY, cRow, yShare float64) bool {
	return SpectralSmoothPoint(nx, cY, cRow, yShare) < cSten
}
