package costmodel

// Calibrated-constant variants of the §5.3 expressions. The Θ forms order
// algorithms asymptotically but cannot choose between two decompositions at
// a fixed machine; attaching measured LogP constants turns them into
// predicted seconds:
//
//	T(alg) = α·S_alg + β·8·W_alg
//
// where α is the effective per-synchronization latency (network latency plus
// both send/receive software overheads), β the per-byte transfer time, W
// counts float64 values moved per processor and S synchronization rounds.

// Calib holds machine-calibrated LogP constants, as measured by the
// internal/tune calibrator or derived from a comm.NetModel.
type Calib struct {
	// Alpha is the effective latency per synchronization round, seconds.
	Alpha float64 `json:"alpha"`
	// Beta is the transfer time per byte, seconds.
	Beta float64 `json:"beta"`
}

// wordBytes is the payload size of one W unit (a float64).
const wordBytes = 8

// TimeCommAvoid predicts the communication seconds of the
// communication-avoiding algorithm for the problem.
func (c Calib) TimeCommAvoid(p Problem) float64 {
	return c.Alpha*SCommAvoid(p) + c.Beta*wordBytes*WCommAvoid(p)
}

// TimeOriginalYZ predicts the communication seconds of the original
// algorithm under the Y-Z decomposition.
func (c Calib) TimeOriginalYZ(p Problem) float64 {
	return c.Alpha*SOriginalYZ(p) + c.Beta*wordBytes*WOriginalYZ(p)
}

// TimeOriginalXY predicts the communication seconds of the original
// algorithm under the X-Y decomposition.
func (c Calib) TimeOriginalXY(p Problem) float64 {
	return c.Alpha*SOriginalXY(p) + c.Beta*wordBytes*WOriginalXY(p)
}
