package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func paperProblem(px, py, pz int) Problem {
	return Problem{Nx: 720, Ny: 360, Nz: 30, M: 3, K: 1, Px: px, Py: py, Pz: pz}
}

func TestSynchronizationCounts(t *testing.T) {
	// Section 5.3 with M = 3, K = 1: S_CA = 8, S_YZ = 22, S_XY = 37.
	p := paperProblem(8, 16, 8)
	if s := SCommAvoid(p); s != 8 {
		t.Errorf("S_CA = %v, want 8", s)
	}
	if s := SOriginalYZ(p); s != 22 {
		t.Errorf("S_YZ = %v, want 22", s)
	}
	if s := SOriginalXY(p); s != 37 {
		t.Errorf("S_XY = %v, want 37", s)
	}
}

func TestWRatioCAvsYZ(t *testing.T) {
	// W_CA/W_YZ = 2/3 for identical layouts: the approximate nonlinear
	// iteration eliminates one third of the collective volume.
	p := paperProblem(1, 128, 8)
	ratio := WCommAvoid(p) / WOriginalYZ(p)
	if math.Abs(ratio-2.0/3.0) > 1e-12 {
		t.Errorf("W_CA/W_YZ = %v, want 2/3", ratio)
	}
}

func TestPaperOrdering(t *testing.T) {
	// W_XY ≫ W_YZ > W_CA and S_XY > S_YZ > S_CA at the paper's scale. The
	// W_XY/W_YZ ratio is 2·(p_z/p_x)·log p_x/log p_z, so the X-Y scheme's
	// disadvantage is pronounced when p_x stays comparable to p_z — the
	// regime the paper's "n_x ≫ n_z" argument addresses.
	for _, pp := range [][3]int{{8, 64, 8}, {16, 128, 8}, {4, 90, 15}} {
		p := paperProblem(pp[0], pp[1], pp[2])
		if !Ordering(p) {
			t.Errorf("ordering fails for layout %v: W = %v/%v/%v, S = %v/%v/%v", pp,
				WOriginalXY(p), WOriginalYZ(p), WCommAvoid(p),
				SOriginalXY(p), SOriginalYZ(p), SCommAvoid(p))
		}
	}
}

func TestWCAAlwaysBelowWYZ(t *testing.T) {
	// On identical Y-Z layouts W_CA = (2/3)·W_YZ unconditionally, and the
	// synchronization ordering S_CA < S_YZ < S_XY holds for every M, K.
	f := func(seed int64) bool {
		r := seed
		next := func(lo, hi int64) int {
			r = (r*6364136223846793005 + 1442695040888963407)
			v := (r >> 33) % (hi - lo + 1)
			if v < 0 {
				v += hi - lo + 1
			}
			return int(lo + v)
		}
		p := Problem{
			Nx: 128 * next(2, 8), Ny: 90 * next(1, 4), Nz: next(16, 30),
			M: next(1, 4), K: next(1, 10),
			Px: 1 << next(1, 5), Py: 1 << next(1, 5), Pz: 1 << next(1, 3),
		}
		okW := WCommAvoid(p) < WOriginalYZ(p) || WOriginalYZ(p) == 0
		okS := SCommAvoid(p) < SOriginalYZ(p) && SOriginalYZ(p) < SOriginalXY(p)
		return okW && okS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFilterLowerBound(t *testing.T) {
	// η_x = 0: one processor along x costs nothing (Theorem 4.1) — the
	// basis of the Y-Z decomposition choice.
	if w := FilterLowerBound(720, 1); w != 0 {
		t.Errorf("p_x = 1 bound = %v, want 0", w)
	}
	// Positive and finite for p_x ≥ 2.
	for _, px := range []int{2, 4, 32, 180} {
		w := FilterLowerBound(720, px)
		if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
			t.Errorf("bound(720, %d) = %v", px, w)
		}
	}
}

func TestSumLowerBound(t *testing.T) {
	if w := SumLowerBound(720, 360, 1); w != 0 {
		t.Errorf("p_z = 1 sum bound = %v, want 0", w)
	}
	if w := SumLowerBound(720, 360, 8); w != 2*7*720*360 {
		t.Errorf("sum bound = %v", w)
	}
}

func TestHighOrderTermDominance(t *testing.T) {
	// Section 4.2's decomposition choice: accounting for how often each
	// collective runs per step (filtering after every tendency of every
	// 3-D component vs one summation per adaptation update), the filtering
	// term dominates the lower bound for realistic meshes — so eliminating
	// it (Y-Z, p_x = 1) is the right choice.
	nx, ny, nz := 720, 360, 30
	px, pz := 16, 8
	const m = 3
	filterCallsPerStep := 3 * (3*m + 3) // 3 filtered 3-D fields, 3M+3 tendencies
	sumCallsPerStep := 3 * m
	filter := FilterLowerBound(nx, px) * float64(ny*nz) * float64(filterCallsPerStep)
	sum := SumLowerBound(nx, ny, pz) * float64(sumCallsPerStep)
	if filter <= sum {
		t.Errorf("filter cost %v does not dominate summation cost %v", filter, sum)
	}
}

func TestScalingInK(t *testing.T) {
	// All costs are linear in the number of steps K.
	p1 := paperProblem(16, 64, 8)
	p2 := p1
	p2.K = 7
	if WCommAvoid(p2) != 7*WCommAvoid(p1) || SCommAvoid(p2) != 7*SCommAvoid(p1) {
		t.Error("costs not linear in K")
	}
}
