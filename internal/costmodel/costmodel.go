// Package costmodel implements the theoretical communication/synchronization
// cost model of the paper's Section 5.3 (following Solomonik et al.'s
// synchronization–communication–computation trade-off framework): the
// per-processor data movement W and synchronization count S of the three
// algorithms, plus the lower bounds of Theorems 4.1 and 4.2 used to justify
// the Y-Z decomposition.
package costmodel

import "math"

// Problem describes one run configuration for the model.
type Problem struct {
	Nx, Ny, Nz int
	M          int // nonlinear iterations per step
	K          int // time steps
	Px, Py, Pz int // process grid (only the relevant two are used per scheme)
}

// log2p returns log2(p) guarded for p ≤ 1 (a single rank moves no data, but
// Θ expressions keep a unit factor so ratios stay meaningful).
func log2p(p int) float64 {
	if p <= 1 {
		return 0
	}
	return math.Log2(float64(p))
}

// WCommAvoid is the paper's W_CA = Θ(2MK · n_x·(n_y/p_y)·(n_z/p_z)·log p_z):
// the communication-avoiding algorithm moves 2M z-collectives per step of
// its block's share of the mesh.
func WCommAvoid(p Problem) float64 {
	return 2 * float64(p.M) * float64(p.K) *
		float64(p.Nx) * float64(p.Ny) / float64(p.Py) * float64(p.Nz) / float64(p.Pz) *
		log2p(p.Pz)
}

// WOriginalYZ is W_YZ = Θ(3MK · n_x·(n_y/p_y)·(n_z/p_z)·log p_z).
func WOriginalYZ(p Problem) float64 {
	return 3 * float64(p.M) * float64(p.K) *
		float64(p.Nx) * float64(p.Ny) / float64(p.Py) * float64(p.Nz) / float64(p.Pz) *
		log2p(p.Pz)
}

// WOriginalXY is W_XY = Θ(6MK · n_z·(n_y/p_y)·(n_x/p_x)·log p_x): the
// distributed-FFT filtering moves each rank's share in every one of the ~6M
// filtered tendencies per step.
func WOriginalXY(p Problem) float64 {
	return 6 * float64(p.M) * float64(p.K) *
		float64(p.Nz) * float64(p.Ny) / float64(p.Py) * float64(p.Nx) / float64(p.Px) *
		log2p(p.Px)
}

// SCommAvoid is S_CA = Θ((2M+2)K): 2M z-collectives plus 2 neighbor-exchange
// rounds per step.
func SCommAvoid(p Problem) float64 { return float64((2*p.M + 2) * p.K) }

// SOriginalYZ is S_YZ = Θ((6M+4)K): 3M z-collectives plus 3M+4 exchanges.
func SOriginalYZ(p Problem) float64 { return float64((6*p.M + 4) * p.K) }

// SOriginalXY is S_XY = Θ((9M+10)K): per-update exchanges plus two
// transposes per distributed filtering.
func SOriginalXY(p Problem) float64 { return float64((9*p.M + 10) * p.K) }

// ceilDiv is ⌈a/b⌉ for positive operands.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// SCommAvoidStaged is the staged-exchange refinement of S_CA: a halo of
// depth 3s rows serves s adaptation iterations, so one step performs
// ⌈M/s⌉ adaptation exchange rounds plus the advection round next to the
// unchanged 2M z-collectives, S = Θ((2M + ⌈M/s⌉ + 1)·K). s = M recovers
// the full-depth S_CA = Θ((2M+2)K).
func SCommAvoidStaged(p Problem, s int) float64 {
	if s <= 0 || s > p.M {
		s = p.M
	}
	return float64((2*p.M + ceilDiv(p.M, s) + 1) * p.K)
}

// WHaloCommAvoidStaged is the per-step halo volume of the staged exchange
// in point-equivalents: ⌈M/s⌉+1 rounds each moving a y halo of depth Θ(3s)
// over the block's x×z face. Staging trades synchronization (more rounds)
// against per-round volume and redundant-zone width; the total stays
// Θ(3M·n_x·n_z/p_z) up to the ⌈⌉ rounding, which is why the overlapped
// residual (OverlapExposed), not W, decides the optimum stage depth.
func WHaloCommAvoidStaged(p Problem, s int) float64 {
	if s <= 0 || s > p.M {
		s = p.M
	}
	rounds := float64(ceilDiv(p.M, s) + 1)
	return rounds * 3 * float64(s) * float64(p.K) *
		float64(p.Nx) * float64(p.Nz) / float64(p.Pz)
}

// OverlapExposed is the overlapped-exchange refinement of the §5.3
// synchronization charge: a Begin/Finish split hides up to `window` seconds
// of a round's `cost` behind interior compute, so only the residual wait
// stays on the critical path. Both operands are non-negative seconds.
func OverlapExposed(cost, window float64) float64 {
	if window >= cost {
		return 0
	}
	if window < 0 {
		return cost
	}
	return cost - window
}

// OverlapHidden is the complementary hidden share: min(cost, window).
func OverlapHidden(cost, window float64) float64 {
	return cost - OverlapExposed(cost, window)
}

// FilterLowerBound is Theorem 4.1: the communication cost of the n_x-input
// Fourier filtering with p_x processors,
// W = Ω(2·n_x·log n_x / (p_x·log(n_x/p_x)) · η_x), η_x = 0 iff p_x = 1.
func FilterLowerBound(nx, px int) float64 {
	if px <= 1 {
		return 0
	}
	if px >= nx {
		px = nx - 1
	}
	den := float64(px) * math.Log2(float64(nx)/float64(px))
	if den <= 0 {
		return math.Inf(1)
	}
	return 2 * float64(nx) * math.Log2(float64(nx)) / den
}

// SumLowerBound is Theorem 4.2: the summation collective along z costs
// W = Ω(2(p_z−1)·n_x·n_y) in total data movement.
func SumLowerBound(nx, ny, pz int) float64 {
	return 2 * float64(pz-1) * float64(nx) * float64(ny)
}

// Ordering verifies the paper's qualitative conclusion
// W_XY ≫ W_YZ > W_CA and S_XY > S_YZ > S_CA for a given problem; it returns
// false if any inequality fails (used by tests and the theory table).
func Ordering(p Problem) bool {
	wca, wyz, wxy := WCommAvoid(p), WOriginalYZ(p), WOriginalXY(p)
	sca, syz, sxy := SCommAvoid(p), SOriginalYZ(p), SOriginalXY(p)
	return wxy > wyz && wyz > wca && sxy > syz && syz > sca
}
