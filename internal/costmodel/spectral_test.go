package costmodel_test

import (
	"testing"

	"cadycore/internal/costmodel"
	"cadycore/internal/dycore"
)

// TestSpectralSmoothWinsAtFigureMesh pins the priced form against the
// simulated machine's weights: at the paper's figure mesh (n_x = 96) the
// composed-symbol pass must out-price the stencil pass, a crossover to the
// stencil regime must exist at large n_x, and the per-point charge must be
// monotone in n_x (the log2 n_x row amortization).
func TestSpectralSmoothWinsAtFigureMesh(t *testing.T) {
	_, _, cSten, _, _ := dycore.SimCosts()
	cY, cRow := dycore.SimSpectralSmooth()
	const yShare = 0.5 // two of the four smoothed fields carry the y coupling

	if !costmodel.SpectralSmoothWins(96, cSten, cY, cRow, yShare) {
		t.Errorf("spectral pass does not win at nx=96: %g >= %g",
			costmodel.SpectralSmoothPoint(96, cY, cRow, yShare), cSten)
	}
	if !costmodel.SpectralSmoothWins(16, cSten, cY, cRow, yShare) {
		t.Errorf("spectral pass does not win at the test mesh nx=16")
	}

	// The log2 growth must eventually hand the win back to the stencil.
	crossed := false
	prev := 0.0
	for nx := 4; nx <= 1<<20; nx *= 2 {
		p := costmodel.SpectralSmoothPoint(nx, cY, cRow, yShare)
		if p < prev {
			t.Fatalf("per-point charge not monotone: %g at nx=%d after %g", p, nx, prev)
		}
		prev = p
		if !costmodel.SpectralSmoothWins(nx, cSten, cY, cRow, yShare) {
			crossed = true
		}
	}
	if !crossed {
		t.Error("no stencil-regime crossover up to nx=2^20; the priced form lost its constant")
	}
}
