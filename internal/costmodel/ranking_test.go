package costmodel_test

import (
	"math"
	"sort"
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/costmodel"
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/state"
)

// TestCalibratedModelRankingMatchesMeasured is the Figure-1-style model
// validation: with constants taken from the simulated network model, the
// calibrated W/S expressions must rank decompositions in the same order as
// the measured communication time of real runs — otherwise the planner's
// analytic stage would mis-seed the pilot stage.
func TestCalibratedModelRankingMatchesMeasured(t *testing.T) {
	g := grid.New(16, 12, 4)
	const steps = 2
	cfg := dycore.DefaultConfig()
	cfg.M = 2
	cfg.Dt1, cfg.Dt2 = 40, 240

	model := comm.TianheLike()
	cal := costmodel.Calib{
		Alpha: model.Latency + 2*model.SendOverhead,
		Beta:  model.ByteTime,
	}

	init := func(g *grid.Grid, st *state.State) {
		st.InitFromPhysical(g,
			func(lam, th, sig float64) float64 { return 20 * math.Sin(th) * math.Sin(th) },
			func(lam, th, sig float64) float64 { return 1.5 * math.Sin(2*lam) * math.Sin(th) },
			func(lam, th, sig float64) float64 { return 280 + 8*math.Cos(th)*math.Cos(th) },
			func(lam, th float64) float64 { return 100000 + 200*math.Sin(th) },
		)
	}

	type layout struct {
		name      string
		setup     dycore.Setup
		predicted float64
	}
	prob := func(px, py, pz int) costmodel.Problem {
		return costmodel.Problem{Nx: g.Nx, Ny: g.Ny, Nz: g.Nz, M: cfg.M, K: steps, Px: px, Py: py, Pz: pz}
	}
	layouts := []layout{
		{"ca-2x2", dycore.Setup{Alg: dycore.AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg}, cal.TimeCommAvoid(prob(1, 2, 2))},
		{"yz-4x1", dycore.Setup{Alg: dycore.AlgBaselineYZ, PA: 4, PB: 1, Cfg: cfg}, cal.TimeOriginalYZ(prob(1, 4, 1))},
		{"yz-1x4", dycore.Setup{Alg: dycore.AlgBaselineYZ, PA: 1, PB: 4, Cfg: cfg}, cal.TimeOriginalYZ(prob(1, 1, 4))},
		{"xy-2x2", dycore.Setup{Alg: dycore.AlgBaselineXY, PA: 2, PB: 2, Cfg: cfg}, cal.TimeOriginalXY(prob(2, 2, 1))},
	}

	measured := make([]float64, len(layouts))
	for i, l := range layouts {
		res := dycore.Run(l.setup, g, model, init, steps)
		measured[i] = res.Agg.TotalCommTime()
		t.Logf("%-8s predicted %.3e s  measured %.3e s (csum %d B, filter %d B, exchange %d B)",
			l.name, l.predicted, measured[i],
			res.Agg.CSumBytes(), res.Agg.FilterBytes(), res.Agg.ExchangeBytes())
	}

	rank := func(vals []float64) []int {
		idx := make([]int, len(vals))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
		return idx
	}
	pred := make([]float64, len(layouts))
	for i, l := range layouts {
		pred[i] = l.predicted
	}
	pr, mr := rank(pred), rank(measured)
	for i := range pr {
		if pr[i] != mr[i] {
			names := func(idx []int) []string {
				out := make([]string, len(idx))
				for i, k := range idx {
					out[i] = layouts[k].name
				}
				return out
			}
			t.Fatalf("model ranking %v != measured ranking %v", names(pr), names(mr))
		}
	}
}
