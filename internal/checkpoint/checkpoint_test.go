package checkpoint

import (
	"bytes"
	"math/rand"
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/state"
)

func randomGlobal(g *grid.Grid, seed int64) *Global {
	rng := rand.New(rand.NewSource(seed))
	st := state.New(BlockOf(g))
	for i := range st.U.Data {
		st.U.Data[i] = rng.NormFloat64()
		st.V.Data[i] = rng.NormFloat64()
		st.Phi.Data[i] = rng.NormFloat64()
	}
	for i := range st.Psa.Data {
		st.Psa.Data[i] = rng.NormFloat64() * 100
	}
	return Gather(g, []*state.State{st})
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := grid.New(16, 10, 4)
	gl := randomGlobal(g, 1)
	var buf bytes.Buffer
	if err := gl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !gl.Equal(back) {
		t.Fatal("roundtrip lost data")
	}
}

func TestCorruptionDetected(t *testing.T) {
	g := grid.New(16, 10, 4)
	gl := randomGlobal(g, 2)
	var buf bytes.Buffer
	if err := gl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0xFF
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted checkpoint accepted")
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(bytes.NewReader([]byte("CA"))); err == nil {
		t.Fatal("truncated magic accepted")
	}
}

func TestGatherScatterAcrossDecompositions(t *testing.T) {
	// A snapshot taken under one decomposition must restore exactly under
	// another.
	g := grid.New(16, 12, 6)
	gl := randomGlobal(g, 3)

	// Scatter to a 2x2 Y-Z decomposition, gather back, compare.
	const py, pz = 2, 2
	w := comm.NewWorld(py*pz, comm.Zero())
	parts := make([]*state.State, py*pz)
	w.Run(func(c *comm.Comm) {
		cy := c.Rank() % py
		cz := c.Rank() / py
		b := BlockOf(g)
		b.J0, b.J1 = cy*g.Ny/py, (cy+1)*g.Ny/py
		b.K0, b.K1 = cz*g.Nz/pz, (cz+1)*g.Nz/pz
		st := state.New(b)
		if err := gl.Scatter(st); err != nil {
			t.Error(err)
		}
		parts[c.Rank()] = st
	})
	back := Gather(g, parts)
	if !gl.Equal(back) {
		t.Fatal("scatter/gather across decomposition lost data")
	}
}

func TestMeshMismatchRejected(t *testing.T) {
	g := grid.New(16, 10, 4)
	gl := randomGlobal(g, 4)
	other := grid.New(32, 10, 4)
	st := state.New(BlockOf(other))
	if err := gl.Scatter(st); err == nil {
		t.Fatal("mesh mismatch accepted")
	}
}

func TestRestartContinuesRun(t *testing.T) {
	// Checkpoint-restart invariance: running 4 steps straight must equal
	// running 2, checkpointing (through the serialized format), and running
	// 2 more — bitwise, because the restart restores the exact state (the
	// only non-state memory, the Ĉ cache, is rebuilt by SetState exactly as
	// at a cold start, and the first step's η1 then uses Ĉ(ξ) on both
	// paths... so we compare with ExactC to make the iteration memoryless).
	g := grid.New(16, 10, 4)
	cfg := dycore.DefaultConfig()
	cfg.M = 1
	cfg.Dt1, cfg.Dt2 = 30, 180
	cfg.ExactC = true
	set := dycore.Setup{Alg: dycore.AlgBaselineYZ, PA: 2, PB: 1, Cfg: cfg}

	full := dycore.Run(set, g, comm.Zero(), heldsuarez.InitialState, 4)

	half := dycore.Run(set, g, comm.Zero(), heldsuarez.InitialState, 2)
	snap := Gather(g, half.Finals)
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed := dycore.Run(set, g, comm.Zero(), restored.InitFunc(), 2)

	if d := dycore.MaxDiffGlobal(g, full.Finals, resumed.Finals); d != 0 {
		t.Errorf("restart changed the trajectory by %g (want bitwise resume)", d)
	}
}
