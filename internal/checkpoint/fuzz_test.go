package checkpoint

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cadycore/internal/field"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/state"
)

// FuzzParseSnapName drives the store's filename parser with arbitrary
// directory entries. The invariants: never panic, never accept a name that
// could not spell a snapshot file, and stay consistent with the canonical
// path() spelling for store-valid keys.
func FuzzParseSnapName(f *testing.F) {
	f.Add("job-1@00000042.ck")
	f.Add("k@0.ck")
	f.Add("a@b@00000007.ck") // '@' in the key: LastIndex split
	f.Add("@00000001.ck")    // empty key must be rejected
	f.Add("k@-3.ck")
	f.Add("k@00000042.ck.tmp")
	f.Add(strings.Repeat("x", 200) + "@1.ck")
	f.Fuzz(func(t *testing.T, name string) {
		key, step, ok := parseSnapName(name)
		if !ok {
			return
		}
		if key == "" {
			t.Fatalf("parseSnapName(%q) accepted an empty key", name)
		}
		if step < 0 {
			t.Fatalf("parseSnapName(%q) accepted negative step %d", name, step)
		}
		// The accepted name must literally be key + "@" + digits + ".ck".
		rest := strings.TrimPrefix(name, key+"@")
		if rest == name || !strings.HasSuffix(rest, ".ck") {
			t.Fatalf("parseSnapName(%q) = (%q, %d) does not re-assemble", name, key, step)
		}
		// A store-valid key must round-trip through the canonical path()
		// spelling at the parsed step.
		if validKey(key) == nil {
			canon := fmt.Sprintf("%s@%08d.ck", key, step)
			k2, s2, ok2 := parseSnapName(canon)
			if !ok2 || k2 != key || s2 != step {
				t.Fatalf("canonical %q round-trips to (%q, %d, %v), want (%q, %d)",
					canon, k2, s2, ok2, key, step)
			}
		}
	})
}

// FuzzDirStoreLatest plants arbitrary bytes as the newest snapshot file of a
// key that also has one known-good committed snapshot below it. Latest must
// either accept the planted file (it happens to parse and checksum) or fall
// back to the good boundary — never panic, and never fail while a valid
// snapshot exists.
func FuzzDirStoreLatest(f *testing.F) {
	good := fuzzSeedSnapBytes()
	f.Add([]byte("torn"))
	f.Add([]byte{})
	f.Add(good)                       // a byte-exact valid snapshot
	f.Add(good[:len(good)-1])         // truncated tail: CRC must catch it
	f.Add(append([]byte{0}, good...)) // shifted header
	f.Fuzz(func(t *testing.T, planted []byte) {
		dir := t.TempDir()
		s, err := NewDirStore(dir)
		if err != nil {
			t.Fatalf("NewDirStore: %v", err)
		}
		gl := fuzzSeedSnap()
		if err := s.Put("k", 2, gl); err != nil {
			t.Fatalf("Put: %v", err)
		}
		//cadyvet:volatile deliberately plants arbitrary, possibly-torn bytes to fuzz Latest's fallback walk
		if err := os.WriteFile(filepath.Join(dir, "k@00000009.ck"), planted, 0o644); err != nil {
			t.Fatalf("planting fuzz file: %v", err)
		}
		got, step, err := s.Latest("k")
		if err != nil {
			t.Fatalf("Latest failed with a valid snapshot on disk: %v", err)
		}
		switch step {
		case 9:
			// The planted bytes verified; nothing more to check.
		case 2:
			if !got.Equal(gl) {
				t.Fatalf("fallback snapshot at step 2 differs from what Put wrote")
			}
		default:
			t.Fatalf("Latest picked step %d, want 9 (planted verifies) or 2 (fallback)", step)
		}
	})
}

// fuzzSeedSnap builds one small valid snapshot without a *testing.T, so the
// corpus seeding above can serialize it too.
func fuzzSeedSnap() *Global {
	g := grid.New(16, 8, 4)
	b := field.Block{
		Nx: g.Nx, Ny: g.Ny, Nz: g.Nz,
		I0: 0, I1: g.Nx, J0: 0, J1: g.Ny, K0: 0, K1: g.Nz,
		Hx: 3, Hy: 2, Hz: 1,
	}
	st := state.New(b)
	heldsuarez.InitialState(g, st)
	return Gather(g, []*state.State{st})
}

func fuzzSeedSnapBytes() []byte {
	var buf bytes.Buffer
	if err := fuzzSeedSnap().Write(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}
