// Package checkpoint serializes model states to a compact, versioned binary
// format so long simulations can be stopped and restarted — the restart-file
// capability every production AGCM has. The format stores the global mesh
// shape and, per rank, the owned region of every component; files written by
// one decomposition can be read back under any other (a gather/scatter pair
// over the global index space).
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"

	"cadycore/internal/field"
	"cadycore/internal/grid"
	"cadycore/internal/state"
)

// magic and version identify the file format.
const (
	magic   = "CADY"
	version = 1
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Global is a gathered, decomposition-independent snapshot of ξ.
type Global struct {
	Nx, Ny, Nz int
	// Dense arrays in (k, j, i) order; Psa in (j, i) order.
	U, V, Phi []float64
	Psa       []float64
}

// Gather collects the owned regions of per-rank states into a Global
// snapshot. Every global point must be covered exactly once by the blocks
// (z-replicated surface fields are taken from the K0 = 0 blocks).
func Gather(g *grid.Grid, sts []*state.State) *Global {
	n3 := g.Nx * g.Ny * g.Nz
	gl := &Global{
		Nx: g.Nx, Ny: g.Ny, Nz: g.Nz,
		U: make([]float64, n3), V: make([]float64, n3), Phi: make([]float64, n3),
		Psa: make([]float64, g.Nx*g.Ny),
	}
	for _, st := range sts {
		b := st.B
		for k := b.K0; k < b.K1; k++ {
			for j := b.J0; j < b.J1; j++ {
				for i := b.I0; i < b.I1; i++ {
					idx := (k*g.Ny+j)*g.Nx + i
					gl.U[idx] = st.U.At(i, j, k)
					gl.V[idx] = st.V.At(i, j, k)
					gl.Phi[idx] = st.Phi.At(i, j, k)
				}
			}
		}
		if b.K0 == 0 {
			for j := b.J0; j < b.J1; j++ {
				for i := b.I0; i < b.I1; i++ {
					gl.Psa[j*g.Nx+i] = st.Psa.At(i, j)
				}
			}
		}
	}
	return gl
}

// Scatter fills a rank's state (owned region only) from the snapshot; call
// the integrator's SetState afterwards to refresh halos.
func (gl *Global) Scatter(st *state.State) error {
	b := st.B
	if b.Nx != gl.Nx || b.Ny != gl.Ny || b.Nz != gl.Nz {
		return fmt.Errorf("checkpoint: mesh %dx%dx%d does not match snapshot %dx%dx%d",
			b.Nx, b.Ny, b.Nz, gl.Nx, gl.Ny, gl.Nz)
	}
	for k := b.K0; k < b.K1; k++ {
		for j := b.J0; j < b.J1; j++ {
			for i := b.I0; i < b.I1; i++ {
				idx := (k*gl.Ny+j)*gl.Nx + i
				st.U.Set(i, j, k, gl.U[idx])
				st.V.Set(i, j, k, gl.V[idx])
				st.Phi.Set(i, j, k, gl.Phi[idx])
			}
		}
	}
	for j := b.J0; j < b.J1; j++ {
		for i := b.I0; i < b.I1; i++ {
			st.Psa.Set(i, j, gl.Psa[j*gl.Nx+i])
		}
	}
	return nil
}

// InitFunc returns a dycore-compatible initializer that scatters the
// snapshot into each rank's state.
func (gl *Global) InitFunc() func(g *grid.Grid, st *state.State) {
	return func(g *grid.Grid, st *state.State) {
		if err := gl.Scatter(st); err != nil {
			panic(err)
		}
	}
}

// Write serializes the snapshot: header (magic, version, dims), the four
// component arrays, and a trailing CRC64 of everything before it.
func (gl *Global) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	h := crc64.New(crcTable)
	mw := io.MultiWriter(bw, h)

	if _, err := mw.Write([]byte(magic)); err != nil {
		return err
	}
	for _, v := range []uint32{version, uint32(gl.Nx), uint32(gl.Ny), uint32(gl.Nz)} {
		if err := binary.Write(mw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, arr := range [][]float64{gl.U, gl.V, gl.Phi, gl.Psa} {
		if err := binary.Write(mw, binary.LittleEndian, arr); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, h.Sum64()); err != nil {
		return err
	}
	return bw.Flush()
}

// Read deserializes and verifies a snapshot.
func Read(r io.Reader) (*Global, error) {
	br := bufio.NewReader(r)
	h := crc64.New(crcTable)
	tr := io.TeeReader(br, h)

	mg := make([]byte, 4)
	if _, err := io.ReadFull(tr, mg); err != nil {
		return nil, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if string(mg) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", mg)
	}
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(tr, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("checkpoint: reading header: %w", err)
		}
	}
	if hdr[0] != version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", hdr[0])
	}
	nx, ny, nz := int(hdr[1]), int(hdr[2]), int(hdr[3])
	if nx <= 0 || ny <= 0 || nz <= 0 || nx*ny*nz > 1<<30 {
		return nil, fmt.Errorf("checkpoint: implausible mesh %dx%dx%d", nx, ny, nz)
	}
	gl := &Global{
		Nx: nx, Ny: ny, Nz: nz,
		U: make([]float64, nx*ny*nz), V: make([]float64, nx*ny*nz),
		Phi: make([]float64, nx*ny*nz), Psa: make([]float64, nx*ny),
	}
	for _, arr := range [][]float64{gl.U, gl.V, gl.Phi, gl.Psa} {
		if err := binary.Read(tr, binary.LittleEndian, arr); err != nil {
			return nil, fmt.Errorf("checkpoint: reading data: %w", err)
		}
	}
	want := h.Sum64()
	var got uint64
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("checkpoint: reading checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("checkpoint: checksum mismatch (file corrupt)")
	}
	return gl, nil
}

// Equal reports whether two snapshots are bitwise identical.
func (gl *Global) Equal(o *Global) bool {
	if gl.Nx != o.Nx || gl.Ny != o.Ny || gl.Nz != o.Nz {
		return false
	}
	eq := func(a, b []float64) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	return eq(gl.U, o.U) && eq(gl.V, o.V) && eq(gl.Phi, o.Phi) && eq(gl.Psa, o.Psa)
}

// BlockOf is a helper for tests: the trivial serial block of a mesh.
func BlockOf(g *grid.Grid) field.Block {
	return field.Block{
		Nx: g.Nx, Ny: g.Ny, Nz: g.Nz,
		I0: 0, I1: g.Nx, J0: 0, J1: g.Ny, K0: 0, K1: g.Nz,
		Hx: 3, Hy: 2, Hz: 1,
	}
}
