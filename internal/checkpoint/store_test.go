package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"cadycore/internal/field"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/state"
)

// storeSnap builds a small real snapshot to round-trip through the store.
func storeSnap(t *testing.T, scale float64) *Global {
	t.Helper()
	g := grid.New(16, 8, 4)
	b := field.Block{
		Nx: g.Nx, Ny: g.Ny, Nz: g.Nz,
		I0: 0, I1: g.Nx, J0: 0, J1: g.Ny, K0: 0, K1: g.Nz,
		Hx: 3, Hy: 2, Hz: 1,
	}
	st := state.New(b)
	heldsuarez.InitialState(g, st)
	gl := Gather(g, []*state.State{st})
	for i := range gl.U {
		gl.U[i] *= scale
	}
	return gl
}

func TestDirStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}

	if _, _, err := s.Latest("job-1"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("Latest on empty store: %v, want ErrNoSnapshot", err)
	}

	first := storeSnap(t, 1)
	if err := s.Put("job-1", 3, first); err != nil {
		t.Fatalf("Put: %v", err)
	}
	second := storeSnap(t, 2)
	if err := s.Put("job-1", 7, second); err != nil {
		t.Fatalf("Put step 7: %v", err)
	}
	gl, step, err := s.Latest("job-1")
	if err != nil || step != 7 {
		t.Fatalf("Latest: step %d err %v, want 7", step, err)
	}
	if !gl.Equal(second) {
		t.Fatal("Latest returned a different snapshot than Put stored")
	}

	// Put prunes superseded steps: only the newest file remains.
	ents, err := os.ReadDir(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var files []string
	for _, e := range ents {
		files = append(files, e.Name())
	}
	if len(files) != 1 || files[0] != "job-1@00000007.ck" {
		t.Fatalf("store contents after prune: %v", files)
	}

	keys, err := s.Keys()
	if err != nil || len(keys) != 1 || keys[0] != "job-1" {
		t.Fatalf("Keys: %v (%v)", keys, err)
	}
}

func TestDirStoreSkipsCorruptSnapshots(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	good := storeSnap(t, 1)
	if err := s.Put("k", 2, good); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Plant a corrupt "newer" snapshot beside it (as a torn write would).
	bad := filepath.Join(dir, "k@00000009.ck")
	//cadyvet:volatile deliberately plants a torn, non-durable file to prove Latest falls back past it
	if err := os.WriteFile(bad, []byte("torn"), 0o644); err != nil {
		t.Fatalf("writing corrupt file: %v", err)
	}
	gl, step, err := s.Latest("k")
	if err != nil {
		t.Fatalf("Latest with corrupt newest: %v", err)
	}
	if step != 2 || !gl.Equal(good) {
		t.Fatalf("Latest picked step %d, want fallback to the valid step 2", step)
	}
}

func TestDirStoreSharedAcrossHandles(t *testing.T) {
	dir := t.TempDir()
	a, err := NewDirStore(dir)
	if err != nil {
		t.Fatalf("NewDirStore a: %v", err)
	}
	b, err := NewDirStore(dir)
	if err != nil {
		t.Fatalf("NewDirStore b: %v", err)
	}
	gl := storeSnap(t, 3)
	if err := a.Put("shared", 5, gl); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, step, err := b.Latest("shared")
	if err != nil || step != 5 || !got.Equal(gl) {
		t.Fatalf("second handle sees step %d err %v", step, err)
	}
}

func TestDirStoreRejectsBadKeys(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	gl := storeSnap(t, 1)
	for _, key := range []string{"", "a/b", "../escape", "sp ace", string(make([]byte, 200))} {
		if err := s.Put(key, 1, gl); err == nil {
			t.Fatalf("Put accepted invalid key %q", key)
		}
		if _, _, err := s.Latest(key); err == nil {
			t.Fatalf("Latest accepted invalid key %q", key)
		}
	}
}
