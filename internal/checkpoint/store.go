//cadyvet:persistence snapshot files are the crash-recovery source of truth; every durable write must go through the blessed temp+fsync+rename+dir-fsync helpers below
package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Store is a shared artifact store for step-stamped snapshots, keyed by an
// opaque job key. It is the durability layer a fleet of backends shares: any
// backend can Put checkpoints as a job progresses, and after the backend dies
// another one can Latest the newest valid snapshot and resume. Implementations
// must be safe for concurrent use from multiple goroutines and — for
// file-backed stores — from multiple processes.
type Store interface {
	// Put durably records the snapshot for key at the given step boundary.
	// Older snapshots of the same key may be garbage-collected.
	Put(key string, step int, gl *Global) error
	// Latest returns the newest readable snapshot for key and its step.
	// A missing key returns ErrNoSnapshot.
	Latest(key string) (*Global, int, error)
	// Keys lists the keys with at least one snapshot, sorted.
	Keys() ([]string, error)
}

// ErrNoSnapshot is returned by Store.Latest when the key has no snapshot.
var ErrNoSnapshot = errors.New("checkpoint: no snapshot for key")

// DirStore is a Store over one directory: each snapshot is a self-committing
// file "<key>@<step>.ck" written with the temp+fsync+rename+dir-fsync
// protocol, so the filename itself carries the commit (a crash mid-write
// leaves only a *.tmp, never a torn .ck) and the format's CRC64 catches
// anything subtler. Latest walks steps downward until a file verifies, which
// also makes a corrupted newest file fall back to the previous boundary.
type DirStore struct {
	root string
}

// NewDirStore creates (if needed) and opens a directory store.
func NewDirStore(root string) (*DirStore, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{root: root}, nil
}

// Root returns the store directory.
func (d *DirStore) Root() string { return d.root }

// keyPattern restricts keys to a filename-safe charset; '@' stays reserved
// as the key/step separator.
func validKey(key string) error {
	if key == "" || len(key) > 128 {
		return fmt.Errorf("checkpoint: store key %q must be 1..128 chars", key)
	}
	for _, c := range key {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("checkpoint: store key %q has invalid char %q (want [a-zA-Z0-9._-])", key, c)
		}
	}
	return nil
}

func (d *DirStore) path(key string, step int) string {
	return filepath.Join(d.root, fmt.Sprintf("%s@%08d.ck", key, step))
}

// Put writes the snapshot durably, then prunes older boundaries of the same
// key (best-effort: a failed unlink costs disk, not correctness).
func (d *DirStore) Put(key string, step int, gl *Global) error {
	if err := validKey(key); err != nil {
		return err
	}
	if step < 0 {
		return fmt.Errorf("checkpoint: negative step %d for key %s", step, key)
	}
	if err := WriteAtomic(d.path(key, step), gl); err != nil {
		return err
	}
	steps, err := d.steps(key)
	if err != nil {
		return nil // the write committed; pruning is best-effort
	}
	for _, s := range steps {
		if s < step {
			os.Remove(d.path(key, s))
		}
	}
	return nil
}

// Latest returns the newest snapshot that reads back valid.
func (d *DirStore) Latest(key string) (*Global, int, error) {
	if err := validKey(key); err != nil {
		return nil, 0, err
	}
	steps, err := d.steps(key)
	if err != nil {
		return nil, 0, err
	}
	for i := len(steps) - 1; i >= 0; i-- {
		f, err := os.Open(d.path(key, steps[i]))
		if err != nil {
			continue
		}
		gl, err := Read(f)
		f.Close()
		if err == nil {
			return gl, steps[i], nil
		}
	}
	return nil, 0, fmt.Errorf("%w: %s", ErrNoSnapshot, key)
}

// Keys lists keys with at least one committed snapshot file.
func (d *DirStore) Keys() ([]string, error) {
	ents, err := os.ReadDir(d.root)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var keys []string
	for _, e := range ents {
		key, _, ok := parseSnapName(e.Name())
		if ok && !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// steps returns the committed step boundaries for key, ascending.
func (d *DirStore) steps(key string) ([]int, error) {
	ents, err := os.ReadDir(d.root)
	if err != nil {
		return nil, err
	}
	var steps []int
	for _, e := range ents {
		k, s, ok := parseSnapName(e.Name())
		if ok && k == key {
			steps = append(steps, s)
		}
	}
	sort.Ints(steps)
	return steps, nil
}

// parseSnapName splits "<key>@<step>.ck" into its parts.
func parseSnapName(name string) (key string, step int, ok bool) {
	if !strings.HasSuffix(name, ".ck") {
		return "", 0, false
	}
	base := strings.TrimSuffix(name, ".ck")
	at := strings.LastIndexByte(base, '@')
	if at <= 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(base[at+1:])
	if err != nil || n < 0 {
		return "", 0, false
	}
	return base[:at], n, true
}

// --- durable write helpers --------------------------------------------------
//
// The crash-safety protocol every durable artifact in the module uses:
// write a temp file in the destination directory, fsync it, rename over the
// target, fsync the parent directory. A crash at any point leaves either the
// old or the new file, never a torn or lost one.

// WriteAtomic durably writes one snapshot file with the protocol above.
//
//cadyvet:blessed the snapshot commit helper: temp file in the destination dir, payload write, then commitTmp
func WriteAtomic(path string, gl *Global) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := gl.Write(f); err != nil {
		//cadyvet:volatile error path: the payload write already failed and the tmp file is unlinked; nothing Close reports can rescue it
		f.Close()
		os.Remove(tmp)
		return err
	}
	return commitTmp(f, tmp, path)
}

// WriteFileAtomic durably replaces path with b (same protocol).
//
//cadyvet:blessed the byte-slice commit helper (fleet.json, meta.json, plan cache)
func WriteFileAtomic(path string, b []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		//cadyvet:volatile error path: the payload write already failed and the tmp file is unlinked; nothing Close reports can rescue it
		f.Close()
		os.Remove(tmp)
		return err
	}
	return commitTmp(f, tmp, path)
}

// commitTmp finishes a durable write: fsync, close, rename, dir fsync.
//
//cadyvet:blessed the shared commit tail: fsync, close, rename over the target, parent-dir fsync
func commitTmp(f *os.File, tmp, path string) error {
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// SyncDir fsyncs a directory so a just-renamed entry survives a power loss.
//
//cadyvet:blessed directory fsync making a just-renamed entry durable
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
