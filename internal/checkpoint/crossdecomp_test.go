package checkpoint

import (
	"bytes"
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/state"
)

// TestCrossDecompositionRoundTrip pins the decomposition-independence the
// package doc claims: a snapshot gathered from one p_y × p_z process grid,
// serialized, read back and scattered under a different grid — including a
// different algorithm family (X-Y decomposition, comm-avoiding deep halos)
// — gathers back bitwise identical. The restart runs zero steps, so only
// the gather/scatter pair over the global index space is exercised.
func TestCrossDecompositionRoundTrip(t *testing.T) {
	g := grid.New(48, 24, 8)
	cfg := dycore.DefaultConfig()
	cfg.M = 2

	// Produce a physically evolved snapshot under a 2x2 Y-Z grid.
	src := dycore.Setup{Alg: dycore.AlgBaselineYZ, PA: 2, PB: 2, Cfg: cfg}
	res := dycore.Run(src, g, comm.TianheLike(), heldsuarez.InitialState, 2)
	snap := Gather(g, res.Finals)

	// Serialize and reload, so the cross-decomposition path includes the
	// on-disk format, not just the in-memory arrays.
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !snap.Equal(loaded) {
		t.Fatalf("serialization round-trip not bitwise identical")
	}

	targets := []dycore.Setup{
		{Alg: dycore.AlgBaselineYZ, PA: 4, PB: 1, Cfg: cfg}, // different p_y x p_z split
		{Alg: dycore.AlgBaselineYZ, PA: 1, PB: 4, Cfg: cfg}, // all-z split
		{Alg: dycore.AlgBaselineYZ, PA: 2, PB: 2, Cfg: cfg}, // same grid (control)
		{Alg: dycore.AlgBaselineXY, PA: 2, PB: 2, Cfg: cfg}, // X-Y decomposition
		{Alg: dycore.AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg},  // deep-halo blocks
	}
	for _, set := range targets {
		rt := dycore.Run(set, g, comm.TianheLike(), loaded.InitFunc(), 0)
		back := Gather(g, rt.Finals)
		if !snap.Equal(back) {
			t.Errorf("%s %dx%d: restart round-trip not bitwise identical", set.Alg, set.PA, set.PB)
		}
	}
}

// TestScatterMeshMismatch checks the guard against restarting on a
// different mesh.
func TestScatterMeshMismatch(t *testing.T) {
	g := grid.New(16, 8, 4)
	snap := randomGlobal(g, 7)
	other := grid.New(16, 8, 6)
	st := state.New(BlockOf(other))
	if err := snap.Scatter(st); err == nil {
		t.Fatalf("Scatter accepted a mismatched mesh")
	}
}
