package harness

import (
	"fmt"
	"math"
	"strings"

	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/state"
)

// Figure3D is an extension experiment for the paper's Section 4.2 assertion
// that 2-dimensional decompositions "are always more efficient than
// 3-dimensional decomposition in real-world applications": it runs the
// original algorithm on the best 2-D Y-Z layout and on a 3-D layout
// (p_x = 2 with the remainder split like Y-Z) at each p, and reports total
// simulated runtimes.
func Figure3D(o Options) Figure {
	f := Figure{
		ID:     "extra-3d",
		Title:  "2-D vs 3-D decomposition, original algorithm (seconds, simulated)",
		YLabel: "seconds",
		Ps:     o.Ps,
	}
	twoD := Series{Name: "original-YZ (2-D)"}
	threeD := Series{Name: "original-3D (px=2)"}
	wins := 0
	comparisons := 0
	for _, p := range o.Ps {
		res2, ok2 := o.run(dycore.AlgBaselineYZ, p)
		if ok2 {
			twoD.Values = append(twoD.Values, res2.Agg.SimTime)
		} else {
			twoD.Values = append(twoD.Values, nanF())
		}
		res3, ok3 := o.run3D(p)
		if ok3 {
			threeD.Values = append(threeD.Values, res3.Agg.SimTime)
		} else {
			threeD.Values = append(threeD.Values, nanF())
		}
		if ok2 && ok3 {
			comparisons++
			if res2.Agg.SimTime <= res3.Agg.SimTime {
				wins++
			}
		}
	}
	f.Series = []Series{twoD, threeD}
	f.Notes = append(f.Notes, fmt.Sprintf(
		"2-D beats 3-D in %d of %d comparisons (paper: 2-D decompositions are always more efficient)",
		wins, comparisons))
	return f
}

// run3D executes the original algorithm on a 3-D layout: p_x = 2, the rest
// split by YZFactors.
func (o Options) run3D(p int) (dycore.RunResult, bool) {
	if p%2 != 0 {
		return dycore.RunResult{}, false
	}
	py, pz, ok := YZFactors(p/2, o.Ny, o.Nz)
	if !ok {
		return dycore.RunResult{}, false
	}
	g := o.grid()
	cfg := o.config()
	set := dycore.Setup{Alg: dycore.AlgBaseline3D, PA: 2, PB: py, PC: pz, Cfg: cfg}
	hs := heldsuarez.Standard()
	hook := func(g *grid.Grid, st *state.State, step int) { hs.Apply(g, st, cfg.Dt2) }
	return dycore.RunWithHook(set, g, o.Model, heldsuarez.InitialState, o.Steps, hook), true
}

// FigureWeak is a weak-scaling extension experiment (the paper evaluates
// strong scaling only): the per-rank block is held at roughly
// baseNx×baseNy×Nz while the mesh grows with p, so perfect weak scaling is
// a flat line. The communication-avoiding algorithm's line should stay
// flatter than the baselines' (its round count per step is constant and its
// collective volume per rank is fixed).
func FigureWeak(o Options) Figure {
	f := Figure{
		ID:     "extra-weak",
		Title:  "weak scaling: simulated runtime at fixed per-rank block (seconds)",
		YLabel: "seconds",
		Ps:     o.Ps,
	}
	// Per-rank target: the p = min(Ps) configuration of the base mesh.
	baseP := o.Ps[0]
	for _, p := range o.Ps[1:] {
		if p < baseP {
			baseP = p
		}
	}
	series := make([]Series, len(figureAlgs))
	for ai, alg := range figureAlgs {
		series[ai].Name = alg.String()
	}
	for _, p := range o.Ps {
		// Scale the horizontal mesh so points/rank stays constant:
		// area multiplier = p/baseP, split √ per dimension (rounded to
		// multiples that keep layouts feasible).
		scale := float64(p) / float64(baseP)
		oo := o
		oo.cache = nil // different mesh per p: do not share the cache
		oo.Nx = evenize(int(float64(o.Nx) * math.Sqrt(scale)))
		oo.Ny = evenize(int(float64(o.Ny) * math.Sqrt(scale)))
		for ai, alg := range figureAlgs {
			res, ok := oo.run(alg, p)
			if !ok {
				series[ai].Values = append(series[ai].Values, nanF())
				continue
			}
			series[ai].Values = append(series[ai].Values, res.Agg.SimTime)
		}
	}
	f.Series = series
	f.Notes = append(f.Notes,
		"flat lines = perfect weak scaling; the mesh grows with p at fixed per-rank block")
	return f
}

func evenize(n int) int {
	if n%8 != 0 {
		n += 8 - n%8
	}
	return n
}

// FigureAblation is an extension experiment the paper's evaluation implies
// but does not show: the contribution of each Algorithm-2 ingredient,
// measured by switching one off at a time. Series are total simulated
// runtimes; the gap between a disabled variant and the full algorithm is
// that ingredient's contribution at that scale.
func FigureAblation(o Options) Figure {
	f := Figure{
		ID:     "extra-ablation",
		Title:  "Algorithm 2 ablations: total runtime with one ingredient disabled (seconds, simulated)",
		YLabel: "seconds",
		Ps:     o.Ps,
	}
	variants := []struct {
		name string
		mut  func(*dycore.Config)
	}{
		{"full CA", nil},
		{"no approx-C (3M colls)", func(c *dycore.Config) { c.ExactC = true }},
		{"no overlap", func(c *dycore.Config) { c.NoOverlap = true }},
		{"no fused smoothing", func(c *dycore.Config) { c.NoFusedSmoothing = true }},
		{"original-YZ", nil},
	}
	for _, v := range variants {
		ser := Series{Name: v.name}
		for _, p := range o.Ps {
			alg := dycore.AlgCommAvoid
			if v.name == "original-YZ" {
				alg = dycore.AlgBaselineYZ
			}
			res, ok := o.runVariant(alg, p, v.name, v.mut)
			if !ok {
				ser.Values = append(ser.Values, nanF())
				continue
			}
			ser.Values = append(ser.Values, res.Agg.SimTime)
		}
		f.Series = append(f.Series, ser)
	}
	f.Notes = append(f.Notes,
		"each row disables one Section-4 optimization; the original-YZ row is the no-optimization reference")
	return f
}

// CSV renders the figure as RFC-4180-ish CSV (header p,series...; one row
// per process count; empty cells for infeasible layouts).
func (f Figure) CSV() string {
	var sb strings.Builder
	sb.WriteString("p")
	for _, s := range f.Series {
		sb.WriteByte(',')
		sb.WriteString(csvEscape(s.Name))
	}
	sb.WriteByte('\n')
	for i, p := range f.Ps {
		fmt.Fprintf(&sb, "%d", p)
		for _, s := range f.Series {
			sb.WriteByte(',')
			v := s.Values[i]
			if v == v { // not NaN
				fmt.Fprintf(&sb, "%g", v)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
