package harness

import (
	"math"
	"strings"
	"testing"

	"cadycore/internal/dycore"
)

func TestYZFactorsFeasibility(t *testing.T) {
	for _, c := range []struct{ p, ny, nz int }{
		{4, 96, 24}, {8, 96, 24}, {16, 96, 24}, {32, 96, 24}, {64, 96, 24},
		{16, 360, 30}, {1024, 360, 30},
	} {
		py, pz, ok := YZFactors(c.p, c.ny, c.nz)
		if !ok {
			t.Errorf("no Y-Z layout for p=%d on %dx%d", c.p, c.ny, c.nz)
			continue
		}
		if py*pz != c.p {
			t.Errorf("p=%d: %d·%d != p", c.p, py, pz)
		}
		if py > c.ny/2 || pz > c.nz/2 {
			t.Errorf("p=%d: layout %dx%d violates limits", c.p, py, pz)
		}
	}
	// Infeasible: prime p exceeding the latitude limit with pz = 1 and not
	// divisible otherwise.
	if _, _, ok := YZFactors(97, 96, 24); ok {
		t.Error("p=97 should be infeasible on 96x24")
	}
}

func TestXYFactorsBalanced(t *testing.T) {
	px, py, ok := XYFactors(64, 192, 96)
	if !ok || px*py != 64 {
		t.Fatalf("bad layout %dx%d", px, py)
	}
	if px != 8 || py != 8 {
		t.Errorf("expected the balanced 8x8, got %dx%d", px, py)
	}
}

func TestQuickFiguresShape(t *testing.T) {
	o := Quick()
	o.Prime()
	figs := AllFigures(o)
	if len(figs) != 4 {
		t.Fatalf("expected 4 figures, got %d", len(figs))
	}
	for _, f := range figs {
		if len(f.Ps) != len(o.Ps) {
			t.Errorf("%s: wrong x axis", f.ID)
		}
		for _, s := range f.Series {
			if len(s.Values) != len(f.Ps) {
				t.Errorf("%s/%s: %d values for %d ps", f.ID, s.Name, len(s.Values), len(f.Ps))
			}
		}
		if !strings.Contains(f.Format(), f.ID) {
			t.Errorf("%s: Format() lacks the figure id", f.ID)
		}
	}
}

func TestFigure1SharesSumToOne(t *testing.T) {
	o := Quick()
	o.Prime()
	f := Figure1(o)
	if len(f.Series) != 2 {
		t.Fatalf("figure 1 must have 2 series")
	}
	for i := range f.Ps {
		c := f.Series[0].Values[i]
		p := f.Series[1].Values[i]
		if c != c || p != p {
			continue
		}
		if math.Abs(c+p-1) > 1e-9 {
			t.Errorf("p=%d: shares sum to %v", f.Ps[i], c+p)
		}
		if c < 0 || c > 1 || p < 0 || p > 1 {
			t.Errorf("p=%d: shares out of range: %v %v", f.Ps[i], c, p)
		}
	}
}

func TestFigure7CAWinsStencil(t *testing.T) {
	// The headline qualitative claim at any scale: the CA algorithm's
	// stencil communication time beats the Y-Z baseline's.
	o := Quick()
	o.Prime()
	f := Figure7(o)
	var yz, ca []float64
	for _, s := range f.Series {
		switch s.Name {
		case dycore.AlgBaselineYZ.String():
			yz = s.Values
		case dycore.AlgCommAvoid.String():
			ca = s.Values
		}
	}
	for i := range f.Ps {
		if yz[i] != yz[i] || ca[i] != ca[i] {
			continue
		}
		if ca[i] >= yz[i] {
			t.Errorf("p=%d: CA stencil time %v not below Y-Z %v", f.Ps[i], ca[i], yz[i])
		}
	}
}

func TestFigure6CACollectiveBelowYZ(t *testing.T) {
	// The approximate nonlinear iteration must cut the z-collective time
	// (by roughly one third at matched layouts).
	o := Quick()
	o.Prime()
	f := Figure6(o)
	var yz, ca []float64
	for _, s := range f.Series {
		switch s.Name {
		case dycore.AlgBaselineYZ.String():
			yz = s.Values
		case dycore.AlgCommAvoid.String():
			ca = s.Values
		}
	}
	for i := range f.Ps {
		if yz[i] != yz[i] || ca[i] != ca[i] || yz[i] == 0 {
			continue
		}
		if ca[i] >= yz[i] {
			t.Errorf("p=%d: CA collective time %v not below Y-Z %v", f.Ps[i], ca[i], yz[i])
		}
	}
}

func TestTheoryTableConsistency(t *testing.T) {
	o := Quick()
	o.Prime()
	rows := TheoryTable(o)
	if len(rows) == 0 {
		t.Fatal("empty theory table")
	}
	// Group by p and verify the measured per-step exchange counts match
	// the algorithms' structure (3M+4 vs 2 per step).
	for _, r := range rows {
		perStep := float64(r.ExchangesMeasured-expectedBootstrapExchanges(r.Alg)) / float64(o.Steps)
		switch r.Alg {
		case dycore.AlgCommAvoid.String():
			if perStep != 2 {
				t.Errorf("p=%d CA exchanges/step = %v, want 2", r.P, perStep)
			}
		default:
			if perStep != float64(3*o.M+4) {
				t.Errorf("p=%d %s exchanges/step = %v, want %d", r.P, r.Alg, perStep, 3*o.M+4)
			}
		}
	}
	if s := FormatTheory(rows); !strings.Contains(s, "section-5.3") {
		t.Error("FormatTheory header missing")
	}
}

// expectedBootstrapExchanges returns the init exchanges included in the
// counter: 1 bootstrap for all algorithms, plus the final Finalize
// smoothing exchange for CA.
func expectedBootstrapExchanges(alg string) int64 {
	if alg == dycore.AlgCommAvoid.String() {
		return 2
	}
	return 1
}

func TestCacheSharing(t *testing.T) {
	o := Quick()
	o.Prime()
	a, okA := o.run(dycore.AlgBaselineYZ, o.Ps[0])
	b, okB := o.run(dycore.AlgBaselineYZ, o.Ps[0])
	if !okA || !okB {
		t.Fatal("run failed")
	}
	if a.Agg.SimTime != b.Agg.SimTime {
		t.Error("cache did not return the memoized result")
	}
}

func TestSortedPs(t *testing.T) {
	got := SortedPs([]int{8, 2, 4})
	if got[0] != 2 || got[2] != 8 {
		t.Errorf("SortedPs = %v", got)
	}
}

func TestFigure3DTwoDWins(t *testing.T) {
	o := Quick()
	o.Prime()
	f := Figure3D(o)
	if len(f.Series) != 2 {
		t.Fatalf("3d figure has %d series", len(f.Series))
	}
	for i := range f.Ps {
		two, three := f.Series[0].Values[i], f.Series[1].Values[i]
		if two != two || three != three {
			continue
		}
		if two > three {
			t.Errorf("p=%d: 2-D (%g) slower than 3-D (%g) — contradicts the paper's assertion",
				f.Ps[i], two, three)
		}
	}
}

func TestFigureWeakCAFlattest(t *testing.T) {
	o := Quick()
	o.Ps = []int{4, 16}
	o.Prime()
	f := FigureWeak(o)
	growth := map[string]float64{}
	for _, s := range f.Series {
		if s.Values[0] == s.Values[0] && s.Values[len(s.Values)-1] == s.Values[len(s.Values)-1] {
			growth[s.Name] = s.Values[len(s.Values)-1] / s.Values[0]
		}
	}
	ca, okCA := growth[dycore.AlgCommAvoid.String()]
	yz, okYZ := growth[dycore.AlgBaselineYZ.String()]
	if !okCA || !okYZ {
		t.Skip("layouts infeasible at quick scale")
	}
	if ca > 3*yz {
		t.Errorf("CA weak-scaling growth %.2fx much worse than YZ %.2fx", ca, yz)
	}
}

func TestFigureAblationOrdering(t *testing.T) {
	// Disabling an optimization must not make the algorithm faster (the
	// simulated clock is deterministic, so this is a sharp check up to the
	// FP noise of the trajectories differing under ExactC).
	o := Quick()
	o.Steps = 3 // fused smoothing only engages from step 2
	o.Prime()
	f := FigureAblation(o)
	vals := map[string][]float64{}
	for _, s := range f.Series {
		vals[s.Name] = s.Values
	}
	full := vals["full CA"]
	for _, name := range []string{"no approx-C (3M colls)", "no fused smoothing"} {
		abl := vals[name]
		for i := range full {
			if full[i] != full[i] || abl[i] != abl[i] {
				continue
			}
			if abl[i] < full[i]*0.98 {
				t.Errorf("p=%d: %q (%g) faster than full CA (%g)", f.Ps[i], name, abl[i], full[i])
			}
		}
	}
}

func TestFigureCSV(t *testing.T) {
	o := Quick()
	o.Prime()
	f := Figure8(o)
	csv := f.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+len(o.Ps) {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+len(o.Ps))
	}
	if !strings.HasPrefix(lines[0], "p,") {
		t.Errorf("CSV header %q", lines[0])
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != len(f.Series) {
			t.Errorf("CSV row %q has wrong arity", l)
		}
	}
}
