// Package harness regenerates the paper's evaluation (Section 5): Figures
// 1, 6, 7 and 8 and the Section 5.3 theory table, as data series over the
// process count p. Each data point is produced by actually running the
// corresponding algorithm on the simulated message-passing runtime with the
// Held–Suarez workload, so communication counters and (LogP-modeled) times
// emerge from real executions rather than formulas. Absolute times are not
// expected to match Tianhe-2; the paper's shapes — who wins, by what
// factor, where the crossovers fall — are.
package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"cadycore/internal/comm"
	"cadycore/internal/costmodel"
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/state"
)

// Options configures an experiment sweep. The embedded cache memoizes run
// results so the four figures share one execution of each (algorithm, p)
// cell; copy Options by reference (or call Prime once) to benefit.
type Options struct {
	Nx, Ny, Nz int
	M          int
	Steps      int
	Dt1, Dt2   float64
	Ps         []int
	Model      comm.NetModel

	cache *runCache
}

// runCache is the shared memoization of (algorithm, p, variant) cells. It is
// held by pointer so value copies of Options share it, and mutex-guarded so
// concurrent sweeps (the job service runs figure jobs on a worker pool) are
// safe. Concurrent misses of the same cell may both execute the run; the
// results are deterministic, so either store is correct.
type runCache struct {
	mu sync.Mutex
	m  map[cacheKey]cacheVal
}

func (rc *runCache) get(k cacheKey) (cacheVal, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	v, ok := rc.m[k]
	return v, ok
}

func (rc *runCache) put(k cacheKey, v cacheVal) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.m[k] = v
}

type cacheKey struct {
	alg     dycore.Algorithm
	p       int
	variant string // ablation label; "" = the standard configuration
}

type cacheVal struct {
	res dycore.RunResult
	ok  bool
}

// Defaults returns a sweep that runs in minutes on one machine: a scaled
// mesh (the 50 km mesh of the paper is available via cmd/experiments
// -nx 720 -ny 360 -nz 30) and the paper's M = 3.
func Defaults() Options {
	return Options{
		Nx: 192, Ny: 96, Nz: 24,
		M:     3,
		Steps: 2,
		Dt1:   30, Dt2: 180,
		Ps:    []int{8, 16, 32, 64, 128},
		Model: comm.TianheLike(),
	}
}

// Quick returns a minimal sweep for tests.
func Quick() Options {
	o := Defaults()
	o.Nx, o.Ny, o.Nz = 48, 24, 8
	o.M = 2
	o.Steps = 1
	o.Ps = []int{4, 8}
	return o
}

func (o Options) grid() *grid.Grid { return grid.New(o.Nx, o.Ny, o.Nz) }

func (o Options) config() dycore.Config {
	cfg := dycore.DefaultConfig()
	cfg.M = o.M
	cfg.Dt1, cfg.Dt2 = o.Dt1, o.Dt2
	return cfg
}

// YZFactors chooses (py, pz) for p ranks on the mesh with M = 3: the
// feasible pair maximizing the smaller of block-rows/halo-rows and
// block-layers/halo-layers, i.e. the layout that keeps the deep-halo
// overhead of the communication-avoiding algorithm lowest. All algorithms
// are run on the same layout, like the paper compares algorithms per p.
// ok = false when p cannot be laid out.
func YZFactors(p, ny, nz int) (py, pz int, ok bool) {
	return YZFactorsM(p, ny, nz, 3)
}

// YZFactorsM is YZFactors for a given number of nonlinear iterations M
// (which sets the deep-halo depths 3M+2 in y and 3M in z).
func YZFactorsM(p, ny, nz, m int) (py, pz int, ok bool) {
	maxPy, maxPz := ny/2, nz/2
	haloY, haloZ := float64(3*m+2), float64(3*m)
	best := math.Inf(-1)
	for a := 1; a <= p; a++ {
		if p%a != 0 {
			continue
		}
		b := p / a // a = py candidate, b = pz candidate
		if a > maxPy || b > maxPz {
			continue
		}
		rows := float64(ny) / float64(a) / haloY
		layers := float64(nz) / float64(b) / haloZ
		score := math.Min(rows, layers)
		if score > best {
			best = score
			py, pz = a, b
		}
	}
	return py, pz, !math.IsInf(best, -1)
}

// XYFactors chooses the most balanced feasible (px, py).
func XYFactors(p, nx, ny int) (px, py int, ok bool) {
	maxPx, maxPy := nx/2, ny/2
	best := -1
	for a := 1; a <= p; a++ {
		if p%a != 0 {
			continue
		}
		b := p / a
		if a > maxPx || b > maxPy {
			continue
		}
		bal := a - b
		if bal < 0 {
			bal = -bal
		}
		if best == -1 || bal < best {
			best = bal
			px, py = a, b
		}
	}
	return px, py, best != -1
}

// Prime allocates the shared memoization cache; AllFigures calls it
// automatically. After Prime, value copies of the Options share the cache.
func (o *Options) Prime() {
	if o.cache == nil {
		o.cache = &runCache{m: make(map[cacheKey]cacheVal)}
	}
}

// run executes one (algorithm, p) cell of the experiment matrix with the
// H-S workload and returns the result; ok=false when the layout is
// infeasible. Results are memoized (without the per-rank states, which the
// figures do not need) when the cache is primed.
func (o Options) run(alg dycore.Algorithm, p int) (dycore.RunResult, bool) {
	return o.runVariant(alg, p, "", nil)
}

// runVariant is run with a config mutation identified by a cache label.
func (o Options) runVariant(alg dycore.Algorithm, p int, variant string, mut func(*dycore.Config)) (dycore.RunResult, bool) {
	if o.cache != nil {
		if v, hit := o.cache.get(cacheKey{alg, p, variant}); hit {
			return v.res, v.ok
		}
	}
	res, ok := o.runUncached(alg, p, mut)
	res.Finals = nil
	if o.cache != nil {
		o.cache.put(cacheKey{alg, p, variant}, cacheVal{res, ok})
	}
	return res, ok
}

func (o Options) runUncached(alg dycore.Algorithm, p int, mut func(*dycore.Config)) (dycore.RunResult, bool) {
	g := o.grid()
	cfg := o.config()
	if mut != nil {
		mut(&cfg)
	}
	var set dycore.Setup
	switch alg {
	case dycore.AlgBaselineXY:
		px, py, ok := XYFactors(p, o.Nx, o.Ny)
		if !ok {
			return dycore.RunResult{}, false
		}
		set = dycore.Setup{Alg: alg, PA: px, PB: py, Cfg: cfg}
	default:
		py, pz, ok := YZFactors(p, o.Ny, o.Nz)
		if !ok {
			return dycore.RunResult{}, false
		}
		set = dycore.Setup{Alg: alg, PA: py, PB: pz, Cfg: cfg}
	}
	hs := heldsuarez.Standard()
	hook := func(g *grid.Grid, st *state.State, step int) {
		hs.Apply(g, st, cfg.Dt2)
	}
	res := dycore.RunWithHook(set, g, o.Model, heldsuarez.InitialState, o.Steps, hook)
	return res, true
}

// Series is one named line of a figure.
type Series struct {
	Name   string
	Values []float64 // aligned with Figure.Ps; NaN = infeasible layout
}

// Figure is one reproduced figure: data series over process counts.
type Figure struct {
	ID     string
	Title  string
	YLabel string
	Ps     []int
	Series []Series
	Notes  []string
}

// Format renders the figure as an aligned text table.
func (f Figure) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(&sb, "%-10s", "p")
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "%22s", s.Name)
	}
	sb.WriteByte('\n')
	for i, p := range f.Ps {
		fmt.Fprintf(&sb, "%-10d", p)
		for _, s := range f.Series {
			v := s.Values[i]
			switch {
			case v != v: // NaN
				fmt.Fprintf(&sb, "%22s", "-")
			case f.YLabel == "percent":
				fmt.Fprintf(&sb, "%21.1f%%", 100*v)
			default:
				fmt.Fprintf(&sb, "%22.6g", v)
			}
		}
		sb.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

const nan = "NaN"

func nanF() float64 {
	var v float64
	return v / v // quiet NaN without importing math for one call
}

// Figure1 reproduces Figure 1: the fraction of dynamical-core time spent in
// communication vs computation for the original algorithm (best
// decomposition per p).
func Figure1(o Options) Figure {
	f := Figure{
		ID:     "figure-1",
		Title:  "communication vs computation share of the dynamical core runtime (original algorithm, best decomposition)",
		YLabel: "percent",
		Ps:     o.Ps,
	}
	commS := Series{Name: "communication"}
	compS := Series{Name: "computation"}
	for _, p := range o.Ps {
		best := dycore.RunResult{}
		found := false
		for _, alg := range []dycore.Algorithm{dycore.AlgBaselineXY, dycore.AlgBaselineYZ} {
			res, ok := o.run(alg, p)
			if !ok {
				continue
			}
			if !found || res.Agg.SimTime < best.Agg.SimTime {
				best, found = res, true
			}
		}
		if !found {
			commS.Values = append(commS.Values, nanF())
			compS.Values = append(compS.Values, nanF())
			continue
		}
		ct := best.Agg.TotalCommTime()
		pt := best.Agg.CompTimeMax
		commS.Values = append(commS.Values, ct/(ct+pt))
		compS.Values = append(compS.Values, pt/(ct+pt))
	}
	f.Series = []Series{commS, compS}
	return f
}

var figureAlgs = []dycore.Algorithm{dycore.AlgBaselineXY, dycore.AlgBaselineYZ, dycore.AlgCommAvoid}

// sweep runs all three algorithms over o.Ps and extracts one value per run.
func sweep(o Options, extract func(dycore.RunResult) float64) []Series {
	out := make([]Series, len(figureAlgs))
	for ai, alg := range figureAlgs {
		out[ai].Name = alg.String()
		for _, p := range o.Ps {
			res, ok := o.run(alg, p)
			if !ok {
				out[ai].Values = append(out[ai].Values, nanF())
				continue
			}
			out[ai].Values = append(out[ai].Values, extract(res))
		}
	}
	return out
}

// Figure6 reproduces Figure 6: time for collective communication (the
// distributed-FFT transposes of F̃ under X-Y; the z summation of Ĉ under
// Y-Z and the communication-avoiding algorithm).
func Figure6(o Options) Figure {
	return Figure{
		ID:     "figure-6",
		Title:  "time for collective communication (seconds, simulated)",
		YLabel: "seconds",
		Ps:     o.Ps,
		Series: sweep(o, func(r dycore.RunResult) float64 { return r.Agg.CollectiveTime() }),
	}
}

// Figure7 reproduces Figure 7: communication time of the stencil
// computation (halo exchanges).
func Figure7(o Options) Figure {
	return Figure{
		ID:     "figure-7",
		Title:  "communication time of stencil (seconds, simulated)",
		YLabel: "seconds",
		Ps:     o.Ps,
		Series: sweep(o, func(r dycore.RunResult) float64 { return r.Agg.StencilTime() }),
	}
}

// Figure8 reproduces Figure 8: the total runtime of the dynamical core.
func Figure8(o Options) Figure {
	f := Figure{
		ID:     "figure-8",
		Title:  "total runtime of dynamical core (seconds, simulated)",
		YLabel: "seconds",
		Ps:     o.Ps,
		Series: sweep(o, func(r dycore.RunResult) float64 { return r.Agg.SimTime }),
	}
	f.Notes = append(f.Notes, summarizeFig8(f))
	return f
}

// summarizeFig8 states the paper's headline comparisons from the measured
// series: max runtime reduction vs X-Y and average speedup vs Y-Z.
func summarizeFig8(f Figure) string {
	var xy, yz, ca []float64
	for _, s := range f.Series {
		switch s.Name {
		case dycore.AlgBaselineXY.String():
			xy = s.Values
		case dycore.AlgBaselineYZ.String():
			yz = s.Values
		case dycore.AlgCommAvoid.String():
			ca = s.Values
		}
	}
	maxRed, sum, cnt := 0.0, 0.0, 0
	for i := range ca {
		if ca[i] != ca[i] {
			continue
		}
		if xy != nil && xy[i] == xy[i] {
			if red := 1 - ca[i]/xy[i]; red > maxRed {
				maxRed = red
			}
		}
		if yz != nil && yz[i] == yz[i] {
			sum += yz[i] / ca[i]
			cnt++
		}
	}
	if cnt == 0 {
		return "no feasible comparisons"
	}
	return fmt.Sprintf("CA reduces total runtime by up to %.0f%% vs X-Y (paper: 54%%); avg speedup vs Y-Z %.2fx (paper: 1.4x)",
		100*maxRed, sum/float64(cnt))
}

// TheoryRow is one line of the Section 5.3 comparison: the Θ-model values
// and the measured per-rank communication volume and synchronization count.
type TheoryRow struct {
	P                      int
	Alg                    string
	WModel, SModel         float64
	BytesMeasured          int64
	CollectivesMeasured    int64
	ExchangesMeasured      int64
	OrderingHolds          bool
}

// TheoryTable evaluates the Section 5.3 model against measured counters.
func TheoryTable(o Options) []TheoryRow {
	var rows []TheoryRow
	for _, p := range o.Ps {
		pyYZ, pzYZ, okYZ := YZFactors(p, o.Ny, o.Nz)
		pxXY, pyXY, okXY := XYFactors(p, o.Nx, o.Ny)
		prob := costmodel.Problem{Nx: o.Nx, Ny: o.Ny, Nz: o.Nz, M: o.M, K: o.Steps}
		for _, alg := range figureAlgs {
			var wm, sm float64
			switch alg {
			case dycore.AlgBaselineXY:
				if !okXY {
					continue
				}
				prob.Px, prob.Py, prob.Pz = pxXY, pyXY, 1
				wm, sm = costmodel.WOriginalXY(prob), costmodel.SOriginalXY(prob)
			case dycore.AlgBaselineYZ:
				if !okYZ {
					continue
				}
				prob.Px, prob.Py, prob.Pz = 1, pyYZ, pzYZ
				wm, sm = costmodel.WOriginalYZ(prob), costmodel.SOriginalYZ(prob)
			case dycore.AlgCommAvoid:
				if !okYZ {
					continue
				}
				prob.Px, prob.Py, prob.Pz = 1, pyYZ, pzYZ
				wm, sm = costmodel.WCommAvoid(prob), costmodel.SCommAvoid(prob)
			}
			res, ok := o.run(alg, p)
			if !ok {
				continue
			}
			rows = append(rows, TheoryRow{
				P: p, Alg: alg.String(),
				WModel: wm, SModel: sm,
				BytesMeasured:       res.Agg.BytesSent,
				CollectivesMeasured: res.Agg.Collectives,
				ExchangesMeasured:   res.Count.HaloExchanges,
				OrderingHolds:       costmodel.Ordering(prob),
			})
		}
	}
	return rows
}

// FormatTheory renders the theory table.
func FormatTheory(rows []TheoryRow) string {
	var sb strings.Builder
	sb.WriteString("== section-5.3: theoretical model vs measured counters ==\n")
	fmt.Fprintf(&sb, "%-8s%-16s%14s%10s%16s%14s%12s\n",
		"p", "algorithm", "W(model)", "S(model)", "bytes(meas)", "colls(meas)", "exch(meas)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8d%-16s%14.4g%10.4g%16d%14d%12d\n",
			r.P, r.Alg, r.WModel, r.SModel, r.BytesMeasured, r.CollectivesMeasured, r.ExchangesMeasured)
	}
	return sb.String()
}

// AllFigures runs every reproduced figure in order, sharing one execution
// of each (algorithm, p) cell across figures.
func AllFigures(o Options) []Figure {
	o.Prime()
	return []Figure{Figure1(o), Figure6(o), Figure7(o), Figure8(o)}
}

// SortedPs returns a copy of ps sorted ascending (helper for flag parsing).
func SortedPs(ps []int) []int {
	out := append([]int(nil), ps...)
	sort.Ints(out)
	return out
}
