package harness

import (
	"sync"
	"testing"
)

// TestConcurrentSweepsShareCache runs two full figure sweeps concurrently on
// one primed Options, the situation the job service's worker pool creates
// when two figure jobs share a memo cache. Run under -race (CI does) this
// pins the cache's mutex guarding; it also checks both sweeps agree.
func TestConcurrentSweepsShareCache(t *testing.T) {
	o := Quick()
	o.Prime()
	results := make([][]Figure, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = AllFigures(o)
		}(i)
	}
	wg.Wait()
	if len(results[0]) != len(results[1]) {
		t.Fatalf("sweeps produced %d vs %d figures", len(results[0]), len(results[1]))
	}
	for fi := range results[0] {
		a, b := results[0][fi], results[1][fi]
		for si := range a.Series {
			for vi := range a.Series[si].Values {
				va, vb := a.Series[si].Values[vi], b.Series[si].Values[vi]
				if va != vb && !(va != va && vb != vb) { // NaN == NaN here
					t.Fatalf("%s series %q p-index %d: %g vs %g",
						a.ID, a.Series[si].Name, vi, va, vb)
				}
			}
		}
	}
}
