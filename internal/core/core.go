// Package core is the entry point to the paper's primary contribution: the
// communication-avoiding algorithm for the dynamical core (Algorithm 2) and
// the baselines it is evaluated against. It re-exports the public surface of
// internal/dycore under the name the repository layout reserves for the
// core contribution; see internal/dycore for the implementation and
// DESIGN.md for the system inventory.
package core

import (
	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
)

// Re-exported types of the time-integration API.
type (
	// Config is the numerical configuration (M, Δt1, Δt2, β, filter cutoff,
	// ablation switches).
	Config = dycore.Config
	// Setup selects an algorithm and process grid.
	Setup = dycore.Setup
	// Algorithm enumerates the paper's execution strategies.
	Algorithm = dycore.Algorithm
	// Integrator is a running dynamical core on one rank.
	Integrator = dycore.Integrator
	// RunResult carries statistics and final states of a parallel run.
	RunResult = dycore.RunResult
	// InitFunc fills a rank's initial state.
	InitFunc = dycore.InitFunc
	// StepHook couples pointwise physics between steps.
	StepHook = dycore.StepHook
	// Counters reports the algorithm-level operation counts (exchange
	// rounds, z-collectives) the paper's claims are stated in.
	Counters = dycore.Counters
)

// Algorithm selectors.
const (
	// CommAvoiding is the paper's Algorithm 2.
	CommAvoiding = dycore.AlgCommAvoid
	// OriginalYZ is Algorithm 1 under the Y-Z decomposition.
	OriginalYZ = dycore.AlgBaselineYZ
	// OriginalXY is Algorithm 1 under the X-Y decomposition.
	OriginalXY = dycore.AlgBaselineXY
	// Original3D is Algorithm 1 on a full 3-D process grid.
	Original3D = dycore.AlgBaseline3D
)

// DefaultConfig returns the paper's configuration (M = 3).
func DefaultConfig() Config { return dycore.DefaultConfig() }

// Run executes steps of a setup on a fresh simulated world.
func Run(s Setup, g *grid.Grid, model comm.NetModel, init InitFunc, steps int) RunResult {
	return dycore.Run(s, g, model, init, steps)
}

// RunWithHook is Run with a per-step physics hook.
func RunWithHook(s Setup, g *grid.Grid, model comm.NetModel, init InitFunc, steps int, hook StepHook) RunResult {
	return dycore.RunWithHook(s, g, model, init, steps, hook)
}
