package core_test

import (
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/core"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
)

func TestFacadeRunsAlgorithm2(t *testing.T) {
	g := grid.New(32, 16, 6)
	cfg := core.DefaultConfig()
	cfg.Dt1, cfg.Dt2 = 30, 180
	res := core.Run(core.Setup{Alg: core.CommAvoiding, PA: 2, PB: 2, Cfg: cfg},
		g, comm.Zero(), heldsuarez.InitialState, 2)
	if !res.Finals[0].AllFinite() {
		t.Fatal("façade run unstable")
	}
	if got := (res.Count.HaloExchanges - 2) / 2; got != 2 {
		t.Errorf("exchange rounds per step = %d, want 2", got)
	}
}
