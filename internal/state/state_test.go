package state

import (
	"math"
	"math/rand"
	"testing"

	"cadycore/internal/field"
	"cadycore/internal/grid"
	"cadycore/internal/physics"
)

func testGrid() *grid.Grid { return grid.New(16, 10, 4) }

func testBlock(g *grid.Grid) field.Block {
	return field.Block{
		Nx: g.Nx, Ny: g.Ny, Nz: g.Nz,
		I0: 0, I1: g.Nx, J0: 0, J1: g.Ny, K0: 0, K1: g.Nz,
		Hx: 3, Hy: 2, Hz: 1,
	}
}

func TestNewZeroState(t *testing.T) {
	st := New(testBlock(testGrid()))
	if !st.AllFinite() {
		t.Fatal("fresh state not finite")
	}
	if field.SumOwned(st.U) != 0 {
		t.Fatal("fresh state not zero")
	}
}

func TestCloneIndependence(t *testing.T) {
	st := New(testBlock(testGrid()))
	st.U.Set(3, 3, 1, 7)
	cl := st.Clone()
	cl.U.Set(3, 3, 1, -7)
	if st.U.At(3, 3, 1) != 7 {
		t.Fatal("clone aliases the original")
	}
}

func TestLinearCombination(t *testing.T) {
	g := testGrid()
	b := testBlock(g)
	rng := rand.New(rand.NewSource(1))
	x, y := New(b), New(b)
	for i := range x.U.Data {
		x.U.Data[i] = rng.NormFloat64()
		y.U.Data[i] = rng.NormFloat64()
	}
	s := New(b)
	s.Lin2(2, x, 3, y)
	for i := range s.U.Data {
		if s.U.Data[i] != 2*x.U.Data[i]+3*y.U.Data[i] {
			t.Fatal("Lin2 wrong on U")
		}
	}
	m := New(b)
	m.Mean2(x, y)
	for i := range m.U.Data {
		if m.U.Data[i] != 0.5*(x.U.Data[i]+y.U.Data[i]) {
			t.Fatal("Mean2 wrong")
		}
	}
	// Axpy: s2 = x + 1·y == Lin2(1, x, 1, y).
	s2 := x.Clone()
	s2.Axpy(1, y)
	ref := New(b)
	ref.Lin2(1, x, 1, y)
	if s2.MaxAbsDiff(ref) != 0 {
		t.Fatal("Axpy differs from Lin2")
	}
}

func TestLin2RectRestricted(t *testing.T) {
	g := testGrid()
	b := testBlock(g)
	x, y := New(b), New(b)
	for i := range x.U.Data {
		x.U.Data[i] = 1
		y.U.Data[i] = 2
	}
	s := New(b)
	r := field.Rect{I0: 0, I1: g.Nx, J0: 2, J1: 5, K0: 1, K1: 3}
	s.Lin2Rect(1, x, 1, y, r)
	if s.U.At(0, 3, 2) != 3 {
		t.Error("inside rect not updated")
	}
	if s.U.At(0, 6, 2) != 0 {
		t.Error("outside rect was touched")
	}
}

func TestInitFromPhysicalRoundTrip(t *testing.T) {
	g := testGrid()
	st := New(testBlock(g))
	st.InitFromPhysical(g,
		func(lam, th, sig float64) float64 { return 10 },
		func(lam, th, sig float64) float64 { return 0 },
		func(lam, th, sig float64) float64 { return 280 },
		func(lam, th float64) float64 { return 100000 },
	)
	// Psa must be ps − p̃s = 0.
	if st.Psa.At(3, 4) != 0 {
		t.Errorf("psa = %v, want 0", st.Psa.At(3, 4))
	}
	// U = P·u with P ≈ 0.9989.
	p := physics.PFromPs(100000)
	if math.Abs(st.U.At(3, 4, 2)-10*p) > 1e-12 {
		t.Errorf("U = %v, want %v", st.U.At(3, 4, 2), 10*p)
	}
	// Temperature roundtrip through Φ.
	tTil := physics.StandardTemperature(g.Sigma[2])
	back := physics.TemperatureFromPhi(st.Phi.At(3, 4, 2), p, tTil)
	if math.Abs(back-280) > 1e-9 {
		t.Errorf("T roundtrip = %v, want 280", back)
	}
	// V at the pole row stays zero.
	if st.V.At(3, 0, 2) != 0 {
		t.Errorf("V at pole = %v", st.V.At(3, 0, 2))
	}
}

func TestFillLocalBounds(t *testing.T) {
	g := testGrid()
	st := New(testBlock(g))
	st.InitFromPhysical(g,
		func(lam, th, sig float64) float64 { return 5 * math.Sin(th) },
		func(lam, th, sig float64) float64 { return math.Sin(th) },
		func(lam, th, sig float64) float64 { return 270 },
		func(lam, th float64) float64 { return 100000 + 100*math.Cos(lam) },
	)
	st.FillLocalBounds()
	// Periodic x.
	if st.U.At(-1, 3, 1) != st.U.At(g.Nx-1, 3, 1) {
		t.Error("x periodicity broken for U")
	}
	if st.Psa.At(g.Nx, 3) != st.Psa.At(0, 3) {
		t.Error("x periodicity broken for Psa")
	}
	// Pole mirrors: U odd, Phi even.
	if st.U.At(2, -1, 1) != -st.U.At(2, 0, 1) {
		t.Error("U pole mirror not odd")
	}
	if st.Phi.At(2, -1, 1) != st.Phi.At(2, 0, 1) {
		t.Error("Phi pole mirror not even")
	}
	// Vertical mirrors.
	if st.Phi.At(2, 3, -1) != st.Phi.At(2, 3, 0) {
		t.Error("Phi vertical mirror broken")
	}
	// V pole row zeroed.
	if st.V.At(2, 0, 1) != 0 {
		t.Error("V pole row not zero after fill")
	}
}

func TestMaxAbsDiffAndFinite(t *testing.T) {
	g := testGrid()
	b := testBlock(g)
	a, c := New(b), New(b)
	if a.MaxAbsDiff(c) != 0 {
		t.Fatal("identical states differ")
	}
	c.Phi.Set(4, 4, 2, 3)
	if d := a.MaxAbsDiff(c); d != 3 {
		t.Fatalf("MaxAbsDiff = %v, want 3", d)
	}
	c.Psa.Set(1, 1, math.Inf(1))
	if c.AllFinite() {
		t.Fatal("Inf not detected")
	}
}
