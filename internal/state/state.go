// Package state defines the prognostic vector of the dynamical core,
// ξ = (U, V, Φ, p'_sa) (paper eq. 1), on one rank's block, together with the
// linear-combination and boundary-fill helpers the time integration uses.
//
// U, V and Φ are 3-D (longitude × latitude × σ); p'_sa is the 2-D surface
// pressure deviation. Under decompositions with p_z > 1 every rank of a z
// column carries a full replica of p'_sa for its horizontal footprint, which
// all ranks update identically from the shared result of the vertical
// summation collective — the arrangement the original MPI code uses.
package state

import (
	"math"

	"cadycore/internal/field"
	"cadycore/internal/grid"
	"cadycore/internal/physics"
)

// State is ξ on one rank's block.
type State struct {
	B   field.Block
	U   *field.F3 // P·u at west faces (λ_{i−1/2}, θ_j)
	V   *field.F3 // P·v at latitude interfaces (λ_i, θ interfaces); row 0 = north pole
	Phi *field.F3 // P·R·(T − T̃)/b at centers
	Psa *field.F2 // p_s − p̃_s at centers

	// ShiftedPoles selects the exact spherical pole mirror (values taken
	// from the antipodal meridian; requires full longitude circles per
	// rank). The default unshifted mirror is kept for comparability with
	// decompositions that split x. See DESIGN.md §2.
	ShiftedPoles bool
}

// New allocates a zero state on the block.
func New(b field.Block) *State {
	return &State{
		B:   b,
		U:   field.NewF3(b),
		V:   field.NewF3(b),
		Phi: field.NewF3(b),
		Psa: field.NewF2(b),
	}
}

// Clone returns a deep copy.
func (s *State) Clone() *State {
	return &State{B: s.B, U: s.U.Clone(), V: s.V.Clone(), Phi: s.Phi.Clone(),
		Psa: s.Psa.Clone(), ShiftedPoles: s.ShiftedPoles}
}

// CopyFrom sets s ← o.
func (s *State) CopyFrom(o *State) {
	field.Copy(s.U, o.U)
	field.Copy(s.V, o.V)
	field.Copy(s.Phi, o.Phi)
	field.Copy2(s.Psa, o.Psa)
}

// Axpy sets s ← s + c·o componentwise.
func (s *State) Axpy(c float64, o *State) {
	field.Axpy(s.U, c, o.U)
	field.Axpy(s.V, c, o.V)
	field.Axpy(s.Phi, c, o.Phi)
	field.Axpy2(s.Psa, c, o.Psa)
}

// Lin2 sets s ← a·x + b·y componentwise.
func (s *State) Lin2(a float64, x *State, b float64, y *State) {
	field.Lin2(s.U, a, x.U, b, y.U)
	field.Lin2(s.V, a, x.V, b, y.V)
	field.Lin2(s.Phi, a, x.Phi, b, y.Phi)
	field.Lin22(s.Psa, a, x.Psa, b, y.Psa)
}

// Mean2 sets s ← (x + y)/2, the midpoint state of the third internal update.
func (s *State) Mean2(x, y *State) { s.Lin2(0.5, x, 0.5, y) }

// Lin2Rect sets s ← a·x + b·y over rect r only.
func (s *State) Lin2Rect(a float64, x *State, b float64, y *State, r field.Rect) {
	field.Lin2Rect(s.U, a, x.U, b, y.U, r)
	field.Lin2Rect(s.V, a, x.V, b, y.V, r)
	field.Lin2Rect(s.Phi, a, x.Phi, b, y.Phi, r)
	field.Lin2Rect2(s.Psa, a, x.Psa, b, y.Psa, r)
}

// Mean2Rect sets s ← (x + y)/2 over rect r only.
func (s *State) Mean2Rect(x, y *State, r field.Rect) { s.Lin2Rect(0.5, x, 0.5, y, r) }

// F3s returns the 3-D components in canonical order (U, V, Φ) — the order
// halo-exchange messages use.
func (s *State) F3s() []*field.F3 { return []*field.F3{s.U, s.V, s.Phi} }

// F2s returns the 2-D components (p'_sa).
func (s *State) F2s() []*field.F2 { return []*field.F2{s.Psa} }

// FillLocalBounds refreshes every locally computable boundary cell:
// periodic x halos (when the block owns full circles), vertical mirrors and
// pole mirrors. Call after a halo exchange, and again after every local
// update that touched the boundary-adjacent rows.
func (s *State) FillLocalBounds() {
	if s.B.OwnsFullX() && s.B.Hx > 0 {
		s.U.FillXPeriodic()
		s.V.FillXPeriodic()
		s.Phi.FillXPeriodic()
		s.Psa.FillXPeriodic()
	}
	field.FillVerticalZ(s.U)
	field.FillVerticalZ(s.V)
	field.FillVerticalZ(s.Phi)
	if s.ShiftedPoles {
		field.FillPolesYShifted(s.U, field.Odd, field.CenterY)
		field.FillPolesYShifted(s.V, field.Odd, field.FaceY)
		field.FillPolesYShifted(s.Phi, field.Even, field.CenterY)
		field.FillPolesY2Shifted(s.Psa, field.Even)
		return
	}
	field.FillPolesY(s.U, field.Odd, field.CenterY)
	field.FillPolesY(s.V, field.Odd, field.FaceY)
	field.FillPolesY(s.Phi, field.Even, field.CenterY)
	field.FillPolesY2(s.Psa, field.Even)
}

// MaxAbsDiff returns the largest componentwise difference over owned points
// — the metric the decomposition-equivalence tests compare with.
func (s *State) MaxAbsDiff(o *State) float64 {
	d := field.MaxAbsDiffOwned(s.U, o.U)
	if v := field.MaxAbsDiffOwned(s.V, o.V); v > d {
		d = v
	}
	if v := field.MaxAbsDiffOwned(s.Phi, o.Phi); v > d {
		d = v
	}
	if v := field.MaxAbsDiffOwned2(s.Psa, o.Psa); v > d {
		d = v
	}
	return d
}

// AllFinite reports whether every owned value of every component is finite.
func (s *State) AllFinite() bool {
	return field.AllFiniteOwned(s.U) && field.AllFiniteOwned(s.V) &&
		field.AllFiniteOwned(s.Phi) && allFinite2(s.Psa)
}

func allFinite2(f *field.F2) bool {
	r := f.B.Owned()
	for j := r.J0; j < r.J1; j++ {
		for i := r.I0; i < r.I1; i++ {
			v := f.At(i, j)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
	}
	return true
}

// InitFromPhysical fills the owned region (and nothing else — call
// FillLocalBounds plus a halo exchange afterwards) from physical profiles:
// uFn, vFn give winds (m/s), tFn temperature (K) and psFn surface pressure
// (Pa), each as functions of (λ, θ center/interface as appropriate, σ).
func (s *State) InitFromPhysical(g *grid.Grid,
	uFn, vFn func(lam, theta, sigma float64) float64,
	tFn func(lam, theta, sigma float64) float64,
	psFn func(lam, theta float64) float64,
) {
	b := s.B
	for j := b.J0; j < b.J1; j++ {
		thC := g.ThetaC[j]
		for i := b.I0; i < b.I1; i++ {
			lam := g.Lambda[i]
			ps := psFn(lam, thC)
			s.Psa.Set(i, j, ps-physics.StandardSurfacePressure)
		}
	}
	for k := b.K0; k < b.K1; k++ {
		sig := g.Sigma[k]
		for j := b.J0; j < b.J1; j++ {
			thC := g.ThetaC[j]
			for i := b.I0; i < b.I1; i++ {
				lam := g.Lambda[i]
				lamU := lam - 0.5*g.DLambda // U point longitude
				psU := 0.5 * (psFn(lamU, thC) + psFn(lamU, thC))
				pU := physics.PFromPs(psU)
				s.U.Set(i, j, k, pU*uFn(lamU, thC, sig))

				ps := psFn(lam, thC)
				p := physics.PFromPs(ps)
				tTil := physics.StandardTemperature(sig)
				s.Phi.Set(i, j, k, physics.PhiFromTemperature(tFn(lam, thC, sig), p, tTil))
			}
		}
		// V rows: interfaces owned by this block (skip the poles).
		for j := b.J0; j < b.J1; j++ {
			if j == 0 {
				continue // north pole: V ≡ 0
			}
			thI := g.ThetaI[j]
			for i := b.I0; i < b.I1; i++ {
				lam := g.Lambda[i]
				psV := psFn(lam, thI)
				pV := physics.PFromPs(psV)
				s.V.Set(i, j, k, pV*vFn(lam, thI, sig))
			}
		}
	}
}
