package diag

import (
	"math"
	"testing"

	"cadycore/internal/field"
	"cadycore/internal/grid"
	"cadycore/internal/physics"
	"cadycore/internal/state"
)

func testGrid() *grid.Grid { return grid.New(32, 16, 6) }

func serialState(g *grid.Grid) *state.State {
	b := field.Block{
		Nx: g.Nx, Ny: g.Ny, Nz: g.Nz,
		I0: 0, I1: g.Nx, J0: 0, J1: g.Ny, K0: 0, K1: g.Nz,
		Hx: 3, Hy: 2, Hz: 1,
	}
	return state.New(b)
}

func TestGlobalDryMassOfStandardAtmosphere(t *testing.T) {
	g := testGrid()
	st := serialState(g) // psa = 0 ⇒ ps = 1000 hPa everywhere
	mass := GlobalDryMass(g, []*state.State{st})
	// Earth's atmosphere: ≈ 5.3·10¹⁸ kg (ps·4πa²/g).
	want := physics.P0 * g.TotalArea() / physics.Gravity
	if math.Abs(mass-want) > 1e-6*want {
		t.Errorf("dry mass %v, want %v", mass, want)
	}
	if mass < 5.0e18 || mass > 5.4e18 {
		t.Errorf("dry mass %v kg not Earth-like", mass)
	}
}

func TestReplicatedSurfaceNotDoubleCounted(t *testing.T) {
	// Two z-blocks replicate psa; global surface diagnostics must count
	// each column once.
	g := testGrid()
	full := serialState(g)
	bTop := full.B
	bTop.K0, bTop.K1 = 0, 3
	bBot := full.B
	bBot.K0, bBot.K1 = 3, 6
	split := []*state.State{state.New(bTop), state.New(bBot)}
	one := GlobalDryMass(g, []*state.State{full})
	two := GlobalDryMass(g, split)
	if math.Abs(one-two) > 1e-6*one {
		t.Errorf("z-replicated mass double counted: %v vs %v", one, two)
	}
}

func TestMeanSurfacePressure(t *testing.T) {
	g := testGrid()
	st := serialState(g)
	for j := 0; j < g.Ny; j++ {
		for i := 0; i < g.Nx; i++ {
			st.Psa.Set(i, j, 250)
		}
	}
	if ps := MeanSurfacePressure(g, []*state.State{st}); math.Abs(ps-100250) > 1e-9 {
		t.Errorf("mean ps = %v, want 100250", ps)
	}
}

func TestEnergiesPositiveAndAdditive(t *testing.T) {
	g := testGrid()
	st := serialState(g)
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				st.U.Set(i, j, k, 3)
				st.Phi.Set(i, j, k, 2)
			}
		}
	}
	ke := KineticEnergy(g, []*state.State{st})
	ae := AvailableEnergy(g, []*state.State{st})
	if ke <= 0 || ae <= 0 {
		t.Fatalf("energies not positive: %v %v", ke, ae)
	}
	if tot := TotalEnergy(g, []*state.State{st}); math.Abs(tot-(ke+ae)) > 1e-6 {
		t.Errorf("total energy %v != %v + %v", tot, ke, ae)
	}
	// KE scales quadratically with wind.
	st2 := serialState(g)
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				st2.U.Set(i, j, k, 6)
			}
		}
	}
	ke2 := KineticEnergy(g, []*state.State{st2})
	st3 := serialState(g)
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				st3.U.Set(i, j, k, 3)
			}
		}
	}
	ke3 := KineticEnergy(g, []*state.State{st3})
	if math.Abs(ke2-4*ke3) > 1e-6*ke2 {
		t.Errorf("KE not quadratic: %v vs 4·%v", ke2, ke3)
	}
}

func TestZonalMeans(t *testing.T) {
	g := testGrid()
	st := serialState(g)
	p := physics.PFromPs(physics.P0)
	// u = 10 m/s at row 4, level 2 only.
	for i := 0; i < g.Nx; i++ {
		st.U.Set(i, 4, 2, 10*p)
	}
	ub := ZonalMeanU(g, []*state.State{st})
	if math.Abs(ub[2][4]-10) > 1e-9 {
		t.Errorf("zonal mean u = %v, want 10", ub[2][4])
	}
	if ub[2][5] != 0 || ub[3][4] != 0 {
		t.Error("zonal mean leaked to other rows/levels")
	}
	// Temperature of the zero state is T̃(σ).
	tb := ZonalMeanT(g, []*state.State{st})
	want := physics.StandardTemperature(g.Sigma[1])
	if math.Abs(tb[1][3]-want) > 1e-9 {
		t.Errorf("zonal mean T = %v, want %v", tb[1][3], want)
	}
}

func TestMaxWind(t *testing.T) {
	g := testGrid()
	st := serialState(g)
	p := physics.PFromPs(physics.P0)
	st.U.Set(5, 5, 2, -25*p)
	st.V.Set(6, 6, 3, 12*p)
	if mw := MaxWind(g, []*state.State{st}); math.Abs(mw-25) > 1e-9 {
		t.Errorf("max wind = %v, want 25", mw)
	}
}

func TestAllFinite(t *testing.T) {
	g := testGrid()
	st := serialState(g)
	if !AllFinite([]*state.State{st}) {
		t.Fatal("zero state reported non-finite")
	}
	st.Phi.Set(3, 3, 3, math.NaN())
	if AllFinite([]*state.State{st}) {
		t.Fatal("NaN not detected")
	}
}

func TestZonalSpectrumIdentifiesWave(t *testing.T) {
	g := testGrid()
	st := serialState(g)
	const m0 = 5
	for i := 0; i < g.Nx; i++ {
		st.U.Set(i, 4, 2, 3*math.Cos(2*math.Pi*float64(m0*i)/float64(g.Nx)))
	}
	spec := ZonalSpectrum(g, []*state.State{st}, 4, 2)
	if spec == nil {
		t.Fatal("no spectrum")
	}
	// All energy in bin m0: amplitude 3 → folded energy 2·(3/2)² = 4.5.
	if math.Abs(spec[m0]-4.5) > 1e-9 {
		t.Errorf("spec[%d] = %v, want 4.5", m0, spec[m0])
	}
	for m := range spec {
		if m != m0 && spec[m] > 1e-12 {
			t.Errorf("leakage at m=%d: %v", m, spec[m])
		}
	}
	if tail := SpectrumTail(spec, m0); tail > 1e-12 {
		t.Errorf("tail above m0 = %v", tail)
	}
	if tail := SpectrumTail(spec, m0-1); math.Abs(tail-4.5) > 1e-9 {
		t.Errorf("tail including m0 = %v", tail)
	}
}
