package diag

import (
	"math/cmplx"

	"cadycore/internal/fft"
	"cadycore/internal/grid"
	"cadycore/internal/state"
)

// ZonalSpectrum returns the zonal kinetic-energy-like spectrum of the
// transformed zonal wind at latitude row j and level k: E[m] is the squared
// spectral amplitude of zonal wavenumber m (0 ≤ m ≤ Nx/2), averaged over
// the rank states holding that row. It is the quantity the Fourier polar
// filter truncates, so a filtered row's spectrum must be empty above the
// cutoff — the property TestFilterTruncatesSpectrum verifies.
func ZonalSpectrum(g *grid.Grid, sts []*state.State, j, k int) []float64 {
	row := make([]float64, g.Nx)
	found := false
	for _, st := range sts {
		b := st.B
		if j < b.J0 || j >= b.J1 || k < b.K0 || k >= b.K1 {
			continue
		}
		for i := b.I0; i < b.I1; i++ {
			row[i] = st.U.At(i, j, k)
		}
		if b.I0 == 0 && b.I1 == g.Nx {
			found = true
		} else {
			found = true // partial rows accumulate across ranks
		}
	}
	if !found {
		return nil
	}
	plan := fft.NewPlan(g.Nx)
	coef := plan.ForwardReal(row, nil)
	half := g.Nx / 2
	out := make([]float64, half+1)
	for m := 0; m <= half; m++ {
		a := cmplx.Abs(coef[m]) / float64(g.Nx)
		e := a * a
		if m != 0 && m != half {
			e *= 2 // fold the conjugate half
		}
		out[m] = e
	}
	return out
}

// SpectrumTail returns the summed spectral energy above wavenumber mCut.
func SpectrumTail(spec []float64, mCut int) float64 {
	t := 0.0
	for m := mCut + 1; m < len(spec); m++ {
		t += spec[m]
	}
	return t
}
