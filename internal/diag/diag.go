// Package diag computes physical diagnostics of the model state: global
// invariants (dry mass, energy), zonal-mean climatological fields (the
// quantities Held–Suarez experiments report), and stability checks. The
// functions operate on the gathered per-rank states of a run (each rank
// contributes its owned region exactly once, so sums are decomposition
// independent up to floating-point reordering).
package diag

import (
	"math"

	"cadycore/internal/grid"
	"cadycore/internal/physics"
	"cadycore/internal/state"
)

// GlobalDryMass returns Σ_ij area_ij · p_s(i,j) / g — the total dry air mass
// (kg). The dynamical core conserves it up to the surface-pressure
// diffusion and smoothing terms. Surface fields are replicated across
// z-ranks, so only the blocks at the model top (K0 = 0) contribute.
func GlobalDryMass(g *grid.Grid, sts []*state.State) float64 {
	sum := 0.0
	for _, st := range sts {
		b := st.B
		if b.K0 != 0 {
			continue
		}
		for j := b.J0; j < b.J1; j++ {
			w := g.CellArea(j)
			for i := b.I0; i < b.I1; i++ {
				ps := physics.StandardSurfacePressure + st.Psa.At(i, j)
				sum += w * ps
			}
		}
	}
	return sum / physics.Gravity
}

// MeanSurfacePressure returns the area-weighted global mean surface
// pressure (Pa).
func MeanSurfacePressure(g *grid.Grid, sts []*state.State) float64 {
	sum, area := 0.0, 0.0
	for _, st := range sts {
		b := st.B
		if b.K0 != 0 {
			continue
		}
		for j := b.J0; j < b.J1; j++ {
			w := g.CellArea(j)
			for i := b.I0; i < b.I1; i++ {
				sum += w * (physics.StandardSurfacePressure + st.Psa.At(i, j))
				area += w
			}
		}
	}
	return sum / area
}

// KineticEnergy returns the total kinetic energy ½∫(U² + V²) dm-like
// integral in the transformed variables (J-like units). Under the tensor
// transform the conserved quadratic form is the plain sum of squares of the
// transformed fields weighted by volume, which is why the transform is used.
func KineticEnergy(g *grid.Grid, sts []*state.State) float64 {
	sum := 0.0
	for _, st := range sts {
		b := st.B
		for k := b.K0; k < b.K1; k++ {
			ds := g.DSigma[k]
			for j := b.J0; j < b.J1; j++ {
				w := g.CellArea(j) * ds
				for i := b.I0; i < b.I1; i++ {
					u := st.U.At(i, j, k)
					v := st.V.At(i, j, k)
					sum += 0.5 * w * (u*u + v*v)
				}
			}
		}
	}
	return sum
}

// AvailableEnergy returns the quadratic "available potential + surface"
// energy of the transformed system, Σ (Φ² + b²·(p'_sa/p0)²-weighted) — the
// companion of KineticEnergy in the conservation statement of the IAP
// transform.
func AvailableEnergy(g *grid.Grid, sts []*state.State) float64 {
	sum := 0.0
	for _, st := range sts {
		b := st.B
		for k := b.K0; k < b.K1; k++ {
			ds := g.DSigma[k]
			for j := b.J0; j < b.J1; j++ {
				w := g.CellArea(j) * ds
				for i := b.I0; i < b.I1; i++ {
					p := st.Phi.At(i, j, k)
					sum += 0.5 * w * p * p
				}
			}
		}
		if b.K0 != 0 {
			continue // surface term: count each replicated column once
		}
		for j := b.J0; j < b.J1; j++ {
			w := g.CellArea(j)
			for i := b.I0; i < b.I1; i++ {
				ph := physics.B * st.Psa.At(i, j) / physics.P0
				sum += 0.5 * w * ph * ph
			}
		}
	}
	return sum
}

// TotalEnergy is KineticEnergy + AvailableEnergy — the quantity the
// latitude–longitude finite-difference core is prized for conserving.
func TotalEnergy(g *grid.Grid, sts []*state.State) float64 {
	return KineticEnergy(g, sts) + AvailableEnergy(g, sts)
}

// ZonalMeanU returns the zonal-mean physical zonal wind ū[k][j] (m/s).
func ZonalMeanU(g *grid.Grid, sts []*state.State) [][]float64 {
	out := alloc2(g.Nz, g.Ny)
	cnt := alloc2(g.Nz, g.Ny)
	for _, st := range sts {
		b := st.B
		for k := b.K0; k < b.K1; k++ {
			for j := b.J0; j < b.J1; j++ {
				for i := b.I0; i < b.I1; i++ {
					ps := physics.StandardSurfacePressure + st.Psa.At(i, j)
					p := physics.PFromPs(ps)
					if p > 0 {
						out[k][j] += st.U.At(i, j, k) / p
						cnt[k][j]++
					}
				}
			}
		}
	}
	normalize(out, cnt)
	return out
}

// ZonalMeanT returns the zonal-mean temperature T̄[k][j] (K).
func ZonalMeanT(g *grid.Grid, sts []*state.State) [][]float64 {
	out := alloc2(g.Nz, g.Ny)
	cnt := alloc2(g.Nz, g.Ny)
	for _, st := range sts {
		b := st.B
		for k := b.K0; k < b.K1; k++ {
			tTil := physics.StandardTemperature(g.Sigma[k])
			for j := b.J0; j < b.J1; j++ {
				for i := b.I0; i < b.I1; i++ {
					ps := physics.StandardSurfacePressure + st.Psa.At(i, j)
					p := physics.PFromPs(ps)
					if p > 0 {
						out[k][j] += physics.TemperatureFromPhi(st.Phi.At(i, j, k), p, tTil)
						cnt[k][j]++
					}
				}
			}
		}
	}
	normalize(out, cnt)
	return out
}

// MaxWind returns the largest physical wind speed component (m/s) — the CFL
// monitor of long runs.
func MaxWind(g *grid.Grid, sts []*state.State) float64 {
	m := 0.0
	for _, st := range sts {
		b := st.B
		for k := b.K0; k < b.K1; k++ {
			for j := b.J0; j < b.J1; j++ {
				for i := b.I0; i < b.I1; i++ {
					ps := physics.StandardSurfacePressure + st.Psa.At(i, j)
					p := physics.PFromPs(ps)
					if p <= 0 {
						continue
					}
					if v := math.Abs(st.U.At(i, j, k)) / p; v > m {
						m = v
					}
					if v := math.Abs(st.V.At(i, j, k)) / p; v > m {
						m = v
					}
				}
			}
		}
	}
	return m
}

// AllFinite reports whether every gathered state is finite.
func AllFinite(sts []*state.State) bool {
	for _, st := range sts {
		if !st.AllFinite() {
			return false
		}
	}
	return true
}

func alloc2(nz, ny int) [][]float64 {
	out := make([][]float64, nz)
	for k := range out {
		out[k] = make([]float64, ny)
	}
	return out
}

func normalize(out, cnt [][]float64) {
	for k := range out {
		for j := range out[k] {
			if cnt[k][j] > 0 {
				out[k][j] /= cnt[k][j]
			}
		}
	}
}
