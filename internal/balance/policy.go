// Package balance is the live load-rebalancing runtime: it watches per-rank
// compute telemetry at the step-boundary barrier, detects sustained
// imbalance (a straggler rank, a drifting partition), re-plans the
// decomposition by feeding measured per-rank slowdowns into the §5.3 cost
// model (internal/tune), and — when the predicted win clears a modeled
// migration cost — quiesces the run at a step boundary and restarts it in
// the new layout through the cross-decomposition checkpoint path. The
// controller is deliberately layout-generic: it reasons in tune.Candidate
// space, so any scheme the planner can enumerate can be migrated to.
package balance

import "fmt"

// Policy tunes the rebalancing controller. The zero value of every field
// means "default"; Validate rejects out-of-range values, withDefaults fills
// the documented defaults.
type Policy struct {
	// Window is the telemetry window in steps: per-rank compute deltas are
	// accumulated over Window steps before each imbalance evaluation
	// (default 4).
	Window int `json:"window,omitempty"`
	// Threshold is the max/min per-rank compute ratio above which a window
	// counts as imbalanced (default 1.5; must be > 1). The default leaves
	// headroom over the ~1.2 ratio the polar-filter skew produces on a
	// uniform partition, so only unmodeled imbalance trips it.
	Threshold float64 `json:"threshold,omitempty"`
	// Patience is how many consecutive imbalanced windows must be observed
	// before re-planning (default 2) — the hysteresis that keeps jitter from
	// thrashing.
	Patience int `json:"patience,omitempty"`
	// Cooldown is how many windows to ignore after a migration or a
	// rejected re-plan before watching again (default 2).
	Cooldown int `json:"cooldown,omitempty"`
	// Smoothing is the EWMA coefficient applied to window telemetry
	// (default 0.5; 1 uses only the latest window). Must be in (0, 1].
	Smoothing float64 `json:"smoothing,omitempty"`
	// MinGain scales the migration-cost gate: a re-plan is accepted only
	// when predicted saving over the remaining steps exceeds MinGain times
	// the modeled migration cost (default 1).
	MinGain float64 `json:"min_gain,omitempty"`
	// MaxMigrations bounds the migrations of one job (default 4).
	MaxMigrations int `json:"max_migrations,omitempty"`
}

// Validate rejects policies no controller could run. Zero values are
// defaults and always valid.
func (p Policy) Validate() error {
	if p.Window < 0 {
		return fmt.Errorf("balance: window = %d must be >= 0", p.Window)
	}
	if p.Threshold < 0 {
		return fmt.Errorf("balance: threshold = %g must be >= 0", p.Threshold)
	}
	if p.Threshold > 0 && p.Threshold <= 1 {
		return fmt.Errorf("balance: threshold = %g must be > 1 (it is a max/min compute ratio)", p.Threshold)
	}
	if p.Patience < 0 {
		return fmt.Errorf("balance: patience = %d must be >= 0", p.Patience)
	}
	if p.Cooldown < 0 {
		return fmt.Errorf("balance: cooldown = %d must be >= 0", p.Cooldown)
	}
	if p.Smoothing < 0 || p.Smoothing > 1 {
		return fmt.Errorf("balance: smoothing = %g outside [0, 1]", p.Smoothing)
	}
	if p.MinGain < 0 {
		return fmt.Errorf("balance: min_gain = %g must be >= 0", p.MinGain)
	}
	if p.MaxMigrations < 0 {
		return fmt.Errorf("balance: max_migrations = %d must be >= 0", p.MaxMigrations)
	}
	return nil
}

// withDefaults returns the policy with zero fields replaced by defaults.
func (p Policy) withDefaults() Policy {
	if p.Window == 0 {
		p.Window = 4
	}
	if p.Threshold == 0 {
		p.Threshold = 1.5
	}
	if p.Patience == 0 {
		p.Patience = 2
	}
	if p.Cooldown == 0 {
		p.Cooldown = 2
	}
	if p.Smoothing == 0 {
		p.Smoothing = 0.5
	}
	if p.MinGain == 0 {
		p.MinGain = 1
	}
	if p.MaxMigrations == 0 {
		p.MaxMigrations = 4
	}
	return p
}
