package balance

import (
	"fmt"

	"cadycore/internal/checkpoint"
	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/fault"
	"cadycore/internal/grid"
	"cadycore/internal/state"
	"cadycore/internal/tune"
)

// Outcome is the result of a rebalanced run: the merged statistics of every
// segment, the final states under the final layout, and the migration log.
type Outcome struct {
	// Agg is the merged communication aggregate over all segments (costs
	// summed, per-rank series summed when the rank count was stable).
	Agg comm.Aggregate
	// Count sums the operation counters over all segments.
	Count dycore.Counters
	// Finals are the per-rank final states under Setup's layout.
	Finals []*state.State
	// StepsDone is the total completed steps over all segments.
	StepsDone int
	// SimTime is the end-to-end simulated seconds: per-segment critical-path
	// time plus the modeled cost of every migration.
	SimTime float64
	// Migrations is the controller's executed-migration log.
	Migrations []Migration
	// Setup is the layout the run finished in.
	Setup dycore.Setup
}

// Run drives a run of `steps` steps under the controller's supervision: it
// executes segments in the controller's current layout, and whenever the
// controller quiesces the run mid-flight it restores the stop snapshot into
// the re-planned decomposition and continues. An optional fault injector
// supplies stragglers and crashes; crashed segments restart from the latest
// snapshot, up to maxRestarts times.
func Run(ctl *Controller, g *grid.Grid, model comm.NetModel, init dycore.InitFunc,
	steps int, hook dycore.StepHook, inj *fault.Injector, maxRestarts int) (Outcome, error) {
	var out Outcome
	var (
		segBase   int
		segInit   = init
		segResume bool
		restarts  int
		lastSnap  *checkpoint.Global
		lastStep  int
	)
	for {
		set := ctl.Setup()
		remaining := steps - segBase
		var snap *checkpoint.Global
		snapStep := -1
		opts := dycore.RunOpts{
			Hook:      hook,
			Resume:    segResume,
			Rebalance: ctl.Hook(segBase),
			Snapshot: func(done int, sts []*state.State) {
				snap = checkpoint.Gather(g, sts)
				snapStep = segBase + done
			},
		}
		if inj != nil {
			opts.Faults = inj.CommFaults(set.Procs())
			opts.CrashAt = inj.CrashFunc(segBase)
		}
		res, _ := dycore.RunWithOpts(set, g, model, segInit, remaining, opts)

		out.Agg = comm.MergeAggregate(out.Agg, res.Agg)
		out.SimTime += res.Agg.SimTime
		addCounters(&out.Count, res.Count)

		if res.Abort != nil {
			// Injected crash: restart the segment from the latest snapshot
			// (or from scratch when none was taken yet).
			if restarts >= maxRestarts {
				return out, fmt.Errorf("balance: restart budget (%d) exhausted after %v", maxRestarts, res.Abort)
			}
			restarts++
			if snap == nil {
				snap, snapStep = lastSnap, lastStep
			}
			if snap != nil {
				segBase = snapStep
				segInit = snap.InitFunc()
				segResume = true
				lastSnap, lastStep = snap, snapStep
			}
			continue
		}

		done := segBase + res.StepsDone
		if done >= steps {
			out.Finals = res.Finals
			out.StepsDone = done
			out.Migrations = ctl.Migrations()
			out.Setup = set
			return out, nil
		}

		// Early stop: the only stopper we installed is the rebalance hook,
		// so a staged re-plan must be waiting and the stop snapshot must
		// cover exactly this boundary.
		plan, _ := ctl.TakePending()
		if plan == nil {
			return out, fmt.Errorf("balance: run stopped at step %d with no pending re-plan", done)
		}
		if snap == nil || snapStep != done {
			return out, fmt.Errorf("balance: no quiesce snapshot at migration boundary %d", done)
		}
		out.SimTime += tune.MigrationCost(g, set.Procs(), ctl.Profile())
		lastSnap, lastStep = snap, snapStep
		segBase = done
		segInit = snap.InitFunc()
		segResume = true
	}
}

// addCounters accumulates b into a.
func addCounters(a *dycore.Counters, b dycore.Counters) {
	a.Steps += b.Steps
	a.HaloExchanges += b.HaloExchanges
	a.CEvaluations += b.CEvaluations
	a.FilterCalls += b.FilterCalls
	a.SmoothingCalls += b.SmoothingCalls
}
