package balance

import (
	"testing"

	"cadycore/internal/checkpoint"
	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/fault"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/tune"
)

// soakPolicy reacts within one window so the soak tests stay fast; the
// defaults (window 4, patience 2) are tuned for long production runs.
func soakPolicy() Policy {
	return Policy{Window: 4, Patience: 1, Cooldown: 1}
}

func stragglerPlan(scale float64) fault.Plan {
	return fault.Plan{Seed: 1, Stragglers: []fault.Straggler{{Rank: 3, Scale: scale}}}
}

// TestRebalanceUnderStragglerYZ is the headline soak: a rank slowed 10x by
// fault injection, a rebalancing run that must (a) actually migrate, (b)
// beat the static layout's simulated wall-clock by >= 15% including the
// modeled migration cost, and (c) finish in a state bitwise identical to an
// unperturbed static reference — a straggler changes timing, never numerics,
// and the YZ scheme is decomposition-independent. The 10x scale puts the
// step firmly in the compute-dominated regime: a milder straggler's extra
// compute mostly hides message flight time behind itself (the overlap
// engine), so there is little for a repartition to win back.
func TestRebalanceUnderStragglerYZ(t *testing.T) {
	g := grid.New(48, 24, 8)
	cfg := dycore.DefaultConfig()
	cfg.M = 2
	const steps = 24
	set := dycore.Setup{Alg: dycore.AlgBaselineYZ, PA: 4, PB: 1, Cfg: cfg}
	model := comm.TianheLike()

	ref := dycore.Run(set, g, model, heldsuarez.InitialState, steps)

	// Static run under the straggler: same numerics, inflated clock.
	static, _ := dycore.RunWithOpts(set, g, model, heldsuarez.InitialState, steps, dycore.RunOpts{
		Faults: fault.New(stragglerPlan(10)).CommFaults(set.Procs()),
	})
	refGl := checkpoint.Gather(g, ref.Finals)
	if !refGl.Equal(checkpoint.Gather(g, static.Finals)) {
		t.Fatalf("straggler changed the numerics of the static run")
	}
	if static.Agg.SimTime <= ref.Agg.SimTime {
		t.Fatalf("straggler did not slow the static run: %g <= %g", static.Agg.SimTime, ref.Agg.SimTime)
	}

	cand, err := CandidateOf(set)
	if err != nil {
		t.Fatalf("CandidateOf: %v", err)
	}
	ctl, err := NewController(soakPolicy(), g, cfg, tune.ProfileFromModel(model), steps, cand)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	out, err := Run(ctl, g, model, heldsuarez.InitialState, steps, nil, fault.New(stragglerPlan(10)), 2)
	if err != nil {
		t.Fatalf("rebalanced run: %v", err)
	}
	if out.StepsDone != steps {
		t.Fatalf("rebalanced run completed %d of %d steps", out.StepsDone, steps)
	}
	if len(out.Migrations) == 0 {
		t.Fatalf("no migration under a 10x straggler (last ratio %.3f)", ctl.Snapshot().LastRatio)
	}
	for _, m := range out.Migrations {
		if m.PredictedGain <= m.Cost {
			t.Errorf("migration at step %d accepted without clearing its cost: gain %g <= cost %g",
				m.Step, m.PredictedGain, m.Cost)
		}
	}
	if want := 0.85 * static.Agg.SimTime; out.SimTime > want {
		t.Errorf("rebalanced SimTime %.4gs not >= 15%% faster than static %.4gs (want <= %.4gs; %d migrations)",
			out.SimTime, static.Agg.SimTime, want, len(out.Migrations))
	}
	if !refGl.Equal(checkpoint.Gather(g, out.Finals)) {
		t.Errorf("rebalanced finals not bitwise identical to the unperturbed reference")
	}
	t.Logf("static %.4gs, rebalanced %.4gs (%.1f%% faster), %d migration(s): %+v",
		static.Agg.SimTime, out.SimTime,
		100*(1-out.SimTime/static.Agg.SimTime), len(out.Migrations), out.Migrations)
}

// TestRebalanceUnderStragglerCA runs the same soak on the comm-avoiding
// scheme. CA restores through the deferred-smoothing resume path, which is
// reproducible but — across a row-repartition — only to rounding: the
// tolerance is the cross-decomposition bound the checkpoint tests use.
func TestRebalanceUnderStragglerCA(t *testing.T) {
	g := grid.New(48, 24, 8)
	cfg := dycore.DefaultConfig()
	cfg.M = 2
	const steps = 24
	set := dycore.Setup{Alg: dycore.AlgCommAvoid, PA: 4, PB: 1, Cfg: cfg}
	model := comm.TianheLike()

	ref := dycore.Run(set, g, model, heldsuarez.InitialState, steps)

	cand, err := CandidateOf(set)
	if err != nil {
		t.Fatalf("CandidateOf: %v", err)
	}
	ctl, err := NewController(soakPolicy(), g, cfg, tune.ProfileFromModel(model), steps, cand)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	out, err := Run(ctl, g, model, heldsuarez.InitialState, steps, nil, fault.New(stragglerPlan(3)), 2)
	if err != nil {
		t.Fatalf("rebalanced run: %v", err)
	}
	if out.StepsDone != steps {
		t.Fatalf("rebalanced run completed %d of %d steps", out.StepsDone, steps)
	}
	if len(out.Migrations) == 0 {
		t.Fatalf("no migration under a 3x straggler (last ratio %.3f)", ctl.Snapshot().LastRatio)
	}
	if d := dycore.MaxDiffGlobal(g, ref.Finals, out.Finals); d > 1e-6 {
		t.Errorf("rebalanced CA finals diverged from reference: max diff %g > 1e-6", d)
	}
}

// TestNoImbalanceNoMigration pins the quiet path: without faults the
// controller must never migrate (the modeled polar-filter skew stays under
// the threshold) and the run must stay bitwise identical to a plain one.
func TestNoImbalanceNoMigration(t *testing.T) {
	g := grid.New(48, 24, 8)
	cfg := dycore.DefaultConfig()
	cfg.M = 2
	const steps = 16
	set := dycore.Setup{Alg: dycore.AlgBaselineYZ, PA: 4, PB: 1, Cfg: cfg}
	model := comm.TianheLike()

	ref := dycore.Run(set, g, model, heldsuarez.InitialState, steps)

	cand, err := CandidateOf(set)
	if err != nil {
		t.Fatalf("CandidateOf: %v", err)
	}
	ctl, err := NewController(soakPolicy(), g, cfg, tune.ProfileFromModel(model), steps, cand)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	out, err := Run(ctl, g, model, heldsuarez.InitialState, steps, nil, nil, 0)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(out.Migrations) != 0 {
		t.Fatalf("balanced run migrated: %+v (last ratio %.3f)", out.Migrations, ctl.Snapshot().LastRatio)
	}
	st := ctl.Snapshot()
	if st.Decisions != 0 {
		t.Errorf("balanced run reached the re-planner %d times (last ratio %.3f)", st.Decisions, st.LastRatio)
	}
	if !checkpoint.Gather(g, ref.Finals).Equal(checkpoint.Gather(g, out.Finals)) {
		t.Errorf("controlled run not bitwise identical to plain run")
	}
	if out.SimTime != ref.Agg.SimTime {
		t.Errorf("telemetry perturbed the simulated clock: %g != %g", out.SimTime, ref.Agg.SimTime)
	}
}

// TestPolicyValidate is the table of rejected policies.
func TestPolicyValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Policy
		ok   bool
	}{
		{"zero is default", Policy{}, true},
		{"full explicit", Policy{Window: 8, Threshold: 2, Patience: 1, Cooldown: 3, Smoothing: 0.3, MinGain: 2, MaxMigrations: 1}, true},
		{"negative window", Policy{Window: -1}, false},
		{"threshold below one", Policy{Threshold: 0.9}, false},
		{"threshold exactly one", Policy{Threshold: 1}, false},
		{"negative threshold", Policy{Threshold: -2}, false},
		{"negative patience", Policy{Patience: -1}, false},
		{"negative cooldown", Policy{Cooldown: -3}, false},
		{"smoothing above one", Policy{Smoothing: 1.5}, false},
		{"negative smoothing", Policy{Smoothing: -0.1}, false},
		{"negative min gain", Policy{MinGain: -1}, false},
		{"negative max migrations", Policy{MaxMigrations: -1}, false},
	}
	for _, tc := range cases {
		err := tc.p.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

// TestHysteresis drives the observe path with synthetic telemetry: an
// imbalanced window must not trigger re-planning until Patience consecutive
// windows agree.
func TestHysteresis(t *testing.T) {
	g := grid.New(48, 24, 8)
	cfg := dycore.DefaultConfig()
	cfg.M = 2
	cand := tune.Candidate{Scheme: tune.SchemeYZ, PA: 4, PB: 1, M: 2, Workers: 1}
	pol := Policy{Window: 2, Patience: 2, Cooldown: 1}
	ctl, err := NewController(pol, g, cfg, tune.DefaultProfile(), 100, cand)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	hook := ctl.Hook(0)

	// Cumulative per-rank compute with rank 3 running 3x slow.
	comp := make([]float64, 4)
	clock := make([]float64, 4)
	feed := func(step int) bool {
		for i := range comp {
			comp[i] = float64(step) * 1e-3
		}
		comp[3] = float64(step) * 3e-3
		return hook(step, clock, comp)
	}
	for step := 1; step <= 3; step++ {
		if feed(step) {
			t.Fatalf("stopped at boundary %d, before patience (2 windows) was met", step)
		}
	}
	if d := ctl.Snapshot().Decisions; d != 0 {
		t.Fatalf("re-planner reached after one imbalanced window (decisions = %d)", d)
	}
	if !feed(4) {
		t.Fatalf("no stop at boundary 4 after two imbalanced windows (last ratio %.3f, decisions %d)",
			ctl.Snapshot().LastRatio, ctl.Snapshot().Decisions)
	}
	if d := ctl.Snapshot().Decisions; d != 1 {
		t.Fatalf("decisions = %d after the stop, want 1", d)
	}
	plan, mig := ctl.TakePending()
	if plan == nil {
		t.Fatalf("no pending plan after a rebalance stop")
	}
	if mig.Step != 4 || mig.From == mig.To {
		t.Errorf("bad migration record: %+v", mig)
	}
	if got := ctl.Candidate().Key(); got != mig.To {
		t.Errorf("controller candidate %q did not switch to plan %q", got, mig.To)
	}
}

// TestRatedRowStarts pins the rated partition DP on hand-checkable cases.
func TestRatedRowStarts(t *testing.T) {
	uniform := func(n int) []float64 {
		w := make([]float64, n)
		for i := range w {
			w[i] = 1
		}
		return w
	}
	// Equal rates must reproduce the balanced split.
	got := tune.RatedRowStarts(uniform(8), []float64{1, 1}, 2)
	want := []int{0, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("equal rates: got %v, want %v", got, want)
		}
	}
	// A 3x-slow second column should keep only its minimum rows: cost is
	// max(1*w0, 3*w1); w1 = 2 rows gives max(6, 6) — the optimum.
	got = tune.RatedRowStarts(uniform(8), []float64{1, 3}, 2)
	want = []int{0, 6, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("3x column: got %v, want %v", got, want)
		}
	}
	// The result must respect minRows even when rates say otherwise.
	got = tune.RatedRowStarts(uniform(6), []float64{1, 100}, 2)
	if got[1] != 4 {
		t.Fatalf("minRows violated: %v", got)
	}
}

// TestEvaluateWithRatesFallback: a rate vector of the wrong length must not
// change the estimate (it falls back to the unrated Evaluate).
func TestEvaluateWithRatesFallback(t *testing.T) {
	g := grid.New(48, 24, 8)
	cfg := dycore.DefaultConfig()
	cfg.M = 2
	prof := tune.DefaultProfile()
	c := tune.Candidate{Scheme: tune.SchemeYZ, PA: 4, PB: 1, M: 2, Workers: 1}
	plain := tune.Evaluate(g, cfg, prof, c)
	if got := tune.EvaluateWithRates(g, cfg, prof, c, nil); got.Total != plain.Total {
		t.Errorf("nil rates: %g != %g", got.Total, plain.Total)
	}
	if got := tune.EvaluateWithRates(g, cfg, prof, c, []float64{1, 2}); got.Total != plain.Total {
		t.Errorf("short rates: %g != %g", got.Total, plain.Total)
	}
	// Uniform rates of 1 must match exactly; a slowdown must increase it.
	ones := []float64{1, 1, 1, 1}
	if got := tune.EvaluateWithRates(g, cfg, prof, c, ones); got.Total != plain.Total {
		t.Errorf("unit rates: %g != %g", got.Total, plain.Total)
	}
	slow := []float64{1, 1, 1, 3}
	if got := tune.EvaluateWithRates(g, cfg, prof, c, slow); got.Total <= plain.Total {
		t.Errorf("slowdown did not raise the estimate: %g <= %g", got.Total, plain.Total)
	}
}
