package balance

import (
	"fmt"
	"sync"

	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/tune"
)

// Migration records one executed layout switch.
type Migration struct {
	// Step is the global step boundary the run was quiesced at.
	Step int `json:"step"`
	// From and To are the candidate keys of the old and new layouts.
	From string `json:"from"`
	To   string `json:"to"`
	// PredictedGain is the modeled saving over the remaining steps that
	// justified the switch; Cost is the modeled migration price it cleared.
	PredictedGain float64 `json:"predicted_gain_s"`
	Cost          float64 `json:"cost_s"`
}

// Stats is a snapshot of the controller's decision counters.
type Stats struct {
	// Decisions counts imbalance detections that reached the re-planning
	// stage; Skipped counts those that were rejected (no better layout, gain
	// below the migration-cost gate, or migration budget exhausted).
	Decisions int64 `json:"decisions"`
	Skipped   int64 `json:"skipped"`
	// LastRatio is the max/min per-rank compute ratio of the latest
	// evaluated window (EWMA-smoothed).
	LastRatio float64 `json:"last_ratio,omitempty"`
}

// Controller implements the telemetry → detect → re-plan → migrate loop for
// one job. It is driven from the step-boundary barrier through Hook (zero
// allocations there), consulted by the run driver through TakePending after
// a rebalance stop, and safe for concurrent use.
type Controller struct {
	pol    Policy // defaults applied
	g      *grid.Grid
	cfg    dycore.Config
	prof   tune.Profile
	search tune.SearchOptions
	procs  int
	steps  int // total steps of the job

	mu   sync.Mutex
	cand tune.Candidate //cadyvet:guardedby mu
	// modelComp is the §5.3 per-rank compute baseline of the current
	// candidate; prevComp the cumulative per-rank compute at the previous
	// boundary; ewma the smoothed per-window compute. All preallocated to
	// the rank count so the observe path never allocates.
	modelComp  []float64  //cadyvet:guardedby mu
	prevComp   []float64  //cadyvet:guardedby mu
	ewma       []float64  //cadyvet:guardedby mu
	slow       []float64  //cadyvet:guardedby mu
	haveEwma   bool       //cadyvet:guardedby mu
	boundaries int        //cadyvet:guardedby mu
	over       int        //cadyvet:guardedby mu
	cooldown   int        //cadyvet:guardedby mu
	pending    *tune.Plan //cadyvet:guardedby mu
	pendingMig Migration  //cadyvet:guardedby mu

	migrations []Migration //cadyvet:guardedby mu
	decisions  int64       //cadyvet:guardedby mu
	skipped    int64       //cadyvet:guardedby mu
	lastRatio  float64     //cadyvet:guardedby mu
}

// NewController builds a controller for a job of `steps` total steps that
// starts in the given layout. The candidate's scheme and M are held fixed
// across re-plans (changing them mid-run would change the numerics); only
// the factorization, row partition, stage depth and worker count may move.
func NewController(pol Policy, g *grid.Grid, cfg dycore.Config, prof tune.Profile, steps int, start tune.Candidate) (*Controller, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	pol = pol.withDefaults()
	if steps < 1 {
		return nil, fmt.Errorf("balance: steps = %d must be >= 1", steps)
	}
	if start.PA < 1 || start.PB < 1 {
		return nil, fmt.Errorf("balance: starting candidate has empty process grid %dx%d", start.PA, start.PB)
	}
	if start.Workers < 1 {
		start.Workers = 1
	}
	procs := start.PA * start.PB
	c := &Controller{
		pol:    pol,
		g:      g,
		cfg:    cfg,
		prof:   prof,
		search: tune.SearchOptions{MaxWorkers: start.Workers},
		procs:  procs,
		steps:  steps,
		cand:   start,

		modelComp: tune.PerRankCompute(g, cfg, prof, start),
		prevComp:  make([]float64, procs),
		ewma:      make([]float64, procs),
		slow:      make([]float64, procs),
	}
	return c, nil
}

// CandidateOf translates a dycore Setup into the controller's candidate
// space (3-D setups are not re-plannable: the tune search space is 2-D).
func CandidateOf(set dycore.Setup) (tune.Candidate, error) {
	var sch tune.Scheme
	switch set.Alg {
	case dycore.AlgCommAvoid:
		sch = tune.SchemeCA
	case dycore.AlgBaselineYZ:
		sch = tune.SchemeYZ
	case dycore.AlgBaselineXY:
		sch = tune.SchemeXY
	default:
		return tune.Candidate{}, fmt.Errorf("balance: algorithm %s is not rebalanceable", set.Alg)
	}
	c := tune.Candidate{Scheme: sch, PA: set.PA, PB: set.PB, M: set.Cfg.M,
		Workers: set.Cfg.Workers, RowStarts: set.RowStarts}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if sch == tune.SchemeCA {
		c.Stage = set.Cfg.StageM
	}
	if sch != tune.SchemeXY {
		// The spectral-smoothing switch survives re-planning on the
		// full-zonal-circle schemes; under XY it is inert and dropped so the
		// re-planner never prices a dead axis.
		c.Spectral = set.Cfg.SpectralSmooth
	}
	return c, nil
}

// Setup returns the dycore setup of the current layout.
func (c *Controller) Setup() dycore.Setup {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cand.Setup(c.cfg)
}

// Candidate returns the current layout.
func (c *Controller) Candidate() tune.Candidate {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cand
}

// Profile returns the machine profile the controller prices with.
func (c *Controller) Profile() tune.Profile { return c.prof }

// Migrations returns a copy of the executed migrations.
func (c *Controller) Migrations() []Migration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Migration, len(c.migrations))
	copy(out, c.migrations)
	return out
}

// Snapshot returns the decision counters.
func (c *Controller) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Decisions: c.decisions, Skipped: c.skipped, LastRatio: c.lastRatio}
}

// Hook arms the controller for one run segment whose step counter starts at
// global step base, returning the dycore.RunOpts.Rebalance callback. Each
// segment starts its telemetry fresh: the runner resets the comm statistics
// after bootstrap, so cumulative compute restarts from zero.
func (c *Controller) Hook(base int) func(done int, clock, comp []float64) bool {
	c.mu.Lock()
	for i := range c.prevComp {
		c.prevComp[i] = 0
	}
	c.boundaries = 0
	c.mu.Unlock()
	return func(done int, clock, comp []float64) bool {
		return c.observe(base, done, comp)
	}
}

// observe ingests one step boundary's cumulative per-rank compute telemetry
// and returns true when the run should quiesce for a migration (a plan is
// then waiting in TakePending). It runs under the step barrier with all
// ranks parked, so it must stay cheap and allocation-free; the expensive
// re-planning only happens on the rare sustained-imbalance path.
func (c *Controller) observe(base, done int, comp []float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(comp) != c.procs || c.pending != nil {
		return false
	}
	c.boundaries++
	if c.boundaries%c.pol.Window != 0 {
		return false
	}
	s := c.pol.Smoothing
	for i, v := range comp {
		win := v - c.prevComp[i]
		c.prevComp[i] = v
		if c.haveEwma {
			c.ewma[i] = (1-s)*c.ewma[i] + s*win
		} else {
			c.ewma[i] = win
		}
	}
	c.haveEwma = true
	minE, maxE := c.ewma[0], c.ewma[0]
	for _, v := range c.ewma[1:] {
		if v < minE {
			minE = v
		}
		if v > maxE {
			maxE = v
		}
	}
	if minE <= 0 {
		return false
	}
	c.lastRatio = maxE / minE
	if base+done >= c.steps {
		return false // final boundary: nothing left to migrate for
	}
	if c.cooldown > 0 {
		c.cooldown--
		return false
	}
	if c.lastRatio < c.pol.Threshold {
		c.over = 0
		return false
	}
	c.over++
	if c.over < c.pol.Patience {
		return false
	}
	c.over = 0
	return c.decide(base + done)
}

// decide re-plans under the measured rates; it runs locked, on the rare
// sustained-imbalance path. Returns true when a migration-worthy plan was
// staged in pending.
//
//cadyvet:locked c.mu
func (c *Controller) decide(step int) bool {
	c.decisions++
	if len(c.migrations) >= c.pol.MaxMigrations {
		c.skipped++
		c.cooldown = c.pol.Cooldown
		return false
	}
	// Per-rank slowdowns: measured window compute against the §5.3 baseline,
	// normalized so the fastest rank is 1 and clamped below at 1. The
	// normalization removes the model's absolute-scale error; the clamp
	// keeps a noisy fast rank from reading as "faster than the model".
	window := float64(c.pol.Window)
	minRel := -1.0
	for i := range c.slow {
		model := c.modelComp[i] * window
		if model <= 0 {
			c.skipped++
			c.cooldown = c.pol.Cooldown
			return false
		}
		rel := c.ewma[i] / model
		c.slow[i] = rel
		if minRel < 0 || rel < minRel {
			minRel = rel
		}
	}
	if minRel <= 0 {
		c.skipped++
		c.cooldown = c.pol.Cooldown
		return false
	}
	for i := range c.slow {
		c.slow[i] /= minRel
		if c.slow[i] < 1 {
			c.slow[i] = 1
		}
	}

	slow := c.slow // local alias: the closure below runs under the same lock
	cur := tune.EvaluateWithRates(c.g, c.cfg, c.prof, c.cand, slow)
	best, bestKey := cur, c.cand.Key()
	consider := func(cd tune.Candidate) {
		e := tune.EvaluateWithRates(c.g, c.cfg, c.prof, cd, slow)
		if e.Total < best.Total ||
			(e.Total == best.Total && e.Candidate.Key() < bestKey) {
			best, bestKey = e, e.Candidate.Key()
		}
	}
	for _, cd := range tune.Candidates(c.g, c.procs, c.cfg, c.prof, c.search) {
		// The scheme, M and the smoothing implementation are pinned:
		// switching integrators (or the spectral path, whose results differ
		// from the stencil's at rounding level) mid-run would change the
		// trajectory, not just its cost.
		if cd.Scheme != c.cand.Scheme || cd.M != c.cand.M || cd.Spectral != c.cand.Spectral {
			continue
		}
		consider(cd)
		if rows := tune.RatedRows(c.g, c.cfg, c.prof, cd, slow); rows != nil {
			cr := cd
			cr.RowStarts = rows
			consider(cr)
		}
	}

	remaining := float64(c.steps - step)
	gain := (cur.Total - best.Total) * remaining
	cost := tune.MigrationCost(c.g, c.procs, c.prof)
	if bestKey == c.cand.Key() || gain <= c.pol.MinGain*cost {
		c.skipped++
		c.cooldown = c.pol.Cooldown
		return false
	}
	plan := tune.PlanOf(c.g, c.procs, best.Candidate, c.prof, best.Total)
	c.pending = &plan
	c.pendingMig = Migration{Step: step, From: c.cand.Key(), To: bestKey,
		PredictedGain: gain, Cost: cost}
	return true
}

// TakePending commits the staged re-plan: the controller switches its
// current candidate, resets the telemetry (block sizes changed, so window
// history is stale; the per-rank slowdowns re-emerge within a window) and
// returns the plan with its migration record. Nil plan when no re-plan is
// staged — the run stopped for another reason.
func (c *Controller) TakePending() (*tune.Plan, Migration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pending == nil {
		return nil, Migration{}
	}
	p := c.pending
	c.pending = nil
	c.cand = p.Candidate()
	c.modelComp = tune.PerRankCompute(c.g, c.cfg, c.prof, c.cand)
	c.haveEwma = false
	c.over = 0
	c.cooldown = c.pol.Cooldown
	c.migrations = append(c.migrations, c.pendingMig)
	return p, c.pendingMig
}
