package topo

import (
	"math/rand"
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/field"
	"cadycore/internal/grid"
)

func TestTopologyLayout(t *testing.T) {
	g := grid.New(16, 12, 6)
	const px, py, pz = 2, 3, 2
	w := comm.NewWorld(px*py*pz, comm.Zero())
	w.Run(func(c *comm.Comm) {
		tp := New(c, g, px, py, pz, 1, 1, 1)
		// Coordinates roundtrip.
		if tp.RankAt(tp.Cx, tp.Cy, tp.Cz) != c.Rank() {
			t.Errorf("rank %d: coords roundtrip failed", c.Rank())
		}
		cx, cy, cz := tp.CoordsOf(c.Rank())
		if cx != tp.Cx || cy != tp.Cy || cz != tp.Cz {
			t.Errorf("CoordsOf mismatch")
		}
		// Sub-communicator shapes.
		if tp.RowX.Size() != px || tp.ColZ.Size() != pz {
			t.Errorf("subcomm sizes: rowX=%d colZ=%d", tp.RowX.Size(), tp.ColZ.Size())
		}
		if tp.RowX.Rank() != tp.Cx || tp.ColZ.Rank() != tp.Cz {
			t.Errorf("subcomm ranks: rowX=%d (want %d), colZ=%d (want %d)",
				tp.RowX.Rank(), tp.Cx, tp.ColZ.Rank(), tp.Cz)
		}
		// Block bounds sane and within domain.
		b := tp.Block
		b.Validate()
		// Blocks partition the domain: verified globally below.
	})

	// Verify the blocks tile the domain exactly once.
	w2 := comm.NewWorld(px*py*pz, comm.Zero())
	covered := make([]int, g.Nx*g.Ny*g.Nz)
	blocks := make([]field.Block, px*py*pz)
	w2.Run(func(c *comm.Comm) {
		tp := New(c, g, px, py, pz, 0, 0, 0)
		blocks[c.Rank()] = tp.Block
	})
	for _, b := range blocks {
		for k := b.K0; k < b.K1; k++ {
			for j := b.J0; j < b.J1; j++ {
				for i := b.I0; i < b.I1; i++ {
					covered[(k*g.Ny+j)*g.Nx+i]++
				}
			}
		}
	}
	for idx, c := range covered {
		if c != 1 {
			t.Fatalf("point %d covered %d times", idx, c)
		}
	}
}

// fillGlobal sets f(i,j,k) = encode(i,j,k) over the owned region.
func encode(g *grid.Grid, i, j, k int) float64 {
	return float64((k*g.Ny+j)*g.Nx + g.WrapX(i))
}

func fillOwned(g *grid.Grid, f *field.F3) {
	b := f.B
	for k := b.K0; k < b.K1; k++ {
		for j := b.J0; j < b.J1; j++ {
			for i := b.I0; i < b.I1; i++ {
				f.Set(i, j, k, encode(g, i, j, k))
			}
		}
	}
}

// checkHalo verifies that all in-domain halo cells of depth (dx,dy,dz) hold
// the owner's encoded values.
func checkHalo(t *testing.T, g *grid.Grid, f *field.F3, dx, dy, dz int) {
	t.Helper()
	b := f.B
	lo := [3]int{b.I0 - dx, b.J0 - dy, b.K0 - dz}
	hi := [3]int{b.I1 + dx, b.J1 + dy, b.K1 + dz}
	for k := lo[2]; k < hi[2]; k++ {
		if k < 0 || k >= g.Nz {
			continue
		}
		for j := lo[1]; j < hi[1]; j++ {
			if j < 0 || j >= g.Ny {
				continue
			}
			for i := lo[0]; i < hi[0]; i++ {
				want := encode(g, i, j, k)
				if got := f.At(i, j, k); got != want {
					t.Fatalf("halo (%d,%d,%d): got %v want %v", i, j, k, got, want)
				}
			}
		}
	}
}

func TestExchangeYZ(t *testing.T) {
	g := grid.New(16, 12, 6)
	for _, pg := range [][2]int{{2, 1}, {3, 2}, {4, 3}, {6, 3}} {
		py, pz := pg[0], pg[1]
		w := comm.NewWorld(py*pz, comm.Zero())
		w.Run(func(c *comm.Comm) {
			tp := New(c, g, 1, py, pz, 2, 2, 2)
			f := field.NewF3(tp.Block)
			fillOwned(g, f)
			f.FillXPeriodic()
			ex := tp.NewExchanger(0, 2, 2)
			ex.Exchange([]*field.F3{f}, nil)
			f.FillXPeriodic()
			checkHalo(t, g, f, 0, 2, 2)
		})
	}
}

func TestExchangeXY(t *testing.T) {
	g := grid.New(16, 12, 6)
	for _, pg := range [][2]int{{2, 2}, {4, 3}} {
		px, py := pg[0], pg[1]
		w := comm.NewWorld(px*py, comm.Zero())
		w.Run(func(c *comm.Comm) {
			tp := New(c, g, px, py, 1, 3, 1, 1)
			f := field.NewF3(tp.Block)
			fillOwned(g, f)
			ex := tp.NewExchanger(3, 1, 0)
			ex.Exchange([]*field.F3{f}, nil)
			// x halos wrap periodically: check them explicitly including
			// the wrap, via encode's WrapX.
			checkHalo(t, g, f, 3, 1, 0)
		})
	}
}

func TestDeepExchangeSpansMultipleBlocks(t *testing.T) {
	// Halo deeper than a neighbor's block: data must arrive from the
	// rank(s) beyond it in one exchange round.
	g := grid.New(16, 12, 6)
	const py = 6 // blocks of 2 rows
	w := comm.NewWorld(py, comm.Zero())
	w.Run(func(c *comm.Comm) {
		tp := New(c, g, 1, py, 1, 0, 5, 0) // 5-row halo over 2-row blocks
		f := field.NewF3(tp.Block)
		fillOwned(g, f)
		ex := tp.NewExchanger(0, 5, 0)
		if c.Rank() == 2 && ex.PeerCount() < 4 {
			t.Errorf("deep halo should span ≥4 peers, got %d", ex.PeerCount())
		}
		ex.Exchange([]*field.F3{f}, nil)
		checkHalo(t, g, f, 0, 5, 0)
	})
}

func TestExchangeF2(t *testing.T) {
	g := grid.New(16, 12, 6)
	const py, pz = 3, 2
	w := comm.NewWorld(py*pz, comm.Zero())
	w.Run(func(c *comm.Comm) {
		tp := New(c, g, 1, py, pz, 0, 2, 1)
		f2 := field.NewF2(tp.Block)
		b := tp.Block
		for j := b.J0; j < b.J1; j++ {
			for i := b.I0; i < b.I1; i++ {
				f2.Set(i, j, encode(g, i, j, 0))
			}
		}
		ex := tp.NewExchanger(0, 2, 1)
		ex.Exchange(nil, []*field.F2{f2})
		for j := b.J0 - 2; j < b.J1+2; j++ {
			if j < 0 || j >= g.Ny {
				continue
			}
			for i := 0; i < g.Nx; i++ {
				if got, want := f2.At(i, j), encode(g, i, j, 0); got != want {
					t.Fatalf("2-D halo (%d,%d): got %v want %v", i, j, got, want)
				}
			}
		}
	})
}

func TestOverlappedExchangeEquivalent(t *testing.T) {
	// Begin/Finish must deliver exactly what blocking Exchange does.
	g := grid.New(16, 12, 6)
	const py, pz = 3, 2
	w := comm.NewWorld(py*pz, comm.Zero())
	w.Run(func(c *comm.Comm) {
		tp := New(c, g, 1, py, pz, 0, 2, 2)
		f := field.NewF3(tp.Block)
		fillOwned(g, f)
		ex := tp.NewExchanger(0, 2, 2)
		pend := ex.Begin([]*field.F3{f}, nil)
		// Mutate owned data between Begin and Finish: messages must carry
		// the values from Begin time (buffered-send semantics).
		b := tp.Block
		f.Set(b.I0, b.J0, b.K0, -12345)
		pend.Finish()
		// Our halo must hold the neighbors' pre-mutation values (the
		// mutation happened after Begin, and sends are buffered).
		for k := b.K0 - 2; k < b.K1+2; k++ {
			if k < 0 || k >= g.Nz {
				continue
			}
			for j := b.J0 - 2; j < b.J1+2; j++ {
				if j < 0 || j >= g.Ny {
					continue
				}
				if b.Owned().Contains(0, j, k) {
					continue // skip owned rows (one point was mutated)
				}
				for i := 0; i < g.Nx; i++ {
					if got, want := f.At(i, j, k), encode(g, i, j, k); got != want {
						t.Fatalf("halo (%d,%d,%d): got %v want %v", i, j, k, got, want)
					}
				}
			}
		}
		if got := f.At(b.I0, b.J0, b.K0); got != -12345 {
			t.Errorf("local mutation lost: %v", got)
		}
	})
}

func TestBandExchangerY(t *testing.T) {
	// The band exchanger must deliver exactly the sender's y-edge bands.
	g := grid.New(16, 12, 6)
	const py = 3 // blocks of 4 rows
	w := comm.NewWorld(py, comm.Zero())
	w.Run(func(c *comm.Comm) {
		tp := New(c, g, 1, py, 1, 0, 4, 0)
		f := field.NewF3(tp.Block)
		fillOwned(g, f)
		ex := tp.NewBandExchangerY(Sym(0, 4, 0), 2)
		ex.Exchange([]*field.F3{f}, nil)
		b := tp.Block
		// Band rows adjacent to my block edges must be valid.
		for _, j := range []int{b.J0 - 2, b.J0 - 1, b.J1, b.J1 + 1} {
			if j < 0 || j >= g.Ny {
				continue
			}
			// These rows lie within 2 of their owner's block edge (blocks
			// are 4 rows, so rows at distance ≤2 from my edge are within
			// the owner's edge bands).
			for i := 0; i < g.Nx; i++ {
				for k := b.K0; k < b.K1; k++ {
					if got, want := f.At(i, j, k), encode(g, i, j, k); got != want {
						t.Fatalf("band row (%d,%d,%d): got %v want %v", i, j, k, got, want)
					}
				}
			}
		}
	})
}

func TestBandVolumeSmallerThanFull(t *testing.T) {
	g := grid.New(16, 12, 6)
	const py = 2
	bytesOf := func(band bool) int64 {
		w := comm.NewWorld(py, comm.Zero())
		w.Run(func(c *comm.Comm) {
			tp := New(c, g, 1, py, 1, 0, 6, 0)
			f := field.NewF3(tp.Block)
			fillOwned(g, f)
			var ex *Exchanger
			if band {
				ex = tp.NewBandExchangerY(Sym(0, 6, 0), 2)
			} else {
				ex = tp.NewExchanger(0, 6, 0)
			}
			ex.Exchange([]*field.F3{f}, nil)
		})
		return w.Stats().BytesSent
	}
	full, banded := bytesOf(false), bytesOf(true)
	if banded >= full {
		t.Errorf("band exchange (%d B) not smaller than full (%d B)", banded, full)
	}
	if banded == 0 {
		t.Error("band exchange moved nothing")
	}
}

func TestEightNeighborsInPlane(t *testing.T) {
	// With shallow halos on an interior block of a Y-Z grid, the peer set
	// is exactly the paper's 8 neighbors (edges + corners in the y-z
	// process plane).
	g := grid.New(16, 12, 6)
	const py, pz = 4, 3
	w := comm.NewWorld(py*pz, comm.Zero())
	w.Run(func(c *comm.Comm) {
		tp := New(c, g, 1, py, pz, 0, 1, 1)
		ex := tp.NewExchanger(0, 1, 1)
		interior := tp.Cy > 0 && tp.Cy < py-1 && tp.Cz > 0 && tp.Cz < pz-1
		if interior && ex.PeerCount() != 8 {
			t.Errorf("interior rank (%d,%d) has %d peers, want 8", tp.Cy, tp.Cz, ex.PeerCount())
		}
	})
}

func TestExchangeRandomizedProperty(t *testing.T) {
	// Property: after an exchange, every in-domain halo cell equals the
	// owner's value, for random process grids and depths.
	g := grid.New(16, 12, 6)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		pys := []int{1, 2, 3, 4}
		pzs := []int{1, 2, 3}
		py := pys[rng.Intn(len(pys))]
		pz := pzs[rng.Intn(len(pzs))]
		dy := 1 + rng.Intn(3)
		dz := 1 + rng.Intn(2)
		w := comm.NewWorld(py*pz, comm.Zero())
		w.Run(func(c *comm.Comm) {
			tp := New(c, g, 1, py, pz, 0, dy, dz)
			f := field.NewF3(tp.Block)
			fillOwned(g, f)
			ex := tp.NewExchanger(0, dy, dz)
			ex.Exchange([]*field.F3{f}, nil)
			checkHalo(t, g, f, 0, dy, dz)
		})
	}
}
