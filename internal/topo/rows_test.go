package topo

import (
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/grid"
)

func TestRowStartsUniformDefault(t *testing.T) {
	g := grid.New(16, 10, 4)
	w := comm.NewWorld(4, comm.Zero())
	w.Run(func(c *comm.Comm) {
		tp := New(c, g, 1, 4, 1, 1, 2, 0)
		starts := tp.RowStarts()
		want := grid.UniformRowStarts(10, 4)
		for i := range want {
			if starts[i] != want[i] {
				t.Errorf("RowStarts = %v, want %v", starts, want)
				return
			}
		}
	})
}

func TestNewWithRowsBlocks(t *testing.T) {
	g := grid.New(16, 10, 4)
	rows := []int{0, 2, 5, 10}
	w := comm.NewWorld(3, comm.Zero())
	w.Run(func(c *comm.Comm) {
		tp := NewWithRows(c, g, 1, 3, 1, 1, 2, 0, rows)
		if tp.Block.J0 != rows[tp.Cy] || tp.Block.J1 != rows[tp.Cy+1] {
			t.Errorf("rank %d block rows [%d,%d), want [%d,%d)",
				c.Rank(), tp.Block.J0, tp.Block.J1, rows[tp.Cy], rows[tp.Cy+1])
		}
		// BlockOf must agree with every rank's own block.
		for r := 0; r < c.Size(); r++ {
			b := tp.BlockOf(r)
			cy := (r / tp.Px) % tp.Py
			if b.J0 != rows[cy] || b.J1 != rows[cy+1] {
				t.Errorf("BlockOf(%d) rows [%d,%d), want [%d,%d)", r, b.J0, b.J1, rows[cy], rows[cy+1])
			}
		}
	})
}

func TestRowWindow(t *testing.T) {
	g := grid.New(16, 10, 4)
	for _, rows := range [][]int{nil, {0, 2, 5, 10}} {
		py := 3
		w := comm.NewWorld(py, comm.Zero())
		w.Run(func(c *comm.Comm) {
			tp := NewWithRows(c, g, 1, py, 1, 1, 2, 0, rows)
			starts := tp.RowStarts()
			for j := 0; j < g.Ny; j++ {
				lo, hi := tp.RowWindow(j)
				// The window must be an owned range containing j.
				if j < lo || j >= hi {
					t.Fatalf("rows %v: RowWindow(%d) = [%d,%d) does not contain j", rows, j, lo, hi)
				}
				found := false
				for cy := 0; cy < py; cy++ {
					if starts[cy] == lo && starts[cy+1] == hi {
						found = true
					}
				}
				if !found {
					t.Fatalf("rows %v: RowWindow(%d) = [%d,%d) is not a process row range %v", rows, j, lo, hi, starts)
				}
			}
		})
	}
}

func TestNewWithRowsValidates(t *testing.T) {
	g := grid.New(16, 10, 4)
	bad := [][]int{
		{0, 5},        // wrong length for py=3
		{1, 4, 7, 10}, // does not start at 0
		{0, 4, 7, 9},  // does not end at Ny
		{0, 7, 4, 10}, // not increasing
		{0, 4, 4, 10}, // empty chunk
	}
	for _, rows := range bad {
		rows := rows
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rowStarts %v: expected panic", rows)
				}
			}()
			w := comm.NewWorld(3, comm.Zero())
			w.Run(func(c *comm.Comm) {
				NewWithRows(c, g, 1, 3, 1, 1, 2, 0, rows)
			})
		}()
	}
}
