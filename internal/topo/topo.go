// Package topo maps the global latitude–longitude mesh onto a Cartesian
// process grid and provides the halo-exchange engines the stencil operators
// use. It supports the three decompositions the paper analyzes:
//
//	X-Y decomposition: p = px·py, pz = 1 — avoids the z collective, pays a
//	  distributed FFT in the Fourier filter (Section 4.2).
//	Y-Z decomposition: p = py·pz, px = 1 — the filter becomes local; used by
//	  both the baseline Y-Z algorithm and the communication-avoiding one.
//	General 3-D grids are also representable (px·py·pz).
//
// The exchange engine is fully general in halo depth: each rank sends to and
// receives from exactly the set of ranks whose owned regions intersect its
// halo region (with longitude periodicity), so the communication-avoiding
// deep halos (3M layers) work even when they span more than one neighboring
// block. With depth ≤ block extent this reduces to the paper's 8-neighbor
// scheme in the decomposed plane.
package topo

import (
	"fmt"

	"cadycore/internal/comm"
	"cadycore/internal/field"
	"cadycore/internal/grid"
)

// Topology is one rank's view of the process grid and its block of the mesh.
type Topology struct {
	G          *grid.Grid
	Px, Py, Pz int
	// World is the communicator spanning all px·py·pz ranks.
	World *comm.Comm
	// Cx, Cy, Cz are this rank's coordinates in the process grid.
	Cx, Cy, Cz int
	// RowX spans the ranks sharing (Cy, Cz), ordered by Cx: the communicator
	// of the distributed Fourier filter. Size 1 under Y-Z decomposition.
	RowX *comm.Comm
	// ColZ spans the ranks sharing (Cx, Cy), ordered by Cz: the communicator
	// of the vertical summation Ĉ. Size 1 under X-Y decomposition.
	ColZ *comm.Comm
	// Block is the owned sub-box including the allocated halo widths.
	Block field.Block
}

// New builds the topology for the calling rank. The communicator's size must
// equal px·py·pz; hx, hy, hz are the halo widths to allocate (they bound the
// exchange depths usable later). Ranks are laid out x-fastest:
// rank = (cz·py + cy)·px + cx.
func New(c *comm.Comm, g *grid.Grid, px, py, pz, hx, hy, hz int) *Topology {
	p := c.Size()
	if px*py*pz != p {
		panic(fmt.Sprintf("topo: process grid %dx%dx%d != communicator size %d", px, py, pz, p))
	}
	if px > g.Nx || py > g.Ny || pz > g.Nz {
		panic(fmt.Sprintf("topo: process grid %dx%dx%d exceeds mesh %dx%dx%d",
			px, py, pz, g.Nx, g.Ny, g.Nz))
	}
	r := c.Rank()
	cx := r % px
	cy := (r / px) % py
	cz := r / (px * py)

	t := &Topology{
		G: g, Px: px, Py: py, Pz: pz,
		World: c,
		Cx:    cx, Cy: cy, Cz: cz,
	}
	t.Block = field.Block{
		Nx: g.Nx, Ny: g.Ny, Nz: g.Nz,
		I0: cx * g.Nx / px, I1: (cx + 1) * g.Nx / px,
		J0: cy * g.Ny / py, J1: (cy + 1) * g.Ny / py,
		K0: cz * g.Nz / pz, K1: (cz + 1) * g.Nz / pz,
		Hx: hx, Hy: hy, Hz: hz,
	}
	t.Block.Validate()

	// Sub-communicators. Split is collective; every rank calls both splits
	// in the same order.
	t.RowX = c.Split(cz*py+cy, cx)
	t.ColZ = c.Split(cy*px+cx, cz)
	return t
}

// BlockOf returns the owned block of an arbitrary rank (same halo widths).
func (t *Topology) BlockOf(rank int) field.Block {
	px, py := t.Px, t.Py
	g := t.G
	cx := rank % px
	cy := (rank / px) % py
	cz := rank / (px * py)
	return field.Block{
		Nx: g.Nx, Ny: g.Ny, Nz: g.Nz,
		I0: cx * g.Nx / px, I1: (cx + 1) * g.Nx / px,
		J0: cy * g.Ny / py, J1: (cy + 1) * g.Ny / py,
		K0: cz * g.Nz / t.Pz, K1: (cz + 1) * g.Nz / t.Pz,
		Hx: t.Block.Hx, Hy: t.Block.Hy, Hz: t.Block.Hz,
	}
}

// CoordsOf returns the process-grid coordinates of a rank.
func (t *Topology) CoordsOf(rank int) (cx, cy, cz int) {
	return rank % t.Px, (rank / t.Px) % t.Py, rank / (t.Px * t.Py)
}

// RankAt returns the rank at process-grid coordinates.
func (t *Topology) RankAt(cx, cy, cz int) int {
	return (cz*t.Py+cy)*t.Px + cx
}

// String implements fmt.Stringer.
func (t *Topology) String() string {
	return fmt.Sprintf("topo %dx%dx%d rank(%d,%d,%d) block %v",
		t.Px, t.Py, t.Pz, t.Cx, t.Cy, t.Cz, t.Block.Owned())
}
