// Package topo maps the global latitude–longitude mesh onto a Cartesian
// process grid and provides the halo-exchange engines the stencil operators
// use. It supports the three decompositions the paper analyzes:
//
//	X-Y decomposition: p = px·py, pz = 1 — avoids the z collective, pays a
//	  distributed FFT in the Fourier filter (Section 4.2).
//	Y-Z decomposition: p = py·pz, px = 1 — the filter becomes local; used by
//	  both the baseline Y-Z algorithm and the communication-avoiding one.
//	General 3-D grids are also representable (px·py·pz).
//
// The exchange engine is fully general in halo depth: each rank sends to and
// receives from exactly the set of ranks whose owned regions intersect its
// halo region (with longitude periodicity), so the communication-avoiding
// deep halos (3M layers) work even when they span more than one neighboring
// block. With depth ≤ block extent this reduces to the paper's 8-neighbor
// scheme in the decomposed plane.
package topo

import (
	"fmt"

	"cadycore/internal/comm"
	"cadycore/internal/field"
	"cadycore/internal/grid"
)

// Topology is one rank's view of the process grid and its block of the mesh.
type Topology struct {
	G          *grid.Grid
	Px, Py, Pz int
	// World is the communicator spanning all px·py·pz ranks.
	World *comm.Comm
	// Cx, Cy, Cz are this rank's coordinates in the process grid.
	Cx, Cy, Cz int
	// RowX spans the ranks sharing (Cy, Cz), ordered by Cx: the communicator
	// of the distributed Fourier filter. Size 1 under Y-Z decomposition.
	RowX *comm.Comm
	// ColZ spans the ranks sharing (Cx, Cy), ordered by Cz: the communicator
	// of the vertical summation Ĉ. Size 1 under X-Y decomposition.
	ColZ *comm.Comm
	// Block is the owned sub-box including the allocated halo widths.
	Block field.Block

	// rowStarts, when non-nil, is the non-uniform y partition: process row
	// cy owns global rows [rowStarts[cy], rowStarts[cy+1]). Nil means the
	// canonical uniform partition cy*Ny/py.
	rowStarts []int
}

// New builds the topology for the calling rank. The communicator's size must
// equal px·py·pz; hx, hy, hz are the halo widths to allocate (they bound the
// exchange depths usable later). Ranks are laid out x-fastest:
// rank = (cz·py + cy)·px + cx.
func New(c *comm.Comm, g *grid.Grid, px, py, pz, hx, hy, hz int) *Topology {
	return NewWithRows(c, g, px, py, pz, hx, hy, hz, nil)
}

// NewWithRows is New with an explicit y-row partition: process row cy owns
// global rows [rowStarts[cy], rowStarts[cy+1]). rowStarts must have py+1
// strictly increasing entries from 0 to g.Ny; nil selects the uniform
// partition. Unbalanced partitions let the planner give polar ranks — whose
// rows carry extra Fourier-filter work — fewer rows than mid-latitude ranks.
func NewWithRows(c *comm.Comm, g *grid.Grid, px, py, pz, hx, hy, hz int, rowStarts []int) *Topology {
	p := c.Size()
	if px*py*pz != p {
		panic(fmt.Sprintf("topo: process grid %dx%dx%d != communicator size %d", px, py, pz, p))
	}
	if px > g.Nx || py > g.Ny || pz > g.Nz {
		panic(fmt.Sprintf("topo: process grid %dx%dx%d exceeds mesh %dx%dx%d",
			px, py, pz, g.Nx, g.Ny, g.Nz))
	}
	if rowStarts != nil {
		if len(rowStarts) != py+1 {
			panic(fmt.Sprintf("topo: rowStarts has %d entries, want py+1 = %d", len(rowStarts), py+1))
		}
		if rowStarts[0] != 0 || rowStarts[py] != g.Ny {
			panic(fmt.Sprintf("topo: rowStarts must span [0, %d], got [%d, %d]",
				g.Ny, rowStarts[0], rowStarts[py]))
		}
		for i := 0; i < py; i++ {
			if rowStarts[i+1] <= rowStarts[i] {
				panic(fmt.Sprintf("topo: rowStarts not strictly increasing at %d: %v", i, rowStarts))
			}
		}
	}
	r := c.Rank()
	cx := r % px
	cy := (r / px) % py
	cz := r / (px * py)

	t := &Topology{
		G: g, Px: px, Py: py, Pz: pz,
		World: c,
		Cx:    cx, Cy: cy, Cz: cz,
		rowStarts: append([]int(nil), rowStarts...),
	}
	j0, j1 := t.yRange(cy)
	t.Block = field.Block{
		Nx: g.Nx, Ny: g.Ny, Nz: g.Nz,
		I0: cx * g.Nx / px, I1: (cx + 1) * g.Nx / px,
		J0: j0, J1: j1,
		K0: cz * g.Nz / pz, K1: (cz + 1) * g.Nz / pz,
		Hx: hx, Hy: hy, Hz: hz,
	}
	t.Block.Validate()

	// Sub-communicators. Split is collective; every rank calls both splits
	// in the same order.
	t.RowX = c.Split(cz*py+cy, cx)
	t.ColZ = c.Split(cy*px+cx, cz)
	return t
}

// yRange returns the owned row range [j0, j1) of process row cy.
func (t *Topology) yRange(cy int) (j0, j1 int) {
	if t.rowStarts == nil {
		return cy * t.G.Ny / t.Py, (cy + 1) * t.G.Ny / t.Py
	}
	return t.rowStarts[cy], t.rowStarts[cy+1]
}

// RowStarts returns the y-partition boundaries (py+1 entries, starts[cy] is
// the first global row of process row cy). The slice is freshly allocated;
// it reflects the uniform partition when no explicit one was given.
func (t *Topology) RowStarts() []int {
	starts := make([]int, t.Py+1)
	for cy := 0; cy <= t.Py; cy++ {
		if cy < t.Py {
			starts[cy], _ = t.yRange(cy)
		} else {
			starts[cy] = t.G.Ny
		}
	}
	return starts
}

// RowWindow returns the owned row range [lo, hi) of the process row that
// owns global row j. The stencil operators use it to bound data availability
// when regrouping y-direction smoothing around block edges.
func (t *Topology) RowWindow(j int) (lo, hi int) {
	if t.rowStarts == nil {
		py, ny := t.Py, t.G.Ny
		w := j * py / ny
		for w > 0 && j < w*ny/py {
			w--
		}
		for w < py-1 && j >= (w+1)*ny/py {
			w++
		}
		return w * ny / py, (w + 1) * ny / py
	}
	for cy := 0; cy < t.Py; cy++ {
		if j < t.rowStarts[cy+1] {
			return t.rowStarts[cy], t.rowStarts[cy+1]
		}
	}
	return t.rowStarts[t.Py-1], t.rowStarts[t.Py]
}

// BlockOf returns the owned block of an arbitrary rank (same halo widths).
func (t *Topology) BlockOf(rank int) field.Block {
	px, py := t.Px, t.Py
	g := t.G
	cx := rank % px
	cy := (rank / px) % py
	cz := rank / (px * py)
	j0, j1 := t.yRange(cy)
	return field.Block{
		Nx: g.Nx, Ny: g.Ny, Nz: g.Nz,
		I0: cx * g.Nx / px, I1: (cx + 1) * g.Nx / px,
		J0: j0, J1: j1,
		K0: cz * g.Nz / t.Pz, K1: (cz + 1) * g.Nz / t.Pz,
		Hx: t.Block.Hx, Hy: t.Block.Hy, Hz: t.Block.Hz,
	}
}

// CoordsOf returns the process-grid coordinates of a rank.
func (t *Topology) CoordsOf(rank int) (cx, cy, cz int) {
	return rank % t.Px, (rank / t.Px) % t.Py, rank / (t.Px * t.Py)
}

// RankAt returns the rank at process-grid coordinates.
func (t *Topology) RankAt(cx, cy, cz int) int {
	return (cz*t.Py+cy)*t.Px + cx
}

// String implements fmt.Stringer.
func (t *Topology) String() string {
	return fmt.Sprintf("topo %dx%dx%d rank(%d,%d,%d) block %v",
		t.Px, t.Py, t.Pz, t.Cx, t.Cy, t.Cz, t.Block.Owned())
}
