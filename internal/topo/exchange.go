package topo

import (
	"fmt"
	"sort"

	"cadycore/internal/comm"
	"cadycore/internal/field"
)

// Exchanger fills halo cells of depth (dx, dy, dz) by neighbor communication.
// Construction precomputes, for every peer rank, the exact rectangles to send
// (out of this rank's owned region) and to receive (into this rank's halo),
// honoring longitude periodicity. Halo cells outside the global domain in y
// and z are NOT communicated — they are boundary cells filled locally by the
// pole/vertical mirrors (field.FillPolesY, field.FillVerticalZ).
//
// One exchange sends one message per (peer, field), matching how the
// original MPI dycore posts one MPI_Isend per variable per neighbor (the
// paper counts ≈20 point-to-point operations per communication because ξ has
// ten components).
type Exchanger struct {
	t        *Topology
	d        Depths
	bandY    int    // >0: restrict traffic to the sender's y-edge bands
	peers    []peer // F3 exchange partners, sorted by rank
	peers2   []peer // F2 exchange partners (horizontal footprint, same Cz)
	maxCount int    // largest single-field message length (for buffers)

	// Persistent pack/unpack buffers and Pending, so steady-state exchanges
	// allocate nothing. At most one exchange may be outstanding per
	// Exchanger (Begin … Finish); integrators satisfy this by construction.
	sendBuf, recvBuf []float64
	pend             Pending

	stats ExchStats
}

// ExchStats is one Exchanger's overlap accounting: how many rounds it ran
// and how much of its communication time the owning rank exposed (stalled
// for) vs. hid behind compute issued between Begin and Finish. Seconds are
// simulated (LogP) time.
type ExchStats struct {
	Label            string
	Begins, Finishes int64
	// ExposedSec is communication time charged to the rank's clock inside
	// this exchanger's Begin and Finish calls (send overheads + residual
	// waits). HiddenSec is message flight time that was already covered by
	// the rank's own work when Finish drained the receives.
	ExposedSec float64
	HiddenSec  float64
}

// peer describes the traffic with one neighboring rank. sendRects are in
// this rank's real coordinates; recvRects are in this rank's extended halo
// coordinates (x may be < 0 or ≥ Nx). Rect lists of the two sides pair up
// because both are derived from the same (owner block, halo block) pair in
// the same enumeration order.
type peer struct {
	rank      int
	sendRects []field.Rect
	recvRects []field.Rect
	sendN     int
	recvN     int
}

// Depths gives the halo depth per direction and side. Asymmetric depths
// matter because the adaptation stencils of the paper's Table 1 are
// one-sided in z (they read k and k+1, never k−1), so the deep halo of the
// communication-avoiding algorithm only extends toward higher k.
type Depths struct {
	X        int // symmetric (longitude is periodic and symmetric)
	YLo, YHi int
	ZLo, ZHi int
}

// Sym returns symmetric depths.
func Sym(dx, dy, dz int) Depths {
	return Depths{X: dx, YLo: dy, YHi: dy, ZLo: dz, ZHi: dz}
}

// NewExchanger precomputes an exchange of the given symmetric depths.
// Depths must not exceed the allocated halo widths. A zero depth in a
// direction disables communication in that direction (e.g. dx = 0 under the
// Y-Z decomposition, where x halos are filled by local periodic copy).
func (t *Topology) NewExchanger(dx, dy, dz int) *Exchanger {
	return t.newExchanger(Sym(dx, dy, dz), 0)
}

// NewExchangerD is NewExchanger with per-side depths.
func (t *Topology) NewExchangerD(d Depths) *Exchanger {
	return t.newExchanger(d, 0)
}

// NewBandExchangerY is NewExchanger restricted to the sender's y-edge bands:
// only rows within `band` of the sending rank's y-block edges are
// transferred. It implements the "yellow bar" traffic of the fused smoothing
// (Section 4.3.2): the original (pre-smoothing) edge rows each neighbor
// needs to complete the later smoothing S̃2, without shipping whole fields.
func (t *Topology) NewBandExchangerY(d Depths, band int) *Exchanger {
	return t.newExchanger(d, band)
}

func (t *Topology) newExchanger(d Depths, bandY int) *Exchanger {
	b := t.Block
	if d.X > b.Hx || d.YLo > b.Hy || d.YHi > b.Hy || d.ZLo > b.Hz || d.ZHi > b.Hz {
		panic(fmt.Sprintf("topo: exchange depths %+v exceed halo widths (%d,%d,%d)",
			d, b.Hx, b.Hy, b.Hz))
	}
	e := &Exchanger{t: t, d: d, bandY: bandY}

	myHalo := haloRect(b, d)
	myOwned := b.Owned()
	p := t.World.Size()
	type traffic struct {
		send, recv []field.Rect
	}
	m := make(map[int]*traffic)
	get := func(r int) *traffic {
		tr := m[r]
		if tr == nil {
			tr = &traffic{}
			m[r] = tr
		}
		return tr
	}

	for r := 0; r < p; r++ {
		if r == t.World.Rank() {
			continue
		}
		rb := t.BlockOf(r)
		rHalo := haloRect(rb, d)
		rOwned := rb.Owned()
		for _, s := range xShifts(t.G.Nx, d.X) {
			// What I send to r: my owned data that lies in r's halo when my
			// coordinates are shifted by s (restricted to my y-edge bands in
			// band mode).
			for _, mine := range bandRestrict(myOwned, t.Block, bandY) {
				if inter := shiftX(mine, s).Intersect(rHalo); !inter.Empty() {
					tr := get(r)
					tr.send = append(tr.send, shiftX(inter, -s)) // back to my real coords
				}
			}
			// What I receive from r: r's owned data lying in my halo when
			// r's coordinates are shifted by s (restricted to r's bands).
			for _, theirs := range bandRestrict(rOwned, rb, bandY) {
				if inter := shiftX(theirs, s).Intersect(myHalo); !inter.Empty() {
					tr := get(r)
					tr.recv = append(tr.recv, inter) // my extended coords
				}
			}
		}
	}

	ranks := make([]int, 0, len(m))
	for r := range m {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		tr := m[r]
		pr := peer{rank: r, sendRects: tr.send, recvRects: tr.recv}
		for _, rc := range tr.send {
			pr.sendN += rc.Count()
		}
		for _, rc := range tr.recv {
			pr.recvN += rc.Count()
		}
		if pr.sendN > e.maxCount {
			e.maxCount = pr.sendN
		}
		if pr.recvN > e.maxCount {
			e.maxCount = pr.recvN
		}
		e.peers = append(e.peers, pr)
	}

	// 2-D fields: horizontal traffic among ranks of the same Cz plane.
	e.peers2 = e.buildPeers2(d, bandY)
	return e
}

// buildPeers2 computes the 2-D (surface field) exchange partners: the same
// horizontal intersections restricted to ranks sharing this rank's Cz.
func (e *Exchanger) buildPeers2(d Depths, bandY int) []peer {
	t := e.t
	b := t.Block
	d.ZLo, d.ZHi = 0, 0
	myOwned := b.Owned().Flat2D()
	myHalo := haloRect(b, d).Flat2D()
	var peers []peer
	for cy := 0; cy < t.Py; cy++ {
		for cx := 0; cx < t.Px; cx++ {
			r := t.RankAt(cx, cy, t.Cz)
			if r == t.World.Rank() {
				continue
			}
			rb := t.BlockOf(r)
			rOwned := rb.Owned().Flat2D()
			rHalo := haloRect(rb, d).Flat2D()
			var pr peer
			pr.rank = r
			for _, s := range xShifts(t.G.Nx, d.X) {
				for _, mine := range bandRestrict(myOwned, b, bandY) {
					if inter := shiftX(mine, s).Intersect(rHalo); !inter.Empty() {
						pr.sendRects = append(pr.sendRects, shiftX(inter, -s))
						pr.sendN += inter.Count()
					}
				}
				for _, theirs := range bandRestrict(rOwned, rb, bandY) {
					if inter := shiftX(theirs, s).Intersect(myHalo); !inter.Empty() {
						pr.recvRects = append(pr.recvRects, inter)
						pr.recvN += inter.Count()
					}
				}
			}
			if len(pr.sendRects) > 0 || len(pr.recvRects) > 0 {
				peers = append(peers, pr)
			}
		}
	}
	sort.Slice(peers, func(a, b int) bool { return peers[a].rank < peers[b].rank })
	return peers
}

// bandRestrict returns the owner's rect restricted to its y-edge bands of
// the given width (two sub-rects in fixed low-then-high order), merging them
// when they overlap; band = 0 means no restriction.
func bandRestrict(owned field.Rect, b field.Block, band int) []field.Rect {
	if band <= 0 {
		return []field.Rect{owned}
	}
	if 2*band >= b.J1-b.J0 {
		return []field.Rect{owned} // bands cover the whole block
	}
	lo := owned
	lo.J1 = minInt2(lo.J1, b.J0+band)
	hi := owned
	hi.J0 = maxInt2(hi.J0, b.J1-band)
	out := make([]field.Rect, 0, 2)
	if !lo.Empty() {
		out = append(out, lo)
	}
	if !hi.Empty() {
		out = append(out, hi)
	}
	return out
}

func minInt2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// haloRect returns the halo region of the given per-side depths around b's
// owned region, clamped to the global domain in y and z (pole and vertical
// ghost cells are boundary-filled, not communicated) but unclamped in the
// periodic x direction.
func haloRect(b field.Block, d Depths) field.Rect {
	r := field.Rect{
		I0: b.I0 - d.X, I1: b.I1 + d.X,
		J0: b.J0 - d.YLo, J1: b.J1 + d.YHi,
		K0: b.K0 - d.ZLo, K1: b.K1 + d.ZHi,
	}
	if r.J0 < 0 {
		r.J0 = 0
	}
	if r.J1 > b.Ny {
		r.J1 = b.Ny
	}
	if r.K0 < 0 {
		r.K0 = 0
	}
	if r.K1 > b.Nz {
		r.K1 = b.Nz
	}
	return r
}

// xShifts returns the periodic image shifts to consider. Without x
// decomposition depth there is no x traffic and only the identity shift
// matters.
func xShifts(nx, dx int) []int {
	if dx == 0 {
		return []int{0}
	}
	return []int{-nx, 0, nx}
}

func shiftX(r field.Rect, s int) field.Rect {
	r.I0 += s
	r.I1 += s
	return r
}

// Pending tracks an exchange whose sends have been posted but whose receives
// have not been drained, enabling computation/communication overlap
// (Section 4.3.1: compute the inner part between Begin and Finish).
type Pending struct {
	e   *Exchanger
	f3s []*field.F3
	f2s []*field.F2
}

// SetLabel names the exchanger for per-exchanger overlap accounting and
// returns the receiver (so construction chains).
func (e *Exchanger) SetLabel(label string) *Exchanger {
	e.stats.Label = label
	return e
}

// Stats returns a snapshot of the exchanger's overlap accounting.
func (e *Exchanger) Stats() ExchStats { return e.stats }

// Begin posts all sends of one halo exchange: for every peer, one message
// per 3-D field (tag = field index) and one per 2-D field. Payloads for
// multiple rectangles to the same peer are concatenated in rect order.
func (e *Exchanger) Begin(f3s []*field.F3, f2s []*field.F2) *Pending {
	c := e.t.World
	prev := c.SetCategory(comm.CatStencil)
	defer c.SetCategory(prev)
	t0 := c.Stats().CommTime[comm.CatStencil]
	if len(e.sendBuf) < e.maxCount {
		//cadyvet:allow first-exchange lazy buffer growth; steady-state exchanges reuse the buffer (0 allocs/op pinned by the dycore alloc benchmark)
		e.sendBuf = make([]float64, e.maxCount)
	}
	buf := e.sendBuf
	for _, pr := range e.peers {
		for fi, f := range f3s {
			n := 0
			for _, rc := range pr.sendRects {
				n += f.Pack(rc, buf[n:])
			}
			if n > 0 {
				c.Isend(pr.rank, tagF3Base+fi, buf[:n])
			}
		}
	}
	for _, pr := range e.peers2 {
		for fi, f := range f2s {
			n := 0
			for _, rc := range pr.sendRects {
				n += f.Pack(rc, buf[n:])
			}
			if n > 0 {
				c.Isend(pr.rank, tagF2Base+fi, buf[:n])
			}
		}
	}
	e.stats.Begins++
	e.stats.ExposedSec += c.Stats().CommTime[comm.CatStencil] - t0
	e.pend = Pending{e: e, f3s: f3s, f2s: f2s}
	return &e.pend
}

// Finish drains all receives of the exchange and unpacks them into the halo
// regions.
func (p *Pending) Finish() {
	e := p.e
	c := e.t.World
	prev := c.SetCategory(comm.CatStencil)
	defer c.SetCategory(prev)
	s0 := c.Stats()
	t0, h0 := s0.CommTime[comm.CatStencil], s0.HiddenTime[comm.CatStencil]
	if len(e.recvBuf) < e.maxCount {
		//cadyvet:allow first-exchange lazy buffer growth; steady-state exchanges reuse the buffer (0 allocs/op pinned by the dycore alloc benchmark)
		e.recvBuf = make([]float64, e.maxCount)
	}
	buf := e.recvBuf
	for _, pr := range e.peers {
		for fi, f := range p.f3s {
			if pr.recvN == 0 {
				continue
			}
			c.RecvInto(pr.rank, tagF3Base+fi, buf[:pr.recvN])
			n := 0
			for _, rc := range pr.recvRects {
				n += f.Unpack(rc, buf[n:])
			}
		}
	}
	for _, pr := range e.peers2 {
		for fi, f := range p.f2s {
			if pr.recvN == 0 {
				continue
			}
			c.RecvInto(pr.rank, tagF2Base+fi, buf[:pr.recvN])
			n := 0
			for _, rc := range pr.recvRects {
				n += f.Unpack(rc, buf[n:])
			}
		}
	}
	s1 := c.Stats()
	e.stats.Finishes++
	e.stats.ExposedSec += s1.CommTime[comm.CatStencil] - t0
	e.stats.HiddenSec += s1.HiddenTime[comm.CatStencil] - h0
}

// Exchange performs a full blocking halo exchange of the given fields.
func (e *Exchanger) Exchange(f3s []*field.F3, f2s []*field.F2) {
	//cadyvet:quiesce Exchange is the deliberately blocking convenience form for bootstrap fills and quiesced reference paths
	e.Begin(f3s, f2s).Finish()
}

// Tags: the exchanger owns the tag ranges [tagF3Base, …) and [tagF2Base, …).
// Exchanges are issued in identical program order on all ranks and messages
// between one (src, dst, tag) pair are FIFO, so reusing tags across
// exchanges is safe.
const (
	tagF3Base = 1 << 20
	tagF2Base = 1 << 21
)

// ExchangeDepths returns the exchange depths.
func (e *Exchanger) ExchangeDepths() Depths { return e.d }

// PeerCount returns the number of ranks this rank exchanges 3-D halos with
// (the paper's "eight neighbors" in the decomposed plane, for shallow
// depths).
func (e *Exchanger) PeerCount() int { return len(e.peers) }
