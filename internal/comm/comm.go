package comm

import (
	"fmt"
	"sync"
)

// World owns the mailboxes and statistics of a set of ranks. Create one with
// NewWorld, then either call Run (which spawns one goroutine per rank) or
// obtain the per-rank handles with Rank and schedule them yourself.
type World struct {
	size   int
	model  NetModel
	eps    []*endpoint
	comms  []*Comm
	faults *Faults // nil = fault-free (the default); see SetFaults
}

// NewWorld creates a world of p ranks with the given cost model.
func NewWorld(p int, model NetModel) *World {
	if p <= 0 {
		panic(fmt.Sprintf("comm: world size %d must be positive", p))
	}
	if model.ComputeRate <= 0 {
		model.ComputeRate = 1
	}
	w := &World{size: p, model: model}
	w.eps = make([]*endpoint, p)
	w.comms = make([]*Comm, p)
	for r := 0; r < p; r++ {
		w.eps[r] = newEndpoint()
		w.comms[r] = &Comm{
			world: w,
			id:    worldCommID,
			group: nil, // nil group means identity mapping
			rank:  r,
			size:  p,
			stats: newStats(),
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Rank returns the world communicator handle for rank r.
func (w *World) Rank(r int) *Comm { return w.comms[r] }

// Run executes fn on every rank concurrently and returns when all ranks have
// finished. A panic on any rank is re-raised on the caller as a RankPanic
// (preserving the original value) after the other ranks have been given the
// chance to finish or deadlock-free ranks have drained; to keep failures
// debuggable the first panic wins, except that an injected-fault panic (a
// value with an InjectedFault method, such as dycore.RankFailure) displaces
// the receive-poison panics it cascades into.
func (w *World) Run(fn func(c *Comm)) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstPanic any
	var firstInjected bool
	wg.Add(w.size)
	for r := 0; r < w.size; r++ {
		go func(c *Comm) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					_, injected := p.(injectedFault)
					mu.Lock()
					if firstPanic == nil || (injected && !firstInjected) {
						firstPanic = RankPanic{Rank: c.rank, Val: p}
						firstInjected = injected
					}
					mu.Unlock()
					// Unblock peers that may be waiting on this rank.
					w.poison()
				}
			}()
			fn(c)
		}(w.comms[r])
	}
	wg.Wait()
	if firstPanic != nil {
		panic(firstPanic)
	}
}

// poison wakes every endpoint with a failure marker so ranks blocked in Recv
// panic instead of deadlocking after a peer died.
func (w *World) poison() {
	for _, ep := range w.eps {
		ep.poison()
	}
}

// Stats returns a snapshot aggregate of all ranks' statistics: per-category
// simulated communication time is the maximum over ranks (critical-path
// estimate), counters are summed, and SimTime is the maximum clock.
func (w *World) Stats() Aggregate {
	return aggregate(w.comms)
}

// RankStats returns a copy of rank r's statistics.
func (w *World) RankStats(r int) Stats { return w.comms[r].stats.snapshot() }

// Model returns the world's cost model.
func (w *World) Model() NetModel { return w.model }

// Comm is one rank's handle on a communicator. The world communicator spans
// all ranks; Split derives sub-communicators. A Comm is confined to its
// rank's goroutine (it is not safe for concurrent use, matching MPI).
type Comm struct {
	world *World
	id    uint64
	group []int // group[i] = world rank of communicator rank i; nil = identity
	rank  int   // rank within this communicator
	size  int
	stats *Stats

	splitSeq uint64 // per-communicator split counter (same on all members)
}

const worldCommID uint64 = 1

// Rank returns this rank's index within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.size }

// worldRank translates a communicator rank to a world rank.
func (c *Comm) worldRank(r int) int {
	if r < 0 || r >= c.size {
		panic(fmt.Sprintf("comm: rank %d outside communicator of size %d", r, c.size))
	}
	if c.group == nil {
		return r
	}
	return c.group[r]
}

// myWorldRank returns this rank's world rank.
func (c *Comm) myWorldRank() int {
	if c.group == nil {
		return c.rank
	}
	return c.group[c.rank]
}

// Compute advances this rank's simulated clock by work/ComputeRate and
// accounts it as computation time. work is measured in point-updates (one
// stencil update of one mesh point ≈ 1).
func (c *Comm) Compute(work float64) {
	dt := work / c.world.model.ComputeRate
	if f := c.world.faults; f != nil {
		// Straggler injection: scale the rank's effective compute rate.
		// (Scale 1 is a bitwise no-op, so an inert profile changes nothing.)
		dt *= f.computeScale(c.myWorldRank())
	}
	if c.stats.trace != nil {
		//cadyvet:allow tracing is opt-in (RunOpts.Traced); the trace buffer never grows on the steady-state benchmark path
		c.stats.trace.record(Event{Rank: c.stats.traceRank, Kind: EvCompute, T0: c.stats.Clock, T1: c.stats.Clock + dt})
	}
	c.stats.Clock += dt
	c.stats.CompTime += dt
}

// Clock returns the rank's current simulated time.
func (c *Comm) Clock() float64 { return c.stats.Clock }

// CompTime returns the rank's accumulated simulated compute seconds (Compute
// calls since the last ResetStats). Unlike Clock it excludes communication
// stalls, so comparing it across ranks isolates compute imbalance — the
// signal a straggler leaves even when collectives keep the clocks in step.
func (c *Comm) CompTime() float64 { return c.stats.CompTime }

// Stats returns a snapshot of this rank's statistics.
func (c *Comm) Stats() Stats { return c.stats.snapshot() }

// ResetStats zeroes this rank's counters and simulated clock (the current
// accounting category is preserved). Drivers call it after topology setup so
// one-time initialization collectives (communicator splits, bootstrap
// exchanges) are not billed to the measured run.
func (c *Comm) ResetStats() {
	cat := c.stats.cat
	tr, trank := c.stats.trace, c.stats.traceRank
	*c.stats = Stats{cat: cat, trace: tr, traceRank: trank}
	if tr != nil {
		tr.perRank[trank] = nil // drop pre-reset events (setup phase)
	}
}

// SetCategory sets the accounting category for subsequent communication
// costs and returns the previous category, enabling
//
//	prev := c.SetCategory(comm.CatStencil)
//	defer c.SetCategory(prev)
func (c *Comm) SetCategory(cat Category) Category {
	prev := c.stats.cat
	c.stats.cat = cat
	return prev
}
