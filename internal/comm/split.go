package comm

import (
	"hash/fnv"
	"sort"
)

// Split partitions the communicator by color (like MPI_Comm_split): ranks
// passing the same color form a new communicator, ordered by key and then by
// parent rank. It is a collective operation — every rank of c must call it
// in the same program order. A negative color returns nil (the rank joins no
// new communicator), mirroring MPI_UNDEFINED.
func (c *Comm) Split(color, key int) *Comm {
	c.stats.countColl()
	seq := c.splitSeq
	c.splitSeq++

	// Gather (color, key) from all ranks.
	send := []float64{float64(color), float64(key)}
	recv := make([]float64, 2*c.size)
	c.Allgather(send, recv)

	if color < 0 {
		return nil
	}

	type member struct{ color, key, rank int }
	var group []member
	for r := 0; r < c.size; r++ {
		col := int(recv[2*r])
		if col == color {
			group = append(group, member{col, int(recv[2*r+1]), r})
		}
	}
	sort.Slice(group, func(a, b int) bool {
		if group[a].key != group[b].key {
			return group[a].key < group[b].key
		}
		return group[a].rank < group[b].rank
	})

	worldRanks := make([]int, len(group))
	myNewRank := -1
	for i, m := range group {
		worldRanks[i] = c.worldRank(m.rank)
		if m.rank == c.rank {
			myNewRank = i
		}
	}

	return &Comm{
		world: c.world,
		id:    deriveCommID(c.id, seq, color),
		group: worldRanks,
		rank:  myNewRank,
		size:  len(group),
		stats: c.stats, // sub-communicators share the rank's accounting
	}
}

// deriveCommID produces the identifier of a derived communicator. All
// members compute the same id because (parent id, split sequence, color)
// agree; distinct sibling communicators differ in color.
func deriveCommID(parent, seq uint64, color int) uint64 {
	h := fnv.New64a()
	var buf [24]byte
	put64 := func(off int, v uint64) {
		for b := 0; b < 8; b++ {
			buf[off+b] = byte(v >> (8 * b))
		}
	}
	put64(0, parent)
	put64(8, seq)
	put64(16, uint64(int64(color)))
	h.Write(buf[:])
	id := h.Sum64()
	if id <= worldCommID {
		id = worldCommID + 1
	}
	return id
}
