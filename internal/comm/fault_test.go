package comm

import (
	"testing"
)

// faultWorkload is a small mixed compute/p2p/collective program whose
// statistics are sensitive to any clock perturbation.
func faultWorkload(c *Comm) {
	c.Compute(1000)
	next := (c.Rank() + 1) % c.Size()
	prev := (c.Rank() + c.Size() - 1) % c.Size()
	for i := 0; i < 5; i++ {
		c.Send(next, i, []float64{float64(i), 2, 3})
		c.Recv(prev, i)
		c.Compute(300)
	}
	c.Allreduce([]float64{float64(c.Rank())}, Sum)
}

func runFaultWorkload(t *testing.T, f *Faults) []Stats {
	t.Helper()
	w := NewWorld(4, TianheLike())
	if f != nil {
		w.SetFaults(f)
	}
	w.Run(faultWorkload)
	out := make([]Stats, w.Size())
	for r := range out {
		out[r] = w.RankStats(r)
	}
	return out
}

// TestInertFaultsBitwiseIdentical is the zero-fault-path guarantee: both a
// nil profile and an installed-but-inert profile leave every rank's clock
// and counters bitwise identical to a fault-free run.
func TestInertFaultsBitwiseIdentical(t *testing.T) {
	base := runFaultWorkload(t, nil)
	for name, f := range map[string]*Faults{
		"inert profile": NewFaults(4, 42),
		"nil profile":   nil,
	} {
		got := runFaultWorkload(t, f)
		for r := range base {
			if got[r] != base[r] {
				t.Errorf("%s: rank %d stats differ:\n got %+v\nwant %+v", name, r, got[r], base[r])
			}
		}
	}
}

func TestStragglerScalesComputeExactly(t *testing.T) {
	base := runFaultWorkload(t, nil)
	f := NewFaults(4, 1)
	f.Rank(2).ComputeScale = 2
	got := runFaultWorkload(t, f)
	if got[2].CompTime != 2*base[2].CompTime {
		t.Errorf("straggler comp time %g, want exactly 2x %g", got[2].CompTime, base[2].CompTime)
	}
	// The other ranks' own compute is untouched (their clocks may stall
	// longer waiting on the straggler, but CompTime is local work only).
	for _, r := range []int{0, 1, 3} {
		if got[r].CompTime != base[r].CompTime {
			t.Errorf("rank %d comp time %g changed by a peer's straggling (want %g)", r, got[r].CompTime, base[r].CompTime)
		}
	}
	if got[2].Clock <= base[2].Clock {
		t.Errorf("straggler clock %g did not advance past fault-free %g", got[2].Clock, base[2].Clock)
	}
}

func TestJitterDelaysReceivers(t *testing.T) {
	f := NewFaults(4, 7)
	for r := 0; r < 4; r++ {
		f.Rank(r).JitterProb = 1
		f.Rank(r).JitterMax = 1e-3
	}
	base := runFaultWorkload(t, nil)
	got := runFaultWorkload(t, f)
	slower := 0
	for r := range got {
		if got[r].Clock > base[r].Clock {
			slower++
		}
		if got[r].CompTime != base[r].CompTime {
			t.Errorf("rank %d comp time changed by jitter", r)
		}
	}
	if slower == 0 {
		t.Errorf("always-on jitter did not slow any rank")
	}
}

func TestSendErrorsChargeSender(t *testing.T) {
	f := NewFaults(4, 3)
	f.Rank(1).SendErrProb = 0.9
	f.Rank(1).SendErrCost = 1e-3
	base := runFaultWorkload(t, nil)
	got := runFaultWorkload(t, f)
	d := got[1].TotalCommTime()
	b := base[1].TotalCommTime()
	if d <= b {
		t.Errorf("rank 1 comm time %g with p=0.9 send errors, want > fault-free %g", d, b)
	}
}

// TestFaultsDeterministic: identical plans inject identically regardless of
// scheduling — per-rank streams are consumed in program order only.
func TestFaultsDeterministic(t *testing.T) {
	mk := func() *Faults {
		f := NewFaults(4, 99)
		for r := 0; r < 4; r++ {
			f.Rank(r).JitterProb = 0.5
			f.Rank(r).JitterMax = 1e-3
			f.Rank(r).SendErrProb = 0.3
			f.Rank(r).SendErrCost = 1e-4
		}
		f.Rank(0).ComputeScale = 1.5
		return f
	}
	a := runFaultWorkload(t, mk())
	for trial := 0; trial < 3; trial++ {
		b := runFaultWorkload(t, mk())
		for r := range a {
			if a[r] != b[r] {
				t.Fatalf("trial %d: rank %d stats differ:\n got %+v\nwant %+v", trial, r, b[r], a[r])
			}
		}
	}
}

func TestSetFaultsSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetFaults with wrong size did not panic")
		}
	}()
	NewWorld(2, Zero()).SetFaults(NewFaults(3, 0))
}

// injectedTestFault is a stand-in for dycore.RankFailure.
type injectedTestFault struct{}

func (injectedTestFault) InjectedFault() {}
func (injectedTestFault) Error() string  { return "injected test fault" }

// TestRunPrefersInjectedPanic: when an injected death cascades into
// receive-poison panics on surviving ranks, Run reports the injected value.
func TestRunPrefersInjectedPanic(t *testing.T) {
	w := NewWorld(3, Zero())
	defer func() {
		p := recover()
		rp, ok := p.(RankPanic)
		if !ok {
			t.Fatalf("recovered %T, want RankPanic", p)
		}
		if _, ok := rp.Val.(injectedTestFault); !ok {
			t.Fatalf("RankPanic.Val = %v (%T), want the injected fault", rp.Val, rp.Val)
		}
		if rp.Rank != 1 {
			t.Fatalf("RankPanic.Rank = %d, want 1", rp.Rank)
		}
	}()
	w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic(injectedTestFault{})
		}
		// Peers block on a message the dead rank will never send; the
		// poison cascade must lose to the injected panic above.
		c.Recv(1, 0)
	})
	t.Fatal("Run returned without panicking")
}
