package comm

import "fmt"

// Op is a pointwise reduction kernel: dst[i] = dst[i] ⊕ src[i].
type Op func(dst, src []float64)

// Sum is pointwise addition.
func Sum(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

// Max is the pointwise maximum.
func Max(dst, src []float64) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// Min is the pointwise minimum.
func Min(dst, src []float64) {
	for i, v := range src {
		if v < dst[i] {
			dst[i] = v
		}
	}
}

// Collective tags live in their own negative tag space derived from a
// per-communicator sequence number; user point-to-point tags must be ≥ 0.
// All ranks of a communicator execute the same collectives in the same
// program order, so sequence numbers agree.
func (c *Comm) nextCollTag() int {
	c.splitSeq++ // reuse the counter: it only needs to advance identically on all ranks
	return -int(c.splitSeq)
}

// Barrier blocks until every rank of the communicator has entered it
// (dissemination algorithm, ⌈log₂ p⌉ rounds).
func (c *Comm) Barrier() {
	c.stats.countColl()
	tag := c.nextCollTag()
	if c.size == 1 {
		return
	}
	token := []float64{0}
	for dist := 1; dist < c.size; dist *= 2 {
		dst := (c.rank + dist) % c.size
		src := (c.rank - dist%c.size + c.size) % c.size
		c.Send(dst, tag, token)
		c.Recv(src, tag)
	}
}

// Bcast broadcasts data from root to every rank (binomial tree). Every rank
// must pass a slice of identical length; non-root contents are overwritten.
func (c *Comm) Bcast(root int, data []float64) {
	c.stats.countColl()
	tag := c.nextCollTag()
	if c.size == 1 {
		return
	}
	// Rotate so the root is virtual rank 0.
	vr := (c.rank - root + c.size) % c.size
	// Receive from parent.
	if vr != 0 {
		// parent: clear the lowest set bit
		parent := (vr & (vr - 1))
		c.RecvInto((parent+root)%c.size, tag, data)
	}
	// Forward to children: vr + 2^k for 2^k > lowest set bit range.
	for dist := 1; dist < c.size; dist *= 2 {
		if vr&(dist-1) == 0 && vr&dist == 0 {
			child := vr + dist
			if child < c.size {
				c.Send((child+root)%c.size, tag, data)
			}
		}
	}
}

// Allreduce reduces data pointwise across all ranks with op and leaves the
// result in data on every rank, selecting the algorithm like MPICH (Thakur
// et al. 2005, the paper's reference [19]): recursive doubling for short
// vectors (latency-bound: ⌈log₂ p⌉ rounds) and ring reduce-scatter +
// allgather for long ones (bandwidth-bound: 2·(p−1)·n/p values per rank,
// attaining the lower bound of the paper's Theorem 4.2).
//
// Both algorithms produce the same reduction order only for commutative,
// exactly-associative ops; with floating-point addition the results can
// differ in the last bits between the two regimes. The dynamical core's
// vertical summation always uses vectors far above the threshold, so its
// results do not depend on p through this choice.
func (c *Comm) Allreduce(data []float64, op Op) {
	if len(data) <= shortAllreduce {
		c.AllreduceRD(data, op)
		return
	}
	c.AllreduceRing(data, op)
}

// shortAllreduce is the message length (values) below which recursive
// doubling beats the ring (MPICH's default crossover is 2 KiB).
const shortAllreduce = 256

// AllreduceRD is allreduce by recursive doubling: ⌈log₂ p⌉ exchange rounds
// of the full vector. Optimal in rounds, not in volume. Non-power-of-two
// sizes fold the excess ranks onto the low ranks first (like MPICH).
func (c *Comm) AllreduceRD(data []float64, op Op) {
	c.stats.countColl()
	tag := c.nextCollTag()
	p := c.size
	if p == 1 || len(data) == 0 {
		return
	}
	// Largest power of two ≤ p.
	pof2 := 1
	for pof2*2 <= p {
		pof2 *= 2
	}
	rem := p - pof2
	// Fold: ranks ≥ pof2 send their data to rank − pof2 and sit out.
	newRank := -1
	switch {
	case c.rank >= pof2:
		c.Send(c.rank-pof2, tag, data)
	case c.rank < rem:
		in := c.Recv(c.rank+pof2, tag)
		op(data, in)
		newRank = c.rank
	default:
		newRank = c.rank
	}
	if newRank >= 0 {
		for dist := 1; dist < pof2; dist *= 2 {
			partner := newRank ^ dist
			c.Send(partner, tag, data)
			in := c.Recv(partner, tag)
			op(data, in)
		}
	}
	// Unfold: the folded ranks receive the result.
	if c.rank >= pof2 {
		c.RecvInto(c.rank-pof2, tag, data)
	} else if c.rank < rem {
		c.Send(c.rank+pof2, tag, data)
	}
}

// AllreduceRing is the ring reduce-scatter + allgather allreduce.
func (c *Comm) AllreduceRing(data []float64, op Op) {
	c.stats.countColl()
	tag := c.nextCollTag()
	p := c.size
	if p == 1 || len(data) == 0 {
		return
	}
	n := len(data)
	bound := func(r int) int { return r * n / p }
	chunk := func(r int) []float64 {
		r = ((r % p) + p) % p
		return data[bound(r):bound(r+1)]
	}
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p

	// Reduce-scatter: after step s, this rank holds the partial reduction of
	// chunk (rank − s − 1).
	for s := 0; s < p-1; s++ {
		c.Send(right, tag, chunk(c.rank-s))
		in := c.Recv(left, tag)
		op(chunk(c.rank-s-1), in)
	}
	// Allgather of the fully reduced chunks: rank r now owns chunk r+1.
	for s := 0; s < p-1; s++ {
		c.Send(right, tag, chunk(c.rank+1-s+p))
		in := c.Recv(left, tag)
		copy(chunk(c.rank-s+p), in)
	}
}

// Allgather concatenates each rank's equal-length send buffer into recv,
// ordered by rank (recv length must be p·len(send)). Ring algorithm:
// p−1 steps of len(send) values each.
func (c *Comm) Allgather(send, recv []float64) {
	c.stats.countColl()
	tag := c.nextCollTag()
	p := c.size
	n := len(send)
	if len(recv) != p*n {
		panic(fmt.Sprintf("comm: Allgather recv length %d != %d ranks x %d", len(recv), p, n))
	}
	copy(recv[c.rank*n:(c.rank+1)*n], send)
	if p == 1 || n == 0 {
		return
	}
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	// Pass blocks around the ring; at step s forward the block that arrived
	// at step s−1 (initially our own).
	blk := (c.rank) % p
	for s := 0; s < p-1; s++ {
		c.Send(right, tag, recv[blk*n:(blk+1)*n])
		blk = (blk - 1 + p) % p
		c.RecvInto(left, tag, recv[blk*n:(blk+1)*n])
	}
}

// Exscan computes the exclusive prefix reduction: rank r receives
// op(data₀, …, data_{r−1}); rank 0's buffer is zeroed. Linear pipeline,
// which is optimal in volume for the short z communicators it is used on.
func (c *Comm) Exscan(data []float64, op Op) {
	c.stats.countColl()
	tag := c.nextCollTag()
	p := c.size
	if p == 1 {
		zero(data)
		return
	}
	switch c.rank {
	case 0:
		mine := make([]float64, len(data))
		copy(mine, data)
		c.Send(1, tag, mine)
		zero(data)
	default:
		prefix := c.Recv(c.rank-1, tag)
		if c.rank < p-1 {
			next := make([]float64, len(data))
			copy(next, prefix)
			op(next, data)
			c.Send(c.rank+1, tag, next)
		}
		copy(data, prefix)
	}
}

// Alltoall exchanges send[r] (equal lengths) with every rank r; recv[r]
// receives the block rank r sent to this rank. Pairwise-exchange algorithm,
// p−1 rounds. send[c.Rank()] is copied locally.
func (c *Comm) Alltoall(send, recv [][]float64) {
	c.stats.countColl()
	tag := c.nextCollTag()
	p := c.size
	if len(send) != p || len(recv) != p {
		panic(fmt.Sprintf("comm: Alltoall needs %d blocks, got send=%d recv=%d", p, len(send), len(recv)))
	}
	copy(recv[c.rank], send[c.rank])
	for s := 1; s < p; s++ {
		dst := (c.rank + s) % p
		src := (c.rank - s + p) % p
		c.Send(dst, tag, send[dst])
		c.RecvInto(src, tag, recv[src])
	}
}

// Reduce reduces pointwise onto root (binomial tree). Non-root buffers are
// clobbered with partial reductions.
func (c *Comm) Reduce(root int, data []float64, op Op) {
	c.stats.countColl()
	tag := c.nextCollTag()
	if c.size == 1 {
		return
	}
	vr := (c.rank - root + c.size) % c.size
	dist := 1
	for dist < c.size {
		if vr&dist != 0 {
			parent := vr - dist
			c.Send((parent+root)%c.size, tag, data)
			return
		}
		child := vr + dist
		if child < c.size {
			in := c.Recv((child+root)%c.size, tag)
			op(data, in)
		}
		dist *= 2
	}
}

// AllreduceScalar is Allreduce for a single value.
func (c *Comm) AllreduceScalar(v float64, op Op) float64 {
	buf := []float64{v}
	c.Allreduce(buf, op)
	return buf[0]
}

func zero(s []float64) {
	for i := range s {
		s[i] = 0
	}
}
