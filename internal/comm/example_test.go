package comm_test

import (
	"fmt"
	"sort"
	"sync"

	"cadycore/internal/comm"
)

// Example shows the rank-SPMD programming model: goroutine ranks exchange
// point-to-point messages and reduce with a collective, exactly like an MPI
// program would.
func Example() {
	w := comm.NewWorld(4, comm.Zero())
	var mu sync.Mutex
	var lines []string
	w.Run(func(c *comm.Comm) {
		// Ring shift: send my rank to the right, receive from the left.
		right := (c.Rank() + 1) % c.Size()
		left := (c.Rank() - 1 + c.Size()) % c.Size()
		c.Send(right, 0, []float64{float64(c.Rank())})
		from := c.Recv(left, 0)

		// Global sum of ranks: 0+1+2+3 = 6.
		total := c.AllreduceScalar(float64(c.Rank()), comm.Sum)

		mu.Lock()
		lines = append(lines, fmt.Sprintf("rank %d got %v from the left; sum = %v",
			c.Rank(), from[0], total))
		mu.Unlock()
	})
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	// Output:
	// rank 0 got 3 from the left; sum = 6
	// rank 1 got 0 from the left; sum = 6
	// rank 2 got 1 from the left; sum = 6
	// rank 3 got 2 from the left; sum = 6
}

// ExampleWorld_Stats shows the communication accounting: counters and
// simulated times emerge from the messages the program actually sends.
func ExampleWorld_Stats() {
	w := comm.NewWorld(2, comm.NetModel{
		Latency: 1e-3, ByteTime: 0, SendOverhead: 0, ComputeRate: 1,
	})
	w.Run(func(c *comm.Comm) {
		c.SetCategory(comm.CatStencil)
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 125)) // 1000 bytes
		} else {
			c.Recv(0, 0)
		}
	})
	a := w.Stats()
	fmt.Printf("messages: %d, bytes: %d\n", a.MsgsSent, a.BytesSent)
	fmt.Printf("stencil time at least one latency: %v\n", a.StencilTime() >= 1e-3)
	// Output:
	// messages: 1, bytes: 1000
	// stencil time at least one latency: true
}
