package comm

// Category classifies communication for the paper's per-figure accounting:
// Figure 6 plots collective time (z summation + x Fourier filtering) and
// Figure 7 plots the neighbor-exchange time of the stencil computations.
type Category int

const (
	// CatOther is the default category.
	CatOther Category = iota
	// CatCollectiveZ is the vertical summation collective of Ĉ.
	CatCollectiveZ
	// CatCollectiveX is the distributed-FFT communication of F̃.
	CatCollectiveX
	// CatStencil is halo exchange for the stencil operators Â, L̃, S̃.
	CatStencil
	numCategories
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CatCollectiveZ:
		return "collective-z"
	case CatCollectiveX:
		return "collective-x"
	case CatStencil:
		return "stencil"
	default:
		return "other"
	}
}

// Categories lists all categories in display order.
func Categories() []Category {
	return []Category{CatCollectiveZ, CatCollectiveX, CatStencil, CatOther}
}

// Stats accumulates one rank's communication/computation accounting.
type Stats struct {
	// BytesSent and MsgsSent count outgoing point-to-point traffic
	// (collectives are built on point-to-point, so they are included).
	BytesSent int64
	MsgsSent  int64
	// BytesByCat / MsgsByCat break the same counters down by category.
	BytesByCat [numCategories]int64
	MsgsByCat  [numCategories]int64
	// Collectives counts collective operations entered.
	Collectives int64
	// CollByCat breaks Collectives down by category, so a z summation
	// (CatCollectiveZ), a filter transpose (CatCollectiveX) and an
	// uncategorized barrier are distinguishable in post-run accounting.
	CollByCat [numCategories]int64
	// CommTime is simulated seconds spent in communication per category
	// (send/receive overheads plus stall time waiting for messages).
	CommTime [numCategories]float64
	// HiddenTime is simulated seconds of message flight time that did NOT
	// stall this rank: for every received message, the part of
	// availAt−sentAt the receiver had already covered with its own work by
	// the time it drained the message. It measures overlap; it does not
	// advance the clock.
	HiddenTime [numCategories]float64
	// CompTime is simulated seconds of computation (Compute calls).
	CompTime float64
	// Clock is the rank's simulated time.
	Clock float64

	cat Category

	trace     *Recorder
	traceRank int
}

func newStats() *Stats { return &Stats{} }

func (s *Stats) snapshot() Stats { return *s }

// TotalCommTime returns the sum of CommTime over all categories.
func (s *Stats) TotalCommTime() float64 {
	t := 0.0
	for _, v := range s.CommTime {
		t += v
	}
	return t
}

// addCommTime charges dt seconds of communication to the current category
// and advances the clock.
func (s *Stats) addCommTime(dt float64) {
	if s.trace != nil {
		//cadyvet:allow tracing is opt-in (RunOpts.Traced); the trace buffer never grows on the steady-state benchmark path
		s.trace.record(Event{Rank: s.traceRank, Kind: EvComm, Cat: s.cat, T0: s.Clock, T1: s.Clock + dt})
	}
	s.Clock += dt
	s.CommTime[s.cat] += dt
}

// TotalHiddenTime returns the sum of HiddenTime over all categories.
func (s *Stats) TotalHiddenTime() float64 {
	t := 0.0
	for _, v := range s.HiddenTime {
		t += v
	}
	return t
}

// addHiddenTime credits dt seconds of overlapped (hidden) flight time to the
// current category. The clock does not move: hidden time is by definition
// time the rank spent doing something else.
func (s *Stats) addHiddenTime(dt float64) {
	s.HiddenTime[s.cat] += dt
}

// countColl records entry into a collective operation under the current
// category.
func (s *Stats) countColl() {
	s.Collectives++
	s.CollByCat[s.cat]++
}

// countSend records an outgoing message of the given payload size.
func (s *Stats) countSend(bytes int) {
	s.BytesSent += int64(bytes)
	s.MsgsSent++
	s.BytesByCat[s.cat] += int64(bytes)
	s.MsgsByCat[s.cat]++
}

// Aggregate summarizes a whole world run: counter totals across ranks and
// critical-path (max over ranks) times.
type Aggregate struct {
	Ranks       int
	BytesSent   int64
	MsgsSent    int64
	Collectives int64
	// BytesByCat/MsgsByCat/CollByCat are summed over ranks.
	BytesByCat [numCategories]int64
	MsgsByCat  [numCategories]int64
	CollByCat  [numCategories]int64
	// CommTimeMax[cat] is the maximum over ranks of per-category simulated
	// communication time; CompTimeMax and SimTime likewise.
	CommTimeMax [numCategories]float64
	// HiddenTimeMax[cat] is the maximum over ranks of per-category hidden
	// (overlapped) flight time — seconds of communication the busiest rank
	// covered with its own compute instead of stalling.
	HiddenTimeMax [numCategories]float64
	CompTimeMax   float64
	SimTime       float64
	// RankClock and RankComp are the per-rank simulated clock and compute
	// seconds in rank order — the telemetry the load-rebalancing runtime
	// consumes. Under a straggler the clocks stay nearly uniform (peers
	// stall at collectives), so RankComp is the imbalance observable.
	RankClock []float64
	RankComp  []float64
}

// CommTime returns the critical-path communication time for a category.
func (a Aggregate) CommTime(cat Category) float64 { return a.CommTimeMax[cat] }

// TotalCommTime returns the summed critical-path communication time over
// categories (an upper estimate of total communication time).
func (a Aggregate) TotalCommTime() float64 {
	t := 0.0
	for _, v := range a.CommTimeMax {
		t += v
	}
	return t
}

// HiddenTime returns the critical-path hidden (overlapped) communication
// time for a category.
func (a Aggregate) HiddenTime(cat Category) float64 { return a.HiddenTimeMax[cat] }

// TotalHiddenTime returns the summed critical-path hidden time over
// categories.
func (a Aggregate) TotalHiddenTime() float64 {
	t := 0.0
	for _, v := range a.HiddenTimeMax {
		t += v
	}
	return t
}

// OverlapFraction returns hidden/(hidden+exposed) over all categories: the
// share of communication the critical-path ranks covered with compute. 0
// when no communication happened.
func (a Aggregate) OverlapFraction() float64 {
	h, e := a.TotalHiddenTime(), a.TotalCommTime()
	if h+e <= 0 {
		return 0
	}
	return h / (h + e)
}

// CollectiveTime returns the combined z- and x-collective time (Figure 6's
// quantity).
func (a Aggregate) CollectiveTime() float64 {
	return a.CommTimeMax[CatCollectiveZ] + a.CommTimeMax[CatCollectiveX]
}

// StencilTime returns the halo-exchange time (Figure 7's quantity).
func (a Aggregate) StencilTime() float64 { return a.CommTimeMax[CatStencil] }

// Per-kind traffic accessors: the three communication kinds the cost model
// distinguishes are the vertical summation collective (csum), the Fourier
// filter collective, and the stencil halo exchange.

// CSumBytes returns bytes sent inside z-summation collectives.
func (a Aggregate) CSumBytes() int64 { return a.BytesByCat[CatCollectiveZ] }

// FilterBytes returns bytes sent inside filter (distributed-FFT) collectives.
func (a Aggregate) FilterBytes() int64 { return a.BytesByCat[CatCollectiveX] }

// ExchangeBytes returns bytes sent as stencil halo exchange.
func (a Aggregate) ExchangeBytes() int64 { return a.BytesByCat[CatStencil] }

// CSumOps returns the number of z-summation collective operations entered.
func (a Aggregate) CSumOps() int64 { return a.CollByCat[CatCollectiveZ] }

// FilterOps returns the number of filter collective operations entered.
func (a Aggregate) FilterOps() int64 { return a.CollByCat[CatCollectiveX] }

// ExchangeMsgs returns the number of stencil halo-exchange messages sent.
func (a Aggregate) ExchangeMsgs() int64 { return a.MsgsByCat[CatStencil] }

// MaxRankComp returns the largest per-rank compute time, 0 when the per-rank
// telemetry is absent.
func (a Aggregate) MaxRankComp() float64 {
	m := 0.0
	for _, v := range a.RankComp {
		if v > m {
			m = v
		}
	}
	return m
}

// MinRankComp returns the smallest per-rank compute time, 0 when the
// per-rank telemetry is absent.
func (a Aggregate) MinRankComp() float64 {
	if len(a.RankComp) == 0 {
		return 0
	}
	m := a.RankComp[0]
	for _, v := range a.RankComp[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// CompImbalance returns the max/min ratio of per-rank compute time — 1 for a
// perfectly balanced run, 0 when the telemetry is absent or degenerate.
func (a Aggregate) CompImbalance() float64 {
	min := a.MinRankComp()
	if min <= 0 {
		return 0
	}
	return a.MaxRankComp() / min
}

// MergeAggregate folds a later execution segment b into the cumulative a:
// counters and times sum (segments run back to back), Ranks follows the
// latest segment. Per-rank telemetry sums elementwise when both segments ran
// the same rank count; a rank-count change (a migration to a different
// factorization) restarts it from the new segment.
func MergeAggregate(a, b Aggregate) Aggregate {
	if a.Ranks == 0 {
		return b
	}
	out := a
	out.Ranks = b.Ranks
	out.BytesSent += b.BytesSent
	out.MsgsSent += b.MsgsSent
	out.Collectives += b.Collectives
	for i := range out.BytesByCat {
		out.BytesByCat[i] += b.BytesByCat[i]
		out.MsgsByCat[i] += b.MsgsByCat[i]
		out.CollByCat[i] += b.CollByCat[i]
		out.CommTimeMax[i] += b.CommTimeMax[i]
		out.HiddenTimeMax[i] += b.HiddenTimeMax[i]
	}
	out.CompTimeMax += b.CompTimeMax
	out.SimTime += b.SimTime
	out.RankClock = mergeRankSeries(a.RankClock, b.RankClock)
	out.RankComp = mergeRankSeries(a.RankComp, b.RankComp)
	return out
}

// mergeRankSeries sums two per-rank series elementwise; mismatched lengths
// (a migration changed the rank count) keep only the newer one.
func mergeRankSeries(a, b []float64) []float64 {
	if len(a) != len(b) {
		if b == nil {
			return a
		}
		out := make([]float64, len(b))
		copy(out, b)
		return out
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

func aggregate(comms []*Comm) Aggregate {
	a := Aggregate{
		Ranks:     len(comms),
		RankClock: make([]float64, len(comms)),
		RankComp:  make([]float64, len(comms)),
	}
	for r, c := range comms {
		s := c.stats
		a.RankClock[r] = s.Clock
		a.RankComp[r] = s.CompTime
		a.BytesSent += s.BytesSent
		a.MsgsSent += s.MsgsSent
		a.Collectives += s.Collectives
		for i := 0; i < int(numCategories); i++ {
			a.BytesByCat[i] += s.BytesByCat[i]
			a.MsgsByCat[i] += s.MsgsByCat[i]
			a.CollByCat[i] += s.CollByCat[i]
			if s.CommTime[i] > a.CommTimeMax[i] {
				a.CommTimeMax[i] = s.CommTime[i]
			}
			if s.HiddenTime[i] > a.HiddenTimeMax[i] {
				a.HiddenTimeMax[i] = s.HiddenTime[i]
			}
		}
		if s.CompTime > a.CompTimeMax {
			a.CompTimeMax = s.CompTime
		}
		if s.Clock > a.SimTime {
			a.SimTime = s.Clock
		}
	}
	return a
}
