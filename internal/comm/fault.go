package comm

import "fmt"

// Faults is the communication-layer half of a fault-injection profile:
// per-rank straggler scaling of the simulated compute rate, seeded message
// delay jitter, and transient send errors charged to the sender's clock.
// It is deliberately a concrete type with concrete methods — the hot paths
// (Compute, sendInternal) stay statically analyzable by cadyvet's allocfree
// checker, and a nil *Faults on the World leaves those paths bitwise
// identical to a fault-free build.
//
// All draws come from per-rank splitmix64 streams consumed in each rank's
// own program order, so injected faults are deterministic: they depend only
// on the seed and the rank's sequence of operations, never on goroutine
// scheduling. The planned, JSON-specified front end is internal/fault.
type Faults struct {
	ranks []RankFaults
}

// RankFaults holds one rank's injection parameters. The zero value of every
// field (with ComputeScale normalized to 1 by NewFaults) injects nothing.
type RankFaults struct {
	// ComputeScale >= 1 multiplies the rank's simulated compute time — a
	// straggler rank is one whose effective ComputeRate is divided by this.
	ComputeScale float64
	// JitterProb is the per-message probability of delay jitter; a jittered
	// message's availability is pushed back by U(0, JitterMax) seconds.
	JitterProb float64
	JitterMax  float64
	// SendErrProb is the per-message probability of a transient send error;
	// each error costs the sender SendErrCost seconds (the simulated
	// retransmit), which also pushes back the payload's departure since the
	// sender's clock advances. Errors repeat geometrically up to
	// maxSendRetries.
	SendErrProb float64
	SendErrCost float64

	rng uint64 // splitmix64 state, consumed only by this rank's goroutine
}

// maxSendRetries bounds the geometric transient-error repetition so a
// probability near 1 cannot stall a send forever.
const maxSendRetries = 8

// NewFaults returns an inert profile for a p-rank world: every rank scales
// compute by 1 and injects nothing, with per-rank streams derived from seed.
func NewFaults(p int, seed int64) *Faults {
	f := &Faults{ranks: make([]RankFaults, p)}
	for r := range f.ranks {
		f.ranks[r].ComputeScale = 1
		f.ranks[r].rng = (uint64(seed)+1)*0x9e3779b97f4a7c15 ^ uint64(r)*0xd1342543de82ef95
	}
	return f
}

// Size returns the number of ranks the profile covers.
func (f *Faults) Size() int { return len(f.ranks) }

// Rank returns rank r's parameters for configuration before the run starts.
func (f *Faults) Rank(r int) *RankFaults { return &f.ranks[r] }

// next returns the next deterministic uniform draw in [0, 1) from this
// rank's stream (splitmix64).
func (rf *RankFaults) next() float64 {
	rf.rng += 0x9e3779b97f4a7c15
	z := rf.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// computeScale returns the straggler factor of world rank r.
func (f *Faults) computeScale(r int) float64 { return f.ranks[r].ComputeScale }

// sendFault draws the injected cost of one message sent by world rank src:
// delay is jitter added to the payload's availability time on top of the
// sender's (possibly retransmit-advanced) clock, senderCost is simulated
// time the sender loses to transient retransmits before the payload departs.
func (f *Faults) sendFault(src int) (delay, senderCost float64) {
	rf := &f.ranks[src]
	if rf.JitterProb > 0 && rf.next() < rf.JitterProb {
		delay = rf.next() * rf.JitterMax
	}
	if rf.SendErrProb > 0 {
		for i := 0; i < maxSendRetries && rf.next() < rf.SendErrProb; i++ {
			senderCost += rf.SendErrCost
		}
	}
	return delay, senderCost
}

// SetFaults installs a fault-injection profile on the world. Call it before
// Run. A nil profile (the default) keeps the communication and compute paths
// bitwise identical to a fault-free build — the simulated clock, statistics
// and results do not change at all.
func (w *World) SetFaults(f *Faults) {
	if f != nil && f.Size() != w.size {
		panic(fmt.Sprintf("comm: fault profile covers %d ranks, world has %d", f.Size(), w.size))
	}
	w.faults = f
}

// RankPanic wraps a panic raised on a rank goroutine so World.Run can
// re-raise it on the caller without losing the original value — a typed
// fault-injection abort (see dycore.RankFailure) stays type-assertable
// through the runtime instead of being flattened to a string.
type RankPanic struct {
	Rank int // world rank that panicked
	Val  any // the original panic value
}

// Error implements error; the format matches the historical string panic.
func (e RankPanic) Error() string { return fmt.Sprintf("rank %d: %v", e.Rank, e.Val) }

// injectedFault is implemented by panic values that represent deliberate
// fault injection (dycore.RankFailure). When several ranks panic in one run
// — the injected death plus the receive-poison cascade it triggers — the
// injected value wins the "first panic" selection so callers see the cause,
// not a symptom.
type injectedFault interface{ InjectedFault() }
