package comm

import (
	"fmt"
	"sync"
)

// message is one in-flight point-to-point message. Payloads are copied on
// send (buffered-send semantics, like MPI_Bsend), so senders never block and
// the algorithms above are deadlock-free by construction as long as every
// send is eventually matched by a receive.
type message struct {
	commID  uint64
	src     int // communicator rank of the sender
	tag     int
	data    []float64
	sentAt  float64 // sender's simulated time when the payload departed
	availAt float64 // simulated time at which the payload is available
}

// endpoint is the receive queue of one world rank.
type endpoint struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []message
	poisoned bool
}

func newEndpoint() *endpoint {
	ep := &endpoint{}
	ep.cond = sync.NewCond(&ep.mu)
	return ep
}

func (ep *endpoint) deliver(m message) {
	ep.mu.Lock()
	ep.queue = append(ep.queue, m)
	ep.mu.Unlock()
	ep.cond.Broadcast()
}

// take removes and returns the first message matching (commID, src, tag),
// blocking until one arrives. FIFO order per (commID, src, tag) triple is
// guaranteed because deliver appends and take scans from the front.
func (ep *endpoint) take(commID uint64, src, tag int) message {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for {
		if ep.poisoned {
			panic("comm: peer rank failed while this rank was receiving")
		}
		for i, m := range ep.queue {
			if m.commID == commID && m.src == src && m.tag == tag {
				ep.queue = append(ep.queue[:i], ep.queue[i+1:]...)
				return m
			}
		}
		ep.cond.Wait()
	}
}

func (ep *endpoint) poison() {
	ep.mu.Lock()
	ep.poisoned = true
	ep.mu.Unlock()
	ep.cond.Broadcast()
}

// Send transmits a copy of data to communicator rank dst with the given tag.
// It has buffered semantics: it returns as soon as the payload is enqueued
// at the destination. The simulated clock is charged the send overhead; the
// payload becomes available to the receiver α + β·bytes after the send.
func (c *Comm) Send(dst, tag int, data []float64) {
	c.sendInternal(dst, tag, data)
}

// Isend is Send with an explicit request handle; with buffered semantics the
// request is already complete, so Wait on it is a no-op. It exists so the
// overlapped halo-exchange code reads like its MPI original.
//
//cadyvet:assumeclean simulated MPI transport: the request handle models MPI's internal bookkeeping, outside the per-rank zero-alloc kernel budget
func (c *Comm) Isend(dst, tag int, data []float64) *Request {
	c.sendInternal(dst, tag, data)
	return &Request{done: true}
}

// sendInternal implements the buffered send.
//
//cadyvet:assumeclean simulated MPI transport: the payload copy models MPI's internal buffering, outside the per-rank zero-alloc kernel budget
func (c *Comm) sendInternal(dst, tag int, data []float64) {
	if dst == c.rank {
		panic(fmt.Sprintf("comm: rank %d sending to itself (use local copies)", c.rank))
	}
	bytes := 8 * len(data)
	m := c.world.model
	c.stats.countSend(bytes)
	c.stats.addCommTime(m.SendOverhead)
	var extraDelay float64
	if f := c.world.faults; f != nil {
		// Fault injection: transient send errors cost the sender simulated
		// retransmit time (advancing its clock before the payload departs);
		// jitter delays only the payload's availability at the receiver.
		delay, senderCost := f.sendFault(c.myWorldRank())
		if senderCost > 0 {
			c.stats.addCommTime(senderCost)
		}
		extraDelay = delay
	}
	payload := make([]float64, len(data))
	copy(payload, data)
	c.world.eps[c.worldRank(dst)].deliver(message{
		commID:  c.id,
		src:     c.rank,
		tag:     tag,
		data:    payload,
		sentAt:  c.stats.Clock,
		availAt: c.stats.Clock + m.msgCost(bytes) + extraDelay,
	})
}

// Recv blocks until a message from communicator rank src with the given tag
// arrives, and returns its payload. The simulated clock stalls to the
// message's availability time if the rank got here early (that stall is the
// modeled communication wait).
//
//cadyvet:assumeclean simulated MPI transport: message drain touches the endpoint queues, which model MPI-internal buffering
func (c *Comm) Recv(src, tag int) []float64 {
	m := c.world.eps[c.myWorldRank()].take(c.id, src, tag)
	c.absorb(m)
	return m.data
}

// RecvInto is Recv that copies the payload into buf (which must be exactly
// the message length) and returns the number of values received.
//
//cadyvet:assumeclean simulated MPI transport: message drain touches the endpoint queues, which model MPI-internal buffering
func (c *Comm) RecvInto(src, tag int, buf []float64) int {
	m := c.world.eps[c.myWorldRank()].take(c.id, src, tag)
	c.absorb(m)
	if len(buf) < len(m.data) {
		panic(fmt.Sprintf("comm: RecvInto buffer too small: %d < %d", len(buf), len(m.data)))
	}
	return copy(buf, m.data)
}

// absorb advances the clock for a drained message: stall until availability,
// then pay the receive-side overhead. The portion of the message's flight
// time the receiver did NOT stall for was hidden behind its own compute (or
// other traffic), and is credited to Stats.HiddenTime; the stall itself is
// the exposed wait, charged to CommTime as before.
func (c *Comm) absorb(m message) {
	mod := c.world.model
	wait := m.availAt - c.stats.Clock
	if wait < 0 {
		wait = 0
	}
	if flight := m.availAt - m.sentAt; flight > wait {
		c.stats.addHiddenTime(flight - wait)
	}
	c.stats.addCommTime(wait + mod.SendOverhead)
}

// Request is the handle of a nonblocking operation.
type Request struct {
	done bool
	c    *Comm
	src  int
	tag  int
	buf  []float64
	n    int
}

// Irecv posts a nonblocking receive of a message from src with the given
// tag into buf; completion happens in Wait. (Matching is deferred to Wait,
// which is observationally equivalent for FIFO-per-pair matching.)
//
//cadyvet:assumeclean simulated MPI transport: the request handle models MPI's internal bookkeeping, outside the per-rank zero-alloc kernel budget
func (c *Comm) Irecv(src, tag int, buf []float64) *Request {
	return &Request{c: c, src: src, tag: tag, buf: buf}
}

// Wait blocks until the operation completes and returns the number of values
// transferred (0 for sends).
func (r *Request) Wait() int {
	if r.done {
		return r.n
	}
	r.n = r.c.RecvInto(r.src, r.tag, r.buf)
	r.done = true
	return r.n
}

// WaitAll completes every request.
func WaitAll(reqs ...*Request) {
	for _, r := range reqs {
		r.Wait()
	}
}
