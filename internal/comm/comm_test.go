package comm

import (
	"math"
	"math/rand"
	"testing"
)

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2, Zero())
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 7, []float64{1, 2, 3})
		case 1:
			got := c.Recv(0, 7)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Errorf("rank 1 got %v", got)
			}
		}
	})
}

func TestSendCopiesPayload(t *testing.T) {
	w := NewWorld(2, Zero())
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = -1 // must not affect the message
		} else {
			got := c.Recv(0, 0)
			if got[0] != 42 {
				t.Errorf("payload aliased sender buffer: got %v", got[0])
			}
		}
	})
}

func TestTagMatching(t *testing.T) {
	w := NewWorld(2, Zero())
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 5, []float64{5})
			c.Send(1, 3, []float64{3})
		} else {
			// Receive out of send order: tag matching must reorder.
			if got := c.Recv(0, 3); got[0] != 3 {
				t.Errorf("tag 3 got %v", got[0])
			}
			if got := c.Recv(0, 5); got[0] != 5 {
				t.Errorf("tag 5 got %v", got[0])
			}
		}
	})
}

func TestFIFOPerPair(t *testing.T) {
	w := NewWorld(2, Zero())
	w.Run(func(c *Comm) {
		const n = 100
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 1, []float64{float64(i)})
			}
		} else {
			for i := 0; i < n; i++ {
				if got := c.Recv(0, 1); got[0] != float64(i) {
					t.Fatalf("message %d arrived as %v", i, got[0])
				}
			}
		}
	})
}

func TestIsendIrecvWait(t *testing.T) {
	w := NewWorld(2, Zero())
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			r := c.Isend(1, 2, []float64{9, 8})
			r.Wait()
		} else {
			buf := make([]float64, 2)
			r := c.Irecv(0, 2, buf)
			if n := r.Wait(); n != 2 || buf[1] != 8 {
				t.Errorf("Irecv got n=%d buf=%v", n, buf)
			}
		}
	})
}

func TestBarrierAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		w := NewWorld(p, Zero())
		w.Run(func(c *Comm) {
			for iter := 0; iter < 3; iter++ {
				c.Barrier()
			}
		})
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8, 13} {
		for _, n := range []int{1, 2, 3, 7, 64, 100} {
			w := NewWorld(p, Zero())
			w.Run(func(c *Comm) {
				data := make([]float64, n)
				for i := range data {
					data[i] = float64(c.Rank()*n + i)
				}
				c.Allreduce(data, Sum)
				for i := range data {
					want := 0.0
					for r := 0; r < p; r++ {
						want += float64(r*n + i)
					}
					if math.Abs(data[i]-want) > 1e-9 {
						t.Errorf("p=%d n=%d rank=%d elem %d: got %v want %v", p, n, c.Rank(), i, data[i], want)
						return
					}
				}
			})
		}
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	p := 5
	w := NewWorld(p, Zero())
	w.Run(func(c *Comm) {
		d := []float64{float64(c.Rank()), -float64(c.Rank())}
		c.Allreduce(d, Max)
		if d[0] != float64(p-1) || d[1] != 0 {
			t.Errorf("max got %v", d)
		}
		d2 := []float64{float64(c.Rank())}
		c.Allreduce(d2, Min)
		if d2[0] != 0 {
			t.Errorf("min got %v", d2)
		}
	})
}

func TestAllgather(t *testing.T) {
	for _, p := range []int{1, 2, 4, 6} {
		w := NewWorld(p, Zero())
		w.Run(func(c *Comm) {
			send := []float64{float64(c.Rank() * 10), float64(c.Rank()*10 + 1)}
			recv := make([]float64, 2*p)
			c.Allgather(send, recv)
			for r := 0; r < p; r++ {
				if recv[2*r] != float64(r*10) || recv[2*r+1] != float64(r*10+1) {
					t.Errorf("p=%d rank=%d recv=%v", p, c.Rank(), recv)
					return
				}
			}
		})
	}
}

func TestExscan(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		w := NewWorld(p, Zero())
		w.Run(func(c *Comm) {
			d := []float64{float64(c.Rank() + 1)} // 1, 2, 3, ...
			c.Exscan(d, Sum)
			want := 0.0
			for r := 0; r < c.Rank(); r++ {
				want += float64(r + 1)
			}
			if d[0] != want {
				t.Errorf("p=%d rank=%d exscan got %v want %v", p, c.Rank(), d[0], want)
			}
		})
	}
}

func TestAlltoall(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5} {
		w := NewWorld(p, Zero())
		w.Run(func(c *Comm) {
			send := make([][]float64, p)
			recv := make([][]float64, p)
			for r := 0; r < p; r++ {
				send[r] = []float64{float64(c.Rank()*100 + r)}
				recv[r] = make([]float64, 1)
			}
			c.Alltoall(send, recv)
			for r := 0; r < p; r++ {
				want := float64(r*100 + c.Rank())
				if recv[r][0] != want {
					t.Errorf("p=%d rank=%d from %d: got %v want %v", p, c.Rank(), r, recv[r][0], want)
				}
			}
		})
	}
}

func TestBcast(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8, 9} {
		for root := 0; root < p; root++ {
			w := NewWorld(p, Zero())
			w.Run(func(c *Comm) {
				d := make([]float64, 3)
				if c.Rank() == root {
					d[0], d[1], d[2] = 1, 2, 3
				}
				c.Bcast(root, d)
				if d[0] != 1 || d[2] != 3 {
					t.Errorf("p=%d root=%d rank=%d got %v", p, root, c.Rank(), d)
				}
			})
		}
	}
}

func TestReduce(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7} {
		w := NewWorld(p, Zero())
		w.Run(func(c *Comm) {
			d := []float64{1}
			c.Reduce(0, d, Sum)
			if c.Rank() == 0 && d[0] != float64(p) {
				t.Errorf("p=%d reduce got %v", p, d[0])
			}
		})
	}
}

func TestSplitGrid(t *testing.T) {
	// 2x3 process grid: split into row and column communicators and do
	// independent reductions in each.
	const py, pz = 2, 3
	w := NewWorld(py*pz, Zero())
	w.Run(func(c *Comm) {
		y := c.Rank() / pz
		z := c.Rank() % pz
		rowComm := c.Split(y, z) // members share y
		colComm := c.Split(z, y) // members share z
		if rowComm.Size() != pz || colComm.Size() != py {
			t.Errorf("split sizes: row=%d col=%d", rowComm.Size(), colComm.Size())
		}
		if rowComm.Rank() != z || colComm.Rank() != y {
			t.Errorf("split ranks: row=%d (want %d) col=%d (want %d)", rowComm.Rank(), z, colComm.Rank(), y)
		}
		d := []float64{1}
		rowComm.Allreduce(d, Sum)
		if d[0] != pz {
			t.Errorf("row allreduce got %v", d[0])
		}
		d[0] = 1
		colComm.Allreduce(d, Sum)
		if d[0] != py {
			t.Errorf("col allreduce got %v", d[0])
		}
	})
}

func TestSplitUndefined(t *testing.T) {
	w := NewWorld(4, Zero())
	w.Run(func(c *Comm) {
		color := -1
		if c.Rank() < 2 {
			color = 0
		}
		sub := c.Split(color, 0)
		if c.Rank() < 2 {
			if sub == nil || sub.Size() != 2 {
				t.Errorf("rank %d expected sub of size 2, got %v", c.Rank(), sub)
			}
		} else if sub != nil {
			t.Errorf("rank %d expected nil sub-communicator", c.Rank())
		}
	})
}

func TestStatsCounting(t *testing.T) {
	w := NewWorld(2, TianheLike())
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.SetCategory(CatStencil)
			c.Send(1, 0, make([]float64, 100))
		} else {
			c.SetCategory(CatStencil)
			c.Recv(0, 0)
		}
	})
	a := w.Stats()
	if a.MsgsSent != 1 {
		t.Errorf("MsgsSent = %d, want 1", a.MsgsSent)
	}
	if a.BytesSent != 800 {
		t.Errorf("BytesSent = %d, want 800", a.BytesSent)
	}
	if a.MsgsByCat[CatStencil] != 1 {
		t.Errorf("stencil msgs = %d, want 1", a.MsgsByCat[CatStencil])
	}
	if a.StencilTime() <= 0 {
		t.Errorf("stencil time should be positive, got %v", a.StencilTime())
	}
}

func TestCollectiveKindBreakdown(t *testing.T) {
	w := NewWorld(4, TianheLike())
	w.Run(func(c *Comm) {
		buf := []float64{float64(c.Rank()), 1}
		c.SetCategory(CatCollectiveZ)
		c.Allreduce(buf, Sum)
		c.Allreduce(buf, Sum)
		c.SetCategory(CatCollectiveX)
		recv := make([]float64, 2*c.Size())
		c.Allgather(buf, recv)
		c.SetCategory(CatStencil)
		if c.Rank() == 0 {
			c.Send(1, 7, buf)
		} else if c.Rank() == 1 {
			c.Recv(0, 7)
		}
	})
	a := w.Stats()
	if got := a.CSumOps(); got != 2*4 {
		t.Errorf("CSumOps = %d, want %d", got, 2*4)
	}
	if got := a.FilterOps(); got != 1*4 {
		t.Errorf("FilterOps = %d, want %d", got, 1*4)
	}
	if a.CollByCat[CatStencil] != 0 {
		t.Errorf("stencil collectives = %d, want 0", a.CollByCat[CatStencil])
	}
	if a.CSumBytes() <= 0 || a.FilterBytes() <= 0 {
		t.Errorf("per-kind bytes should be positive: csum=%d filter=%d",
			a.CSumBytes(), a.FilterBytes())
	}
	if got := a.ExchangeMsgs(); got != 1 {
		t.Errorf("ExchangeMsgs = %d, want 1", got)
	}
	if got := a.ExchangeBytes(); got != 16 {
		t.Errorf("ExchangeBytes = %d, want 16", got)
	}
	var coll int64
	for _, v := range a.CollByCat {
		coll += v
	}
	if coll != a.Collectives {
		t.Errorf("CollByCat sum %d != Collectives %d", coll, a.Collectives)
	}
}

func TestSimulatedClockMessageDelay(t *testing.T) {
	m := NetModel{Latency: 1e-3, ByteTime: 0, SendOverhead: 0, ComputeRate: 1}
	w := NewWorld(2, m)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1})
		} else {
			c.Recv(0, 0)
			// Receiver must have stalled at least the latency.
			if c.Clock() < 1e-3 {
				t.Errorf("receiver clock %v < latency", c.Clock())
			}
		}
	})
}

func TestSimulatedOverlapHidesLatency(t *testing.T) {
	// If the receiver computes past the message availability time before
	// waiting, the wait costs (almost) nothing: overlap is modeled.
	m := NetModel{Latency: 1e-3, ByteTime: 0, SendOverhead: 0, ComputeRate: 1}
	run := func(overlapWork float64) (commTime float64) {
		w := NewWorld(2, m)
		w.Run(func(c *Comm) {
			if c.Rank() == 0 {
				c.Send(1, 0, []float64{1})
			} else {
				buf := make([]float64, 1)
				r := c.Irecv(0, 0, buf)
				c.Compute(overlapWork)
				r.Wait()
			}
		})
		return w.Stats().TotalCommTime()
	}
	withOverlap := run(1e-2)  // compute 10 ms before waiting
	noOverlap := run(0)
	if withOverlap >= noOverlap {
		t.Errorf("overlap did not reduce comm time: with=%v without=%v", withOverlap, noOverlap)
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	m := NetModel{ComputeRate: 100}
	w := NewWorld(1, m)
	w.Run(func(c *Comm) {
		c.Compute(50)
		if math.Abs(c.Clock()-0.5) > 1e-12 {
			t.Errorf("clock = %v, want 0.5", c.Clock())
		}
	})
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Error("expected panic to propagate from Run")
		}
	}()
	w := NewWorld(2, Zero())
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			panic("boom")
		}
		// Rank 1 blocks in Recv; poisoning must unblock it.
		defer func() { recover() }() // swallow the poison panic on rank 1
		c.Recv(0, 0)
	})
}

func TestAllreducePropertyRandom(t *testing.T) {
	// Property: ring allreduce equals the serial sum for random inputs,
	// sizes and rank counts.
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 25; trial++ {
		p := 1 + rng.Intn(9)
		n := 1 + rng.Intn(50)
		inputs := make([][]float64, p)
		want := make([]float64, n)
		for r := 0; r < p; r++ {
			inputs[r] = make([]float64, n)
			for i := range inputs[r] {
				inputs[r][i] = rng.NormFloat64()
			}
		}
		for i := 0; i < n; i++ {
			for r := 0; r < p; r++ {
				want[i] += inputs[r][i]
			}
		}
		w := NewWorld(p, Zero())
		w.Run(func(c *Comm) {
			data := append([]float64(nil), inputs[c.Rank()]...)
			c.Allreduce(data, Sum)
			for i := range data {
				if math.Abs(data[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					t.Errorf("trial %d p=%d n=%d rank=%d elem %d: got %v want %v",
						trial, p, n, c.Rank(), i, data[i], want[i])
					return
				}
			}
		})
	}
}

func TestRingAllreduceVolume(t *testing.T) {
	// Theorem 4.2: ring allreduce moves 2(p-1)·(n/p) values per rank. Check
	// the total byte count matches p · 2(p-1) · (n/p) · 8 bytes.
	p, n := 4, 64
	w := NewWorld(p, Zero())
	w.Run(func(c *Comm) {
		data := make([]float64, n)
		c.AllreduceRing(data, Sum)
	})
	a := w.Stats()
	wantBytes := int64(p * 2 * (p - 1) * (n / p) * 8)
	if a.BytesSent != wantBytes {
		t.Errorf("ring allreduce moved %d bytes, want %d", a.BytesSent, wantBytes)
	}
}

func TestAllreduceRDMatchesSum(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 13} {
		for _, n := range []int{1, 3, 17} {
			results := make([][]float64, p)
			w := NewWorld(p, Zero())
			w.Run(func(c *Comm) {
				data := make([]float64, n)
				for i := range data {
					data[i] = float64(c.Rank()+1) * float64(i+1)
				}
				c.AllreduceRD(data, Sum)
				results[c.Rank()] = data
			})
			for i := 0; i < n; i++ {
				want := 0.0
				for r := 0; r < p; r++ {
					want += float64(r+1) * float64(i+1)
				}
				for r := 0; r < p; r++ {
					if math.Abs(results[r][i]-want) > 1e-9*(1+math.Abs(want)) {
						t.Fatalf("p=%d n=%d rank=%d elem=%d: got %v want %v", p, n, r, i, results[r][i], want)
					}
				}
			}
			// All ranks must hold bitwise-identical results (commutative op).
			for r := 1; r < p; r++ {
				for i := 0; i < n; i++ {
					if results[r][i] != results[0][i] {
						t.Fatalf("p=%d: ranks disagree bitwise at %d", p, i)
					}
				}
			}
		}
	}
}

func TestAllreduceDispatch(t *testing.T) {
	// Short vectors use recursive doubling (log p rounds of full vectors);
	// long ones the ring. Distinguish them by the byte volume.
	const p = 4
	run := func(n int) int64 {
		w := NewWorld(p, Zero())
		w.Run(func(c *Comm) {
			c.Allreduce(make([]float64, n), Sum)
		})
		return w.Stats().BytesSent
	}
	shortN := 8
	gotShort := run(shortN)
	wantRD := int64(p) * 2 * int64(shortN) * 8 // log2(4)=2 rounds of n values per rank
	if gotShort != wantRD {
		t.Errorf("short allreduce moved %d bytes, want %d (recursive doubling)", gotShort, wantRD)
	}
	longN := 4096
	gotLong := run(longN)
	wantRing := int64(p) * 2 * int64(p-1) * int64(longN/p) * 8
	if gotLong != wantRing {
		t.Errorf("long allreduce moved %d bytes, want %d (ring)", gotLong, wantRing)
	}
}

func TestAllreduceRDMax(t *testing.T) {
	const p = 6
	w := NewWorld(p, Zero())
	w.Run(func(c *Comm) {
		d := []float64{float64(c.Rank()), -float64(c.Rank())}
		c.AllreduceRD(d, Max)
		if d[0] != float64(p-1) || d[1] != 0 {
			t.Errorf("rank %d: RD max got %v", c.Rank(), d)
		}
	})
}

func TestPoisonUnblocksCollective(t *testing.T) {
	// A rank dying mid-collective must not deadlock the others: the
	// poison propagates a panic out of their blocked receives.
	defer func() {
		if recover() == nil {
			t.Error("expected the rank-0 panic to propagate")
		}
	}()
	w := NewWorld(4, Zero())
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			panic("node failure")
		}
		defer func() { recover() }() // swallow the poison on survivors
		d := make([]float64, 1024)
		c.Allreduce(d, Sum)
	})
}

func TestExscanEmptyAndSingle(t *testing.T) {
	w := NewWorld(1, Zero())
	w.Run(func(c *Comm) {
		d := []float64{7}
		c.Exscan(d, Sum)
		if d[0] != 0 {
			t.Errorf("single-rank exscan = %v, want 0", d[0])
		}
	})
}

func TestSendToSelfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("self-send should panic")
		}
	}()
	w := NewWorld(2, Zero())
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			defer func() {
				if r := recover(); r != nil {
					panic(r) // re-raise so Run reports it
				}
			}()
			c.Send(0, 0, []float64{1})
		}
	})
}

func TestSubCommIsolation(t *testing.T) {
	// Messages on a sub-communicator must not be visible to the parent
	// communicator's matching (communicator ids isolate them).
	w := NewWorld(4, Zero())
	w.Run(func(c *Comm) {
		sub := c.Split(c.Rank()%2, c.Rank())
		// Within each 2-member sub-communicator, exchange with tag 0; also
		// exchange on the world with the SAME tag — no cross-talk allowed.
		peerSub := 1 - sub.Rank()
		sub.Send(peerSub, 0, []float64{float64(100 + c.Rank())})
		peerW := (c.Rank() + 2) % 4
		c.Send(peerW, 0, []float64{float64(200 + c.Rank())})

		fromSub := sub.Recv(peerSub, 0)
		fromW := c.Recv(peerW, 0)
		if fromSub[0] < 100 || fromSub[0] >= 200 {
			t.Errorf("rank %d: sub-communicator got %v", c.Rank(), fromSub[0])
		}
		if fromW[0] < 200 {
			t.Errorf("rank %d: world got %v", c.Rank(), fromW[0])
		}
	})
}
