// Package comm implements the message-passing substrate the dynamical core
// runs on: a rank-SPMD runtime in pure Go that replaces MPI (which has no Go
// ecosystem), as documented in DESIGN.md §2.
//
// Ranks are goroutines; point-to-point messages are matched by (source, tag)
// with FIFO order per pair, like MPI. Nonblocking Isend/Irecv with Wait,
// Barrier, communicator Split and the collectives the dycore needs
// (ring Allreduce, ring Allgather, Exscan, pairwise Alltoall, Bcast) are
// built *on top of* the point-to-point layer, so every byte and message the
// algorithms move is counted by construction rather than estimated.
//
// In addition to functional message passing, the runtime keeps a LogP-style
// simulated clock per rank: a message sent at sender-time t becomes available
// at the receiver at t + α + β·bytes; receiving earlier than that stalls the
// receiver's clock. Computation advances the clock through Compute. The
// simulated clock is deterministic (it depends only on the program order of
// each rank), which lets the benchmark harness reproduce the paper's
// communication-time figures with up to 1024 virtual ranks on one machine
// while the real computation still runs and is verified.
package comm

// NetModel parameterizes the simulated cost of communication and computation.
// All times are in seconds.
type NetModel struct {
	// Latency α: end-to-end time for a zero-byte message.
	Latency float64
	// ByteTime β: additional seconds per payload byte (1/bandwidth).
	ByteTime float64
	// SendOverhead o: CPU time a rank spends injecting one message; also
	// charged on the receive side when a message is drained.
	SendOverhead float64
	// ComputeRate: point-updates per second a rank sustains; Compute(w)
	// advances the clock by w/ComputeRate.
	ComputeRate float64
}

// TianheLike returns network parameters shaped like the paper's platform at
// production scale (Tianhe-2, TH Express-2 with a customized MPICH, ~1000
// MPI ranks sharing the fabric). The effective per-message cost is far above
// the wire latency at that scale: the paper's own stencil timings (17 400 s
// over ≈5·10⁵ steps at 13 exchanges of ~20 messages each) put it in the
// tens of microseconds, which is what makes "reduce the frequency from 13
// to 2" worth 3–6x. ComputeRate approximates one Ivy Bridge core on the
// memory-bound dycore kernels.
// Calibration note: the paper's own measurements put one halo-exchange
// round at ≈2.5 ms on 1024 ranks (17 400 s of stencil communication over
// ≈5·10⁵ steps of 13 rounds), far above the wire latency — at production
// scale the effective per-message cost is dominated by synchronization
// noise and software overhead. Latency and SendOverhead below encode that
// effective cost; ByteTime is the sustained link bandwidth.
func TianheLike() NetModel {
	return NetModel{
		Latency:      150e-6,
		ByteTime:     1.0 / 12.0e9, // TH Express-2 sustains 10-16 GB/s
		SendOverhead: 8e-6,
		ComputeRate:  4e8, // point-updates per second
	}
}

// Zero returns a model with no simulated costs; functional tests use it so
// clock bookkeeping cannot mask correctness issues.
func Zero() NetModel { return NetModel{ComputeRate: 1} }

// msgCost returns the availability delay α + β·bytes of one message.
func (m NetModel) msgCost(bytes int) float64 {
	return m.Latency + m.ByteTime*float64(bytes)
}
