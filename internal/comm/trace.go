package comm

// Event tracing: when enabled on a World, every advance of a rank's
// simulated clock is recorded as a span — computation, or communication in
// its current accounting category. The timeline renderer
// (internal/trace) turns the spans into a per-rank Gantt chart that makes
// the communication/computation overlap of Algorithm 2 visible.

// EventKind classifies a traced span.
type EventKind int

const (
	// EvCompute is time spent in Compute.
	EvCompute EventKind = iota
	// EvComm is time spent in communication (send/receive overhead and
	// message waits), attributed to the Category current at the time.
	EvComm
)

// Event is one span of a rank's simulated time.
type Event struct {
	Rank int
	Kind EventKind
	Cat  Category
	T0   float64
	T1   float64
}

// Recorder collects events per rank. Each rank appends only to its own
// slice (ranks are single goroutines), so no locking is needed until
// Events() merges them after Run returns.
type Recorder struct {
	perRank [][]Event
}

// EnableTrace attaches a recorder to the world; call before Run. Tracing
// records one event per clock advance, so keep runs short when tracing.
func (w *World) EnableTrace() *Recorder {
	r := &Recorder{perRank: make([][]Event, w.size)}
	for i, c := range w.comms {
		c.stats.trace = r
		c.stats.traceRank = i
		_ = i
	}
	return r
}

// Events returns all recorded events (rank-major, time-ordered within each
// rank). Call after Run has returned.
func (r *Recorder) Events() []Event {
	var out []Event
	for _, evs := range r.perRank {
		out = append(out, evs...)
	}
	return out
}

// Ranks returns the number of ranks traced.
func (r *Recorder) Ranks() int { return len(r.perRank) }

// record appends a span for a rank (called from the rank's own goroutine).
func (r *Recorder) record(e Event) {
	if e.T1 <= e.T0 {
		return
	}
	r.perRank[e.Rank] = append(r.perRank[e.Rank], e)
}
