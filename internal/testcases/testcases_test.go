package testcases

import (
	"math"
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/physics"
	"cadycore/internal/state"
)

func run(t *testing.T, g *grid.Grid, init InitFunc, steps int, dt1, dt2 float64) dycore.RunResult {
	t.Helper()
	cfg := dycore.DefaultConfig()
	cfg.Dt1, cfg.Dt2 = dt1, dt2
	set := dycore.Setup{Alg: dycore.AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg}
	return dycore.Run(set, g, comm.Zero(), dycore.InitFunc(init), steps)
}

func TestRestingIsothermalStaysNearlyAtRest(t *testing.T) {
	g := grid.New(32, 16, 6)
	res := run(t, g, RestingIsothermal(270), 3, 40, 240)
	// The discrete state is not an exact fixed point (the standard
	// stratification differs from isothermal), but winds must stay tiny
	// compared with any dynamic state.
	maxU := 0.0
	for _, st := range res.Finals {
		b := st.B
		for k := b.K0; k < b.K1; k++ {
			for j := b.J0; j < b.J1; j++ {
				for i := b.I0; i < b.I1; i++ {
					if v := math.Abs(st.U.At(i, j, k)); v > maxU {
						maxU = v
					}
				}
			}
		}
	}
	if maxU > 1.0 {
		t.Errorf("resting atmosphere spun up to %v m/s·P in 3 steps", maxU)
	}
}

func TestSolidBodyPreservesZonalSymmetry(t *testing.T) {
	// Every operator of the dynamical core commutes with rotations in λ, so
	// a zonally symmetric state must stay zonally symmetric to round-off.
	g := grid.New(32, 16, 6)
	res := run(t, g, SolidBodyRotation(15, 280), 3, 40, 240)
	for _, st := range res.Finals {
		b := st.B
		for k := b.K0; k < b.K1; k++ {
			for j := b.J0; j < b.J1; j++ {
				ref := st.Phi.At(b.I0, j, k)
				scale := 1 + math.Abs(ref)
				for i := b.I0; i < b.I1; i++ {
					if d := math.Abs(st.Phi.At(i, j, k) - ref); d > 1e-9*scale {
						t.Fatalf("zonal symmetry broken at (%d,%d,%d): %g", i, j, k, d)
					}
				}
			}
		}
	}
}

func TestGravityWavePropagatesAtCharacteristicSpeed(t *testing.T) {
	// A compact Φ pulse must radiate outward with phase speed near
	// b = 87.8 m/s (the tensor transform's design constant). Track the
	// westward/eastward front of the surface-pressure disturbance.
	g := grid.New(96, 24, 6)
	lam0 := math.Pi
	init := GravityWavePulse(8, 0.22, lam0)

	cfg := dycore.DefaultConfig()
	cfg.Dt1, cfg.Dt2 = 50, 300
	set := dycore.Setup{Alg: dycore.AlgBaselineYZ, PA: 1, PB: 1, Cfg: cfg}

	// The front must travel several grid points to be measurable: at
	// b ≈ 88 m/s one zonal grid cell (417 km at the equator) takes ~16
	// steps of 300 s. Track the farthest point whose |p'_sa| exceeds a
	// fixed fraction of the current maximum (amplitude-relative, so the
	// linear growth of the response does not masquerade as propagation).
	frontAfter := func(steps int) float64 {
		res := dycore.Run(set, g, comm.Zero(), dycore.InitFunc(init), steps)
		st := res.Finals[0]
		jEq := g.Ny / 2
		maxA := 0.0
		for i := 0; i < g.Nx; i++ {
			if v := math.Abs(st.Psa.At(i, jEq)); v > maxA {
				maxA = v
			}
		}
		far := 0.0
		for i := 0; i < g.Nx; i++ {
			if math.Abs(st.Psa.At(i, jEq)) > 0.2*maxA {
				if d := math.Abs(angularDistance(g.Lambda[i], lam0)); d > far {
					far = d
				}
			}
		}
		return far * physics.EarthRadius * g.SinC[jEq] // meters along the equator row
	}

	d1 := frontAfter(20)
	d2 := frontAfter(80)
	dt := 60 * cfg.Dt2 // seconds between the two measurements
	speed := (d2 - d1) / dt
	if speed < 0.3*physics.B || speed > 3*physics.B {
		t.Errorf("gravity-wave front speed %v m/s, expected near b = %v m/s (front %v -> %v m)",
			speed, physics.B, d1, d2)
	}
}

func TestRandomNoiseDeterministicAcrossDecompositions(t *testing.T) {
	g := grid.New(16, 10, 4)
	init := RandomNoise(42, 1, 2, 50)
	mk := func(py, pz int) []*state.State {
		cfg := dycore.DefaultConfig()
		cfg.Dt1, cfg.Dt2 = 30, 180
		set := dycore.Setup{Alg: dycore.AlgBaselineYZ, PA: py, PB: pz, Cfg: cfg}
		res := dycore.Run(set, g, comm.Zero(), dycore.InitFunc(init), 0)
		return res.Finals
	}
	a := mk(1, 1)
	b := mk(2, 2)
	if d := dycore.MaxDiffGlobal(g, a, b); d != 0 {
		t.Errorf("random initial condition not decomposition-invariant: %g", d)
	}
}

func TestAllCasesFiniteAndStable(t *testing.T) {
	g := grid.New(32, 16, 6)
	// A fixed case order keeps the simulated-communication schedule identical
	// across runs (map iteration order would randomize it).
	cases := []struct {
		name string
		init InitFunc
	}{
		{"resting", RestingIsothermal(260)},
		{"solidbody", SolidBodyRotation(25, 280)},
		{"pulse", GravityWavePulse(5, 0.3, 1.0)},
		{"jet", ZonalJetWithWaves(25, 4)},
		{"noise", RandomNoise(7, 0.5, 1, 30)},
	}
	for _, tc := range cases {
		res := run(t, g, tc.init, 3, 40, 240)
		for _, st := range res.Finals {
			if !st.AllFinite() {
				t.Errorf("case %q went non-finite", tc.name)
			}
		}
	}
}

func TestBalancedJetIsNearFixedPoint(t *testing.T) {
	// The discretely balanced jet must stay essentially steady: V remains
	// tiny and U drifts < 1% over many steps (only the Φ smoothing
	// perturbs the balance).
	g := grid.New(32, 16, 6)
	u0 := 20.0
	init := BalancedZonalJet(func(th float64) float64 {
		s := math.Sin(th)
		return u0 * s * s
	})
	cfg := dycore.DefaultConfig()
	cfg.Dt1, cfg.Dt2 = 60, 360
	set := dycore.Setup{Alg: dycore.AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg}

	before := dycore.Run(set, g, comm.Zero(), dycore.InitFunc(init), 0)
	after := dycore.Run(set, g, comm.Zero(), dycore.InitFunc(init), 20)

	if !after.Finals[0].AllFinite() {
		t.Fatal("balanced jet went unstable")
	}
	p := physics.PFromPs(physics.P0)
	maxV, maxDU := 0.0, 0.0
	fa := dycore.FlattenState(g, after.Finals)
	fb := dycore.FlattenState(g, before.Finals)
	n3 := g.Nx * g.Ny * g.Nz
	for i := 0; i < n3; i++ {
		if d := math.Abs(fa[i] - fb[i]); d > maxDU {
			maxDU = d
		}
		if v := math.Abs(fa[n3+i]); v > maxV {
			maxV = v
		}
	}
	if maxV/p > 0.05*u0 {
		t.Errorf("balance broke: max |v| = %v m/s after 20 steps", maxV/p)
	}
	if maxDU/p > 0.01*u0 {
		t.Errorf("zonal wind drifted by %v m/s (> 1%% of the jet)", maxDU/p)
	}
}
