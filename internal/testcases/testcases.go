// Package testcases is a catalog of initial conditions for the dynamical
// core: the standard idealized states used to exercise, validate and
// demonstrate the model beyond the Held–Suarez benchmark. Each constructor
// returns a dycore.InitFunc.
package testcases

import (
	"math"
	"math/rand"

	"cadycore/internal/grid"
	"cadycore/internal/physics"
	"cadycore/internal/state"
)

// InitFunc mirrors dycore.InitFunc without importing it (avoids a cycle for
// packages below dycore).
type InitFunc func(g *grid.Grid, st *state.State)

// RestingIsothermal is an atmosphere at rest with uniform temperature t0
// and surface pressure p0 — an exact steady state of the dynamics up to
// discretization residuals; the standard "does nothing happen?" test.
func RestingIsothermal(t0 float64) InitFunc {
	return func(g *grid.Grid, st *state.State) {
		st.InitFromPhysical(g,
			zero3, zero3,
			func(lam, th, sig float64) float64 { return t0 },
			func(lam, th float64) float64 { return physics.P0 },
		)
	}
}

// SolidBodyRotation is a super-rotation u = u0·sinθ (rigid rotation about
// the earth's axis) over an isothermal atmosphere — zonally symmetric, so
// the evolution must preserve zonal symmetry exactly.
func SolidBodyRotation(u0, t0 float64) InitFunc {
	return func(g *grid.Grid, st *state.State) {
		st.InitFromPhysical(g,
			func(lam, th, sig float64) float64 { return u0 * math.Sin(th) },
			zero3,
			func(lam, th, sig float64) float64 { return t0 },
			func(lam, th float64) float64 { return physics.P0 },
		)
	}
}

// GravityWavePulse is a resting isothermal atmosphere with a localized
// geopotential (temperature) anomaly centered at longitude lam0 on the
// equator: the adaptation terms radiate it as external gravity waves with
// phase speed ≈ b (the transform's characteristic speed, 87.8 m/s) — the
// fast process the adaptation iteration with Δt1 ≪ Δt2 exists to handle.
func GravityWavePulse(amplitudeK, widthRad, lam0 float64) InitFunc {
	return func(g *grid.Grid, st *state.State) {
		st.InitFromPhysical(g,
			zero3, zero3,
			func(lam, th, sig float64) float64 {
				dl := angularDistance(lam, lam0)
				dth := th - math.Pi/2
				r2 := (dl*dl + dth*dth) / (widthRad * widthRad)
				return 280 + amplitudeK*math.Exp(-r2)
			},
			func(lam, th float64) float64 { return physics.P0 },
		)
	}
}

// ZonalJetWithWaves is a midlatitude westerly jet with zonal wavenumber
// perturbations in wind, temperature and pressure — the generic "busy but
// smooth" state the cross-decomposition equivalence tests use.
func ZonalJetWithWaves(u0 float64, waveM int) InitFunc {
	m := float64(waveM)
	return func(g *grid.Grid, st *state.State) {
		st.InitFromPhysical(g,
			func(lam, th, sig float64) float64 {
				return u0*math.Sin(th)*math.Sin(th) + 2*math.Sin(m*lam)*math.Sin(th)
			},
			func(lam, th, sig float64) float64 {
				return 1.5 * math.Sin(m*lam) * math.Sin(th) * math.Sin(th)
			},
			func(lam, th, sig float64) float64 {
				return 288 - 40*(1-sig) + 10*math.Cos(th)*math.Cos(th) + 2*math.Cos(m*lam)*math.Sin(th)
			},
			func(lam, th float64) float64 {
				return physics.P0 + 300*math.Cos(m*lam)*math.Sin(th)
			},
		)
	}
}

// RandomNoise superimposes smooth-amplitude random perturbations on a
// resting isothermal state — deterministic per seed and per point, so every
// rank (and every decomposition) generates identical global fields. Used by
// robustness tests.
func RandomNoise(seed int64, windAmp, tempAmp, psAmp float64) InitFunc {
	return func(g *grid.Grid, st *state.State) {
		noise := func(i, j, k, comp int) float64 {
			h := seed
			for _, v := range []int64{int64(i), int64(j), int64(k), int64(comp)} {
				h = h*6364136223846793005 + v + 1442695040888963407
			}
			r := rand.New(rand.NewSource(h))
			return 2*r.Float64() - 1
		}
		idx := func(lam, th float64) (int, int) {
			i := int(math.Round(lam/g.DLambda)) % g.Nx
			j := int(math.Round(th/g.DTheta - 0.5))
			if j < 0 {
				j = 0
			}
			if j >= g.Ny {
				j = g.Ny - 1
			}
			return i, j
		}
		kOf := func(sig float64) int {
			for k := 0; k < g.Nz; k++ {
				if math.Abs(g.Sigma[k]-sig) < 1e-12 {
					return k
				}
			}
			return 0
		}
		st.InitFromPhysical(g,
			func(lam, th, sig float64) float64 {
				i, j := idx(lam, th)
				return windAmp * noise(i, j, kOf(sig), 0) * math.Sin(th)
			},
			func(lam, th, sig float64) float64 {
				i, j := idx(lam, th)
				return windAmp * noise(i, j, kOf(sig), 1) * math.Sin(th)
			},
			func(lam, th, sig float64) float64 {
				i, j := idx(lam, th)
				return 280 + tempAmp*noise(i, j, kOf(sig), 2)
			},
			func(lam, th float64) float64 {
				i, j := idx(lam, th)
				return physics.P0 + psAmp*noise(i, j, 0, 3)
			},
		)
	}
}

// BalancedZonalJet builds a zonally symmetric jet u(θ) in *discrete*
// gradient-wind balance: Φ is integrated in latitude so that the model's own
// V-equation tendency vanishes identically (−P_θ⁽¹⁾ − f*·U = 0 on the C
// grid, with uniform surface pressure making the remaining adaptation terms
// zero). The state is therefore an exact fixed point of the adaptation AND
// advection processes; only the meridional smoothing of Φ perturbs it, at
// O(β·δ⁴_θΦ) per step. uFn gives the physical wind at colatitude θ.
func BalancedZonalJet(uFn func(theta float64) float64) InitFunc {
	return func(g *grid.Grid, st *state.State) {
		p := physics.PFromPs(physics.P0) // uniform surface pressure
		// Column profile of Φ by integrating the discrete balance
		// Φ[j] = Φ[j−1] − (aΔθ/b)·f*_j·U4_j from the north.
		phi := make([]float64, g.Ny)
		phi[0] = 0
		uC := make([]float64, g.Ny)
		for j := 0; j < g.Ny; j++ {
			uC[j] = uFn(g.ThetaC[j])
		}
		for j := 1; j < g.Ny; j++ {
			u4 := p * 0.5 * (uC[j-1] + uC[j]) // the kernel's 4-point average, zonally uniform
			sI := g.SinI[j]
			cI := g.CosI[j]
			fstar := 2*physics.Omega*cI + (u4/p)*cI/(physics.EarthRadius*sI)
			phi[j] = phi[j-1] - physics.EarthRadius*g.DTheta/physics.B*fstar*u4
		}
		b := st.B
		for k := b.K0; k < b.K1; k++ {
			for j := b.J0; j < b.J1; j++ {
				for i := b.I0; i < b.I1; i++ {
					st.U.Set(i, j, k, p*uC[j])
					st.Phi.Set(i, j, k, phi[j])
				}
			}
		}
		// V = 0 and p'_sa = 0 already (zero state).
	}
}

func zero3(lam, th, sig float64) float64 { return 0 }

// angularDistance is the periodic distance between two longitudes.
func angularDistance(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	if d < -math.Pi {
		d += 2 * math.Pi
	}
	return d
}
