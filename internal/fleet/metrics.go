package fleet

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// fleetMetrics are the coordinator counters, guarded by the coordinator
// mutex (they are only touched under it).
type fleetMetrics struct {
	dispatched     int64
	dispatchErrors int64
	migrations     int64
	completed      int64
	failed         int64
	cancelled      int64
	ensembles      int64
	persistErrors  int64
}

// handleMetrics emits the coordinator metrics in the Prometheus text format:
// fleet health and routing counters, per-tenant admission counters, and the
// scrape-and-sum cady_fleet_agg_* aggregates of the backends' own counters.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }

	healthy := 0
	for _, b := range c.backends {
		if b.healthy {
			healthy++
		}
	}
	p("# HELP cady_fleet_backends Registered backends.")
	p("# TYPE cady_fleet_backends gauge")
	p("cady_fleet_backends %d", len(c.backends))
	p("# HELP cady_fleet_backends_healthy Backends passing health probes.")
	p("# TYPE cady_fleet_backends_healthy gauge")
	p("cady_fleet_backends_healthy %d", healthy)

	states := map[string]int{}
	for _, id := range c.order {
		states[c.jobs[id].State.public()]++
	}
	p("# HELP cady_fleet_jobs Fleet jobs by state.")
	p("# TYPE cady_fleet_jobs gauge")
	for _, st := range []jstate{fQueued, fRunning, fCompleted, fFailed, fCancelled} {
		p("cady_fleet_jobs{state=%q} %d", string(st), states[string(st)])
	}

	p("# HELP cady_fleet_dispatches_total Job placements on a backend.")
	p("# TYPE cady_fleet_dispatches_total counter")
	p("cady_fleet_dispatches_total %d", c.met.dispatched)
	p("# HELP cady_fleet_dispatch_errors_total Dispatch rounds where no backend accepted the job.")
	p("# TYPE cady_fleet_dispatch_errors_total counter")
	p("cady_fleet_dispatch_errors_total %d", c.met.dispatchErrors)
	p("# HELP cady_fleet_migrations_total Jobs moved off a dead, draining or cancelled-out-of-band backend.")
	p("# TYPE cady_fleet_migrations_total counter")
	p("cady_fleet_migrations_total %d", c.met.migrations)
	p("# HELP cady_fleet_jobs_completed_total Fleet jobs completed.")
	p("# TYPE cady_fleet_jobs_completed_total counter")
	p("cady_fleet_jobs_completed_total %d", c.met.completed)
	p("# HELP cady_fleet_jobs_failed_total Fleet jobs failed.")
	p("# TYPE cady_fleet_jobs_failed_total counter")
	p("cady_fleet_jobs_failed_total %d", c.met.failed)
	p("# HELP cady_fleet_jobs_cancelled_total Fleet jobs cancelled.")
	p("# TYPE cady_fleet_jobs_cancelled_total counter")
	p("cady_fleet_jobs_cancelled_total %d", c.met.cancelled)
	p("# HELP cady_fleet_ensembles_total Ensembles submitted.")
	p("# TYPE cady_fleet_ensembles_total counter")
	p("cady_fleet_ensembles_total %d", c.met.ensembles)
	p("# HELP cady_fleet_persist_errors_total Failed writes of the fleet routing state.")
	p("# TYPE cady_fleet_persist_errors_total counter")
	p("cady_fleet_persist_errors_total %d", c.met.persistErrors)

	tenants := make([]string, 0, len(c.tenants))
	//cadyvet:unordered key collection only; the emission loops below iterate
	// the sorted slice
	for t := range c.tenants {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	p("# HELP cady_fleet_tenant_admitted_total Jobs admitted per tenant.")
	p("# TYPE cady_fleet_tenant_admitted_total counter")
	for _, t := range tenants {
		p("cady_fleet_tenant_admitted_total{tenant=%q} %d", t, c.tenants[t].admitted)
	}
	p("# HELP cady_fleet_tenant_rejected_total Submissions rejected by the tenant quota.")
	p("# TYPE cady_fleet_tenant_rejected_total counter")
	for _, t := range tenants {
		p("cady_fleet_tenant_rejected_total{tenant=%q} %d", t, c.tenants[t].rejected)
	}
	p("# HELP cady_fleet_tenant_queued Jobs waiting in a tenant FIFO.")
	p("# TYPE cady_fleet_tenant_queued gauge")
	for _, t := range tenants {
		p("cady_fleet_tenant_queued{tenant=%q} %d", t, len(c.tenants[t].fifo))
	}
	p("# HELP cady_fleet_tenant_inflight Admitted, non-terminal jobs per tenant (quota usage).")
	p("# TYPE cady_fleet_tenant_inflight gauge")
	for _, t := range tenants {
		p("cady_fleet_tenant_inflight{tenant=%q} %d", t, c.tenants[t].inflight)
	}

	// Scrape-and-sum aggregates: the backends' own counters (overlap/comm
	// accounting, job and step totals) summed fleet-wide from each backend's
	// last successful /metrics scrape. Fixed name list, deterministic order.
	for _, name := range aggNames {
		sum := 0.0
		n := 0
		for _, b := range c.backends {
			if v, ok := b.counters[name]; ok {
				sum += v
				n++
			}
		}
		out := "cady_fleet_agg_" + strings.TrimPrefix(name, "cady_")
		p("# HELP %s Sum of %s over the last scrape of %d backend(s).", out, name, n)
		p("# TYPE %s counter", out)
		p("%s %g", out, sum)
	}

	p("# HELP cady_fleet_uptime_seconds Seconds since the coordinator started.")
	p("# TYPE cady_fleet_uptime_seconds gauge")
	p("cady_fleet_uptime_seconds %.3f", time.Since(c.start).Seconds())
}
