package fleet

import (
	"errors"
	"fmt"
	"sort"
)

// ErrQuotaExceeded rejects a submission over the tenant's in-flight quota
// (HTTP 429 + Retry-After, like the backend queue-full rejection).
var ErrQuotaExceeded = errors.New("fleet: tenant quota exceeded")

// tenantQ is one tenant's admission state: a FIFO of queued jobs plus the
// smooth-weighted-round-robin bookkeeping the dispatcher uses to interleave
// tenants in proportion to their class weight.
type tenantQ struct {
	name   string
	weight int
	quota  int
	cur    int // smooth WRR current credit

	fifo     []*job
	inflight int // admitted and not yet terminal

	admitted int64
	rejected int64
}

// tenant returns (creating on first use) the tenant's admission state.
// Caller holds c.mu.
//
//cadyvet:locked c.mu
func (c *Coordinator) tenant(name string) *tenantQ {
	if name == "" {
		name = "default"
	}
	tq := c.tenants[name]
	if tq == nil {
		class := c.cfg.Classes[name]
		if class == "" {
			class = "normal"
		}
		w := c.cfg.ClassWeights[class]
		if w <= 0 {
			w = 1
		}
		quota := c.cfg.DefaultQuota
		if q, ok := c.cfg.Quotas[name]; ok && q > 0 {
			quota = q
		}
		tq = &tenantQ{name: name, weight: w, quota: quota}
		c.tenants[name] = tq
	}
	return tq
}

// admitLocked charges n slots of the tenant's quota, rejecting the whole
// batch if it does not fit (ensembles are admitted atomically). Caller
// holds c.mu.
//
//cadyvet:locked c.mu
func (c *Coordinator) admitLocked(tq *tenantQ, n int) error {
	if tq.inflight+n > tq.quota {
		tq.rejected += int64(n)
		return fmt.Errorf("%w: tenant %s has %d in flight, quota %d, requested %d",
			ErrQuotaExceeded, tq.name, tq.inflight, tq.quota, n)
	}
	tq.inflight += n
	tq.admitted += int64(n)
	return nil
}

// enqueueLocked appends a job to its tenant FIFO and kicks the dispatcher.
//
//cadyvet:locked c.mu
func (c *Coordinator) enqueueLocked(j *job) {
	tq := c.tenant(j.Tenant)
	tq.fifo = append(tq.fifo, j)
	c.kickDispatch()
}

// requeueFrontLocked puts a job back at the head of its tenant FIFO (failed
// dispatch, migration) without re-charging quota.
//
//cadyvet:locked c.mu
func (c *Coordinator) requeueFrontLocked(j *job) {
	j.State = fQueued
	j.Backend = ""
	j.BackendID = ""
	j.remote = nil
	tq := c.tenant(j.Tenant)
	tq.fifo = append([]*job{j}, tq.fifo...)
	c.kickDispatch()
}

// releaseLocked returns a terminal job's quota slot.
//
//cadyvet:locked c.mu
func (c *Coordinator) releaseLocked(j *job) {
	tq := c.tenant(j.Tenant)
	if tq.inflight > 0 {
		tq.inflight--
	}
}

// nextQueuedLocked pops the next job to dispatch using smooth weighted round
// robin across tenants with queued work: every active tenant gains its
// weight in credit, the richest tenant (ties by name) is served and pays
// back the total active weight. Under contention each tenant's dispatch
// share converges to weight/Σweights, so a greedy low-priority tenant
// cannot starve a high-priority one. Returns nil when nothing is queued.
//
//cadyvet:locked c.mu
func (c *Coordinator) nextQueuedLocked() *job {
	if c.paused {
		return nil
	}
	var active []*tenantQ
	total := 0
	//cadyvet:unordered candidate collection only; the selection below is a
	// deterministic max over (cur, name) after sorting by name
	for _, tq := range c.tenants {
		if len(tq.fifo) > 0 {
			active = append(active, tq)
			total += tq.weight
		}
	}
	if len(active) == 0 {
		return nil
	}
	sort.Slice(active, func(a, b int) bool { return active[a].name < active[b].name })
	var best *tenantQ
	for _, tq := range active {
		tq.cur += tq.weight
		if best == nil || tq.cur > best.cur {
			best = tq
		}
	}
	best.cur -= total
	j := best.fifo[0]
	best.fifo = best.fifo[1:]
	return j
}

// dropQueuedLocked removes a queued job from its tenant FIFO (cancel).
//
//cadyvet:locked c.mu
func (c *Coordinator) dropQueuedLocked(j *job) {
	tq := c.tenant(j.Tenant)
	for i, q := range tq.fifo {
		if q == j {
			tq.fifo = append(tq.fifo[:i], tq.fifo[i+1:]...)
			return
		}
	}
}

// kickDispatch nudges the dispatcher without blocking.
func (c *Coordinator) kickDispatch() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}
