package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cadycore/internal/checkpoint"
	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/server"
	"cadycore/internal/state"
	"cadycore/internal/testutil"
)

// testBackend is one in-process cadyserved: a server.Server behind a real
// HTTP listener, attached to the shared store like `cadyserved -shared`.
type testBackend struct {
	srv *server.Server
	ts  *httptest.Server
}

// kill simulates backend death: client connections are torn down, the
// listener closes (probes and submits get connection errors), and the
// compute drains in the background. The CI chaos smoke covers the true
// SIGKILL of a separate process; in-process this is the closest analog.
func (b *testBackend) kill() {
	b.ts.CloseClientConnections()
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		b.srv.Shutdown(ctx)
	}()
	b.ts.Close()
}

// fleetHarness bundles a coordinator, its backends and the shared store.
type fleetHarness struct {
	coord    *Coordinator
	cts      *httptest.Server
	backends []*testBackend
	store    *checkpoint.DirStore
	storeDir string
}

func newFleetHarness(t *testing.T, nBackends, workersEach, queueEach int, mut func(*Config)) *fleetHarness {
	t.Helper()
	// Leak check first: cleanups run in reverse order, so every backend
	// and coordinator shutdown below completes before the goroutine
	// snapshot is compared.
	testutil.VerifyNoLeaks(t)
	storeDir := t.TempDir()
	h := &fleetHarness{storeDir: storeDir}
	store, err := checkpoint.NewDirStore(storeDir)
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	h.store = store
	var urls []string
	for i := 0; i < nBackends; i++ {
		// Each backend opens its own DirStore handle on the same directory,
		// like separate processes sharing a mount.
		bs, err := checkpoint.NewDirStore(storeDir)
		if err != nil {
			t.Fatalf("NewDirStore backend %d: %v", i, err)
		}
		srv, err := server.New(server.Config{Workers: workersEach, QueueCap: queueEach, Shared: bs})
		if err != nil {
			t.Fatalf("server.New backend %d: %v", i, err)
		}
		ts := httptest.NewServer(srv)
		b := &testBackend{srv: srv, ts: ts}
		h.backends = append(h.backends, b)
		urls = append(urls, ts.URL)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			b.srv.Shutdown(ctx)
			b.ts.Close()
		})
	}
	cfg := Config{
		Backends:      urls,
		StoreDir:      storeDir,
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  time.Second,
		FailThreshold: 2,
		WatchInterval: 20 * time.Millisecond,
		DispatchRetry: 10 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	h.coord = coord
	h.cts = httptest.NewServer(coord)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		h.coord.Shutdown(ctx)
		h.cts.Close()
	})
	return h
}

func (h *fleetHarness) postJSON(t *testing.T, path string, body any, tenant string) *http.Response {
	t.Helper()
	b, _ := json.Marshal(body)
	req, _ := http.NewRequest(http.MethodPost, h.cts.URL+path, bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	return resp
}

func decodeInfo(t *testing.T, resp *http.Response) JobInfo {
	t.Helper()
	defer resp.Body.Close()
	var info JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decoding job info: %v", err)
	}
	return info
}

// waitJob polls GET /jobs/{id} until the public state matches.
func (h *fleetHarness) waitJob(t *testing.T, id, want string, timeout time.Duration) JobInfo {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last JobInfo
	for time.Now().Before(deadline) {
		resp, err := http.Get(h.cts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatalf("GET job %s: %v", id, err)
		}
		last = decodeInfo(t, resp)
		if last.State == want {
			return last
		}
		if last.State == string(fFailed) && want != string(fFailed) {
			t.Fatalf("job %s failed (%s), want %s", id, last.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for job %s to reach %s (last %s)", id, want, last.State)
	return JobInfo{}
}

func (h *fleetHarness) metricsText(t *testing.T) string {
	t.Helper()
	resp, err := http.Get(h.cts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			var f float64
			fmt.Sscanf(v, "%g", &f)
			return f
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// refFinal runs the spec uninterrupted through dycore (the same integrator
// configuration the backends use) and gathers the final state.
func refFinal(t *testing.T, spec server.JobSpec) *checkpoint.Global {
	t.Helper()
	if err := spec.Normalize(); err != nil {
		t.Fatalf("ref spec: %v", err)
	}
	g := grid.New(spec.Nx, spec.Ny, spec.Nz)
	cfg := dycore.DefaultConfig()
	cfg.M = spec.M
	cfg.StageM = spec.StageM
	cfg.Dt1, cfg.Dt2 = spec.Dt1, spec.Dt2
	var a dycore.Algorithm
	switch spec.Alg {
	case "ca":
		a = dycore.AlgCommAvoid
	case "yz":
		a = dycore.AlgBaselineYZ
	case "xy":
		a = dycore.AlgBaselineXY
	default:
		t.Fatalf("ref: unsupported alg %q", spec.Alg)
	}
	set := dycore.Setup{Alg: a, PA: spec.PA, PB: spec.PB, Cfg: cfg}
	hs := heldsuarez.Standard()
	hook := func(g *grid.Grid, st *state.State, step int) { hs.Apply(g, st, spec.Dt2) }
	res := dycore.RunWithHook(set, g, comm.TianheLike(), heldsuarez.InitialState, spec.Steps, hook)
	return checkpoint.Gather(g, res.Finals)
}

// maxDiff is the max abs difference over all components of two snapshots.
func maxDiff(a, b *checkpoint.Global) float64 {
	d := 0.0
	for _, pair := range [][2][]float64{{a.U, b.U}, {a.V, b.V}, {a.Phi, b.Phi}, {a.Psa, b.Psa}} {
		for i := range pair[0] {
			if m := math.Abs(pair[0][i] - pair[1][i]); m > d {
				d = m
			}
		}
	}
	return d
}

// TestMigrationResumesAcrossBackends is the headline tentpole test: a job is
// killed mid-run with its backend and must complete on the other backend,
// resuming from the shared checkpoint, with baseline-YZ accuracy bitwise and
// comm-avoiding within the documented 1e-6 of an uninterrupted run.
func TestMigrationResumesAcrossBackends(t *testing.T) {
	cases := []struct {
		alg string
		tol float64 // 0 = bitwise
	}{
		{"yz", 0},
		{"ca", 1e-6},
	}
	for _, tc := range cases {
		t.Run(tc.alg, func(t *testing.T) {
			h := newFleetHarness(t, 2, 1, 4, nil)
			spec := server.JobSpec{
				Alg: tc.alg, Nx: 48, Ny: 24, Nz: 8, PA: 2, PB: 2, M: 2,
				Steps: 150, CheckpointEvery: 1,
			}
			resp := h.postJSON(t, "/jobs", spec, "acme")
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit: %d", resp.StatusCode)
			}
			info := decodeInfo(t, resp)

			// Wait until the job has made some checkpointed progress.
			deadline := time.Now().Add(30 * time.Second)
			var owner string
			for time.Now().Before(deadline) {
				cur, _ := h.coord.GetJob(info.ID)
				h.coord.mu.Lock()
				steps, backend, st := cur.stepsDone, cur.Backend, cur.State
				h.coord.mu.Unlock()
				if st.terminal() {
					t.Fatalf("job finished before the kill (%s); raise Steps", st)
				}
				if steps >= 2 && backend != "" {
					owner = backend
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			if owner == "" {
				t.Fatal("job never made progress")
			}

			// Kill the owning backend mid-job.
			for _, b := range h.backends {
				if b.ts.URL == owner {
					b.kill()
				}
			}

			final := h.waitJob(t, info.ID, "completed", 60*time.Second)
			if final.Migrations < 1 {
				t.Fatalf("completed without migrating (migrations = %d)", final.Migrations)
			}
			if final.Backend == owner {
				t.Fatalf("completed on the killed backend %s", owner)
			}
			met := h.metricsText(t)
			if metricValue(t, met, "cady_fleet_migrations_total") < 1 {
				t.Fatal("cady_fleet_migrations_total = 0 after a migration")
			}
			if metricValue(t, met, "cady_fleet_backends_healthy") > 1 {
				t.Fatal("killed backend still counted healthy")
			}

			// Accuracy: the shared store's final snapshot vs uninterrupted.
			gl, step, err := h.store.Latest(info.ID)
			if err != nil {
				t.Fatalf("shared store Latest: %v", err)
			}
			if step != spec.Steps {
				t.Fatalf("final shared checkpoint at step %d, want %d", step, spec.Steps)
			}
			ref := refFinal(t, spec)
			if tc.tol == 0 {
				if !gl.Equal(ref) {
					t.Fatalf("yz migrated final differs from uninterrupted run (max diff %g)", maxDiff(gl, ref))
				}
			} else if d := maxDiff(gl, ref); d > tc.tol {
				t.Fatalf("ca migrated final differs from uninterrupted run by %g > %g", d, tc.tol)
			}
		})
	}
}

// TestTenantQuotaRejects asserts the admission contract: over-quota
// submissions get 429 + Retry-After at the coordinator.
func TestTenantQuotaRejects(t *testing.T) {
	h := newFleetHarness(t, 1, 1, 4, func(cfg *Config) {
		cfg.Quotas = map[string]int{"greedy": 2}
	})
	h.coord.mu.Lock()
	h.coord.paused = true
	h.coord.mu.Unlock()

	spec := server.JobSpec{Alg: "yz", Nx: 16, Ny: 8, Nz: 4, PA: 1, PB: 1, M: 1, Steps: 1}
	for i := 0; i < 2; i++ {
		resp := h.postJSON(t, "/jobs", spec, "greedy")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := h.postJSON(t, "/jobs", spec, "greedy")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	resp.Body.Close()
	// Another tenant is unaffected.
	resp = h.postJSON(t, "/jobs", spec, "bystander")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bystander submit: %d", resp.StatusCode)
	}
	resp.Body.Close()
	met := h.metricsText(t)
	if !strings.Contains(met, `cady_fleet_tenant_rejected_total{tenant="greedy"} 1`) {
		t.Fatal("rejected counter for greedy tenant missing")
	}
}

// TestWeightedFairDequeue pins the smooth-WRR schedule: a greedy low-class
// tenant's backlog cannot starve a high-class tenant — the high tenant's
// jobs dispatch first and the long-run share follows the 4:1 class weights.
func TestWeightedFairDequeue(t *testing.T) {
	h := newFleetHarness(t, 1, 2, 16, func(cfg *Config) {
		cfg.Classes = map[string]string{"vip": "high", "batch": "low"}
		cfg.DefaultQuota = 16
	})
	h.coord.mu.Lock()
	h.coord.paused = true
	h.coord.mu.Unlock()

	spec := server.JobSpec{Alg: "yz", Nx: 16, Ny: 8, Nz: 4, PA: 1, PB: 1, M: 1, Steps: 1}
	// The greedy tenant floods first; the priority tenant arrives last.
	for i := 0; i < 10; i++ {
		resp := h.postJSON(t, "/jobs", spec, "batch")
		resp.Body.Close()
	}
	var vipIDs []string
	for i := 0; i < 2; i++ {
		resp := h.postJSON(t, "/jobs", spec, "vip")
		vipIDs = append(vipIDs, decodeInfo(t, resp).ID)
	}

	// Drain the dequeue order deterministically (dispatcher stays paused:
	// nextQueuedLocked returns nil while paused, so pop with it directly).
	h.coord.mu.Lock()
	h.coord.paused = false
	var order []string
	for {
		j := h.coord.nextQueuedLocked()
		if j == nil {
			break
		}
		order = append(order, j.Tenant)
		j.State = fDispatching // keep it out of the FIFO
	}
	h.coord.paused = true
	h.coord.mu.Unlock()
	if len(order) != 12 {
		t.Fatalf("drained %d jobs, want 12", len(order))
	}
	// Both vip jobs are served before any starvation window: with weights
	// 4:1 the vip tenant wins the first two dispatch slots even though its
	// jobs were submitted last.
	if order[0] != "vip" || order[1] != "vip" {
		t.Fatalf("dequeue order %v: vip jobs not served first", order[:4])
	}

	// End to end: un-park everything and require 100%% completion.
	h.coord.mu.Lock()
	for _, id := range h.coord.order {
		j := h.coord.jobs[id]
		if j.State == fDispatching {
			j.State = fQueued
			tq := h.coord.tenant(j.Tenant)
			tq.fifo = append(tq.fifo, j)
		}
	}
	h.coord.paused = false
	h.coord.kickDispatch()
	h.coord.mu.Unlock()
	for _, id := range vipIDs {
		h.waitJob(t, id, "completed", 60*time.Second)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		h.coord.mu.Lock()
		done := 0
		for _, id := range h.coord.order {
			if h.coord.jobs[id].State == fCompleted {
				done++
			}
		}
		total := len(h.coord.order)
		h.coord.mu.Unlock()
		if done == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d jobs completed", done, total)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEnsembleDeterminism: the same seeded ensemble fans into the same
// member set — member finals are bitwise-reproducible across submissions
// and mutually distinct within one ensemble.
func TestEnsembleDeterminism(t *testing.T) {
	h := newFleetHarness(t, 1, 2, 16, func(cfg *Config) { cfg.DefaultQuota = 16 })
	es := EnsembleSpec{
		Job:     server.JobSpec{Alg: "yz", Nx: 16, Ny: 8, Nz: 4, PA: 1, PB: 1, M: 1, Steps: 2},
		Members: 3,
		Seed:    7,
	}
	waitEnsemble := func(id string) EnsembleStatus {
		deadline := time.Now().Add(60 * time.Second)
		for {
			resp, err := http.Get(h.cts.URL + "/ensembles/" + id)
			if err != nil {
				t.Fatalf("GET ensemble: %v", err)
			}
			var st EnsembleStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatalf("decode ensemble: %v", err)
			}
			resp.Body.Close()
			if st.State == "completed" {
				return st
			}
			if st.State == "failed" || time.Now().After(deadline) {
				t.Fatalf("ensemble %s state %s (completed %d, failed %d)", id, st.State, st.Completed, st.Failed)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	resp := h.postJSON(t, "/ensembles", es, "acme")
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit ensemble: %d: %s", resp.StatusCode, b)
	}
	var first EnsembleStatus
	json.NewDecoder(resp.Body).Decode(&first)
	resp.Body.Close()
	st1 := waitEnsemble(first.ID)

	// Aggregated diagnostics cover all members and are internally coherent.
	if len(st1.Diagnostics) == 0 {
		t.Fatal("completed ensemble has no aggregated diagnostics")
	}
	ke, ok := st1.Diagnostics["kinetic_energy"]
	if !ok || ke.Count != 3 {
		t.Fatalf("kinetic_energy aggregate missing or wrong count: %+v", ke)
	}
	if !(ke.Min <= ke.Mean && ke.Mean <= ke.Max) {
		t.Fatalf("aggregate not ordered: %+v", ke)
	}
	if ke.Min == ke.Max {
		t.Fatal("perturbed members produced identical kinetic energy (no spread)")
	}

	finals1 := make([]*checkpoint.Global, 3)
	for m := 0; m < 3; m++ {
		gl, step, err := h.store.Latest(fmt.Sprintf("%s-m%02d", first.ID, m))
		if err != nil || step != es.Job.Steps {
			t.Fatalf("member %d final: step %d err %v", m, step, err)
		}
		finals1[m] = gl
	}
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			if finals1[a].Equal(finals1[b]) {
				t.Fatalf("members %d and %d are bitwise identical — perturbation did not differentiate them", a, b)
			}
		}
	}

	// Resubmit the identical ensemble: same member set, bitwise.
	resp = h.postJSON(t, "/ensembles", es, "acme")
	var second EnsembleStatus
	json.NewDecoder(resp.Body).Decode(&second)
	resp.Body.Close()
	waitEnsemble(second.ID)
	for m := 0; m < 3; m++ {
		gl, _, err := h.store.Latest(fmt.Sprintf("%s-m%02d", second.ID, m))
		if err != nil {
			t.Fatalf("second ensemble member %d: %v", m, err)
		}
		if !gl.Equal(finals1[m]) {
			t.Fatalf("member %d differs across identically-seeded ensembles", m)
		}
	}
}

// TestCoordinatorRestartReconciliation: a new coordinator over the same
// store adopts completed jobs as completed and running jobs in place —
// without dispatching them a second time.
func TestCoordinatorRestartReconciliation(t *testing.T) {
	h := newFleetHarness(t, 1, 1, 4, nil)

	quick := server.JobSpec{Alg: "yz", Nx: 16, Ny: 8, Nz: 4, PA: 1, PB: 1, M: 1, Steps: 1}
	resp := h.postJSON(t, "/jobs", quick, "acme")
	qinfo := decodeInfo(t, resp)
	h.waitJob(t, qinfo.ID, "completed", 30*time.Second)

	long := server.JobSpec{Alg: "yz", Nx: 48, Ny: 24, Nz: 8, PA: 2, PB: 2, M: 2, Steps: 40, CheckpointEvery: 2}
	resp = h.postJSON(t, "/jobs", long, "acme")
	linfo := decodeInfo(t, resp)
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, _ := h.coord.GetJob(linfo.ID)
		h.coord.mu.Lock()
		running := cur.State == fRunning && cur.stepsDone >= 1
		terminal := cur.State.terminal()
		h.coord.mu.Unlock()
		if running {
			break
		}
		if terminal || time.Now().After(deadline) {
			t.Fatal("long job did not reach a mid-run running state")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Stop the coordinator (NOT the backend: its copy keeps running).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	h.coord.Shutdown(ctx)
	cancel()
	h.cts.Close()

	// A new coordinator over the same store and backends reconciles.
	cfg := Config{
		Backends:      []string{h.backends[0].ts.URL},
		StoreDir:      h.storeDir,
		ProbeInterval: 20 * time.Millisecond,
		WatchInterval: 20 * time.Millisecond,
		DispatchRetry: 10 * time.Millisecond,
	}
	coord2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart fleet.New: %v", err)
	}
	h.coord = coord2
	h.cts = httptest.NewServer(coord2)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		coord2.Shutdown(ctx)
		h.cts.Close()
	})

	// The completed job survived as completed.
	resp2, err := http.Get(h.cts.URL + "/jobs/" + qinfo.ID)
	if err != nil {
		t.Fatalf("GET recovered job: %v", err)
	}
	if got := decodeInfo(t, resp2); got.State != "completed" {
		t.Fatalf("recovered quick job state %s, want completed", got.State)
	}

	// The running job was adopted, finishes, and was not double-dispatched.
	final := h.waitJob(t, linfo.ID, "completed", 60*time.Second)
	if final.Migrations != 0 {
		t.Fatalf("adopted job migrated %d times during a clean restart", final.Migrations)
	}
	bresp, err := http.Get(h.backends[0].ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("backend metrics: %v", err)
	}
	b, _ := io.ReadAll(bresp.Body)
	bresp.Body.Close()
	if v := metricValue(t, string(b), "cady_jobs_submitted_total"); v != 2 {
		t.Fatalf("backend saw %g submissions, want 2 (no re-dispatch on reconcile)", v)
	}
	met := h.metricsText(t)
	if metricValue(t, met, "cady_fleet_jobs_completed_total") < 2 {
		t.Fatal("completed counter not rebuilt after restart")
	}
}

// TestScrapeAggregates: the coordinator's scrape-and-sum backend aggregates
// appear and count the fleet's work.
func TestScrapeAggregates(t *testing.T) {
	h := newFleetHarness(t, 2, 1, 4, nil)
	spec := server.JobSpec{Alg: "yz", Nx: 16, Ny: 8, Nz: 4, PA: 1, PB: 1, M: 1, Steps: 2}
	var ids []string
	for i := 0; i < 4; i++ {
		resp := h.postJSON(t, "/jobs", spec, fmt.Sprintf("t%d", i%2))
		ids = append(ids, decodeInfo(t, resp).ID)
	}
	for _, id := range ids {
		h.waitJob(t, id, "completed", 60*time.Second)
	}
	// Force a scrape after completion so the sums are current.
	for _, b := range h.backends {
		h.coord.probeBackend(b.ts.URL)
	}
	met := h.metricsText(t)
	if v := metricValue(t, met, "cady_fleet_agg_jobs_completed_total"); v != 4 {
		t.Fatalf("cady_fleet_agg_jobs_completed_total = %g, want 4", v)
	}
	if v := metricValue(t, met, "cady_fleet_agg_steps_total"); v < 8 {
		t.Fatalf("cady_fleet_agg_steps_total = %g, want >= 8", v)
	}
}

// TestSharedKeyRejected: clients cannot forge the coordinator-owned key.
func TestSharedKeyRejected(t *testing.T) {
	h := newFleetHarness(t, 1, 1, 4, nil)
	spec := server.JobSpec{Alg: "yz", SharedKey: "sneaky"}
	resp := h.postJSON(t, "/jobs", spec, "acme")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("forged shared_key accepted: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestRendezvousStability: routing is consistent by job ID and covers all
// backends across many IDs.
func TestRendezvousStability(t *testing.T) {
	urls := []string{"http://a:1", "http://b:2", "http://c:3"}
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		id := fmt.Sprintf("f-%06d", i)
		best, bestScore := "", uint64(0)
		for _, u := range urls {
			if s := rendezvousScore(id, u); best == "" || s > bestScore {
				best, bestScore = u, s
			}
		}
		// Stable on recomputation.
		again, againScore := "", uint64(0)
		for _, u := range urls {
			if s := rendezvousScore(id, u); again == "" || s > againScore {
				again, againScore = u, s
			}
		}
		if best != again {
			t.Fatalf("routing for %s unstable", id)
		}
		counts[best]++
	}
	for _, u := range urls {
		if counts[u] < 50 {
			t.Fatalf("backend %s got %d/300 jobs — rendezvous spread badly skewed: %v", u, counts[u], counts)
		}
	}
}

// TestDispatcherRetryTimer: the dispatcher must wake on its retry timer
// alone — repeatedly, without any kick. Regression test for the reused
// time.NewTimer in dispatcher(): a hoisted timer that is never Reset fires
// once and then parks the dispatcher forever, so two back-to-back
// kick-free rounds are required to pass.
func TestDispatcherRetryTimer(t *testing.T) {
	h := newFleetHarness(t, 1, 1, 4, nil)
	spec := server.JobSpec{Alg: "yz", Nx: 16, Ny: 8, Nz: 4, PA: 1, PB: 1, M: 1, Steps: 1}
	for round := 0; round < 2; round++ {
		h.coord.mu.Lock()
		h.coord.paused = true
		h.coord.mu.Unlock()
		resp := h.postJSON(t, "/jobs", spec, "acme")
		id := decodeInfo(t, resp).ID
		// Unpause without kickDispatch: only the retry timer can wake the
		// dispatcher now (any kick from submission was consumed while the
		// queue looked empty under pause).
		time.Sleep(50 * time.Millisecond)
		h.coord.mu.Lock()
		h.coord.paused = false
		h.coord.mu.Unlock()
		h.waitJob(t, id, "completed", 30*time.Second)
	}
}

var _ = filepath.Join // keep import if helpers change
