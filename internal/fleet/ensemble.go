package fleet

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"cadycore/internal/server"
)

// EnsembleSpec fans one run JobSpec into Members perturbed copies. Member m
// runs the base job with a deterministic initial-state perturbation of
// relative amplitude PerturbAmp seeded by (Seed, m), so the same spec always
// produces the same member set (and member 0 of one ensemble equals member 0
// of an identically-seeded resubmission, bitwise, for deterministic
// integrators).
type EnsembleSpec struct {
	Job     server.JobSpec `json:"job"`
	Members int            `json:"members"`
	// Seed seeds the member perturbation streams (default 1).
	Seed int64 `json:"seed,omitempty"`
	// PerturbAmp is the relative perturbation amplitude (default 1e-4).
	PerturbAmp float64 `json:"perturb_amp,omitempty"`
}

const (
	minMembers = 2
	maxMembers = 64
)

// normalize validates the fan-out parameters and the base job.
func (es *EnsembleSpec) normalize() error {
	if es.Members < minMembers || es.Members > maxMembers {
		return fmt.Errorf("fleet: members = %d outside [%d, %d]", es.Members, minMembers, maxMembers)
	}
	if es.Seed == 0 {
		es.Seed = 1
	}
	if es.PerturbAmp == 0 {
		es.PerturbAmp = 1e-4
	}
	if es.PerturbAmp < 0 || es.PerturbAmp > 0.1 {
		return fmt.Errorf("fleet: perturb_amp = %g outside (0, 0.1]", es.PerturbAmp)
	}
	if es.Job.SharedKey != "" || es.Job.PerturbAmp != 0 || es.Job.PerturbSeed != 0 {
		return errors.New("fleet: ensemble member shared_key/perturb_* are coordinator-assigned; leave them empty")
	}
	if err := es.Job.Normalize(); err != nil {
		return err
	}
	if es.Job.Kind != "run" {
		return fmt.Errorf("fleet: ensembles fan out run jobs, not %q", es.Job.Kind)
	}
	return nil
}

// memberSeed derives member m's perturbation seed from the ensemble seed
// (golden-ratio mix, distinct for every (seed, m)).
func memberSeed(seed int64, m int) int64 {
	return int64(uint64(seed)*0x9e3779b97f4a7c15 + uint64(m) + 1)
}

// SubmitEnsemble admits one ensemble: the base job is validated once, the
// tenant quota is charged for all members atomically (no partial fan-out),
// and each member becomes a fleet job with its own shared-store key
// "<ensemble>-mNN" and derived perturbation seed.
func (c *Coordinator) SubmitEnsemble(es EnsembleSpec, tenant string) (*ensemble, error) {
	if tenant == "" {
		tenant = es.Job.Tenant
	}
	if tenant == "" {
		tenant = "default"
	}
	es.Job.Tenant = tenant
	if err := es.normalize(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	tq := c.tenant(tenant)
	if err := c.admitLocked(tq, es.Members); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.eseq++
	e := &ensemble{
		ID:        fmt.Sprintf("e-%06d", c.eseq),
		Tenant:    tenant,
		Spec:      es,
		submitted: time.Now(),
	}
	for m := 0; m < es.Members; m++ {
		spec := es.Job
		spec.PerturbSeed = memberSeed(es.Seed, m)
		spec.PerturbAmp = es.PerturbAmp
		j := &job{
			ID:        fmt.Sprintf("%s-m%02d", e.ID, m),
			Tenant:    tenant,
			Spec:      spec,
			Ensemble:  e.ID,
			Member:    m,
			State:     fQueued,
			submitted: e.submitted,
		}
		j.Spec.SharedKey = j.ID
		c.jobs[j.ID] = j
		c.order = append(c.order, j.ID)
		e.Members = append(e.Members, j.ID)
		c.enqueueLocked(j)
	}
	c.ensembles[e.ID] = e
	c.eorder = append(c.eorder, e.ID)
	c.met.ensembles++
	c.mu.Unlock()
	c.persist()
	return e, nil
}

// GetEnsemble returns an ensemble by ID.
func (c *Coordinator) GetEnsemble(id string) (*ensemble, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.ensembles[id]
	return e, ok
}

// DiagAggregate is the member min/max/mean of one diagnostic.
type DiagAggregate struct {
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	Count int     `json:"count"`
}

// EnsembleStatus is the JSON view of an ensemble.
type EnsembleStatus struct {
	ID        string `json:"id"`
	Tenant    string `json:"tenant"`
	State     string `json:"state"`
	Members   int    `json:"members"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	Cancelled int    `json:"cancelled"`

	MemberJobs []JobInfo `json:"member_jobs"`
	// Diagnostics aggregates the completed members' diagnostic outputs
	// (min/max/mean over members) — the ensemble-spread summary.
	Diagnostics map[string]DiagAggregate `json:"diagnostics,omitempty"`

	Seed        int64   `json:"seed"`
	PerturbAmp  float64 `json:"perturb_amp"`
	SubmittedAt string  `json:"submitted_at"`
}

// ensembleStatusLocked assembles the status view. Caller holds c.mu.
//
//cadyvet:locked c.mu
func (c *Coordinator) ensembleStatusLocked(e *ensemble) EnsembleStatus {
	st := EnsembleStatus{
		ID: e.ID, Tenant: e.Tenant,
		Members:     len(e.Members),
		Seed:        e.Spec.Seed,
		PerturbAmp:  e.Spec.PerturbAmp,
		SubmittedAt: e.submitted.UTC().Format(time.RFC3339Nano),
	}
	agg := make(map[string]*DiagAggregate)
	terminal := 0
	for _, id := range e.Members {
		j := c.jobs[id]
		if j == nil {
			continue
		}
		st.MemberJobs = append(st.MemberJobs, c.jobInfoLocked(j))
		switch j.State {
		case fCompleted:
			st.Completed++
			terminal++
			if j.remote != nil {
				//cadyvet:unordered element-wise accumulation into a keyed
				// aggregate; emission sorts the keys
				for k, v := range j.remote.Diagnostics {
					a := agg[k]
					if a == nil {
						a = &DiagAggregate{Min: math.Inf(1), Max: math.Inf(-1)}
						agg[k] = a
					}
					a.Min = math.Min(a.Min, v)
					a.Max = math.Max(a.Max, v)
					a.Mean += v
					a.Count++
				}
			}
		case fFailed:
			st.Failed++
			terminal++
		case fCancelled:
			st.Cancelled++
			terminal++
		}
	}
	if len(agg) > 0 {
		st.Diagnostics = make(map[string]DiagAggregate, len(agg))
		keys := make([]string, 0, len(agg))
		//cadyvet:unordered key collection only; values are written per key
		for k := range agg {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			a := agg[k]
			if a.Count > 0 {
				a.Mean /= float64(a.Count)
			}
			st.Diagnostics[k] = *a
		}
	}
	switch {
	case terminal < len(e.Members):
		st.State = "running"
	case st.Failed > 0:
		st.State = "failed"
	case st.Cancelled > 0:
		st.State = "cancelled"
	default:
		st.State = "completed"
	}
	return st
}
