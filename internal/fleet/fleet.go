// Package fleet is the sharded multi-tenant serving layer: a coordinator
// that fronts N cadyserved backends behind the same HTTP/JSON job API. It
// admits jobs under per-tenant quotas and priority classes (weighted-fair
// dequeue), shards them across backends (rendezvous hashing by job ID with a
// least-loaded fallback read from each backend's /metrics), and persists
// job→backend routing plus checkpoints in a shared artifact store
// (checkpoint.DirStore) so that when a backend dies mid-job — detected by
// health probes with exponential backoff — the job migrates to a live
// backend and resumes from the latest shared checkpoint via the proven
// ResumeSetter path. On top of sharding it fans one JobSpec into K perturbed
// ensemble members and aggregates their diagnostics.
//
//cadyvet:persistence fleet.json routing state survives coordinator restarts; durable writes route through checkpoint.WriteFileAtomic
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"cadycore/internal/checkpoint"
	"cadycore/internal/server"
)

// Config sizes the coordinator.
type Config struct {
	// Backends are the base URLs of the cadyserved daemons (e.g.
	// "http://127.0.0.1:8081"). More can be registered at runtime via
	// POST /backends.
	Backends []string
	// StoreDir is the shared artifact store directory: every backend must
	// run with -shared pointing at the same path. The coordinator keeps its
	// own routing state in StoreDir/fleet.json and reads final member states
	// from the *.ck files the backends dual-write.
	StoreDir string

	// DefaultQuota caps a tenant's in-flight (admitted, not yet terminal)
	// jobs (default 8); Quotas overrides it per tenant. Submissions beyond
	// the quota are rejected with 429 + Retry-After.
	DefaultQuota int
	Quotas       map[string]int
	// Classes assigns tenants to a priority class ("high", "normal", "low";
	// default "normal"); ClassWeights sets the weighted-fair dequeue weight
	// of each class (defaults 4/2/1). A tenant's share of dispatch slots
	// under contention is proportional to its weight.
	Classes      map[string]string
	ClassWeights map[string]int

	// ProbeInterval is the health-probe cadence (default 500ms);
	// ProbeTimeout bounds one probe (default 2s). A backend that fails
	// FailThreshold consecutive probes (default 3) is declared dead and its
	// jobs migrate; while failing, re-probes back off exponentially from
	// ProbeInterval up to ProbeBackoffMax (default 4s).
	ProbeInterval   time.Duration
	ProbeTimeout    time.Duration
	FailThreshold   int
	ProbeBackoffMax time.Duration

	// WatchInterval is the reconciliation cadence: how often the coordinator
	// lists every backend's jobs to pick up terminal states it has not
	// observed through status proxying, and to cancel zombie copies left on
	// recovered backends (default 200ms).
	WatchInterval time.Duration

	// MaxMigrations bounds how many times one job may be migrated before it
	// is failed (default 3). DispatchRetry is the idle wait when no backend
	// can accept a job (default 50ms).
	MaxMigrations int
	DispatchRetry time.Duration

	// Client, when non-nil, overrides the HTTP client used for backend
	// calls (probes use a per-call timeout on top of it).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.DefaultQuota <= 0 {
		c.DefaultQuota = 8
	}
	if c.ClassWeights == nil {
		c.ClassWeights = map[string]int{"high": 4, "normal": 2, "low": 1}
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ProbeBackoffMax <= 0 {
		c.ProbeBackoffMax = 4 * time.Second
	}
	if c.WatchInterval <= 0 {
		c.WatchInterval = 200 * time.Millisecond
	}
	if c.MaxMigrations <= 0 {
		c.MaxMigrations = 3
	}
	if c.DispatchRetry <= 0 {
		c.DispatchRetry = 50 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// jstate is a fleet job's lifecycle state. "dispatching" (a dispatcher owns
// the job but the submit POST is in flight) is internal; the HTTP API
// reports it as "queued".
type jstate string

const (
	fQueued      jstate = "queued"
	fDispatching jstate = "dispatching"
	fRunning     jstate = "running"
	fCompleted   jstate = "completed"
	fFailed      jstate = "failed"
	fCancelled   jstate = "cancelled"
)

func (st jstate) terminal() bool {
	return st == fCompleted || st == fFailed || st == fCancelled
}

// public maps the internal state to the API vocabulary.
func (st jstate) public() string {
	if st == fDispatching {
		return string(fQueued)
	}
	return string(st)
}

// job is one coordinator-tracked job. All mutable fields are guarded by the
// coordinator mutex.
type job struct {
	ID     string
	Tenant string
	Spec   server.JobSpec // normalized; SharedKey = ID, Tenant set

	Ensemble string // owning ensemble ID ("" for plain jobs)
	Member   int

	State      jstate
	Backend    string // owning backend URL while dispatched
	BackendID  string // backend-local job ID
	Migrations int
	ErrMsg     string

	cancelRequested bool
	remote          *server.JobStatus // last observed backend status
	stepsDone       int               // high-water mark across backends

	submitted time.Time
	finished  time.Time
}

// ensemble is one fan-out of K perturbed members.
type ensemble struct {
	ID      string
	Tenant  string
	Spec    EnsembleSpec
	Members []string // fleet job IDs, member order

	submitted time.Time
}

// Coordinator is the fleet control plane. Create with New, expose with
// ServeHTTP, stop with Shutdown.
type Coordinator struct {
	cfg    Config
	store  *checkpoint.DirStore
	client *http.Client
	mux    *http.ServeMux
	start  time.Time

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	backends  []*backend           //cadyvet:guardedby mu
	jobs      map[string]*job      //cadyvet:guardedby mu
	order     []string             //cadyvet:guardedby mu
	ensembles map[string]*ensemble //cadyvet:guardedby mu
	eorder    []string             //cadyvet:guardedby mu
	seq, eseq int                  //cadyvet:guardedby mu
	tenants   map[string]*tenantQ  //cadyvet:guardedby mu
	met       fleetMetrics         //cadyvet:guardedby mu

	// paused parks the dispatcher (test hook for deterministic queue
	// build-up before any dispatch).
	paused bool //cadyvet:guardedby mu

	kick chan struct{} // nudges the dispatcher when work arrives
}

// New builds the coordinator: opens the shared store, reloads fleet.json,
// probes every backend once, reconciles recovered jobs against what the
// backends report, and starts the dispatch/probe/watch loops.
//
//cadyvet:component
//cadyvet:unshared construction: c is unreachable by any other goroutine until the loops start on the last lines
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if cfg.StoreDir == "" {
		return nil, fmt.Errorf("fleet: Config.StoreDir is required")
	}
	store, err := checkpoint.NewDirStore(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:       cfg,
		store:     store,
		client:    cfg.Client,
		jobs:      make(map[string]*job),
		ensembles: make(map[string]*ensemble),
		tenants:   make(map[string]*tenantQ),
		kick:      make(chan struct{}, 1),
		start:     time.Now(),
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	for _, u := range cfg.Backends {
		c.backends = append(c.backends, newBackend(u))
	}
	c.mux = http.NewServeMux()
	c.routes()
	if err := c.load(); err != nil {
		return nil, err
	}
	c.probeAll()
	c.reconcile()
	c.persist()
	c.wg.Add(3)
	go c.dispatcher()
	go c.prober()
	go c.watcher()
	return c, nil
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// Shutdown stops the coordinator loops and persists routing state. Backends
// and their jobs are left untouched: a restarted coordinator reconciles.
//
//cadyvet:component
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.cancel()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	c.persist()
	return nil
}

// --- persistence -----------------------------------------------------------

// persistedJob is the durable form of a job record.
type persistedJob struct {
	ID         string         `json:"id"`
	Tenant     string         `json:"tenant"`
	Spec       server.JobSpec `json:"spec"`
	Ensemble   string         `json:"ensemble,omitempty"`
	Member     int            `json:"member,omitempty"`
	State      string         `json:"state"`
	Backend    string         `json:"backend,omitempty"`
	BackendID  string         `json:"backend_id,omitempty"`
	Migrations int            `json:"migrations,omitempty"`
	Error      string         `json:"error,omitempty"`
	StepsDone  int            `json:"steps_done,omitempty"`
}

type persistedEnsemble struct {
	ID      string       `json:"id"`
	Tenant  string       `json:"tenant"`
	Spec    EnsembleSpec `json:"spec"`
	Members []string     `json:"members"`
}

type persistedState struct {
	Seq       int                 `json:"seq"`
	ESeq      int                 `json:"eseq"`
	Jobs      []persistedJob      `json:"jobs"`
	Ensembles []persistedEnsemble `json:"ensembles"`
}

func (c *Coordinator) stateFile() string { return filepath.Join(c.cfg.StoreDir, "fleet.json") }

// persist durably writes the routing state (fleet.json, atomic).
func (c *Coordinator) persist() {
	c.mu.Lock()
	ps := persistedState{Seq: c.seq, ESeq: c.eseq}
	for _, id := range c.order {
		j := c.jobs[id]
		st := j.State
		if st == fDispatching {
			st = fQueued
		}
		ps.Jobs = append(ps.Jobs, persistedJob{
			ID: j.ID, Tenant: j.Tenant, Spec: j.Spec,
			Ensemble: j.Ensemble, Member: j.Member,
			State: string(st), Backend: j.Backend, BackendID: j.BackendID,
			Migrations: j.Migrations, Error: j.ErrMsg, StepsDone: j.stepsDone,
		})
	}
	for _, id := range c.eorder {
		e := c.ensembles[id]
		ps.Ensembles = append(ps.Ensembles, persistedEnsemble{
			ID: e.ID, Tenant: e.Tenant, Spec: e.Spec, Members: e.Members,
		})
	}
	c.mu.Unlock()
	b, err := json.MarshalIndent(ps, "", "  ")
	if err != nil {
		return
	}
	if err := checkpoint.WriteFileAtomic(c.stateFile(), b); err != nil {
		c.mu.Lock()
		c.met.persistErrors++
		c.mu.Unlock()
	}
}

// load reloads fleet.json (missing file = fresh fleet).
func (c *Coordinator) load() error {
	b, err := readFileIfExists(c.stateFile())
	if err != nil || b == nil {
		return err
	}
	var ps persistedState
	if err := json.Unmarshal(b, &ps); err != nil {
		return fmt.Errorf("fleet: corrupt state file %s: %w", c.stateFile(), err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq, c.eseq = ps.Seq, ps.ESeq
	for i := range ps.Jobs {
		pj := &ps.Jobs[i]
		j := &job{
			ID: pj.ID, Tenant: pj.Tenant, Spec: pj.Spec,
			Ensemble: pj.Ensemble, Member: pj.Member,
			State: jstate(pj.State), Backend: pj.Backend, BackendID: pj.BackendID,
			Migrations: pj.Migrations, ErrMsg: pj.Error, stepsDone: pj.StepsDone,
			submitted: time.Now(),
		}
		switch j.State {
		case fQueued, fRunning, fCompleted, fFailed, fCancelled:
		default:
			j.State = fQueued
		}
		c.jobs[j.ID] = j
		c.order = append(c.order, j.ID)
		// Rebuild the outcome counters so /metrics survives a restart.
		switch j.State {
		case fCompleted:
			c.met.completed++
		case fFailed:
			c.met.failed++
		case fCancelled:
			c.met.cancelled++
		}
		c.met.migrations += int64(j.Migrations)
	}
	for i := range ps.Ensembles {
		pe := &ps.Ensembles[i]
		e := &ensemble{ID: pe.ID, Tenant: pe.Tenant, Spec: pe.Spec, Members: pe.Members, submitted: time.Now()}
		c.ensembles[e.ID] = e
		c.eorder = append(c.eorder, e.ID)
	}
	return nil
}
