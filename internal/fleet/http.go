package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"cadycore/internal/server"
)

// JobInfo is the JSON view of a fleet job: the backend status vocabulary
// (id, state, steps_done, diagnostics, spec) plus the fleet routing fields,
// so clients written against cadyserved (loadgen) work against the
// coordinator unchanged.
type JobInfo struct {
	ID        string `json:"id"`
	Tenant    string `json:"tenant"`
	State     string `json:"state"`
	StepsDone int    `json:"steps_done"`
	StepsWant int    `json:"steps_total"`

	Backend      string `json:"backend,omitempty"`
	BackendJobID string `json:"backend_job_id,omitempty"`
	Migrations   int    `json:"migrations,omitempty"`
	Ensemble     string `json:"ensemble,omitempty"`
	Member       *int   `json:"member,omitempty"`
	Error        string `json:"error,omitempty"`

	SubmittedAt string `json:"submitted_at"`
	FinishedAt  string `json:"finished_at,omitempty"`

	Diagnostics map[string]float64 `json:"diagnostics,omitempty"`

	Spec server.JobSpec `json:"spec"`
}

// jobInfoLocked snapshots one job. Caller holds c.mu.
//
//cadyvet:locked c.mu
func (c *Coordinator) jobInfoLocked(j *job) JobInfo {
	info := JobInfo{
		ID:           j.ID,
		Tenant:       j.Tenant,
		State:        j.State.public(),
		StepsDone:    j.stepsDone,
		StepsWant:    j.Spec.Steps,
		Backend:      j.Backend,
		BackendJobID: j.BackendID,
		Migrations:   j.Migrations,
		Ensemble:     j.Ensemble,
		Error:        j.ErrMsg,
		SubmittedAt:  j.submitted.UTC().Format(time.RFC3339Nano),
		Spec:         j.Spec,
	}
	if j.Ensemble != "" {
		m := j.Member
		info.Member = &m
	}
	if !j.finished.IsZero() {
		info.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.remote != nil && len(j.remote.Diagnostics) > 0 {
		info.Diagnostics = j.remote.Diagnostics
	}
	return info
}

func (c *Coordinator) routes() {
	c.mux.HandleFunc("POST /jobs", c.handleSubmit)
	c.mux.HandleFunc("GET /jobs", c.handleList)
	c.mux.HandleFunc("GET /jobs/{id}", c.handleGet)
	c.mux.HandleFunc("POST /jobs/{id}/cancel", c.handleCancel)
	c.mux.HandleFunc("POST /ensembles", c.handleSubmitEnsemble)
	c.mux.HandleFunc("GET /ensembles", c.handleListEnsembles)
	c.mux.HandleFunc("GET /ensembles/{id}", c.handleGetEnsemble)
	c.mux.HandleFunc("GET /backends", c.handleBackends)
	c.mux.HandleFunc("POST /backends", c.handleRegisterBackend)
	c.mux.HandleFunc("POST /backends/drain", c.handleDrainBackend)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"internal: response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

type errorBody struct {
	Error string `json:"error"`
}

// submitError preserves the backend admission contract at the coordinator:
// quota rejections are 429 + Retry-After, validation failures are 400.
func submitError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrQuotaExceeded) {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec server.JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid JSON: " + err.Error()})
		return
	}
	j, err := c.SubmitJob(spec, r.Header.Get("X-Tenant"))
	if err != nil {
		submitError(w, err)
		return
	}
	c.mu.Lock()
	info := c.jobInfoLocked(j)
	c.mu.Unlock()
	writeJSON(w, http.StatusAccepted, info)
}

func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	filter := q.Get("status")
	offset, err := queryInt(q.Get("offset"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad offset: " + err.Error()})
		return
	}
	limit, err := queryInt(q.Get("limit"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad limit: " + err.Error()})
		return
	}
	c.mu.Lock()
	all := make([]JobInfo, 0, len(c.order))
	for _, id := range c.order {
		info := c.jobInfoLocked(c.jobs[id])
		if filter == "" || info.State == filter {
			all = append(all, info)
		}
	}
	c.mu.Unlock()
	total := len(all)
	if offset > total {
		offset = total
	}
	page := all[offset:]
	if limit > 0 && limit < len(page) {
		page = page[:limit]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs": page, "total": total, "offset": offset, "count": len(page),
	})
}

func queryInt(v string) (int, error) {
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, errors.New("must be >= 0")
	}
	return n, nil
}

// handleGet proxies the owning backend for a live status (then folds it in,
// so terminal transitions are observed at poll speed rather than watch
// cadence) and falls back to the cached view when the backend is
// unreachable.
func (c *Coordinator) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := c.GetJob(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	c.mu.Lock()
	var url, backendID string
	if j.State == fRunning {
		url, backendID = j.Backend, j.BackendID
	}
	c.mu.Unlock()
	if url != "" {
		if st, err := c.fetchJob(url, backendID); err == nil {
			c.mu.Lock()
			changed := c.applyRemoteLocked(j, st)
			c.mu.Unlock()
			if changed {
				c.persist()
			}
		}
	}
	c.mu.Lock()
	info := c.jobInfoLocked(j)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := c.GetJob(id); !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	if err := c.CancelJob(id); err != nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		return
	}
	j, _ := c.GetJob(id)
	c.mu.Lock()
	info := c.jobInfoLocked(j)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

func (c *Coordinator) handleSubmitEnsemble(w http.ResponseWriter, r *http.Request) {
	var es EnsembleSpec
	if err := json.NewDecoder(r.Body).Decode(&es); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid JSON: " + err.Error()})
		return
	}
	e, err := c.SubmitEnsemble(es, r.Header.Get("X-Tenant"))
	if err != nil {
		submitError(w, err)
		return
	}
	c.mu.Lock()
	st := c.ensembleStatusLocked(e)
	c.mu.Unlock()
	writeJSON(w, http.StatusAccepted, st)
}

func (c *Coordinator) handleListEnsembles(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	out := make([]EnsembleStatus, 0, len(c.eorder))
	for _, id := range c.eorder {
		out = append(out, c.ensembleStatusLocked(c.ensembles[id]))
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"ensembles": out})
}

func (c *Coordinator) handleGetEnsemble(w http.ResponseWriter, r *http.Request) {
	e, ok := c.GetEnsemble(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such ensemble"})
		return
	}
	// Live-refresh running members through the same proxy path the job GET
	// uses, so ensemble polling converges at poll speed.
	c.mu.Lock()
	type probe struct {
		j              *job
		url, backendID string
	}
	var probes []probe
	for _, id := range e.Members {
		if j := c.jobs[id]; j != nil && j.State == fRunning {
			probes = append(probes, probe{j, j.Backend, j.BackendID})
		}
	}
	c.mu.Unlock()
	changed := false
	for _, p := range probes {
		if st, err := c.fetchJob(p.url, p.backendID); err == nil {
			c.mu.Lock()
			if c.applyRemoteLocked(p.j, st) {
				changed = true
			}
			c.mu.Unlock()
		}
	}
	if changed {
		c.persist()
	}
	c.mu.Lock()
	st := c.ensembleStatusLocked(e)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// backendInfo is the JSON view of one backend's health.
type backendInfo struct {
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Load     int    `json:"load"`
	Capacity int    `json:"capacity"`
	Fails    int    `json:"consecutive_failures,omitempty"`
}

func (c *Coordinator) handleBackends(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	out := make([]backendInfo, 0, len(c.backends))
	for _, b := range c.backends {
		out = append(out, backendInfo{b.url, b.healthy, b.load, b.capacity, b.fails})
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"backends": out})
}

// handleRegisterBackend adds a backend at runtime (the registration hook);
// it becomes eligible for dispatch after its first successful probe.
func (c *Coordinator) handleRegisterBackend(w http.ResponseWriter, r *http.Request) {
	var req struct {
		URL string `json:"url"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.URL == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "body must be {\"url\": \"http://...\"}"})
		return
	}
	b := newBackend(req.URL)
	c.mu.Lock()
	if c.findBackendLocked(b.url) != nil {
		c.mu.Unlock()
		writeJSON(w, http.StatusConflict, errorBody{Error: "backend already registered"})
		return
	}
	c.backends = append(c.backends, b)
	c.mu.Unlock()
	c.probeBackend(b.url)
	c.mu.Lock()
	var info backendInfo
	if bb := c.findBackendLocked(b.url); bb != nil {
		info = backendInfo{bb.url, bb.healthy, bb.load, bb.capacity, bb.fails}
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusCreated, info)
}

// handleDrainBackend forwards the drain hook to one backend: it stops
// accepting work, checkpoints and interrupts its running jobs, and the
// coordinator migrates them as it observes the drain.
func (c *Coordinator) handleDrainBackend(w http.ResponseWriter, r *http.Request) {
	var req struct {
		URL string `json:"url"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.URL == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "body must be {\"url\": \"http://...\"}"})
		return
	}
	c.mu.Lock()
	b := c.findBackendLocked(newBackend(req.URL).url)
	c.mu.Unlock()
	if b == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such backend"})
		return
	}
	if err := c.drainBackend(b.url); err != nil {
		writeJSON(w, http.StatusBadGateway, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"draining": b.url})
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if c.ctx.Err() != nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.Write([]byte("ok\n"))
}
