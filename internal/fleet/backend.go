package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"cadycore/internal/server"
)

// backend is the coordinator's view of one cadyserved daemon. Mutable
// fields are guarded by the coordinator mutex; HTTP calls happen unlocked.
type backend struct {
	url string

	healthy   bool
	fails     int           // consecutive probe failures
	backoff   time.Duration // current re-probe backoff while failing
	nextProbe time.Time

	load     int // queue_depth + workers_busy at last scrape
	capacity int // queue_capacity + workers at last scrape

	// counters holds the backend's cady_* totals from the last successful
	// /metrics scrape, for the coordinator's scrape-and-sum aggregates.
	counters map[string]float64

	probes, probeFails int64
}

func newBackend(url string) *backend {
	return &backend{url: strings.TrimRight(url, "/")}
}

// full reports whether the last scrape showed no admission headroom.
func (b *backend) full() bool { return b.capacity > 0 && b.load >= b.capacity }

// aggNames is the fixed set of backend counters the coordinator sums into
// cady_fleet_agg_* metrics — the overlap/comm accounting and job totals a
// fleet operator wants fleet-wide without scraping every backend.
var aggNames = []string{
	"cady_jobs_submitted_total",
	"cady_jobs_completed_total",
	"cady_jobs_failed_total",
	"cady_steps_total",
	"cady_checkpoints_total",
	"cady_shared_snapshots_total",
	"cady_shared_resumes_total",
	"cady_rank_failures_total",
	"cady_job_restarts_total",
	"cady_comm_exposed_seconds_total",
	"cady_comm_hidden_seconds_total",
}

// probeOnce checks one backend's /healthz and, on success, scrapes /metrics
// for load and the aggregate counters. Returns the scrape results so the
// caller can apply them under the coordinator lock.
func (c *Coordinator) probeOnce(url string) (ok bool, load, capacity int, counters map[string]float64) {
	ctx, cancel := context.WithTimeout(c.ctx, c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false, 0, 0, nil
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false, 0, 0, nil
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// A draining backend (503) stops accepting and interrupts its jobs:
		// treat it as unhealthy so migration starts promptly.
		return false, 0, 0, nil
	}
	mreq, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
	if err != nil {
		return true, 0, 0, nil
	}
	mresp, err := c.client.Do(mreq)
	if err != nil {
		return true, 0, 0, nil
	}
	defer mresp.Body.Close()
	vals := parseMetrics(mresp.Body)
	load = int(vals["cady_queue_depth"] + vals["cady_workers_busy"])
	capacity = int(vals["cady_queue_capacity"] + vals["cady_workers"])
	counters = make(map[string]float64, len(aggNames))
	for _, n := range aggNames {
		if v, found := vals[n]; found {
			counters[n] = v
		}
	}
	return true, load, capacity, counters
}

// parseMetrics reads unlabeled "name value" samples from a Prometheus text
// exposition (labeled series are skipped — the coordinator only sums scalar
// totals and gauges).
func parseMetrics(r io.Reader) map[string]float64 {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, found := strings.Cut(line, " ")
		if !found || strings.ContainsAny(name, "{}") {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		out[name] = f
	}
	return out
}

// --- backend HTTP operations ----------------------------------------------

// errBackpressure marks a 429/503 submit rejection: try another backend.
var errBackpressure = errors.New("fleet: backend backpressure")

// submitToBackend POSTs a job spec to one backend.
func (c *Coordinator) submitToBackend(url string, spec server.JobSpec) (*server.JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(c.ctx, http.MethodPost, url+"/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		var st server.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return nil, err
		}
		return &st, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		return nil, errBackpressure
	default:
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("fleet: backend %s rejected job: %s: %s", url, resp.Status, strings.TrimSpace(string(b)))
	}
}

// fetchJob GETs one backend job status.
func (c *Coordinator) fetchJob(url, backendID string) (*server.JobStatus, error) {
	req, err := http.NewRequestWithContext(c.ctx, http.MethodGet, url+"/jobs/"+backendID, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("fleet: backend %s job %s: %s", url, backendID, resp.Status)
	}
	var st server.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// listBackendJobs pages through a backend's GET /jobs.
func (c *Coordinator) listBackendJobs(url string) ([]server.JobStatus, error) {
	var all []server.JobStatus
	for offset := 0; ; {
		req, err := http.NewRequestWithContext(c.ctx, http.MethodGet,
			fmt.Sprintf("%s/jobs?offset=%d&limit=200", url, offset), nil)
		if err != nil {
			return nil, err
		}
		resp, err := c.client.Do(req)
		if err != nil {
			return nil, err
		}
		var page struct {
			Jobs  []server.JobStatus `json:"jobs"`
			Total int                `json:"total"`
		}
		err = json.NewDecoder(resp.Body).Decode(&page)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		all = append(all, page.Jobs...)
		offset += len(page.Jobs)
		if offset >= page.Total || len(page.Jobs) == 0 {
			return all, nil
		}
	}
}

// cancelBackendJob POSTs a cancel for a backend-local job; a 409 (already
// terminal) is not an error.
func (c *Coordinator) cancelBackendJob(url, backendID string) error {
	req, err := http.NewRequestWithContext(c.ctx, http.MethodPost, url+"/jobs/"+backendID+"/cancel", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
		return fmt.Errorf("fleet: cancel on %s/%s: %s", url, backendID, resp.Status)
	}
	return nil
}

// drainBackend POSTs the backend's drain hook.
func (c *Coordinator) drainBackend(url string) error {
	req, err := http.NewRequestWithContext(c.ctx, http.MethodPost, url+"/drain", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("fleet: drain on %s: %s", url, resp.Status)
	}
	return nil
}

// --- routing ---------------------------------------------------------------

// rendezvousScore is the highest-random-weight hash of (job, backend): each
// job gets a stable preference order over backends, so retries and restarts
// route consistently without a central assignment table.
func rendezvousScore(jobID, url string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(jobID))
	h.Write([]byte{0})
	h.Write([]byte(url))
	return h.Sum64()
}

// candidatesLocked ranks healthy backends for a job: rendezvous order, with
// backends that reported a full admission queue demoted behind all non-full
// ones (the least-loaded tie-break — load information comes from the last
// /metrics scrape). Caller holds c.mu.
//
//cadyvet:locked c.mu
func (c *Coordinator) candidatesLocked(jobID string) []string {
	type cand struct {
		url   string
		score uint64
		full  bool
		load  int
	}
	var cs []cand
	for _, b := range c.backends {
		if b.healthy {
			cs = append(cs, cand{b.url, rendezvousScore(jobID, b.url), b.full(), b.load})
		}
	}
	sort.Slice(cs, func(a, b int) bool {
		if cs[a].full != cs[b].full {
			return !cs[a].full
		}
		if cs[a].score != cs[b].score {
			return cs[a].score > cs[b].score
		}
		return cs[a].load < cs[b].load
	})
	urls := make([]string, len(cs))
	for i, cd := range cs {
		urls[i] = cd.url
	}
	return urls
}

// findBackendLocked returns the backend with the given URL.
//
//cadyvet:locked c.mu
func (c *Coordinator) findBackendLocked(url string) *backend {
	for _, b := range c.backends {
		if b.url == url {
			return b
		}
	}
	return nil
}

// readFileIfExists returns (nil, nil) for a missing file.
func readFileIfExists(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	return b, err
}
