package fleet

import (
	"errors"
	"fmt"
	"time"

	"cadycore/internal/server"
)

// SubmitJob admits one job for a tenant: quota check, fleet ID assignment
// (the ID doubles as the shared-store checkpoint key), tenant FIFO enqueue.
func (c *Coordinator) SubmitJob(spec server.JobSpec, tenant string) (*job, error) {
	if spec.SharedKey != "" {
		return nil, errors.New("fleet: shared_key is coordinator-assigned; leave it empty")
	}
	if tenant == "" {
		tenant = spec.Tenant
	}
	if tenant == "" {
		tenant = "default"
	}
	spec.Tenant = tenant
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	tq := c.tenant(tenant)
	if err := c.admitLocked(tq, 1); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.seq++
	j := &job{
		ID:        fmt.Sprintf("f-%06d", c.seq),
		Tenant:    tenant,
		Spec:      spec,
		State:     fQueued,
		submitted: time.Now(),
	}
	j.Spec.SharedKey = j.ID
	c.jobs[j.ID] = j
	c.order = append(c.order, j.ID)
	c.enqueueLocked(j)
	c.mu.Unlock()
	c.persist()
	return j, nil
}

// GetJob returns a job by fleet ID.
func (c *Coordinator) GetJob(id string) (*job, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

// CancelJob stops a job: queued jobs are cancelled in place, dispatched jobs
// are cancelled on their backend (the backend checkpoints at the boundary).
func (c *Coordinator) CancelJob(id string) error {
	c.mu.Lock()
	j, ok := c.jobs[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("fleet: no job %s", id)
	}
	if j.State.terminal() {
		st := j.State
		c.mu.Unlock()
		return fmt.Errorf("fleet: job %s is %s, not cancellable", id, st)
	}
	j.cancelRequested = true
	var url, backendID string
	switch j.State {
	case fQueued:
		c.dropQueuedLocked(j)
		c.finalizeLocked(j, fCancelled, "")
	case fRunning:
		url, backendID = j.Backend, j.BackendID
	}
	c.mu.Unlock()
	c.persist()
	if url != "" {
		// Best-effort: a dead backend's copy dies with it, and the watch
		// loop resolves the fleet state either way.
		return c.cancelBackendJob(url, backendID)
	}
	return nil
}

// --- dispatcher ------------------------------------------------------------

func (c *Coordinator) dispatcher() {
	defer c.wg.Done()
	// One reused timer instead of a time.After per retry round: on a busy
	// fleet the retry path is hot, and each time.After allocates a timer
	// that lingers until it fires even after the select moved on.
	retry := time.NewTimer(c.cfg.DispatchRetry)
	defer retry.Stop()
	for {
		c.mu.Lock()
		j := c.nextQueuedLocked()
		if j != nil {
			j.State = fDispatching
		}
		c.mu.Unlock()
		if j == nil {
			retry.Reset(c.cfg.DispatchRetry)
			select {
			case <-c.ctx.Done():
				return
			case <-c.kick:
			case <-retry.C:
			}
			continue
		}
		if !c.dispatch(j) {
			c.mu.Lock()
			if !j.State.terminal() {
				c.requeueFrontLocked(j)
				c.met.dispatchErrors++
			}
			c.mu.Unlock()
			retry.Reset(c.cfg.DispatchRetry)
			select {
			case <-c.ctx.Done():
				return
			case <-retry.C:
			}
		}
	}
}

// dispatch places one job on the best candidate backend, walking the
// rendezvous order on backpressure or connection errors.
func (c *Coordinator) dispatch(j *job) bool {
	c.mu.Lock()
	if j.cancelRequested {
		c.finalizeLocked(j, fCancelled, "")
		c.mu.Unlock()
		c.persist()
		return true
	}
	cands := c.candidatesLocked(j.ID)
	spec := j.Spec
	c.mu.Unlock()
	for _, url := range cands {
		st, err := c.submitToBackend(url, spec)
		if err != nil {
			if c.ctx.Err() != nil {
				return false
			}
			continue
		}
		c.mu.Lock()
		j.State = fRunning
		j.Backend = url
		j.BackendID = st.ID
		j.remote = st
		if b := c.findBackendLocked(url); b != nil {
			b.load++ // optimistic until the next scrape
		}
		c.met.dispatched++
		cancelled := j.cancelRequested
		c.mu.Unlock()
		c.persist()
		if cancelled {
			c.cancelBackendJob(url, st.ID)
		}
		return true
	}
	return false
}

// --- remote state handling -------------------------------------------------

// applyRemoteLocked folds an observed backend status into the fleet job,
// returning any follow-up persist need. Terminal backend states finalize
// the fleet job; an interrupted backend copy (drain) re-queues it for
// migration. Caller holds c.mu.
//
//cadyvet:locked c.mu
func (c *Coordinator) applyRemoteLocked(j *job, st *server.JobStatus) (changed bool) {
	if j.State != fRunning || st.ID != j.BackendID {
		// Not dispatched anymore (migrated or finalized while the fetch was
		// in flight) or a stale copy: ignore.
		return false
	}
	j.remote = st
	if st.StepsDone > j.stepsDone {
		j.stepsDone = st.StepsDone
	}
	switch st.State {
	case server.JCompleted:
		c.finalizeLocked(j, fCompleted, "")
		return true
	case server.JFailed:
		c.finalizeLocked(j, fFailed, st.Error)
		return true
	case server.JCancelled:
		if j.cancelRequested {
			c.finalizeLocked(j, fCancelled, "")
		} else {
			// Cancelled out of band (operator on the backend): migrate, the
			// shared checkpoint keeps the work done so far.
			c.migrateLocked(j, "backend copy cancelled")
		}
		return true
	case server.JInterrupted:
		if j.cancelRequested {
			c.finalizeLocked(j, fCancelled, "")
		} else {
			// The backend drained: move the job elsewhere.
			c.migrateLocked(j, "backend drained")
		}
		return true
	}
	return false
}

// finalizeLocked moves a job to a terminal state and releases its quota
// slot. Caller holds c.mu.
//
//cadyvet:locked c.mu
func (c *Coordinator) finalizeLocked(j *job, st jstate, errMsg string) {
	if j.State.terminal() {
		return
	}
	j.State = st
	j.ErrMsg = errMsg
	j.finished = time.Now()
	c.releaseLocked(j)
	switch st {
	case fCompleted:
		c.met.completed++
	case fFailed:
		c.met.failed++
	case fCancelled:
		c.met.cancelled++
	}
}

// migrateLocked re-queues a non-terminal job for dispatch on another
// backend, charging its migration budget. The new backend resumes from the
// newest shared-store checkpoint (or the initial state when the job never
// reached one). Caller holds c.mu.
//
//cadyvet:locked c.mu
func (c *Coordinator) migrateLocked(j *job, reason string) {
	if j.State.terminal() {
		return
	}
	if j.cancelRequested {
		c.finalizeLocked(j, fCancelled, "")
		return
	}
	j.Migrations++
	c.met.migrations++
	if j.Migrations > c.cfg.MaxMigrations {
		c.finalizeLocked(j, fFailed, fmt.Sprintf("migration budget %d exhausted (%s)", c.cfg.MaxMigrations, reason))
		return
	}
	c.requeueFrontLocked(j)
}

// --- prober ----------------------------------------------------------------

func (c *Coordinator) prober() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbeInterval / 2)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
		}
		c.probeDue()
	}
}

// probeDue probes every backend whose next-probe time has arrived and
// applies the results; a backend crossing the failure threshold has its
// jobs migrated.
func (c *Coordinator) probeDue() {
	now := time.Now()
	c.mu.Lock()
	var due []string
	for _, b := range c.backends {
		if !b.nextProbe.After(now) {
			due = append(due, b.url)
		}
	}
	c.mu.Unlock()
	for _, url := range due {
		c.probeBackend(url)
	}
}

// probeBackend runs one probe round for one backend.
func (c *Coordinator) probeBackend(url string) {
	ok, load, capacity, counters := c.probeOnce(url)
	now := time.Now()
	c.mu.Lock()
	b := c.findBackendLocked(url)
	if b == nil {
		c.mu.Unlock()
		return
	}
	b.probes++
	if ok {
		wasDown := !b.healthy
		b.healthy = true
		b.fails = 0
		b.backoff = 0
		b.nextProbe = now.Add(c.cfg.ProbeInterval)
		b.load = load
		b.capacity = capacity
		if counters != nil {
			b.counters = counters
		}
		c.mu.Unlock()
		if wasDown {
			// The backend may hold zombie copies of jobs migrated while it
			// was away; the watcher cancels them on its next pass.
			c.kickDispatch()
		}
		return
	}
	b.probeFails++
	b.fails++
	if b.backoff == 0 {
		b.backoff = c.cfg.ProbeInterval
	} else {
		b.backoff *= 2
		if b.backoff > c.cfg.ProbeBackoffMax {
			b.backoff = c.cfg.ProbeBackoffMax
		}
	}
	b.nextProbe = now.Add(b.backoff)
	died := b.healthy && b.fails >= c.cfg.FailThreshold
	if died {
		b.healthy = false
		for _, id := range c.order {
			j := c.jobs[id]
			if j.Backend == url && !j.State.terminal() && j.State != fQueued {
				c.migrateLocked(j, "backend "+url+" unhealthy")
			}
		}
	}
	c.mu.Unlock()
	if died {
		c.persist()
	}
}

// probeAll synchronously probes every backend once (startup).
func (c *Coordinator) probeAll() {
	c.mu.Lock()
	urls := make([]string, len(c.backends))
	for i, b := range c.backends {
		urls[i] = b.url
	}
	c.mu.Unlock()
	for _, url := range urls {
		ok, load, capacity, counters := c.probeOnce(url)
		c.mu.Lock()
		if b := c.findBackendLocked(url); b != nil {
			b.probes++
			b.healthy = ok
			b.load, b.capacity = load, capacity
			if counters != nil {
				b.counters = counters
			}
			b.nextProbe = time.Now().Add(c.cfg.ProbeInterval)
			if !ok {
				b.fails = c.cfg.FailThreshold
				b.probeFails++
			}
		}
		c.mu.Unlock()
	}
}

// --- watcher ---------------------------------------------------------------

func (c *Coordinator) watcher() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.WatchInterval)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
		}
		c.watchOnce()
	}
}

// watchOnce reconciles fleet state against every healthy backend's job list:
// it folds in terminal states the status proxy has not seen and cancels
// zombie copies (a migrated job's original backend came back and still holds
// a live copy).
func (c *Coordinator) watchOnce() {
	c.mu.Lock()
	var urls []string
	for _, b := range c.backends {
		if b.healthy {
			urls = append(urls, b.url)
		}
	}
	c.mu.Unlock()

	type zombie struct{ url, backendID string }
	var zombies []zombie
	changed := false
	for _, url := range urls {
		list, err := c.listBackendJobs(url)
		if err != nil {
			continue
		}
		c.mu.Lock()
		for i := range list {
			st := &list[i]
			key := st.Spec.SharedKey
			if key == "" {
				continue
			}
			j, ok := c.jobs[key]
			if !ok {
				continue
			}
			if j.State == fRunning && j.Backend == url && j.BackendID == st.ID {
				if c.applyRemoteLocked(j, st) {
					changed = true
				}
				continue
			}
			// A copy of a fleet job on a backend that does not own it: a
			// zombie from a migration. Cancel live copies; ignore dead ones.
			owns := j.State == fRunning && j.Backend == url
			if !owns && !st.State.Terminal() {
				zombies = append(zombies, zombie{url, st.ID})
			}
		}
		c.mu.Unlock()
	}
	for _, z := range zombies {
		c.cancelBackendJob(z.url, z.backendID)
	}
	if changed {
		c.persist()
	}
}

// --- startup reconciliation ------------------------------------------------

// reconcile adopts recovered state after a coordinator restart: dispatched
// jobs found on their backend adopt its current state; dispatched jobs whose
// backend is gone (or no longer knows them) are re-queued; queued jobs go
// back into their tenant FIFOs; admission bookkeeping is rebuilt from the
// resulting states. No job is dispatched twice: the backend copy keeps
// running untouched through a coordinator restart.
func (c *Coordinator) reconcile() {
	// One listing per healthy backend, outside the lock.
	byBackend := make(map[string]map[string][]server.JobStatus) // url -> shared_key -> statuses
	c.mu.Lock()
	var urls []string
	for _, b := range c.backends {
		if b.healthy {
			urls = append(urls, b.url)
		}
	}
	c.mu.Unlock()
	for _, url := range urls {
		list, err := c.listBackendJobs(url)
		if err != nil {
			continue
		}
		m := make(map[string][]server.JobStatus)
		for _, st := range list {
			if st.Spec.SharedKey != "" {
				m[st.Spec.SharedKey] = append(m[st.Spec.SharedKey], st)
			}
		}
		byBackend[url] = m
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.order {
		j := c.jobs[id]
		if j.State.terminal() {
			continue
		}
		if j.State == fRunning {
			var found *server.JobStatus
			if m := byBackend[j.Backend]; m != nil {
				for i := range m[j.ID] {
					if m[j.ID][i].ID == j.BackendID {
						found = &m[j.ID][i]
					}
				}
			}
			switch {
			case found == nil:
				c.migrateLocked(j, "backend lost across coordinator restart")
			default:
				j.remote = found
				if found.StepsDone > j.stepsDone {
					j.stepsDone = found.StepsDone
				}
				switch found.State {
				case server.JCompleted:
					c.finalizeLocked(j, fCompleted, "")
				case server.JFailed:
					c.finalizeLocked(j, fFailed, found.Error)
				case server.JCancelled:
					c.finalizeLocked(j, fCancelled, "")
				case server.JInterrupted:
					c.migrateLocked(j, "backend drained while coordinator was down")
					// default: still queued/running/retrying there — adopt as-is.
				}
			}
		} else if j.State == fQueued {
			// Back into its tenant FIFO (quota is rebuilt below).
			tq := c.tenant(j.Tenant)
			tq.fifo = append(tq.fifo, j)
		}
	}
	// Rebuild quota accounting from the reconciled states.
	for _, tq := range c.tenants {
		tq.inflight = 0
	}
	for _, id := range c.order {
		j := c.jobs[id]
		if !j.State.terminal() {
			c.tenant(j.Tenant).inflight++
		}
	}
	c.kickDispatch()
}
