package opflow

import (
	"strings"
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
)

func TestStepWordStructure(t *testing.T) {
	// (FCA)^{3M} (FL)^3 S: with M = 3 the word has 9·3 + 3·2 + 1 = 34 ops.
	w := StepWord(3)
	if len(w) != 34 {
		t.Fatalf("word length %d, want 34", len(w))
	}
	counts := map[Op]int{}
	for _, op := range w {
		counts[op]++
	}
	if counts[OpA] != 9 || counts[OpC] != 9 || counts[OpL] != 3 || counts[OpS] != 1 {
		t.Errorf("operator counts %v", counts)
	}
	// F follows every A·C and every L: 9 + 3 applications.
	if counts[OpF] != 12 {
		t.Errorf("F count %d, want 12", counts[OpF])
	}
	if got := FormatWord(3); got != "S (FL)^3 (FCA)^9" {
		t.Errorf("FormatWord = %q", got)
	}
}

func TestOperatorKinds(t *testing.T) {
	// Each operator involves exactly one kind of communication (Section 4.1).
	if OpA.Kind() != CommStencil || OpL.Kind() != CommStencil || OpS.Kind() != CommStencil {
		t.Error("stencil operators misclassified")
	}
	if OpC.Kind() != CommCollectiveZ {
		t.Error("C must be the z collective")
	}
	if OpF.Kind() != CommCollectiveX {
		t.Error("F must be the x collective")
	}
}

func TestProfilesReproducePaperCounts(t *testing.T) {
	// Section 5.2: "the new strategy reduces the communication frequency
	// from 13 to 2 in each iterative step (M = 3)"; Section 4.2.2: Ĉ runs
	// 2M instead of 3M times.
	yz := ProfileOf(StrategyOriginalYZ, 3)
	if yz.Exchanges != 13 {
		t.Errorf("original-YZ exchanges = %d, want 13", yz.Exchanges)
	}
	if yz.CollectivesZ != 9 || yz.CollectivesX != 0 {
		t.Errorf("original-YZ collectives = %d/%d, want 9/0", yz.CollectivesZ, yz.CollectivesX)
	}
	xy := ProfileOf(StrategyOriginalXY, 3)
	if xy.Exchanges != 13 || xy.CollectivesZ != 0 || xy.CollectivesX != 12 {
		t.Errorf("original-XY profile %+v", xy)
	}
	ca := ProfileOf(StrategyCommAvoiding, 3)
	if ca.Exchanges != 2 || ca.CollectivesZ != 6 || ca.CollectivesX != 0 {
		t.Errorf("comm-avoiding profile %+v", ca)
	}
}

func TestProfileMatchesImplementationCounters(t *testing.T) {
	// The symbolic profile must agree with what the real integrators
	// actually execute (measured by their counters).
	g := grid.New(16, 10, 4)
	for _, m := range []int{1, 2, 3} {
		cfg := dycore.DefaultConfig()
		cfg.M = m
		cfg.Dt1, cfg.Dt2 = 30, 180
		steps := 2

		yz := dycore.Run(dycore.Setup{Alg: dycore.AlgBaselineYZ, PA: 2, PB: 2, Cfg: cfg},
			g, comm.Zero(), heldsuarez.InitialState, steps)
		prof := ProfileOf(StrategyOriginalYZ, m)
		// Counters include 1 bootstrap exchange and 1 bootstrap Ĉ.
		if got := (yz.Count.HaloExchanges - 1) / int64(steps); got != int64(prof.Exchanges) {
			t.Errorf("M=%d: YZ exchanges/step %d, profile says %d", m, got, prof.Exchanges)
		}
		if got := (yz.Count.CEvaluations - 1) / int64(steps); got != int64(prof.CollectivesZ) {
			t.Errorf("M=%d: YZ collectives/step %d, profile says %d", m, got, prof.CollectivesZ)
		}

		ca := dycore.Run(dycore.Setup{Alg: dycore.AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg},
			g, comm.Zero(), heldsuarez.InitialState, steps)
		profCA := ProfileOf(StrategyCommAvoiding, m)
		// CA counters include 1 bootstrap exchange, 1 bootstrap Ĉ, and 1
		// Finalize exchange.
		if got := (ca.Count.HaloExchanges - 2) / int64(steps); got != int64(profCA.Exchanges) {
			t.Errorf("M=%d: CA exchanges/step %d, profile says %d", m, got, profCA.Exchanges)
		}
		if got := (ca.Count.CEvaluations - 1) / int64(steps); got != int64(profCA.CollectivesZ) {
			t.Errorf("M=%d: CA collectives/step %d, profile says %d", m, got, profCA.CollectivesZ)
		}
	}
}

func TestAdviseChoosesYZAtPaperScale(t *testing.T) {
	// At the paper's mesh, filtering dominates: Y-Z is the right choice.
	a := Advise(720, 360, 30, 512, 3)
	if !a.UseYZ {
		t.Errorf("advisor chose X-Y at the paper's scale: %s", a.Reason)
	}
	if a.FilterBound <= 0 || a.SumBound <= 0 {
		t.Errorf("degenerate bounds: %+v", a)
	}
}

func TestAdviseSerialFilterFree(t *testing.T) {
	// With p small enough to fit entirely along y, the filter bound can be
	// zero only when p_x = 1 — Advise never recommends X-Y then.
	a := Advise(128, 64, 16, 4, 3)
	if !a.UseYZ {
		t.Errorf("small-p advice should still prefer Y-Z: %s", a.Reason)
	}
}

func TestDescribeMentionsKeyNumbers(t *testing.T) {
	d := Describe(3)
	for _, want := range []string{"S (FL)^3 (FCA)^9", "13 -> 2", "9 -> 6"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe(3) missing %q:\n%s", want, d)
		}
	}
}
