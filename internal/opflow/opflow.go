// Package opflow encodes the paper's Section 4.1 contribution — the
// *operator form of the calculating flow* — as data: the dynamical core's
// time step is the operator word
//
//	ξ(K) = [ S̃ (F̃L̃)³ (F̃ĈÂ)^{3M} ]^K ξ(0)        (paper eq. 8)
//
// in which every operator involves exactly one kind of communication. From
// the word, this package derives the per-step communication profile of any
// execution strategy (how many collectives along x and z, how many neighbor
// exchanges), reproduces the paper's operator-count arithmetic (13 → 2
// exchanges, 3M → 2M collectives), and implements the Section 4.2
// decomposition advisor built on the Theorem 4.1/4.2 lower bounds.
package opflow

import (
	"fmt"
	"strings"

	"cadycore/internal/costmodel"
)

// Op is one operator of the calculating flow.
type Op int

const (
	// OpA is Â: the adaptation stencil (local communication).
	OpA Op = iota
	// OpC is Ĉ: the vertical summation (collective along z).
	OpC
	// OpF is F̃: Fourier filtering (collective along x when p_x > 1).
	OpF
	// OpL is L̃: the advection stencil (local communication).
	OpL
	// OpS is S̃: the smoothing stencil (local communication).
	OpS
)

// String implements fmt.Stringer with the paper's symbols.
func (o Op) String() string {
	switch o {
	case OpA:
		return "A"
	case OpC:
		return "C"
	case OpF:
		return "F"
	case OpL:
		return "L"
	case OpS:
		return "S"
	default:
		return "?"
	}
}

// CommKind classifies the communication an operator performs.
type CommKind int

const (
	// CommStencil is neighbor (halo) communication.
	CommStencil CommKind = iota
	// CommCollectiveZ is a collective along the z direction.
	CommCollectiveZ
	// CommCollectiveX is a collective along the x direction.
	CommCollectiveX
)

// Kind returns the communication kind of the operator (paper Section 4.1:
// "each operator only involves one kind of communication").
func (o Op) Kind() CommKind {
	switch o {
	case OpC:
		return CommCollectiveZ
	case OpF:
		return CommCollectiveX
	default:
		return CommStencil
	}
}

// StepWord returns the operator word of one time step for M nonlinear
// iterations, innermost-first: (FCA)^{3M} then (FL)^3 then S.
func StepWord(m int) []Op {
	var w []Op
	for i := 0; i < 3*m; i++ {
		w = append(w, OpA, OpC, OpF)
	}
	for i := 0; i < 3; i++ {
		w = append(w, OpL, OpF)
	}
	w = append(w, OpS)
	return w
}

// FormatWord renders a word in the paper's right-to-left operator notation
// with powers, e.g. "S (FL)^3 (FCA)^9".
func FormatWord(m int) string {
	return fmt.Sprintf("S (FL)^3 (FCA)^%d", 3*m)
}

// Profile is the per-step communication structure of an execution strategy.
type Profile struct {
	// Exchanges is the number of neighbor-exchange rounds per step.
	Exchanges int
	// CollectivesZ is the number of z collectives per step.
	CollectivesZ int
	// CollectivesX is the number of x collectives per step (0 when p_x = 1).
	CollectivesX int
}

// Strategy selects how the operator word is executed.
type Strategy int

const (
	// StrategyOriginalYZ: exchange before every stencil operator
	// application, Ĉ fresh every time, filtering local (p_x = 1).
	StrategyOriginalYZ Strategy = iota
	// StrategyOriginalXY: like OriginalYZ but p_z = 1 (no z collectives)
	// and p_x > 1 (every F̃ is a distributed transpose).
	StrategyOriginalXY
	// StrategyCommAvoiding: Algorithm 2 — deep halos (one exchange covers
	// all 3M adaptation applications, one the advection, smoothing fused),
	// the approximate iteration (2 Ĉ per nonlinear iteration), p_x = 1.
	StrategyCommAvoiding
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyOriginalYZ:
		return "original-YZ"
	case StrategyOriginalXY:
		return "original-XY"
	case StrategyCommAvoiding:
		return "comm-avoiding"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ProfileOf derives the per-step communication profile of a strategy from
// the operator word — the arithmetic behind the paper's "from 13 to 2" and
// "one third of communication costs" statements.
func ProfileOf(s Strategy, m int) Profile {
	word := StepWord(m)
	var p Profile
	switch s {
	case StrategyOriginalYZ, StrategyOriginalXY:
		for _, op := range word {
			switch op.Kind() {
			case CommStencil:
				// One halo exchange precedes every stencil application.
				p.Exchanges++
			case CommCollectiveZ:
				p.CollectivesZ++
			case CommCollectiveX:
				p.CollectivesX++
			}
		}
		if s == StrategyOriginalYZ {
			p.CollectivesX = 0 // p_x = 1: F̃ is local
		} else {
			p.CollectivesZ = 0 // p_z = 1: Ĉ is local
		}
	case StrategyCommAvoiding:
		// One deep exchange covers all 3M adaptation stencils AND the
		// smoothing (fused); one shallow exchange covers the 3 advection
		// stencils. The approximate iteration drops one Ĉ per nonlinear
		// iteration (3 → 2), and p_x = 1 keeps F̃ local.
		p.Exchanges = 2
		p.CollectivesZ = 2 * m
		p.CollectivesX = 0
	}
	return p
}

// Advisor implements the Section 4.2 decomposition choice: given the mesh
// and a total rank count, it evaluates the Theorem 4.1 and 4.2 lower bounds
// and recommends which collective to keep local.
type Advice struct {
	// UseYZ reports whether the Y-Z decomposition (p_x = 1) is recommended.
	UseYZ bool
	// FilterBound and SumBound are the per-application lower bounds the
	// recommendation compares (words moved).
	FilterBound, SumBound float64
	// Reason is a one-line human-readable justification.
	Reason string
}

// Advise compares the data-movement lower bound of the x collective (Fourier
// filtering under a balanced X-Y layout) with that of the z collective (the
// summation under a Y-Z layout) per time step, weighting each by how often
// the operator word invokes it.
func Advise(nx, ny, nz, p, m int) Advice {
	word := StepWord(m)
	nF, nC := 0, 0
	for _, op := range word {
		switch op {
		case OpF:
			nF++
		case OpC:
			nC++
		}
	}
	// Candidate layouts: balanced X-Y split vs minimal-p_z Y-Z split.
	px := balancedFactor(p, nx/2, ny/2)
	pz := smallestCofactor(p, ny/2, nz/2)
	filter := costmodel.FilterLowerBound(nx, px) * float64(ny*nz) * float64(nF) * 3 // 3 filtered 3-D fields
	sum := costmodel.SumLowerBound(nx, ny, pz) * float64(nC)
	a := Advice{FilterBound: filter, SumBound: sum}
	if filter >= sum {
		a.UseYZ = true
		a.Reason = fmt.Sprintf(
			"filtering bound %.3g ≥ summation bound %.3g per step: set p_x = 1 (Y-Z) so the high-order term vanishes (η_x = 0)",
			filter, sum)
	} else {
		a.Reason = fmt.Sprintf(
			"summation bound %.3g > filtering bound %.3g per step: set p_z = 1 (X-Y)", sum, filter)
	}
	return a
}

func balancedFactor(p, maxA, maxB int) int {
	best := 1
	bestBal := 1 << 30
	for a := 1; a <= p; a++ {
		if p%a != 0 || a > maxA || p/a > maxB {
			continue
		}
		bal := a - p/a
		if bal < 0 {
			bal = -bal
		}
		if bal < bestBal {
			bestBal = bal
			best = a
		}
	}
	return best
}

func smallestCofactor(p, maxOther, maxThis int) int {
	for b := 1; b <= maxThis; b++ {
		if p%b == 0 && p/b <= maxOther {
			return b
		}
	}
	return maxThis
}

// Describe renders a full report: the operator word, the per-strategy
// profiles and the savings — the paper's Section 4.4 summary as a function
// of M.
func Describe(m int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "operator form of one time step (M = %d): ξ' = %s ξ\n", m, FormatWord(m))
	fmt.Fprintf(&sb, "the word alternates stencil and collective operators — the paper's\n")
	fmt.Fprintf(&sb, "\"stencil-collective alternate action\" basic operation.\n\n")
	fmt.Fprintf(&sb, "%-16s%12s%14s%14s\n", "strategy", "exchanges", "z-collectives", "x-collectives")
	for _, s := range []Strategy{StrategyOriginalXY, StrategyOriginalYZ, StrategyCommAvoiding} {
		p := ProfileOf(s, m)
		fmt.Fprintf(&sb, "%-16s%12d%14d%14d\n", s, p.Exchanges, p.CollectivesZ, p.CollectivesX)
	}
	yz := ProfileOf(StrategyOriginalYZ, m)
	ca := ProfileOf(StrategyCommAvoiding, m)
	fmt.Fprintf(&sb, "\nexchange rounds: %d -> %d; z-collectives: %d -> %d (-%d%%)\n",
		yz.Exchanges, ca.Exchanges, yz.CollectivesZ, ca.CollectivesZ,
		100*(yz.CollectivesZ-ca.CollectivesZ)/yz.CollectivesZ)
	return sb.String()
}
