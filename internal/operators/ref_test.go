package operators

import (
	"math"
	"testing"

	"cadycore/internal/field"
	"cadycore/internal/grid"
	"cadycore/internal/physics"
	"cadycore/internal/state"
)

// This file pins the row-slice production kernels against straightforward
// point-accessor reference implementations of the same formulas: the results
// must match BITWISE (the optimization reorders memory access, never
// arithmetic). Only the reference implementations live here, in test code.

// refAdaptation is Adaptation written with field.At accessors.
func refAdaptation(g *grid.Grid, cfg AdaptConfig, st *state.State, sur *Surface, cres *CRes, out *Tendency, r field.Rect) {
	m := newMetric(g)
	for k := r.K0; k < r.K1; k++ {
		sigMid := g.Sigma[k]
		for j := r.J0; j < r.J1; j++ {
			sC := m.sinC(j)
			cC := m.cosC(j)
			invASinDlam := 1 / (m.a * sC * m.dlam)
			for i := r.I0; i < r.I1; i++ {
				phiT0 := 0.5 * (st.Phi.At(i-1, j, k) + st.Phi.At(i-1, j, k+1))
				phiT1 := 0.5 * (st.Phi.At(i, j, k) + st.Phi.At(i, j, k+1))
				pl1 := m.b * (phiT1 - phiT0) * invASinDlam

				pesW := 0.5 * (sur.Pes.At(i-1, j) + sur.Pes.At(i, j))
				phiW := 0.5 * (st.Phi.At(i-1, j, k) + st.Phi.At(i, j, k))
				pl2 := m.b * phiW / pesW * (sur.Pes.At(i, j) - sur.Pes.At(i-1, j)) * invASinDlam

				pW := 0.5 * (sur.P.At(i-1, j) + sur.P.At(i, j))
				uPhys := st.U.At(i, j, k) / pW
				fstar := 2*physics.Omega*cC + uPhys*cC/(m.a*sC)
				v4 := 0.25 * (st.V.At(i-1, j, k) + st.V.At(i-1, j+1, k) +
					st.V.At(i, j, k) + st.V.At(i, j+1, k))
				out.DU.Set(i, j, k, -pl1-pl2+fstar*v4)

				pC := sur.P.At(i, j)
				pesC := sur.Pes.At(i, j)
				wMid := 0.5 * (cres.PWI.At(i, j, k) + cres.PWI.At(i, j, k+1)) / pC
				omega1 := wMid/sigMid - cres.DBar.At(i, j)/pC
				vC := 0.5 * (st.V.At(i, j, k) + st.V.At(i, j+1, k))
				dpesDy := (sur.Pes.At(i, j+1) - sur.Pes.At(i, j-1)) / (2 * m.haDthe)
				omegaT2 := vC / pesC * dpesDy
				uC := 0.5 * (st.U.At(i, j, k) + st.U.At(i+1, j, k))
				dpesDx := (sur.Pes.At(i+1, j) - sur.Pes.At(i-1, j)) / (2 * m.a * sC * m.dlam)
				omegaL2 := uC / pesC * dpesDx
				out.DPhi.Set(i, j, k, m.b*(omega1+omegaT2+omegaL2))
			}
			if j >= 1 && j <= g.Ny-1 {
				sI := m.sinI(j)
				cI := g.CosI[j]
				for i := r.I0; i < r.I1; i++ {
					phiT0 := 0.5 * (st.Phi.At(i, j-1, k) + st.Phi.At(i, j-1, k+1))
					phiT1 := 0.5 * (st.Phi.At(i, j, k) + st.Phi.At(i, j, k+1))
					pt1 := m.b * (phiT1 - phiT0) / m.haDthe
					pesV := 0.5 * (sur.Pes.At(i, j-1) + sur.Pes.At(i, j))
					phiV := 0.5 * (st.Phi.At(i, j-1, k) + st.Phi.At(i, j, k))
					pt2 := m.b * phiV / pesV * (sur.Pes.At(i, j) - sur.Pes.At(i, j-1)) / m.haDthe
					u4 := 0.25 * (st.U.At(i, j-1, k) + st.U.At(i+1, j-1, k) +
						st.U.At(i, j, k) + st.U.At(i+1, j, k))
					pV := 0.5 * (sur.P.At(i, j-1) + sur.P.At(i, j))
					uPhys := u4 / pV
					fstar := 2*physics.Omega*cI + uPhys*cI/(m.a*sI)
					out.DV.Set(i, j, k, -pt1-pt2-fstar*u4)
				}
			} else {
				for i := r.I0; i < r.I1; i++ {
					out.DV.Set(i, j, k, 0)
				}
			}
		}
	}
	r2 := r.Flat2D()
	ks := cfg.KappaStar * physics.Ksa
	for j := r2.J0; j < r2.J1; j++ {
		sC := m.sinC(j)
		sI0, sI1 := m.sinI(j), m.sinI(j+1)
		invALam2 := 1 / (m.a * sC * m.dlam * m.a * sC * m.dlam)
		invAThe2 := 1 / (m.a * m.a * sC * m.dthe * m.dthe)
		for i := r2.I0; i < r2.I1; i++ {
			lap := (st.Psa.At(i+1, j)-2*st.Psa.At(i, j)+st.Psa.At(i-1, j))*invALam2 +
				(sI1*(st.Psa.At(i, j+1)-st.Psa.At(i, j))-
					sI0*(st.Psa.At(i, j)-st.Psa.At(i, j-1)))*invAThe2
			out.DPsa.Set(i, j, ks*lap-physics.P0*cres.DBar.At(i, j))
		}
	}
}

// refDivP is DivP written with accessors.
func refDivP(g *grid.Grid, u, v *field.F3, sur *Surface, out *field.F3, r field.Rect) {
	m := newMetric(g)
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			invASin := 1 / (m.a * m.sinC(j))
			sI0, sI1 := m.sinI(j), m.sinI(j+1)
			for i := r.I0; i < r.I1; i++ {
				pW := 0.5 * (sur.P.At(i-1, j) + sur.P.At(i, j))
				pE := 0.5 * (sur.P.At(i, j) + sur.P.At(i+1, j))
				dPUdl := (pE*u.At(i+1, j, k) - pW*u.At(i, j, k)) / m.dlam
				pN := 0.5 * (sur.P.At(i, j-1) + sur.P.At(i, j))
				pS := 0.5 * (sur.P.At(i, j) + sur.P.At(i, j+1))
				dPVdt := (pS*v.At(i, j+1, k)*sI1 - pN*v.At(i, j, k)*sI0) / m.dthe
				out.Set(i, j, k, invASin*(dPUdl+dPVdt))
			}
		}
	}
}

// refP1 and refP2Former are the smoothing kernels with accessors.
func refP1(s *Smoother, in, out *field.F3, r field.Rect) {
	c := s.beta / 16
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			for i := r.I0; i < r.I1; i++ {
				out.Set(i, j, k, in.At(i, j, k)-c*delta4X(in, i, j, k))
			}
		}
	}
}

func refP2Former(s *Smoother, in, out *field.F3, r field.Rect, avail AvailFunc) {
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			lo, hi := avail(j)
			for i := r.I0; i < r.I1; i++ {
				acc := 0.0
				for d := -2; d <= 2; d++ {
					jj := j + d
					if jj < lo || jj >= hi {
						continue
					}
					acc += s.rowC1[d+2]*in.At(i, jj, k) + s.rowC2[d+2]*delta4X(in, i, jj, k)
				}
				out.Set(i, j, k, acc)
			}
		}
	}
}

func TestAdaptationMatchesReferenceBitwise(t *testing.T) {
	g := probeGrid()
	b := serialBlock(g)
	st := smoothState(g, b)
	sur, cres, _ := prepare(g, st)
	cfg := DefaultAdaptConfig()
	fast := NewTendency(b)
	ref := NewTendency(b)
	Adaptation(g, cfg, st, sur, cres, fast, b.Owned())
	refAdaptation(g, cfg, st, sur, cres, ref, b.Owned())
	for name, pair := range map[string][2]*field.F3{
		"DU": {fast.DU, ref.DU}, "DV": {fast.DV, ref.DV}, "DPhi": {fast.DPhi, ref.DPhi},
	} {
		if d := field.MaxAbsDiffOwned(pair[0], pair[1]); d != 0 {
			t.Errorf("%s differs from reference by %g (must be bitwise)", name, d)
		}
	}
	if d := field.MaxAbsDiffOwned2(fast.DPsa, ref.DPsa); d != 0 {
		t.Errorf("DPsa differs from reference by %g", d)
	}
}

func TestDivPMatchesReferenceBitwise(t *testing.T) {
	g := probeGrid()
	b := serialBlock(g)
	st := smoothState(g, b)
	sur := NewSurface(b)
	sur.Update(st.Psa)
	fast := field.NewF3(b)
	ref := field.NewF3(b)
	DivP(g, st.U, st.V, sur, fast, b.Owned())
	refDivP(g, st.U, st.V, sur, ref, b.Owned())
	if d := field.MaxAbsDiffOwned(fast, ref); d != 0 {
		t.Errorf("DivP differs from reference by %g", d)
	}
}

func TestSmoothingMatchesReferenceBitwise(t *testing.T) {
	g := probeGrid()
	b := serialBlock(g)
	st := smoothState(g, b)
	smo := NewSmoother(g, 1.0)
	fast := field.NewF3(b)
	ref := field.NewF3(b)

	smo.P1Field(st.U, fast, b.Owned())
	refP1(smo, st.U, ref, b.Owned())
	if d := field.MaxAbsDiffOwned(fast, ref); d != 0 {
		t.Errorf("P1 differs from reference by %g", d)
	}

	window := func(j int) (int, int) { return 3, 8 }
	smo.P2Former(st.Phi, fast, b.Owned(), window)
	refP2Former(smo, st.Phi, ref, b.Owned(), window)
	if d := field.MaxAbsDiffOwned(fast, ref); d != 0 {
		t.Errorf("P2Former differs from reference by %g", d)
	}
}

func TestSpectralMatchesReferencePerPassCount(t *testing.T) {
	// The spectral composed symbol σ^m against m applications of the
	// point-accessor reference refP1 (ghosts refreshed between passes),
	// normalized ≤1e-11 per pass count. The spectral path reorders the
	// arithmetic through the DFT, so the pin is tight-tolerance, not
	// bitwise like the stencil row-slice kernels above.
	g := probeGrid()
	b := serialBlock(g)
	st := smoothState(g, b)
	smo := NewSmoother(g, 1.0)
	spe := NewSpectralSmoother(g, smo)
	for _, m := range []int{1, 2, 3, 9} {
		cur := field.NewF3(b)
		field.Copy(cur, st.U)
		next := field.NewF3(b)
		for p := 0; p < m; p++ {
			cur.FillXPeriodic()
			refP1(smo, cur, next, b.Owned())
			cur, next = next, cur
		}
		out := field.NewF3(b)
		spe.P1Power(st.U, out, b.Owned(), m)
		scale := field.MaxAbsOwned(cur)
		if scale == 0 {
			scale = 1
		}
		if d := field.MaxAbsDiffOwned(out, cur) / scale; d > 1e-11 {
			t.Errorf("m=%d: spectral differs from %d reference passes by %g (pin 1e-11)", m, m, d)
		}
	}
}

func TestAdvectionScratchReuseBitwise(t *testing.T) {
	// Reusing scratch (with stale contents from an unrelated call) must not
	// change results.
	g := probeGrid()
	b := serialBlock(g)
	st := smoothState(g, b)
	sur, cres, _ := prepare(g, st)
	fresh := NewTendency(b)
	Advection(g, st, sur, cres, fresh, b.Owned())

	sc := NewAdvScratch(b)
	// Poison the scratch.
	for i := range sc.uPhys.Data {
		sc.uPhys.Data[i] = math.Inf(1)
	}
	reused := NewTendency(b)
	AdvectionScratch(g, st, sur, cres, reused, b.Owned(), sc)
	for name, pair := range map[string][2]*field.F3{
		"DU": {fresh.DU, reused.DU}, "DV": {fresh.DV, reused.DV}, "DPhi": {fresh.DPhi, reused.DPhi},
	} {
		if d := field.MaxAbsDiffOwned(pair[0], pair[1]); d != 0 {
			t.Errorf("advection %s changed with reused scratch: %g", name, d)
		}
	}
}
