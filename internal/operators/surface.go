// Package operators implements the discrete operators of the dynamical core
// (paper Sections 2.1 and 3): the adaptation stencil Â (pressure-gradient,
// Coriolis and Ω terms plus surface-pressure diffusion), the vertical
// summation Ĉ (the only z-collective), the advection stencils L̃ (L1, L2,
// L3), and the smoothing S̃ (P1, P2) together with its operator splitting
// S̃ = S̃2∘S̃1 (Section 4.3.2).
//
// Kernels are pure functions of their input fields over an explicit
// computation rectangle, so the same code serves the serial reference, both
// baseline decompositions, and the deep-halo redundant computation of the
// communication-avoiding algorithm. Every kernel returns the number of point
// updates it performed, which the callers convert into simulated compute
// time.
//
// Discretization notes (see DESIGN.md §5): Arakawa C grid with U at west
// faces and V at latitude interfaces (row 0 = north pole, where V ≡ 0);
// second-order centered differences, except fourth-order zonal flux
// interpolation in L1 which realizes the wide x footprints of the paper's
// Table 2. The paper's equation (2) lists both Coriolis terms with a minus
// sign; we use the antisymmetric pair (+f*V, −f*U), which is required for
// kinetic-energy neutrality and is evidently the intent.
package operators

import (
	"cadycore/internal/field"
	"cadycore/internal/grid"
	"cadycore/internal/physics"
)

// Surface holds the 2-D diagnostics derived pointwise from p'_sa:
// p_es = p_s − p_t and P = sqrt(p_es/p0). They are recomputed after every
// update of p'_sa over the full storage footprint (halo values follow the
// halo validity of p'_sa).
type Surface struct {
	B   field.Block
	Pes *field.F2
	P   *field.F2
}

// NewSurface allocates surface diagnostics for a block.
func NewSurface(b field.Block) *Surface {
	return &Surface{B: b, Pes: field.NewF2(b), P: field.NewF2(b)}
}

// Update recomputes p_es and P from p'_sa over the entire storage region
// (owned + halos) and returns the number of points updated.
//
//cadyvet:allocfree
func (s *Surface) Update(psa *field.F2) int {
	pes, pf, src := s.Pes.Data, s.P.Data, psa.Data
	for i, v := range src {
		ps := physics.StandardSurfacePressure + v
		pes[i] = physics.PesFromPs(ps)
		pf[i] = physics.PFromPs(ps)
	}
	return len(src)
}

// Tendency is ∂ξ/∂t on a block: the output of Â+Ĉ (adaptation) or L̃
// (advection).
type Tendency struct {
	B    field.Block
	DU   *field.F3
	DV   *field.F3
	DPhi *field.F3
	DPsa *field.F2

	// Component lists handed out by F3s/F2s, filled once at construction so
	// per-step callers get a slice of a fixed array instead of a fresh
	// literal.
	f3s [3]*field.F3
	f2s [1]*field.F2
}

// NewTendency allocates a zero tendency on the block.
func NewTendency(b field.Block) *Tendency {
	t := &Tendency{
		B:    b,
		DU:   field.NewF3(b),
		DV:   field.NewF3(b),
		DPhi: field.NewF3(b),
		DPsa: field.NewF2(b),
	}
	t.f3s = [3]*field.F3{t.DU, t.DV, t.DPhi}
	t.f2s = [1]*field.F2{t.DPsa}
	return t
}

// F3s returns the 3-D components (same order as state.State.F3s).
//
//cadyvet:allocfree
func (t *Tendency) F3s() []*field.F3 { return t.f3s[:] }

// F2s returns the 2-D components.
//
//cadyvet:allocfree
func (t *Tendency) F2s() []*field.F2 { return t.f2s[:] }

// Zero clears the tendency (storage included).
//
//cadyvet:allocfree
func (t *Tendency) Zero() {
	t.DU.Zero()
	t.DV.Zero()
	t.DPhi.Zero()
	t.DPsa.Zero()
}

// metric bundles the grid factors kernels use; splitting them out keeps the
// kernel signatures small.
type metric struct {
	g      *grid.Grid
	a      float64 // earth radius
	dlam   float64
	dthe   float64
	b      float64 // gravity-wave speed b
	haDlam float64 // a·Δλ
	haDthe float64 // a·Δθ
}

func newMetric(g *grid.Grid) metric {
	return metric{
		g:      g,
		a:      physics.EarthRadius,
		dlam:   g.DLambda,
		dthe:   g.DTheta,
		b:      physics.B,
		haDlam: physics.EarthRadius * g.DLambda,
		haDthe: physics.EarthRadius * g.DTheta,
	}
}

// sinC returns sin θ at center row j, valid for ghost rows via mirror.
func (m metric) sinC(j int) float64 {
	ny := m.g.Ny
	if j < 0 {
		j = -1 - j
	}
	if j >= ny {
		j = 2*ny - 1 - j
	}
	return m.g.SinC[j]
}

// cosC returns cos θ at center row j. Ghost rows reflect across a pole
// (θ → −θ at the north, θ → 2π − θ at the south), under which cosine is
// even, so the mirror copies the value unchanged.
func (m metric) cosC(j int) float64 {
	ny := m.g.Ny
	if j < 0 {
		j = -1 - j
	}
	if j >= ny {
		j = 2*ny - 1 - j
	}
	return m.g.CosC[j]
}

// sinI/cosI return the interface metric for (possibly ghost) V row j.
func (m metric) sinI(j int) float64 {
	ny := m.g.Ny
	if j < 0 {
		j = -j
	}
	if j > ny {
		j = 2*ny - j
	}
	return m.g.SinI[j]
}
