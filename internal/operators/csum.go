package operators

import (
	"cadycore/internal/comm"
	"cadycore/internal/field"
	"cadycore/internal/grid"
)

// CRes is the result of the vertical summation operator Ĉ: everything the
// rest of a time-step update needs from the z-direction integral of the
// mass-flux divergence D(P). It is the quantity the communication-avoiding
// algorithm reuses across nonlinear iterations (Ĉ(ψ^{i−2}) standing in for
// Ĉ(ψ^{i−1}), Section 4.2.2).
//
//	DBar[i,j]  = Σ_k Δσ_k · D(P)[i,j,k]      (drives ∂p'_sa/∂t and Ω⁽¹⁾)
//	PWI[i,j,k] = PW at σ interface k          (drives W, and σ̇ = PW/P for L3)
//
// PWI is stored on the 3-D block with index k meaning "interface at the top
// of layer k"; the bottom interface of the lowest owned layer lives in the
// z halo, which is why every topology allocates Hz ≥ 1.
type CRes struct {
	B    field.Block
	DBar *field.F2
	PWI  *field.F3
	// Valid is the horizontal rect over which the result is valid; vertical
	// validity spans the same halo depth in z.
	Valid field.Rect
}

// NewCRes allocates a result container on the block.
func NewCRes(b field.Block) *CRes {
	return &CRes{B: b, DBar: field.NewF2(b), PWI: field.NewF3(b)}
}

// CopyFrom deep-copies o into c.
func (c *CRes) CopyFrom(o *CRes) {
	field.Copy2(c.DBar, o.DBar)
	field.Copy(c.PWI, o.PWI)
	c.Valid = o.Valid
}

// DivP computes the mass-flux divergence
//
//	D(P)[i,j,k] = (1/(a sinθ_j)) [ ∂(P·U)/∂λ + ∂(P·V·sinθ)/∂θ ]
//
// over rect r into out (paper eq. 6). Inputs must be valid on r expanded by
// one cell in x and y. Returns points updated.
//
//cadyvet:allocfree
func DivP(g *grid.Grid, u, v *field.F3, sur *Surface, out *field.F3, r field.Rect) int {
	m := newMetric(g)
	xo := u.XOff(0)
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			invASin := 1 / (m.a * m.sinC(j))
			sI0, sI1 := m.sinI(j), m.sinI(j+1)
			p0 := sur.P.Row(j)
			pN := sur.P.Row(j - 1)
			pS := sur.P.Row(j + 1)
			u0 := u.Row(j, k)
			v0 := v.Row(j, k)
			vS := v.Row(j+1, k)
			dst := out.Row(j, k)
			for i := r.I0; i < r.I1; i++ {
				o := i + xo
				// P at the west faces i and i+1 (average of neighboring centers).
				pW := 0.5 * (p0[o-1] + p0[o])
				pE := 0.5 * (p0[o] + p0[o+1])
				dPUdl := (pE*u0[o+1] - pW*u0[o]) / m.dlam

				// P·V·sinθ at the interfaces j (north face) and j+1 (south).
				pFaceN := 0.5 * (pN[o] + p0[o])
				pFaceS := 0.5 * (p0[o] + pS[o])
				dPVdt := (pFaceS*vS[o]*sI1 - pFaceN*v0[o]*sI0) / m.dthe

				dst[o] = invASin * (dPUdl + dPVdt)
			}
		}
	}
	return r.Count()
}

// CSumScratch holds the work planes of CSum. One instance per integrator
// makes the vertical summation allocation-free in steady state; the slices
// grow on demand to the largest plane seen.
type CSumScratch struct {
	local, all, dbar, base, prefix []float64
}

// grown resizes a scratch slice to n, reallocating only when the capacity is
// exceeded; contents are unspecified (callers zero what they accumulate).
func grown(s []float64, n int) []float64 {
	if cap(s) < n {
		//cadyvet:allow lazy scratch growth to the largest plane seen; steady-state steps reuse the capacity
		return make([]float64, n)
	}
	return s[:n]
}

// CSum executes the collective part of Ĉ: given D(P) on the horizontal rect
// hr (for every locally stored vertical level within [loK, hiK)), it reduces
// the Δσ-weighted vertical sums across the z communicator and assembles
// DBar and the interface fluxes PWI into res.
//
// The collective is a ring Allgather of each z-rank's partial-sum plane
// (category comm.CatCollectiveZ) — one collective operation per Ĉ
// evaluation, matching the paper's communication counting. When the z
// communicator has size 1 no communication happens.
//
// The interface flux satisfies PW = σ·D̄ − ∫₀^σ D(P) dσ', which vanishes at
// σ = 0 and σ = 1, so W and σ̇ have the correct boundary behaviour.
//
// loK/hiK bound the vertical range over which divP holds valid data
// (beyond the owned range for deep-halo execution); they are clamped to the
// global domain. Returns points updated (for compute accounting).
func CSum(g *grid.Grid, cz *comm.Comm, world *comm.Comm, divP *field.F3, res *CRes, hr field.Rect, loK, hiK int) int {
	return CSumWith(g, cz, world, divP, res, hr, loK, hiK, nil)
}

// CSumWith is CSum with caller-held scratch (nil allocates fresh planes,
// which is what the convenience wrapper above does — fine for tests,
// expensive inside a time-step loop).
//
//cadyvet:allocfree
func CSumWith(g *grid.Grid, cz *comm.Comm, world *comm.Comm, divP *field.F3, res *CRes, hr field.Rect, loK, hiK int, sc *CSumScratch) int {
	b := res.B
	if sc == nil {
		//cadyvet:allow nil-scratch convenience path for tests and one-off calls; hot callers preallocate CSumScratch
		sc = &CSumScratch{}
	}
	if loK < 0 {
		loK = 0
	}
	if hiK > g.Nz {
		hiK = g.Nz
	}
	hr = hr.Flat2D()
	nxh := hr.I1 - hr.I0
	nyh := hr.J1 - hr.J0
	plane := nxh * nyh
	work := 0

	// Local Δσ-weighted sum over the owned levels.
	sc.local = grown(sc.local, plane)
	local := sc.local
	for i := range local {
		local[i] = 0
	}
	for k := b.K0; k < b.K1; k++ {
		ds := g.DSigma[k]
		w := 0
		for j := hr.J0; j < hr.J1; j++ {
			base := divP.Index(hr.I0, j, k)
			for o := 0; o < nxh; o++ {
				local[w] += ds * divP.Data[base+o]
				w++
			}
		}
	}
	work += (b.K1 - b.K0) * plane

	// The z collective: gather every z-rank's partial plane.
	var all []float64
	pz := 1
	myCz := 0
	if cz != nil {
		pz = cz.Size()
		myCz = cz.Rank()
	}
	if pz > 1 {
		prev := world.SetCategory(comm.CatCollectiveZ)
		sc.all = grown(sc.all, pz*plane)
		all = sc.all
		cz.Allgather(local, all)
		world.SetCategory(prev)
	} else {
		all = local
	}

	// DBar = total; base = partial sum of the z-ranks above (lower k).
	sc.dbar = grown(sc.dbar, plane)
	sc.base = grown(sc.base, plane)
	dbar, base := sc.dbar, sc.base
	for i := range dbar {
		dbar[i], base[i] = 0, 0
	}
	for r := 0; r < pz; r++ {
		seg := all[r*plane : (r+1)*plane]
		for i, v := range seg {
			dbar[i] += v
			if r < myCz {
				base[i] += v
			}
		}
	}
	work += pz * plane

	// Store DBar.
	w := 0
	for j := hr.J0; j < hr.J1; j++ {
		d := res.DBar.Index(hr.I0, j)
		copy(res.DBar.Data[d:d+nxh], dbar[w:w+nxh])
		w += nxh
	}

	// Assemble PWI on [loK, hiK]: march the prefix up and down from the
	// owned range using the locally stored D(P) halo levels.
	// prefix(k) = Σ_{k'<k} Δσ_{k'} D(P)_{k'}; PWI(k) = σ_I[k]·DBar − prefix(k).
	sc.prefix = grown(sc.prefix, plane)
	prefix := sc.prefix
	copy(prefix, base)
	// Downward sweep: interfaces K0 … hiK.
	for k := b.K0; k <= hiK; k++ {
		storePWI(g, res, divP, hr, k, dbar, prefix, +1)
		if k < hiK {
			accumulate(divP, hr, k, g.DSigma[k], prefix)
		}
	}
	// Upward sweep: interfaces K0−1 … loK (subtract layers above K0).
	copy(prefix, base)
	for k := b.K0 - 1; k >= loK; k-- {
		accumulate(divP, hr, k, -g.DSigma[k], prefix)
		storePWI(g, res, divP, hr, k, dbar, prefix, +1)
	}
	work += (hiK - loK + 2) * plane

	res.Valid = hr
	return work
}

// storePWI writes PWI at interface k: σ_I[k]·DBar − prefix.
func storePWI(g *grid.Grid, res *CRes, divP *field.F3, hr field.Rect, k int, dbar, prefix []float64, _ int) {
	b := res.B
	if k < b.K0-b.Hz || k >= b.K1+b.Hz {
		return // interface outside storage (cannot happen for Hz ≥ 1)
	}
	sig := g.SigmaI[k]
	nxh := hr.I1 - hr.I0
	w := 0
	for j := hr.J0; j < hr.J1; j++ {
		base := res.PWI.Index(hr.I0, j, k)
		for o := 0; o < nxh; o++ {
			res.PWI.Data[base+o] = sig*dbar[w] - prefix[w]
			w++
		}
	}
}

// accumulate adds ds·D(P) at level k into prefix.
func accumulate(divP *field.F3, hr field.Rect, k int, ds float64, prefix []float64) {
	nxh := hr.I1 - hr.I0
	w := 0
	for j := hr.J0; j < hr.J1; j++ {
		base := divP.Index(hr.I0, j, k)
		for o := 0; o < nxh; o++ {
			prefix[w] += ds * divP.Data[base+o]
			w++
		}
	}
}
