package operators

import (
	"math"
	"testing"

	"cadycore/internal/field"
	"cadycore/internal/grid"
	"cadycore/internal/state"
)

// relDiff is the normalized accuracy metric of the spectral-vs-stencil
// pins: max|a−b| / max|b| over the owned rect.
func relDiff(a, b *field.F3) float64 {
	m := field.MaxAbsOwned(b)
	if m == 0 {
		m = 1
	}
	return field.MaxAbsDiffOwned(a, b) / m
}

func relDiff2(a, b *field.F2) float64 {
	m := 0.0
	r := b.B.Owned().Flat2D()
	for j := r.J0; j < r.J1; j++ {
		for i := r.I0; i < r.I1; i++ {
			if v := math.Abs(b.At(i, j)); v > m {
				m = v
			}
		}
	}
	if m == 0 {
		m = 1
	}
	return field.MaxAbsDiffOwned2(a, b) / m
}

// stencilP1Passes applies m stencil P1 passes of u into a fresh field,
// refreshing the periodic x ghosts between passes (the reference the
// composed symbol is pinned against).
func stencilP1Passes(smo *Smoother, u *field.F3, b field.Block, m int) *field.F3 {
	cur := field.NewF3(b)
	field.Copy(cur, u)
	next := field.NewF3(b)
	for p := 0; p < m; p++ {
		cur.FillXPeriodic()
		smo.P1Field(cur, next, b.Owned())
		cur, next = next, cur
	}
	return cur
}

// TestSpectralP1PowerMatchesStencilPerPassCount pins the composed symbol
// σ^m against m explicit stencil passes at ≤1e-11 per pass count (the
// tentpole accuracy claim), on even, odd (full-complex RealPlan fallback)
// and non-power-of-two zonal extents.
func TestSpectralP1PowerMatchesStencilPerPassCount(t *testing.T) {
	for _, nx := range []int{16, 15, 12} {
		g := grid.New(nx, 10, 6)
		b := serialBlock(g)
		st := smoothState(g, b)
		smo := NewSmoother(g, 1.0)
		spe := NewSpectralSmoother(g, smo)
		for _, m := range []int{1, 2, 3, 9} {
			ref := stencilP1Passes(smo, st.U, b, m)
			out := field.NewF3(b)
			wk := spe.P1Power(st.U, out, b.Owned(), m)
			if wk.Rows == 0 {
				t.Fatalf("nx=%d m=%d: spectral path did not engage", nx, m)
			}
			if d := relDiff(out, ref); d > 1e-11 {
				t.Errorf("nx=%d m=%d: spectral P1^m differs from %d stencil passes by %g (pin 1e-11)", nx, m, m, d)
			}
		}
	}
}

// TestSpectralP2FormerLatterMatchesStencil pins the spectral former/latter
// split (windowed P1y + spectral P1x) against the stencil P2Former+P2Latter
// at ≤1e-11, both with the full window and an artificial mid-domain split.
func TestSpectralP2FormerLatterMatchesStencil(t *testing.T) {
	g := probeGrid()
	b := serialBlock(g)
	st := smoothState(g, b)
	smo := NewSmoother(g, 1.0)
	spe := NewSpectralSmoother(g, smo)

	for name, avail := range map[string]AvailFunc{
		"full":  FullAvail,
		"split": func(j int) (int, int) { return 3, 8 },
	} {
		ref := field.NewF3(b)
		smo.P2Former(st.Phi, ref, b.Owned(), avail)
		smo.P2Latter(st.Phi, ref, b.Owned(), avail)

		out := field.NewF3(b)
		wk := spe.P2Former(st.Phi, out, b.Owned(), avail)
		wk.Add(spe.P2Latter(st.Phi, out, b.Owned(), avail))
		if wk.Rows == 0 {
			t.Fatalf("%s: spectral path did not engage", name)
		}
		if d := relDiff(out, ref); d > 1e-11 {
			t.Errorf("%s window: spectral P2 differs from stencil by %g (pin 1e-11)", name, d)
		}
	}

	// 2-D (p'_sa) counterparts.
	window := func(j int) (int, int) { return 3, 8 }
	ref2 := field.NewF2(b)
	smo.P2Former2(st.Psa, ref2, b.Owned(), window)
	smo.P2Latter2(st.Psa, ref2, b.Owned(), window)
	out2 := field.NewF2(b)
	spe.P2Former2(st.Psa, out2, b.Owned(), window)
	spe.P2Latter2(st.Psa, out2, b.Owned(), window)
	if d := relDiff2(out2, ref2); d > 1e-11 {
		t.Errorf("2-D spectral P2 differs from stencil by %g (pin 1e-11)", d)
	}
}

// TestSpectralSmoothFullMatchesStencil pins the drop-in SmoothFull.
func TestSpectralSmoothFullMatchesStencil(t *testing.T) {
	g := probeGrid()
	b := serialBlock(g)
	st := smoothState(g, b)
	smo := NewSmoother(g, 1.0)
	spe := NewSpectralSmoother(g, smo)
	ref := state.New(b)
	smo.SmoothFull(st, ref, b.Owned())
	out := state.New(b)
	spe.SmoothFull(st, out, b.Owned())
	for name, d := range map[string]float64{
		"U":   relDiff(out.U, ref.U),
		"V":   relDiff(out.V, ref.V),
		"Phi": relDiff(out.Phi, ref.Phi),
		"Psa": relDiff2(out.Psa, ref.Psa),
	} {
		if d > 1e-11 {
			t.Errorf("spectral SmoothFull %s differs from stencil by %g (pin 1e-11)", name, d)
		}
	}
}

// TestSpectralFallbackBitwise: a rect that does not span the zonal circle
// has a non-circulant footprint; the spectral methods must hand it to the
// stencil reference unchanged (bitwise).
func TestSpectralFallbackBitwise(t *testing.T) {
	g := probeGrid()
	b := serialBlock(g)
	st := smoothState(g, b)
	smo := NewSmoother(g, 1.0)
	spe := NewSpectralSmoother(g, smo)
	r := b.Owned()
	r.I1-- // partial x span
	if spe.CanApply(r) {
		t.Fatal("CanApply true on a partial-x rect")
	}
	ref := field.NewF3(b)
	smo.P2Former(st.Phi, ref, r, FullAvail)
	out := field.NewF3(b)
	wk := spe.P2Former(st.Phi, out, r, FullAvail)
	if wk.Rows != 0 || wk.Sten == 0 {
		t.Fatalf("fallback accounting wrong: %+v", wk)
	}
	if d := field.MaxAbsDiffOwned(out, ref); d != 0 {
		t.Errorf("stencil fallback differs from reference by %g (must be bitwise)", d)
	}
}

// TestSpectralSymbolPreservesConstants: σ(0) = 1 for every power, so
// constants pass through untouched (to rounding).
func TestSpectralSymbolPreservesConstants(t *testing.T) {
	g := probeGrid()
	b := serialBlock(g)
	u := field.NewF3(b)
	for i := range u.Data {
		u.Data[i] = 3.25
	}
	spe := NewSpectralSmoother(g, NewSmoother(g, 1.0))
	for _, m := range []int{1, 9} {
		if s0 := spe.Symbol(m)[0]; s0 != 1 {
			t.Errorf("σ^%d(0) = %v, want exactly 1", m, s0)
		}
		out := field.NewF3(b)
		spe.P1Power(u, out, b.Owned(), m)
		r := b.Owned()
		for k := r.K0; k < r.K1; k++ {
			for j := r.J0; j < r.J1; j++ {
				for i := r.I0; i < r.I1; i++ {
					if math.Abs(out.At(i, j, k)-3.25) > 1e-11 {
						t.Fatalf("P1^%d not identity on constants: %v", m, out.At(i, j, k))
					}
				}
			}
		}
	}
}

// TestSpectralSymbolKillsNyquist: with β = 1 the Nyquist symbol value is
// exactly 0, so the 2Δx wave is annihilated in one spectral pass.
func TestSpectralSymbolKillsNyquist(t *testing.T) {
	g := probeGrid() // nx = 16, even: the half spectrum has a Nyquist bin
	b := serialBlock(g)
	spe := NewSpectralSmoother(g, NewSmoother(g, 1.0))
	sig := spe.Symbol(1)
	if ny := sig[len(sig)-1]; ny != 0 {
		t.Errorf("σ(π) = %v with β=1, want exactly 0", ny)
	}
	u := field.NewF3(b)
	for k := -b.Hz; k < g.Nz+b.Hz; k++ {
		for j := -b.Hy; j < g.Ny+b.Hy; j++ {
			for i := -b.Hx; i < g.Nx+b.Hx; i++ {
				v := 1.0
				if ((i%2)+2)%2 == 1 {
					v = -1
				}
				u.Set(i, j, k, v)
			}
		}
	}
	out := field.NewF3(b)
	spe.P1Power(u, out, b.Owned(), 1)
	if m := field.MaxAbsOwned(out); m > 1e-12 {
		t.Errorf("β=1 spectral P1 left Nyquist amplitude %v", m)
	}
}

// TestSpectralDampsMonotonically mirrors TestSmootherDampsMonotonically at
// powers m ∈ {1, 9} (one pass, and the 3M composition at M = 3): no zonal
// wave may be amplified, and the 9-fold damping must be at least the
// single-pass damping.
func TestSpectralDampsMonotonically(t *testing.T) {
	g := probeGrid()
	b := serialBlock(g)
	spe := NewSpectralSmoother(g, NewSmoother(g, 1.0))
	for m := 1; m <= g.Nx/2; m++ {
		u := field.NewF3(b)
		for k := -b.Hz; k < g.Nz+b.Hz; k++ {
			for j := -b.Hy; j < g.Ny+b.Hy; j++ {
				for i := -b.Hx; i < g.Nx+b.Hx; i++ {
					u.Set(i, j, k, math.Sin(2*math.Pi*float64(m*((i+g.Nx)%g.Nx))/float64(g.Nx)))
				}
			}
		}
		before := field.MaxAbsOwned(u)
		one := field.NewF3(b)
		spe.P1Power(u, one, b.Owned(), 1)
		after1 := field.MaxAbsOwned(one)
		if after1 > before*(1+1e-12) {
			t.Errorf("spectral P1 amplified wave m=%d: %v -> %v", m, before, after1)
		}
		nine := field.NewF3(b)
		spe.P1Power(u, nine, b.Owned(), 9)
		after9 := field.MaxAbsOwned(nine)
		if after9 > after1*(1+1e-12) {
			t.Errorf("spectral P1^9 damped less than P1 at wave m=%d: %v vs %v", m, after9, after1)
		}
	}
}

// TestSpectralZeroAlloc: the hot-path methods are //cadyvet:allocfree once
// the symbol powers are materialized.
func TestSpectralZeroAlloc(t *testing.T) {
	g := probeGrid()
	b := serialBlock(g)
	st := smoothState(g, b)
	smo := NewSmoother(g, 1.0)
	spe := NewSpectralSmoother(g, smo)
	spe.Symbol(3) // pre-materialize the power the loop uses
	out := state.New(b)
	r := b.Owned()
	window := func(j int) (int, int) { return 3, 8 }
	if n := testing.AllocsPerRun(20, func() {
		spe.SmoothFull(st, out, r)
		spe.P1Power(st.U, out.U, r, 3)
		spe.P2Former(st.Phi, out.Phi, r, window)
		spe.P2Latter(st.Phi, out.Phi, r, window)
		spe.P2Former2(st.Psa, out.Psa, r, window)
		spe.P2Latter2(st.Psa, out.Psa, r, window)
	}); n != 0 {
		t.Errorf("spectral smoothing allocated %v times per run, want 0", n)
	}
}
