package operators

import (
	"cadycore/internal/field"
	"cadycore/internal/grid"
	"cadycore/internal/state"
)

// Smoother implements the smoothing S̃ (paper Section 4.3.2):
//
//	S̃(ξ) = (P1(U), P1(V), P2(Φ), P2(p'_sa))
//	P1(φ) = φ − (β/2⁴)·δ⁴_λ φ
//	P2(φ) = φ − (β/2⁴)(δ⁴_λ φ + δ⁴_θ φ) + (β²/2⁸)·δ⁴_θ δ⁴_λ φ
//
// with δ⁴ the fourth centered difference (offsets ±2). P1 couples x only;
// P2 couples x and y. Under the Y-Z decomposition only P2's y coupling
// communicates, and the paper splits it by y rows (eq. 14) into a former
// stage S̃1 (rows available locally) and a latter stage S̃2 (the remaining
// rows, applied after the fused exchange delivers the neighbors' original
// edge rows).
//
// P2 is evaluated as a sum of per-row contributions in increasing row-offset
// order in both the full and the split paths, which makes the identity
// S̃ = S̃2∘S̃1 hold bitwise — the property TestSmoothingSplitExact asserts.
type Smoother struct {
	g    *grid.Grid
	beta float64

	// rowC1[d+2], rowC2[d+2]: P2(φ)_{i,j} = Σ_d c1_d·φ_{i,j+d} + c2_d·(δ⁴_λφ)_{i,j+d}.
	rowC1 [5]float64
	rowC2 [5]float64
}

// NewSmoother builds a smoother with coefficient β ∈ (0, 2) (β = 1 removes
// the 2Δ wave completely).
func NewSmoother(g *grid.Grid, beta float64) *Smoother {
	s := &Smoother{g: g, beta: beta}
	// δ⁴_θ weights at offsets −2…2.
	w := [5]float64{1, -4, 6, -4, 1}
	b16 := beta / 16
	b256 := beta * beta / 256
	for d := -2; d <= 2; d++ {
		s.rowC1[d+2] = -b16 * w[d+2]
		s.rowC2[d+2] = b256 * w[d+2]
	}
	// The d = 0 row additionally carries the identity and the −(β/16)δ⁴_λ
	// terms of P2.
	s.rowC1[2] += 1
	s.rowC2[2] += -b16
	return s
}

// Beta returns the smoothing coefficient.
func (s *Smoother) Beta() float64 { return s.beta }

// delta4X returns (δ⁴_λ φ) at (i, j, k): φ_{i−2} − 4φ_{i−1} + 6φ_i − 4φ_{i+1} + φ_{i+2}.
func delta4X(f *field.F3, i, j, k int) float64 {
	return f.At(i-2, j, k) - 4*f.At(i-1, j, k) + 6*f.At(i, j, k) - 4*f.At(i+1, j, k) + f.At(i+2, j, k)
}

func delta4X2(f *field.F2, i, j int) float64 {
	return f.At(i-2, j) - 4*f.At(i-1, j) + 6*f.At(i, j) - 4*f.At(i+1, j) + f.At(i+2, j)
}

// P1Field applies P1 (x-only smoothing) of in into out over rect r. Inputs
// must be valid on r expanded by 2 in x.
func (s *Smoother) P1Field(in, out *field.F3, r field.Rect) int {
	c := s.beta / 16
	xo := in.XOff(0)
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			src := in.Row(j, k)
			dst := out.Row(j, k)
			for i := r.I0; i < r.I1; i++ {
				o := i + xo
				dst[o] = src[o] - c*(src[o-2]-4*src[o-1]+6*src[o]-4*src[o+1]+src[o+2])
			}
		}
	}
	return r.Count()
}

// AvailFunc reports, for a global latitude row j, the half-open row window
// [lo, hi) that was locally available to the rank that executed former
// smoothing for row j. Rows outside the window are the latter-smoothing
// contributions. A window covering [j−2, j+2] for every j means full
// smoothing in one pass.
type AvailFunc func(j int) (lo, hi int)

// FullAvail is the AvailFunc of the unsplit smoothing.
func FullAvail(j int) (lo, hi int) { return j - 2, j + 3 }

// P2Former applies the former-smoothing part of P2 of in into out over r:
// for each row j, the contributions of rows j+d (d = −2…2) that fall inside
// avail(j), accumulated in increasing d. With avail = FullAvail this is the
// complete P2. Inputs must be valid on r expanded by 2 in x and on the
// in-window rows in y.
func (s *Smoother) P2Former(in, out *field.F3, r field.Rect, avail AvailFunc) int {
	xo := in.XOff(0)
	var rows [5][]float64
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			// The avail window is contiguous, so the retained offsets form one
			// contiguous d range — the inner loop then runs without per-row
			// nil checks, in the same ascending-d order (bitwise-identical
			// accumulation).
			//cadyvet:allow AvailFunc implementations are index arithmetic over captured scalars (FullAvail, CommAvoid.availY); callers pass pre-bound func values
			lo, hi := avail(j)
			dLo, dHi := clampD(lo-j, hi-1-j)
			for d := dLo; d <= dHi; d++ {
				rows[d+2] = in.Row(j+d, k)
			}
			dst := out.Row(j, k)
			for i := r.I0; i < r.I1; i++ {
				o := i + xo
				acc := 0.0
				for d := dLo; d <= dHi; d++ {
					rw := rows[d+2]
					acc += s.rowC1[d+2]*rw[o] + s.rowC2[d+2]*(rw[o-2]-4*rw[o-1]+6*rw[o]-4*rw[o+1]+rw[o+2])
				}
				dst[o] = acc
			}
		}
	}
	return r.Count()
}

// clampD clips an inclusive offset range to the stencil offsets [−2, 2].
func clampD(lo, hi int) (int, int) {
	if lo < -2 {
		lo = -2
	}
	if hi > 2 {
		hi = 2
	}
	return lo, hi
}

// P2Latter adds the latter-smoothing contributions to cur over r: for each
// row j, the rows j+d outside avail(j), read from orig (the pre-smoothing
// values, which the fused exchange provides for neighbor rows). Accumulated
// in increasing d, completing P2Former to the exact full P2.
func (s *Smoother) P2Latter(orig, cur *field.F3, r field.Rect, avail AvailFunc) int {
	work := 0
	xo := orig.XOff(0)
	var rows [5][]float64
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			//cadyvet:allow AvailFunc implementations are index arithmetic over captured scalars (FullAvail, CommAvoid.availY); callers pass pre-bound func values
			lo, hi := avail(j)
			if j-2 >= lo && j+2 < hi {
				continue // fully smoothed in the former stage
			}
			// The out-of-window offsets are the complement of one contiguous
			// window: at most two contiguous d ranges, processed in ascending
			// d (range a below the window, then range b above it) — the same
			// accumulation order as the per-offset nil-check loop.
			aHi := lo - j - 1 // last offset below the window
			if aHi > 2 {
				aHi = 2
			}
			bLo := hi - j // first offset above the window
			if bLo < -2 {
				bLo = -2
			}
			for d := -2; d <= aHi; d++ {
				rows[d+2] = orig.Row(j+d, k)
			}
			for d := bLo; d <= 2; d++ {
				rows[d+2] = orig.Row(j+d, k)
			}
			dst := cur.Row(j, k)
			for i := r.I0; i < r.I1; i++ {
				o := i + xo
				acc := 0.0
				for d := -2; d <= aHi; d++ {
					rw := rows[d+2]
					acc += s.rowC1[d+2]*rw[o] + s.rowC2[d+2]*(rw[o-2]-4*rw[o-1]+6*rw[o]-4*rw[o+1]+rw[o+2])
				}
				for d := bLo; d <= 2; d++ {
					rw := rows[d+2]
					acc += s.rowC1[d+2]*rw[o] + s.rowC2[d+2]*(rw[o-2]-4*rw[o-1]+6*rw[o]-4*rw[o+1]+rw[o+2])
				}
				dst[o] += acc
			}
			work += r.I1 - r.I0
		}
	}
	return work
}

// P2Former2 / P2Latter2 are the 2-D (p'_sa) counterparts; like the 3-D
// versions they walk raw x-row slices over contiguous d ranges, with the
// accumulation order (and therefore the bits) of the per-point formulation.
func (s *Smoother) P2Former2(in, out *field.F2, r field.Rect, avail AvailFunc) int {
	r = r.Flat2D()
	xo := in.XOff(0)
	var rows [5][]float64
	for j := r.J0; j < r.J1; j++ {
		//cadyvet:allow AvailFunc implementations are index arithmetic over captured scalars (FullAvail, CommAvoid.availY); callers pass pre-bound func values
		lo, hi := avail(j)
		dLo, dHi := clampD(lo-j, hi-1-j)
		for d := dLo; d <= dHi; d++ {
			rows[d+2] = in.Row(j + d)
		}
		dst := out.Row(j)
		for i := r.I0; i < r.I1; i++ {
			o := i + xo
			acc := 0.0
			for d := dLo; d <= dHi; d++ {
				rw := rows[d+2]
				acc += s.rowC1[d+2]*rw[o] + s.rowC2[d+2]*(rw[o-2]-4*rw[o-1]+6*rw[o]-4*rw[o+1]+rw[o+2])
			}
			dst[o] = acc
		}
	}
	return r.Count()
}

func (s *Smoother) P2Latter2(orig, cur *field.F2, r field.Rect, avail AvailFunc) int {
	r = r.Flat2D()
	work := 0
	xo := orig.XOff(0)
	var rows [5][]float64
	for j := r.J0; j < r.J1; j++ {
		//cadyvet:allow AvailFunc implementations are index arithmetic over captured scalars (FullAvail, CommAvoid.availY); callers pass pre-bound func values
		lo, hi := avail(j)
		if j-2 >= lo && j+2 < hi {
			continue
		}
		aHi := lo - j - 1
		if aHi > 2 {
			aHi = 2
		}
		bLo := hi - j
		if bLo < -2 {
			bLo = -2
		}
		for d := -2; d <= aHi; d++ {
			rows[d+2] = orig.Row(j + d)
		}
		for d := bLo; d <= 2; d++ {
			rows[d+2] = orig.Row(j + d)
		}
		dst := cur.Row(j)
		for i := r.I0; i < r.I1; i++ {
			o := i + xo
			acc := 0.0
			for d := -2; d <= aHi; d++ {
				rw := rows[d+2]
				acc += s.rowC1[d+2]*rw[o] + s.rowC2[d+2]*(rw[o-2]-4*rw[o-1]+6*rw[o]-4*rw[o+1]+rw[o+2])
			}
			for d := bLo; d <= 2; d++ {
				rw := rows[d+2]
				acc += s.rowC1[d+2]*rw[o] + s.rowC2[d+2]*(rw[o-2]-4*rw[o-1]+6*rw[o]-4*rw[o+1]+rw[o+2])
			}
			dst[o] += acc
		}
		work += r.I1 - r.I0
	}
	return work
}

// SmoothFull applies the complete S̃ of in into out over rect r (the
// baseline path: P1 on U and V, full P2 on Φ and p'_sa). Inputs must be
// valid on r expanded by 2 in x and y.
//
//cadyvet:allocfree
func (s *Smoother) SmoothFull(in *state.State, out *state.State, r field.Rect) int {
	w := s.P1Field(in.U, out.U, r)
	w += s.P1Field(in.V, out.V, r)
	w += s.P2Former(in.Phi, out.Phi, r, FullAvail)
	w += s.P2Former2(in.Psa, out.Psa, r, FullAvail)
	return w
}
