package operators

import (
	"math"

	"cadycore/internal/fft"
	"cadycore/internal/field"
	"cadycore/internal/grid"
	"cadycore/internal/state"
)

// SpectralSmoother is the spectral fast path for the x direction of S̃
// (ROADMAP item 5, after Ahmad et al., "Fast Stencil Computations using
// Fast Fourier Transforms"). The smoothing factorizes exactly:
//
//	P2 = P1x ∘ P1y
//	P1x(φ)_i = φ_i − (β/16)·(δ⁴_λ φ)_i       (x only, periodic)
//	P1y(φ)_j = Σ_d cy_d·φ_{j+d}               (the 5-point y stencil)
//
// which one can read off NewSmoother's coefficients: rowC1_d = cy_d and
// rowC2_d = −(β/16)·cy_d, so every per-row contribution of P2 is P1x
// applied to cy_d·φ_{j+d}. P1x is an x-circulant convolution, hence
// diagonal in the zonal spectrum with the real symbol
//
//	σ(θ_k) = 1 − (β/16)·(2 − 2cosθ_k)²,  θ_k = 2πk/n,
//
// and m repeated passes collapse into one multiplication by σ^m — one
// fft.RealPlan round trip per row instead of m stencil sweeps. The y/z
// coupling stays in the stencil path (P1y is evaluated point-wise exactly
// like P2Former/P2Latter, including the pole ghost-row reads), so the
// spectral path changes only how the x convolution is evaluated.
//
// The footprint is x-circulant only when the transformed row spans the
// full zonal circle: callers fall back to the stencil reference whenever
// the rect does not cover [0, Nx) (boundary slabs of an x-decomposed
// run) — CanApply reports this. A SpectralSmoother owns its plan and
// scratch (integrator arena) and, like filter.Filter, is NOT safe for
// concurrent use.
type SpectralSmoother struct {
	g    *grid.Grid
	sten *Smoother
	rp   *fft.RealPlan

	// cy[d+2]: the P1y row coefficients, cy_d = −(β/16)·w_d (+1 at d = 0).
	cy [5]float64
	// pow caches σ^m on the half spectrum per power m (the "compose once
	// per (β, m) pair" table). Powers are materialized at construction /
	// first request, never on the hot path.
	pow map[int][]float64

	spec    []complex128
	scratch []complex128
	rowBuf  []float64
}

// SmoothWork is the work accounting of one spectral smoothing call, split
// by cost class so the simulated clock can price each part: Sten counts
// points smoothed through the stencil fallback (full S̃ rate), YPts counts
// points that ran only the y-coupling stencil, and Rows counts x-rows sent
// through the FFT round trip (nx·log₂nx equivalents, the filter-row rate).
type SmoothWork struct {
	Sten int
	YPts int
	Rows int
}

// Add accumulates another call's work.
func (w *SmoothWork) Add(o SmoothWork) {
	w.Sten += o.Sten
	w.YPts += o.YPts
	w.Rows += o.Rows
}

// NewSpectralSmoother builds the spectral fast path over the stencil
// smoother sten (the fallback and the coefficient source). The power-1
// symbol is composed eagerly; further powers are cached on first request.
func NewSpectralSmoother(g *grid.Grid, sten *Smoother) *SpectralSmoother {
	rp := fft.NewRealPlan(g.Nx)
	s := &SpectralSmoother{
		g:       g,
		sten:    sten,
		rp:      rp,
		pow:     make(map[int][]float64, 4),
		spec:    make([]complex128, rp.SpecLen()),
		scratch: make([]complex128, rp.ScratchLen()),
		rowBuf:  make([]float64, g.Nx),
	}
	w := [5]float64{1, -4, 6, -4, 1}
	b16 := sten.Beta() / 16
	for d := -2; d <= 2; d++ {
		s.cy[d+2] = -b16 * w[d+2]
	}
	s.cy[2] += 1
	s.Symbol(1)
	return s
}

// Stencil returns the stencil smoother the spectral path falls back to.
func (s *SpectralSmoother) Stencil() *Smoother { return s.sten }

// Symbol returns σ^m on the half spectrum (σ the P1x symbol), composing
// and caching it on first request. m must be ≥ 1. The returned slice is
// shared — callers must not modify it.
func (s *SpectralSmoother) Symbol(m int) []float64 {
	if m < 1 {
		panic("operators: spectral symbol power must be >= 1")
	}
	if sig, ok := s.pow[m]; ok {
		return sig
	}
	n := s.g.Nx
	b16 := s.sten.Beta() / 16
	sig := make([]float64, s.rp.SpecLen())
	for k := range sig {
		c := 2 - 2*math.Cos(2*math.Pi*float64(k)/float64(n))
		sig[k] = math.Pow(1-b16*c*c, float64(m))
	}
	s.pow[m] = sig
	return sig
}

// CanApply reports whether rect r has the x-circulant footprint the
// spectral path requires: rows spanning the full zonal circle.
func (s *SpectralSmoother) CanApply(r field.Rect) bool {
	return r.I0 == 0 && r.I1 == s.g.Nx
}

// xform multiplies row[xo : xo+nx] by sig in the zonal spectrum, in place.
//
//cadyvet:allocfree
func (s *SpectralSmoother) xform(row []float64, xo int, sig []float64) {
	src := row[xo : xo+s.g.Nx]
	s.rp.Forward(src, s.spec, s.scratch)
	for k, v := range sig {
		s.spec[k] = s.spec[k] * complex(v, 0)
	}
	s.rp.Inverse(s.spec, src, s.scratch)
}

// P1Power applies P1x^m (the x-only smoothing composed to the m-th power)
// of in into out over rect r: one FFT round trip per row against σ^m.
// Falls back to m stencil passes when the rect is not x-circulant (then
// out additionally needs x-ghosts valid on r expanded by 2m).
//
//cadyvet:allocfree m must be a power materialized by Symbol before the hot loop
func (s *SpectralSmoother) P1Power(in, out *field.F3, r field.Rect, m int) SmoothWork {
	if !s.CanApply(r) {
		if m != 1 {
			// The stencil fallback cannot run P1 in place; the integrators
			// only ever need single passes outside the circulant footprint.
			panic("operators: spectral P1Power fallback supports m = 1 only")
		}
		return SmoothWork{Sten: s.sten.P1Field(in, out, r)}
	}
	sig := s.pow[m]
	if sig == nil {
		//cadyvet:allow first-request symbol composition; steady-state calls hit the power cache
		sig = s.Symbol(m)
	}
	xo := in.XOff(0)
	rows := 0
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			src := in.Row(j, k)[xo : xo+s.g.Nx]
			dst := out.Row(j, k)[xo : xo+s.g.Nx]
			s.rp.Forward(src, s.spec, s.scratch)
			for q, v := range sig {
				s.spec[q] = s.spec[q] * complex(v, 0)
			}
			s.rp.Inverse(s.spec, dst, s.scratch)
			rows++
		}
	}
	return SmoothWork{Rows: rows}
}

// P2Former is the spectral counterpart of Smoother.P2Former: the windowed
// P1y sum of in into out (the same contiguous d-range, ascending order and
// ghost-row reads as the stencil path), then P1x applied spectrally to the
// out rows in place. By linearity of P1x the former/latter split stays
// exact. Falls back to the stencil when r is not x-circulant.
//
//cadyvet:allocfree
func (s *SpectralSmoother) P2Former(in, out *field.F3, r field.Rect, avail AvailFunc) SmoothWork {
	if !s.CanApply(r) {
		return SmoothWork{Sten: s.sten.P2Former(in, out, r, avail)}
	}
	sig := s.pow[1]
	xo := in.XOff(0)
	nx := s.g.Nx
	var rows [5][]float64
	wk := SmoothWork{}
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			//cadyvet:allow AvailFunc implementations are index arithmetic over captured scalars (FullAvail, CommAvoid.availY); callers pass pre-bound func values
			lo, hi := avail(j)
			dLo, dHi := clampD(lo-j, hi-1-j)
			for d := dLo; d <= dHi; d++ {
				rows[d+2] = in.Row(j+d, k)
			}
			dst := out.Row(j, k)
			for i := r.I0; i < r.I1; i++ {
				o := i + xo
				acc := 0.0
				for d := dLo; d <= dHi; d++ {
					acc += s.cy[d+2] * rows[d+2][o]
				}
				dst[o] = acc
			}
			s.xform(dst, xo, sig)
			wk.YPts += nx
			wk.Rows++
		}
	}
	return wk
}

// P2Latter completes a spectral P2Former: the out-of-window P1y sum of
// orig into the row buffer, one FFT round trip, then added to cur.
//
//cadyvet:allocfree
func (s *SpectralSmoother) P2Latter(orig, cur *field.F3, r field.Rect, avail AvailFunc) SmoothWork {
	if !s.CanApply(r) {
		return SmoothWork{Sten: s.sten.P2Latter(orig, cur, r, avail)}
	}
	sig := s.pow[1]
	xo := orig.XOff(0)
	nx := s.g.Nx
	var rows [5][]float64
	wk := SmoothWork{}
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			//cadyvet:allow AvailFunc implementations are index arithmetic over captured scalars (FullAvail, CommAvoid.availY); callers pass pre-bound func values
			lo, hi := avail(j)
			if j-2 >= lo && j+2 < hi {
				continue
			}
			aHi := lo - j - 1
			if aHi > 2 {
				aHi = 2
			}
			bLo := hi - j
			if bLo < -2 {
				bLo = -2
			}
			for d := -2; d <= aHi; d++ {
				rows[d+2] = orig.Row(j+d, k)
			}
			for d := bLo; d <= 2; d++ {
				rows[d+2] = orig.Row(j+d, k)
			}
			buf := s.rowBuf
			for i := r.I0; i < r.I1; i++ {
				o := i + xo
				acc := 0.0
				for d := -2; d <= aHi; d++ {
					acc += s.cy[d+2] * rows[d+2][o]
				}
				for d := bLo; d <= 2; d++ {
					acc += s.cy[d+2] * rows[d+2][o]
				}
				buf[i] = acc
			}
			s.xform(buf, 0, sig)
			dst := cur.Row(j, k)
			for i := r.I0; i < r.I1; i++ {
				dst[i+xo] += buf[i]
			}
			wk.YPts += nx
			wk.Rows++
		}
	}
	return wk
}

// P2Former2 / P2Latter2 are the 2-D (p'_sa) counterparts.
//
//cadyvet:allocfree
func (s *SpectralSmoother) P2Former2(in, out *field.F2, r field.Rect, avail AvailFunc) SmoothWork {
	if !s.CanApply(r) {
		return SmoothWork{Sten: s.sten.P2Former2(in, out, r, avail)}
	}
	sig := s.pow[1]
	r = r.Flat2D()
	xo := in.XOff(0)
	nx := s.g.Nx
	var rows [5][]float64
	wk := SmoothWork{}
	for j := r.J0; j < r.J1; j++ {
		//cadyvet:allow AvailFunc implementations are index arithmetic over captured scalars (FullAvail, CommAvoid.availY); callers pass pre-bound func values
		lo, hi := avail(j)
		dLo, dHi := clampD(lo-j, hi-1-j)
		for d := dLo; d <= dHi; d++ {
			rows[d+2] = in.Row(j + d)
		}
		dst := out.Row(j)
		for i := r.I0; i < r.I1; i++ {
			o := i + xo
			acc := 0.0
			for d := dLo; d <= dHi; d++ {
				acc += s.cy[d+2] * rows[d+2][o]
			}
			dst[o] = acc
		}
		s.xform(dst, xo, sig)
		wk.YPts += nx
		wk.Rows++
	}
	return wk
}

//cadyvet:allocfree
func (s *SpectralSmoother) P2Latter2(orig, cur *field.F2, r field.Rect, avail AvailFunc) SmoothWork {
	if !s.CanApply(r) {
		return SmoothWork{Sten: s.sten.P2Latter2(orig, cur, r, avail)}
	}
	sig := s.pow[1]
	r = r.Flat2D()
	xo := orig.XOff(0)
	nx := s.g.Nx
	var rows [5][]float64
	wk := SmoothWork{}
	for j := r.J0; j < r.J1; j++ {
		//cadyvet:allow AvailFunc implementations are index arithmetic over captured scalars (FullAvail, CommAvoid.availY); callers pass pre-bound func values
		lo, hi := avail(j)
		if j-2 >= lo && j+2 < hi {
			continue
		}
		aHi := lo - j - 1
		if aHi > 2 {
			aHi = 2
		}
		bLo := hi - j
		if bLo < -2 {
			bLo = -2
		}
		for d := -2; d <= aHi; d++ {
			rows[d+2] = orig.Row(j + d)
		}
		for d := bLo; d <= 2; d++ {
			rows[d+2] = orig.Row(j + d)
		}
		buf := s.rowBuf
		for i := r.I0; i < r.I1; i++ {
			o := i + xo
			acc := 0.0
			for d := -2; d <= aHi; d++ {
				acc += s.cy[d+2] * rows[d+2][o]
			}
			for d := bLo; d <= 2; d++ {
				acc += s.cy[d+2] * rows[d+2][o]
			}
			buf[i] = acc
		}
		s.xform(buf, 0, sig)
		dst := cur.Row(j)
		for i := r.I0; i < r.I1; i++ {
			dst[i+xo] += buf[i]
		}
		wk.YPts += nx
		wk.Rows++
	}
	return wk
}

// SmoothFull applies the complete S̃ of in into out over rect r through the
// spectral x path: P1x spectrally on U and V, P1y + spectral P1x on Φ and
// p'_sa. The drop-in counterpart of Smoother.SmoothFull.
//
//cadyvet:allocfree
func (s *SpectralSmoother) SmoothFull(in *state.State, out *state.State, r field.Rect) SmoothWork {
	wk := s.P1Power(in.U, out.U, r, 1)
	wk.Add(s.P1Power(in.V, out.V, r, 1))
	wk.Add(s.P2Former(in.Phi, out.Phi, r, FullAvail))
	wk.Add(s.P2Former2(in.Psa, out.Psa, r, FullAvail))
	return wk
}
