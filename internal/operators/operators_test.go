package operators

import (
	"math"
	"math/rand"
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/field"
	"cadycore/internal/physics"
	"cadycore/internal/state"
	"cadycore/internal/topo"
)

func TestSurfaceUpdate(t *testing.T) {
	g := probeGrid()
	b := serialBlock(g)
	psa := field.NewF2(b)
	psa.Set(3, 4, 500) // p_s = 100500 Pa at one point
	sur := NewSurface(b)
	sur.Update(psa)
	wantPes := 100500.0 - physics.Pt
	if got := sur.Pes.At(3, 4); math.Abs(got-wantPes) > 1e-9 {
		t.Errorf("pes = %v, want %v", got, wantPes)
	}
	if got := sur.P.At(3, 4); math.Abs(got-math.Sqrt(wantPes/physics.P0)) > 1e-12 {
		t.Errorf("P = %v", got)
	}
}

func TestCSumTotalsAndBoundaries(t *testing.T) {
	// PW must vanish at σ = 0 and σ = 1 and DBar must equal Σ Δσ·D(P).
	g := probeGrid()
	b := serialBlock(g)
	st := smoothState(g, b)
	sur := NewSurface(b)
	sur.Update(st.Psa)
	divp := field.NewF3(b)
	DivP(g, st.U, st.V, sur, divp, b.Owned())
	cres := NewCRes(b)
	CSum(g, nil, nil, divp, cres, b.Owned(), 0, g.Nz)

	for j := 0; j < g.Ny; j++ {
		for i := 0; i < g.Nx; i++ {
			want := 0.0
			for k := 0; k < g.Nz; k++ {
				want += g.DSigma[k] * divp.At(i, j, k)
			}
			if got := cres.DBar.At(i, j); math.Abs(got-want) > 1e-15+1e-12*math.Abs(want) {
				t.Fatalf("DBar(%d,%d) = %v, want %v", i, j, got, want)
			}
			if pw := cres.PWI.At(i, j, 0); pw != 0 {
				t.Fatalf("PW at σ=0 is %v, want 0", pw)
			}
			if pw := cres.PWI.At(i, j, g.Nz); math.Abs(pw) > 1e-16+1e-10*math.Abs(want) {
				t.Fatalf("PW at σ=1 is %v, want ≈0", pw)
			}
		}
	}
}

func TestCSumParallelMatchesSerial(t *testing.T) {
	// The z-collective summation must reproduce the serial vertical
	// integral for any p_z.
	g := probeGrid()
	bSer := serialBlock(g)
	stSer := smoothState(g, bSer)
	surSer := NewSurface(bSer)
	surSer.Update(stSer.Psa)
	divpSer := field.NewF3(bSer)
	DivP(g, stSer.U, stSer.V, surSer, divpSer, bSer.Owned())
	serial := NewCRes(bSer)
	CSum(g, nil, nil, divpSer, serial, bSer.Owned(), 0, g.Nz)

	for _, pz := range []int{2, 3} {
		w := comm.NewWorld(pz, comm.Zero())
		w.Run(func(c *comm.Comm) {
			tp := topo.New(c, g, 1, 1, pz, 3, 2, 2)
			st := smoothState(g, tp.Block) // InitFromPhysical fills owned only
			st.FillLocalBounds()
			ex := tp.NewExchanger(0, 0, 2)
			ex.Exchange(st.F3s(), st.F2s())
			st.FillLocalBounds()
			sur := NewSurface(tp.Block)
			sur.Update(st.Psa)
			divp := field.NewF3(tp.Block)
			DivP(g, st.U, st.V, sur, divp, tp.Block.Owned())
			cres := NewCRes(tp.Block)
			CSum(g, tp.ColZ, tp.World, divp, cres, tp.Block.Owned(), tp.Block.K0, tp.Block.K1)
			b := tp.Block
			for j := 0; j < g.Ny; j++ {
				for i := 0; i < g.Nx; i++ {
					if got, want := cres.DBar.At(i, j), serial.DBar.At(i, j); math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
						t.Errorf("pz=%d DBar(%d,%d): got %v want %v", pz, i, j, got, want)
						return
					}
					for k := b.K0; k <= b.K1 && k <= g.Nz; k++ {
						if got, want := cres.PWI.At(i, j, k), serial.PWI.At(i, j, k); math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
							t.Errorf("pz=%d PWI(%d,%d,%d): got %v want %v", pz, i, j, k, got, want)
							return
						}
					}
				}
			}
		})
		if w.Stats().MsgsByCat[comm.CatCollectiveZ] == 0 {
			t.Errorf("pz=%d: CSum performed no z-collective communication", pz)
		}
	}
}

func TestDivPVanishesForRigidZonalFlow(t *testing.T) {
	// A flow with U = const·P along latitude circles and V = 0 has
	// ∂(PU)/∂λ = 0 (P depends on λ only through psa, which we hold
	// uniform), so D(P) must vanish identically.
	g := probeGrid()
	b := serialBlock(g)
	st := state.New(b)
	for k := 0; k < g.Nz; k++ {
		for j := -b.Hy; j < g.Ny+b.Hy; j++ {
			for i := -b.Hx; i < g.Nx+b.Hx; i++ {
				st.U.Set(i, j, k, 7.5)
			}
		}
	}
	sur := NewSurface(b)
	sur.Update(st.Psa) // psa = 0 everywhere: uniform P
	out := field.NewF3(b)
	DivP(g, st.U, st.V, sur, out, b.Owned())
	if m := field.MaxAbsOwned(out); m > 1e-18 {
		t.Errorf("D(P) of rigid zonal flow = %v, want 0", m)
	}
}

func TestSmootherPreservesConstants(t *testing.T) {
	// δ⁴ of a constant is zero: S̃ must be the identity on constants.
	g := probeGrid()
	b := serialBlock(g)
	st := state.New(b)
	for i := range st.Phi.Data {
		st.Phi.Data[i] = 3.25
		st.U.Data[i] = -1.5
	}
	for i := range st.Psa.Data {
		st.Psa.Data[i] = 42
	}
	smo := NewSmoother(g, 1.0)
	out := state.New(b)
	smo.SmoothFull(st, out, b.Owned())
	r := b.Owned()
	for k := r.K0; k < r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			for i := r.I0; i < r.I1; i++ {
				if math.Abs(out.Phi.At(i, j, k)-3.25) > 1e-12 {
					t.Fatalf("P2 not identity on constants: %v", out.Phi.At(i, j, k))
				}
				if math.Abs(out.U.At(i, j, k)-(-1.5)) > 1e-12 {
					t.Fatalf("P1 not identity on constants: %v", out.U.At(i, j, k))
				}
			}
		}
	}
}

func TestSmootherKillsNyquistWave(t *testing.T) {
	// With β = 1, the 2Δx wave is removed completely by P1.
	g := probeGrid()
	b := serialBlock(g)
	u := field.NewF3(b)
	for k := -b.Hz; k < g.Nz+b.Hz; k++ {
		for j := -b.Hy; j < g.Ny+b.Hy; j++ {
			for i := -b.Hx; i < g.Nx+b.Hx; i++ {
				v := 1.0
				if ((i%2)+2)%2 == 1 {
					v = -1
				}
				u.Set(i, j, k, v)
			}
		}
	}
	smo := NewSmoother(g, 1.0)
	out := field.NewF3(b)
	smo.P1Field(u, out, b.Owned())
	if m := field.MaxAbsOwned(out); m > 1e-12 {
		t.Errorf("β=1 P1 left Nyquist amplitude %v", m)
	}
}

func TestSmootherDampsMonotonically(t *testing.T) {
	// Smoothing must not amplify any zonal wave (stability of S̃).
	g := probeGrid()
	b := serialBlock(g)
	smo := NewSmoother(g, 1.0)
	for m := 1; m <= g.Nx/2; m++ {
		u := field.NewF3(b)
		for k := -b.Hz; k < g.Nz+b.Hz; k++ {
			for j := -b.Hy; j < g.Ny+b.Hy; j++ {
				for i := -b.Hx; i < g.Nx+b.Hx; i++ {
					u.Set(i, j, k, math.Sin(2*math.Pi*float64(m*((i+g.Nx)%g.Nx))/float64(g.Nx)))
				}
			}
		}
		before := field.MaxAbsOwned(u)
		out := field.NewF3(b)
		smo.P1Field(u, out, b.Owned())
		after := field.MaxAbsOwned(out)
		if after > before*(1+1e-12) {
			t.Errorf("P1 amplified wave m=%d: %v -> %v", m, before, after)
		}
	}
}

func TestSmoothingLinearity(t *testing.T) {
	// S̃ is linear: S̃(a·x + b·y) = a·S̃(x) + b·S̃(y).
	g := probeGrid()
	b := serialBlock(g)
	rng := rand.New(rand.NewSource(11))
	x := field.NewF3(b)
	y := field.NewF3(b)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
		y.Data[i] = rng.NormFloat64()
	}
	smo := NewSmoother(g, 0.8)
	comb := field.NewF3(b)
	field.Lin2(comb, 2, x, -3, y)
	outComb := field.NewF3(b)
	smo.P2Former(comb, outComb, b.Owned(), FullAvail)
	outX := field.NewF3(b)
	outY := field.NewF3(b)
	smo.P2Former(x, outX, b.Owned(), FullAvail)
	smo.P2Former(y, outY, b.Owned(), FullAvail)
	want := field.NewF3(b)
	field.Lin2(want, 2, outX, -3, outY)
	if d := field.MaxAbsDiffOwned(outComb, want); d > 1e-10 {
		t.Errorf("P2 not linear: %v", d)
	}
}

func TestP2FormerPlusLatterEqualsFull(t *testing.T) {
	// The splitting identity (paper eq. 14) on a single block with an
	// artificial window: S̃2(S̃1(φ)) == S̃(φ) to round-off.
	g := probeGrid()
	b := serialBlock(g)
	rng := rand.New(rand.NewSource(12))
	in := field.NewF3(b)
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	smo := NewSmoother(g, 1.0)

	full := field.NewF3(b)
	smo.P2Former(in, full, b.Owned(), FullAvail)

	window := func(j int) (int, int) { return 4, 7 } // artificial mid-domain split
	split := field.NewF3(b)
	smo.P2Former(in, split, b.Owned(), window)
	smo.P2Latter(in, split, b.Owned(), window)

	if d := field.MaxAbsDiffOwned(full, split); d > 1e-13 {
		t.Errorf("S̃2∘S̃1 differs from S̃ by %v", d)
	}
}

func TestAdaptationGravityWaveCoupling(t *testing.T) {
	// A pure Φ anomaly must accelerate U away from the anomaly with speed
	// coefficient b: the gravity-wave adaptation term (sign and scale
	// check of P_λ⁽¹⁾).
	g := probeGrid()
	b := serialBlock(g)
	st := state.New(b)
	// Φ hump at longitude index 8 on row 5, all levels.
	for k := -b.Hz; k < g.Nz+b.Hz; k++ {
		for j := -b.Hy; j < g.Ny+b.Hy; j++ {
			for i := -b.Hx; i < g.Nx+b.Hx; i++ {
				st.Phi.Set(i, j, k, 10*math.Exp(-0.5*math.Pow(float64(((i+g.Nx)%g.Nx)-8), 2)))
			}
		}
	}
	sur := NewSurface(b)
	sur.Update(st.Psa)
	cres := NewCRes(b) // zero Ĉ: isolate the pressure-gradient terms
	out := NewTendency(b)
	Adaptation(g, DefaultAdaptConfig(), st, sur, cres, out, b.Owned())
	// West of the hump (U point at i=7, between centers 6 and 7, where
	// ∂Φ/∂λ > 0): dU must be negative (flow pushed west, away from the
	// anomaly); east of it positive.
	j, k := 5, 3
	if out.DU.At(7, j, k) >= 0 {
		t.Errorf("dU west of Φ hump = %v, want < 0", out.DU.At(7, j, k))
	}
	if out.DU.At(10, j, k) <= 0 {
		t.Errorf("dU east of Φ hump = %v, want > 0", out.DU.At(10, j, k))
	}
}

func TestAdvectionOfUniformFieldIsConservative(t *testing.T) {
	// Advecting a uniform Φ by a divergence-free-ish flow must produce a
	// small tendency compared to advecting a strongly varying field
	// (consistency: L(const) involves only flow divergence terms).
	g := probeGrid()
	b := serialBlock(g)
	st := smoothState(g, b)
	// Make Φ exactly uniform.
	for i := range st.Phi.Data {
		st.Phi.Data[i] = 5
	}
	sur := NewSurface(b)
	sur.Update(st.Psa)
	_, cres, _ := prepare(g, smoothState(g, b))
	out := NewTendency(b)
	Advection(g, st, sur, cres, out, b.Owned())
	uniform := field.MaxAbsOwned(out.DPhi)

	st2 := smoothState(g, b)
	// Strongly varying Φ.
	for k := -b.Hz; k < g.Nz+b.Hz; k++ {
		for j := -b.Hy; j < g.Ny+b.Hy; j++ {
			for i := -b.Hx; i < g.Nx+b.Hx; i++ {
				st2.Phi.Set(i, j, k, 5*math.Sin(4*2*math.Pi*float64((i+g.Nx)%g.Nx)/float64(g.Nx)))
			}
		}
	}
	out2 := NewTendency(b)
	sur2 := NewSurface(b)
	sur2.Update(st2.Psa)
	Advection(g, st2, sur2, cres, out2, b.Owned())
	varying := field.MaxAbsOwned(out2.DPhi)
	if varying < 3*uniform {
		t.Errorf("advection does not distinguish uniform (%v) from varying (%v) fields", uniform, varying)
	}
}

func TestVTendencyZeroAtPoles(t *testing.T) {
	g := probeGrid()
	b := serialBlock(g)
	st := smoothState(g, b)
	sur, cres, _ := prepare(g, st)
	out := NewTendency(b)
	Adaptation(g, DefaultAdaptConfig(), st, sur, cres, out, b.Owned())
	for k := 0; k < g.Nz; k++ {
		for i := 0; i < g.Nx; i++ {
			if out.DV.At(i, 0, k) != 0 {
				t.Fatalf("adaptation dV at the pole row is %v, want 0", out.DV.At(i, 0, k))
			}
		}
	}
	out2 := NewTendency(b)
	Advection(g, st, sur, cres, out2, b.Owned())
	for k := 0; k < g.Nz; k++ {
		for i := 0; i < g.Nx; i++ {
			if out2.DV.At(i, 0, k) != 0 {
				t.Fatalf("advection dV at the pole row is %v, want 0", out2.DV.At(i, 0, k))
			}
		}
	}
}

func TestTendencyFiniteOnRealisticState(t *testing.T) {
	g := probeGrid()
	b := serialBlock(g)
	st := smoothState(g, b)
	sur, cres, _ := prepare(g, st)
	out := NewTendency(b)
	Adaptation(g, DefaultAdaptConfig(), st, sur, cres, out, b.Owned())
	Advection(g, st, sur, cres, out, b.Owned())
	for _, f := range out.F3s() {
		if !field.AllFiniteOwned(f) {
			t.Fatal("non-finite tendency")
		}
	}
}

func TestCSumDeepHaloRegionMatchesSerial(t *testing.T) {
	// The deep-halo execution evaluates Ĉ on a region extending beyond the
	// owned block (asymmetrically in z). Its values on that extended region
	// must equal the serial evaluation — the property that makes the lagged
	// Ĉ usable in halo areas.
	g := probeGrid()
	bSer := serialBlock(g)
	stSer := smoothState(g, bSer)
	_, serial, _ := prepare(g, stSer)

	const pz = 2
	w := comm.NewWorld(pz, comm.Zero())
	w.Run(func(c *comm.Comm) {
		tp := topo.New(c, g, 1, 1, pz, 3, 2, 2)
		st := smoothState(g, tp.Block)
		st.FillLocalBounds()
		ex := tp.NewExchanger(0, 0, 2)
		ex.Exchange(st.F3s(), st.F2s())
		st.FillLocalBounds()
		sur := NewSurface(tp.Block)
		sur.Update(st.Psa)

		// Extended region: one layer beyond the owned block toward high k.
		b := tp.Block
		r := b.Owned()
		if r.K1 < g.Nz {
			r.K1++
		}
		divp := field.NewF3(tp.Block)
		DivP(g, st.U, st.V, sur, divp, r)
		cres := NewCRes(tp.Block)
		CSum(g, tp.ColZ, tp.World, divp, cres, r, r.K0, r.K1)

		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				for k := r.K0; k <= r.K1; k++ {
					got := cres.PWI.At(i, j, k)
					want := serial.PWI.At(i, j, k)
					if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
						t.Errorf("pz rank %d: PWI(%d,%d,%d) = %v, want %v", c.Rank(), i, j, k, got, want)
						return
					}
				}
			}
		}
	})
}
