package operators

import (
	"math"
	"testing"

	"cadycore/internal/field"
	"cadycore/internal/grid"
	"cadycore/internal/state"
	"cadycore/internal/stencil"
)

// The probe tests verify the central safety property of the deep-halo
// scheme: every implemented kernel's true dependency footprint lies inside
// the bounding box of the paper's declared stencil tables (Tables 1–3). A
// kernel reading outside its declared box would make the halo arithmetic of
// Section 4.3.1 unsound; the probes perturb single input points and check
// where outputs change.

func probeGrid() *grid.Grid { return grid.New(16, 10, 6) }

func serialBlock(g *grid.Grid) field.Block {
	return field.Block{
		Nx: g.Nx, Ny: g.Ny, Nz: g.Nz,
		I0: 0, I1: g.Nx, J0: 0, J1: g.Ny, K0: 0, K1: g.Nz,
		Hx: 4, Hy: 3, Hz: 2,
	}
}

// smoothState builds a gentle, fully asymmetric state.
func smoothState(g *grid.Grid, b field.Block) *state.State {
	st := state.New(b)
	st.InitFromPhysical(g,
		func(lam, th, sig float64) float64 { return 12*math.Sin(th)*math.Sin(th) + math.Sin(2*lam) },
		func(lam, th, sig float64) float64 { return 1.2 * math.Sin(lam) * math.Sin(th) * math.Sin(th) },
		func(lam, th, sig float64) float64 { return 270 - 30*(1-sig) + 3*math.Cos(th) + math.Cos(lam) },
		func(lam, th float64) float64 { return 100000 + 200*math.Sin(lam)*math.Sin(th) },
	)
	st.FillLocalBounds()
	return st
}

// prepare computes surface diagnostics and a Ĉ result for st.
func prepare(g *grid.Grid, st *state.State) (*Surface, *CRes, *field.F3) {
	b := st.B
	sur := NewSurface(b)
	sur.Update(st.Psa)
	divp := field.NewF3(b)
	owned := b.Owned()
	DivP(g, st.U, st.V, sur, divp, owned)
	field.FillVerticalZ(divp)
	cres := NewCRes(b)
	CSum(g, nil, nil, divp, cres, owned, 0, g.Nz)
	cres.PWI.FillXPeriodic()
	cres.DBar.FillXPeriodic()
	field.FillPolesY(cres.PWI, field.Even, field.CenterY)
	field.FillPolesY2(cres.DBar, field.Even)
	return sur, cres, divp
}

// xDist is the periodic distance i→i0 in the shorter direction.
func xDist(g *grid.Grid, i, i0 int) int {
	d := i - i0
	if d > g.Nx/2 {
		d -= g.Nx
	}
	if d < -g.Nx/2 {
		d += g.Nx
	}
	return d
}

// probeOp perturbs component comp of the state at (i0,j0,k0) and returns
// the offsets (relative to the perturbation) of all owned output points
// that changed under apply.
func probeOp(t *testing.T, comp string, i0, j0, k0 int,
	apply func(st *state.State, out *Tendency)) [][3]int {
	t.Helper()
	g := probeGrid()
	b := serialBlock(g)

	run := func(pert bool) *Tendency {
		st := smoothState(g, b)
		if pert {
			switch comp {
			case "U":
				st.U.Add(i0, j0, k0, 1e-3)
			case "V":
				st.V.Add(i0, j0, k0, 1e-3)
			case "Phi":
				st.Phi.Add(i0, j0, k0, 1e-3)
			case "Psa":
				st.Psa.Add(i0, j0, 5.0)
			}
			st.FillLocalBounds()
		}
		out := NewTendency(b)
		apply(st, out)
		return out
	}
	base := run(false)
	pert := run(true)

	var offsets [][3]int
	owned := b.Owned()
	check := func(name string, a, o *field.F3) {
		for k := owned.K0; k < owned.K1; k++ {
			for j := owned.J0; j < owned.J1; j++ {
				for i := owned.I0; i < owned.I1; i++ {
					if a.At(i, j, k) != o.At(i, j, k) {
						offsets = append(offsets, [3]int{xDist(g, i, i0), j - j0, k - k0})
					}
				}
			}
		}
	}
	check("DU", base.DU, pert.DU)
	check("DV", base.DV, pert.DV)
	check("DPhi", base.DPhi, pert.DPhi)
	for j := owned.J0; j < owned.J1; j++ {
		for i := owned.I0; i < owned.I1; i++ {
			if base.DPsa.At(i, j) != pert.DPsa.At(i, j) {
				offsets = append(offsets, [3]int{xDist(g, i, i0), j - j0, 0})
			}
		}
	}
	if len(offsets) == 0 {
		t.Fatalf("perturbing %s at (%d,%d,%d) changed nothing — probe is vacuous", comp, i0, j0, k0)
	}
	return offsets
}

// assertWithin asserts that the output changed only within the declared
// bounding box. Offsets are output−perturbation, so a kernel that READS at
// +d changes the output at −d; the boxes are symmetric in the declared
// radii, which is what halo sizing uses. horizontalOnly skips the z check:
// a perturbation of the 2-D surface pressure legitimately reaches every
// level of its column (it is not halo-relevant in z, where surface fields
// are replicated).
func assertWithin(t *testing.T, offsets [][3]int, table []stencil.Term, what string, horizontalOnly bool) {
	t.Helper()
	r := stencil.RadiusOf(table)
	for _, o := range offsets {
		if abs(o[0]) > r.X || abs(o[1]) > r.Y || (!horizontalOnly && abs(o[2]) > r.Z) {
			t.Errorf("%s: output at offset (%d,%d,%d) outside declared radius (%d,%d,%d)",
				what, o[0], o[1], o[2], r.X, r.Y, r.Z)
			return
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestAdaptationFootprintWithinTable1(t *testing.T) {
	g := probeGrid()
	cfg := DefaultAdaptConfig()
	apply := func(st *state.State, out *Tendency) {
		b := st.B
		sur := NewSurface(b)
		sur.Update(st.Psa)
		// The Ĉ input is held FIXED (computed from the unperturbed state):
		// Â is the stencil part; Ĉ's dependence is the collective, which
		// the paper accounts separately.
		ref := smoothState(g, b)
		_, cres, _ := prepare(g, ref)
		Adaptation(g, cfg, st, sur, cres, out, b.Owned())
	}
	for _, comp := range []string{"U", "V", "Phi", "Psa"} {
		for _, pt := range [][3]int{{8, 5, 3}, {0, 4, 2}, {15, 5, 3}} {
			offs := probeOp(t, comp, pt[0], pt[1], pt[2], apply)
			assertWithin(t, offs, stencil.Adaptation, "Â("+comp+")", comp == "Psa")
		}
	}
}

func TestAdvectionFootprintWithinTable2(t *testing.T) {
	g := probeGrid()
	apply := func(st *state.State, out *Tendency) {
		b := st.B
		sur := NewSurface(b)
		sur.Update(st.Psa)
		ref := smoothState(g, b)
		_, cres, _ := prepare(g, ref) // σ̇ fixed: L̃ uses the last Ĉ result
		Advection(g, st, sur, cres, out, b.Owned())
	}
	for _, comp := range []string{"U", "V", "Phi", "Psa"} {
		for _, pt := range [][3]int{{8, 5, 3}, {1, 4, 2}, {14, 5, 3}} {
			offs := probeOp(t, comp, pt[0], pt[1], pt[2], apply)
			assertWithin(t, offs, stencil.Advection, "L̃("+comp+")", comp == "Psa")
		}
	}
}

func TestDivPFootprintRadiusOne(t *testing.T) {
	// D(P) must have x/y radius 1 and no z coupling: it feeds Ĉ whose
	// horizontal footprint the CA algorithm must bound.
	g := probeGrid()
	b := serialBlock(g)
	run := func(pert bool) *field.F3 {
		st := smoothState(g, b)
		if pert {
			st.U.Add(8, 5, 3, 1e-3)
			st.V.Add(8, 5, 3, 1e-3)
			st.FillLocalBounds()
		}
		sur := NewSurface(b)
		sur.Update(st.Psa)
		out := field.NewF3(b)
		DivP(g, st.U, st.V, sur, out, b.Owned())
		return out
	}
	base, pert := run(false), run(true)
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				if base.At(i, j, k) != pert.At(i, j, k) {
					dx, dy, dz := xDist(g, i, 8), j-5, k-3
					if abs(dx) > 1 || abs(dy) > 1 || dz != 0 {
						t.Fatalf("D(P) changed at offset (%d,%d,%d)", dx, dy, dz)
					}
				}
			}
		}
	}
}

func TestSmoothingFootprintWithinTable3(t *testing.T) {
	g := probeGrid()
	b := serialBlock(g)
	smo := NewSmoother(g, 1.0)
	run := func(pert bool) *state.State {
		st := smoothState(g, b)
		if pert {
			st.Phi.Add(8, 5, 3, 1e-3)
			st.U.Add(8, 5, 3, 1e-3)
			st.FillLocalBounds()
		}
		out := state.New(b)
		smo.SmoothFull(st, out, b.Owned())
		return out
	}
	base, pert := run(false), run(true)
	r := stencil.RadiusOf(stencil.Smoothing)
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				changed := base.Phi.At(i, j, k) != pert.Phi.At(i, j, k) ||
					base.U.At(i, j, k) != pert.U.At(i, j, k)
				if changed {
					dx, dy, dz := xDist(g, i, 8), j-5, k-3
					if abs(dx) > r.X || abs(dy) > r.Y || abs(dz) > r.Z {
						t.Fatalf("S̃ changed at offset (%d,%d,%d) outside radius (%d,%d,%d)",
							dx, dy, dz, r.X, r.Y, r.Z)
					}
				}
			}
		}
	}
}

func TestAdaptationZOneSided(t *testing.T) {
	// Table 1's z column reads k and k+1 only; the asymmetric deep halo of
	// the CA algorithm depends on it. Probe: a perturbation at k0 must not
	// change any output at k > k0 (outputs at k read inputs at k and k+1,
	// so influence flows downward in k only).
	g := probeGrid()
	cfg := DefaultAdaptConfig()
	apply := func(st *state.State, out *Tendency) {
		b := st.B
		sur := NewSurface(b)
		sur.Update(st.Psa)
		ref := smoothState(g, b)
		_, cres, _ := prepare(g, ref)
		Adaptation(g, cfg, st, sur, cres, out, b.Owned())
	}
	for _, comp := range []string{"U", "V", "Phi"} {
		offs := probeOp(t, comp, 8, 5, 3, apply)
		for _, o := range offs {
			if o[2] > 0 {
				t.Fatalf("Â(%s): output changed at k offset +%d — adaptation must be one-sided in z", comp, o[2])
			}
		}
	}
}
