package operators

import (
	"cadycore/internal/field"
	"cadycore/internal/grid"
	"cadycore/internal/physics"
	"cadycore/internal/state"
)

// AdaptConfig carries the switches of the adaptation terms.
type AdaptConfig struct {
	// KappaStar enables the surface-pressure diffusion term κ*·D_sa
	// (paper eq. 2, fourth component); 1 in the standard configuration.
	KappaStar float64
}

// DefaultAdaptConfig returns the standard configuration.
func DefaultAdaptConfig() AdaptConfig { return AdaptConfig{KappaStar: 1} }

// Adaptation evaluates the stencil part Â of the adaptation tendency plus
// the Ĉ-derived contributions (taken from cres, which may be a lagged
// evaluation under the approximate nonlinear iteration):
//
//	dU   = −P_λ⁽¹⁾ − P_λ⁽²⁾ + f*·V                  (at U points)
//	dV   = −P_θ⁽¹⁾ − P_θ⁽²⁾ − f*·U                  (at V points)
//	dΦ   = b·(Ω⁽¹⁾ + Ω_θ⁽²⁾ + Ω_λ⁽²⁾)               (at centers)
//	dp'_sa = κ*·k_sa·∇²p'_sa − p0·D̄                  (2-D)
//
// over rect r (dV additionally skips pole interfaces, where V ≡ 0). Inputs:
// st valid on r expanded by the Table-1 radii, sur recomputed from st.Psa,
// cres from CSum. The z reads are one-sided (k and k+1 only), which is what
// licenses the asymmetric deep halo. Returns points updated.
func Adaptation(g *grid.Grid, cfg AdaptConfig, st *state.State, sur *Surface, cres *CRes, out *Tendency, r field.Rect) int {
	return Adaptation3D(g, st, sur, cres, out, r) + AdaptationPsa(g, cfg, st, cres, out, r)
}

// Adaptation3D evaluates the three 3-D components (dU, dV, dΦ) of the
// adaptation tendency over r. Writes are confined to r and all inputs are
// read-only, so disjoint k sub-rects may run concurrently (the intra-rank
// k-plane tiling of dycore.Config.Workers relies on this). Returns points
// updated (3·|r|).
//
//cadyvet:allocfree
func Adaptation3D(g *grid.Grid, st *state.State, sur *Surface, cres *CRes, out *Tendency, r field.Rect) int {
	m := newMetric(g)
	xo := st.Phi.XOff(0)

	for k := r.K0; k < r.K1; k++ {
		sigMid := g.Sigma[k]
		for j := r.J0; j < r.J1; j++ {
			sC := m.sinC(j)
			cC := m.cosC(j)
			invASinDlam := 1 / (m.a * sC * m.dlam)

			phi0 := st.Phi.Row(j, k)
			phiDn := st.Phi.Row(j, k+1)
			phiN := st.Phi.Row(j-1, k)
			phiNDn := st.Phi.Row(j-1, k+1)
			u0 := st.U.Row(j, k)
			uN := st.U.Row(j-1, k)
			v0 := st.V.Row(j, k)
			vS := st.V.Row(j+1, k)
			pes0 := sur.Pes.Row(j)
			pesN := sur.Pes.Row(j - 1)
			pesS := sur.Pes.Row(j + 1)
			pRow := sur.P.Row(j)
			pRowN := sur.P.Row(j - 1)
			pw0 := cres.PWI.Row(j, k)
			pw1 := cres.PWI.Row(j, k+1)
			dbar := cres.DBar.Row(j)
			dU := out.DU.Row(j, k)
			dPhi := out.DPhi.Row(j, k)

			for i := r.I0; i < r.I1; i++ {
				o := i + xo
				// ---- dU at U point (west face i) ----
				// Φ̃ = vertical k,k+1 average (hydrostatic coupling; the
				// z mirror makes k+1 safe at the bottom).
				phiT0 := 0.5 * (phi0[o-1] + phiDn[o-1])
				phiT1 := 0.5 * (phi0[o] + phiDn[o])
				pl1 := m.b * (phiT1 - phiT0) * invASinDlam

				pesW := 0.5 * (pes0[o-1] + pes0[o])
				phiW := 0.5 * (phi0[o-1] + phi0[o])
				pl2 := m.b * phiW / pesW * (pes0[o] - pes0[o-1]) * invASinDlam

				pW := 0.5 * (pRow[o-1] + pRow[o])
				uPhys := u0[o] / pW
				fstar := 2*physics.Omega*cC + uPhys*cC/(m.a*sC)
				v4 := 0.25 * (v0[o-1] + vS[o-1] + v0[o] + vS[o])

				dU[o] = -pl1 - pl2 + fstar*v4

				// ---- dΦ at center ----
				pC := pRow[o]
				pesC := pes0[o]
				wMid := 0.5 * (pw0[o] + pw1[o]) / pC
				omega1 := wMid/sigMid - dbar[o]/pC

				vC := 0.5 * (v0[o] + vS[o])
				dpesDy := (pesS[o] - pesN[o]) / (2 * m.haDthe)
				omegaT2 := vC / pesC * dpesDy

				uC := 0.5 * (u0[o] + u0[o+1])
				dpesDx := (pes0[o+1] - pes0[o-1]) / (2 * m.a * sC * m.dlam)
				omegaL2 := uC / pesC * dpesDx

				dPhi[o] = m.b * (omega1 + omegaT2 + omegaL2)
			}

			// ---- dV at V point (interface j): interior interfaces only ----
			dV := out.DV.Row(j, k)
			if j >= 1 && j <= g.Ny-1 {
				sI := m.sinI(j)
				cI := g.CosI[j]
				for i := r.I0; i < r.I1; i++ {
					o := i + xo
					phiT0 := 0.5 * (phiN[o] + phiNDn[o])
					phiT1 := 0.5 * (phi0[o] + phiDn[o])
					pt1 := m.b * (phiT1 - phiT0) / m.haDthe

					pesV := 0.5 * (pesN[o] + pes0[o])
					phiV := 0.5 * (phiN[o] + phi0[o])
					pt2 := m.b * phiV / pesV * (pes0[o] - pesN[o]) / m.haDthe

					u4 := 0.25 * (uN[o] + uN[o+1] + u0[o] + u0[o+1])
					pV := 0.5 * (pRowN[o] + pRow[o])
					uPhys := u4 / pV
					fstar := 2*physics.Omega*cI + uPhys*cI/(m.a*sI)

					dV[o] = -pt1 - pt2 - fstar*u4
				}
			} else {
				for i := r.I0; i < r.I1; i++ {
					dV[i+xo] = 0
				}
			}
		}
	}
	return 3 * r.Count()
}

// AdaptationPsa evaluates the 2-D surface-pressure component dp'_sa of the
// adaptation tendency over r.Flat2D(). It must run exactly once per tendency
// evaluation (never per k tile). Returns points updated.
//
//cadyvet:allocfree
func AdaptationPsa(g *grid.Grid, cfg AdaptConfig, st *state.State, cres *CRes, out *Tendency, r field.Rect) int {
	m := newMetric(g)
	xo := st.Psa.XOff(0)
	r2 := r.Flat2D()
	ks := cfg.KappaStar * physics.Ksa
	for j := r2.J0; j < r2.J1; j++ {
		sC := m.sinC(j)
		sI0, sI1 := m.sinI(j), m.sinI(j+1)
		invALam2 := 1 / (m.a * sC * m.dlam * m.a * sC * m.dlam)
		invAThe2 := 1 / (m.a * m.a * sC * m.dthe * m.dthe)
		psa0 := st.Psa.Row(j)
		psaN := st.Psa.Row(j - 1)
		psaS := st.Psa.Row(j + 1)
		dbar := cres.DBar.Row(j)
		dPsa := out.DPsa.Row(j)
		for i := r2.I0; i < r2.I1; i++ {
			o := i + xo
			lap := (psa0[o+1]-2*psa0[o]+psa0[o-1])*invALam2 +
				(sI1*(psaS[o]-psa0[o])-
					sI0*(psa0[o]-psaN[o]))*invAThe2
			dPsa[o] = ks*lap - physics.P0*dbar[o]
		}
	}
	return r2.Count()
}
