package operators

import (
	"cadycore/internal/field"
	"cadycore/internal/grid"
	"cadycore/internal/state"
)

// AdvScratch holds the reusable temporaries of the advection kernel (the
// unstaggered physical velocities and σ̇ at the three staggered positions).
// Allocate once per integrator; passing nil to Advection allocates fresh
// temporaries (convenient in tests, expensive in loops).
type AdvScratch struct {
	uPhys *field.F3 // u at U points
	vPhys *field.F3 // v at V points
	sdotU *field.F3 // σ̇ at U points, interfaces
	sdotC *field.F3 // σ̇ at centers, interfaces
	sdotV *field.F3 // σ̇ at V points, interfaces
}

// NewAdvScratch allocates scratch for a block.
func NewAdvScratch(b field.Block) *AdvScratch {
	return &AdvScratch{
		uPhys: field.NewF3(b),
		vPhys: field.NewF3(b),
		sdotU: field.NewF3(b),
		sdotC: field.NewF3(b),
		sdotV: field.NewF3(b),
	}
}

// Advection evaluates the advection tendency L̃ (paper eq. 3):
//
//	dF = −L1(F) − L2(F) − L3(F),   F ∈ {U, V, Φ},   dp'_sa = 0,
//
// with
//
//	L1(F) = (1/2a sinθ)(2·∂(Fu)/∂λ − F·∂u/∂λ)
//	L2(F) = (1/2a sinθ)(2·∂(F v sinθ)/∂θ − F·∂(v sinθ)/∂θ)
//	L3(F) = ½(2·∂(F σ̇)/∂σ − F·∂σ̇/∂σ)
//
// over rect r. The advecting velocities are u = U/P, v = V/P at their
// staggered positions; σ̇ = PW/P at σ interfaces comes from the last Ĉ
// evaluation (cres), matching the paper's operator flow where L̃ itself
// performs no collective. The zonal fluxes of L1 use fourth-order
// interpolation, which produces the wide x footprints of Table 2. Every
// unstaggering averages the *transformed* field first and divides by the
// local P, keeping the composed y footprint within the Table-2 radius of
// one row. Inputs must be valid on r expanded by the Table-2 radii.
// Returns points updated.
//
// The kernel walks raw x-row slices (field.Row) instead of point accessors;
// the arithmetic per point is identical, expression by expression, to the
// straightforward formulation — the reference implementations in
// ref_test.go pin this bitwise.
//
// Advection (nil scratch) allocates five F3 temporaries per call and exists
// for tests and one-shot evaluations only; every integrator path must go
// through AdvectionScratch with persistent scratch.
func Advection(g *grid.Grid, st *state.State, sur *Surface, cres *CRes, out *Tendency, r field.Rect) int {
	return AdvectionScratch(g, st, sur, cres, out, r, nil)
}

// AdvectionScratch is Advection with caller-provided scratch.
//
//cadyvet:allocfree
func AdvectionScratch(g *grid.Grid, st *state.State, sur *Surface, cres *CRes, out *Tendency, r field.Rect, sc *AdvScratch) int {
	w := Advection3D(g, st, sur, cres, out, r, sc)
	AdvectionPsa(out, r)
	return w
}

// Advection3D evaluates the 3-D components (dU, dV, dΦ) of L̃ over r,
// leaving dp'_sa untouched. The σ̇ staging covers the k interfaces [K0, K1]
// of r inclusively, so concurrent k tiles must each bring their OWN scratch —
// adjacent tiles both write the shared boundary interface (the values agree,
// but the stores race). All other inputs are read-only and the tendency
// writes are disjoint per k. Returns points updated (4·|r|, counting the σ̇
// staging as one component).
//
//cadyvet:allocfree
func Advection3D(g *grid.Grid, st *state.State, sur *Surface, cres *CRes, out *Tendency, r field.Rect, sc *AdvScratch) int {
	m := newMetric(g)
	if sc == nil {
		//cadyvet:allow nil-scratch convenience path for tests and one-off calls; hot callers preallocate AdvScratch
		sc = NewAdvScratch(st.B)
	}

	// Physical velocities at their staggered points, over r grown by one
	// cell in x and y (the widest offset at which the flux loops read
	// them).
	ex := field.Rect{
		I0: r.I0 - 1, I1: r.I1 + 1,
		J0: r.J0 - 1, J1: r.J1 + 1, // u rows J0−1 … J1−1; v rows J0 … J1
		K0: r.K0, K1: r.K1,
	}

	xo := st.U.XOff(0) // all fields share the block, hence the offset
	for k := ex.K0; k < ex.K1; k++ {
		for j := ex.J0; j < ex.J1; j++ {
			pRow := sur.P.Row(j)
			pRowN := sur.P.Row(j - 1)
			uRow := st.U.Row(j, k)
			vRow := st.V.Row(j, k)
			uOut := sc.uPhys.Row(j, k)
			vOut := sc.vPhys.Row(j, k)
			computeV := j > ex.J0
			for i := ex.I0; i < ex.I1; i++ {
				o := i + xo
				pW := 0.5 * (pRow[o-1] + pRow[o])
				uOut[o] = uRow[o] / pW
				if computeV { // v at interface j needs P at row j−1
					pN := 0.5 * (pRowN[o] + pRow[o])
					vOut[o] = vRow[o] / pN
				}
			}
		}
	}
	// σ̇ at the interfaces [K0, K1] of the update rect; read only at (i,j,k)
	// with (i, j) inside r, so PWI is needed on r expanded by one cell.
	for k := r.K0; k <= r.K1; k++ {
		for j := r.J0; j < r.J1; j++ {
			pRow := sur.P.Row(j)
			pRowN := sur.P.Row(j - 1)
			pwRow := cres.PWI.Row(j, k)
			pwRowN := cres.PWI.Row(j-1, k)
			sC := sc.sdotC.Row(j, k)
			sU := sc.sdotU.Row(j, k)
			sV := sc.sdotV.Row(j, k)
			for i := r.I0; i < r.I1; i++ {
				o := i + xo
				pW := 0.5 * (pRow[o-1] + pRow[o])
				pN := 0.5 * (pRowN[o] + pRow[o])
				pC := pRow[o]
				pw := pwRow[o]
				sC[o] = pw / pC
				sU[o] = 0.5 * (pwRow[o-1] + pw) / pW
				sV[o] = 0.5 * (pwRowN[o] + pw) / pN
			}
		}
	}

	dthe := m.dthe
	dlam := m.dlam
	for k := r.K0; k < r.K1; k++ {
		ds := g.DSigma[k]
		for j := r.J0; j < r.J1; j++ {
			sCen := m.sinC(j)
			inv2aS := 1 / (2 * m.a * sCen)
			sI0, sI1 := m.sinI(j), m.sinI(j+1)

			u0 := st.U.Row(j, k)
			uN := st.U.Row(j-1, k)
			uS := st.U.Row(j+1, k)
			uUp := st.U.Row(j, k-1)
			uDn := st.U.Row(j, k+1)
			p0 := st.Phi.Row(j, k)
			pN := st.Phi.Row(j-1, k)
			pS := st.Phi.Row(j+1, k)
			pUp := st.Phi.Row(j, k-1)
			pDn := st.Phi.Row(j, k+1)
			up0 := sc.uPhys.Row(j, k)
			vp0 := sc.vPhys.Row(j, k)
			vpS := sc.vPhys.Row(j+1, k)
			su0 := sc.sdotU.Row(j, k)
			su1 := sc.sdotU.Row(j, k+1)
			sc0 := sc.sdotC.Row(j, k)
			sc1 := sc.sdotC.Row(j, k+1)
			dU := out.DU.Row(j, k)
			dPhi := out.DPhi.Row(j, k)

			for i := r.I0; i < r.I1; i++ {
				o := i + xo
				// ================= F = U (at west face i) =================
				// L1(U): fluxes at cell centers with 4th-order interp of U.
				uc0 := 0.5 * (up0[o-1] + up0[o])
				uc1 := 0.5 * (up0[o] + up0[o+1])
				Uc0 := interp4(u0[o-2], u0[o-1], u0[o], u0[o+1])
				Uc1 := interp4(u0[o-1], u0[o], u0[o+1], u0[o+2])
				dFu := (Uc1*uc1 - Uc0*uc0) / dlam
				dUl := (uc1 - uc0) / dlam
				l1u := inv2aS * (2*dFu - u0[o]*dUl)

				// L2(U): meridional fluxes at interfaces; v at (face i, interface j).
				vf0 := 0.5 * (vp0[o-1] + vp0[o])
				vf1 := 0.5 * (vpS[o-1] + vpS[o])
				Ui0 := 0.5 * (uN[o] + u0[o])
				Ui1 := 0.5 * (u0[o] + uS[o])
				dFv := (Ui1*vf1*sI1 - Ui0*vf0*sI0) / dthe
				dVs := (vf1*sI1 - vf0*sI0) / dthe
				l2u := inv2aS * (2*dFv - u0[o]*dVs)

				// L3(U): vertical flux with σ̇ at U points.
				sd0 := su0[o]
				sd1 := su1[o]
				UI0 := 0.5 * (uUp[o] + u0[o])
				UI1 := 0.5 * (u0[o] + uDn[o])
				dFs := (UI1*sd1 - UI0*sd0) / ds
				dS := (sd1 - sd0) / ds
				l3u := 0.5 * (2*dFs - u0[o]*dS)

				dU[o] = -(l1u + l2u + l3u)

				// ================= F = Φ (at center) =================
				uf0 := up0[o]
				uf1 := up0[o+1]
				Pf0 := interp4(p0[o-2], p0[o-1], p0[o], p0[o+1])
				Pf1 := interp4(p0[o-1], p0[o], p0[o+1], p0[o+2])
				dFuP := (Pf1*uf1 - Pf0*uf0) / dlam
				dUP := (uf1 - uf0) / dlam
				l1p := inv2aS * (2*dFuP - p0[o]*dUP)

				vI0 := vp0[o]
				vI1 := vpS[o]
				Pi0 := 0.5 * (pN[o] + p0[o])
				Pi1 := 0.5 * (p0[o] + pS[o])
				dFvP := (Pi1*vI1*sI1 - Pi0*vI0*sI0) / dthe
				dVsP := (vI1*sI1 - vI0*sI0) / dthe
				l2p := inv2aS * (2*dFvP - p0[o]*dVsP)

				sc0v := sc0[o]
				sc1v := sc1[o]
				PI0 := 0.5 * (pUp[o] + p0[o])
				PI1 := 0.5 * (p0[o] + pDn[o])
				dFsP := (PI1*sc1v - PI0*sc0v) / ds
				dSP := (sc1v - sc0v) / ds
				l3p := 0.5 * (2*dFsP - p0[o]*dSP)

				dPhi[o] = -(l1p + l2p + l3p)
			}

			// ================= F = V (at interface j) =================
			dV := out.DV.Row(j, k)
			if j >= 1 && j <= g.Ny-1 {
				sIj := m.sinI(j)
				inv2aSI := 1 / (2 * m.a * sIj)
				sCn := m.sinC(j - 1) // center north of the interface
				sCs := m.sinC(j)     // center south of the interface
				v0 := st.V.Row(j, k)
				vN := st.V.Row(j-1, k)
				vS := st.V.Row(j+1, k)
				vUp := st.V.Row(j, k-1)
				vDn := st.V.Row(j, k+1)
				upN := sc.uPhys.Row(j-1, k)
				sv0 := sc.sdotV.Row(j, k)
				sv1 := sc.sdotV.Row(j, k+1)
				surPN := sur.P.Row(j - 1)
				surP0 := sur.P.Row(j)
				for i := r.I0; i < r.I1; i++ {
					o := i + xo
					// L1(V): u at (face i, interface j).
					ufI0 := 0.5 * (upN[o] + up0[o])
					ufI1 := 0.5 * (upN[o+1] + up0[o+1])
					Vf0 := interp4(v0[o-2], v0[o-1], v0[o], v0[o+1])
					Vf1 := interp4(v0[o-1], v0[o], v0[o+1], v0[o+2])
					dFuV := (Vf1*ufI1 - Vf0*ufI0) / dlam
					dUV := (ufI1 - ufI0) / dlam
					l1v := inv2aSI * (2*dFuV - v0[o]*dUV)

					// L2(V): fluxes at centers; v at centers j−1 and j is the
					// center-unstaggered V divided by the center P (keeps
					// the composed footprint at one row).
					VcN := 0.5 * (vN[o] + v0[o])
					VcS := 0.5 * (v0[o] + vS[o])
					vcN := VcN / surPN[o]
					vcS := VcS / surP0[o]
					dFvV := (VcS*vcS*sCs - VcN*vcN*sCn) / dthe
					dVsV := (vcS*sCs - vcN*sCn) / dthe
					l2v := inv2aSI * (2*dFvV - v0[o]*dVsV)

					// L3(V): σ̇ at V points.
					sv0v := sv0[o]
					sv1v := sv1[o]
					VI0 := 0.5 * (vUp[o] + v0[o])
					VI1 := 0.5 * (v0[o] + vDn[o])
					dFsV := (VI1*sv1v - VI0*sv0v) / ds
					dSV := (sv1v - sv0v) / ds
					l3v := 0.5 * (2*dFsV - v0[o]*dSV)

					dV[o] = -(l1v + l2v + l3v)
				}
			} else {
				for i := r.I0; i < r.I1; i++ {
					dV[i+xo] = 0
				}
			}
		}
	}

	return 4 * r.Count()
}

// AdvectionPsa writes the trivial surface-pressure component of L̃ (zero)
// over r.Flat2D(). Like AdaptationPsa it runs once per tendency evaluation,
// outside any k tiling.
//
//cadyvet:allocfree
func AdvectionPsa(out *Tendency, r field.Rect) {
	r2 := r.Flat2D()
	for j := r2.J0; j < r2.J1; j++ {
		base := out.DPsa.Index(r2.I0, j)
		for o := 0; o < r2.I1-r2.I0; o++ {
			out.DPsa.Data[base+o] = 0
		}
	}
}

// interp4 is the fourth-order midpoint interpolation
// (−f0 + 7f1 + 7f2 − f3)/12 between f1 and f2.
func interp4(f0, f1, f2, f3 float64) float64 {
	return (-f0 + 7*(f1+f2) - f3) / 12
}
