package server

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// metrics holds the service counters exported at GET /metrics in the
// Prometheus text exposition format (plain counters and gauges; no external
// client library, matching the module's no-dependency rule).
type metrics struct {
	submitted   atomic.Int64
	rejected    atomic.Int64
	resumed     atomic.Int64
	completed   atomic.Int64
	failed      atomic.Int64
	cancelled   atomic.Int64
	interrupted atomic.Int64
	steps       atomic.Int64
	snapshots   atomic.Int64
	busy        atomic.Int64

	// fault-injection / recovery / durability counters
	rankFailures  atomic.Int64
	restarts      atomic.Int64
	persistErrors atomic.Int64
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	states := map[JState]int{}
	for _, j := range s.List() {
		j.mu.Lock()
		states[j.state]++
		j.mu.Unlock()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }

	p("# HELP cady_queue_depth Jobs waiting in the admission queue.")
	p("# TYPE cady_queue_depth gauge")
	p("cady_queue_depth %d", len(s.queue))
	p("# HELP cady_queue_capacity Admission queue bound.")
	p("# TYPE cady_queue_capacity gauge")
	p("cady_queue_capacity %d", cap(s.queue))
	p("# HELP cady_workers Size of the worker pool.")
	p("# TYPE cady_workers gauge")
	p("cady_workers %d", s.cfg.Workers)
	p("# HELP cady_workers_busy Workers currently executing a job.")
	p("# TYPE cady_workers_busy gauge")
	p("cady_workers_busy %d", s.met.busy.Load())

	p("# HELP cady_jobs Current jobs by state.")
	p("# TYPE cady_jobs gauge")
	for _, st := range []JState{JQueued, JRunning, JRetrying, JCompleted, JCancelled, JInterrupted, JFailed} {
		p("cady_jobs{state=%q} %d", string(st), states[st])
	}

	p("# HELP cady_jobs_submitted_total Jobs admitted since start.")
	p("# TYPE cady_jobs_submitted_total counter")
	p("cady_jobs_submitted_total %d", s.met.submitted.Load())
	p("# HELP cady_jobs_rejected_total Submissions rejected by admission control.")
	p("# TYPE cady_jobs_rejected_total counter")
	p("cady_jobs_rejected_total %d", s.met.rejected.Load())
	p("# HELP cady_jobs_resumed_total Resume requests re-enqueued.")
	p("# TYPE cady_jobs_resumed_total counter")
	p("cady_jobs_resumed_total %d", s.met.resumed.Load())
	p("# HELP cady_jobs_completed_total Jobs that ran all requested steps.")
	p("# TYPE cady_jobs_completed_total counter")
	p("cady_jobs_completed_total %d", s.met.completed.Load())
	p("# HELP cady_jobs_failed_total Jobs that panicked or exceeded a deadline.")
	p("# TYPE cady_jobs_failed_total counter")
	p("cady_jobs_failed_total %d", s.met.failed.Load())
	p("# HELP cady_jobs_cancelled_total Jobs stopped by user request.")
	p("# TYPE cady_jobs_cancelled_total counter")
	p("cady_jobs_cancelled_total %d", s.met.cancelled.Load())
	p("# HELP cady_jobs_interrupted_total Jobs stopped by a server drain.")
	p("# TYPE cady_jobs_interrupted_total counter")
	p("cady_jobs_interrupted_total %d", s.met.interrupted.Load())

	p("# HELP cady_rank_failures_total Injected rank deaths that aborted a run segment.")
	p("# TYPE cady_rank_failures_total counter")
	p("cady_rank_failures_total %d", s.met.rankFailures.Load())
	p("# HELP cady_job_restarts_total Automatic restarts scheduled after a rank death.")
	p("# TYPE cady_job_restarts_total counter")
	p("cady_job_restarts_total %d", s.met.restarts.Load())
	p("# HELP cady_persist_errors_total Durable writes (spec, meta, checkpoint) that failed.")
	p("# TYPE cady_persist_errors_total counter")
	p("cady_persist_errors_total %d", s.met.persistErrors.Load())

	p("# HELP cady_steps_total Dynamical-core steps completed across all jobs.")
	p("# TYPE cady_steps_total counter")
	p("cady_steps_total %d", s.met.steps.Load())
	p("# HELP cady_checkpoints_total Snapshots taken across all jobs.")
	p("# TYPE cady_checkpoints_total counter")
	p("cady_checkpoints_total %d", s.met.snapshots.Load())
	p("# HELP cady_uptime_seconds Seconds since the service started.")
	p("# TYPE cady_uptime_seconds gauge")
	p("cady_uptime_seconds %.3f", time.Since(s.start).Seconds())
}
