package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cadycore/internal/dycore"
)

// metrics holds the service counters exported at GET /metrics in the
// Prometheus text exposition format (plain counters and gauges; no external
// client library, matching the module's no-dependency rule).
type metrics struct {
	submitted   atomic.Int64
	rejected    atomic.Int64
	resumed     atomic.Int64
	completed   atomic.Int64
	failed      atomic.Int64
	cancelled   atomic.Int64
	interrupted atomic.Int64
	steps       atomic.Int64
	snapshots   atomic.Int64
	busy        atomic.Int64

	// fault-injection / recovery / durability counters
	rankFailures  atomic.Int64
	restarts      atomic.Int64
	persistErrors atomic.Int64

	// shared-artifact-store traffic (fleet dual-writes and migrations)
	sharedPuts    atomic.Int64
	sharedResumes atomic.Int64

	// live load-rebalancing: imbalance detections that reached the
	// re-planner, executed migrations, and rejected re-plans.
	rebalanceDecisions  atomic.Int64
	rebalanceMigrations atomic.Int64
	rebalanceSkipped    atomic.Int64

	// communication-overlap accounting, accumulated from every run
	// segment's critical-path statistics (guarded by exchMu).
	exchMu     sync.Mutex
	exposedSec float64                //cadyvet:guardedby exchMu
	hiddenSec  float64                //cadyvet:guardedby exchMu
	exch       map[string]*exchTotals //cadyvet:guardedby exchMu
	// rankComp accumulates per-rank simulated compute seconds over run
	// segments (index = world rank; grows to the widest world seen);
	// lastImbalance is the latest segment's max/min compute ratio.
	rankComp      []float64 //cadyvet:guardedby exchMu
	lastImbalance float64   //cadyvet:guardedby exchMu
}

// exchTotals accumulates one exchanger label's overlap accounting across
// run segments.
type exchTotals struct {
	begins, finishes      int64
	hiddenSec, exposedSec float64
}

// observeRun folds one run segment's overlap statistics into the service
// totals: world-level hidden/exposed seconds plus the per-exchanger split.
func (m *metrics) observeRun(res dycore.RunResult) {
	m.exchMu.Lock()
	defer m.exchMu.Unlock()
	m.exposedSec += res.Agg.TotalCommTime()
	m.hiddenSec += res.Agg.TotalHiddenTime()
	if m.exch == nil {
		m.exch = make(map[string]*exchTotals)
	}
	for _, ex := range res.Exch {
		t := m.exch[ex.Label]
		if t == nil {
			t = &exchTotals{}
			m.exch[ex.Label] = t
		}
		t.begins += ex.Begins
		t.finishes += ex.Finishes
		t.hiddenSec += ex.HiddenSec
		t.exposedSec += ex.ExposedSec
	}
	for len(m.rankComp) < len(res.Agg.RankComp) {
		m.rankComp = append(m.rankComp, 0)
	}
	for r, v := range res.Agg.RankComp {
		m.rankComp[r] += v
	}
	if imb := res.Agg.CompImbalance(); imb > 0 {
		m.lastImbalance = imb
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	states := map[JState]int{}
	for _, j := range s.List() {
		j.mu.Lock()
		states[j.state]++
		j.mu.Unlock()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }

	p("# HELP cady_queue_depth Jobs waiting in the admission queue.")
	p("# TYPE cady_queue_depth gauge")
	p("cady_queue_depth %d", len(s.queue))
	p("# HELP cady_queue_capacity Admission queue bound.")
	p("# TYPE cady_queue_capacity gauge")
	p("cady_queue_capacity %d", cap(s.queue))
	p("# HELP cady_workers Size of the worker pool.")
	p("# TYPE cady_workers gauge")
	p("cady_workers %d", s.cfg.Workers)
	p("# HELP cady_workers_busy Workers currently executing a job.")
	p("# TYPE cady_workers_busy gauge")
	p("cady_workers_busy %d", s.met.busy.Load())

	p("# HELP cady_jobs Current jobs by state.")
	p("# TYPE cady_jobs gauge")
	for _, st := range []JState{JQueued, JRunning, JRetrying, JCompleted, JCancelled, JInterrupted, JFailed} {
		p("cady_jobs{state=%q} %d", string(st), states[st])
	}

	p("# HELP cady_jobs_submitted_total Jobs admitted since start.")
	p("# TYPE cady_jobs_submitted_total counter")
	p("cady_jobs_submitted_total %d", s.met.submitted.Load())
	p("# HELP cady_jobs_rejected_total Submissions rejected by admission control.")
	p("# TYPE cady_jobs_rejected_total counter")
	p("cady_jobs_rejected_total %d", s.met.rejected.Load())
	p("# HELP cady_jobs_resumed_total Resume requests re-enqueued.")
	p("# TYPE cady_jobs_resumed_total counter")
	p("cady_jobs_resumed_total %d", s.met.resumed.Load())
	p("# HELP cady_jobs_completed_total Jobs that ran all requested steps.")
	p("# TYPE cady_jobs_completed_total counter")
	p("cady_jobs_completed_total %d", s.met.completed.Load())
	p("# HELP cady_jobs_failed_total Jobs that panicked or exceeded a deadline.")
	p("# TYPE cady_jobs_failed_total counter")
	p("cady_jobs_failed_total %d", s.met.failed.Load())
	p("# HELP cady_jobs_cancelled_total Jobs stopped by user request.")
	p("# TYPE cady_jobs_cancelled_total counter")
	p("cady_jobs_cancelled_total %d", s.met.cancelled.Load())
	p("# HELP cady_jobs_interrupted_total Jobs stopped by a server drain.")
	p("# TYPE cady_jobs_interrupted_total counter")
	p("cady_jobs_interrupted_total %d", s.met.interrupted.Load())

	p("# HELP cady_rank_failures_total Injected rank deaths that aborted a run segment.")
	p("# TYPE cady_rank_failures_total counter")
	p("cady_rank_failures_total %d", s.met.rankFailures.Load())
	p("# HELP cady_job_restarts_total Automatic restarts scheduled after a rank death.")
	p("# TYPE cady_job_restarts_total counter")
	p("cady_job_restarts_total %d", s.met.restarts.Load())
	p("# HELP cady_persist_errors_total Durable writes (spec, meta, checkpoint) that failed.")
	p("# TYPE cady_persist_errors_total counter")
	p("cady_persist_errors_total %d", s.met.persistErrors.Load())
	p("# HELP cady_shared_snapshots_total Checkpoints dual-written to the shared artifact store.")
	p("# TYPE cady_shared_snapshots_total counter")
	p("cady_shared_snapshots_total %d", s.met.sharedPuts.Load())
	p("# HELP cady_shared_resumes_total Job segments resumed from a shared-store checkpoint written by another backend.")
	p("# TYPE cady_shared_resumes_total counter")
	p("cady_shared_resumes_total %d", s.met.sharedResumes.Load())

	p("# HELP cady_rebalance_decisions_total Sustained-imbalance detections that reached the re-planner.")
	p("# TYPE cady_rebalance_decisions_total counter")
	p("cady_rebalance_decisions_total %d", s.met.rebalanceDecisions.Load())
	p("# HELP cady_rebalance_migrations_total In-flight layout migrations executed by the load-rebalancing runtime.")
	p("# TYPE cady_rebalance_migrations_total counter")
	p("cady_rebalance_migrations_total %d", s.met.rebalanceMigrations.Load())
	p("# HELP cady_rebalance_skipped_total Re-plans rejected (no better layout, gain under the migration-cost gate, or budget exhausted).")
	p("# TYPE cady_rebalance_skipped_total counter")
	p("cady_rebalance_skipped_total %d", s.met.rebalanceSkipped.Load())

	p("# HELP cady_plan_info Current layout of each planned job (auto layout or live-rebalanced), value always 1.")
	p("# TYPE cady_plan_info gauge")
	for _, j := range s.List() {
		if pl := j.getPlan(); pl != nil {
			p("cady_plan_info{job=%q,plan=%q} 1", j.ID, pl.Candidate().Key())
		}
	}

	s.met.exchMu.Lock()
	p("# HELP cady_comm_exposed_seconds_total Simulated communication seconds on the critical path, summed over run segments.")
	p("# TYPE cady_comm_exposed_seconds_total counter")
	p("cady_comm_exposed_seconds_total %g", s.met.exposedSec)
	p("# HELP cady_comm_hidden_seconds_total Simulated communication seconds hidden behind interior compute, summed over run segments.")
	p("# TYPE cady_comm_hidden_seconds_total counter")
	p("cady_comm_hidden_seconds_total %g", s.met.hiddenSec)
	p("# HELP cady_comm_overlap_fraction Hidden share of all simulated communication time.")
	p("# TYPE cady_comm_overlap_fraction gauge")
	if tot := s.met.exposedSec + s.met.hiddenSec; tot > 0 {
		p("cady_comm_overlap_fraction %g", s.met.hiddenSec/tot)
	} else {
		p("cady_comm_overlap_fraction 0")
	}
	labels := make([]string, 0, len(s.met.exch))
	//cadyvet:unordered key collection only; the emission loop below iterates the sorted slice
	for l := range s.met.exch {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	p("# HELP cady_exchanger_begins_total Halo-exchange Begin calls by exchanger.")
	p("# TYPE cady_exchanger_begins_total counter")
	for _, l := range labels {
		p("cady_exchanger_begins_total{exchanger=%q} %d", l, s.met.exch[l].begins)
	}
	p("# HELP cady_exchanger_finishes_total Halo-exchange Finish calls by exchanger.")
	p("# TYPE cady_exchanger_finishes_total counter")
	for _, l := range labels {
		p("cady_exchanger_finishes_total{exchanger=%q} %d", l, s.met.exch[l].finishes)
	}
	p("# HELP cady_exchanger_hidden_seconds_total Simulated seconds of exchange flight hidden behind compute, by exchanger.")
	p("# TYPE cady_exchanger_hidden_seconds_total counter")
	for _, l := range labels {
		p("cady_exchanger_hidden_seconds_total{exchanger=%q} %g", l, s.met.exch[l].hiddenSec)
	}
	p("# HELP cady_exchanger_exposed_seconds_total Simulated seconds of exchange time charged to rank clocks, by exchanger.")
	p("# TYPE cady_exchanger_exposed_seconds_total counter")
	for _, l := range labels {
		p("cady_exchanger_exposed_seconds_total{exchanger=%q} %g", l, s.met.exch[l].exposedSec)
	}
	p("# HELP cady_rank_comp_seconds_total Simulated compute seconds by world rank, summed over run segments.")
	p("# TYPE cady_rank_comp_seconds_total counter")
	for r, v := range s.met.rankComp {
		p("cady_rank_comp_seconds_total{rank=\"%d\"} %g", r, v)
	}
	p("# HELP cady_comp_imbalance Latest run segment's max/min per-rank compute ratio (0 = no telemetry yet).")
	p("# TYPE cady_comp_imbalance gauge")
	p("cady_comp_imbalance %g", s.met.lastImbalance)
	s.met.exchMu.Unlock()

	p("# HELP cady_steps_total Dynamical-core steps completed across all jobs.")
	p("# TYPE cady_steps_total counter")
	p("cady_steps_total %d", s.met.steps.Load())
	p("# HELP cady_checkpoints_total Snapshots taken across all jobs.")
	p("# TYPE cady_checkpoints_total counter")
	p("cady_checkpoints_total %d", s.met.snapshots.Load())
	p("# HELP cady_uptime_seconds Seconds since the service started.")
	p("# TYPE cady_uptime_seconds gauge")
	p("cady_uptime_seconds %.3f", time.Since(s.start).Seconds())
}
