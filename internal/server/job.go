// Package server is the simulation job service: an HTTP/JSON control plane
// that queues dynamical-core runs and harness sweeps, executes them on a
// worker pool over the goroutine-rank comm runtime, checkpoints them
// periodically through internal/checkpoint, and exposes progress, comm
// statistics, physical diagnostics and Prometheus-style metrics. It turns
// the paper's evaluation — a matrix of (algorithm, process count) cells —
// into schedulable, cancellable, resumable jobs.
//
//cadyvet:persistence job specs, progress metadata and checkpoints under Config.Dir are the restart source of truth; durable writes route through checkpoint's blessed helpers
package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cadycore/internal/balance"
	"cadycore/internal/checkpoint"
	"cadycore/internal/comm"
	"cadycore/internal/diag"
	"cadycore/internal/dycore"
	"cadycore/internal/fault"
	"cadycore/internal/grid"
	"cadycore/internal/state"
	"cadycore/internal/tune"
)

// JobSpec is the submitted description of one job. The zero value of every
// field means "default"; Normalize fills defaults and validates.
type JobSpec struct {
	// Kind selects the workload: "run" (default) is one dynamical-core
	// configuration; "figures" reproduces the paper's figure sweep
	// (internal/harness) over Ps.
	Kind string `json:"kind,omitempty"`
	// Alg is the integrator for run jobs: ca, yz, xy or 3d. Must be empty
	// for auto-layout jobs (the planner chooses it).
	Alg string `json:"alg,omitempty"`

	// Layout selects how the process grid is chosen: "" or "explicit" uses
	// Alg/PA/PB/PC as given; "auto" defers to the autotuner (internal/tune)
	// at execution time — the planner picks the scheme, factorization,
	// worker count and y-row partition for Procs ranks, and the chosen plan
	// is surfaced in the job status.
	Layout string `json:"layout,omitempty"`
	// Procs is the rank budget of an auto-layout job (default 4).
	Procs int `json:"procs,omitempty"`

	Nx int `json:"nx,omitempty"`
	Ny int `json:"ny,omitempty"`
	Nz int `json:"nz,omitempty"`

	// PA and PB are the process-grid extents ((p_y, p_z) for ca/yz, (p_x,
	// p_y) for xy); PC is the third extent of 3d runs.
	PA int `json:"pa,omitempty"`
	PB int `json:"pb,omitempty"`
	PC int `json:"pc,omitempty"`

	M int `json:"m,omitempty"`
	// StageM is the staged-exchange halo depth for ca runs: 0 (default)
	// sizes the deep halo for all M iterations; 0 < stage_m < M sizes it
	// for stage_m iterations and refreshes it with overlapped exchanges.
	StageM int `json:"stage_m,omitempty"`
	// SpectralSmooth turns on the composed-symbol spectral smoothing fast
	// path (Config.SpectralSmooth) for run jobs. It needs full zonal circles
	// per rank, so alg "xy" rejects it; with layout "auto" the planner owns
	// the switch and the field must be left unset.
	SpectralSmooth bool    `json:"spectral_smooth,omitempty"`
	Steps          int     `json:"steps,omitempty"`
	Dt1            float64 `json:"dt1,omitempty"`
	Dt2            float64 `json:"dt2,omitempty"`

	// HeldSuarez applies the Held–Suarez forcing between steps (default
	// true, like cmd/dycore).
	HeldSuarez *bool `json:"held_suarez,omitempty"`

	// CheckpointEvery > 0 snapshots the run every that many steps (the
	// durability cadence); a stopped run is checkpointed at its stop
	// boundary regardless.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`

	// DeadlineSec > 0 bounds the wall-clock run time of one execution
	// segment; an exceeded deadline interrupts the job at a step boundary
	// (resumable).
	DeadlineSec float64 `json:"deadline_sec,omitempty"`

	// MaxRestarts, when set, overrides the server's restart policy for this
	// job: the number of automatic restarts granted after an injected rank
	// death (0 disables automatic restart for the job).
	MaxRestarts *int `json:"max_restarts,omitempty"`

	// Ps is the process-count axis of figures jobs.
	Ps []int `json:"ps,omitempty"`

	// Tenant attributes the job to a tenant for fleet quota accounting and
	// per-tenant metrics. Free-form but restricted to [a-zA-Z0-9._-]; empty
	// means the anonymous tenant. Set from the X-Tenant header by the
	// coordinator, passed through to backends.
	Tenant string `json:"tenant,omitempty"`

	// SharedKey keys this job's checkpoints in the shared artifact store
	// (Config.Shared): every snapshot is dual-written there, and a fresh
	// execution with no local checkpoint resumes from the newest shared one.
	// The fleet coordinator sets it to the fleet job ID so a job migrated
	// off a dead backend resumes on another. Run jobs only.
	SharedKey string `json:"shared_key,omitempty"`

	// Rebalance, when non-nil, turns on the live load-rebalancing runtime for
	// this job (internal/balance): per-rank compute telemetry is watched at
	// every step boundary, and a sustained imbalance triggers an in-flight
	// migration to a re-planned layout. Requires layout "auto" — rebalancing
	// reasons in the planner's candidate space, and an explicitly pinned
	// layout is a promise the runtime must not silently break. The zero
	// policy {} uses the documented defaults.
	Rebalance *balance.Policy `json:"rebalance,omitempty"`

	// PerturbAmp > 0 applies a deterministic multiplicative perturbation of
	// relative amplitude PerturbAmp to the initial U, V and Φ fields, seeded
	// by PerturbSeed — the ensemble-member mechanism. The noise at a grid
	// point depends only on (seed, global index, component), so any process
	// layout produces the same global initial state; Psa is untouched so the
	// surface-pressure and dry-mass diagnostics stay those of the base state.
	PerturbAmp  float64 `json:"perturb_amp,omitempty"`
	PerturbSeed int64   `json:"perturb_seed,omitempty"`
}

// service guardrails: a submitted spec may not exceed these.
const (
	maxRanks     = 1024
	maxMeshCells = 1 << 24
	maxSteps     = 1_000_000
)

// Normalize fills defaults in place and validates the spec.
func (sp *JobSpec) Normalize() error {
	switch sp.Kind {
	case "":
		sp.Kind = "run"
	case "run", "figures":
	default:
		return fmt.Errorf("unknown kind %q (want run or figures)", sp.Kind)
	}
	if sp.Nx == 0 {
		sp.Nx = 48
	}
	if sp.Ny == 0 {
		sp.Ny = 24
	}
	if sp.Nz == 0 {
		sp.Nz = 8
	}
	if sp.M == 0 {
		sp.M = 3
	}
	if sp.Steps == 0 {
		sp.Steps = 4
	}
	if sp.Dt1 == 0 {
		sp.Dt1 = 30
	}
	if sp.Dt2 == 0 {
		sp.Dt2 = 180
	}
	if sp.Nx <= 0 || sp.Ny <= 0 || sp.Nz <= 0 {
		return fmt.Errorf("mesh extents must be positive, got %dx%dx%d", sp.Nx, sp.Ny, sp.Nz)
	}
	if sp.Nx*sp.Ny*sp.Nz > maxMeshCells {
		return fmt.Errorf("mesh %dx%dx%d exceeds the service cap of %d cells", sp.Nx, sp.Ny, sp.Nz, maxMeshCells)
	}
	if sp.M < 1 || sp.M > 10 {
		return fmt.Errorf("m = %d outside [1, 10]", sp.M)
	}
	if sp.StageM < 0 || sp.StageM > sp.M {
		return fmt.Errorf("stage_m = %d outside [0, m=%d]", sp.StageM, sp.M)
	}
	if sp.StageM != 0 && sp.Kind == "run" && sp.Alg != "" && sp.Alg != "ca" {
		return fmt.Errorf("stage_m is only meaningful for alg \"ca\" (got %q)", sp.Alg)
	}
	if sp.SpectralSmooth && sp.Alg == "xy" {
		return fmt.Errorf("spectral_smooth needs full zonal circles per rank; alg \"xy\" distributes x")
	}
	if sp.Steps < 1 || sp.Steps > maxSteps {
		return fmt.Errorf("steps = %d outside [1, %d]", sp.Steps, maxSteps)
	}
	if sp.CheckpointEvery < 0 {
		return fmt.Errorf("checkpoint_every = %d must be >= 0", sp.CheckpointEvery)
	}
	if sp.DeadlineSec < 0 {
		return fmt.Errorf("deadline_sec = %g must be >= 0", sp.DeadlineSec)
	}
	if sp.MaxRestarts != nil && *sp.MaxRestarts < 0 {
		return fmt.Errorf("max_restarts = %d must be >= 0", *sp.MaxRestarts)
	}
	if err := validLabel("tenant", sp.Tenant, 64); err != nil {
		return err
	}
	if err := validLabel("shared_key", sp.SharedKey, 128); err != nil {
		return err
	}
	if sp.PerturbAmp < 0 || sp.PerturbAmp > 0.1 {
		return fmt.Errorf("perturb_amp = %g outside [0, 0.1]", sp.PerturbAmp)
	}
	if sp.Kind != "run" && (sp.SharedKey != "" || sp.PerturbAmp != 0 || sp.PerturbSeed != 0 || sp.SpectralSmooth) {
		return fmt.Errorf("shared_key/perturb_*/spectral_smooth are only meaningful for run jobs")
	}
	if sp.Rebalance != nil {
		if err := sp.Rebalance.Validate(); err != nil {
			return fmt.Errorf("rebalance: %w", err)
		}
	}
	if sp.Kind == "figures" {
		if sp.Rebalance != nil {
			return fmt.Errorf("rebalance is only meaningful for run jobs")
		}
		if sp.MaxRestarts != nil {
			return fmt.Errorf("max_restarts is only meaningful for run jobs (sweeps are not checkpointable)")
		}
		if sp.Layout != "" && sp.Layout != "explicit" {
			return fmt.Errorf("layout %q is only meaningful for run jobs", sp.Layout)
		}
		if sp.Procs != 0 {
			return fmt.Errorf("procs is only meaningful for run jobs with layout \"auto\"")
		}
		if len(sp.Ps) == 0 {
			sp.Ps = []int{4, 8}
		}
		for _, p := range sp.Ps {
			if p < 1 || p > maxRanks {
				return fmt.Errorf("ps entry %d outside [1, %d]", p, maxRanks)
			}
		}
		return nil
	}
	// Run jobs: layout selection.
	switch sp.Layout {
	case "", "explicit":
		sp.Layout = "explicit"
	case "auto":
		// The process grid is planned at execution time; the submit-time
		// gate checks only what planning cannot change. The planned spec is
		// re-validated through Normalize before the run starts.
		if sp.Alg != "" {
			return fmt.Errorf("layout \"auto\" plans the algorithm; leave alg empty (got %q)", sp.Alg)
		}
		if sp.PA != 0 || sp.PB != 0 || sp.PC != 0 {
			return fmt.Errorf("layout \"auto\" plans the process grid; leave pa/pb/pc empty")
		}
		if sp.StageM != 0 {
			return fmt.Errorf("layout \"auto\" plans the stage depth; leave stage_m empty")
		}
		if sp.SpectralSmooth {
			return fmt.Errorf("layout \"auto\" plans the smoothing path; leave spectral_smooth unset")
		}
		if sp.Procs == 0 {
			sp.Procs = 4
		}
		if sp.Procs < 1 || sp.Procs > maxRanks {
			return fmt.Errorf("procs = %d outside [1, %d]", sp.Procs, maxRanks)
		}
		return nil
	default:
		return fmt.Errorf("unknown layout %q (want explicit or auto)", sp.Layout)
	}
	if sp.Procs != 0 {
		return fmt.Errorf("procs is only meaningful with layout \"auto\"")
	}
	if sp.Rebalance != nil {
		return fmt.Errorf("rebalance requires layout \"auto\" (an explicit layout is pinned)")
	}
	// Explicit layout: algorithm and process grid.
	if sp.Alg == "" {
		sp.Alg = "ca"
	}
	if sp.PA == 0 {
		sp.PA = 2
	}
	if sp.PB == 0 {
		sp.PB = 2
	}
	if sp.PA < 1 || sp.PB < 1 {
		return fmt.Errorf("process grid %dx%d must be positive", sp.PA, sp.PB)
	}
	ranks := sp.PA * sp.PB
	switch sp.Alg {
	case "ca", "yz":
		if sp.PC != 0 {
			return fmt.Errorf("pc is only meaningful for -alg 3d")
		}
		if sp.PA > sp.Ny/2 || sp.PB > sp.Nz/2 {
			return fmt.Errorf("process grid %dx%d infeasible for mesh %dx%dx%d (need p_y <= ny/2, p_z <= nz/2)",
				sp.PA, sp.PB, sp.Nx, sp.Ny, sp.Nz)
		}
	case "xy":
		if sp.PC != 0 {
			return fmt.Errorf("pc is only meaningful for -alg 3d")
		}
		if sp.PA > sp.Nx/2 || sp.PB > sp.Ny/2 {
			return fmt.Errorf("process grid %dx%d infeasible for mesh %dx%dx%d (need p_x <= nx/2, p_y <= ny/2)",
				sp.PA, sp.PB, sp.Nx, sp.Ny, sp.Nz)
		}
	case "3d":
		if sp.PC == 0 {
			sp.PC = 1
		}
		if sp.PC < 1 {
			return fmt.Errorf("pc = %d must be positive", sp.PC)
		}
		ranks *= sp.PC
		if sp.PA > sp.Nx/2 || sp.PB > sp.Ny/2 || sp.PC > sp.Nz/2 {
			return fmt.Errorf("process grid %dx%dx%d infeasible for mesh %dx%dx%d",
				sp.PA, sp.PB, sp.PC, sp.Nx, sp.Ny, sp.Nz)
		}
	default:
		return fmt.Errorf("unknown alg %q (want ca, yz, xy or 3d)", sp.Alg)
	}
	if ranks > maxRanks {
		return fmt.Errorf("%d ranks exceeds the service cap of %d", ranks, maxRanks)
	}
	return nil
}

// validLabel validates the fleet identity fields: filename- and
// metrics-label-safe, bounded length, empty allowed.
func validLabel(field, v string, maxLen int) error {
	if len(v) > maxLen {
		return fmt.Errorf("%s %q exceeds %d chars", field, v, maxLen)
	}
	for _, c := range v {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("%s %q has invalid char %q (want [a-zA-Z0-9._-])", field, v, c)
		}
	}
	return nil
}

// config translates the numeric parameters of a spec into a dycore Config.
func (sp JobSpec) config() dycore.Config {
	cfg := dycore.DefaultConfig()
	cfg.M = sp.M
	cfg.StageM = sp.StageM
	cfg.SpectralSmooth = sp.SpectralSmooth
	cfg.Dt1, cfg.Dt2 = sp.Dt1, sp.Dt2
	return cfg
}

// autoLayout reports whether the job's process grid is planner-chosen.
func (sp JobSpec) autoLayout() bool { return sp.Layout == "auto" }

// setup translates a normalized explicit run spec into a dycore Setup.
func (sp JobSpec) setup() dycore.Setup {
	cfg := sp.config()
	var a dycore.Algorithm
	switch sp.Alg {
	case "ca":
		a = dycore.AlgCommAvoid
	case "yz":
		a = dycore.AlgBaselineYZ
	case "xy":
		a = dycore.AlgBaselineXY
	case "3d":
		a = dycore.AlgBaseline3D
	}
	return dycore.Setup{Alg: a, PA: sp.PA, PB: sp.PB, PC: sp.PC, Cfg: cfg}
}

func (sp JobSpec) heldSuarez() bool { return sp.HeldSuarez == nil || *sp.HeldSuarez }

// JState is a job's lifecycle state.
type JState string

const (
	// JQueued: admitted and waiting for a worker.
	JQueued JState = "queued"
	// JRunning: executing on a worker.
	JRunning JState = "running"
	// JCompleted: ran all requested steps.
	JCompleted JState = "completed"
	// JCancelled: stopped at a step boundary by user request (resumable).
	JCancelled JState = "cancelled"
	// JInterrupted: stopped at a step boundary by a server drain
	// (resumable).
	JInterrupted JState = "interrupted"
	// JFailed: panicked, exceeded its deadline or was otherwise aborted;
	// resumable when a checkpoint exists.
	JFailed JState = "failed"
	// JRetrying: a rank died (fault injection) and the server is waiting out
	// the restart backoff before re-enqueueing the job from its latest
	// checkpoint. Not terminal: the job still belongs to the restart policy
	// (cancel stops the pending restart).
	JRetrying JState = "retrying"
)

// terminal reports whether no worker currently owns or will own the job.
func (st JState) terminal() bool {
	switch st {
	case JCompleted, JCancelled, JInterrupted, JFailed:
		return true
	}
	return false
}

// Terminal is the exported form of terminal for API clients (the fleet
// coordinator classifies backend job states with it).
func (st JState) Terminal() bool { return st.terminal() }

// Job is one tracked job. All mutable fields are guarded by mu; the
// identity fields (ID, Spec) are immutable after creation.
type Job struct {
	ID   string
	Spec JobSpec

	mu    sync.Mutex
	state JState //cadyvet:guardedby mu
	// stepsDone counts cumulative completed steps over all segments;
	// ckptStep is the boundary of the latest snapshot (0 = none).
	stepsDone int                //cadyvet:guardedby mu
	ckptStep  int                //cadyvet:guardedby mu
	snap      *checkpoint.Global //cadyvet:guardedby mu
	resumable bool               //cadyvet:guardedby mu
	errMsg    string             //cadyvet:guardedby mu

	// cancel is set while running.
	cancel          context.CancelFunc //cadyvet:guardedby mu
	cancelRequested bool               //cadyvet:guardedby mu

	submitted time.Time //cadyvet:guardedby mu
	started   time.Time //cadyvet:guardedby mu
	finished  time.Time //cadyvet:guardedby mu
	attempts  int       //cadyvet:guardedby mu
	// restarts counts automatic restarts consumed (fault recovery);
	// retryTimer is the pending backoff timer while JRetrying.
	restarts   int         //cadyvet:guardedby mu
	retryTimer *time.Timer //cadyvet:guardedby mu

	// persistErr surfaces the latest persistence failure in the job status
	// (durable writes are no longer fire-and-forget); cleared by the next
	// successful write.
	persistErr string //cadyvet:guardedby mu

	agg     comm.Aggregate     //cadyvet:guardedby mu
	count   dycore.Counters    //cadyvet:guardedby mu
	diags   map[string]float64 //cadyvet:guardedby mu
	figures []string           //cadyvet:guardedby mu

	// plan is the autotuner's decision for auto-layout jobs (set when the
	// first execution segment plans, reused by resumes). A live rebalance
	// replaces it with the migrated layout so resumes restart there.
	plan *tune.Plan //cadyvet:guardedby mu
	// migrations is the live-rebalancing migration log.
	migrations []balance.Migration //cadyvet:guardedby mu
	// chaos is the job's fault injector, built lazily from the server's
	// chaos plan so crash budgets span automatic restarts.
	chaos *fault.Injector //cadyvet:guardedby mu
}

// ensureChaos returns the job's fault injector, building it from plan on
// first use. One injector per job: a crash entry consumed before a restart
// stays consumed, so the restarted segment sails past the step it died at.
func (j *Job) ensureChaos(plan *fault.Plan) *fault.Injector {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.chaos == nil {
		j.chaos = fault.New(*plan)
	}
	return j.chaos
}

// JobStatus is the JSON view of a job returned by GET /jobs/{id}.
type JobStatus struct {
	ID        string  `json:"id"`
	Kind      string  `json:"kind"`
	State     JState  `json:"state"`
	StepsDone int     `json:"steps_done"`
	StepsWant int     `json:"steps_total"`
	Progress  float64 `json:"progress"`
	Resumable bool    `json:"resumable"`
	CkptStep  int     `json:"checkpoint_step,omitempty"`
	Attempts  int     `json:"attempts"`
	Restarts  int     `json:"restarts,omitempty"`
	Error     string  `json:"error,omitempty"`
	// PersistError is the latest failed durable write, if any (the job keeps
	// running on its in-memory checkpoint, but a process crash would lose it).
	PersistError string `json:"persist_error,omitempty"`

	SubmittedAt string  `json:"submitted_at"`
	StartedAt   string  `json:"started_at,omitempty"`
	FinishedAt  string  `json:"finished_at,omitempty"`
	WallSec     float64 `json:"wall_sec,omitempty"`

	Comm        *CommStats         `json:"comm,omitempty"`
	Counters    *dycore.Counters   `json:"counters,omitempty"`
	Diagnostics map[string]float64 `json:"diagnostics,omitempty"`
	Figures     []string           `json:"figures,omitempty"`

	// Plan is the autotuner's chosen layout for auto-layout jobs (the
	// current layout after any live rebalancing).
	Plan *tune.Plan `json:"plan,omitempty"`
	// Migrations is the live-rebalancing migration log of the job.
	Migrations []balance.Migration `json:"migrations,omitempty"`

	Spec JobSpec `json:"spec"`
}

// CommStats is the JSON view of the aggregated communication statistics.
type CommStats struct {
	MsgsSent       int64   `json:"msgs_sent"`
	BytesSent      int64   `json:"bytes_sent"`
	Collectives    int64   `json:"collectives"`
	SimTimeS       float64 `json:"sim_time_s"`
	CompTimeS      float64 `json:"comp_time_s"`
	StencilTimeS   float64 `json:"stencil_time_s"`
	CollectiveTime float64 `json:"collective_time_s"`
}

// Status snapshots the job under its lock.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:           j.ID,
		Kind:         j.Spec.Kind,
		State:        j.state,
		StepsDone:    j.stepsDone,
		StepsWant:    j.Spec.Steps,
		Resumable:    j.resumable,
		CkptStep:     j.ckptStep,
		Attempts:     j.attempts,
		Restarts:     j.restarts,
		Error:        j.errMsg,
		PersistError: j.persistErr,
		SubmittedAt:  j.submitted.UTC().Format(time.RFC3339Nano),
		Spec:         j.Spec,
	}
	if j.Spec.Steps > 0 {
		st.Progress = float64(j.stepsDone) / float64(j.Spec.Steps)
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
		st.WallSec = j.finished.Sub(j.started).Seconds()
	}
	if j.agg.Ranks > 0 {
		st.Comm = &CommStats{
			MsgsSent:       j.agg.MsgsSent,
			BytesSent:      j.agg.BytesSent,
			Collectives:    j.agg.Collectives,
			SimTimeS:       j.agg.SimTime,
			CompTimeS:      j.agg.CompTimeMax,
			StencilTimeS:   j.agg.StencilTime(),
			CollectiveTime: j.agg.CollectiveTime(),
		}
		c := j.count
		st.Counters = &c
	}
	if len(j.diags) > 0 {
		st.Diagnostics = make(map[string]float64, len(j.diags))
		for k, v := range j.diags {
			st.Diagnostics[k] = v
		}
	}
	st.Figures = j.figures
	if j.plan != nil {
		p := *j.plan
		st.Plan = &p
	}
	if len(j.migrations) > 0 {
		st.Migrations = make([]balance.Migration, len(j.migrations))
		copy(st.Migrations, j.migrations)
	}
	return st
}

// setPlan records the autotuner's decision.
func (j *Job) setPlan(p tune.Plan) {
	j.mu.Lock()
	j.plan = &p
	j.mu.Unlock()
}

// getPlan returns the recorded plan, if any.
func (j *Job) getPlan() *tune.Plan {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.plan
}

// setSnapshot records the latest checkpoint (called from the quiesced
// Snapshot barrier callback).
func (j *Job) setSnapshot(step int, gl *checkpoint.Global) {
	j.mu.Lock()
	j.ckptStep = step
	j.snap = gl
	j.mu.Unlock()
}

// latestSnapshot returns the newest checkpoint and its boundary.
func (j *Job) latestSnapshot() (*checkpoint.Global, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snap, j.ckptStep
}

func mergeCounters(a, b dycore.Counters) dycore.Counters {
	return dycore.Counters{
		Steps:          a.Steps + b.Steps,
		HaloExchanges:  a.HaloExchanges + b.HaloExchanges,
		CEvaluations:   a.CEvaluations + b.CEvaluations,
		FilterCalls:    a.FilterCalls + b.FilterCalls,
		SmoothingCalls: a.SmoothingCalls + b.SmoothingCalls,
	}
}

// diagnostics computes the physical health summary of a finished run.
func diagnostics(g *grid.Grid, finals []*state.State) map[string]float64 {
	finite := 0.0
	if diag.AllFinite(finals) {
		finite = 1
	}
	return map[string]float64{
		"all_finite":                finite,
		"mean_surface_pressure_hpa": diag.MeanSurfacePressure(g, finals) / 100,
		"global_dry_mass_kg":        diag.GlobalDryMass(g, finals),
		"max_wind_ms":               diag.MaxWind(g, finals),
		"kinetic_energy":            diag.KineticEnergy(g, finals),
		"available_energy":          diag.AvailableEnergy(g, finals),
	}
}
