package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cadycore/internal/tune"
)

func autoSpec(steps int) JobSpec {
	return JobSpec{
		Layout: "auto", Procs: 4,
		Nx: 32, Ny: 16, Nz: 4, M: 2, Steps: steps,
	}
}

func TestAutoLayoutJobRunsAndSurfacesPlan(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{Workers: 1, QueueCap: 8, Dir: dir})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp := postJSON(t, ts, "/jobs", autoSpec(2))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	st := decodeStatus(t, resp)
	final := waitState(t, s, st.ID, JCompleted)

	if final.Plan == nil {
		t.Fatal("completed auto job has no plan in its status")
	}
	p := final.Plan
	if got := p.PA * p.PB; got != 4 {
		t.Errorf("planned grid %dx%d uses %d ranks, want 4", p.PA, p.PB, got)
	}
	if p.Scheme != tune.SchemeCA && p.Scheme != tune.SchemeYZ && p.Scheme != tune.SchemeXY {
		t.Errorf("unknown planned scheme %q", p.Scheme)
	}
	if p.ProfileHash == "" || p.PredictedStep <= 0 {
		t.Errorf("plan missing evidence: %+v", p)
	}
	if final.StepsDone != 2 {
		t.Errorf("steps done = %d, want 2", final.StepsDone)
	}

	// The plan must also reach the status endpoint as JSON and the
	// persisted metadata (so resumes reuse the decomposition).
	hresp, err := http.Get(ts.URL + "/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	hst := decodeStatus(t, hresp)
	if hst.Plan == nil || hst.Plan.Scheme != p.Scheme {
		t.Errorf("HTTP status lost the plan: %+v", hst.Plan)
	}
	metaB, err := os.ReadFile(filepath.Join(dir, st.ID, "meta.json"))
	if err != nil {
		t.Fatalf("reading persisted meta: %v", err)
	}
	var meta struct {
		Plan *tune.Plan `json:"plan"`
	}
	if err := json.Unmarshal(metaB, &meta); err != nil || meta.Plan == nil {
		t.Errorf("persisted meta has no plan: %s", metaB)
	}
}

func TestAutoLayoutSpecValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	for name, spec := range map[string]JobSpec{
		"auto with alg":         {Layout: "auto", Alg: "ca"},
		"auto with grid":        {Layout: "auto", PA: 2, PB: 2},
		"unknown layout":        {Layout: "dynamic"},
		"procs without auto":    {Alg: "yz", PA: 2, PB: 2, Procs: 4},
		"procs beyond the cap":  {Layout: "auto", Procs: 4096},
		"auto on a figures job": {Kind: "figures", Layout: "auto"},
	} {
		resp := postJSON(t, ts, "/jobs", spec)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestAutoLayoutInfeasibleBudgetFailsAfterPlanning(t *testing.T) {
	// 97 is prime and exceeds every per-axis cap of the default mesh, so no
	// factorization is feasible: submission is accepted (the budget alone
	// is not invalid) but planning must fail the job with a clear error.
	s := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	spec := JobSpec{Layout: "auto", Procs: 97, Steps: 1}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final := waitState(t, s, j.ID, JFailed)
	if !strings.Contains(final.Error, "autotune") {
		t.Errorf("error %q does not mention autotuning", final.Error)
	}
	if final.Resumable {
		t.Error("an unplannable job must not be resumable")
	}
}
