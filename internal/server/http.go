package server

import (
	"encoding/json"
	"errors"
	"net/http"
)

func (s *Server) routes() {
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("POST /jobs/{id}/resume", s.handleResume)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	// Marshal before touching the ResponseWriter: the old Encoder form wrote
	// the status header first and ignored Encode's error, so a failing value
	// produced a 2xx with a torn body. Now an encoding failure becomes a
	// clean 500. (The Write error is unchecked deliberately: at that point
	// the client hung up and there is no one left to tell.)
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"internal: response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

type errorBody struct {
	Error string `json:"error"`
}

// submitError maps a Submit/Resume error to its HTTP status, setting
// Retry-After on backpressure responses so closed-loop clients know the
// rejection is transient.
func submitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid JSON: " + err.Error()})
		return
	}
	j, err := s.Submit(spec)
	if err != nil {
		submitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.List()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Get(id); !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	if err := s.Cancel(id); err != nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		return
	}
	j, _ := s.Get(id)
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Get(id); !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	j, err := s.Resume(id)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
			submitError(w, err)
		default:
			writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.Write([]byte("ok\n"))
}
