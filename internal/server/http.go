package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

func (s *Server) routes() {
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("POST /jobs/{id}/resume", s.handleResume)
	s.mux.HandleFunc("POST /drain", s.handleDrain)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	// Marshal before touching the ResponseWriter: the old Encoder form wrote
	// the status header first and ignored Encode's error, so a failing value
	// produced a 2xx with a torn body. Now an encoding failure becomes a
	// clean 500. (The Write error is unchecked deliberately: at that point
	// the client hung up and there is no one left to tell.)
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"internal: response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

type errorBody struct {
	Error string `json:"error"`
}

// submitError maps a Submit/Resume error to its HTTP status, setting
// Retry-After on backpressure responses so closed-loop clients know the
// rejection is transient.
func submitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid JSON: " + err.Error()})
		return
	}
	// The tenant rides either in the spec or in the X-Tenant header (the
	// fleet convention); the header wins only when the spec leaves it empty.
	if h := r.Header.Get("X-Tenant"); h != "" && spec.Tenant == "" {
		spec.Tenant = h
	}
	j, err := s.Submit(spec)
	if err != nil {
		submitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

// handleList serves GET /jobs with optional ?status= filter and
// ?offset=/?limit= pagination (limit 0 = everything after offset). The
// response keeps jobs addressable without the submitter's ID — and gives the
// fleet coordinator its reconciliation primitive: page through a backend's
// jobs and match them by shared_key.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var filter JState
	if v := q.Get("status"); v != "" {
		switch JState(v) {
		case JQueued, JRunning, JRetrying, JCompleted, JCancelled, JInterrupted, JFailed:
			filter = JState(v)
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "unknown status " + strconv.Quote(v)})
			return
		}
	}
	offset, err := queryInt(q.Get("offset"), 0)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad offset: " + err.Error()})
		return
	}
	limit, err := queryInt(q.Get("limit"), 0)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad limit: " + err.Error()})
		return
	}

	all := make([]JobStatus, 0, 16)
	for _, j := range s.List() {
		st := j.Status()
		if filter == "" || st.State == filter {
			all = append(all, st)
		}
	}
	total := len(all)
	if offset > total {
		offset = total
	}
	page := all[offset:]
	if limit > 0 && limit < len(page) {
		page = page[:limit]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs":   page,
		"total":  total,
		"offset": offset,
		"count":  len(page),
	})
}

// queryInt parses a non-negative integer query parameter.
func queryInt(v string, def int) (int, error) {
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("%d must be >= 0", n)
	}
	return n, nil
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Get(id); !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	if err := s.Cancel(id); err != nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		return
	}
	j, _ := s.Get(id)
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Get(id); !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	j, err := s.Resume(id)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
			submitError(w, err)
		default:
			writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

// handleDrain starts an asynchronous graceful shutdown — the coordinator's
// drain hook for taking a backend out of rotation: running jobs stop at
// their next checkpointed step boundary, /healthz flips to 503 immediately,
// and migrated jobs resume elsewhere from the shared store.
//
//cadyvet:component
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	already := s.Draining()
	if !already {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
			defer cancel()
			s.Shutdown(ctx)
		}()
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"draining": true, "already_draining": already})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.Write([]byte("ok\n"))
}
