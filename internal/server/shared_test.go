package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cadycore/internal/checkpoint"
	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
)

// TestSharedStoreResumeAcrossServers is the migration substrate in
// miniature: a job checkpointing into the shared store is interrupted on one
// server, and a *different* server process (fresh state directory, same
// store) resumes it through the shared snapshot to a bitwise-identical
// final state.
func TestSharedStoreResumeAcrossServers(t *testing.T) {
	storeDir := t.TempDir()
	storeA, err := checkpoint.NewDirStore(storeDir)
	if err != nil {
		t.Fatalf("NewDirStore: %v", err)
	}
	a := newTestServer(t, Config{Workers: 1, QueueCap: 4, Shared: storeA})
	tsA := httptest.NewServer(a)
	defer tsA.Close()

	spec := smallSpec(150)
	spec.CheckpointEvery = 1
	spec.SharedKey = "mig-001"
	resp := postJSON(t, tsA, "/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	st := decodeStatus(t, resp)

	// Let it checkpoint a few steps, then tear server A down mid-run.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, step, err := storeA.Latest("mig-001"); err == nil && step >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no shared checkpoint appeared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancelShutdown(t, a)
	tsA.Close()
	if j, ok := a.Get(st.ID); ok {
		if s := j.Status(); s.State == JCompleted {
			t.Skip("job completed before the interrupt; machine too fast for this window")
		}
	}

	// Server B: fresh process, no local snapshots, same shared store.
	storeB, err := checkpoint.NewDirStore(storeDir)
	if err != nil {
		t.Fatalf("NewDirStore B: %v", err)
	}
	b := newTestServer(t, Config{Workers: 1, QueueCap: 4, Shared: storeB})
	tsB := httptest.NewServer(b)
	defer tsB.Close()
	resp = postJSON(t, tsB, "/jobs", spec)
	st2 := decodeStatus(t, resp)
	final := waitState(t, b, st2.ID, JCompleted)
	if final.StepsDone != spec.Steps {
		t.Fatalf("resumed job steps_done = %d, want %d", final.StepsDone, spec.Steps)
	}

	// It must actually have resumed (not recomputed from step 0) ...
	mresp, err := http.Get(tsB.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !containsLine(string(mb), "cady_shared_resumes_total 1") {
		t.Fatal("server B did not count a shared-store resume")
	}

	// ... and the final state is bitwise what an uninterrupted run gives.
	gl, step, err := storeB.Latest("mig-001")
	if err != nil || step != spec.Steps {
		t.Fatalf("final shared snapshot: step %d err %v", step, err)
	}
	if !gl.Equal(refFinal(spec)) {
		t.Fatal("cross-server resumed final differs from uninterrupted run")
	}
}

func cancelShutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s.Shutdown(ctx)
}

func containsLine(text, line string) bool {
	for len(text) > 0 {
		i := 0
		for i < len(text) && text[i] != '\n' {
			i++
		}
		if text[:i] == line {
			return true
		}
		if i == len(text) {
			break
		}
		text = text[i+1:]
	}
	return false
}

// TestListPaginationAndFilter covers GET /jobs ?status= / ?offset= /
// ?limit= and the paged response envelope.
func TestListPaginationAndFilter(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueCap: 16})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var ids []string
	for i := 0; i < 5; i++ {
		resp := postJSON(t, ts, "/jobs", smallSpec(1))
		ids = append(ids, decodeStatus(t, resp).ID)
	}
	for _, id := range ids {
		waitState(t, s, id, JCompleted)
	}

	type page struct {
		Jobs   []JobStatus `json:"jobs"`
		Total  int         `json:"total"`
		Offset int         `json:"offset"`
		Count  int         `json:"count"`
	}
	get := func(q string) page {
		resp, err := http.Get(ts.URL + "/jobs" + q)
		if err != nil {
			t.Fatalf("GET /jobs%s: %v", q, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs%s: %d", q, resp.StatusCode)
		}
		var pg page
		if err := json.NewDecoder(resp.Body).Decode(&pg); err != nil {
			t.Fatalf("decode page: %v", err)
		}
		return pg
	}

	all := get("")
	if all.Total != 5 || all.Count != 5 || len(all.Jobs) != 5 {
		t.Fatalf("unfiltered list: total %d count %d len %d", all.Total, all.Count, len(all.Jobs))
	}
	pg := get("?offset=1&limit=2")
	if pg.Total != 5 || pg.Offset != 1 || pg.Count != 2 {
		t.Fatalf("page: %+v", pg)
	}
	if pg.Jobs[0].ID != all.Jobs[1].ID || pg.Jobs[1].ID != all.Jobs[2].ID {
		t.Fatal("page window does not match the unpaged order")
	}
	if pg := get("?offset=99"); pg.Count != 0 || pg.Total != 5 {
		t.Fatalf("past-the-end page: %+v", pg)
	}
	if pg := get("?status=completed"); pg.Total != 5 {
		t.Fatalf("status=completed total %d, want 5", pg.Total)
	}
	if pg := get("?status=failed"); pg.Total != 0 {
		t.Fatalf("status=failed total %d, want 0", pg.Total)
	}
	resp, err := http.Get(ts.URL + "/jobs?status=bogus")
	if err != nil {
		t.Fatalf("GET bogus status: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status=bogus: %d, want 400", resp.StatusCode)
	}
}

// TestPerturbInitLayoutIndependent: the ensemble perturbation is a function
// of global coordinates only, so every decomposition of the same (seed, amp)
// yields the bitwise-identical global state, polar V rows stay exactly zero,
// and different seeds genuinely differ.
func TestPerturbInitLayoutIndependent(t *testing.T) {
	const nx, ny, nz = 48, 24, 8
	run := func(pa, pb int, seed int64, amp float64) *checkpoint.Global {
		g := grid.New(nx, ny, nz)
		cfg := dycore.DefaultConfig()
		set := dycore.Setup{Alg: dycore.AlgBaselineYZ, PA: pa, PB: pb, Cfg: cfg}
		init := perturbInit(heldsuarez.InitialState, seed, amp)
		// 0 steps: the gathered finals ARE the perturbed initial state, so
		// the comparison isolates the perturbation from the dynamics.
		res := dycore.RunWithHook(set, g, comm.TianheLike(), init, 0, nil)
		return checkpoint.Gather(g, res.Finals)
	}
	a := run(2, 2, 42, 1e-4)
	b := run(1, 4, 42, 1e-4)
	c := run(4, 1, 42, 1e-4)
	if !a.Equal(b) || !a.Equal(c) {
		t.Fatal("perturbed state depends on the process decomposition")
	}
	if d := run(2, 2, 43, 1e-4); a.Equal(d) {
		t.Fatal("different seeds produced identical perturbations")
	}
	// Polar V rows are exactly zero in the base state; multiplicative noise
	// must preserve that invariant bitwise.
	for k := 0; k < nz; k++ {
		for i := 0; i < nx; i++ {
			if v := a.V[(k*ny+0)*nx+i]; v != 0 {
				t.Fatalf("south-pole V[%d,%d] = %g after perturbation", i, k, v)
			}
			if v := a.V[(k*ny+ny-1)*nx+i]; v != 0 {
				t.Fatalf("north-pole V[%d,%d] = %g after perturbation", i, k, v)
			}
		}
	}
}

// TestSpecSharedKeyValidation: shared-store keys and tenants are validated
// at admission.
func TestSpecSharedKeyValidation(t *testing.T) {
	bad := []JobSpec{
		func() JobSpec { s := smallSpec(1); s.SharedKey = "has/slash"; return s }(),
		func() JobSpec { s := smallSpec(1); s.Tenant = "white space"; return s }(),
		func() JobSpec { s := smallSpec(1); s.PerturbAmp = 0.5; return s }(),
		func() JobSpec { s := smallSpec(1); s.Kind = "bench"; s.SharedKey = "k"; return s }(),
	}
	for i := range bad {
		if err := bad[i].Normalize(); err == nil {
			t.Fatalf("case %d: invalid spec accepted: %+v", i, bad[i])
		}
	}
	ok := smallSpec(1)
	ok.SharedKey = "fleet.job-001"
	ok.Tenant = "acme_corp"
	ok.PerturbAmp = 1e-4
	ok.PerturbSeed = 9
	if err := ok.Normalize(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

var _ = fmt.Sprintf // placate imports if assertions change
