package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cadycore/internal/checkpoint"
	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/state"
	"cadycore/internal/testutil"
)

// smallSpec is a fast baseline-YZ run job (baseline restarts are
// bitwise-exact, which the resume tests rely on).
func smallSpec(steps int) JobSpec {
	return JobSpec{
		Alg: "yz", Nx: 48, Ny: 24, Nz: 8,
		PA: 2, PB: 2, M: 2, Steps: steps,
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	// Leak check first: cleanups run in reverse order, so the Shutdown
	// below finishes before the goroutine snapshot is compared.
	testutil.VerifyNoLeaks(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	return resp
}

func decodeStatus(t *testing.T, resp *http.Response) JobStatus {
	t.Helper()
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st
}

func waitState(t *testing.T, s *Server, id string, want JState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		st := j.Status()
		if st.State == want {
			return st
		}
		if st.State.terminal() {
			t.Fatalf("job %s reached %s (err %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for job %s to reach %s", id, want)
	return JobStatus{}
}

// refFinal runs the same configuration uninterrupted through dycore and
// returns the gathered final snapshot.
func refFinal(spec JobSpec) *checkpoint.Global {
	if err := spec.Normalize(); err != nil {
		panic(err)
	}
	g := grid.New(spec.Nx, spec.Ny, spec.Nz)
	set := spec.setup()
	hs := heldsuarez.Standard()
	hook := func(g *grid.Grid, st *state.State, step int) { hs.Apply(g, st, spec.Dt2) }
	res := dycore.RunWithHook(set, g, comm.TianheLike(), heldsuarez.InitialState, spec.Steps, hook)
	return checkpoint.Gather(g, res.Finals)
}

func TestSubmitRunsToCompletion(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueCap: 8})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp := postJSON(t, ts, "/jobs", smallSpec(2))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	st := decodeStatus(t, resp)
	if st.ID == "" || st.State != JQueued && st.State != JRunning {
		t.Fatalf("unexpected submit response: %+v", st)
	}

	final := waitState(t, s, st.ID, JCompleted)
	if final.StepsDone != 2 || final.Progress != 1 {
		t.Fatalf("completed job has steps_done %d progress %g", final.StepsDone, final.Progress)
	}
	if final.Comm == nil || final.Comm.MsgsSent == 0 {
		t.Fatalf("completed job missing comm stats: %+v", final.Comm)
	}
	if final.Counters == nil || final.Counters.HaloExchanges == 0 {
		t.Fatalf("completed job missing counters: %+v", final.Counters)
	}
	if final.Diagnostics["all_finite"] != 1 {
		t.Fatalf("diagnostics = %v, want all_finite 1", final.Diagnostics)
	}
	if p := final.Diagnostics["mean_surface_pressure_hpa"]; p < 900 || p > 1100 {
		t.Fatalf("mean surface pressure %.1f hPa implausible", p)
	}

	// GET /jobs/{id} and /jobs agree.
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job: %v status %d", err, resp.StatusCode)
	}
	got := decodeStatus(t, resp)
	if got.State != JCompleted {
		t.Fatalf("GET job state = %s", got.State)
	}
	resp, err = http.Get(ts.URL + "/jobs")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET jobs: %v", err)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list.Jobs) != 1 {
		t.Fatalf("job list has %d entries, want 1", len(list.Jobs))
	}

	// Metrics and health.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET metrics: %v", err)
	}
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	met := sb.String()
	for _, want := range []string{
		"cady_jobs_submitted_total 1",
		"cady_jobs_completed_total 1",
		`cady_jobs{state="completed"} 1`,
		"cady_queue_capacity 8",
		"cady_workers 2",
		"cady_steps_total 2",
		"cady_comm_exposed_seconds_total",
		"cady_comm_hidden_seconds_total",
		"cady_comm_overlap_fraction",
		"cady_exchanger_begins_total{exchanger=",
		"cady_exchanger_finishes_total{exchanger=",
		"cady_exchanger_hidden_seconds_total{exchanger=",
		"cady_exchanger_exposed_seconds_total{exchanger=",
	} {
		if !strings.Contains(met, want) {
			t.Fatalf("metrics missing %q:\n%s", want, met)
		}
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET healthz: %v status %d", err, resp.StatusCode)
	}
	resp.Body.Close()
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	for name, spec := range map[string]JobSpec{
		"bad alg":         {Alg: "mpi"},
		"bad kind":        {Kind: "train"},
		"infeasible grid": {Alg: "yz", Nx: 48, Ny: 24, Nz: 8, PA: 20, PB: 20},
		"negative mesh":   {Nx: -4},
		"too many ranks":  {Alg: "yz", Nx: 4096, Ny: 2048, Nz: 2, PA: 2048, PB: 1},
	} {
		resp := postJSON(t, ts, "/jobs", spec)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/jobs/nope")
	if err != nil {
		t.Fatalf("GET missing job: %v", err)
	}
	resp.Body.Close() // an unclosed body pins the transport's conn goroutines
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET missing job: %d, want 404", resp.StatusCode)
	}
}

func TestQueueFullRejects(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	hold := make(chan struct{})
	s.testHold = hold
	ts := httptest.NewServer(s)
	defer ts.Close()

	// First job: picked up by the worker, parked on the hold gate.
	st1 := decodeStatus(t, postJSON(t, ts, "/jobs", smallSpec(1)))
	waitQueueDrained(t, s)
	// Second job: sits in the queue (capacity 1).
	st2 := decodeStatus(t, postJSON(t, ts, "/jobs", smallSpec(1)))
	// Third: the bounded queue rejects it.
	resp := postJSON(t, ts, "/jobs", smallSpec(1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatalf("429 response missing Retry-After")
	}
	resp.Body.Close()

	hold <- struct{}{}
	hold <- struct{}{}
	waitState(t, s, st1.ID, JCompleted)
	waitState(t, s, st2.ID, JCompleted)

	if got := s.met.rejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
}

func waitQueueDrained(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if len(s.queue) == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("queue never drained to the worker")
}

// TestCancelResumeEquivalence is the acceptance test: a job killed mid-run
// is checkpointed at its stop boundary, and resuming it reaches a final
// state bitwise identical to an uninterrupted run.
func TestCancelResumeEquivalence(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	spec := smallSpec(4)
	spec.CheckpointEvery = 1
	// Cancel exactly at boundary 2 of the first segment, from inside the
	// quiesced step barrier (deterministic: the stop decision is sampled
	// right after this hook at the same boundary).
	s.testStep = func(j *Job, done int) {
		j.mu.Lock()
		attempt := j.attempts
		j.mu.Unlock()
		if attempt == 1 && done == 2 {
			s.Cancel(j.ID)
		}
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitState(t, s, j.ID, JCancelled)
	if st.StepsDone != 2 || st.CkptStep != 2 {
		t.Fatalf("cancelled at steps_done %d ckpt %d, want 2/2", st.StepsDone, st.CkptStep)
	}
	if !st.Resumable {
		t.Fatalf("cancelled job not resumable")
	}

	if _, err := s.Resume(j.ID); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	st = waitState(t, s, j.ID, JCompleted)
	if st.StepsDone != 4 || st.Attempts != 2 {
		t.Fatalf("resumed job finished with steps_done %d attempts %d", st.StepsDone, st.Attempts)
	}

	snap, step := j.latestSnapshot()
	if step != 4 || snap == nil {
		t.Fatalf("final snapshot at step %d, want 4", step)
	}
	spec.Steps = 4
	if !snap.Equal(refFinal(spec)) {
		t.Fatalf("resumed final state differs from uninterrupted run (baseline restarts must be bitwise-exact)")
	}
	// Cumulative counters cover both segments.
	if st.Counters.Steps != 4 {
		t.Fatalf("cumulative counter steps = %d, want 4", st.Counters.Steps)
	}
}

// TestGracefulDrain checks Shutdown semantics: the running job stops at a
// step boundary and is checkpointed as interrupted, the queued job stays
// queued, both are persisted, and a fresh server over the same directory
// recovers and finishes them.
func TestGracefulDrain(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	s, err := New(Config{Workers: 1, QueueCap: 4, Dir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	running := make(chan string, 1)
	s.testStep = func(j *Job, done int) {
		if done == 1 {
			select {
			case running <- j.ID:
			default:
			}
		}
	}
	long := smallSpec(50)
	j1, err := s.Submit(long)
	if err != nil {
		t.Fatalf("Submit 1: %v", err)
	}
	j2, err := s.Submit(smallSpec(2))
	if err != nil {
		t.Fatalf("Submit 2: %v", err)
	}
	<-running
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	st1, st2 := j1.Status(), j2.Status()
	if st1.State != JInterrupted || !st1.Resumable {
		t.Fatalf("running job after drain: %s resumable=%v, want interrupted/resumable", st1.State, st1.Resumable)
	}
	if st1.CkptStep == 0 || st1.CkptStep != st1.StepsDone {
		t.Fatalf("interrupted job ckpt %d steps_done %d, want equal and > 0", st1.CkptStep, st1.StepsDone)
	}
	if st1.StepsDone >= 50 {
		t.Fatalf("drain did not stop the running job early (did %d steps)", st1.StepsDone)
	}
	if st2.State != JQueued {
		t.Fatalf("queued job after drain: %s, want still queued", st2.State)
	}
	if _, err := s.Submit(smallSpec(1)); err != ErrDraining {
		t.Fatalf("submit during drain: %v, want ErrDraining", err)
	}

	// A fresh server over the same directory recovers both jobs and can
	// run them to completion from their checkpoints.
	s2 := newTestServer(t, Config{Workers: 1, QueueCap: 4, Dir: dir})
	r1, ok := s2.Get(j1.ID)
	if !ok {
		t.Fatalf("job %s not recovered", j1.ID)
	}
	rst := r1.Status()
	if rst.State != JInterrupted || !rst.Resumable || rst.StepsDone != st1.StepsDone {
		t.Fatalf("recovered job: %+v, want interrupted at %d steps", rst, st1.StepsDone)
	}
	snap, step := r1.latestSnapshot()
	if snap == nil || step != st1.CkptStep {
		t.Fatalf("recovered snapshot at %d, want %d", step, st1.CkptStep)
	}
	r2, ok := s2.Get(j2.ID)
	if !ok {
		t.Fatalf("job %s not recovered", j2.ID)
	}
	if r2.Status().State != JInterrupted {
		t.Fatalf("recovered queued job state %s, want interrupted", r2.Status().State)
	}
	if _, err := s2.Resume(j1.ID); err != nil {
		t.Fatalf("resume recovered job: %v", err)
	}
	if _, err := s2.Resume(j2.ID); err != nil {
		t.Fatalf("resume recovered queued job: %v", err)
	}
	f1 := waitState(t, s2, j1.ID, JCompleted)
	if f1.StepsDone != 50 {
		t.Fatalf("recovered job finished at %d steps, want 50", f1.StepsDone)
	}
	waitState(t, s2, j2.ID, JCompleted)

	// The interrupted-and-recovered run matches an uninterrupted one.
	fsnap, _ := r1.latestSnapshot()
	if !fsnap.Equal(refFinal(long)) {
		t.Fatalf("recovered run differs from uninterrupted run")
	}
}

func TestDeadlineInterrupts(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	spec := smallSpec(100000)
	spec.DeadlineSec = 0.05
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitState(t, s, j.ID, JFailed)
	if st.Error != "deadline exceeded" {
		t.Fatalf("error = %q, want deadline exceeded", st.Error)
	}
	if !st.Resumable || st.CkptStep == 0 {
		t.Fatalf("deadline-stopped job should be resumable with a checkpoint, got %+v", st)
	}
}

func TestFiguresJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	j, err := s.Submit(JobSpec{Kind: "figures", Nx: 48, Ny: 24, Nz: 8, M: 2, Steps: 1, Ps: []int{4, 8}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitState(t, s, j.ID, JCompleted)
	if len(st.Figures) != 4 {
		t.Fatalf("figures job returned %d figures, want 4", len(st.Figures))
	}
	for _, f := range st.Figures {
		if !strings.Contains(f, "==") {
			t.Fatalf("figure output missing table header: %q", f)
		}
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	hold := make(chan struct{})
	s.testHold = hold
	blocker, err := s.Submit(smallSpec(1))
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	waitQueueDrained(t, s)
	queued, err := s.Submit(smallSpec(1))
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	if err := s.Cancel(queued.ID); err != nil {
		t.Fatalf("Cancel queued: %v", err)
	}
	hold <- struct{}{}
	close(hold)
	waitState(t, s, blocker.ID, JCompleted)
	st := queued.Status()
	if st.State != JCancelled || st.StepsDone != 0 {
		t.Fatalf("queued-cancelled job: %s steps %d", st.State, st.StepsDone)
	}
	// Resuming a never-started job restarts it from scratch.
	if _, err := s.Resume(queued.ID); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if fs := waitState(t, s, queued.ID, JCompleted); fs.StepsDone != 1 {
		t.Fatalf("resumed-from-scratch job steps_done %d, want 1", fs.StepsDone)
	}
}

func TestMetricsEndpointShape(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	var lines int
	buf := new(strings.Builder)
	b := make([]byte, 16<<10)
	for {
		n, rerr := resp.Body.Read(b)
		buf.Write(b[:n])
		if rerr != nil {
			break
		}
	}
	for _, ln := range strings.Split(buf.String(), "\n") {
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		lines++
		if !strings.Contains(ln, " ") {
			t.Fatalf("malformed metric line %q", ln)
		}
		if !strings.HasPrefix(ln, "cady_") {
			t.Fatalf("metric %q missing cady_ namespace", ln)
		}
	}
	if lines < 10 {
		t.Fatalf("only %d metric samples, want >= 10", lines)
	}
}
