package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cadycore/internal/tune"
)

// TestSpectralSpecValidation tables the spectral_smooth gate: accepted for
// the full-zonal-circle algorithms, rejected where the switch cannot work
// (alg "xy") or is planner-owned (layout "auto") or meaningless (figures).
func TestSpectralSpecValidation(t *testing.T) {
	spectral := func(alg string) JobSpec {
		sp := smallSpec(2)
		sp.Alg = alg
		sp.SpectralSmooth = true
		return sp
	}
	for _, alg := range []string{"ca", "yz", ""} {
		sp := spectral(alg)
		if err := sp.Normalize(); err != nil {
			t.Errorf("alg %q + spectral_smooth: Normalize() = %v, want nil", alg, err)
		}
		if !sp.config().SpectralSmooth {
			t.Errorf("alg %q: config() dropped SpectralSmooth", alg)
		}
	}
	if sp := smallSpec(2); sp.config().SpectralSmooth {
		t.Error("config() turned SpectralSmooth on without the spec asking")
	}

	autoSp := JobSpec{Layout: "auto", Procs: 4, Nx: 32, Ny: 16, Nz: 4, M: 2, Steps: 4, SpectralSmooth: true}
	figSp := JobSpec{Kind: "figures", SpectralSmooth: true}
	invalid := map[string]struct {
		spec JobSpec
		want string
	}{
		"xy alg":      {spectral("xy"), "zonal circles"},
		"auto layout": {autoSp, "spectral_smooth"},
		"figures job": {figSp, "run jobs"},
	}
	for name, tc := range invalid {
		err := tc.spec.Normalize()
		if err == nil {
			t.Errorf("%s: Normalize() = nil, want error", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

// TestSpectralPlannedLayoutValidates: a planner decision carrying the
// spectral flag passes the borrowed explicit-layout gate on the CA scheme
// and is rejected if the planner ever paired it with the XY scheme (the
// enumeration never does; the gate is the backstop).
func TestSpectralPlannedLayoutValidates(t *testing.T) {
	auto := JobSpec{Layout: "auto", Procs: 4, Nx: 32, Ny: 16, Nz: 4, M: 2, Steps: 4}
	if err := auto.Normalize(); err != nil {
		t.Fatalf("auto spec invalid: %v", err)
	}
	ca := tune.Plan{Scheme: tune.SchemeCA, PA: 2, PB: 2, M: 2, Workers: 1, Spectral: true}
	if err := validatePlanned(auto, ca); err != nil {
		t.Errorf("planned CA spectral layout rejected: %v", err)
	}
	xy := tune.Plan{Scheme: tune.SchemeXY, PA: 2, PB: 2, M: 2, Workers: 1, Spectral: true}
	if err := validatePlanned(auto, xy); err == nil {
		t.Error("planned XY spectral layout accepted; the gate backstop is dead")
	}
}

// TestSpectralJobRunsToCompletion is the service-level smoke: a run job
// with spectral_smooth on completes with finite physics.
func TestSpectralJobRunsToCompletion(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	sp := smallSpec(2)
	sp.Alg = "ca"
	sp.SpectralSmooth = true
	resp := postJSON(t, ts, "/jobs", sp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	st := decodeStatus(t, resp)
	done := waitState(t, s, st.ID, JCompleted)
	if done.StepsDone != 2 {
		t.Fatalf("StepsDone = %d, want 2", done.StepsDone)
	}
	if done.Diagnostics["all_finite"] != 1 {
		t.Errorf("spectral run not finite: %v", done.Diagnostics)
	}
	if !done.Spec.SpectralSmooth {
		t.Error("status spec lost the spectral_smooth flag")
	}
}
