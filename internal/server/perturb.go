package server

import (
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/state"
)

// perturbInit wraps an initializer with the ensemble-member perturbation:
// after base fills the owned region, every owned (i, j, k) point of U, V and
// Φ is scaled by 1 + amp·ε, with ε ∈ [-1, 1) drawn from a splitmix64-style
// hash of (seed, global linear index, component) — the same generator family
// the fault injector uses for its per-rank streams. Because ε depends only on
// global coordinates, every decomposition of the same (seed, amp) produces a
// bitwise-identical global initial state, and multiplicative noise preserves
// the exact zeros of the polar V rows. Psa is left untouched.
func perturbInit(base dycore.InitFunc, seed int64, amp float64) dycore.InitFunc {
	return func(g *grid.Grid, st *state.State) {
		base(g, st)
		b := st.B
		for k := b.K0; k < b.K1; k++ {
			for j := b.J0; j < b.J1; j++ {
				for i := b.I0; i < b.I1; i++ {
					n := uint64((k*g.Ny+j)*g.Nx + i)
					st.U.Set(i, j, k, st.U.At(i, j, k)*(1+amp*unitNoise(seed, 3*n)))
					st.V.Set(i, j, k, st.V.At(i, j, k)*(1+amp*unitNoise(seed, 3*n+1)))
					st.Phi.Set(i, j, k, st.Phi.At(i, j, k)*(1+amp*unitNoise(seed, 3*n+2)))
				}
			}
		}
	}
}

// unitNoise maps (seed, counter) to a deterministic value in [-1, 1) through
// the splitmix64 finalizer (golden-ratio seeding like comm.NewFaults).
func unitNoise(seed int64, n uint64) float64 {
	z := (uint64(seed)+1)*0x9e3779b97f4a7c15 ^ (n+1)*0xd1342543de82ef95
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/(1<<52) - 1
}
