package server

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cadycore/internal/checkpoint"
	"cadycore/internal/fault"
	"cadycore/internal/testutil"
)

// soakPlan crashes two ranks at different steps, slows one rank and adds
// message jitter — every run job gets its own injector over this plan.
func soakPlan() *fault.Plan {
	return &fault.Plan{
		Seed: 11,
		Crashes: []fault.Crash{
			{Rank: 1, Step: 2},
			{Rank: 0, Step: 4},
		},
		Stragglers: []fault.Straggler{{Rank: 2, Scale: 2}},
		Jitter:     &fault.Jitter{Prob: 0.2, MaxDelay: 1e-4},
	}
}

func fastRestart() RestartPolicy {
	return RestartPolicy{Backoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}
}

// maxDiffGlobal is the element-wise max absolute difference between two
// snapshots (Global.Equal is bitwise; the CA scheme's lagged sum reconverges
// only to a tolerance after a mid-run restart).
func maxDiffGlobal(a, b *checkpoint.Global) float64 {
	if a == nil || b == nil {
		return math.Inf(1)
	}
	d := 0.0
	for _, pair := range [][2][]float64{{a.U, b.U}, {a.V, b.V}, {a.Phi, b.Phi}, {a.Psa, b.Psa}} {
		x, y := pair[0], pair[1]
		if len(x) != len(y) {
			return math.Inf(1)
		}
		for i := range x {
			if dd := math.Abs(x[i] - y[i]); dd > d {
				d = dd
			}
		}
	}
	return d
}

// TestChaosSoakYZ is the tentpole acceptance test: several jobs submitted
// under a crash+straggler+jitter plan all complete through automatic
// checkpoint restarts, bitwise identical to a fault-free run.
func TestChaosSoakYZ(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 2, QueueCap: 8,
		Chaos:   soakPlan(),
		Restart: fastRestart(),
	})
	spec := smallSpec(5)
	spec.CheckpointEvery = 1

	const njobs = 4
	var jobs []*Job
	for i := 0; i < njobs; i++ {
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}

	ref := refFinal(spec)
	for _, j := range jobs {
		st := waitState(t, s, j.ID, JCompleted)
		if st.StepsDone != 5 {
			t.Errorf("job %s completed at steps_done %d, want 5", j.ID, st.StepsDone)
		}
		// Both planned crashes fire in every job, so every job restarted.
		if st.Restarts != 2 {
			t.Errorf("job %s restarts = %d, want 2 (one per planned crash)", j.ID, st.Restarts)
		}
		if st.Error != "" {
			t.Errorf("job %s completed with residual error %q", j.ID, st.Error)
		}
		snap, step := j.latestSnapshot()
		if step != 5 || snap == nil {
			t.Fatalf("job %s final snapshot at step %d, want 5", j.ID, step)
		}
		if !snap.Equal(ref) {
			t.Errorf("job %s final state differs from fault-free run (YZ restarts must be bitwise-exact)", j.ID)
		}
	}

	if got := s.met.rankFailures.Load(); got != 2*njobs {
		t.Errorf("rank failure counter = %d, want %d", got, 2*njobs)
	}
	if got := s.met.restarts.Load(); got != 2*njobs {
		t.Errorf("restart counter = %d, want %d", got, 2*njobs)
	}
}

// TestChaosSoakCA: the communication-avoiding scheme under the same plan.
// Its lagged polar sum makes a mid-run restart only tolerance-exact, so the
// completed state must match the fault-free run to 1e-6.
func TestChaosSoakCA(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 1, QueueCap: 4,
		Chaos:   soakPlan(),
		Restart: fastRestart(),
	})
	spec := smallSpec(5)
	spec.Alg = "ca"
	spec.CheckpointEvery = 1

	j, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitState(t, s, j.ID, JCompleted)
	if st.Restarts == 0 {
		t.Errorf("CA job completed without restarting under a crash plan")
	}
	snap, _ := j.latestSnapshot()
	if d := maxDiffGlobal(snap, refFinal(spec)); d > 1e-6 {
		t.Errorf("CA chaos run differs from fault-free run by %g, want <= 1e-6", d)
	}
}

// TestChaosRestartBudgetExhausted: a crash that re-fires on every attempt
// exhausts the per-job restart budget and fails the job with a clear error.
func TestChaosRestartBudgetExhausted(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 1, QueueCap: 4,
		Chaos:   &fault.Plan{Crashes: []fault.Crash{{Rank: 0, Step: 1, Count: 99}}},
		Restart: fastRestart(),
	})
	spec := smallSpec(3)
	budget := 1
	spec.MaxRestarts = &budget

	j, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitState(t, s, j.ID, JFailed)
	if !strings.Contains(st.Error, "restart budget") {
		t.Errorf("failed job error = %q, want a restart-budget message", st.Error)
	}
	if st.Restarts != budget {
		t.Errorf("restarts = %d, want %d", st.Restarts, budget)
	}
	if !st.Resumable {
		t.Errorf("budget-exhausted job not resumable (its checkpoint is still valid)")
	}
}

// TestCancelDuringRetry: a job parked in its backoff window can be
// cancelled; the retry timer is stopped and the job stays resumable.
func TestCancelDuringRetry(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 1, QueueCap: 4,
		Chaos:   &fault.Plan{Crashes: []fault.Crash{{Rank: 0, Step: 1, Count: 99}}},
		Restart: RestartPolicy{Backoff: time.Hour, MaxBackoff: time.Hour},
	})
	spec := smallSpec(3)

	j, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, j.ID, JRetrying)
	if err := s.Cancel(j.ID); err != nil {
		t.Fatalf("Cancel during retry backoff: %v", err)
	}
	st := waitState(t, s, j.ID, JCancelled)
	if !st.Resumable {
		t.Errorf("cancelled-while-retrying job not resumable")
	}
}

// TestShutdownDuringRetry: draining converts a backing-off job to
// interrupted + resumable instead of leaving a timer racing the exit.
func TestShutdownDuringRetry(t *testing.T) {
	s, err := New(Config{
		Workers: 1, QueueCap: 4,
		Chaos:   &fault.Plan{Crashes: []fault.Crash{{Rank: 0, Step: 1, Count: 99}}},
		Restart: RestartPolicy{Backoff: time.Hour, MaxBackoff: time.Hour},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j, err := s.Submit(smallSpec(3))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, j.ID, JRetrying)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	st := j.Status()
	if st.State != JInterrupted || !st.Resumable {
		t.Errorf("retrying job after drain: %s resumable=%v, want interrupted/resumable", st.State, st.Resumable)
	}
}

// TestChaosRejectsBadPlan: New validates the plan up front.
func TestChaosRejectsBadPlan(t *testing.T) {
	_, err := New(Config{Chaos: &fault.Plan{Crashes: []fault.Crash{{Rank: 0, Step: 0}}}})
	if err == nil {
		t.Fatal("New accepted an invalid chaos plan")
	}
}

// TestChaosMetricsExposition: the new counters appear on /metrics.
func TestChaosMetricsExposition(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{
		"cady_rank_failures_total",
		"cady_job_restarts_total",
		"cady_persist_errors_total",
		`cady_jobs{state="retrying"}`,
	} {
		if !strings.Contains(string(body), name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}

// TestRecoverIgnoresStaleTmp simulates a process killed between the temp
// write and the rename of a durable update: the stale *.tmp files next to
// the last complete checkpoint must be swept on startup and never loaded,
// and the job must come back interrupted with the previous valid checkpoint.
func TestRecoverIgnoresStaleTmp(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	s, err := New(Config{Workers: 1, QueueCap: 4, Dir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	spec := smallSpec(4)
	spec.CheckpointEvery = 2
	s.testStep = func(j *Job, done int) {
		j.mu.Lock()
		attempt := j.attempts
		j.mu.Unlock()
		if attempt == 1 && done == 2 {
			s.Cancel(j.ID)
		}
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitState(t, s, j.ID, JCancelled)
	if st.CkptStep != 2 {
		t.Fatalf("checkpoint at %d, want 2", st.CkptStep)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Simulate the crash mid-persist: a half-written checkpoint and meta
	// temp file that never reached their rename, and an on-disk state
	// claiming the job was still running when the process died.
	jdir := filepath.Join(dir, j.ID)
	//cadyvet:volatile simulates the torn tmp a crash leaves behind; durability is exactly what is under test
	if err := os.WriteFile(filepath.Join(jdir, "snap.ck.tmp"), []byte("torn checkpoint bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	//cadyvet:volatile simulates the torn tmp a crash leaves behind; durability is exactly what is under test
	if err := os.WriteFile(filepath.Join(jdir, "meta.json.tmp"), []byte(`{"state": "torn`), 0o644); err != nil {
		t.Fatal(err)
	}
	meta, _ := json.Marshal(jobMeta{State: JRunning, StepsDone: 3, CkptStep: 2, Resumable: false, Attempts: 1})
	//cadyvet:volatile forges the pre-crash on-disk state for recovery to chew on; it must not be durably committed
	if err := os.WriteFile(filepath.Join(jdir, "meta.json"), meta, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, Config{Workers: 1, QueueCap: 4, Dir: dir})
	r, ok := s2.Get(j.ID)
	if !ok {
		t.Fatalf("job %s not recovered", j.ID)
	}
	rst := r.Status()
	if rst.State != JInterrupted || !rst.Resumable {
		t.Fatalf("recovered mid-flight job: %s resumable=%v, want interrupted/resumable", rst.State, rst.Resumable)
	}
	snap, step := r.latestSnapshot()
	if snap == nil || step != 2 {
		t.Fatalf("recovered checkpoint at step %d, want the previous valid one at 2", step)
	}
	for _, name := range []string{"snap.ck.tmp", "meta.json.tmp"} {
		if _, err := os.Stat(filepath.Join(jdir, name)); !os.IsNotExist(err) {
			t.Errorf("stale %s not swept on startup", name)
		}
	}

	if _, err := s2.Resume(j.ID); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	fin := waitState(t, s2, j.ID, JCompleted)
	if fin.StepsDone != 4 {
		t.Fatalf("resumed job finished at %d steps, want 4", fin.StepsDone)
	}
	fsnap, _ := r.latestSnapshot()
	if !fsnap.Equal(refFinal(spec)) {
		t.Fatalf("recovered run differs from uninterrupted run")
	}
}

// TestPersistErrorSurfaced: a durable-write failure lands in the job status
// and the persist-error counter instead of vanishing.
func TestPersistErrorSurfaced(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dir := t.TempDir()
	s, err := New(Config{Workers: 1, QueueCap: 4, Dir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		os.Chmod(dir, 0o755)
		s.Shutdown(ctx)
	})
	spec := smallSpec(2)
	spec.CheckpointEvery = 1
	// Make every job directory unwritable so the first durable write fails.
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	if os.Geteuid() == 0 {
		t.Skip("running as root: read-only directory does not fail writes")
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitState(t, s, j.ID, JCompleted)
	if st.PersistError == "" {
		t.Errorf("persist failure not surfaced in job status")
	}
	if s.met.persistErrors.Load() == 0 {
		t.Errorf("persist-error counter not incremented")
	}
}
