package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cadycore/internal/checkpoint"
	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/harness"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/state"
	"cadycore/internal/tune"
)

// Config sizes the service.
type Config struct {
	// Workers is the number of concurrent job executors (default 2). Each
	// running job itself spawns one goroutine per simulated rank.
	Workers int
	// QueueCap bounds the admission queue (default 16); submits beyond it
	// are rejected with 429 + Retry-After.
	QueueCap int
	// Dir, when non-empty, persists job specs, progress metadata and
	// checkpoints under Dir/<job-id>/ so jobs survive a process restart
	// (see New, which recovers them).
	Dir string
	// Model is the simulated network cost model (default comm.TianheLike).
	Model comm.NetModel
	// Planner chooses layouts for "layout": "auto" jobs. Nil builds a
	// default planner from Model (analytic profile, short pilots) with the
	// plan cache under Dir/plans when Dir is set.
	Planner *tune.Planner
}

// Submission errors mapped to HTTP statuses by the handlers.
var (
	// ErrQueueFull: the bounded queue rejected the job (HTTP 429).
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining: the server is shutting down (HTTP 503).
	ErrDraining = errors.New("server: draining, not accepting jobs")
)

// Server is the job service. Create with New, expose via ServeHTTP (it is
// an http.Handler), stop with Shutdown.
type Server struct {
	cfg     Config
	model   comm.NetModel
	planner *tune.Planner
	mux     *http.ServeMux
	met     metrics
	start   time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // insertion order for listing
	seq    int
	queue  chan *Job
	closed bool

	wg sync.WaitGroup

	// testHold, when non-nil, makes every worker receive once from it
	// before starting a job — lets tests fill the queue deterministically.
	testHold chan struct{}
	// testStep, when non-nil, is called at every step boundary of every
	// run job — lets tests cancel or drain at an exact boundary. Set it
	// before the first Submit (the queue send orders it for workers).
	testStep func(j *Job, done int)
}

// New builds the service, recovers any persisted jobs from cfg.Dir and
// starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	model := cfg.Model
	if model.ComputeRate == 0 {
		model = comm.TianheLike()
	}
	planner := cfg.Planner
	if planner == nil {
		planner = &tune.Planner{
			Profile:    tune.ProfileFromModel(model),
			TopK:       2,
			PilotSteps: 1,
		}
		if cfg.Dir != "" {
			planner.Cache = tune.NewCache(filepath.Join(cfg.Dir, "plans"))
		}
	}
	s := &Server{
		cfg:     cfg,
		model:   model,
		planner: planner,
		jobs:    make(map[string]*Job),
		queue:   make(chan *Job, cfg.QueueCap),
		start:   time.Now(),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.routes()
	if cfg.Dir != "" {
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Submit validates, registers and enqueues a job. The queue is the
// admission control: a full queue rejects the submission outright
// (ErrQueueFull) rather than keeping an unbounded backlog.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if s.baseCtx.Err() != nil {
		return nil, ErrDraining
	}
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.seq++
	j := &Job{
		ID:        fmt.Sprintf("j-%06d", s.seq),
		Spec:      spec,
		state:     JQueued,
		submitted: time.Now(),
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.met.rejected.Add(1)
		return nil, ErrQueueFull
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()
	s.met.submitted.Add(1)
	s.persistSpec(j)
	s.persistMeta(j)
	return j, nil
}

// Get returns a job by ID.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List returns all jobs in submission order.
func (s *Server) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel requests a job stop. A queued job is cancelled in place; a running
// job is stopped cooperatively at its next step boundary (where it is
// checkpointed). Terminal jobs return an error.
func (s *Server) Cancel(id string) error {
	j, ok := s.Get(id)
	if !ok {
		return fmt.Errorf("server: no job %s", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case JQueued:
		j.state = JCancelled
		j.resumable = true
		j.finished = time.Now()
		s.met.cancelled.Add(1)
		s.persistMetaLocked(j)
		return nil
	case JRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
		return nil
	default:
		return fmt.Errorf("server: job %s is %s, not cancellable", id, j.state)
	}
}

// Resume re-enqueues a stopped job. Execution restarts from the latest
// checkpoint when one exists (baseline restarts are bitwise-exact; the
// default comm-avoiding integrator reconverges its lagged Ĉ cache, see
// DESIGN.md), from the initial condition otherwise.
func (s *Server) Resume(id string) (*Job, error) {
	j, ok := s.Get(id)
	if !ok {
		return nil, fmt.Errorf("server: no job %s", id)
	}
	if s.baseCtx.Err() != nil {
		return nil, ErrDraining
	}
	j.mu.Lock()
	if !j.state.terminal() {
		st := j.state
		j.mu.Unlock()
		return nil, fmt.Errorf("server: job %s is %s, not resumable", id, st)
	}
	if j.state == JCompleted {
		j.mu.Unlock()
		return nil, fmt.Errorf("server: job %s already completed", id)
	}
	if j.Spec.Kind != "run" {
		j.mu.Unlock()
		return nil, fmt.Errorf("server: %s jobs are not resumable", j.Spec.Kind)
	}
	prev := j.state
	j.state = JQueued
	j.errMsg = ""
	j.cancelRequested = false
	j.finished = time.Time{}
	j.mu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		j.mu.Lock()
		j.state = prev
		j.mu.Unlock()
		return nil, ErrDraining
	}
	select {
	case s.queue <- j:
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		j.mu.Lock()
		j.state = prev
		j.mu.Unlock()
		s.met.rejected.Add(1)
		return nil, ErrQueueFull
	}
	s.met.resumed.Add(1)
	s.persistMeta(j)
	return j, nil
}

// Shutdown drains the service: no new submissions are accepted, running
// jobs are stopped at their next step boundary and checkpointed (state
// "interrupted", resumable), still-queued jobs stay "queued" with their
// specs persisted. It returns when the workers have exited or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.baseCancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	// Persist the final metadata of everything still queued.
	for _, j := range s.List() {
		s.persistMeta(j)
	}
	return nil
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.baseCtx.Err() != nil }

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		if s.testHold != nil {
			<-s.testHold
		}
		j.mu.Lock()
		if j.state != JQueued {
			// Cancelled while queued.
			j.mu.Unlock()
			continue
		}
		if s.baseCtx.Err() != nil {
			// Draining: leave the job queued (its spec and metadata are
			// persisted) for a later service instance to resume.
			j.mu.Unlock()
			continue
		}
		j.state = JRunning
		j.started = time.Now()
		j.attempts++
		j.mu.Unlock()
		s.met.busy.Add(1)
		s.runJob(j)
		s.met.busy.Add(-1)
		s.persistMeta(j)
	}
}

// runJob executes one job segment, translating run outcomes to job states.
func (s *Server) runJob(j *Job) {
	var ctx context.Context
	var cancel context.CancelFunc
	if j.Spec.DeadlineSec > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(j.Spec.DeadlineSec*float64(time.Second)))
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	defer cancel()
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			j.mu.Lock()
			j.state = JFailed
			j.errMsg = fmt.Sprintf("panic: %v", r)
			j.resumable = j.snap != nil
			j.finished = time.Now()
			j.cancel = nil
			j.mu.Unlock()
			s.met.failed.Add(1)
		}
	}()

	if j.Spec.Kind == "figures" {
		s.runFigures(j)
		return
	}

	g := grid.New(j.Spec.Nx, j.Spec.Ny, j.Spec.Nz)
	var set dycore.Setup
	if j.Spec.autoLayout() {
		plan, err := s.planJob(j, g)
		if err != nil {
			j.mu.Lock()
			j.state = JFailed
			j.errMsg = err.Error()
			j.resumable = false
			j.finished = time.Now()
			j.cancel = nil
			j.mu.Unlock()
			s.met.failed.Add(1)
			return
		}
		set = plan.Setup(j.Spec.config())
	} else {
		set = j.Spec.setup()
	}

	var hook dycore.StepHook
	if j.Spec.heldSuarez() {
		hs := heldsuarez.Standard()
		dt2 := j.Spec.Dt2
		hook = func(g *grid.Grid, st *state.State, step int) { hs.Apply(g, st, dt2) }
	}

	init := dycore.InitFunc(heldsuarez.InitialState)
	snap, segBase := j.latestSnapshot()
	if snap != nil {
		init = snap.InitFunc()
	} else {
		segBase = 0
	}
	remaining := j.Spec.Steps - segBase
	if remaining <= 0 {
		j.mu.Lock()
		j.state = JCompleted
		j.finished = time.Now()
		j.cancel = nil
		j.mu.Unlock()
		s.met.completed.Add(1)
		return
	}

	opts := dycore.RunOpts{
		Hook: hook,
		Progress: func(done int) {
			j.mu.Lock()
			j.stepsDone = segBase + done
			j.mu.Unlock()
			s.met.steps.Add(1)
			if s.testStep != nil {
				s.testStep(j, segBase+done)
			}
		},
		ShouldStop:    func() bool { return ctx.Err() != nil },
		SnapshotEvery: j.Spec.CheckpointEvery,
		Snapshot: func(done int, sts []*state.State) {
			gl := checkpoint.Gather(g, sts)
			j.setSnapshot(segBase+done, gl)
			s.met.snapshots.Add(1)
			s.persistSnap(j, gl)
		},
	}
	res, _ := dycore.RunWithOpts(set, g, s.model, init, remaining, opts)

	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel = nil
	j.stepsDone = segBase + res.StepsDone
	j.agg = mergeAgg(j.agg, res.Agg)
	j.count = mergeCounters(j.count, res.Count)
	j.finished = time.Now()
	if res.StepsDone < remaining {
		// Stopped at a boundary; the stop-triggered Snapshot already
		// recorded the checkpoint at exactly j.stepsDone.
		j.resumable = true
		switch {
		case j.cancelRequested:
			j.state = JCancelled
			s.met.cancelled.Add(1)
		case errors.Is(ctx.Err(), context.DeadlineExceeded):
			j.state = JFailed
			j.errMsg = "deadline exceeded"
			s.met.failed.Add(1)
		default:
			j.state = JInterrupted
			s.met.interrupted.Add(1)
		}
		return
	}
	// Ran to completion: record diagnostics and the final state as the
	// job's last checkpoint.
	j.state = JCompleted
	j.resumable = false
	j.diags = diagnostics(g, res.Finals)
	final := checkpoint.Gather(g, res.Finals)
	j.snap = final
	j.ckptStep = j.stepsDone
	s.met.completed.Add(1)
	s.persistSnapLocked(j, final)
}

// runFigures executes a figures job: the harness sweep with the shared
// memoized cache. Sweeps are not checkpointable; they run to completion.
func (s *Server) runFigures(j *Job) {
	o := harness.Defaults()
	o.Nx, o.Ny, o.Nz = j.Spec.Nx, j.Spec.Ny, j.Spec.Nz
	o.M = j.Spec.M
	o.Steps = j.Spec.Steps
	o.Dt1, o.Dt2 = j.Spec.Dt1, j.Spec.Dt2
	o.Ps = harness.SortedPs(j.Spec.Ps)
	o.Model = s.model
	figs := harness.AllFigures(o)
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel = nil
	j.figures = make([]string, 0, len(figs))
	for _, f := range figs {
		j.figures = append(j.figures, f.Format())
	}
	j.stepsDone = j.Spec.Steps
	j.state = JCompleted
	j.finished = time.Now()
	s.met.completed.Add(1)
}

// planJob resolves the layout of an auto job: reuse the plan recorded by an
// earlier segment (so resumes keep their decomposition and checkpoints stay
// coherent), otherwise consult the planner and re-validate its choice
// through the same Normalize gate explicit submissions pass.
func (s *Server) planJob(j *Job, g *grid.Grid) (tune.Plan, error) {
	if p := j.getPlan(); p != nil {
		return *p, nil
	}
	plan, err := s.planner.Plan(g, j.Spec.Procs, j.Spec.config())
	if err != nil {
		return tune.Plan{}, fmt.Errorf("autotune: %w", err)
	}
	if err := validatePlanned(j.Spec, plan); err != nil {
		return tune.Plan{}, fmt.Errorf("autotune: planned layout %s invalid: %w", plan, err)
	}
	j.setPlan(plan)
	s.persistMeta(j)
	return plan, nil
}

// validatePlanned runs the planner's choice through the explicit-layout
// validation path (the reject-on-infeasible gate).
func validatePlanned(sp JobSpec, p tune.Plan) error {
	v := sp
	v.Layout = "explicit"
	v.Procs = 0
	v.Alg = string(p.Scheme)
	v.PA, v.PB, v.PC = p.PA, p.PB, 0
	v.M = p.M
	return v.Normalize()
}

// --- persistence -----------------------------------------------------------
//
// Layout under cfg.Dir: <id>/spec.json, <id>/meta.json, <id>/snap.ck.
// Writes are temp-file + rename so a crash never leaves a torn file; the
// checkpoint format's own CRC64 catches anything else.

type jobMeta struct {
	State     JState     `json:"state"`
	StepsDone int        `json:"steps_done"`
	CkptStep  int        `json:"checkpoint_step"`
	Resumable bool       `json:"resumable"`
	Error     string     `json:"error,omitempty"`
	Attempts  int        `json:"attempts"`
	Plan      *tune.Plan `json:"plan,omitempty"`
}

func (s *Server) jobDir(j *Job) string { return filepath.Join(s.cfg.Dir, j.ID) }

func (s *Server) persistSpec(j *Job) {
	if s.cfg.Dir == "" {
		return
	}
	dir := s.jobDir(j)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	b, _ := json.MarshalIndent(j.Spec, "", "  ")
	writeFileAtomic(filepath.Join(dir, "spec.json"), b)
}

func (s *Server) persistMeta(j *Job) {
	j.mu.Lock()
	defer j.mu.Unlock()
	s.persistMetaLocked(j)
}

func (s *Server) persistMetaLocked(j *Job) {
	if s.cfg.Dir == "" {
		return
	}
	m := jobMeta{
		State:     j.state,
		StepsDone: j.stepsDone,
		CkptStep:  j.ckptStep,
		Resumable: j.resumable,
		Error:     j.errMsg,
		Attempts:  j.attempts,
		Plan:      j.plan,
	}
	b, _ := json.MarshalIndent(m, "", "  ")
	writeFileAtomic(filepath.Join(s.jobDir(j), "meta.json"), b)
}

func (s *Server) persistSnap(j *Job, gl *checkpoint.Global) {
	if s.cfg.Dir == "" {
		return
	}
	path := filepath.Join(s.jobDir(j), "snap.ck")
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return
	}
	if err := gl.Write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return
	}
	os.Rename(tmp, path)
	s.persistMeta(j)
}

func (s *Server) persistSnapLocked(j *Job, gl *checkpoint.Global) {
	if s.cfg.Dir == "" {
		return
	}
	path := filepath.Join(s.jobDir(j), "snap.ck")
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return
	}
	if err := gl.Write(f); err == nil && f.Close() == nil {
		os.Rename(tmp, path)
	} else {
		f.Close()
		os.Remove(tmp)
	}
	s.persistMetaLocked(j)
}

func writeFileAtomic(path string, b []byte) {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return
	}
	os.Rename(tmp, path)
}

// recover re-registers persisted jobs from cfg.Dir. Jobs that were queued,
// running or interrupted when the previous process died come back as
// resumable "interrupted" jobs; completed and terminal jobs keep their
// state. The latest checkpoint, when present and valid, is reloaded.
func (s *Server) recover() error {
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		if os.IsNotExist(err) {
			return os.MkdirAll(s.cfg.Dir, 0o755)
		}
		return err
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "j-") {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		dir := filepath.Join(s.cfg.Dir, id)
		specB, err := os.ReadFile(filepath.Join(dir, "spec.json"))
		if err != nil {
			continue
		}
		var spec JobSpec
		if json.Unmarshal(specB, &spec) != nil || spec.Normalize() != nil {
			continue
		}
		j := &Job{ID: id, Spec: spec, state: JQueued, submitted: time.Now()}
		if metaB, err := os.ReadFile(filepath.Join(dir, "meta.json")); err == nil {
			var m jobMeta
			if json.Unmarshal(metaB, &m) == nil {
				j.state = m.State
				j.stepsDone = m.StepsDone
				j.ckptStep = m.CkptStep
				j.resumable = m.Resumable
				j.errMsg = m.Error
				j.attempts = m.Attempts
				j.plan = m.Plan
			}
		}
		if f, err := os.Open(filepath.Join(dir, "snap.ck")); err == nil {
			if gl, err := checkpoint.Read(f); err == nil {
				j.snap = gl
			}
			f.Close()
		}
		// A job that was mid-flight when the process died cannot still be
		// running; surface it as interrupted and resumable.
		if j.state == JQueued || j.state == JRunning {
			j.state = JInterrupted
			j.resumable = true
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "j-")); err == nil && n > s.seq {
			s.seq = n
		}
		s.jobs[id] = j
		s.order = append(s.order, id)
	}
	return nil
}
