package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cadycore/internal/balance"
	"cadycore/internal/checkpoint"
	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/fault"
	"cadycore/internal/grid"
	"cadycore/internal/harness"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/state"
	"cadycore/internal/tune"
)

// Config sizes the service.
type Config struct {
	// Workers is the number of concurrent job executors (default 2). Each
	// running job itself spawns one goroutine per simulated rank.
	Workers int
	// QueueCap bounds the admission queue (default 16); submits beyond it
	// are rejected with 429 + Retry-After.
	QueueCap int
	// Dir, when non-empty, persists job specs, progress metadata and
	// checkpoints under Dir/<job-id>/ so jobs survive a process restart
	// (see New, which recovers them).
	Dir string
	// Shared, when non-nil, is a checkpoint store shared with other backends
	// (typically a checkpoint.DirStore on a directory every fleet member
	// mounts). Jobs with a non-empty spec shared_key dual-write their
	// checkpoints there keyed by it, and — when the job has no local
	// checkpoint — resume from the newest shared snapshot, which is how a
	// coordinator migrates a job from a dead backend to this one.
	Shared checkpoint.Store
	// Model is the simulated network cost model (default comm.TianheLike).
	Model comm.NetModel
	// Planner chooses layouts for "layout": "auto" jobs. Nil builds a
	// default planner from Model (analytic profile, short pilots) with the
	// plan cache under Dir/plans when Dir is set.
	Planner *tune.Planner
	// Chaos, when non-nil and non-empty, injects the fault plan into every
	// run job: stragglers, message jitter and transient send errors perturb
	// the simulated clock, and rank crashes kill jobs mid-run so the restart
	// policy below recovers them from their latest checkpoint. The
	// chaos-testing mode behind cmd/cadyserved's -chaos flag.
	Chaos *fault.Plan
	// Restart is the automatic crash-recovery policy for run jobs whose
	// ranks die; the zero value enables it with the defaults documented on
	// RestartPolicy.
	Restart RestartPolicy
}

// RestartPolicy governs automatic recovery of jobs aborted by an injected
// rank death: the job enters the "retrying" state, waits out an exponential
// backoff and is re-enqueued to resume from its latest checkpoint.
type RestartPolicy struct {
	// MaxRestarts is the restart budget per job (default 3; negative
	// disables automatic restart). A job's spec max_restarts overrides it.
	MaxRestarts int
	// Backoff is the delay before the first restart (default 100ms); it
	// doubles on each subsequent restart, capped at MaxBackoff (default 5s).
	Backoff    time.Duration
	MaxBackoff time.Duration
}

// normalize fills the documented defaults.
func (rp RestartPolicy) normalize() RestartPolicy {
	if rp.MaxRestarts == 0 {
		rp.MaxRestarts = 3
	}
	if rp.MaxRestarts < 0 {
		rp.MaxRestarts = 0
	}
	if rp.Backoff <= 0 {
		rp.Backoff = 100 * time.Millisecond
	}
	if rp.MaxBackoff <= 0 {
		rp.MaxBackoff = 5 * time.Second
	}
	return rp
}

// delay returns the backoff before the n-th restart (1-based).
func (rp RestartPolicy) delay(n int) time.Duration {
	d := rp.Backoff
	for i := 1; i < n && d < rp.MaxBackoff; i++ {
		d *= 2
	}
	if d > rp.MaxBackoff {
		d = rp.MaxBackoff
	}
	return d
}

// Submission errors mapped to HTTP statuses by the handlers.
var (
	// ErrQueueFull: the bounded queue rejected the job (HTTP 429).
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining: the server is shutting down (HTTP 503).
	ErrDraining = errors.New("server: draining, not accepting jobs")
)

// Server is the job service. Create with New, expose via ServeHTTP (it is
// an http.Handler), stop with Shutdown.
type Server struct {
	cfg     Config
	model   comm.NetModel
	planner *tune.Planner
	restart RestartPolicy
	chaos   *fault.Plan      // nil when chaos testing is off
	shared  checkpoint.Store // nil when no shared artifact store is attached
	mux     *http.ServeMux
	met     metrics
	start   time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu    sync.Mutex
	jobs  map[string]*Job //cadyvet:guardedby mu
	order []string        //cadyvet:guardedby mu
	seq   int             //cadyvet:guardedby mu
	// queue itself is not guarded (channel operations synchronize); only the
	// send-vs-close race is, which is why sends happen under mu with closed.
	queue  chan *Job
	closed bool //cadyvet:guardedby mu

	wg sync.WaitGroup

	// testHold, when non-nil, makes every worker receive once from it
	// before starting a job — lets tests fill the queue deterministically.
	testHold chan struct{}
	// testStep, when non-nil, is called at every step boundary of every
	// run job — lets tests cancel or drain at an exact boundary. Set it
	// before the first Submit (the queue send orders it for workers).
	testStep func(j *Job, done int)
}

// New builds the service, recovers any persisted jobs from cfg.Dir and
// starts the worker pool.
//
//cadyvet:component
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	model := cfg.Model
	if model.ComputeRate == 0 {
		model = comm.TianheLike()
	}
	planner := cfg.Planner
	if planner == nil {
		planner = &tune.Planner{
			Profile:    tune.ProfileFromModel(model),
			TopK:       2,
			PilotSteps: 1,
		}
		if cfg.Dir != "" {
			planner.Cache = tune.NewCache(filepath.Join(cfg.Dir, "plans"))
		}
	}
	chaos := cfg.Chaos
	if chaos != nil {
		if err := chaos.Validate(0); err != nil {
			return nil, err
		}
		if chaos.Empty() {
			chaos = nil
		}
	}
	s := &Server{
		cfg:     cfg,
		model:   model,
		planner: planner,
		restart: cfg.Restart.normalize(),
		chaos:   chaos,
		shared:  cfg.Shared,
		jobs:    make(map[string]*Job),
		queue:   make(chan *Job, cfg.QueueCap),
		start:   time.Now(),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.routes()
	if cfg.Dir != "" {
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Submit validates, registers and enqueues a job. The queue is the
// admission control: a full queue rejects the submission outright
// (ErrQueueFull) rather than keeping an unbounded backlog.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if s.baseCtx.Err() != nil {
		return nil, ErrDraining
	}
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.seq++
	j := &Job{
		ID:        fmt.Sprintf("j-%06d", s.seq),
		Spec:      spec,
		state:     JQueued,
		submitted: time.Now(),
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.met.rejected.Add(1)
		return nil, ErrQueueFull
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()
	s.met.submitted.Add(1)
	s.persistSpec(j)
	s.persistMeta(j)
	return j, nil
}

// Get returns a job by ID.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List returns all jobs in submission order.
func (s *Server) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel requests a job stop. A queued job is cancelled in place; a running
// job is stopped cooperatively at its next step boundary (where it is
// checkpointed). Terminal jobs return an error.
func (s *Server) Cancel(id string) error {
	j, ok := s.Get(id)
	if !ok {
		return fmt.Errorf("server: no job %s", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case JQueued:
		j.state = JCancelled
		j.resumable = true
		j.finished = time.Now()
		s.met.cancelled.Add(1)
		s.persistMetaLocked(j)
		return nil
	case JRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
		return nil
	case JRetrying:
		// Stop the pending restart; the job keeps its checkpoint.
		if j.retryTimer != nil {
			j.retryTimer.Stop()
			j.retryTimer = nil
		}
		j.state = JCancelled
		j.resumable = true
		j.finished = time.Now()
		s.met.cancelled.Add(1)
		s.persistMetaLocked(j)
		return nil
	default:
		return fmt.Errorf("server: job %s is %s, not cancellable", id, j.state)
	}
}

// Resume re-enqueues a stopped job. Execution restarts from the latest
// checkpoint when one exists (baseline restarts are bitwise-exact; the
// default comm-avoiding integrator reconverges its lagged Ĉ cache, see
// DESIGN.md), from the initial condition otherwise.
func (s *Server) Resume(id string) (*Job, error) {
	j, ok := s.Get(id)
	if !ok {
		return nil, fmt.Errorf("server: no job %s", id)
	}
	if s.baseCtx.Err() != nil {
		return nil, ErrDraining
	}
	j.mu.Lock()
	if !j.state.terminal() {
		st := j.state
		j.mu.Unlock()
		return nil, fmt.Errorf("server: job %s is %s, not resumable", id, st)
	}
	if j.state == JCompleted {
		j.mu.Unlock()
		return nil, fmt.Errorf("server: job %s already completed", id)
	}
	if j.Spec.Kind != "run" {
		j.mu.Unlock()
		return nil, fmt.Errorf("server: %s jobs are not resumable", j.Spec.Kind)
	}
	prev := j.state
	j.state = JQueued
	j.errMsg = ""
	j.cancelRequested = false
	j.finished = time.Time{}
	j.mu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		j.mu.Lock()
		j.state = prev
		j.mu.Unlock()
		return nil, ErrDraining
	}
	select {
	case s.queue <- j:
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		j.mu.Lock()
		j.state = prev
		j.mu.Unlock()
		s.met.rejected.Add(1)
		return nil, ErrQueueFull
	}
	s.met.resumed.Add(1)
	s.persistMeta(j)
	return j, nil
}

// Shutdown drains the service: no new submissions are accepted, running
// jobs are stopped at their next step boundary and checkpointed (state
// "interrupted", resumable), still-queued jobs stay "queued" with their
// specs persisted. It returns when the workers have exited or ctx expires.
//
//cadyvet:component
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.baseCancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	// Jobs parked in a restart backoff cannot restart on a drained server:
	// surface them as interrupted (resumable), like running jobs that were
	// stopped. Then persist the final metadata of everything still queued.
	for _, j := range s.List() {
		j.mu.Lock()
		if j.state == JRetrying {
			if j.retryTimer != nil {
				j.retryTimer.Stop()
				j.retryTimer = nil
			}
			j.state = JInterrupted
			j.resumable = true
			j.finished = time.Now()
			s.met.interrupted.Add(1)
		}
		j.mu.Unlock()
		s.persistMeta(j)
	}
	return nil
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.baseCtx.Err() != nil }

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		if s.testHold != nil {
			<-s.testHold
		}
		j.mu.Lock()
		if j.state != JQueued {
			// Cancelled while queued.
			j.mu.Unlock()
			continue
		}
		if s.baseCtx.Err() != nil {
			// Draining: leave the job queued (its spec and metadata are
			// persisted) for a later service instance to resume.
			j.mu.Unlock()
			continue
		}
		j.state = JRunning
		j.started = time.Now()
		j.attempts++
		j.mu.Unlock()
		s.met.busy.Add(1)
		s.runJob(j)
		s.met.busy.Add(-1)
		s.persistMeta(j)
	}
}

// runJob executes one job segment, translating run outcomes to job states.
func (s *Server) runJob(j *Job) {
	var ctx context.Context
	var cancel context.CancelFunc
	if j.Spec.DeadlineSec > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(j.Spec.DeadlineSec*float64(time.Second)))
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	defer cancel()
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			j.mu.Lock()
			j.state = JFailed
			j.errMsg = fmt.Sprintf("panic: %v", r)
			j.resumable = j.snap != nil
			j.finished = time.Now()
			j.cancel = nil
			j.mu.Unlock()
			s.met.failed.Add(1)
		}
	}()

	if j.Spec.Kind == "figures" {
		s.runFigures(j)
		return
	}

	g := grid.New(j.Spec.Nx, j.Spec.Ny, j.Spec.Nz)
	var set dycore.Setup
	var ctl *balance.Controller
	if j.Spec.autoLayout() {
		plan, err := s.planJob(j, g)
		if err != nil {
			j.mu.Lock()
			j.state = JFailed
			j.errMsg = err.Error()
			j.resumable = false
			j.finished = time.Now()
			j.cancel = nil
			j.mu.Unlock()
			s.met.failed.Add(1)
			return
		}
		set = plan.Setup(j.Spec.config())
		if j.Spec.Rebalance != nil {
			// The controller starts from the job's current plan — the
			// autotuner's choice, or the migrated layout of a resumed job
			// (setPlan records migrations, so checkpoints stay coherent).
			ctl, err = balance.NewController(*j.Spec.Rebalance, g, j.Spec.config(),
				s.planner.Profile, j.Spec.Steps, plan.Candidate())
			if err != nil {
				j.mu.Lock()
				j.state = JFailed
				j.errMsg = fmt.Sprintf("rebalance: %v", err)
				j.resumable = false
				j.finished = time.Now()
				j.cancel = nil
				j.mu.Unlock()
				s.met.failed.Add(1)
				return
			}
		}
	} else {
		set = j.Spec.setup()
	}

	var hook dycore.StepHook
	if j.Spec.heldSuarez() {
		hs := heldsuarez.Standard()
		dt2 := j.Spec.Dt2
		hook = func(g *grid.Grid, st *state.State, step int) { hs.Apply(g, st, dt2) }
	}

	init := dycore.InitFunc(heldsuarez.InitialState)
	snap, segBase := j.latestSnapshot()
	if snap == nil {
		// No local checkpoint: a shared-store snapshot means another backend
		// ran (part of) this job before it was migrated here — adopt it.
		if gl, step := s.sharedSnapshot(j); gl != nil {
			snap, segBase = gl, step
			j.mu.Lock()
			j.ckptStep = step
			j.snap = gl
			j.stepsDone = step
			j.mu.Unlock()
			s.met.sharedResumes.Add(1)
		}
	}
	if snap != nil {
		init = snap.InitFunc()
	} else {
		segBase = 0
		if j.Spec.PerturbAmp > 0 {
			// Fresh start of an ensemble member: perturb the initial state.
			init = perturbInit(init, j.Spec.PerturbSeed, j.Spec.PerturbAmp)
		}
	}
	if j.Spec.Steps-segBase <= 0 {
		j.mu.Lock()
		j.state = JCompleted
		j.finished = time.Now()
		j.cancel = nil
		j.mu.Unlock()
		s.met.completed.Add(1)
		return
	}

	// Segment loop: one iteration per layout. Without rebalancing it runs
	// once; an in-flight migration quiesces the run at a step boundary,
	// restores the stop checkpoint into the re-planned layout and loops.
	resume := snap != nil
	var lastDec, lastSkip int64
	for {
		segStart := segBase
		remaining := j.Spec.Steps - segStart
		opts := dycore.RunOpts{
			Hook: hook,
			// A checkpointed state is mid-trajectory: it still owes the
			// comm-avoiding scheme's deferred smoothing (see dycore.ResumeSetter).
			Resume: resume,
			Progress: func(done int) {
				j.mu.Lock()
				j.stepsDone = segStart + done
				j.mu.Unlock()
				s.met.steps.Add(1)
				if s.testStep != nil {
					s.testStep(j, segStart+done)
				}
			},
			ShouldStop:    func() bool { return ctx.Err() != nil },
			SnapshotEvery: j.Spec.CheckpointEvery,
			Snapshot: func(done int, sts []*state.State) {
				gl := checkpoint.Gather(g, sts)
				j.setSnapshot(segStart+done, gl)
				s.met.snapshots.Add(1)
				s.persistSnap(j, gl)
				s.shareSnap(j, segStart+done, gl)
			},
		}
		if ctl != nil {
			set = ctl.Setup()
			opts.Rebalance = ctl.Hook(segStart)
		}
		if s.chaos != nil {
			inj := j.ensureChaos(s.chaos)
			opts.Faults = inj.CommFaults(set.Procs())
			opts.CrashAt = inj.CrashFunc(segStart)
		}
		res, _ := dycore.RunWithOpts(set, g, s.model, init, remaining, opts)
		s.met.observeRun(res)
		if ctl != nil {
			// The controller's counters are cumulative; export the deltas.
			st := ctl.Snapshot()
			s.met.rebalanceDecisions.Add(st.Decisions - lastDec)
			s.met.rebalanceSkipped.Add(st.Skipped - lastSkip)
			lastDec, lastSkip = st.Decisions, st.Skipped
		}

		if res.Abort != nil {
			s.handleAbort(j, res)
			return
		}

		j.mu.Lock()
		j.cancel = nil
		j.stepsDone = segStart + res.StepsDone
		j.agg = comm.MergeAggregate(j.agg, res.Agg)
		j.count = mergeCounters(j.count, res.Count)
		j.finished = time.Now()
		if res.StepsDone < remaining {
			// Stopped at a boundary; the stop-triggered Snapshot already
			// recorded the checkpoint at exactly j.stepsDone.
			if ctl != nil && ctx.Err() == nil {
				// Not a cancel, drain or deadline: the rebalance hook stopped
				// the run, so a re-planned layout is staged. Commit it and
				// continue from the quiesce checkpoint in the new layout.
				if plan, mig := ctl.TakePending(); plan != nil {
					gl, step := j.snap, j.ckptStep
					if gl != nil && step == j.stepsDone {
						p := *plan
						j.plan = &p
						j.agg.SimTime += tune.MigrationCost(g, set.Procs(), ctl.Profile())
						j.migrations = append(j.migrations, mig)
						j.state = JRunning
						j.finished = time.Time{}
						j.cancel = cancel
						s.persistMetaLocked(j)
						j.mu.Unlock()
						s.met.rebalanceMigrations.Add(1)
						segBase = step
						init = gl.InitFunc()
						resume = true
						continue
					}
					// No coherent quiesce checkpoint (snapshot persistence is
					// the only writer, so this is a bug guard, not a race):
					// fall through to the interrupted classification below —
					// the job stays resumable in its previous layout.
				}
			}
			j.resumable = true
			switch {
			case j.cancelRequested:
				j.state = JCancelled
				s.met.cancelled.Add(1)
			case errors.Is(ctx.Err(), context.DeadlineExceeded):
				j.state = JFailed
				j.errMsg = "deadline exceeded"
				s.met.failed.Add(1)
			default:
				j.state = JInterrupted
				s.met.interrupted.Add(1)
			}
			j.mu.Unlock()
			return
		}
		// Ran to completion: record diagnostics and the final state as the
		// job's last checkpoint.
		j.state = JCompleted
		j.errMsg = "" // clear the abort message of a recovered crash
		j.resumable = false
		j.diags = diagnostics(g, res.Finals)
		final := checkpoint.Gather(g, res.Finals)
		j.snap = final
		j.ckptStep = j.stepsDone
		s.met.completed.Add(1)
		s.persistSnapLocked(j, final)
		s.shareSnapLocked(j, j.stepsDone, final)
		j.mu.Unlock()
		return
	}
}

// sharedSnapshot loads the newest shared-store snapshot of a job keyed for
// dual-write, skipping snapshots whose mesh does not match (a reused key).
func (s *Server) sharedSnapshot(j *Job) (*checkpoint.Global, int) {
	if s.shared == nil || j.Spec.SharedKey == "" || j.Spec.Kind != "run" {
		return nil, 0
	}
	gl, step, err := s.shared.Latest(j.Spec.SharedKey)
	if err != nil || gl == nil {
		return nil, 0
	}
	if gl.Nx != j.Spec.Nx || gl.Ny != j.Spec.Ny || gl.Nz != j.Spec.Nz {
		return nil, 0
	}
	if step > j.Spec.Steps {
		return nil, 0
	}
	return gl, step
}

// handleAbort translates an injected rank death into the restart policy:
// unless a cancel or drain intervened or the restart budget is exhausted,
// the job enters "retrying" and an exponential-backoff timer re-enqueues it
// to resume from its latest checkpoint.
func (s *Server) handleAbort(j *Job, res dycore.RunResult) {
	s.met.rankFailures.Add(1)
	limit := s.restart.MaxRestarts
	if j.Spec.MaxRestarts != nil {
		limit = *j.Spec.MaxRestarts
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel = nil
	j.agg = comm.MergeAggregate(j.agg, res.Agg)
	j.errMsg = res.Abort.Error()
	j.resumable = true
	switch {
	case j.cancelRequested:
		j.state = JCancelled
		j.finished = time.Now()
		s.met.cancelled.Add(1)
	case s.baseCtx.Err() != nil:
		// Draining: no restart timer can run to completion; leave the job
		// resumable for the next service instance.
		j.state = JInterrupted
		j.finished = time.Now()
		s.met.interrupted.Add(1)
	case j.restarts >= limit:
		j.state = JFailed
		j.errMsg = fmt.Sprintf("%s (restart budget %d exhausted)", res.Abort.Error(), limit)
		j.finished = time.Now()
		s.met.failed.Add(1)
	default:
		j.restarts++
		j.state = JRetrying
		j.retryTimer = time.AfterFunc(s.restart.delay(j.restarts), func() { s.requeueRetry(j) })
		s.met.restarts.Add(1)
	}
	s.persistMetaLocked(j)
}

// requeueRetry moves a retrying job back into the admission queue when its
// backoff expires. A full queue re-arms the timer instead of dropping the
// job; a drained or closed server surfaces it as interrupted (resumable).
func (s *Server) requeueRetry(j *Job) {
	s.mu.Lock()
	closed := s.closed || s.baseCtx.Err() != nil
	if closed {
		s.mu.Unlock()
		j.mu.Lock()
		if j.state == JRetrying {
			j.retryTimer = nil
			j.state = JInterrupted
			j.resumable = true
			j.finished = time.Now()
			s.met.interrupted.Add(1)
			s.persistMetaLocked(j)
		}
		j.mu.Unlock()
		return
	}
	j.mu.Lock()
	if j.state != JRetrying {
		// Cancelled while backing off.
		j.mu.Unlock()
		s.mu.Unlock()
		return
	}
	j.retryTimer = nil
	select {
	case s.queue <- j:
		j.state = JQueued
		j.mu.Unlock()
		s.mu.Unlock()
	default:
		j.retryTimer = time.AfterFunc(s.restart.Backoff, func() { s.requeueRetry(j) })
		j.mu.Unlock()
		s.mu.Unlock()
	}
}

// runFigures executes a figures job: the harness sweep with the shared
// memoized cache. Sweeps are not checkpointable; they run to completion.
func (s *Server) runFigures(j *Job) {
	o := harness.Defaults()
	o.Nx, o.Ny, o.Nz = j.Spec.Nx, j.Spec.Ny, j.Spec.Nz
	o.M = j.Spec.M
	o.Steps = j.Spec.Steps
	o.Dt1, o.Dt2 = j.Spec.Dt1, j.Spec.Dt2
	o.Ps = harness.SortedPs(j.Spec.Ps)
	o.Model = s.model
	figs := harness.AllFigures(o)
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel = nil
	j.figures = make([]string, 0, len(figs))
	for _, f := range figs {
		j.figures = append(j.figures, f.Format())
	}
	j.stepsDone = j.Spec.Steps
	j.state = JCompleted
	j.finished = time.Now()
	s.met.completed.Add(1)
}

// planJob resolves the layout of an auto job: reuse the plan recorded by an
// earlier segment (so resumes keep their decomposition and checkpoints stay
// coherent), otherwise consult the planner and re-validate its choice
// through the same Normalize gate explicit submissions pass.
func (s *Server) planJob(j *Job, g *grid.Grid) (tune.Plan, error) {
	if p := j.getPlan(); p != nil {
		return *p, nil
	}
	plan, err := s.planner.Plan(g, j.Spec.Procs, j.Spec.config())
	if err != nil {
		return tune.Plan{}, fmt.Errorf("autotune: %w", err)
	}
	if err := validatePlanned(j.Spec, plan); err != nil {
		return tune.Plan{}, fmt.Errorf("autotune: planned layout %s invalid: %w", plan, err)
	}
	j.setPlan(plan)
	s.persistMeta(j)
	return plan, nil
}

// validatePlanned runs the planner's choice through the explicit-layout
// validation path (the reject-on-infeasible gate).
func validatePlanned(sp JobSpec, p tune.Plan) error {
	v := sp
	v.Layout = "explicit"
	v.Procs = 0
	v.Alg = string(p.Scheme)
	v.PA, v.PB, v.PC = p.PA, p.PB, 0
	v.M = p.M
	v.StageM = 0
	if p.Scheme == tune.SchemeCA {
		v.StageM = p.Stage
	}
	v.SpectralSmooth = p.Spectral
	// The explicit-layout gate rejects rebalance (a pinned layout must not
	// migrate); the planned spec is only borrowing that gate for feasibility.
	v.Rebalance = nil
	return v.Normalize()
}

// --- persistence -----------------------------------------------------------
//
// Layout under cfg.Dir: <id>/spec.json, <id>/meta.json, <id>/snap.ck.
// Writes are temp-file + fsync + rename + parent-dir fsync so a crash at any
// point leaves either the old or the new file, never a torn or lost one; the
// checkpoint format's own CRC64 catches anything else. Failures are no
// longer swallowed: they surface in the job status (persist_error) and the
// cady_persist_errors_total counter.

type jobMeta struct {
	State      JState              `json:"state"`
	StepsDone  int                 `json:"steps_done"`
	CkptStep   int                 `json:"checkpoint_step"`
	Resumable  bool                `json:"resumable"`
	Error      string              `json:"error,omitempty"`
	Attempts   int                 `json:"attempts"`
	Restarts   int                 `json:"restarts,omitempty"`
	Plan       *tune.Plan          `json:"plan,omitempty"`
	Migrations []balance.Migration `json:"migrations,omitempty"`
}

func (s *Server) jobDir(j *Job) string { return filepath.Join(s.cfg.Dir, j.ID) }

// notePersist records the outcome of a durable write on the job (which must
// be locked) and in the service metrics.
//
//cadyvet:locked j.mu
func (s *Server) notePersist(j *Job, err error) {
	if err != nil {
		j.persistErr = err.Error()
		s.met.persistErrors.Add(1)
	} else {
		j.persistErr = ""
	}
}

func (s *Server) persistSpec(j *Job) {
	if s.cfg.Dir == "" {
		return
	}
	dir := s.jobDir(j)
	err := os.MkdirAll(dir, 0o755)
	if err == nil {
		b, _ := json.MarshalIndent(j.Spec, "", "  ")
		err = writeFileAtomic(filepath.Join(dir, "spec.json"), b)
	}
	if err != nil {
		j.mu.Lock()
		s.notePersist(j, err)
		j.mu.Unlock()
	}
}

func (s *Server) persistMeta(j *Job) {
	j.mu.Lock()
	defer j.mu.Unlock()
	s.persistMetaLocked(j)
}

//cadyvet:locked j.mu
func (s *Server) persistMetaLocked(j *Job) {
	if s.cfg.Dir == "" {
		return
	}
	m := jobMeta{
		State:      j.state,
		StepsDone:  j.stepsDone,
		CkptStep:   j.ckptStep,
		Resumable:  j.resumable,
		Error:      j.errMsg,
		Attempts:   j.attempts,
		Restarts:   j.restarts,
		Plan:       j.plan,
		Migrations: j.migrations,
	}
	b, _ := json.MarshalIndent(m, "", "  ")
	if err := writeFileAtomic(filepath.Join(s.jobDir(j), "meta.json"), b); err != nil {
		s.notePersist(j, err)
	}
}

func (s *Server) persistSnap(j *Job, gl *checkpoint.Global) {
	if s.cfg.Dir == "" {
		return
	}
	err := writeSnapFile(filepath.Join(s.jobDir(j), "snap.ck"), gl)
	j.mu.Lock()
	defer j.mu.Unlock()
	s.notePersist(j, err)
	s.persistMetaLocked(j)
}

//cadyvet:locked j.mu
func (s *Server) persistSnapLocked(j *Job, gl *checkpoint.Global) {
	if s.cfg.Dir == "" {
		return
	}
	s.notePersist(j, writeSnapFile(filepath.Join(s.jobDir(j), "snap.ck"), gl))
	s.persistMetaLocked(j)
}

// shareSnap dual-writes a checkpoint into the shared artifact store under
// the job's shared_key, stamped with its global step boundary.
func (s *Server) shareSnap(j *Job, step int, gl *checkpoint.Global) {
	if s.shared == nil || j.Spec.SharedKey == "" {
		return
	}
	err := s.shared.Put(j.Spec.SharedKey, step, gl)
	j.mu.Lock()
	s.notePersist(j, err)
	j.mu.Unlock()
	if err == nil {
		s.met.sharedPuts.Add(1)
	}
}

// shareSnapLocked is shareSnap for callers already holding the job lock.
//
//cadyvet:locked j.mu
func (s *Server) shareSnapLocked(j *Job, step int, gl *checkpoint.Global) {
	if s.shared == nil || j.Spec.SharedKey == "" {
		return
	}
	err := s.shared.Put(j.Spec.SharedKey, step, gl)
	s.notePersist(j, err)
	if err == nil {
		s.met.sharedPuts.Add(1)
	}
}

// writeSnapFile durably writes one checkpoint (checkpoint.WriteAtomic: temp
// file, fsync, rename, parent-dir fsync). The temp file lives in the
// destination directory (a cross-device rename would not be atomic); a
// process death between create and rename can strand it, which is why
// recover() sweeps *.tmp before trusting a job directory.
func writeSnapFile(path string, gl *checkpoint.Global) error {
	return checkpoint.WriteAtomic(path, gl)
}

// writeFileAtomic durably replaces path with b (same protocol).
func writeFileAtomic(path string, b []byte) error {
	return checkpoint.WriteFileAtomic(path, b)
}

// recover re-registers persisted jobs from cfg.Dir. Jobs that were queued,
// running or interrupted when the previous process died come back as
// resumable "interrupted" jobs; completed and terminal jobs keep their
// state. The latest checkpoint, when present and valid, is reloaded.
//
//cadyvet:unshared recovery runs from New before the worker pool or any handler exists; s and every recovered Job are still private to the constructor
func (s *Server) recover() error {
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		if os.IsNotExist(err) {
			return os.MkdirAll(s.cfg.Dir, 0o755)
		}
		return err
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "j-") {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		dir := filepath.Join(s.cfg.Dir, id)
		// A crash between temp write and rename leaves a stale *.tmp next to
		// the last complete file. It is never valid state (the rename is the
		// commit point): remove it so nothing can ever load it.
		if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) > 0 {
			for _, t := range tmps {
				os.Remove(t)
			}
		}
		specB, err := os.ReadFile(filepath.Join(dir, "spec.json"))
		if err != nil {
			continue
		}
		var spec JobSpec
		if json.Unmarshal(specB, &spec) != nil || spec.Normalize() != nil {
			continue
		}
		j := &Job{ID: id, Spec: spec, state: JQueued, submitted: time.Now()}
		if metaB, err := os.ReadFile(filepath.Join(dir, "meta.json")); err == nil {
			var m jobMeta
			if json.Unmarshal(metaB, &m) == nil {
				j.state = m.State
				j.stepsDone = m.StepsDone
				j.ckptStep = m.CkptStep
				j.resumable = m.Resumable
				j.errMsg = m.Error
				j.attempts = m.Attempts
				j.restarts = m.Restarts
				j.plan = m.Plan
				j.migrations = m.Migrations
			}
		}
		if f, err := os.Open(filepath.Join(dir, "snap.ck")); err == nil {
			if gl, err := checkpoint.Read(f); err == nil {
				j.snap = gl
			}
			f.Close()
		}
		// A job that was mid-flight (or parked in a restart backoff) when
		// the process died cannot still be running; surface it as
		// interrupted and resumable.
		if j.state == JQueued || j.state == JRunning || j.state == JRetrying {
			j.state = JInterrupted
			j.resumable = true
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "j-")); err == nil && n > s.seq {
			s.seq = n
		}
		s.jobs[id] = j
		s.order = append(s.order, id)
	}
	return nil
}
