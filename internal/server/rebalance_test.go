package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"cadycore/internal/balance"
	"cadycore/internal/fault"
)

func TestRebalanceSpecValidation(t *testing.T) {
	auto := func(pol *balance.Policy) JobSpec {
		return JobSpec{
			Layout: "auto", Procs: 4,
			Nx: 32, Ny: 16, Nz: 4, M: 2, Steps: 4,
			Rebalance: pol,
		}
	}
	valid := map[string]JobSpec{
		"zero policy":     auto(&balance.Policy{}),
		"explicit policy": auto(&balance.Policy{Window: 4, Threshold: 2, Patience: 1}),
		"no policy":       auto(nil),
	}
	for name, spec := range valid {
		if err := spec.Normalize(); err != nil {
			t.Errorf("%s: Normalize() = %v, want nil", name, err)
		}
	}

	explicit := smallSpec(4)
	explicit.Rebalance = &balance.Policy{}
	figures := JobSpec{Kind: "figures", Rebalance: &balance.Policy{}}
	invalid := map[string]struct {
		spec JobSpec
		want string
	}{
		"explicit layout": {explicit, "layout"},
		"figures job":     {figures, "run jobs"},
		"bad threshold":   {auto(&balance.Policy{Threshold: 0.5}), "threshold"},
		"bad window":      {auto(&balance.Policy{Window: -1}), "window"},
		"bad patience":    {auto(&balance.Policy{Patience: -1}), "patience"},
		"bad smoothing":   {auto(&balance.Policy{Smoothing: 2}), "smoothing"},
	}
	for name, tc := range invalid {
		err := tc.spec.Normalize()
		if err == nil {
			t.Errorf("%s: Normalize() = nil, want error", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.want)
		}
	}
}

// TestRebalanceJobMigrates is the service-level rebalance soak: a chaos
// straggler slows one rank 10x, and an auto-layout job with the rebalancing
// policy enabled must detect it, migrate at least once, surface the
// migration log and the updated plan in its status, and bump the /metrics
// rebalance counters.
func TestRebalanceJobMigrates(t *testing.T) {
	chaos := &fault.Plan{Seed: 1, Stragglers: []fault.Straggler{{Rank: 3, Scale: 10}}}
	s := newTestServer(t, Config{Workers: 1, QueueCap: 4, Chaos: chaos})
	ts := httptest.NewServer(s)
	defer ts.Close()

	spec := JobSpec{
		Layout: "auto", Procs: 4,
		Nx: 48, Ny: 24, Nz: 8, M: 2, Steps: 24,
		Rebalance: &balance.Policy{Window: 4, Patience: 1, Cooldown: 1},
	}
	resp := postJSON(t, ts, "/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	st := decodeStatus(t, resp)
	final := waitState(t, s, st.ID, JCompleted)

	if final.StepsDone != 24 {
		t.Errorf("steps done = %d, want 24", final.StepsDone)
	}
	if len(final.Migrations) < 1 {
		t.Fatalf("no migrations executed under a 10x straggler; status %+v", final)
	}
	last := final.Migrations[len(final.Migrations)-1]
	if last.To == last.From {
		t.Errorf("migration %+v did not change the layout", last)
	}
	if final.Plan == nil {
		t.Fatal("completed rebalanced job has no plan in its status")
	}
	if key := final.Plan.Candidate().Key(); key != last.To {
		t.Errorf("final plan %q != last migration target %q", key, last.To)
	}
	for _, mg := range final.Migrations {
		if mg.PredictedGain <= mg.Cost {
			t.Errorf("migration %+v accepted without clearing the cost gate", mg)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"cady_rebalance_decisions_total",
		"cady_rebalance_migrations_total " + strconv.Itoa(len(final.Migrations)),
		"cady_plan_info{job=\"" + final.ID + "\",plan=\"" + last.To + "\"} 1",
		"cady_comp_imbalance",
		"cady_rank_comp_seconds_total{rank=\"3\"}",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestRebalanceQuietJobDoesNotMigrate: without a straggler the same policy
// must leave the plan alone.
func TestRebalanceQuietJobDoesNotMigrate(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	spec := JobSpec{
		Layout: "auto", Procs: 4,
		Nx: 48, Ny: 24, Nz: 8, M: 2, Steps: 8,
		Rebalance: &balance.Policy{Window: 4, Patience: 1, Cooldown: 1},
	}
	st := decodeStatus(t, postJSON(t, ts, "/jobs", spec))
	final := waitState(t, s, st.ID, JCompleted)
	if len(final.Migrations) != 0 {
		t.Errorf("quiet job migrated: %+v", final.Migrations)
	}
	if final.StepsDone != 8 {
		t.Errorf("steps done = %d, want 8", final.StepsDone)
	}
}
