// Package testutil holds small helpers shared by the module's test suites.
// It is imported only from _test.go files and must stay stdlib-only.
package testutil

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// VerifyNoLeaks snapshots the goroutines alive when called and registers a
// cleanup that fails the test if goroutines started afterwards are still
// alive when the test ends. Shutdown is asynchronous almost everywhere
// (worker pools drain, probe loops notice a closed channel), so the cleanup
// polls the live set for a grace period before declaring a leak rather than
// failing on the first look.
//
// Call it first thing in a test, before the component under test starts:
//
//	func TestHeavy(t *testing.T) {
//		testutil.VerifyNoLeaks(t)
//		...
//	}
//
// Cleanups run in reverse order, so the component's own t.Cleanup shutdown
// hooks run before the leak check.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	before := liveGoroutines()
	t.Cleanup(func() {
		const grace = 5 * time.Second
		deadline := time.Now().Add(grace)
		var leaked []goroutine
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%d goroutine(s) started by the test still alive %v after it ended:", len(leaked), grace)
		for _, g := range leaked {
			fmt.Fprintf(&b, "\n\ngoroutine %d [%s]:\n%s", g.id, g.state, g.stack)
		}
		t.Error(b.String())
	})
}

// goroutine is one parsed entry of a full runtime.Stack dump.
type goroutine struct {
	id    int
	state string
	stack string
}

// leakedSince returns the goroutines alive now that were not alive at the
// snapshot and are not benign runtime/testing machinery.
func leakedSince(before map[int]bool) []goroutine {
	var leaked []goroutine
	for _, g := range parseStacks() {
		if before[g.id] || benign(g) {
			continue
		}
		leaked = append(leaked, g)
	}
	sort.Slice(leaked, func(i, j int) bool { return leaked[i].id < leaked[j].id })
	return leaked
}

// benign reports goroutines that belong to the runtime or the testing
// harness rather than to the code under test.
func benign(g goroutine) bool {
	for _, frame := range []string{
		"testing.(*T).Run",            // parent test blocked on a subtest
		"testing.(*F).Fuzz",           // fuzz driver
		"testing.runFuzzing",          // fuzz worker coordination
		"testing.tRunner.func1",       // cleanup in flight
		"runtime.gc",                  // background collector
		"runtime.bgsweep",             // background sweeper
		"runtime.bgscavenge",          // background scavenger
		"runtime.forcegchelper",       // periodic GC helper
		"os/signal.signal_recv",       // signal dispatch (signal.Notify in main)
		"runtime/pprof.profileWriter", // -cpuprofile writer
	} {
		if strings.Contains(g.stack, frame) {
			return true
		}
	}
	return false
}

func liveGoroutines() map[int]bool {
	ids := make(map[int]bool)
	for _, g := range parseStacks() {
		ids[g.id] = true
	}
	return ids
}

// parseStacks splits a full runtime.Stack dump into per-goroutine records.
// Headers look like "goroutine 7 [chan receive]:".
func parseStacks() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var gs []goroutine
	for _, block := range strings.Split(string(buf), "\n\n") {
		header, rest, ok := strings.Cut(block, "\n")
		if !ok || !strings.HasPrefix(header, "goroutine ") {
			continue
		}
		fields := strings.SplitN(strings.TrimPrefix(header, "goroutine "), " ", 2)
		var id int
		if _, err := fmt.Sscanf(fields[0], "%d", &id); err != nil {
			continue
		}
		state := ""
		if len(fields) == 2 {
			state = strings.Trim(fields[1], "[]:")
		}
		gs = append(gs, goroutine{id: id, state: state, stack: rest})
	}
	return gs
}
