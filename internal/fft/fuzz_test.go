package fft

import (
	"math"
	"testing"
)

// FuzzRealPlanRoundTrip fuzzes the half-spectrum real transform over random
// lengths and data: Inverse∘Forward must reproduce the signal to ≤1e-12
// (scaled by n and the signal magnitude). The corpus seeds the audited edge
// cases — n = 1 (the degenerate full-complex plan), n = 2 (the smallest
// even split, whose half plan has length 1), odd lengths (the full-complex
// fallback) and even non-powers-of-two — so the audit stays pinned.
func FuzzRealPlanRoundTrip(f *testing.F) {
	f.Add(uint16(1), int64(1))
	f.Add(uint16(2), int64(2))
	f.Add(uint16(3), int64(3))
	f.Add(uint16(5), int64(4))
	f.Add(uint16(6), int64(5))
	f.Add(uint16(15), int64(6))
	f.Add(uint16(96), int64(7))
	f.Add(uint16(97), int64(8))
	f.Add(uint16(720), int64(9))
	f.Fuzz(func(t *testing.T, nRaw uint16, seed int64) {
		n := int(nRaw)%1024 + 1
		p := NewRealPlan(n)
		if got := p.SpecLen(); got != n/2+1 {
			t.Fatalf("n=%d: SpecLen = %d, want %d", n, got, n/2+1)
		}
		// Deterministic pseudo-random data from the seed (xorshift), scaled
		// into a range that exercises both large and small magnitudes.
		s := uint64(seed)*2685821657736338717 + 1
		next := func() float64 {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return float64(int64(s)) / float64(math.MaxInt64) * 100
		}
		src := make([]float64, n)
		for i := range src {
			src[i] = next()
		}
		spec := make([]complex128, p.SpecLen())
		scratch := make([]complex128, p.ScratchLen())
		dst := make([]float64, n)
		p.Forward(src, spec, scratch)
		p.Inverse(spec, dst, scratch)
		scale := 0.0
		for _, v := range src {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		tol := 1e-12 * float64(n) * (1 + scale)
		for i := range src {
			if d := math.Abs(dst[i] - src[i]); d > tol {
				t.Fatalf("n=%d i=%d: round trip error %g > %g (src %g, dst %g)",
					n, i, d, tol, src[i], dst[i])
			}
		}
		// The imaginary parts of the DC and (even n) Nyquist bins must
		// vanish for real input — the invariant the smoothing symbol
		// multiply relies on when it scales bins by real factors.
		if im := imag(spec[0]); im != 0 {
			t.Fatalf("n=%d: DC bin has imaginary part %g", n, im)
		}
		if n%2 == 0 {
			if im := imag(spec[n/2]); im != 0 {
				t.Fatalf("n=%d: Nyquist bin has imaginary part %g", n, im)
			}
		}
	})
}
