package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// RealPlan transforms real signals of length n into the n/2+1 independent
// complex coefficients of their conjugate-symmetric spectrum and back. For
// even n it packs the signal into a half-length complex transform (the
// classic rfft split), roughly halving the arithmetic of the complex path —
// the fast path the polar filter runs on. Odd lengths fall back to the full
// complex transform behind the same interface.
//
// A RealPlan is safe for concurrent use once constructed; per-call state
// lives in the caller-provided scratch buffer (see ScratchLen).
type RealPlan struct {
	n    int
	half *Plan        // even n: complex plan of length n/2
	full *Plan        // odd n fallback: complex plan of length n
	tw   []complex128 // exp(−2πik/n), k = 0 … n/2 (even n only)
}

// NewRealPlan prepares a real transform of length n ≥ 1.
func NewRealPlan(n int) *RealPlan {
	if n < 1 {
		panic(fmt.Sprintf("fft: invalid length %d", n))
	}
	p := &RealPlan{n: n}
	if n%2 == 0 {
		m := n / 2
		p.half = NewPlan(m)
		p.tw = make([]complex128, m+1)
		for k := 0; k <= m; k++ {
			p.tw[k] = cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
		}
		return p
	}
	p.full = NewPlan(n)
	return p
}

// Len returns the signal length.
func (p *RealPlan) Len() int { return p.n }

// SpecLen returns the half-spectrum length n/2 + 1: coefficient k holds
// zonal wavenumber k; the remaining wavenumbers n−k are its conjugates and
// are never stored.
func (p *RealPlan) SpecLen() int { return p.n/2 + 1 }

// ScratchLen returns the complex work-space length Forward and Inverse
// require.
func (p *RealPlan) ScratchLen() int {
	if p.full != nil {
		return p.n + p.full.ScratchLen()
	}
	return p.n/2 + p.half.ScratchLen()
}

func (p *RealPlan) check(src []float64, spec, scratch []complex128) []complex128 {
	if len(src) != p.n {
		panic(fmt.Sprintf("fft: real input length %d != plan length %d", len(src), p.n))
	}
	if len(spec) < p.SpecLen() {
		panic(fmt.Sprintf("fft: spectrum length %d < required %d", len(spec), p.SpecLen()))
	}
	if scratch == nil {
		//cadyvet:allow nil-scratch convenience path for tests and one-off calls; hot callers pass ScratchLen scratch
		scratch = make([]complex128, p.ScratchLen())
	} else if len(scratch) < p.ScratchLen() {
		panic(fmt.Sprintf("fft: scratch length %d < required %d", len(scratch), p.ScratchLen()))
	}
	return scratch
}

// Forward computes spec[k] = Σ_j src[j]·exp(−2πi·jk/n) for k = 0 … n/2.
// scratch must hold ScratchLen() values (nil allocates). src is not
// modified.
//
//cadyvet:allocfree
func (p *RealPlan) Forward(src []float64, spec, scratch []complex128) {
	scratch = p.check(src, spec, scratch)
	if p.full != nil {
		w := scratch[:p.n]
		for i, v := range src {
			w[i] = complex(v, 0)
		}
		p.full.ForwardScratch(w, scratch[p.n:])
		copy(spec, w[:p.SpecLen()])
		// The DC coefficient of a real signal is Σ src — exactly real. The
		// complex fallback leaves rounding dirt in its imaginary part (the
		// even-n split path constructs it exactly real); clear it so
		// consumers that scale bins by real factors (the polar filter, the
		// spectral smoother) see the same invariant on every length.
		spec[0] = complex(real(spec[0]), 0)
		return
	}
	m := p.n / 2
	z := scratch[:m]
	for j := 0; j < m; j++ {
		z[j] = complex(src[2*j], src[2*j+1])
	}
	p.half.ForwardScratch(z, scratch[m:])
	// Split the packed transform: with E/O the spectra of the even/odd
	// subsequences, Z[k] = E[k] + i·O[k], so
	//   E[k] = (Z[k] + conj(Z[m−k]))/2,  O[k] = (Z[k] − conj(Z[m−k]))/(2i),
	// and X[k] = E[k] + w_k·O[k] with w_k = exp(−2πik/n).
	z0 := z[0]
	spec[0] = complex(real(z0)+imag(z0), 0)
	spec[m] = complex(real(z0)-imag(z0), 0)
	for k := 1; k < m; k++ {
		zk := z[k]
		zmk := cmplx.Conj(z[m-k])
		even := complex(0.5, 0) * (zk + zmk)
		odd := complex(0, -0.5) * (zk - zmk)
		spec[k] = even + p.tw[k]*odd
	}
}

// Inverse reconstructs the real signal from its half spectrum (with the 1/n
// normalization, so Inverse∘Forward is the identity). spec is not modified.
//
//cadyvet:allocfree
func (p *RealPlan) Inverse(spec []complex128, dst []float64, scratch []complex128) {
	scratch = p.check(dst, spec, scratch)
	if p.full != nil {
		w := scratch[:p.n]
		w[0] = spec[0]
		for k := 1; k <= p.n/2; k++ {
			w[k] = spec[k]
			w[p.n-k] = cmplx.Conj(spec[k])
		}
		p.full.InverseScratch(w, scratch[p.n:])
		for i := range dst {
			dst[i] = real(w[i])
		}
		return
	}
	m := p.n / 2
	z := scratch[:m]
	// Invert the split: E[k] = (X[k] + conj(X[m−k]))/2,
	// O[k] = conj(w_k)·(X[k] − conj(X[m−k]))/2, Z[k] = E[k] + i·O[k].
	x0, xm := real(spec[0]), real(spec[m])
	z[0] = complex(0.5*(x0+xm), 0.5*(x0-xm))
	for k := 1; k < m; k++ {
		xk := spec[k]
		xmk := cmplx.Conj(spec[m-k])
		even := complex(0.5, 0) * (xk + xmk)
		odd := complex(0.5, 0) * cmplx.Conj(p.tw[k]) * (xk - xmk)
		z[k] = even + odd*complex(0, 1)
	}
	p.half.InverseScratch(z, scratch[m:])
	for j := 0; j < m; j++ {
		dst[2*j] = real(z[j])
		dst[2*j+1] = imag(z[j])
	}
}
