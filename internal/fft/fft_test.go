package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSignal(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 30, 45, 64, 100, 360} {
		p := NewPlan(n)
		x := randomSignal(rng, n)
		want := NaiveDFT(x)
		got := append([]complex128(nil), x...)
		p.Forward(got)
		if d := maxDiff(got, want); d > 1e-8*float64(n) {
			t.Errorf("n=%d: FFT differs from naive DFT by %g", n, d)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 8, 15, 27, 32, 60, 128, 720} {
		p := NewPlan(n)
		x := randomSignal(rng, n)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		if d := maxDiff(x, y); d > 1e-9*float64(n) {
			t.Errorf("n=%d: roundtrip error %g", n, d)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: Inverse∘Forward is the identity for random lengths/signals.
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		p := NewPlan(n)
		x := randomSignal(rng, n)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		return maxDiff(x, y) <= 1e-9*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{16, 33, 100} {
		p := NewPlan(n)
		x := randomSignal(rng, n)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		var ex, ey float64
		for i := 0; i < n; i++ {
			ex += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			ey += real(y[i])*real(y[i]) + imag(y[i])*imag(y[i])
		}
		ey /= float64(n)
		if math.Abs(ex-ey) > 1e-8*ex {
			t.Errorf("n=%d: Parseval violated: %g vs %g", n, ex, ey)
		}
	}
}

func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 48
	p := NewPlan(n)
	x := randomSignal(rng, n)
	y := randomSignal(rng, n)
	// F(2x + 3y)
	comb := make([]complex128, n)
	for i := range comb {
		comb[i] = 2*x[i] + 3*y[i]
	}
	p.Forward(comb)
	fx := append([]complex128(nil), x...)
	fy := append([]complex128(nil), y...)
	p.Forward(fx)
	p.Forward(fy)
	for i := range fx {
		fx[i] = 2*fx[i] + 3*fy[i]
	}
	if d := maxDiff(comb, fx); d > 1e-8*float64(n) {
		t.Errorf("linearity violated by %g", d)
	}
}

func TestRealHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{8, 25, 360} {
		p := NewPlan(n)
		src := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		coef := p.ForwardReal(src, nil)
		// Conjugate symmetry of a real signal's spectrum.
		for k := 1; k < n; k++ {
			if d := cmplx.Abs(coef[k] - cmplx.Conj(coef[n-k])); d > 1e-8 {
				t.Errorf("n=%d k=%d: spectrum not conjugate-symmetric (%g)", n, k, d)
				break
			}
		}
		back := make([]float64, n)
		p.InverseToReal(coef, back)
		for i := range back {
			if math.Abs(back[i]-src[i]) > 1e-9*float64(n) {
				t.Errorf("n=%d: real roundtrip error at %d: %g vs %g", n, i, back[i], src[i])
				break
			}
		}
	}
}

func TestPureToneSpectrum(t *testing.T) {
	// A pure cosine of wavenumber m must put all energy in bins m and n−m.
	n, m := 64, 5
	p := NewPlan(n)
	src := make([]float64, n)
	for i := range src {
		src[i] = math.Cos(2 * math.Pi * float64(m*i) / float64(n))
	}
	coef := p.ForwardReal(src, nil)
	for k := 0; k < n; k++ {
		mag := cmplx.Abs(coef[k])
		if k == m || k == n-m {
			if math.Abs(mag-float64(n)/2) > 1e-8 {
				t.Errorf("bin %d magnitude %g, want %g", k, mag, float64(n)/2)
			}
		} else if mag > 1e-8 {
			t.Errorf("bin %d should be empty, has %g", k, mag)
		}
	}
}

func TestPlanLengthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=0")
		}
	}()
	NewPlan(0)
}

func BenchmarkFFTPow2(b *testing.B) {
	p := NewPlan(1024)
	x := randomSignal(rand.New(rand.NewSource(7)), 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkFFTBluestein720(b *testing.B) {
	// 720 is the paper's zonal extent (50 km mesh): not a power of two.
	p := NewPlan(720)
	x := randomSignal(rand.New(rand.NewSource(8)), 720)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}
