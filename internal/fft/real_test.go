package fft

import (
	"math"
	"math/rand"
	"testing"
)

func randomReal(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// TestRealForwardMatchesComplex pins the half-spectrum forward transform
// against the full complex path to 1e-12 over even, odd, power-of-two and
// Bluestein lengths (96 and 720 are the meshes the filter actually runs).
func TestRealForwardMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 4, 6, 8, 12, 15, 27, 48, 64, 96, 100, 360, 720} {
		rp := NewRealPlan(n)
		cp := NewPlan(n)
		x := randomReal(rng, n)

		want := cp.ForwardReal(x, nil)
		spec := make([]complex128, rp.SpecLen())
		rp.Forward(x, spec, nil)

		for k := 0; k < rp.SpecLen(); k++ {
			if d := cmplxAbs(spec[k] - want[k]); d > 1e-12*float64(n) {
				t.Fatalf("n=%d k=%d: rfft %v vs complex %v (diff %g)", n, k, spec[k], want[k], d)
			}
		}
	}
}

func cmplxAbs(z complex128) float64 {
	return math.Hypot(real(z), imag(z))
}

// TestRealRoundTrip asserts Inverse∘Forward is the identity to 1e-12.
func TestRealRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 2, 3, 4, 6, 8, 12, 15, 27, 48, 64, 96, 100, 360, 720} {
		rp := NewRealPlan(n)
		x := randomReal(rng, n)
		spec := make([]complex128, rp.SpecLen())
		scratch := make([]complex128, rp.ScratchLen())
		got := make([]float64, n)
		rp.Forward(x, spec, scratch)
		rp.Inverse(spec, got, scratch)
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-12*float64(n) {
				t.Fatalf("n=%d i=%d: roundtrip %v vs %v", n, i, got[i], x[i])
			}
		}
	}
}

// TestRealPlanZeroAlloc asserts the scratch-based real transform performs no
// heap allocation — the property the allocation-free time step depends on.
func TestRealPlanZeroAlloc(t *testing.T) {
	for _, n := range []int{64, 96} { // pow2 and Bluestein halves
		rp := NewRealPlan(n)
		x := randomReal(rand.New(rand.NewSource(13)), n)
		spec := make([]complex128, rp.SpecLen())
		scratch := make([]complex128, rp.ScratchLen())
		allocs := testing.AllocsPerRun(100, func() {
			rp.Forward(x, spec, scratch)
			rp.Inverse(spec, x, scratch)
		})
		if allocs != 0 {
			t.Errorf("n=%d: %v allocs per forward+inverse, want 0", n, allocs)
		}
	}
}

// TestComplexScratchZeroAlloc asserts the Bluestein path is allocation-free
// with caller scratch.
func TestComplexScratchZeroAlloc(t *testing.T) {
	p := NewPlan(96)
	x := randomSignal(rand.New(rand.NewSource(14)), 96)
	scratch := make([]complex128, p.ScratchLen())
	allocs := testing.AllocsPerRun(100, func() {
		p.ForwardScratch(x, scratch)
		p.InverseScratch(x, scratch)
	})
	if allocs != 0 {
		t.Errorf("%v allocs per forward+inverse, want 0", allocs)
	}
}

func BenchmarkRealFFT720(b *testing.B) {
	rp := NewRealPlan(720)
	x := make([]float64, 720)
	for i := range x {
		x[i] = float64(i % 7)
	}
	spec := make([]complex128, rp.SpecLen())
	scratch := make([]complex128, rp.ScratchLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp.Forward(x, spec, scratch)
	}
}

func BenchmarkRealFFT96(b *testing.B) {
	rp := NewRealPlan(96)
	x := make([]float64, 96)
	for i := range x {
		x[i] = float64(i % 7)
	}
	spec := make([]complex128, rp.SpecLen())
	scratch := make([]complex128, rp.ScratchLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp.Forward(x, spec, scratch)
	}
}
