// Package fft implements the one-dimensional fast Fourier transforms the
// Fourier polar filter is built on: an iterative radix-2 transform for
// power-of-two lengths and Bluestein's chirp-z algorithm for arbitrary
// lengths, plus real-signal helpers. Only the standard library is used.
//
// Plans cache twiddle factors and bit-reversal tables per length; a Plan is
// safe for concurrent use once constructed (all mutable state lives in
// caller-provided or per-call buffers).
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Plan holds the precomputed tables for transforms of one length.
type Plan struct {
	n int

	// radix-2 path (n power of two)
	pow2    bool
	rev     []int        // bit-reversal permutation
	twiddle []complex128 // stage twiddles, concatenated

	// Bluestein path (any n)
	chirp []complex128 // w_k = exp(-iπk²/n)
	bconv []complex128 // FFT of the chirp convolution kernel (length m)
	bplan *Plan        // radix-2 plan of length m ≥ 2n−1
	m     int
}

// NewPlan prepares a transform of length n ≥ 1.
func NewPlan(n int) *Plan {
	if n < 1 {
		panic(fmt.Sprintf("fft: invalid length %d", n))
	}
	p := &Plan{n: n}
	if n&(n-1) == 0 {
		p.pow2 = true
		p.buildRadix2()
		return p
	}
	p.buildBluestein()
	return p
}

// Len returns the transform length.
func (p *Plan) Len() int { return p.n }

func (p *Plan) buildRadix2() {
	n := p.n
	p.rev = make([]int, n)
	logn := 0
	for 1<<logn < n {
		logn++
	}
	for i := 0; i < n; i++ {
		r := 0
		for b := 0; b < logn; b++ {
			r = (r << 1) | ((i >> b) & 1)
		}
		p.rev[i] = r
	}
	// Twiddles for each stage: stage of half-size h uses w^j = exp(-2πij/(2h)).
	total := 0
	for h := 1; h < n; h *= 2 {
		total += h
	}
	p.twiddle = make([]complex128, total)
	off := 0
	for h := 1; h < n; h *= 2 {
		for j := 0; j < h; j++ {
			ang := -math.Pi * float64(j) / float64(h)
			p.twiddle[off+j] = cmplx.Exp(complex(0, ang))
		}
		off += h
	}
}

func (p *Plan) buildBluestein() {
	n := p.n
	p.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		// k² mod 2n avoids precision loss for large k.
		kk := (int64(k) * int64(k)) % int64(2*n)
		ang := -math.Pi * float64(kk) / float64(n)
		p.chirp[k] = cmplx.Exp(complex(0, ang))
	}
	m := 1
	for m < 2*n-1 {
		m *= 2
	}
	p.m = m
	p.bplan = NewPlan(m)
	// Convolution kernel b_k = conj(chirp)_|k| wrapped.
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		c := cmplx.Conj(p.chirp[k])
		b[k] = c
		if k > 0 {
			b[m-k] = c
		}
	}
	p.bplan.forwardPow2(b)
	p.bconv = b
}

// Forward computes the in-place forward DFT
// X_k = Σ_j x_j · exp(−2πi·jk/n). It allocates Bluestein work space on
// non-power-of-two lengths; hot paths should use ForwardScratch.
func (p *Plan) Forward(x []complex128) {
	p.ForwardScratch(x, nil)
}

// ScratchLen returns the length of the complex work buffer ForwardScratch
// and InverseScratch need (0 on the allocation-free power-of-two path).
func (p *Plan) ScratchLen() int {
	if p.pow2 {
		return 0
	}
	return p.m
}

// ForwardScratch is Forward with caller-provided work space of at least
// ScratchLen() values (nil allocates). With caller scratch the transform
// performs no heap allocation, and one Plan can serve many goroutines as
// long as each brings its own scratch.
//
//cadyvet:allocfree
func (p *Plan) ForwardScratch(x, scratch []complex128) {
	p.checkLen(x)
	if p.pow2 {
		p.forwardPow2(x)
		return
	}
	if scratch == nil {
		//cadyvet:allow nil-scratch convenience path for tests and one-off calls; hot callers pass ScratchLen scratch
		scratch = make([]complex128, p.m)
	} else if len(scratch) < p.m {
		panic(fmt.Sprintf("fft: scratch length %d < required %d", len(scratch), p.m))
	}
	p.bluestein(x, scratch[:p.m])
}

// Inverse computes the in-place inverse DFT (with the 1/n normalization),
// so Inverse(Forward(x)) == x.
func (p *Plan) Inverse(x []complex128) {
	p.InverseScratch(x, nil)
}

// InverseScratch is Inverse with caller-provided work space (see
// ForwardScratch).
//
//cadyvet:allocfree
func (p *Plan) InverseScratch(x, scratch []complex128) {
	p.checkLen(x)
	n := p.n
	// inverse via conjugation: IDFT(x) = conj(DFT(conj(x)))/n
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	p.ForwardScratch(x, scratch)
	inv := 1 / float64(n)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * complex(inv, 0)
	}
}

func (p *Plan) checkLen(x []complex128) {
	if len(x) != p.n {
		panic(fmt.Sprintf("fft: input length %d != plan length %d", len(x), p.n))
	}
}

// forwardPow2 is the iterative Cooley–Tukey kernel.
func (p *Plan) forwardPow2(x []complex128) {
	n := len(x)
	for i, r := range p.rev {
		if i < r {
			x[i], x[r] = x[r], x[i]
		}
	}
	off := 0
	for h := 1; h < n; h *= 2 {
		tw := p.twiddle[off : off+h]
		for s := 0; s < n; s += 2 * h {
			for j := 0; j < h; j++ {
				a := x[s+j]
				b := x[s+j+h] * tw[j]
				x[s+j] = a + b
				x[s+j+h] = a - b
			}
		}
		off += h
	}
}

// bluestein evaluates the DFT of arbitrary length as a convolution, using
// the caller's length-m work buffer.
func (p *Plan) bluestein(x, a []complex128) {
	n, m := p.n, p.m
	for k := 0; k < n; k++ {
		a[k] = x[k] * p.chirp[k]
	}
	for k := n; k < m; k++ {
		a[k] = 0
	}
	p.bplan.forwardPow2(a)
	for k := 0; k < m; k++ {
		a[k] *= p.bconv[k]
	}
	// inverse length-m transform of a
	for i := range a {
		a[i] = cmplx.Conj(a[i])
	}
	p.bplan.forwardPow2(a)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = p.chirp[k] * cmplx.Conj(a[k]) * scale
	}
}

// ForwardReal transforms a real signal into its n complex coefficients
// (dst may be nil; the coefficient slice is returned).
func (p *Plan) ForwardReal(src []float64, dst []complex128) []complex128 {
	if len(src) != p.n {
		panic(fmt.Sprintf("fft: input length %d != plan length %d", len(src), p.n))
	}
	if dst == nil {
		dst = make([]complex128, p.n)
	}
	for i, v := range src {
		dst[i] = complex(v, 0)
	}
	p.Forward(dst)
	return dst
}

// InverseToReal inverts coefficients into dst, discarding the (numerically
// tiny, for conjugate-symmetric spectra) imaginary parts.
func (p *Plan) InverseToReal(coef []complex128, dst []float64) {
	if len(coef) != p.n || len(dst) != p.n {
		panic("fft: length mismatch in InverseToReal")
	}
	tmp := make([]complex128, p.n)
	copy(tmp, coef)
	p.Inverse(tmp)
	for i := range dst {
		dst[i] = real(tmp[i])
	}
}

// NaiveDFT computes the forward DFT directly in O(n²); it exists as the
// reference for tests.
func NaiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j) * float64(k) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}
