package dycore_test

import (
	"reflect"
	"testing"

	"cadycore/internal/checkpoint"
	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/state"
)

// TestCrashAbortsTyped: an injected rank death surfaces as a typed Abort at
// the step boundary, with no final states and the surviving ranks' progress
// reflected in StepsDone.
func TestCrashAbortsTyped(t *testing.T) {
	set, g, hook := ctlSetup(dycore.AlgBaselineYZ)
	res, _ := dycore.RunWithOpts(set, g, comm.TianheLike(), heldsuarez.InitialState, 5, dycore.RunOpts{
		Hook: hook,
		CrashAt: func(rank, done int) bool {
			return rank == 1 && done == 3
		},
	})
	if res.Abort == nil {
		t.Fatal("expected a typed abort, got none")
	}
	if res.Abort.Rank != 1 || res.Abort.Step != 3 {
		t.Fatalf("Abort = rank %d step %d, want rank 1 step 3", res.Abort.Rank, res.Abort.Step)
	}
	if res.Finals != nil {
		t.Fatalf("Finals non-nil after crash")
	}
	if res.StepsDone > 3 {
		t.Fatalf("StepsDone = %d after a crash at step 3", res.StepsDone)
	}
	if res.Abort.Error() == "" {
		t.Fatal("empty abort error message")
	}
}

// TestCrashAbortsCommAvoiding: the CA scheme's Finalize communicates, so a
// dead rank poisons survivors — the injected failure must still win.
func TestCrashAbortsCommAvoiding(t *testing.T) {
	set, g, hook := ctlSetup(dycore.AlgCommAvoid)
	res, _ := dycore.RunWithOpts(set, g, comm.TianheLike(), heldsuarez.InitialState, 4, dycore.RunOpts{
		Hook: hook,
		CrashAt: func(rank, done int) bool {
			return rank == 2 && done == 2
		},
	})
	if res.Abort == nil {
		t.Fatal("expected a typed abort, got none")
	}
	if res.Abort.Rank != 2 || res.Abort.Step != 2 {
		t.Fatalf("Abort = rank %d step %d, want rank 2 step 2", res.Abort.Rank, res.Abort.Step)
	}
}

// TestCrashWithSnapshotsKeepsEarlierBoundary: crash mid-run after a snapshot
// cadence boundary — the pre-crash snapshot exists and no snapshot is taken
// at the crash boundary itself.
func TestCrashWithSnapshotsKeepsEarlierBoundary(t *testing.T) {
	set, g, hook := ctlSetup(dycore.AlgBaselineYZ)
	boundaries := map[int]bool{}
	res, _ := dycore.RunWithOpts(set, g, comm.TianheLike(), heldsuarez.InitialState, 10, dycore.RunOpts{
		Hook:          hook,
		SnapshotEvery: 2,
		Snapshot: func(done int, sts []*state.State) {
			boundaries[done] = true
		},
		CrashAt: func(rank, done int) bool {
			return rank == 0 && done == 5
		},
	})
	if res.Abort == nil {
		t.Fatal("expected a typed abort")
	}
	if !boundaries[2] || !boundaries[4] {
		t.Fatalf("pre-crash snapshots missing; got boundaries %v", boundaries)
	}
	if boundaries[5] {
		t.Fatalf("snapshot taken at the crash boundary (rank died before the barrier)")
	}
}

// TestInertFaultProfileBitwise is the dycore-level zero-fault guarantee: an
// installed but inert comm.Faults profile leaves the aggregate simulated
// clock and the final states bitwise identical to a run with no profile.
func TestInertFaultProfileBitwise(t *testing.T) {
	for _, alg := range []dycore.Algorithm{dycore.AlgBaselineYZ, dycore.AlgCommAvoid} {
		set, g, hook := ctlSetup(alg)
		base, _ := dycore.RunWithOpts(set, g, comm.TianheLike(), heldsuarez.InitialState, 3, dycore.RunOpts{Hook: hook})
		inert, _ := dycore.RunWithOpts(set, g, comm.TianheLike(), heldsuarez.InitialState, 3, dycore.RunOpts{
			Hook:   hook,
			Faults: comm.NewFaults(set.Procs(), 12345),
		})
		if inert.Abort != nil {
			t.Fatalf("%v: inert profile aborted: %v", alg, inert.Abort)
		}
		if !reflect.DeepEqual(base.Agg, inert.Agg) {
			t.Errorf("%v: aggregate stats differ under inert fault profile:\n got %+v\nwant %+v", alg, inert.Agg, base.Agg)
		}
		if d := dycore.MaxDiffGlobal(g, base.Finals, inert.Finals); d != 0 {
			t.Errorf("%v: finals differ under inert fault profile: maxdiff %g", alg, d)
		}
	}
}

// TestStragglerPerturbsClockNotNumerics: a straggler profile slows the
// simulated clock but the computed fields stay bitwise identical.
func TestStragglerPerturbsClockNotNumerics(t *testing.T) {
	set, g, hook := ctlSetup(dycore.AlgBaselineYZ)
	base, _ := dycore.RunWithOpts(set, g, comm.TianheLike(), heldsuarez.InitialState, 3, dycore.RunOpts{Hook: hook})
	f := comm.NewFaults(set.Procs(), 1)
	f.Rank(0).ComputeScale = 3
	slow, _ := dycore.RunWithOpts(set, g, comm.TianheLike(), heldsuarez.InitialState, 3, dycore.RunOpts{
		Hook:   hook,
		Faults: f,
	})
	if slow.Agg.SimTime <= base.Agg.SimTime {
		t.Errorf("straggler SimTime %g not slower than fault-free %g", slow.Agg.SimTime, base.Agg.SimTime)
	}
	if d := dycore.MaxDiffGlobal(g, base.Finals, slow.Finals); d != 0 {
		t.Errorf("straggler changed numerics: maxdiff %g", d)
	}
}

// TestCAResumeAppliesPendingSmoothing pins the crash-recovery accuracy
// contract: a comm-avoiding run resumed from a mid-trajectory checkpoint
// (RunOpts.Resume) applies the deferred former smoothing the checkpointed
// state still owes, landing within the lagged-Ĉ bootstrap tolerance (~1e-6)
// of the uninterrupted run. Without the flag the smoothing is silently
// dropped and the trajectory shifts ~1e-3 relative.
func TestCAResumeAppliesPendingSmoothing(t *testing.T) {
	set, g, hook := ctlSetup(dycore.AlgCommAvoid)
	snaps := map[int]*checkpoint.Global{}
	full, _ := dycore.RunWithOpts(set, g, comm.TianheLike(), heldsuarez.InitialState, 5, dycore.RunOpts{
		Hook:          hook,
		SnapshotEvery: 2,
		Snapshot: func(done int, sts []*state.State) {
			snaps[done] = checkpoint.Gather(g, sts)
		},
	})
	if snaps[2] == nil {
		t.Fatal("no snapshot at boundary 2")
	}
	resumed, _ := dycore.RunWithOpts(set, g, comm.TianheLike(), snaps[2].InitFunc(), 3, dycore.RunOpts{
		Hook:   hook,
		Resume: true,
	})
	if d := dycore.MaxDiffGlobal(g, full.Finals, resumed.Finals); d > 1e-6 {
		t.Errorf("resumed CA run deviates by %g, want <= 1e-6 (pending smoothing must be applied)", d)
	}

	// The baselines have no deferred work; Resume falls back to SetState
	// and stays bitwise-exact.
	bset, bg, bhook := ctlSetup(dycore.AlgBaselineYZ)
	bsnaps := map[int]*checkpoint.Global{}
	bfull, _ := dycore.RunWithOpts(bset, bg, comm.TianheLike(), heldsuarez.InitialState, 4, dycore.RunOpts{
		Hook:          bhook,
		SnapshotEvery: 2,
		Snapshot: func(done int, sts []*state.State) {
			bsnaps[done] = checkpoint.Gather(bg, sts)
		},
	})
	bres, _ := dycore.RunWithOpts(bset, bg, comm.TianheLike(), bsnaps[2].InitFunc(), 2, dycore.RunOpts{
		Hook:   bhook,
		Resume: true,
	})
	if d := dycore.MaxDiffGlobal(bg, bfull.Finals, bres.Finals); d != 0 {
		t.Errorf("baseline resume with Resume flag deviates by %g, want bitwise", d)
	}
}
