package dycore

import (
	"cadycore/internal/field"
	"cadycore/internal/grid"
	"cadycore/internal/state"
	"cadycore/internal/stencil"
	"cadycore/internal/topo"
)

// Baseline runs the original Algorithm 1 on an arbitrary process grid: a
// halo exchange before every operator evaluation, a fresh Ĉ (one
// z-collective) inside every adaptation evaluation, Fourier filtering after
// every tendency (a distributed transpose FFT when p_x > 1), and full
// smoothing with its own exchange at the end of each step.
//
// With p_x = 1 this is the paper's "original algorithm, Y-Z decomposition";
// with p_z = 1 it is the "original algorithm, X-Y decomposition". Per step
// it performs 3M + 4 halo-exchange rounds and 3M z-collectives, matching
// the counts of Section 5.2.
type Baseline struct {
	*core
	exStencil *topo.Exchanger // per-update exchange at the stencil radii
	exSmooth  *topo.Exchanger // depth-2 exchange before smoothing
}

// Halo widths for the baseline: the per-update radii of the widest tables
// (x from Tables 1/2, y from Table 3's smoothing, z from Tables 1/2).
func baselineHalo() (hx, hy, hz int) {
	r := stencil.Union(
		stencil.RadiusOf(stencil.Adaptation),
		stencil.RadiusOf(stencil.Advection),
		stencil.RadiusOf(stencil.Smoothing),
	)
	return r.X, r.Y, r.Z
}

// NewBaseline builds the baseline integrator for the calling rank. The
// topology must be built with BaselineTopology (or identical halo widths).
func NewBaseline(cfg Config, g *grid.Grid, tp *topo.Topology) *Baseline {
	b := &Baseline{core: newCore(cfg, g, tp)}
	rAd := stencil.Union(stencil.RadiusOf(stencil.Adaptation), stencil.RadiusOf(stencil.Advection))
	rSm := stencil.RadiusOf(stencil.Smoothing)
	dx := 0
	dxs := 0
	if tp.Px > 1 {
		dx = rAd.X
		dxs = rSm.X
	}
	dy, dz := rAd.Y, rAd.Z
	if tp.Py == 1 {
		dy = 0
	}
	if tp.Pz == 1 {
		dz = 0
	}
	dys := rSm.Y
	if tp.Py == 1 {
		dys = 0
	}
	b.exStencil = tp.NewExchanger(dx, dy, dz).SetLabel("baseline-stencil")
	b.exSmooth = tp.NewExchanger(dxs, dys, 0).SetLabel("baseline-smooth")
	return b
}

// ExchStats reports per-exchanger overlap accounting.
func (b *Baseline) ExchStats() []topo.ExchStats {
	return []topo.ExchStats{b.exStencil.Stats(), b.exSmooth.Stats()}
}

// SetState overwrites the owned region of ξ (and refreshes boundaries and
// the initial Ĉ cache — one startup exchange and one startup collective,
// mirroring the model's initialization phase).
func (b *Baseline) SetState(init *state.State) {
	b.xi.CopyFrom(init)
	b.bootstrap()
}

// bootstrap fills halos and evaluates the initial Ĉ(ξ⁰) so the advection's
// σ̇ is defined from the first step (Algorithm 2 line 1: ξ^(−1) = ξ^(0)).
func (b *Baseline) bootstrap() {
	b.localFill(b.xi)
	f3, f2 := b.exchangeFields(b.xi)
	b.exStencil.Exchange(f3, f2)
	b.n.HaloExchanges++
	b.localFill(b.xi)
	b.updateSurface(b.xi)
	b.evalC(b.xi, b.cLast, b.tp.Block.Owned())
	b.fillCBounds(b.cLast)
}

// exchange performs one stencil-radius halo exchange of st (plus the cached
// Ĉ fields).
func (b *Baseline) exchange(st *state.State) {
	f3, f2 := b.exchangeFields(st)
	b.exStencil.Exchange(f3, f2)
	b.n.HaloExchanges++
	b.localFill(st)
}

// adaptUpdate computes dst = base + Δt1·F̃(Ĉ(src) + Â(src)) on the owned
// region. The halo exchange of src overlaps the interior D(P) evaluation:
// Begin → D(P) on the interior rect (whose stencil reads stay clear of
// in-flight halo cells) → Finish → D(P) on the boundary slabs → one
// z-collective over the owned block. D(P) is per-point pure, so the split
// cover produces bitwise the monolithic sweep; under Config.NoOverlap the
// exchange quiesces first and the slab cover degenerates to one owned-rect
// call, reproducing the original operation sequence exactly.
func (b *Baseline) adaptUpdate(dst, base, src *state.State) {
	owned := b.tp.Block.Owned()
	f3, f2 := b.exchangeFields(src)
	pend := b.exStencil.Begin(f3, f2)
	b.n.HaloExchanges++
	var inner field.Rect
	if b.cfg.NoOverlap {
		//cadyvet:quiesce NoOverlap ablation: the quiesced reference path blocks by design
		pend.Finish()
		b.localFill(src)
		b.updateSurface(src)
	} else {
		// The interior compute reads src's local ghosts (periodic x wrap,
		// pole and vertical mirrors), which a step hook or resume may have
		// left stale relative to the owned cells — the quiesced path hides
		// this by refilling after the blocking exchange. Refill them before
		// touching the interior; the post-Finish refill below then only
		// refreshes the ghosts derived from the received halo rows.
		b.localFill(src)
		// Surface diagnostics from the pre-exchange p'_sa: interior reads
		// stay within the owned region, where the values are current; the
		// halo cells are recomputed (uncharged) after Finish.
		b.updateSurface(src)
		inner = b.shrinkByDepths(owned, b.exStencil.ExchangeDepths())
		if !inner.Empty() {
			b.evalDivP(src, inner)
		}
		pend.Finish()
		b.localFill(src)
		b.refreshSurface(src)
	}
	for _, s := range b.slabs(owned, inner) {
		b.evalDivP(src, s)
	}
	b.sumC(b.cNew, owned)
	b.adaptTendency(src, b.cNew, owned)
	b.filterTendency(owned)
	b.applyUpdate(dst, base, b.cfg.Dt1, owned)
	// Remember the most recent Ĉ for the advection's σ̇.
	b.cLast, b.cNew = b.cNew, b.cLast
}

// advectUpdate computes dst = base + Δt2·F̃(L̃(src)) on the owned region,
// overlapping the halo exchange with the interior advection tendency the
// same way adaptUpdate overlaps D(P).
func (b *Baseline) advectUpdate(dst, base, src *state.State) {
	owned := b.tp.Block.Owned()
	f3, f2 := b.exchangeFields(src)
	pend := b.exStencil.Begin(f3, f2)
	b.n.HaloExchanges++
	var inner field.Rect
	if b.cfg.NoOverlap {
		//cadyvet:quiesce NoOverlap ablation: the quiesced reference path blocks by design
		pend.Finish()
		b.localFill(src)
		b.updateSurface(src)
	} else {
		b.localFill(src) // see adaptUpdate: entry ghosts may be hook-stale
		b.updateSurface(src)
		inner = b.shrinkByDepths(owned, b.exStencil.ExchangeDepths())
		if !inner.Empty() {
			b.advectTendency(src, b.cLast, inner)
		}
		pend.Finish()
		b.localFill(src)
		b.refreshSurface(src)
	}
	for _, s := range b.slabs(owned, inner) {
		b.advectTendency(src, b.cLast, s)
	}
	b.filterTendency(owned)
	b.applyUpdate(dst, base, b.cfg.Dt2, owned)
}

// Step advances one time step of Algorithm 1.
//
//cadyvet:allocfree
func (b *Baseline) Step() {
	owned := b.tp.Block.Owned()

	// Adaptation: M nonlinear iterations of 3 internal updates each.
	b.psi.CopyFrom(b.xi)
	for i := 1; i <= b.cfg.M; i++ {
		b.adaptUpdate(b.eta1, b.psi, b.psi)
		b.adaptUpdate(b.eta2, b.psi, b.eta1)
		b.mid.Mean2Rect(b.psi, b.eta2, owned)
		b.mid.FillLocalBounds()
		b.adaptUpdate(b.psi, b.psi, b.mid) // ψ ← η3
	}

	// Advection: one nonlinear iteration.
	b.advectUpdate(b.eta1, b.psi, b.psi)  // ζ1
	b.advectUpdate(b.eta2, b.psi, b.eta1) // ζ2
	b.mid.Mean2Rect(b.psi, b.eta2, owned)
	b.mid.FillLocalBounds()
	b.advectUpdate(b.psi, b.psi, b.mid) // ζ3

	// Smoothing with its own exchange, overlapped with the interior sweep:
	// S̃ reads ψ and writes ξ, so the interior rect (clear of ψ's in-flight
	// halo rows) smooths while the messages fly and the boundary slabs
	// follow after Finish. Per-point pure → bitwise the monolithic sweep.
	f3, f2 := b.exchangeFields(b.psi)
	pend := b.exSmooth.Begin(f3, f2)
	b.n.HaloExchanges++
	var inner field.Rect
	if !b.cfg.NoOverlap {
		b.localFill(b.psi) // see adaptUpdate: entry ghosts may be hook-stale
		inner = b.shrinkByDepths(owned, b.exSmooth.ExchangeDepths())
		if !inner.Empty() {
			if b.spe != nil {
				b.chargeSmooth(b.spe.SmoothFull(b.psi, b.xi, inner))
			} else {
				w := b.smo.SmoothFull(b.psi, b.xi, inner)
				b.w.Compute(float64(w) * costSmooth)
			}
		}
	}
	//cadyvet:quiesce under NoOverlap the inner rect is empty and this Finish is the quiesced reference path
	pend.Finish()
	b.localFill(b.psi)
	for _, s := range b.slabs(owned, inner) {
		if b.spe != nil {
			b.chargeSmooth(b.spe.SmoothFull(b.psi, b.xi, s))
		} else {
			w := b.smo.SmoothFull(b.psi, b.xi, s)
			b.w.Compute(float64(w) * costSmooth)
		}
	}
	b.n.SmoothingCalls++
	b.localFill(b.xi)

	b.n.Steps++
}

// Finalize is a no-op: the baseline smooths within Step.
func (b *Baseline) Finalize() {}
