package dycore

import (
	"cadycore/internal/grid"
	"cadycore/internal/state"
	"cadycore/internal/stencil"
	"cadycore/internal/topo"
)

// Baseline runs the original Algorithm 1 on an arbitrary process grid: a
// halo exchange before every operator evaluation, a fresh Ĉ (one
// z-collective) inside every adaptation evaluation, Fourier filtering after
// every tendency (a distributed transpose FFT when p_x > 1), and full
// smoothing with its own exchange at the end of each step.
//
// With p_x = 1 this is the paper's "original algorithm, Y-Z decomposition";
// with p_z = 1 it is the "original algorithm, X-Y decomposition". Per step
// it performs 3M + 4 halo-exchange rounds and 3M z-collectives, matching
// the counts of Section 5.2.
type Baseline struct {
	*core
	exStencil *topo.Exchanger // per-update exchange at the stencil radii
	exSmooth  *topo.Exchanger // depth-2 exchange before smoothing
}

// Halo widths for the baseline: the per-update radii of the widest tables
// (x from Tables 1/2, y from Table 3's smoothing, z from Tables 1/2).
func baselineHalo() (hx, hy, hz int) {
	r := stencil.Union(
		stencil.RadiusOf(stencil.Adaptation),
		stencil.RadiusOf(stencil.Advection),
		stencil.RadiusOf(stencil.Smoothing),
	)
	return r.X, r.Y, r.Z
}

// NewBaseline builds the baseline integrator for the calling rank. The
// topology must be built with BaselineTopology (or identical halo widths).
func NewBaseline(cfg Config, g *grid.Grid, tp *topo.Topology) *Baseline {
	b := &Baseline{core: newCore(cfg, g, tp)}
	rAd := stencil.Union(stencil.RadiusOf(stencil.Adaptation), stencil.RadiusOf(stencil.Advection))
	rSm := stencil.RadiusOf(stencil.Smoothing)
	dx := 0
	dxs := 0
	if tp.Px > 1 {
		dx = rAd.X
		dxs = rSm.X
	}
	dy, dz := rAd.Y, rAd.Z
	if tp.Py == 1 {
		dy = 0
	}
	if tp.Pz == 1 {
		dz = 0
	}
	dys := rSm.Y
	if tp.Py == 1 {
		dys = 0
	}
	b.exStencil = tp.NewExchanger(dx, dy, dz)
	b.exSmooth = tp.NewExchanger(dxs, dys, 0)
	return b
}

// SetState overwrites the owned region of ξ (and refreshes boundaries and
// the initial Ĉ cache — one startup exchange and one startup collective,
// mirroring the model's initialization phase).
func (b *Baseline) SetState(init *state.State) {
	b.xi.CopyFrom(init)
	b.bootstrap()
}

// bootstrap fills halos and evaluates the initial Ĉ(ξ⁰) so the advection's
// σ̇ is defined from the first step (Algorithm 2 line 1: ξ^(−1) = ξ^(0)).
func (b *Baseline) bootstrap() {
	b.localFill(b.xi)
	f3, f2 := b.exchangeFields(b.xi)
	b.exStencil.Exchange(f3, f2)
	b.n.HaloExchanges++
	b.localFill(b.xi)
	b.updateSurface(b.xi)
	b.evalC(b.xi, b.cLast, b.tp.Block.Owned())
	b.fillCBounds(b.cLast)
}

// exchange performs one stencil-radius halo exchange of st (plus the cached
// Ĉ fields).
func (b *Baseline) exchange(st *state.State) {
	f3, f2 := b.exchangeFields(st)
	b.exStencil.Exchange(f3, f2)
	b.n.HaloExchanges++
	b.localFill(st)
}

// adaptUpdate computes dst = base + Δt1·F̃(Ĉ(src) + Â(src)) on the owned
// region, performing the halo exchange of src first.
func (b *Baseline) adaptUpdate(dst, base, src *state.State) {
	owned := b.tp.Block.Owned()
	b.exchange(src)
	b.updateSurface(src)
	b.evalC(src, b.cNew, owned)
	b.adaptTendency(src, b.cNew, owned)
	b.filterTendency(owned)
	b.applyUpdate(dst, base, b.cfg.Dt1, owned)
	// Remember the most recent Ĉ for the advection's σ̇.
	b.cLast, b.cNew = b.cNew, b.cLast
}

// advectUpdate computes dst = base + Δt2·F̃(L̃(src)) on the owned region.
func (b *Baseline) advectUpdate(dst, base, src *state.State) {
	owned := b.tp.Block.Owned()
	b.exchange(src)
	b.updateSurface(src)
	b.advectTendency(src, b.cLast, owned)
	b.filterTendency(owned)
	b.applyUpdate(dst, base, b.cfg.Dt2, owned)
}

// Step advances one time step of Algorithm 1.
//
//cadyvet:allocfree
func (b *Baseline) Step() {
	owned := b.tp.Block.Owned()

	// Adaptation: M nonlinear iterations of 3 internal updates each.
	b.psi.CopyFrom(b.xi)
	for i := 1; i <= b.cfg.M; i++ {
		b.adaptUpdate(b.eta1, b.psi, b.psi)
		b.adaptUpdate(b.eta2, b.psi, b.eta1)
		b.mid.Mean2Rect(b.psi, b.eta2, owned)
		b.mid.FillLocalBounds()
		b.adaptUpdate(b.psi, b.psi, b.mid) // ψ ← η3
	}

	// Advection: one nonlinear iteration.
	b.advectUpdate(b.eta1, b.psi, b.psi)  // ζ1
	b.advectUpdate(b.eta2, b.psi, b.eta1) // ζ2
	b.mid.Mean2Rect(b.psi, b.eta2, owned)
	b.mid.FillLocalBounds()
	b.advectUpdate(b.psi, b.psi, b.mid) // ζ3

	// Smoothing with its own exchange.
	f3, f2 := b.exchangeFields(b.psi)
	b.exSmooth.Exchange(f3, f2)
	b.n.HaloExchanges++
	b.localFill(b.psi)
	w := b.smo.SmoothFull(b.psi, b.xi, owned)
	b.w.Compute(float64(w) * costSmooth)
	b.n.SmoothingCalls++
	b.localFill(b.xi)

	b.n.Steps++
}

// Finalize is a no-op: the baseline smooths within Step.
func (b *Baseline) Finalize() {}
