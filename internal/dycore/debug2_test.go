package dycore

import (
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/state"
	"cadycore/internal/topo"
)

// TestDebugSingleUpdate compares η1 after exactly one adaptation update and
// after one advection update across decompositions.
func TestDebugSingleUpdate(t *testing.T) {
	g := testGrid()
	cfg := testCfg(1)

	type phase int
	const (
		phAdapt phase = iota
		phAdvect
		phSmooth
	)

	runOne := func(py int, ph phase) []*state.State {
		w := comm.NewWorld(py, comm.Zero())
		finals := make([]*state.State, py)
		w.Run(func(c *comm.Comm) {
			hx, hy, hz := BaselineHalo()
			tp := topo.New(c, g, 1, py, 1, hx, hy, hz)
			b := NewBaseline(cfg, g, tp)
			st := state.New(tp.Block)
			testInit(g, st)
			b.SetState(st)
			switch ph {
			case phAdapt:
				b.adaptUpdate(b.eta1, b.xi, b.xi)
			case phAdvect:
				b.advectUpdate(b.eta1, b.xi, b.xi)
			case phSmooth:
				f3, f2 := b.exchangeFields(b.xi)
				b.exSmooth.Exchange(f3, f2)
				b.localFill(b.xi)
				b.smo.SmoothFull(b.xi, b.eta1, tp.Block.Owned())
			}
			finals[c.Rank()] = b.eta1
		})
		return finals
	}

	for _, ph := range []phase{phAdapt, phAdvect, phSmooth} {
		a := runOne(1, ph)
		b := runOne(2, ph)
		if d := MaxDiffGlobal(g, a, b); d != 0 {
			t.Errorf("phase %d: single update differs by %g", ph, d)
			fa := FlattenState(g, a)
			fb := FlattenState(g, b)
			n3 := g.Nx * g.Ny * g.Nz
			names := []string{"U", "V", "Phi", "Psa"}
			count := 0
			for i := range fa {
				if fa[i] != fb[i] && count < 10 {
					comp, rem := 3, i-3*n3
					if i < 3*n3 {
						comp, rem = i/n3, i%n3
					}
					k := rem / (g.Nx * g.Ny)
					j := (rem / g.Nx) % g.Ny
					ii := rem % g.Nx
					t.Logf("%s(%d,%d,%d): %v vs %v", names[comp], ii, j, k, fa[i], fb[i])
					count++
				}
			}
		}
	}
}
