package dycore

import (
	"math"
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/diag"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/state"
)

// TestHeldSuarezStability runs the H-S benchmark (the paper's Section 5.1
// workload) for several model hours on the communication-avoiding algorithm
// and checks the run stays physical: finite fields, bounded winds, small
// dry-mass drift, bounded temperatures.
func TestHeldSuarezStability(t *testing.T) {
	if testing.Short() {
		t.Skip("long run")
	}
	g := grid.New(48, 24, 8)
	cfg := DefaultConfig()
	cfg.Dt1, cfg.Dt2 = 60, 360
	const steps = 60 // 6 model hours

	hs := heldsuarez.Standard()
	hook := func(g *grid.Grid, st *state.State, step int) {
		hs.Apply(g, st, cfg.Dt2)
		if step%20 == 19 && !st.AllFinite() {
			t.Errorf("state went non-finite at step %d", step)
		}
	}
	set := Setup{Alg: AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg}
	res := RunWithHook(set, g, comm.Zero(), heldsuarez.InitialState, steps, hook)

	if !diag.AllFinite(res.Finals) {
		t.Fatal("final state not finite")
	}
	if mw := diag.MaxWind(g, res.Finals); mw > 200 {
		t.Errorf("max wind %v m/s unphysical", mw)
	}
	mass0 := heldSuarezInitialMass(g)
	mass := diag.GlobalDryMass(g, res.Finals)
	if drift := math.Abs(mass-mass0) / mass0; drift > 0.01 {
		t.Errorf("dry mass drifted by %.3f%%", 100*drift)
	}
	// Temperatures stay within physical bounds.
	tbar := diag.ZonalMeanT(g, res.Finals)
	for k := range tbar {
		for j := range tbar[k] {
			if tbar[k][j] < 150 || tbar[k][j] > 350 {
				t.Fatalf("T̄(%d,%d) = %v K unphysical", k, j, tbar[k][j])
			}
		}
	}
}

func heldSuarezInitialMass(g *grid.Grid) float64 {
	set := Setup{Alg: AlgBaselineYZ, PA: 1, PB: 1, Cfg: DefaultConfig()}
	res := Run(set, g, comm.Zero(), heldsuarez.InitialState, 0)
	return diag.GlobalDryMass(g, res.Finals)
}

// TestHeldSuarezCirculationDevelops verifies the H-S forcing actually spins
// the model up: after a day, kinetic energy is clearly above zero and the
// meridional temperature gradient is established.
func TestHeldSuarezCirculationDevelops(t *testing.T) {
	if testing.Short() {
		t.Skip("long run")
	}
	g := grid.New(48, 24, 8)
	cfg := DefaultConfig()
	cfg.Dt1, cfg.Dt2 = 60, 360
	const steps = 240 // one model day

	hs := heldsuarez.Standard()
	hook := func(g *grid.Grid, st *state.State, step int) { hs.Apply(g, st, cfg.Dt2) }
	set := Setup{Alg: AlgCommAvoid, PA: 2, PB: 1, Cfg: cfg}
	res := RunWithHook(set, g, comm.Zero(), heldsuarez.InitialState, steps, hook)

	if !diag.AllFinite(res.Finals) {
		t.Fatal("unstable")
	}
	if ke := diag.KineticEnergy(g, res.Finals); ke <= 0 {
		t.Errorf("no circulation developed: KE = %v", ke)
	}
	if mw := diag.MaxWind(g, res.Finals); mw < 0.5 || mw > 200 {
		t.Errorf("max wind %v m/s after one day implausible", mw)
	}
	tbar := diag.ZonalMeanT(g, res.Finals)
	kSfc := g.Nz - 1
	eq := tbar[kSfc][g.Ny/2]
	pole := tbar[kSfc][0]
	if eq-pole < 20 {
		t.Errorf("equator-pole contrast %v K too weak", eq-pole)
	}
}

// TestAlgorithmsAgreeOnHeldSuarez compares the three algorithms on the real
// workload after several steps: the approximate iteration's deviation must
// stay small relative to the fields.
func TestAlgorithmsAgreeOnHeldSuarez(t *testing.T) {
	g := grid.New(32, 16, 6)
	cfg := DefaultConfig()
	cfg.Dt1, cfg.Dt2 = 60, 360
	const steps = 5
	hs := heldsuarez.Standard()
	hook := func(g *grid.Grid, st *state.State, step int) { hs.Apply(g, st, cfg.Dt2) }

	yz := RunWithHook(Setup{Alg: AlgBaselineYZ, PA: 2, PB: 2, Cfg: cfg}, g, comm.Zero(), heldsuarez.InitialState, steps, hook)
	xy := RunWithHook(Setup{Alg: AlgBaselineXY, PA: 2, PB: 2, Cfg: cfg}, g, comm.Zero(), heldsuarez.InitialState, steps, hook)
	ca := RunWithHook(Setup{Alg: AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg}, g, comm.Zero(), heldsuarez.InitialState, steps, hook)

	if d := MaxDiffGlobal(g, yz.Finals, xy.Finals); d > 1e-8 {
		t.Errorf("X-Y and Y-Z baselines differ by %v on H-S", d)
	}
	scale := maxAbsVec(FlattenState(g, yz.Finals))
	if d := MaxDiffGlobal(g, yz.Finals, ca.Finals); d > 1e-3*scale {
		t.Errorf("CA deviates from baseline by %v (scale %v) on H-S", d, scale)
	}
}

// TestEnergyNotGrowing: without forcing, the discrete dynamical core must
// not generate energy — the smoothing and the polar filter only remove it,
// and the IAP tensor transform makes Σ(U² + V² + Φ² + (b·p'_sa/p0)²) the
// conserved quadratic form of the continuous equations (the property the
// lat-lon finite-difference core exists to respect).
func TestEnergyNotGrowing(t *testing.T) {
	g := grid.New(32, 16, 6)
	cfg := DefaultConfig()
	cfg.Dt1, cfg.Dt2 = 30, 180

	init := func(gg *grid.Grid, st *state.State) {
		st.InitFromPhysical(gg,
			func(lam, th, sig float64) float64 { return 15 * math.Sin(th) * math.Sin(th) },
			func(lam, th, sig float64) float64 { return math.Sin(2*lam) * math.Sin(th) * math.Sin(th) },
			func(lam, th, sig float64) float64 { return 270 + 5*math.Cos(th) + math.Cos(3*lam) },
			func(lam, th float64) float64 { return 100000 + 100*math.Sin(lam)*math.Sin(th) },
		)
	}
	set := Setup{Alg: AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg}

	e0run := Run(set, g, comm.Zero(), init, 0)
	e0 := diag.TotalEnergy(g, e0run.Finals)

	prev := e0
	for _, steps := range []int{5, 10, 20} {
		res := Run(set, g, comm.Zero(), init, steps)
		e := diag.TotalEnergy(g, res.Finals)
		if e > prev*1.02 {
			t.Errorf("energy grew from %g to %g after %d steps", prev, e, steps)
		}
		prev = e
	}
	if prev > e0*1.02 {
		t.Errorf("net energy growth: %g -> %g", e0, prev)
	}
}
