package dycore

import (
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/grid"
)

// TestUniformRowStartsBitwise checks the tentpole equivalence property: an
// explicit RowStarts equal to the uniform assignment must be bitwise
// identical to the implicit uniform partition, for every algorithm — the
// row-partition plumbing may not change a single floating-point operation.
func TestUniformRowStartsBitwise(t *testing.T) {
	g := testGrid()
	cases := []struct {
		alg    Algorithm
		pa, pb int
		py     int // which extent is the y decomposition
	}{
		{AlgBaselineYZ, 2, 2, 2},
		{AlgBaselineYZ, 5, 1, 5},
		{AlgCommAvoid, 2, 2, 2},
		{AlgBaselineXY, 2, 2, 2},
	}
	for _, c := range cases {
		cfg := testCfg(2)
		uniform := Run(Setup{Alg: c.alg, PA: c.pa, PB: c.pb, Cfg: cfg}, g, comm.Zero(), testInit, 2)
		explicit := Run(Setup{
			Alg: c.alg, PA: c.pa, PB: c.pb, Cfg: cfg,
			RowStarts: grid.UniformRowStarts(g.Ny, c.py),
		}, g, comm.Zero(), testInit, 2)
		if d := MaxDiffGlobal(g, uniform.Finals, explicit.Finals); d != 0 {
			t.Errorf("%v %dx%d: explicit uniform RowStarts deviates by %g, want bitwise identity",
				c.alg, c.pa, c.pb, d)
		}
	}
}

// TestUnbalancedYZBitwiseVsSerial: the baseline Y-Z y-decomposition is
// bitwise invariant in the partition (no reduction-order change when pz = 1),
// so even a deliberately skewed partition must reproduce the serial run
// exactly.
func TestUnbalancedYZBitwiseVsSerial(t *testing.T) {
	g := testGrid() // Ny = 10
	cfg := testCfg(2)
	serial := Run(Setup{Alg: AlgBaselineYZ, PA: 1, PB: 1, Cfg: cfg}, g, comm.Zero(), testInit, 2)
	for _, starts := range [][]int{
		{0, 2, 10},       // polar rank gets 2 rows, the other 8
		{0, 2, 7, 10},    // three uneven chunks
		{0, 2, 4, 8, 10}, // polar ranks small, mid-latitude ranks big
	} {
		py := len(starts) - 1
		par := Run(Setup{
			Alg: AlgBaselineYZ, PA: py, PB: 1, Cfg: cfg, RowStarts: starts,
		}, g, comm.Zero(), testInit, 2)
		if d := MaxDiffGlobal(g, serial.Finals, par.Finals); d != 0 {
			t.Errorf("unbalanced Y-Z %v deviates from serial by %g, want bitwise identity", starts, d)
		}
	}
}

// TestUnbalancedCommAvoidMatchesBaseline: exact-C CA on an unbalanced
// partition stays within round-off of the serial baseline, like the uniform
// CA runs do.
func TestUnbalancedCommAvoidMatchesBaseline(t *testing.T) {
	g := testGrid()
	cfg := testCfg(1)
	base := Run(Setup{Alg: AlgBaselineYZ, PA: 1, PB: 1, Cfg: cfg}, g, comm.Zero(), testInit, 2)
	cfgExact := cfg
	cfgExact.ExactC = true
	for _, starts := range [][]int{
		{0, 3, 10},
		{0, 2, 8, 10},
	} {
		py := len(starts) - 1
		ca := Run(Setup{
			Alg: AlgCommAvoid, PA: py, PB: 2, Cfg: cfgExact, RowStarts: starts,
		}, g, comm.Zero(), testInit, 2)
		d := MaxDiffGlobal(g, base.Finals, ca.Finals)
		if d > 1e-7 {
			t.Errorf("exact-C CA rows %v deviates from baseline by %g", starts, d)
		}
		if !ca.Finals[0].AllFinite() {
			t.Errorf("CA rows %v produced non-finite values", starts)
		}
	}
}
