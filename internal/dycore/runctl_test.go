package dycore_test

import (
	"sync/atomic"
	"testing"

	"cadycore/internal/checkpoint"
	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/state"
)

func ctlSetup(alg dycore.Algorithm) (dycore.Setup, *grid.Grid, dycore.StepHook) {
	g := grid.New(48, 24, 8)
	cfg := dycore.DefaultConfig()
	cfg.M = 2
	hs := heldsuarez.Standard()
	hook := func(g *grid.Grid, st *state.State, step int) { hs.Apply(g, st, cfg.Dt2) }
	return dycore.Setup{Alg: alg, PA: 2, PB: 2, Cfg: cfg}, g, hook
}

// TestRunWithOptsProgress checks the boundary callbacks: progress fires once
// per step in order and StepsDone matches the request when nothing stops
// the run.
func TestRunWithOptsProgress(t *testing.T) {
	set, g, hook := ctlSetup(dycore.AlgBaselineYZ)
	var seen []int
	res, _ := dycore.RunWithOpts(set, g, comm.TianheLike(), heldsuarez.InitialState, 3, dycore.RunOpts{
		Hook:     hook,
		Progress: func(done int) { seen = append(seen, done) },
	})
	if res.StepsDone != 3 {
		t.Fatalf("StepsDone = %d, want 3", res.StepsDone)
	}
	if len(seen) != 3 || seen[0] != 1 || seen[1] != 2 || seen[2] != 3 {
		t.Fatalf("progress sequence = %v, want [1 2 3]", seen)
	}
}

// TestRunWithOptsCancel checks that a stop request lands on every rank at
// the same step boundary: the run ends early, all finals are present, and
// the partial result is bitwise identical to an uninterrupted run of the
// same length (baseline Y-Z restarts are exact).
func TestRunWithOptsCancel(t *testing.T) {
	set, g, hook := ctlSetup(dycore.AlgBaselineYZ)
	var stop atomic.Bool
	res, _ := dycore.RunWithOpts(set, g, comm.TianheLike(), heldsuarez.InitialState, 50, dycore.RunOpts{
		Hook: hook,
		Progress: func(done int) {
			if done == 2 {
				stop.Store(true)
			}
		},
		ShouldStop: stop.Load,
	})
	if res.StepsDone != 2 {
		t.Fatalf("StepsDone = %d, want 2 (stop requested at boundary 2)", res.StepsDone)
	}
	for r, st := range res.Finals {
		if st == nil {
			t.Fatalf("rank %d has no final state after cancel", r)
		}
	}
	ref := dycore.RunWithHook(set, g, comm.TianheLike(), heldsuarez.InitialState, 2, hook)
	if d := dycore.MaxDiffGlobal(g, ref.Finals, res.Finals); d != 0 {
		t.Fatalf("cancelled run differs from straight 2-step run: maxdiff %g", d)
	}
}

// TestRunWithOptsSnapshotResume pins restart exactness through the quiesced
// snapshot path: a snapshot taken at the cadence boundary, resumed for the
// remaining steps, reaches a bitwise-identical final state.
func TestRunWithOptsSnapshotResume(t *testing.T) {
	set, g, hook := ctlSetup(dycore.AlgBaselineYZ)
	snaps := map[int]*checkpoint.Global{}
	full, _ := dycore.RunWithOpts(set, g, comm.TianheLike(), heldsuarez.InitialState, 4, dycore.RunOpts{
		Hook:          hook,
		SnapshotEvery: 2,
		Snapshot: func(done int, sts []*state.State) {
			snaps[done] = checkpoint.Gather(g, sts)
		},
	})
	if full.StepsDone != 4 {
		t.Fatalf("StepsDone = %d, want 4", full.StepsDone)
	}
	if snaps[2] == nil || snaps[4] == nil {
		t.Fatalf("snapshot cadence 2 over 4 steps produced boundaries %v, want 2 and 4", keys(snaps))
	}
	rest := dycore.RunWithHook(set, g, comm.TianheLike(), snaps[2].InitFunc(), 2, hook)
	if d := dycore.MaxDiffGlobal(g, full.Finals, rest.Finals); d != 0 {
		t.Fatalf("resumed run differs from uninterrupted run: maxdiff %g", d)
	}
	// The final-boundary snapshot equals the gathered finals (baseline's
	// Finalize is a no-op, so the boundary state is the final state).
	if !snaps[4].Equal(checkpoint.Gather(g, full.Finals)) {
		t.Fatalf("final-boundary snapshot differs from gathered finals")
	}
}

// TestRunWithOptsStopSnapshot checks that a stop always leaves a snapshot at
// the stop boundary even off-cadence.
func TestRunWithOptsStopSnapshot(t *testing.T) {
	set, g, hook := ctlSetup(dycore.AlgBaselineYZ)
	var stop atomic.Bool
	snaps := map[int]*checkpoint.Global{}
	res, _ := dycore.RunWithOpts(set, g, comm.TianheLike(), heldsuarez.InitialState, 50, dycore.RunOpts{
		Hook: hook,
		Progress: func(done int) {
			if done == 3 {
				stop.Store(true)
			}
		},
		ShouldStop:    stop.Load,
		SnapshotEvery: 10,
		Snapshot: func(done int, sts []*state.State) {
			snaps[done] = checkpoint.Gather(g, sts)
		},
	})
	if res.StepsDone != 3 {
		t.Fatalf("StepsDone = %d, want 3", res.StepsDone)
	}
	if snaps[3] == nil {
		t.Fatalf("no stop-boundary snapshot; got boundaries %v", keys(snaps))
	}
}

func keys(m map[int]*checkpoint.Global) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
