package dycore

import (
	"math"
	"sync"

	"cadycore/internal/comm"
	"cadycore/internal/field"
	"cadycore/internal/filter"
	"cadycore/internal/grid"
	"cadycore/internal/operators"
	"cadycore/internal/state"
	"cadycore/internal/topo"
)

// Integrator is one rank's handle on a running dynamical core.
type Integrator interface {
	// Step advances the model by one time step (Δt2 of model time).
	Step()
	// Finalize applies any deferred smoothing so Xi() is the final ξ(K)
	// (Algorithm 2 line 30). Baselines smooth within Step, so their
	// Finalize is a no-op. Call exactly once, after the last Step.
	Finalize()
	// Xi returns this rank's block of the current state.
	Xi() *state.State
	// Counters returns algorithm-level operation counts.
	Counters() Counters
}

// Counters tracks the algorithm-level operation counts the paper reports
// (Section 4.4: exchanges per step 13 → 2, z-collectives 3M → 2M).
type Counters struct {
	Steps          int
	HaloExchanges  int64 // neighbor-exchange rounds
	CEvaluations   int64 // Ĉ evaluations (each is one z-collective round)
	FilterCalls    int64 // F̃ applications (collective only when p_x > 1)
	SmoothingCalls int64
}

// core holds the per-rank machinery shared by all integrators.
type core struct {
	cfg Config
	g   *grid.Grid
	tp  *topo.Topology
	w   *comm.Comm

	flt *filter.Filter
	smo *operators.Smoother
	// spe is the spectral smoothing fast path; nil unless
	// Config.SpectralSmooth is on and this rank owns full zonal circles
	// (x-decomposed blocks keep the stencil reference). Call sites branch
	// `if c.spe != nil` so the default path's code — and bits — are
	// untouched.
	spe *operators.SpectralSmoother
	sur *operators.Surface

	xi *state.State // current ξ

	// work states of the nonlinear iteration
	psi, eta1, eta2, mid *state.State
	tnd                  *operators.Tendency

	divp  *field.F3
	cNew  *operators.CRes
	cLast *operators.CRes
	advSc *operators.AdvScratch

	// Steady-state scratch: fixed exchange-payload arrays, the vertical-
	// summation work planes, the slab-decomposition buffer and (for Workers
	// > 1) per-worker advection scratch and result slots. Together these
	// make Step free of heap allocation after the first step.
	csSc    operators.CSumScratch
	exF3    [4]*field.F3
	exF2    [2]*field.F2
	slabBuf [6]field.Rect
	advScW  []*operators.AdvScratch
	parRes  []int

	n Counters
}

func newCore(cfg Config, g *grid.Grid, tp *topo.Topology) *core {
	cfg.Validate()
	if cfg.ShiftedPoleMirror && tp.Px != 1 {
		panic("dycore: ShiftedPoleMirror requires p_x = 1 (full longitude circles per rank)")
	}
	b := tp.Block
	c := &core{
		cfg: cfg, g: g, tp: tp, w: tp.World,
		flt:   filter.New(g, cfg.FilterCutoffDeg),
		smo:   operators.NewSmoother(g, cfg.Beta),
		sur:   operators.NewSurface(b),
		xi:    state.New(b),
		psi:   state.New(b),
		eta1:  state.New(b),
		eta2:  state.New(b),
		mid:   state.New(b),
		tnd:   operators.NewTendency(b),
		divp:  field.NewF3(b),
		cNew:  operators.NewCRes(b),
		cLast: operators.NewCRes(b),
		advSc: operators.NewAdvScratch(b),
	}
	for _, st := range []*state.State{c.xi, c.psi, c.eta1, c.eta2, c.mid} {
		st.ShiftedPoles = cfg.ShiftedPoleMirror
	}
	if cfg.SpectralSmooth && b.OwnsFullX() {
		c.spe = operators.NewSpectralSmoother(g, c.smo)
	}
	if nw := cfg.Workers; nw > 1 {
		c.advScW = make([]*operators.AdvScratch, nw)
		c.advScW[0] = c.advSc
		for i := 1; i < nw; i++ {
			c.advScW[i] = operators.NewAdvScratch(b)
		}
		c.parRes = make([]int, nw)
	}
	return c
}

// Xi returns the current state.
func (c *core) Xi() *state.State { return c.xi }

// Counters returns the operation counts.
func (c *core) Counters() Counters { return c.n }

// exchangeFields returns the message payload of one halo exchange: the state
// components plus the cached Ĉ fields (PW interfaces and D̄), which ride
// along like the diagnostic components of the original model's ξ. The slices
// alias fixed core arrays (reused per call — at most one exchange may be in
// flight, which holds by construction in both integrators).
func (c *core) exchangeFields(st *state.State) (f3s []*field.F3, f2s []*field.F2) {
	c.exF3[0], c.exF3[1], c.exF3[2], c.exF3[3] = st.U, st.V, st.Phi, c.cLast.PWI
	c.exF2[0], c.exF2[1] = st.Psa, c.cLast.DBar
	return c.exF3[:], c.exF2[:]
}

// parKSum splits r into contiguous k chunks across cfg.Workers goroutines,
// runs fn on each and returns the summed work counts. It must only be
// reached with Workers > 1 (call sites keep a closure-free serial branch so
// that the default configuration performs no heap allocation).
//
//cadyvet:assumeclean goroutine fan-out runs only when Workers > 1; the single-worker steady state pinned by the alloc benchmark never reaches it
func (c *core) parKSum(r field.Rect, fn func(sub field.Rect, wid int) int) int {
	nw := c.cfg.Workers
	nk := r.K1 - r.K0
	if nw > nk {
		nw = nk
	}
	if nw <= 1 {
		return fn(r, 0)
	}
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		sub := r
		sub.K0 = r.K0 + w*nk/nw
		sub.K1 = r.K0 + (w+1)*nk/nw
		wg.Add(1)
		go func(sub field.Rect, w int) {
			defer wg.Done()
			c.parRes[w] = fn(sub, w)
		}(sub, w)
	}
	wg.Wait()
	total := 0
	for w := 0; w < nw; w++ {
		total += c.parRes[w]
	}
	return total
}

// localFill refreshes all locally computable boundary values of st and of
// the cached Ĉ fields.
func (c *core) localFill(st *state.State) {
	st.FillLocalBounds()
	c.fillCBounds(c.cLast)
}

// fillCBounds refreshes the periodic-x halos of a Ĉ result (pole/vertical
// ghosts of PWI are never read: σ̇ interfaces stay within [0, Nz], and the y
// mirror of PWI follows the even mirror of its inputs).
func (c *core) fillCBounds(cr *operators.CRes) {
	if c.tp.Block.OwnsFullX() && c.tp.Block.Hx > 0 {
		cr.PWI.FillXPeriodic()
		cr.DBar.FillXPeriodic()
	}
	if c.cfg.ShiftedPoleMirror {
		field.FillPolesYShifted(cr.PWI, field.Even, field.CenterY)
		field.FillPolesY2Shifted(cr.DBar, field.Even)
		return
	}
	field.FillPolesY(cr.PWI, field.Even, field.CenterY)
	field.FillPolesY2(cr.DBar, field.Even)
}

// evalC evaluates Ĉ at src over the tendency rect r: D(P) on r, then the
// z-collective summation into dst. The caller must have called
// c.sur.Update(src.Psa) since the last change of src.Psa.
func (c *core) evalC(src *state.State, dst *operators.CRes, r field.Rect) {
	c.evalDivP(src, r)
	c.sumC(dst, r)
}

// evalDivP computes the pointwise divergence term D(P) of Ĉ at src over r
// into c.divp. It is the communication-free half of evalC, split out so the
// overlap path can run it on the interior rect while halo messages fly and
// on the boundary slabs afterwards — D(P) is per-point pure, so any disjoint
// cover of r produces bitwise the monolithic result.
func (c *core) evalDivP(src *state.State, r field.Rect) {
	var w1 int
	if c.cfg.Workers <= 1 {
		w1 = operators.DivP(c.g, src.U, src.V, c.sur, c.divp, r)
	} else {
		//cadyvet:allow Workers>1 tiling path; excluded from the single-worker zero-alloc invariant (serial branch above is closure-free)
		w1 = c.parKSum(r, func(sub field.Rect, _ int) int {
			return operators.DivP(c.g, src.U, src.V, c.sur, c.divp, sub)
		})
	}
	c.w.Compute(float64(w1) * costDivP)
}

// sumC completes Ĉ from the precomputed c.divp over r: the z-collective
// summation into dst. One call = one z-collective round, so the overlap
// split (which covers r with evalDivP pieces but sums once) keeps the
// algorithm's collective count identical to the monolithic path.
func (c *core) sumC(dst *operators.CRes, r field.Rect) {
	w2 := operators.CSumWith(c.g, c.tp.ColZ, c.w, c.divp, dst, r, r.K0, r.K1, &c.csSc)
	c.w.Compute(float64(w2) * costCSum)
	c.fillCBounds(dst)
	c.n.CEvaluations++
}

// updateSurface recomputes the 2-D surface diagnostics from src's p'_sa.
func (c *core) updateSurface(src *state.State) {
	w := c.sur.Update(src.Psa)
	c.w.Compute(float64(w) * costSurface)
}

// refreshSurface is updateSurface without the clock charge. The overlap path
// uses it after Finish: the charged pre-exchange update already priced the
// pointwise work, but the halo cells it computed from stale p'_sa must be
// recomputed from the received values before any boundary-slab kernel reads
// them. The owned cells recompute to bitwise the same values, so the final
// surface equals the monolithic path's.
func (c *core) refreshSurface(src *state.State) {
	c.sur.Update(src.Psa)
}

// adaptTendency evaluates Â(src) + the Ĉ contributions from cres over r
// into c.tnd.
func (c *core) adaptTendency(src *state.State, cres *operators.CRes, r field.Rect) {
	var w int
	if c.cfg.Workers <= 1 {
		w = operators.Adaptation3D(c.g, src, c.sur, cres, c.tnd, r)
	} else {
		//cadyvet:allow Workers>1 tiling path; excluded from the single-worker zero-alloc invariant (serial branch above is closure-free)
		w = c.parKSum(r, func(sub field.Rect, _ int) int {
			return operators.Adaptation3D(c.g, src, c.sur, cres, c.tnd, sub)
		})
	}
	// The 2-D surface-pressure component runs once, outside the k tiling.
	w += operators.AdaptationPsa(c.g, c.cfg.Adapt, src, cres, c.tnd, r)
	c.w.Compute(float64(w) * costAdapt)
}

// advectTendency evaluates L̃(src) with σ̇ from cres over r into c.tnd.
func (c *core) advectTendency(src *state.State, cres *operators.CRes, r field.Rect) {
	var w int
	if c.cfg.Workers <= 1 {
		w = operators.Advection3D(c.g, src, c.sur, cres, c.tnd, r, c.advSc)
	} else {
		// Each worker brings its own scratch: adjacent k tiles both write
		// their shared σ̇ boundary interface (see operators.Advection3D).
		//cadyvet:allow Workers>1 tiling path; excluded from the single-worker zero-alloc invariant (serial branch above is closure-free)
		w = c.parKSum(r, func(sub field.Rect, wid int) int {
			return operators.Advection3D(c.g, src, c.sur, cres, c.tnd, sub, c.advScW[wid])
		})
	}
	operators.AdvectionPsa(c.tnd, r)
	c.w.Compute(float64(w) * costAdvect)
}

// filterTendency applies F̃ to the tendency over r: the serial per-latitude
// filter when this rank owns full circles (zero communication), otherwise
// the distributed transpose filter over the owned region.
func (c *core) filterTendency(r field.Rect) {
	c.n.FilterCalls++
	logn := math.Log2(float64(c.g.Nx))
	if c.tp.Block.OwnsFullX() {
		rows := 0
		rows += c.flt.Apply(c.tnd.DU, r)
		rows += c.flt.Apply(c.tnd.DV, r)
		rows += c.flt.Apply(c.tnd.DPhi, r)
		rows += c.flt.Apply2(c.tnd.DPsa, r)
		c.w.Compute(float64(rows) * float64(c.g.Nx) * logn * costFilterRow)
		return
	}
	// Distributed path: one batched transpose round-trip for all components
	// of the tendency (like a production X-Y implementation).
	rows := c.flt.ApplyDistBatch(c.tp, c.tnd.F3s(), c.tnd.F2s())
	c.w.Compute(float64(rows) * float64(c.g.Nx) * logn * costFilterRow)
}

// chargeSmooth advances the simulated clock for one spectral-path smoothing
// call: stencil-fallback points at the full S̃ rate, y-coupling points at
// the P1y rate, and transformed rows at the filter-row rate (one RealPlan
// round trip each, nx·log2(nx) equivalents — the same currency
// filterTendency charges in).
func (c *core) chargeSmooth(wk operators.SmoothWork) {
	logn := math.Log2(float64(c.g.Nx))
	c.w.Compute(float64(wk.Sten)*costSmooth +
		float64(wk.YPts)*costSmoothY +
		float64(wk.Rows)*float64(c.g.Nx)*logn*costFilterRow)
}

// applyUpdate sets dst ← base + dt·tendency over rect r (the tendency's
// computed region — values outside it are stale-but-finite and are never
// consumed), then refreshes dst's local boundary cells.
func (c *core) applyUpdate(dst, base *state.State, dt float64, r field.Rect) {
	field.Lin2Rect(dst.U, 1, base.U, dt, c.tnd.DU, r)
	field.Lin2Rect(dst.V, 1, base.V, dt, c.tnd.DV, r)
	field.Lin2Rect(dst.Phi, 1, base.Phi, dt, c.tnd.DPhi, r)
	field.Lin2Rect2(dst.Psa, 1, base.Psa, dt, c.tnd.DPsa, r)
	c.w.Compute(float64(4*r.Count()) * costLincomb)
	dst.FillLocalBounds()
}

// expandInternal grows the owned rect by (dy, dz) into the halo, clamped to
// the global domain (halo cells beyond the poles or the vertical boundaries
// are mirror-filled, not part of compute regions).
func (c *core) expandInternal(dy, dz int) field.Rect {
	b := c.tp.Block
	r := b.Owned()
	r.J0 -= dy
	r.J1 += dy
	r.K0 -= dz
	r.K1 += dz
	if r.J0 < 0 {
		r.J0 = 0
	}
	if r.J1 > c.g.Ny {
		r.J1 = c.g.Ny
	}
	if r.K0 < 0 {
		r.K0 = 0
	}
	if r.K1 > c.g.Nz {
		r.K1 = c.g.Nz
	}
	return r
}

// shrinkInternal shrinks r by (dy, dz) on every side that is not a global
// domain boundary (where mirror refills keep validity).
func (c *core) shrinkInternal(r field.Rect, dy, dz int) field.Rect {
	if r.J0 != 0 {
		r.J0 += dy
	}
	if r.J1 != c.g.Ny {
		r.J1 -= dy
	}
	if r.K0 != 0 {
		r.K0 += dz
	}
	if r.K1 != c.g.Nz {
		r.K1 -= dz
	}
	return r
}

// shrinkByDepths shrinks r by an exchanger's per-side depths on every side
// that is fed by communication: both x sides whenever the exchanger carries
// x traffic (longitude is periodic, so both sides are remote), and the y/z
// sides that are not global domain boundaries (those are mirror-filled
// locally and stay valid while messages fly). The result is the interior
// rect whose stencil reads cannot touch in-flight halo cells.
func (c *core) shrinkByDepths(r field.Rect, d topo.Depths) field.Rect {
	if d.X > 0 {
		r.I0 += d.X
		r.I1 -= d.X
	}
	if r.J0 != 0 {
		r.J0 += d.YLo
	}
	if r.J1 != c.g.Ny {
		r.J1 -= d.YHi
	}
	if r.K0 != 0 {
		r.K0 += d.ZLo
	}
	if r.K1 != c.g.Nz {
		r.K1 -= d.ZHi
	}
	return r
}

// slabs returns outer \ inner as a list of disjoint rects (inner must be
// contained in outer; empty slabs are dropped). Used by the overlap path:
// the inner rect is computed while messages fly, the slabs afterwards.
// The result aliases c.slabBuf (at most 6 rects), valid until the next call.
func (c *core) slabs(outer, inner field.Rect) []field.Rect {
	out := c.slabBuf[:0]
	if inner.Empty() {
		//cadyvet:allow appends into the fixed-capacity 6-slot slabBuf; at most 6 candidates exist, so the backing array never grows
		return append(out, outer)
	}
	cand := [6]field.Rect{
		// k-slabs below and above the inner box.
		{I0: outer.I0, I1: outer.I1, J0: outer.J0, J1: outer.J1, K0: outer.K0, K1: inner.K0},
		{I0: outer.I0, I1: outer.I1, J0: outer.J0, J1: outer.J1, K0: inner.K1, K1: outer.K1},
		// j-slabs within the inner k range.
		{I0: outer.I0, I1: outer.I1, J0: outer.J0, J1: inner.J0, K0: inner.K0, K1: inner.K1},
		{I0: outer.I0, I1: outer.I1, J0: inner.J1, J1: outer.J1, K0: inner.K0, K1: inner.K1},
		// i-slabs within the inner j, k ranges.
		{I0: outer.I0, I1: inner.I0, J0: inner.J0, J1: inner.J1, K0: inner.K0, K1: inner.K1},
		{I0: inner.I1, I1: outer.I1, J0: inner.J0, J1: inner.J1, K0: inner.K0, K1: inner.K1},
	}
	for _, r := range cand {
		if !r.Empty() {
			//cadyvet:allow appends into the fixed-capacity 6-slot slabBuf; at most 6 candidates exist, so the backing array never grows
			out = append(out, r)
		}
	}
	return out
}
