package dycore_test

import (
	"fmt"

	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
)

// Example runs the communication-avoiding dynamical core for two steps on a
// small mesh and prints the communication structure of Algorithm 2: two
// halo-exchange rounds and 2M vertical collectives per step.
func Example() {
	g := grid.New(32, 16, 6)
	cfg := dycore.DefaultConfig() // M = 3
	cfg.Dt1, cfg.Dt2 = 30, 180

	setup := dycore.Setup{Alg: dycore.AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg}
	res := dycore.Run(setup, g, comm.Zero(), heldsuarez.InitialState, 2)

	c := res.Count
	perStepEx := (c.HaloExchanges - 2) / int64(c.Steps)  // minus bootstrap + finalize
	perStepC := (c.CEvaluations - 1) / int64(c.Steps)    // minus bootstrap
	fmt.Printf("exchange rounds per step: %d\n", perStepEx)
	fmt.Printf("z-collectives per step: %d (= 2M)\n", perStepC)
	fmt.Printf("stable: %v\n", res.Finals[0].AllFinite())
	// Output:
	// exchange rounds per step: 2
	// z-collectives per step: 6 (= 2M)
	// stable: true
}

// ExampleRun_comparison runs the original and the communication-avoiding
// algorithms on the same configuration and compares their per-step exchange
// counts (the paper's 13 → 2 for M = 3).
func ExampleRun_comparison() {
	g := grid.New(32, 16, 6)
	cfg := dycore.DefaultConfig()
	cfg.Dt1, cfg.Dt2 = 30, 180

	yz := dycore.Run(dycore.Setup{Alg: dycore.AlgBaselineYZ, PA: 2, PB: 2, Cfg: cfg},
		g, comm.Zero(), heldsuarez.InitialState, 1)
	ca := dycore.Run(dycore.Setup{Alg: dycore.AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg},
		g, comm.Zero(), heldsuarez.InitialState, 1)

	fmt.Printf("original-YZ exchanges/step: %d\n", yz.Count.HaloExchanges-1)
	fmt.Printf("comm-avoiding exchanges/step: %d\n", ca.Count.HaloExchanges-2)
	// Output:
	// original-YZ exchanges/step: 13
	// comm-avoiding exchanges/step: 2
}
