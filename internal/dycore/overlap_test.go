package dycore

import (
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/fault"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/state"
)

// TestOverlapBitwiseAcrossLayouts is the tentpole equivalence property: the
// overlapped Begin/interior/Finish/shell split must be bitwise identical to
// the quiesced (NoOverlap) reference on every algorithm, decomposition and
// row partition — the split only reorders bookkeeping, never the per-point
// operation sequence.
func TestOverlapBitwiseAcrossLayouts(t *testing.T) {
	g := testGrid() // 16×10×4
	cases := []struct {
		name       string
		alg        Algorithm
		pa, pb, pc int
		rows       []int
	}{
		{"serial", AlgBaselineYZ, 1, 1, 0, nil},
		{"yz-uniform", AlgBaselineYZ, 2, 2, 0, nil},
		{"yz-weighted", AlgBaselineYZ, 2, 2, 0, []int{0, 4, 10}},
		{"xy-uniform", AlgBaselineXY, 2, 2, 0, nil},
		{"xy-weighted", AlgBaselineXY, 2, 2, 0, []int{0, 4, 10}},
		{"3d-uniform", AlgBaseline3D, 2, 2, 2, nil},
		{"ca-uniform", AlgCommAvoid, 2, 2, 0, nil},
		{"ca-weighted", AlgCommAvoid, 2, 2, 0, []int{0, 4, 10}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testCfg(2)
			quiet := cfg
			quiet.NoOverlap = true
			set := Setup{Alg: tc.alg, PA: tc.pa, PB: tc.pb, PC: tc.pc, Cfg: cfg, RowStarts: tc.rows}
			qset := set
			qset.Cfg = quiet
			ov := Run(set, g, comm.TianheLike(), testInit, 3)
			qu := Run(qset, g, comm.TianheLike(), testInit, 3)
			if d := MaxDiffGlobal(g, ov.Finals, qu.Finals); d != 0 {
				t.Errorf("overlap deviates from quiesced by %g, want bitwise identity", d)
			}
			if tc.pa*tc.pb*max(tc.pc, 1) > 1 {
				// The overlap must be visible in the simulated clock: hidden
				// flight time appears, and the critical path never grows.
				if h := ov.Agg.TotalHiddenTime(); h <= 0 {
					t.Errorf("overlapped run hid no communication (hidden = %g)", h)
				}
				if ov.Agg.SimTime > qu.Agg.SimTime {
					t.Errorf("overlapped clock %g exceeds quiesced clock %g",
						ov.Agg.SimTime, qu.Agg.SimTime)
				}
			}
		})
	}
}

// TestStagedExchangeMatchesMonolithic checks the staged-exchange mode: a
// halo of depth s < M refreshed ⌈M/s⌉ times per step stays within
// approximation error of the single deep exchange (the mid-step refreshes
// only make halo data fresher), and s = M (or 0) recovers the monolithic
// schedule bitwise.
func TestStagedExchangeMatchesMonolithic(t *testing.T) {
	g := testGrid()
	cfg := testCfg(3)
	mono := Run(Setup{Alg: AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg}, g, comm.TianheLike(), testInit, 3)
	scale := maxAbsVec(FlattenState(g, mono.Finals))

	for _, s := range []int{1, 2} {
		staged := cfg
		staged.StageM = s
		res := Run(Setup{Alg: AlgCommAvoid, PA: 2, PB: 2, Cfg: staged}, g, comm.TianheLike(), testInit, 3)
		if d := MaxDiffGlobal(g, mono.Finals, res.Finals); d > 1e-6*(1+scale) {
			t.Errorf("stage depth %d deviates from monolithic by %g (scale %g)", s, d, scale)
		}
		if res.Count.HaloExchanges <= mono.Count.HaloExchanges {
			t.Errorf("stage depth %d did %d exchange rounds, want more than the monolithic %d",
				s, res.Count.HaloExchanges, mono.Count.HaloExchanges)
		}
	}

	// Full-depth staging is the monolithic schedule, bitwise.
	full := cfg
	full.StageM = cfg.M
	res := Run(Setup{Alg: AlgCommAvoid, PA: 2, PB: 2, Cfg: full}, g, comm.TianheLike(), testInit, 3)
	if d := MaxDiffGlobal(g, mono.Finals, res.Finals); d != 0 {
		t.Errorf("StageM = M deviates from monolithic by %g, want bitwise identity", d)
	}
	if res.Count.HaloExchanges != mono.Count.HaloExchanges {
		t.Errorf("StageM = M did %d exchange rounds, monolithic did %d",
			res.Count.HaloExchanges, mono.Count.HaloExchanges)
	}
}

// TestOverlapBitwiseUnderJitter is the straggler soak: message jitter and a
// slow rank stretch the simulated clock but must not leak into the numerics
// — the overlapped split reads halo cells only after Finish drained them,
// however late the messages arrive. The Held–Suarez hook keeps the
// hook-mutates-ghost-currency path (the historical failure mode) exercised.
func TestOverlapBitwiseUnderJitter(t *testing.T) {
	g := grid.New(32, 16, 8)
	cfg := testCfg(2)
	hs := heldsuarez.Standard()
	hook := func(g *grid.Grid, st *state.State, step int) { hs.Apply(g, st, cfg.Dt2) }
	inj := fault.New(fault.Plan{
		Seed:       7,
		Stragglers: []fault.Straggler{{Rank: 1, Scale: 1.7}},
		Jitter:     &fault.Jitter{Prob: 0.4, MaxDelay: 2e-4},
	})
	for _, alg := range []Algorithm{AlgBaselineYZ, AlgCommAvoid} {
		set := Setup{Alg: alg, PA: 2, PB: 2, Cfg: cfg}
		clean, _ := RunWithOpts(set, g, comm.TianheLike(), heldsuarez.InitialState, 4,
			RunOpts{Hook: hook})
		jit, _ := RunWithOpts(set, g, comm.TianheLike(), heldsuarez.InitialState, 4,
			RunOpts{Hook: hook, Faults: inj.CommFaults(4)})
		if d := MaxDiffGlobal(g, clean.Finals, jit.Finals); d != 0 {
			t.Errorf("alg %v: jitter changed the numerics by %g, want bitwise identity", alg, d)
		}
		if jit.Agg.SimTime <= clean.Agg.SimTime {
			t.Errorf("alg %v: jittered clock %g not above fault-free clock %g",
				alg, jit.Agg.SimTime, clean.Agg.SimTime)
		}
	}
}

// TestOverlapStatsExposed checks the per-exchanger accounting surfaced
// through RunResult.Exch: every exchanger Begin has a matching Finish, and
// the overlapped run accumulates hidden seconds the quiesced run does not.
func TestOverlapStatsExposed(t *testing.T) {
	g := testGrid()
	cfg := testCfg(2)
	quiet := cfg
	quiet.NoOverlap = true
	ov := Run(Setup{Alg: AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg}, g, comm.TianheLike(), testInit, 3)
	qu := Run(Setup{Alg: AlgCommAvoid, PA: 2, PB: 2, Cfg: quiet}, g, comm.TianheLike(), testInit, 3)
	if len(ov.Exch) == 0 {
		t.Fatal("no per-exchanger stats reported")
	}
	hidden := 0.0
	for _, ex := range ov.Exch {
		if ex.Begins != ex.Finishes {
			t.Errorf("exchanger %q: %d Begins vs %d Finishes", ex.Label, ex.Begins, ex.Finishes)
		}
		hidden += ex.HiddenSec
	}
	if hidden <= 0 {
		t.Error("overlapped run reports no hidden seconds in exchanger stats")
	}
	if f := ov.Agg.OverlapFraction(); f <= qu.Agg.OverlapFraction() {
		t.Errorf("overlap fraction %g not above quiesced %g", f, qu.Agg.OverlapFraction())
	}
}
