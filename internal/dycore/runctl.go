package dycore

import (
	"sync"

	"cadycore/internal/comm"
	"cadycore/internal/state"
)

// RunOpts bundles the optional controls of a run. The zero value reproduces
// plain Run. Progress, ShouldStop and Snapshot engage a step-boundary
// barrier: after every step all ranks park on a real (wall-clock) barrier —
// invisible to the simulated LogP clock and the communication statistics —
// where a single leader samples the callbacks. This gives every rank the
// same stop decision (no rank can run ahead into a collective its peers
// abandoned) and gives Snapshot a quiesced, consistent view of all per-rank
// states.
type RunOpts struct {
	// Hook runs on each rank after every step (Held–Suarez forcing etc.);
	// it must be pointwise. Identical to the hook of RunWithHook.
	Hook StepHook
	// Progress, if non-nil, is called once per step boundary with the
	// number of completed steps (1-based). It runs on one goroutine at a
	// time, while all ranks are parked.
	Progress func(done int)
	// ShouldStop, if non-nil, is sampled once per step boundary by the
	// barrier leader; returning true stops every rank at that boundary
	// (Finalize still runs, so Finals are well-formed). Use it to plumb a
	// context cancellation or deadline into the run.
	ShouldStop func() bool
	// Snapshot, if non-nil, is called while all ranks are quiesced at a
	// step boundary, with the completed-step count and the per-rank states
	// in rank order. It fires every SnapshotEvery-th boundary and, in any
	// case, at a ShouldStop-triggered stop (so a cancelled run always
	// leaves a checkpoint at its exact stop point).
	Snapshot func(done int, sts []*state.State)
	// SnapshotEvery is the cadence of Snapshot in steps; <= 0 means only
	// stop-triggered snapshots.
	SnapshotEvery int
	// Resume marks the initial state as a mid-trajectory checkpoint rather
	// than a fresh initial condition: integrators implementing ResumeSetter
	// (the comm-avoiding scheme) then apply the deferred smoothing the
	// checkpointed state still owes, instead of silently dropping it.
	Resume bool
	// Traced enables per-rank event tracing (see RunTraced).
	Traced bool
	// Faults, if non-nil, installs a fault-injection profile (stragglers,
	// message jitter, transient send errors) on the world before the run
	// starts; see comm.SetFaults. Nil keeps the run bitwise identical to a
	// fault-free one.
	Faults *comm.Faults
	// CrashAt, if non-nil, is consulted on every rank after each completed
	// step (with the 1-based completed-step count); returning true kills
	// that rank with a RankFailure panic, which surfaces to the caller as a
	// typed abort in RunResult.Abort instead of a panic. The crash fires
	// before the step-boundary barrier, so no snapshot is taken at the
	// crash boundary — recovery is from the latest periodic checkpoint,
	// like a real mid-step rank death.
	CrashAt func(rank, done int) bool
	// Rebalance, if non-nil, is sampled once per step boundary by the
	// barrier leader — after Progress, and only when ShouldStop has not
	// already stopped the run — with the completed-step count and the
	// per-rank simulated clock and compute seconds in rank order. The two
	// slices are preallocated and reused across boundaries (zero allocations
	// on the hot path); callers must copy what they retain. Returning true
	// stops every rank at that boundary exactly like ShouldStop, including
	// the stop-triggered Snapshot — which is how the load-rebalancing
	// controller quiesces a run for an in-flight migration. Like the barrier
	// itself, the sampling is invisible to the LogP clock.
	Rebalance func(done int, clock, comp []float64) bool
}

// controlled reports whether the step-boundary barrier is needed.
func (o RunOpts) controlled() bool {
	return o.Progress != nil || o.ShouldStop != nil || o.Snapshot != nil || o.Rebalance != nil
}

// stepCtl is the step-boundary barrier. Ranks call arrive after each step;
// the last rank to arrive becomes the leader, runs the callbacks under the
// lock (all peers are parked in Wait), publishes the stop decision and
// releases the generation.
type stepCtl struct {
	mu   sync.Mutex
	cond *sync.Cond
	opts RunOpts

	n       int
	arrived int
	gen     uint64
	stop    bool
	broken  bool
	sts     []*state.State
	// clock and comp are the per-rank telemetry registered at each arrival,
	// preallocated once so the boundary stays allocation-free.
	clock []float64
	comp  []float64
}

func newStepCtl(n int, opts RunOpts) *stepCtl {
	c := &stepCtl{opts: opts, n: n, sts: make([]*state.State, n),
		clock: make([]float64, n), comp: make([]float64, n)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// arrive parks the rank at the boundary after `done` completed steps and
// returns the leader's stop decision for that boundary. st is the rank's
// current state, registered for Snapshot; clk and cmp are its simulated
// clock and compute seconds, registered for Rebalance.
func (c *stepCtl) arrive(done, rank int, st *state.State, clk, cmp float64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return true
	}
	c.sts[rank] = st
	c.clock[rank] = clk
	c.comp[rank] = cmp
	c.arrived++
	if c.arrived < c.n {
		gen := c.gen
		for gen == c.gen && !c.broken {
			c.cond.Wait()
		}
		if c.broken {
			return true
		}
		return c.stop
	}
	// Leader: every rank is parked at this boundary. Progress is reported
	// before the stop decision so a controller reacting to it (deadline,
	// cancellation) takes effect at this same boundary.
	if c.opts.Progress != nil {
		c.opts.Progress(done)
	}
	stop := c.opts.ShouldStop != nil && c.opts.ShouldStop()
	if !stop && c.opts.Rebalance != nil {
		stop = c.opts.Rebalance(done, c.clock, c.comp)
	}
	if c.opts.Snapshot != nil && (stop || (c.opts.SnapshotEvery > 0 && done%c.opts.SnapshotEvery == 0)) {
		c.opts.Snapshot(done, c.sts)
	}
	c.stop = stop
	c.arrived = 0
	c.gen++
	c.cond.Broadcast()
	return stop
}

// abort releases every parked rank with a stop decision. It is called when a
// rank panics so its peers do not wait forever on a barrier the dead rank
// can never reach (the comm layer's poison only wakes ranks blocked in
// Recv, not on this barrier).
func (c *stepCtl) abort() {
	c.mu.Lock()
	c.broken = true
	c.gen++
	c.cond.Broadcast()
	c.mu.Unlock()
}
