package dycore

import (
	"reflect"
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/state"
)

// stepAllocs builds a single-rank integrator, warms it up, and measures the
// heap allocations of a steady-state Step. testing.AllocsPerRun counts
// process-global mallocs, so the measurement only makes sense on one rank
// with serial tiling (Workers ≤ 1).
func stepAllocs(t *testing.T, alg Algorithm, cfg Config) float64 {
	t.Helper()
	g := testGrid()
	s := Setup{Alg: alg, PA: 1, PB: 1, Cfg: cfg}
	var allocs float64
	w := comm.NewWorld(1, comm.Zero())
	w.Run(func(c *comm.Comm) {
		tp, ig := s.Build(c, g)
		st := state.New(tp.Block)
		testInit(g, st)
		ig.(StateSetter).SetState(st)
		// Warm-up: the first steps grow the exchange buffers and any
		// lazily sized scratch to their steady-state capacity.
		ig.Step()
		ig.Step()
		allocs = testing.AllocsPerRun(3, ig.Step)
	})
	return allocs
}

// TestStepZeroAllocBaselineYZ asserts the steady-state baseline step
// performs no heap allocations (ISSUE: zero-allocation kernel engine).
func TestStepZeroAllocBaselineYZ(t *testing.T) {
	if a := stepAllocs(t, AlgBaselineYZ, testCfg(2)); a != 0 {
		t.Fatalf("baseline-YZ steady-state Step allocates %v times per run, want 0", a)
	}
}

// TestStepZeroAllocCommAvoid asserts the steady-state communication-avoiding
// step performs no heap allocations.
func TestStepZeroAllocCommAvoid(t *testing.T) {
	if a := stepAllocs(t, AlgCommAvoid, testCfg(2)); a != 0 {
		t.Fatalf("comm-avoiding steady-state Step allocates %v times per run, want 0", a)
	}
}

// TestWorkersBitwiseEquivalent asserts the intra-rank tiling knob changes
// neither the results (bitwise) nor the simulated metrics: work counts are
// preserved across the k-chunk split and the Psa parts run exactly once.
func TestWorkersBitwiseEquivalent(t *testing.T) {
	g := testGrid()
	cfg := testCfg(2)
	ref := Run(Setup{Alg: AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg}, g, comm.Zero(), testInit, 2)

	for _, nw := range []int{2, 3, 4} {
		cfgW := cfg
		cfgW.Workers = nw
		got := Run(Setup{Alg: AlgCommAvoid, PA: 2, PB: 2, Cfg: cfgW}, g, comm.Zero(), testInit, 2)
		if d := MaxDiffGlobal(g, ref.Finals, got.Finals); d != 0 {
			t.Errorf("Workers=%d: state deviates from serial by %g (want bitwise match)", nw, d)
		}
		if !reflect.DeepEqual(got.Agg, ref.Agg) {
			t.Errorf("Workers=%d: aggregate metrics differ\n got %+v\nwant %+v", nw, got.Agg, ref.Agg)
		}
		if got.Count != ref.Count {
			t.Errorf("Workers=%d: counters differ\n got %+v\nwant %+v", nw, got.Count, ref.Count)
		}
	}
}

// TestWorkersBaselineBitwiseEquivalent covers the baseline integrator's
// tiled kernels (adaptation, advection, D(P)) the same way.
func TestWorkersBaselineBitwiseEquivalent(t *testing.T) {
	g := testGrid()
	cfg := testCfg(2)
	ref := Run(Setup{Alg: AlgBaselineYZ, PA: 2, PB: 1, Cfg: cfg}, g, comm.Zero(), testInit, 2)

	cfgW := cfg
	cfgW.Workers = 3
	got := Run(Setup{Alg: AlgBaselineYZ, PA: 2, PB: 1, Cfg: cfgW}, g, comm.Zero(), testInit, 2)
	if d := MaxDiffGlobal(g, ref.Finals, got.Finals); d != 0 {
		t.Errorf("Workers=3 baseline: state deviates by %g (want bitwise match)", d)
	}
	if !reflect.DeepEqual(got.Agg, ref.Agg) {
		t.Errorf("Workers=3 baseline: aggregate metrics differ\n got %+v\nwant %+v", got.Agg, ref.Agg)
	}
}
