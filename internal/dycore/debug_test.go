package dycore

import (
	"fmt"
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/state"
)

// TestDebugLocateDivergence is a diagnostic aid: it reports where the first
// cross-decomposition difference appears. Skipped unless it finds one at a
// configuration that must match bitwise.
func TestDebugLocateDivergence(t *testing.T) {
	g := testGrid()
	cfg := testCfg(1)
	for steps := 1; steps <= 2; steps++ {
		serial := Run(Setup{Alg: AlgBaselineYZ, PA: 1, PB: 1, Cfg: cfg}, g, comm.Zero(), testInit, steps)
		par := Run(Setup{Alg: AlgBaselineYZ, PA: 2, PB: 1, Cfg: cfg}, g, comm.Zero(), testInit, steps)
		d := MaxDiffGlobal(g, serial.Finals, par.Finals)
		if d == 0 {
			continue
		}
		t.Logf("steps=%d maxdiff=%g", steps, d)
		report(t, g, serial.Finals, par.Finals)
		t.FailNow()
	}
}

func report(t *testing.T, g interface {
	Points() int
}, a, b []*state.State) {
	gg := testGrid()
	fa := FlattenState(gg, a)
	fb := FlattenState(gg, b)
	n3 := gg.Nx * gg.Ny * gg.Nz
	names := []string{"U", "V", "Phi", "Psa"}
	count := 0
	for i := range fa {
		if fa[i] != fb[i] && count < 12 {
			comp := 3
			rem := i
			if i < 3*n3 {
				comp = i / n3
				rem = i % n3
			} else {
				rem = i - 3*n3
			}
			k := rem / (gg.Nx * gg.Ny)
			j := (rem / gg.Nx) % gg.Ny
			ii := rem % gg.Nx
			t.Logf("%s(%d,%d,%d): %v vs %v (diff %g)", names[comp], ii, j, k, fa[i], fb[i], fa[i]-fb[i])
			count++
		}
	}
	fmt.Println("total diffs:", count)
}
