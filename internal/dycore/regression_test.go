package dycore

import (
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/grid"
	"cadycore/internal/state"
	"cadycore/internal/topo"
)

// logFirstDiffs reports the first few pointwise differences between two
// flattened global states, with component names and (i, j, k) coordinates —
// the locator that pins down where a cross-decomposition divergence starts.
func logFirstDiffs(t *testing.T, g *grid.Grid, a, b []*state.State, max int) {
	t.Helper()
	fa := FlattenState(g, a)
	fb := FlattenState(g, b)
	n3 := g.Nx * g.Ny * g.Nz
	names := []string{"U", "V", "Phi", "Psa"}
	count := 0
	for i := range fa {
		if fa[i] == fb[i] {
			continue
		}
		if count < max {
			comp, rem := 3, i-3*n3
			if i < 3*n3 {
				comp, rem = i/n3, i%n3
			}
			k := rem / (g.Nx * g.Ny)
			j := (rem / g.Nx) % g.Ny
			ii := rem % g.Nx
			t.Logf("%s(%d,%d,%d): %v vs %v (diff %g)", names[comp], ii, j, k, fa[i], fb[i], fa[i]-fb[i])
		}
		count++
	}
	t.Logf("total differing points: %d", count)
}

// TestBaselineYZBitwisePerStep asserts the Y-Z baseline matches the serial
// run bitwise after each of the first steps (not just at the end — a
// per-step regression net that localizes a divergence to the step that
// introduced it).
func TestBaselineYZBitwisePerStep(t *testing.T) {
	g := testGrid()
	cfg := testCfg(1)
	for steps := 1; steps <= 2; steps++ {
		serial := Run(Setup{Alg: AlgBaselineYZ, PA: 1, PB: 1, Cfg: cfg}, g, comm.Zero(), testInit, steps)
		par := Run(Setup{Alg: AlgBaselineYZ, PA: 2, PB: 1, Cfg: cfg}, g, comm.Zero(), testInit, steps)
		if d := MaxDiffGlobal(g, serial.Finals, par.Finals); d != 0 {
			t.Errorf("steps=%d: Y-Z 2x1 deviates from serial by %g (want bitwise match)", steps, d)
			logFirstDiffs(t, g, serial.Finals, par.Finals, 12)
		}
	}
}

// TestSingleUpdateBitwise checks each update phase of the baseline in
// isolation — one adaptation update, one advection update, one full
// smoothing — across the y decomposition. A full-step mismatch that this
// test does not show implicates the glue (exchanges, halo fill, iteration
// structure) rather than the kernels.
func TestSingleUpdateBitwise(t *testing.T) {
	g := testGrid()
	cfg := testCfg(1)

	runOne := func(py int, apply func(b *Baseline, tp *topo.Topology)) []*state.State {
		w := comm.NewWorld(py, comm.Zero())
		finals := make([]*state.State, py)
		w.Run(func(c *comm.Comm) {
			hx, hy, hz := BaselineHalo()
			tp := topo.New(c, g, 1, py, 1, hx, hy, hz)
			b := NewBaseline(cfg, g, tp)
			st := state.New(tp.Block)
			testInit(g, st)
			b.SetState(st)
			apply(b, tp)
			finals[c.Rank()] = b.eta1
		})
		return finals
	}

	phases := []struct {
		name  string
		apply func(b *Baseline, tp *topo.Topology)
	}{
		{"adapt", func(b *Baseline, tp *topo.Topology) {
			b.adaptUpdate(b.eta1, b.xi, b.xi)
		}},
		{"advect", func(b *Baseline, tp *topo.Topology) {
			b.advectUpdate(b.eta1, b.xi, b.xi)
		}},
		{"smooth", func(b *Baseline, tp *topo.Topology) {
			f3, f2 := b.exchangeFields(b.xi)
			b.exSmooth.Exchange(f3, f2)
			b.localFill(b.xi)
			b.smo.SmoothFull(b.xi, b.eta1, tp.Block.Owned())
		}},
	}
	for _, ph := range phases {
		t.Run(ph.name, func(t *testing.T) {
			a := runOne(1, ph.apply)
			b := runOne(2, ph.apply)
			if d := MaxDiffGlobal(g, a, b); d != 0 {
				t.Errorf("single %s update differs across decompositions by %g (want bitwise match)", ph.name, d)
				logFirstDiffs(t, g, a, b, 10)
			}
		})
	}
}
