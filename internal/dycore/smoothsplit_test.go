package dycore

import (
	"math/rand"
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/field"
	"cadycore/internal/operators"
	"cadycore/internal/state"
	"cadycore/internal/topo"
)

// TestSmoothingSplitMatchesFull checks S̃ = S̃2∘S̃1 through the actual fused
// machinery: former smoothing on owned rows, band exchange of originals,
// latter smoothing — against a serial full smoothing of the same global
// field.
func TestSmoothingSplitMatchesFull(t *testing.T) {
	g := testGrid()
	cfg := testCfg(2)
	rng := rand.New(rand.NewSource(99))
	vals := make(map[[3]int]float64)
	randAt := func(i, j, k int) float64 {
		key := [3]int{i, j, k}
		if v, ok := vals[key]; ok {
			return v
		}
		v := rng.NormFloat64()
		vals[key] = v
		return v
	}
	// Pre-generate deterministically for all points.
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				randAt(i, j, k)
			}
		}
	}

	fill := func(st *state.State) {
		b := st.B
		for k := b.K0; k < b.K1; k++ {
			for j := b.J0; j < b.J1; j++ {
				for i := b.I0; i < b.I1; i++ {
					st.Phi.Set(i, j, k, randAt(i, j, k))
				}
			}
		}
		for j := b.J0; j < b.J1; j++ {
			for i := b.I0; i < b.I1; i++ {
				st.Psa.Set(i, j, randAt(i, j, 0)*100)
			}
		}
	}

	// Serial full smoothing reference.
	wantPhi := func() *field.F3 {
		w := comm.NewWorld(1, comm.Zero())
		var out *field.F3
		w.Run(func(c *comm.Comm) {
			hx, hy, hz := CommAvoidHalo(cfg.M)
			tp := topo.New(c, g, 1, 1, 1, hx, hy, hz)
			st := state.New(tp.Block)
			fill(st)
			st.FillLocalBounds()
			smo := operators.NewSmoother(g, cfg.Beta)
			res := state.New(tp.Block)
			smo.SmoothFull(st, res, tp.Block.Owned())
			out = res.Phi
		})
		return out
	}()

	for _, py := range []int{2, 3, 5} {
		w := comm.NewWorld(py, comm.Zero())
		got := make([]*field.F3, py)
		w.Run(func(c *comm.Comm) {
			hx, hy, hz := CommAvoidHalo(cfg.M)
			tp := topo.New(c, g, 1, py, 1, hx, hy, hz)
			ca := NewCommAvoid(cfg, g, tp)
			st := state.New(tp.Block)
			fill(st)
			ca.xi.CopyFrom(st)

			owned := tp.Block.Owned()
			ca.xi.FillLocalBounds()
			field.Copy(ca.origPhi, ca.xi.Phi)
			field.Copy2(ca.origPsa, ca.xi.Psa)
			ca.smo.P2Former(ca.xi.Phi, ca.eta1.Phi, owned, ca.availY)
			ca.xi.Phi.CopyRect(owned, ca.eta1.Phi)
			ca.xi.FillLocalBounds()

			f3, f2 := ca.exchangeFields(ca.xi)
			pend := ca.deepEx.Begin(f3, f2)
			bandPend := ca.bandEx.Begin([]*field.F3{ca.origPhi}, []*field.F2{ca.origPsa})
			pend.Finish()
			bandPend.Finish()
			ca.localFill(ca.xi)
			ca.origPhi.FillXPeriodic()
			ca.origPsa.FillXPeriodic()
			field.FillPolesY(ca.origPhi, field.Even, field.CenterY)
			field.FillPolesY2(ca.origPsa, field.Even)

			s2r := ca.expandInternal(ca.depthY, ca.depthZ)
			ca.smo.P2Latter(ca.origPhi, ca.xi.Phi, s2r, ca.availY)

			got[c.Rank()] = ca.xi.Phi
		})
		// Compare on the smoothed-valid region of each rank: owned plus
		// depthY/depthZ halo.
		for r, phi := range got {
			b := phi.B
			lo := b.J0 - (CommAvoidHaloY(cfg.M) - 2)
			hi := b.J1 + (CommAvoidHaloY(cfg.M) - 2)
			if lo < 0 {
				lo = 0
			}
			if hi > g.Ny {
				hi = g.Ny
			}
			for k := b.K0; k < b.K1; k++ {
				for j := lo; j < hi; j++ {
					for i := 0; i < g.Nx; i++ {
						gotV := phi.At(i, j, k)
						wantV := wantPhi.At(i, j, k)
						d := gotV - wantV
						if d < 0 {
							d = -d
						}
						if d > 1e-12 {
							t.Fatalf("py=%d rank=%d Phi(%d,%d,%d): got %v want %v (diff %g)",
								py, r, i, j, k, gotV, wantV, d)
						}
					}
				}
			}
		}
	}
}

// CommAvoidHaloY exposes the y halo width for the test above.
func CommAvoidHaloY(m int) int {
	_, hy, _ := CommAvoidHalo(m)
	return hy
}
