package dycore

import (
	"reflect"
	"testing"

	"cadycore/internal/checkpoint"
	"cadycore/internal/comm"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/state"
)

// TestSpectralSmoothMatchesStencil pins the end-to-end spectral fast path
// on both integrators: a multi-step run with Config.SpectralSmooth stays
// within the per-application 1e-11 pin (amplified mildly by the nonlinear
// feedback) of the stencil run, and the simulated clock improves — the
// composed-symbol row cost is below the stencil smoothing cost at every
// zonal extent the cost model prices.
func TestSpectralSmoothMatchesStencil(t *testing.T) {
	g := testGrid()
	for _, alg := range []Algorithm{AlgCommAvoid, AlgBaselineYZ} {
		cfg := testCfg(2)
		sten := Run(Setup{Alg: alg, PA: 2, PB: 2, Cfg: cfg}, g, comm.TianheLike(), testInit, 3)
		scale := maxAbsVec(FlattenState(g, sten.Finals))
		sp := cfg
		sp.SpectralSmooth = true
		res := Run(Setup{Alg: alg, PA: 2, PB: 2, Cfg: sp}, g, comm.TianheLike(), testInit, 3)
		if d := MaxDiffGlobal(g, sten.Finals, res.Finals); d > 1e-10*(1+scale) {
			t.Errorf("%v: spectral run deviates from stencil by %g (scale %g)", alg, d, scale)
		}
		if res.Agg.SimTime >= sten.Agg.SimTime {
			t.Errorf("%v: spectral sim clock %g not below stencil clock %g",
				alg, res.Agg.SimTime, sten.Agg.SimTime)
		}
	}
}

// TestSpectralSmoothXYFallsBackToStencil: with p_x > 1 no rank owns a full
// zonal circle, so the spectral smoother is never constructed and the run —
// numerics and simulated clock — is bitwise the stencil run. The switch is
// accepted and silently inert, mirroring how the polar filter handles the
// distributed-x case.
func TestSpectralSmoothXYFallsBackToStencil(t *testing.T) {
	g := testGrid()
	cfg := testCfg(2)
	sp := cfg
	sp.SpectralSmooth = true
	sten := Run(Setup{Alg: AlgBaselineXY, PA: 2, PB: 2, Cfg: cfg}, g, comm.TianheLike(), testInit, 3)
	res := Run(Setup{Alg: AlgBaselineXY, PA: 2, PB: 2, Cfg: sp}, g, comm.TianheLike(), testInit, 3)
	if d := MaxDiffGlobal(g, sten.Finals, res.Finals); d != 0 {
		t.Errorf("spectral switch changed a p_x > 1 run by %g, want bitwise inert", d)
	}
	if !reflect.DeepEqual(sten.Agg, res.Agg) {
		t.Errorf("spectral switch changed a p_x > 1 run's clock:\n got %+v\nwant %+v", res.Agg, sten.Agg)
	}
}

// TestSpectralStagedComposes is the staged-exchange × spectral interaction
// check: Config.StageM re-partitions the adaptation halo schedule while the
// smoothing — settled entirely by the first deep exchange — is untouched,
// so the two switches compose. Staged spectral runs stay within the staged
// approximation tolerance of the monolithic spectral run, and full-depth
// staging recovers it bitwise.
func TestSpectralStagedComposes(t *testing.T) {
	g := testGrid()
	cfg := testCfg(3)
	cfg.SpectralSmooth = true
	mono := Run(Setup{Alg: AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg}, g, comm.TianheLike(), testInit, 3)
	scale := maxAbsVec(FlattenState(g, mono.Finals))

	for _, s := range []int{1, 2} {
		staged := cfg
		staged.StageM = s
		res := Run(Setup{Alg: AlgCommAvoid, PA: 2, PB: 2, Cfg: staged}, g, comm.TianheLike(), testInit, 3)
		if d := MaxDiffGlobal(g, mono.Finals, res.Finals); d > 1e-6*(1+scale) {
			t.Errorf("stage depth %d under spectral deviates from monolithic by %g (scale %g)", s, d, scale)
		}
		if res.Count.HaloExchanges <= mono.Count.HaloExchanges {
			t.Errorf("stage depth %d did %d exchange rounds, want more than the monolithic %d",
				s, res.Count.HaloExchanges, mono.Count.HaloExchanges)
		}
	}

	full := cfg
	full.StageM = cfg.M
	res := Run(Setup{Alg: AlgCommAvoid, PA: 2, PB: 2, Cfg: full}, g, comm.TianheLike(), testInit, 3)
	if d := MaxDiffGlobal(g, mono.Finals, res.Finals); d != 0 {
		t.Errorf("StageM = M under spectral deviates from monolithic by %g, want bitwise identity", d)
	}
}

// TestSpectralResumeAppliesPendingSmoothing is the crash-recovery contract
// under the spectral path (the mid-phase checkpoint satellite): a resumed
// comm-avoiding run must apply the deferred former smoothing through the
// same spectral branch the uninterrupted step uses, landing within the
// lagged-Ĉ bootstrap tolerance; the baseline — no deferred work — resumes
// bitwise with the switch on.
func TestSpectralResumeAppliesPendingSmoothing(t *testing.T) {
	g := grid.New(48, 24, 8)
	cfg := DefaultConfig()
	cfg.M = 2
	cfg.SpectralSmooth = true
	hs := heldsuarez.Standard()
	hook := func(g *grid.Grid, st *state.State, step int) { hs.Apply(g, st, cfg.Dt2) }
	set := Setup{Alg: AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg}

	snaps := map[int]*checkpoint.Global{}
	full, _ := RunWithOpts(set, g, comm.TianheLike(), heldsuarez.InitialState, 5, RunOpts{
		Hook:          hook,
		SnapshotEvery: 2,
		Snapshot: func(done int, sts []*state.State) {
			snaps[done] = checkpoint.Gather(g, sts)
		},
	})
	if snaps[2] == nil {
		t.Fatal("no snapshot at boundary 2")
	}
	resumed, _ := RunWithOpts(set, g, comm.TianheLike(), snaps[2].InitFunc(), 3, RunOpts{
		Hook:   hook,
		Resume: true,
	})
	if d := MaxDiffGlobal(g, full.Finals, resumed.Finals); d > 1e-6 {
		t.Errorf("resumed spectral CA run deviates by %g, want <= 1e-6 (pending smoothing must be applied)", d)
	}

	bset := set
	bset.Alg = AlgBaselineYZ
	bsnaps := map[int]*checkpoint.Global{}
	bfull, _ := RunWithOpts(bset, g, comm.TianheLike(), heldsuarez.InitialState, 4, RunOpts{
		Hook:          hook,
		SnapshotEvery: 2,
		Snapshot: func(done int, sts []*state.State) {
			bsnaps[done] = checkpoint.Gather(g, sts)
		},
	})
	bres, _ := RunWithOpts(bset, g, comm.TianheLike(), bsnaps[2].InitFunc(), 2, RunOpts{
		Hook:   hook,
		Resume: true,
	})
	if d := MaxDiffGlobal(g, bfull.Finals, bres.Finals); d != 0 {
		t.Errorf("baseline spectral resume deviates by %g, want bitwise", d)
	}
}
