package dycore

import (
	"math"
	"testing"

	"cadycore/internal/comm"
	"cadycore/internal/grid"
	"cadycore/internal/state"
)

// testInit is a smooth, zonally asymmetric initial condition: a westerly jet
// with wave perturbations in wind, temperature and surface pressure.
func testInit(g *grid.Grid, st *state.State) {
	st.InitFromPhysical(g,
		func(lam, th, sig float64) float64 { // u
			return 20*math.Sin(th)*math.Sin(th) + 2*math.Sin(3*lam)*math.Sin(th)
		},
		func(lam, th, sig float64) float64 { // v
			return 1.5 * math.Sin(2*lam) * math.Sin(th) * math.Sin(th)
		},
		func(lam, th, sig float64) float64 { // T
			base := 288 - 60*sig*0 - 40*(1-sig) // warm surface, cold top
			return base + 10*math.Cos(th)*math.Cos(th) + 2*math.Cos(2*lam)*math.Sin(th)
		},
		func(lam, th float64) float64 { // ps
			return 100000 + 300*math.Cos(2*lam)*math.Sin(th)
		},
	)
}

func testCfg(m int) Config {
	cfg := DefaultConfig()
	cfg.M = m
	cfg.Dt1 = 40
	cfg.Dt2 = 240
	return cfg
}

func testGrid() *grid.Grid { return grid.New(16, 10, 4) }

func TestSerialStepFiniteAndChanges(t *testing.T) {
	g := testGrid()
	res := Run(Setup{Alg: AlgBaselineYZ, PA: 1, PB: 1, Cfg: testCfg(2)}, g, comm.Zero(), testInit, 3)
	st := res.Finals[0]
	if !st.AllFinite() {
		t.Fatal("serial run produced non-finite values")
	}
	// The state must actually evolve.
	fresh := state.New(st.B)
	testInit(g, fresh)
	if st.MaxAbsDiff(fresh) == 0 {
		t.Fatal("state did not change after 3 steps")
	}
	if res.Count.HaloExchanges == 0 || res.Count.CEvaluations == 0 {
		t.Fatalf("counters not advancing: %+v", res.Count)
	}
}

func TestBaselineYZMatchesSerial(t *testing.T) {
	g := testGrid()
	cfg := testCfg(2)
	serial := Run(Setup{Alg: AlgBaselineYZ, PA: 1, PB: 1, Cfg: cfg}, g, comm.Zero(), testInit, 2)

	for _, pp := range [][2]int{{2, 1}, {1, 2}, {2, 2}, {5, 2}} {
		par := Run(Setup{Alg: AlgBaselineYZ, PA: pp[0], PB: pp[1], Cfg: cfg}, g, comm.Zero(), testInit, 2)
		d := MaxDiffGlobal(g, serial.Finals, par.Finals)
		// With p_z > 1 the vertical reduction order differs: allow
		// round-off-scale deviation; with p_z = 1 the match is bitwise.
		tol := 0.0
		if pp[1] > 1 {
			tol = 1e-7
		}
		if d > tol {
			t.Errorf("Y-Z %dx%d deviates from serial by %g (tol %g)", pp[0], pp[1], d, tol)
		}
	}
}

func TestBaselineXYMatchesSerial(t *testing.T) {
	g := testGrid()
	cfg := testCfg(2)
	serial := Run(Setup{Alg: AlgBaselineYZ, PA: 1, PB: 1, Cfg: cfg}, g, comm.Zero(), testInit, 2)

	for _, pp := range [][2]int{{2, 1}, {2, 2}, {4, 2}} {
		par := Run(Setup{Alg: AlgBaselineXY, PA: pp[0], PB: pp[1], Cfg: cfg}, g, comm.Zero(), testInit, 2)
		d := MaxDiffGlobal(g, serial.Finals, par.Finals)
		if d != 0 {
			t.Errorf("X-Y %dx%d deviates from serial by %g (want bitwise match)", pp[0], pp[1], d)
		}
	}
}

func TestCommAvoidMatchesBaseline(t *testing.T) {
	g := testGrid()
	cfg := testCfg(1)
	base := Run(Setup{Alg: AlgBaselineYZ, PA: 1, PB: 1, Cfg: cfg}, g, comm.Zero(), testInit, 2)

	// Exact-C CA must match the baseline to round-off: same operator
	// sequence, only the halo/overlap/smoothing-fusion mechanics differ.
	cfgExact := cfg
	cfgExact.ExactC = true
	for _, pp := range [][2]int{{1, 1}, {2, 1}, {1, 2}, {2, 2}} {
		ca := Run(Setup{Alg: AlgCommAvoid, PA: pp[0], PB: pp[1], Cfg: cfgExact}, g, comm.Zero(), testInit, 2)
		d := MaxDiffGlobal(g, base.Finals, ca.Finals)
		if d > 1e-7 {
			t.Errorf("exact-C CA %dx%d deviates from baseline by %g", pp[0], pp[1], d)
		}
	}

	// Approximate-C CA deviates only at the approximation's order.
	ca := Run(Setup{Alg: AlgCommAvoid, PA: 2, PB: 1, Cfg: cfg}, g, comm.Zero(), testInit, 2)
	d := MaxDiffGlobal(g, base.Finals, ca.Finals)
	scale := maxAbsVec(FlattenState(g, base.Finals))
	if d > 1e-3*scale {
		t.Errorf("approximate-C CA deviates from baseline by %g (scale %g)", d, scale)
	}
	if !ca.Finals[0].AllFinite() {
		t.Error("CA run produced non-finite values")
	}
}

func TestCommAvoidCounters(t *testing.T) {
	g := testGrid()
	cfg := testCfg(3)
	steps := 4

	ca := Run(Setup{Alg: AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg}, g, comm.Zero(), testInit, steps)
	// 1 bootstrap exchange + 2 per step + 1 Finalize smoothing exchange.
	wantEx := int64(1 + 2*steps + 1)
	if ca.Count.HaloExchanges != wantEx {
		t.Errorf("CA exchange rounds = %d, want %d", ca.Count.HaloExchanges, wantEx)
	}
	// 1 bootstrap Ĉ + 2M per step.
	wantC := int64(1 + 2*cfg.M*steps)
	if ca.Count.CEvaluations != wantC {
		t.Errorf("CA Ĉ evaluations = %d, want %d (2M per step)", ca.Count.CEvaluations, wantC)
	}

	base := Run(Setup{Alg: AlgBaselineYZ, PA: 2, PB: 2, Cfg: cfg}, g, comm.Zero(), testInit, steps)
	// Baseline: bootstrap + (3M+4) per step (13 for M = 3, Section 5.2).
	wantEx = int64(1 + (3*cfg.M+4)*steps)
	if base.Count.HaloExchanges != wantEx {
		t.Errorf("baseline exchange rounds = %d, want %d", base.Count.HaloExchanges, wantEx)
	}
	// Baseline: bootstrap + 3M Ĉ per step.
	wantC = int64(1 + 3*cfg.M*steps)
	if base.Count.CEvaluations != wantC {
		t.Errorf("baseline Ĉ evaluations = %d, want %d (3M per step)", base.Count.CEvaluations, wantC)
	}
}

func TestApproximationOrderInDt(t *testing.T) {
	// The approximate nonlinear iteration replaces Ĉ(ψ^{i−1}) by a lagged
	// evaluation inside the highest-order correction term (eq. 13), so the
	// deviation from the exact iteration must shrink superlinearly in Δt1.
	g := testGrid()
	errAt := func(dt float64) float64 {
		cfg := testCfg(2)
		cfg.Dt1 = dt
		cfg.Dt2 = 6 * dt
		exact := cfg
		exact.ExactC = true
		a := Run(Setup{Alg: AlgCommAvoid, PA: 1, PB: 1, Cfg: cfg}, g, comm.Zero(), testInit, 2)
		b := Run(Setup{Alg: AlgCommAvoid, PA: 1, PB: 1, Cfg: exact}, g, comm.Zero(), testInit, 2)
		return MaxDiffGlobal(g, a.Finals, b.Finals)
	}
	e1 := errAt(40)
	e2 := errAt(20)
	if e1 == 0 || e2 == 0 {
		t.Skip("approximation made no difference at this resolution")
	}
	ratio := e1 / e2
	if ratio < 3.5 { // at least ~Δt² shrinkage; the theory predicts more
		t.Errorf("approximation error ratio %g (e(40)=%g, e(20)=%g): not high-order", ratio, e1, e2)
	}
}

func TestAblationSwitchesRun(t *testing.T) {
	g := testGrid()
	base := testCfg(2)
	for _, mut := range []func(*Config){
		func(c *Config) { c.ExactC = true },
		func(c *Config) { c.NoOverlap = true },
		func(c *Config) { c.NoFusedSmoothing = true },
		func(c *Config) { c.ExactC = true; c.NoOverlap = true; c.NoFusedSmoothing = true },
	} {
		cfg := base
		mut(&cfg)
		res := Run(Setup{Alg: AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg}, g, comm.Zero(), testInit, 2)
		if !res.Finals[0].AllFinite() {
			t.Errorf("ablation %+v produced non-finite state", cfg)
		}
	}
}

func TestNoFusedSmoothingMatchesFused(t *testing.T) {
	// Fusing the smoothing into the adaptation exchange must not change the
	// result beyond round-off (the split is exact in exact arithmetic).
	g := testGrid()
	cfg := testCfg(2)
	cfg.ExactC = true
	plain := cfg
	plain.NoFusedSmoothing = true
	a := Run(Setup{Alg: AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg}, g, comm.Zero(), testInit, 3)
	b := Run(Setup{Alg: AlgCommAvoid, PA: 2, PB: 2, Cfg: plain}, g, comm.Zero(), testInit, 3)
	d := MaxDiffGlobal(g, a.Finals, b.Finals)
	scale := maxAbsVec(FlattenState(g, a.Finals))
	if d > 1e-10*(1+scale) {
		t.Errorf("fused vs plain smoothing differ by %g (scale %g)", d, scale)
	}
}

func TestOverlapDoesNotChangeResult(t *testing.T) {
	g := testGrid()
	cfg := testCfg(2)
	noov := cfg
	noov.NoOverlap = true
	a := Run(Setup{Alg: AlgCommAvoid, PA: 2, PB: 2, Cfg: cfg}, g, comm.Zero(), testInit, 3)
	b := Run(Setup{Alg: AlgCommAvoid, PA: 2, PB: 2, Cfg: noov}, g, comm.Zero(), testInit, 3)
	if d := MaxDiffGlobal(g, a.Finals, b.Finals); d != 0 {
		t.Errorf("overlap changed the result by %g (must be bitwise identical)", d)
	}
}

func maxAbsVec(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

func TestBaseline3DMatchesSerial(t *testing.T) {
	g := testGrid()
	cfg := testCfg(2)
	serial := Run(Setup{Alg: AlgBaselineYZ, PA: 1, PB: 1, Cfg: cfg}, g, comm.Zero(), testInit, 2)
	// Full 3-D process grid: pays both the distributed filter and the
	// z-collective, but must agree numerically.
	par := Run(Setup{Alg: AlgBaseline3D, PA: 2, PB: 2, PC: 2, Cfg: cfg}, g, comm.Zero(), testInit, 2)
	if d := MaxDiffGlobal(g, serial.Finals, par.Finals); d > 1e-7 {
		t.Errorf("3-D 2x2x2 deviates from serial by %g", d)
	}
	// It must have actually used both collective categories.
	if par.Agg.CommTimeMax[comm.CatCollectiveX] == 0 && par.Agg.MsgsByCat[comm.CatCollectiveX] == 0 {
		t.Error("3-D run did no x-collective communication")
	}
	if par.Agg.MsgsByCat[comm.CatCollectiveZ] == 0 {
		t.Error("3-D run did no z-collective communication")
	}
}

func TestShiftedPoleMirror(t *testing.T) {
	g := testGrid()
	cfg := testCfg(2)
	cfg.ShiftedPoleMirror = true

	// Runs stable and decomposition-invariant (the shift is rank-local
	// under p_x = 1).
	a := Run(Setup{Alg: AlgCommAvoid, PA: 1, PB: 1, Cfg: cfg}, g, comm.Zero(), testInit, 3)
	b := Run(Setup{Alg: AlgCommAvoid, PA: 2, PB: 1, Cfg: cfg}, g, comm.Zero(), testInit, 3)
	if !a.Finals[0].AllFinite() {
		t.Fatal("shifted-mirror run unstable")
	}
	// Round-off-scale tolerance: the fused smoothing split regroups the
	// row sums at partition edges (DESIGN.md §6.2).
	scale0 := maxAbsVec(FlattenState(g, a.Finals))
	if d := MaxDiffGlobal(g, a.Finals, b.Finals); d > 1e-12*(1+scale0) {
		t.Errorf("shifted mirror not decomposition-invariant: %g", d)
	}

	// It is a genuinely different boundary condition.
	plain := testCfg(2)
	c := Run(Setup{Alg: AlgCommAvoid, PA: 1, PB: 1, Cfg: plain}, g, comm.Zero(), testInit, 3)
	if d := MaxDiffGlobal(g, a.Finals, c.Finals); d == 0 {
		t.Error("shifted and unshifted mirrors produced identical trajectories")
	}

	// Rejected under X-Y decomposition.
	defer func() {
		if recover() == nil {
			t.Error("ShiftedPoleMirror under p_x > 1 should panic")
		}
	}()
	xy := cfg
	Run(Setup{Alg: AlgBaselineXY, PA: 2, PB: 2, Cfg: xy}, g, comm.Zero(), testInit, 1)
}

func TestCommAvoidTinyBlocksDeepHalo(t *testing.T) {
	// Blocks much smaller than the deep halo (the paper's own p = 1024
	// regime): one exchange round must still gather everything (halos span
	// several blocks) and the exact-C result must match the baseline.
	g := grid.New(16, 10, 4)
	cfg := testCfg(1) // halo depths (5, 3) over 2-row, 2-layer blocks
	cfg.ExactC = true
	base := Run(Setup{Alg: AlgBaselineYZ, PA: 1, PB: 1, Cfg: cfg}, g, comm.Zero(), testInit, 2)
	ca := Run(Setup{Alg: AlgCommAvoid, PA: 5, PB: 2, Cfg: cfg}, g, comm.Zero(), testInit, 2)
	if d := MaxDiffGlobal(g, base.Finals, ca.Finals); d > 1e-7 {
		t.Errorf("tiny-block CA deviates from baseline by %g", d)
	}
	// Still exactly 2 exchange rounds per step.
	if got := (ca.Count.HaloExchanges - 2) / 2; got != 2 {
		t.Errorf("tiny-block CA exchanges/step = %d, want 2", got)
	}
}
