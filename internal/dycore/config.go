// Package dycore implements the time integration of the dynamical core:
// the original nonlinear-iteration scheme (Algorithm 1 of the paper) under
// the X-Y and Y-Z domain decompositions, and the communication-avoiding
// scheme (Algorithm 2) with deep halo areas, computation/communication
// overlap, the approximate nonlinear iteration for Ĉ, and the fused
// former/later smoothing.
//
// One time step evolves ξ = (U, V, Φ, p'_sa) through M nonlinear iterations
// of the adaptation process (time step Δt1), one nonlinear iteration of the
// advection process (Δt2 ≫ Δt1), and the smoothing S̃ — the operator flow
// ξ(k) = S̃ (F̃L̃)³ (F̃ĈÂ)^{3M} ξ(k−1) (paper eq. 8).
package dycore

import (
	"cadycore/internal/operators"
)

// Config holds the numerical parameters of a run. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// M is the number of nonlinear iterations of the adaptation process per
	// step (the paper's experiments use M = 3).
	M int
	// Dt1 and Dt2 are the adaptation and advection time steps in seconds
	// (Δt1 ≪ Δt2; the advection step is the "model time step": one Step
	// advances the model clock by Dt2).
	Dt1, Dt2 float64
	// Beta is the smoothing coefficient β of S̃.
	Beta float64
	// FilterCutoffDeg is the latitude (degrees) poleward of which Fourier
	// filtering is active.
	FilterCutoffDeg float64
	// Adapt holds the adaptation-term switches.
	Adapt operators.AdaptConfig

	// ShiftedPoleMirror selects the exact spherical (antipodal-meridian)
	// pole condition instead of the default local mirror. Only valid under
	// decompositions with p_x = 1.
	ShiftedPoleMirror bool

	// Workers is the intra-rank parallel tiling width: the 3-D stencil
	// kernels (adaptation, advection, D(P), smoothing) split their k-plane
	// range across this many goroutines. 0 and 1 both mean serial. The knob
	// changes wall-clock time only — work counts, communication events and
	// therefore the simulated LogP metrics (simC_ms/simS_ms/simT_ms) are
	// identical for every value. Parallel tiling spawns goroutines per
	// kernel call, so the steady-state zero-allocation guarantee holds for
	// Workers ≤ 1 (the default).
	Workers int

	// Ablation switches for the communication-avoiding algorithm (all false
	// in the paper's configuration — they exist to measure each
	// optimization's contribution separately):
	//
	// ExactC disables the approximate nonlinear iteration: Ĉ is evaluated
	// fresh in every internal update (3M z-collectives per step instead of
	// 2M).
	ExactC bool
	// NoOverlap disables the inner/outer computation split: the algorithm
	// blocks on the halo exchange before computing anything.
	NoOverlap bool
	// NoFusedSmoothing disables the former/later smoothing split: smoothing
	// runs at the end of each step with its own halo exchange, like the
	// baseline.
	NoFusedSmoothing bool

	// SpectralSmooth selects the spectral fast path for the x direction of
	// the smoothing S̃ (operators.SpectralSmoother): the x-circulant P1
	// convolution is applied as one fft.RealPlan round trip per row instead
	// of the stencil sweep, with the y coupling staying in the stencil path.
	// Default off: the stencil reference runs and results are bitwise
	// identical to previous releases. On, results match the stencil path to
	// ≤1e-11 per pass (the symbol is the exact DFT of the stencil; the
	// difference is rounding). Only effective when the rank owns the full
	// zonal circle (p_x = 1, i.e. the YZ and CA schemes); x-decomposed
	// blocks fall back to the stencil. Like the polar filter, the spectral
	// scratch is per-integrator, so the smoothing pass runs serially even
	// with Workers > 1 (work counts and simulated metrics are unaffected).
	SpectralSmooth bool

	// StageM selects the staged-exchange mode of the communication-avoiding
	// algorithm: the halo is sized for StageM nonlinear iterations (depth
	// 3·StageM instead of 3·M) and a shallower refresh exchange runs every
	// StageM iterations, each overlapped with the following η1 interior
	// computation. 0 — or any value ≥ M — disables staging (one deep halo
	// covers the whole adaptation phase). The mode trades halo redundancy
	// (ghost-zone compute and bytes grow with depth) against exchange count;
	// the autotuner searches the crossover.
	StageM int
}

// StageDepth returns the halo-sizing iteration count: StageM when staging is
// active (0 < StageM < M), M otherwise.
func (c Config) StageDepth() int {
	if c.StageM > 0 && c.StageM < c.M {
		return c.StageM
	}
	return c.M
}

// Staged reports whether the staged-exchange mode is active.
func (c Config) Staged() bool { return c.StageDepth() < c.M }

// DefaultConfig returns the paper's configuration (M = 3) with time steps
// that satisfy the gravity-wave CFL condition of the given resolution scale
// (callers typically override Dt1/Dt2 per mesh).
func DefaultConfig() Config {
	return Config{
		M:               3,
		Dt1:             60,
		Dt2:             360,
		Beta:            1.0,
		FilterCutoffDeg: 60,
		Adapt:           operators.DefaultAdaptConfig(),
	}
}

// Validate panics on unusable configurations.
func (c Config) Validate() {
	if c.M < 1 {
		panic("dycore: M must be ≥ 1")
	}
	if c.Dt1 <= 0 || c.Dt2 <= 0 {
		panic("dycore: time steps must be positive")
	}
	if c.Beta <= 0 || c.Beta >= 2 {
		panic("dycore: smoothing β must lie in (0, 2)")
	}
	if c.Workers < 0 {
		panic("dycore: Workers must be ≥ 0")
	}
	if c.StageM < 0 {
		panic("dycore: StageM must be ≥ 0")
	}
}

// Compute-cost weights (simulated point-update units per mesh point) used
// to advance the LogP clock; they approximate the relative arithmetic
// density of the kernels.
const (
	costAdapt     = 1.0
	costAdvect    = 2.0
	costSmooth    = 0.6
	costDivP      = 0.5
	costCSum      = 0.3
	costSurface   = 0.1
	costLincomb   = 0.1
	costFilterRow = 0.05 // per retained row, times Nx·log2(Nx)
	// costSmoothY prices the y-coupling stencil of the spectral smoothing
	// path (the 5-point P1y sum — one third of the full S̃ arithmetic, which
	// runs the x convolution on all four fields plus the y sum on two).
	costSmoothY = 0.2
)

// SimSpectralSmooth reports the simulated-clock weights of the spectral
// smoothing path: point-update equivalents per y-coupled point, and per
// nx·log2(nx) of one transformed row. The row weight deliberately equals
// the polar filter's (both are one RealPlan round trip plus an O(nx)
// spectrum pass), so calibrated KernelRates price the spectral path through
// the existing FilterRow rate without a profile schema change.
func SimSpectralSmooth() (yPoint, row float64) {
	return costSmoothY, costFilterRow
}

// SimCosts reports the simulated-clock work weights the integrators charge
// through Comm.Compute: point-update equivalents per mesh point for the
// stencil kernels (csum covers the fused D(P)+Ĉ pass) and per nx·log2(nx)
// of one retained row for the polar filter. The autotuner derives the
// simulated machine's kernel rates from these, so its analytic predictions
// and its pilot measurements price compute identically.
func SimCosts() (adapt, advect, smooth, csum, filterRow float64) {
	return costAdapt, costAdvect, costSmooth, costDivP + costCSum, costFilterRow
}
