package dycore

import (
	"fmt"

	"cadycore/internal/comm"
	"cadycore/internal/grid"
	"cadycore/internal/state"
	"cadycore/internal/topo"
)

// Algorithm selects which integrator a Setup builds.
type Algorithm int

const (
	// AlgBaselineXY is the original Algorithm 1 under the X-Y decomposition
	// (p_z = 1): no z-collective, distributed-FFT Fourier filtering.
	AlgBaselineXY Algorithm = iota
	// AlgBaselineYZ is the original Algorithm 1 under the Y-Z decomposition
	// (p_x = 1): local filtering, a z-collective per adaptation evaluation.
	AlgBaselineYZ
	// AlgCommAvoid is the communication-avoiding Algorithm 2 (Y-Z
	// decomposition).
	AlgCommAvoid
	// AlgBaseline3D is the original Algorithm 1 on a full 3-D process grid
	// (p_x, p_y, p_z all > 1 allowed): it pays both the distributed-FFT
	// filtering and the z-collective. The paper asserts 2-D decompositions
	// are always more efficient; this algorithm makes that measurable.
	AlgBaseline3D
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgBaselineXY:
		return "original-XY"
	case AlgBaselineYZ:
		return "original-YZ"
	case AlgCommAvoid:
		return "comm-avoiding"
	case AlgBaseline3D:
		return "original-3D"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Setup describes one parallel run configuration: the algorithm, the
// process grid and the numerical configuration. PA and PB are the two
// decomposed extents: (px, py) for X-Y runs and (py, pz) for Y-Z runs; 3-D
// runs (AlgBaseline3D) additionally use PC so the grid is PA×PB×PC =
// px×py×pz.
type Setup struct {
	Alg    Algorithm
	PA, PB int
	PC     int // only for AlgBaseline3D
	Cfg    Config
	// RowStarts, when non-nil, selects a non-uniform y partition (py+1
	// boundaries; see topo.NewWithRows). Nil keeps the uniform partition.
	RowStarts []int
}

// Procs returns the total rank count.
func (s Setup) Procs() int {
	p := s.PA * s.PB
	if s.Alg == AlgBaseline3D {
		p *= s.PC
	}
	return p
}

// procGrid returns (px, py, pz).
func (s Setup) procGrid() (px, py, pz int) {
	switch s.Alg {
	case AlgBaselineXY:
		return s.PA, s.PB, 1
	case AlgBaseline3D:
		return s.PA, s.PB, s.PC
	default:
		return 1, s.PA, s.PB
	}
}

// HaloWidths returns the halo allocation the setup requires. For the
// comm-avoiding algorithm the depth follows the staged-exchange depth (=
// Cfg.M unless 0 < StageM < M selects shallower, more frequent exchanges).
func (s Setup) HaloWidths() (hx, hy, hz int) {
	if s.Alg == AlgCommAvoid {
		return CommAvoidHalo(s.Cfg.StageDepth())
	}
	return BaselineHalo()
}

// Build constructs the topology and integrator for the calling rank.
func (s Setup) Build(c *comm.Comm, g *grid.Grid) (*topo.Topology, Integrator) {
	px, py, pz := s.procGrid()
	hx, hy, hz := s.HaloWidths()
	tp := topo.NewWithRows(c, g, px, py, pz, hx, hy, hz, s.RowStarts)
	switch s.Alg {
	case AlgCommAvoid:
		return tp, NewCommAvoid(s.Cfg, g, tp)
	default:
		return tp, NewBaseline(s.Cfg, g, tp)
	}
}

// StateSetter is implemented by every integrator in this package.
type StateSetter interface {
	SetState(*state.State)
}

// ResumeSetter is implemented by integrators whose mid-trajectory state
// carries pending work beyond ξ itself — the comm-avoiding scheme's
// deferred smoothing. Restoring a checkpoint through it reproduces the
// uninterrupted trajectory; plain SetState treats the state as a fresh
// initial condition and drops the pending smoothing. Integrators without
// that distinction (the baselines smooth within Step) only implement
// StateSetter, and SetState is used for both cases.
type ResumeSetter interface {
	SetResumedState(*state.State)
}

// InitFunc fills a rank's initial state from pointwise profiles.
type InitFunc func(g *grid.Grid, st *state.State)

// ExchReporter is implemented by integrators that report per-exchanger
// overlap statistics (topo.ExchStats per constructed Exchanger).
type ExchReporter interface {
	ExchStats() []topo.ExchStats
}

// RunResult carries everything a driver collects from one parallel run.
type RunResult struct {
	Setup Setup
	Agg   comm.Aggregate
	Count Counters
	// Exch aggregates per-exchanger overlap accounting over ranks: Begin and
	// Finish counts are summed, exposed/hidden seconds are maximized (the
	// critical-path convention of comm.Aggregate). Ordered as the
	// integrators construct their exchangers.
	Exch   []topo.ExchStats
	Finals []*state.State // per-rank final states (rank order)
	// StepsDone is the number of steps actually executed: equal to the
	// requested count unless RunOpts.ShouldStop ended the run early, or —
	// after an injected crash (Abort non-nil) — the minimum step count any
	// rank completed.
	StepsDone int
	// Abort, when non-nil, reports that fault injection killed a rank (see
	// RunOpts.CrashAt): the run ended early, Finals is nil, and the caller
	// should restart from its latest checkpoint to make progress.
	Abort *RankFailure
}

// RankFailure is the typed abort raised when fault injection kills a rank
// (RunOpts.CrashAt). It implements error, and marks itself as an injected
// fault so comm.World.Run reports it — rather than one of the receive-poison
// panics the death cascades into on surviving ranks — as the run's cause of
// death.
type RankFailure struct {
	Rank int // world rank that was killed
	Step int // steps the rank had completed when it died
}

// Error implements error.
func (e *RankFailure) Error() string {
	return fmt.Sprintf("dycore: rank %d killed by fault injection after step %d", e.Rank, e.Step)
}

// InjectedFault marks the panic value as deliberate fault injection.
func (e *RankFailure) InjectedFault() {}

// StepHook runs on each rank after every Step, on that rank's state (owned
// region). It is how idealized physics like the Held–Suarez forcing couples
// to the dynamics; it must be pointwise (communication-free).
type StepHook func(g *grid.Grid, st *state.State, step int)

// Run executes K steps of the setup on a fresh world with the given network
// model and initial condition, returning the aggregate statistics and final
// per-rank states. It is the single entry point used by the tests, the
// examples and the benchmark harness.
func Run(s Setup, g *grid.Grid, model comm.NetModel, init InitFunc, steps int) RunResult {
	return RunWithHook(s, g, model, init, steps, nil)
}

// RunWithHook is Run with a per-step hook (nil means none).
func RunWithHook(s Setup, g *grid.Grid, model comm.NetModel, init InitFunc, steps int, hook StepHook) RunResult {
	res, _ := runOnWorld(s, g, model, init, steps, RunOpts{Hook: hook})
	return res
}

// RunTraced is RunWithHook with per-rank event tracing enabled; it also
// returns the recorder for timeline rendering (internal/trace).
func RunTraced(s Setup, g *grid.Grid, model comm.NetModel, init InitFunc, steps int, hook StepHook) (RunResult, *comm.Recorder) {
	return runOnWorld(s, g, model, init, steps, RunOpts{Hook: hook, Traced: true})
}

// RunWithOpts is the fully controlled entry point: per-step progress,
// cooperative cancellation and quiesced snapshots (see RunOpts). It is what
// the job service (internal/server) and periodic checkpointing build on.
func RunWithOpts(s Setup, g *grid.Grid, model comm.NetModel, init InitFunc, steps int, opts RunOpts) (RunResult, *comm.Recorder) {
	return runOnWorld(s, g, model, init, steps, opts)
}

func runOnWorld(s Setup, g *grid.Grid, model comm.NetModel, init InitFunc, steps int, opts RunOpts) (RunResult, *comm.Recorder) {
	p := s.Procs()
	w := comm.NewWorld(p, model)
	if opts.Faults != nil {
		w.SetFaults(opts.Faults)
	}
	var rec *comm.Recorder
	if opts.Traced {
		rec = w.EnableTrace()
	}
	var ctl *stepCtl
	if opts.controlled() {
		ctl = newStepCtl(p, opts)
	}
	hook := opts.Hook
	finals := make([]*state.State, p)
	counts := make([]Counters, p)
	exch := make([][]topo.ExchStats, p)
	done := make([]int, p)
	var abort *RankFailure
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			// An injected rank death is an expected outcome, not a bug:
			// convert it into a typed abort. Anything else keeps panicking.
			if rp, ok := r.(comm.RankPanic); ok {
				if rf, ok := rp.Val.(*RankFailure); ok {
					abort = rf
					return
				}
			}
			panic(r)
		}()
		w.Run(func(c *comm.Comm) {
			if ctl != nil {
				// A panicking rank must release peers parked on the step
				// barrier before the panic propagates to World.Run.
				defer func() {
					if r := recover(); r != nil {
						ctl.abort()
						panic(r)
					}
				}()
			}
			tp, ig := s.Build(c, g)
			st := state.New(tp.Block)
			init(g, st)
			if rs, ok := ig.(ResumeSetter); ok && opts.Resume {
				rs.SetResumedState(st)
			} else {
				ig.(StateSetter).SetState(st)
			}
			// Setup and bootstrap (communicator splits, the initial exchange
			// and Ĉ) are one-time initialization: exclude them from the
			// measured statistics, like the paper's timings do.
			c.ResetStats()
			for k := 0; k < steps; k++ {
				ig.Step()
				if hook != nil {
					hook(g, ig.Xi(), k)
				}
				done[c.Rank()] = k + 1
				if opts.CrashAt != nil && opts.CrashAt(c.Rank(), k+1) {
					panic(&RankFailure{Rank: c.Rank(), Step: k + 1})
				}
				if ctl != nil && ctl.arrive(k+1, c.Rank(), ig.Xi(), c.Clock(), c.CompTime()) {
					break
				}
			}
			ig.Finalize()
			finals[c.Rank()] = ig.Xi()
			counts[c.Rank()] = ig.Counters()
			if er, ok := ig.(ExchReporter); ok {
				exch[c.Rank()] = er.ExchStats()
			}
		})
	}()
	if abort != nil {
		minDone := done[0]
		for _, d := range done {
			if d < minDone {
				minDone = d
			}
		}
		return RunResult{Setup: s, Agg: w.Stats(), StepsDone: minDone, Abort: abort}, rec
	}
	return RunResult{Setup: s, Agg: w.Stats(), Count: counts[0], Exch: mergeExch(exch),
		Finals: finals, StepsDone: done[0]}, rec
}

// mergeExch folds per-rank exchanger statistics into one list: counts are
// summed over ranks, exposed/hidden seconds maximized (critical path). Every
// rank constructs the same exchangers in the same order, so merging is
// positional.
func mergeExch(perRank [][]topo.ExchStats) []topo.ExchStats {
	var out []topo.ExchStats
	for _, es := range perRank {
		if es == nil {
			continue
		}
		if out == nil {
			out = make([]topo.ExchStats, len(es))
			copy(out, es)
			continue
		}
		for i := range es {
			if i >= len(out) {
				out = append(out, es[i])
				continue
			}
			out[i].Begins += es[i].Begins
			out[i].Finishes += es[i].Finishes
			if es[i].ExposedSec > out[i].ExposedSec {
				out[i].ExposedSec = es[i].ExposedSec
			}
			if es[i].HiddenSec > out[i].HiddenSec {
				out[i].HiddenSec = es[i].HiddenSec
			}
		}
	}
	return out
}

// GatherOwned assembles the owned regions of per-rank fields into a single
// global check function: it returns max |a − b| over all owned points of two
// runs' final states (which must use identical mesh and rank blocks or at
// least cover the domain identically). It compares via global indexing, so
// different decompositions are comparable.
func MaxDiffGlobal(g *grid.Grid, a, b []*state.State) float64 {
	// Build dense global arrays from each run, then compare.
	fa := flatten(g, a)
	fb := flatten(g, b)
	m := 0.0
	for i := range fa {
		d := fa[i] - fb[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// flatten packs the owned regions of all per-rank states into one dense
// vector ordered (component, k, j, i).
func flatten(g *grid.Grid, sts []*state.State) []float64 {
	n3 := g.Nx * g.Ny * g.Nz
	n2 := g.Nx * g.Ny
	out := make([]float64, 3*n3+n2)
	for _, st := range sts {
		b := st.B
		for k := b.K0; k < b.K1; k++ {
			for j := b.J0; j < b.J1; j++ {
				for i := b.I0; i < b.I1; i++ {
					base := (k*g.Ny+j)*g.Nx + i
					out[base] = st.U.At(i, j, k)
					out[n3+base] = st.V.At(i, j, k)
					out[2*n3+base] = st.Phi.At(i, j, k)
				}
			}
		}
		for j := b.J0; j < b.J1; j++ {
			for i := b.I0; i < b.I1; i++ {
				out[3*n3+j*g.Nx+i] = st.Psa.At(i, j)
			}
		}
	}
	return out
}

// FlattenState exposes flatten for diagnostics and tests.
func FlattenState(g *grid.Grid, sts []*state.State) []float64 { return flatten(g, sts) }
