package dycore

import (
	"fmt"

	"cadycore/internal/field"
	"cadycore/internal/grid"
	"cadycore/internal/operators"
	"cadycore/internal/state"
	"cadycore/internal/stencil"
	"cadycore/internal/topo"
)

// CommAvoid runs the communication-avoiding Algorithm 2 under the Y-Z
// decomposition:
//
//   - deep halo areas sized for all 3M adaptation stencil updates, so each
//     step performs exactly two neighbor-exchange rounds (one for the
//     adaptation + fused smoothing, one for the advection) instead of the
//     baseline's 3M + 4 (Section 4.3.1);
//   - inner/outer partition computing to overlap the exchanges with the
//     first update of each phase;
//   - the approximate nonlinear iteration: the η1 update of every iteration
//     reuses the previous iteration's last Ĉ evaluation, cutting the
//     z-collectives from 3M to 2M per step (Section 4.2.2);
//   - operator splitting of the smoothing into former (S̃1, before the
//     exchange) and latter (S̃2, after it) stages, fusing the smoothing
//     communication into the adaptation exchange (Section 4.3.2);
//   - p_x = 1, so Fourier filtering involves no communication at all
//     (Section 4.2.1).
//
// The Config ablation switches disable each ingredient individually.
type CommAvoid struct {
	*core
	deepEx  *topo.Exchanger // adaptation exchange: (0, 3·S+2, 3·S), S = StageDepth
	bandEx  *topo.Exchanger // original edge rows for S̃2 (the "yellow bar")
	advEx   *topo.Exchanger // advection exchange: (0, 3, 3)
	smEx    *topo.Exchanger // plain smoothing exchange (ablation/Finalize)
	stageEx *topo.Exchanger // mid-phase refresh exchange (staged mode only)
	origPhi *field.F3       // pre-smoothing Φ for the latter smoothing
	origPsa *field.F2
	bandF3  [1]*field.F3 // prebuilt payload slices for the band exchange
	bandF2  [1]*field.F2

	depthY, depthZ int // valid halo depth after the adaptation exchange (= 3·S)
	stage          int // iterations per exchange round (0 = unstaged: all M)
	finalized      bool
	// resumed marks ξ as a mid-trajectory restart state whose deferred
	// smoothing is still pending (see SetResumedState).
	resumed bool

	// availYFn is availY bound once at construction: passing a pre-bound
	// func value into the smoothers keeps the per-step path free of
	// method-value closures (a fresh `ca.availY` expression per call relies
	// on escape analysis to stay off the heap; a field read never allocates).
	availYFn operators.AvailFunc
}

// CommAvoidHalo returns the halo widths Algorithm 2 requires for M
// nonlinear iterations: 3M stencil layers plus 2 smoothing layers in y, 3M
// layers in z, and the x radius of the widest table (filled by local
// periodic copies).
func CommAvoidHalo(m int) (hx, hy, hz int) {
	r := stencil.Union(stencil.RadiusOf(stencil.Adaptation), stencil.RadiusOf(stencil.Advection))
	rs := stencil.RadiusOf(stencil.Smoothing)
	return r.X, 3*m*r.Y + rs.Y, 3 * m * r.Z
}

// BaselineHalo returns the halo widths the baseline integrator requires
// (the per-update radii of the widest stencils).
func BaselineHalo() (hx, hy, hz int) { return baselineHalo() }

// NewCommAvoid builds the communication-avoiding integrator. The topology
// must use p_x = 1 and halo widths from CommAvoidHalo(cfg.StageDepth());
// blocks must be at least 3 rows/layers thick so the overlap inner region is
// well formed.
func NewCommAvoid(cfg Config, g *grid.Grid, tp *topo.Topology) *CommAvoid {
	if tp.Px != 1 {
		panic("dycore: the communication-avoiding algorithm requires the Y-Z decomposition (p_x = 1)")
	}
	sd := cfg.StageDepth()
	_, hy, hz := CommAvoidHalo(sd)
	if tp.Block.Hy < hy || tp.Block.Hz < hz {
		panic(fmt.Sprintf("dycore: halo widths (%d,%d) too small for CommAvoid (need %d,%d)",
			tp.Block.Hy, tp.Block.Hz, hy, hz))
	}
	ca := &CommAvoid{core: newCore(cfg, g, tp)}
	ca.depthY = hy - 2 // smoothing consumes the outermost 2 y rows
	ca.depthZ = hz
	if cfg.Staged() {
		ca.stage = sd
	}

	rAdv := stencil.RadiusOf(stencil.Advection)
	dyAdv, dzAdv := 3*rAdv.Y, 3*rAdv.Z
	if tp.Py == 1 {
		hy = 0
		dyAdv = 0
	}
	if tp.Pz == 1 {
		hz = 0
		dzAdv = 0
	}
	// The adaptation stencils are one-sided in z (Table 1 reads k and k+1
	// only), so the deep halo extends toward higher k only; this is the
	// shape of the paper's Figure 4 halo areas.
	deep := topo.Depths{X: 0, YLo: hy, YHi: hy, ZLo: 0, ZHi: hz}
	ca.deepEx = tp.NewExchangerD(deep).SetLabel("ca-deep")
	ca.bandEx = tp.NewBandExchangerY(deep, 2).SetLabel("ca-band")
	ca.advEx = tp.NewExchanger(0, dyAdv, dzAdv).SetLabel("ca-adv")
	dys := stencil.RadiusOf(stencil.Smoothing).Y
	if tp.Py == 1 {
		dys = 0
	}
	ca.smEx = tp.NewExchanger(0, dys, 0).SetLabel("ca-smooth")
	if ca.stage > 0 {
		// The refresh exchange restores the full adaptation depth (3·S per
		// side in y, one-sided 3·S in z) without the smoothing rows — the
		// fused smoothing is settled by the first (deep) exchange of the step.
		sy, sz := hy, hz
		if sy > 0 {
			sy -= 2
		}
		ca.stageEx = tp.NewExchangerD(topo.Depths{YLo: sy, YHi: sy, ZHi: sz}).SetLabel("ca-stage")
	}
	ca.origPhi = field.NewF3(tp.Block)
	ca.origPsa = field.NewF2(tp.Block)
	ca.availYFn = ca.availY
	ca.bandF3[0] = ca.origPhi
	ca.bandF2[0] = ca.origPsa
	return ca
}

// ExchStats reports per-exchanger overlap accounting.
func (ca *CommAvoid) ExchStats() []topo.ExchStats {
	out := []topo.ExchStats{ca.deepEx.Stats(), ca.bandEx.Stats(), ca.advEx.Stats(), ca.smEx.Stats()}
	if ca.stageEx != nil {
		out = append(out, ca.stageEx.Stats())
	}
	return out
}

// SetState overwrites ξ and bootstraps halos and the initial Ĉ cache
// (ξ^(−1) = ξ^(0), Algorithm 2 line 1).
func (ca *CommAvoid) SetState(init *state.State) {
	ca.xi.CopyFrom(init)
	ca.localFill(ca.xi)
	f3, f2 := ca.exchangeFields(ca.xi)
	ca.deepEx.Exchange(f3, f2)
	ca.n.HaloExchanges++
	ca.localFill(ca.xi)
	ca.updateSurface(ca.xi)
	ca.evalC(ca.xi, ca.cLast, ca.region(1))
	ca.finalized = false
	ca.resumed = false
}

// SetResumedState is SetState for a mid-trajectory checkpoint. Unlike an
// initial condition, a checkpointed ξ(k) still owes the former smoothing
// that Algorithm 2 defers into step k+1 (or Finalize); a plain SetState
// would silently drop it, shifting the whole resumed trajectory by one
// smoothing application (~1e-3 relative — far above the ~1e-6 the lagged-Ĉ
// bootstrap alone costs). The flag makes the first resumed step smooth ξ
// exactly like the uninterrupted run's step k+1 would have. The contract is
// path-independent: under Config.SpectralSmooth the deferred smoothing is
// applied through the same spectral branch the uninterrupted step uses, so
// a checkpoint written by a stencil run can resume spectrally (and vice
// versa) within the spectral-vs-stencil pin on top of the ~1e-6 bootstrap
// tolerance.
func (ca *CommAvoid) SetResumedState(init *state.State) {
	ca.SetState(init)
	ca.resumed = true
}

// availY reports the former-smoothing row window of the rank owning global
// row j: its owned rows, extended across a pole by the mirror ghosts.
func (ca *CommAvoid) availY(j int) (lo, hi int) {
	lo, hi = ca.tp.RowWindow(j)
	if lo == 0 {
		lo = -2
	}
	if hi == ca.g.Ny {
		hi = ca.g.Ny + 2
	}
	return lo, hi
}

// region returns the compute rect of the u-th adaptation update (u counts
// 1 … 3M within the step): the owned block extended by the remaining valid
// halo depth — symmetric in y, high side only in z (the adaptation stencil
// never reads k−1).
func (ca *CommAvoid) region(u int) field.Rect {
	return ca.expandAsym(ca.depthY-u, ca.depthY-u, 0, ca.depthZ-u)
}

// expandAsym grows the owned rect by per-side amounts, clamped to the
// global domain.
func (ca *CommAvoid) expandAsym(yLo, yHi, zLo, zHi int) field.Rect {
	b := ca.tp.Block
	r := b.Owned()
	r.J0 -= yLo
	r.J1 += yHi
	r.K0 -= zLo
	r.K1 += zHi
	if r.J0 < 0 {
		r.J0 = 0
	}
	if r.J1 > ca.g.Ny {
		r.J1 = ca.g.Ny
	}
	if r.K0 < 0 {
		r.K0 = 0
	}
	if r.K1 > ca.g.Nz {
		r.K1 = ca.g.Nz
	}
	return r
}

// fusedSmoothing reports whether the former/later smoothing split is in
// effect this step: every step but the very first, because the initial
// condition owes no smoothing — unlike a resumed checkpoint state, which
// does (SetResumedState).
func (ca *CommAvoid) fusedSmoothing() bool {
	return !ca.cfg.NoFusedSmoothing && (ca.n.Steps >= 1 || ca.resumed)
}

// Step advances one time step of Algorithm 2.
//
//cadyvet:allocfree
func (ca *CommAvoid) Step() {
	g := ca.g
	owned := ca.tp.Block.Owned()
	fused := ca.fusedSmoothing()

	// ---- Former smoothing S̃1 of ψ⁰ = ξ^(k−1) on the owned block ----
	if fused {
		ca.xi.FillLocalBounds() // x halos and pole mirrors for the δ⁴ reads
		field.Copy(ca.origPhi, ca.xi.Phi)
		field.Copy2(ca.origPsa, ca.xi.Psa)
		if ca.spe != nil {
			// Spectral fast path: the x convolution of every field runs as
			// one RealPlan round trip per row (serial — the plan scratch is
			// per-integrator, like the polar filter's).
			wk := ca.spe.P1Power(ca.xi.U, ca.eta1.U, owned, 1)
			wk.Add(ca.spe.P1Power(ca.xi.V, ca.eta1.V, owned, 1))
			wk.Add(ca.spe.P2Former(ca.xi.Phi, ca.eta1.Phi, owned, ca.availYFn))
			wk.Add(ca.spe.P2Former2(ca.xi.Psa, ca.eta1.Psa, owned, ca.availYFn))
			ca.chargeSmooth(wk)
		} else {
			var w int
			if ca.cfg.Workers > 1 {
				//cadyvet:allow Workers>1 tiling path; excluded from the single-worker zero-alloc invariant (serial branch below is closure-free)
				w = ca.parKSum(owned, func(sub field.Rect, _ int) int { return ca.smo.P1Field(ca.xi.U, ca.eta1.U, sub) })
				//cadyvet:allow Workers>1 tiling path; excluded from the single-worker zero-alloc invariant (serial branch below is closure-free)
				w += ca.parKSum(owned, func(sub field.Rect, _ int) int { return ca.smo.P1Field(ca.xi.V, ca.eta1.V, sub) })
				//cadyvet:allow Workers>1 tiling path; excluded from the single-worker zero-alloc invariant (serial branch below is closure-free)
				w += ca.parKSum(owned, func(sub field.Rect, _ int) int { return ca.smo.P2Former(ca.xi.Phi, ca.eta1.Phi, sub, ca.availYFn) })
			} else {
				w = ca.smo.P1Field(ca.xi.U, ca.eta1.U, owned)
				w += ca.smo.P1Field(ca.xi.V, ca.eta1.V, owned)
				w += ca.smo.P2Former(ca.xi.Phi, ca.eta1.Phi, owned, ca.availYFn)
			}
			w += ca.smo.P2Former2(ca.xi.Psa, ca.eta1.Psa, owned, ca.availYFn)
			ca.w.Compute(float64(w) * costSmooth)
		}
		ca.xi.U.CopyRect(owned, ca.eta1.U)
		ca.xi.V.CopyRect(owned, ca.eta1.V)
		ca.xi.Phi.CopyRect(owned, ca.eta1.Phi)
		copyRect2(ca.xi.Psa, owned, ca.eta1.Psa)
		ca.xi.FillLocalBounds()
		ca.n.SmoothingCalls++
	}

	// ---- One deep exchange for the smoothing + all 3M adaptation updates ----
	f3, f2 := ca.exchangeFields(ca.xi)
	pend := ca.deepEx.Begin(f3, f2)
	var bandPend *topo.Pending
	if fused {
		bandPend = ca.bandEx.Begin(ca.bandF3[:], ca.bandF2[:])
	}
	ca.n.HaloExchanges++ // one fused communication round

	// ---- Overlap: η1 tendency on the inner part while messages fly ----
	// The overlapped inner computation uses the lagged Ĉ of the approximate
	// nonlinear iteration; under the ExactC ablation η1 must instead use a
	// fresh post-exchange Ĉ, so the overlap is skipped for that update.
	r1 := ca.region(1)
	var inner field.Rect
	if !ca.cfg.NoOverlap && !ca.cfg.ExactC {
		// Interior reads must not see hook- or resume-stale local ghosts
		// (see Baseline.adaptUpdate); the quiesced path refills after the
		// blocking Finish instead.
		ca.localFill(ca.xi)
	}
	ca.updateSurface(ca.xi)
	if !ca.cfg.NoOverlap && !ca.cfg.ExactC {
		dIn := 1 // one stencil radius inside the owned block
		if fused {
			dIn = 3 // plus the two edge rows awaiting latter smoothing
		}
		// The adaptation stencil reads k+1 but never k−1, so only the
		// high-z side shrinks for the pre-exchange inner part.
		inner = owned
		if inner.J0 != 0 {
			inner.J0 += dIn
		}
		if inner.J1 != ca.g.Ny {
			inner.J1 -= dIn
		}
		if inner.K1 != ca.g.Nz {
			inner.K1--
		}
		if !inner.Empty() {
			ca.adaptTendency(ca.xi, ca.cLast, inner)
			ca.filterTendency(inner)
		}
	}

	pend.Finish()
	if bandPend != nil {
		bandPend.Finish()
	}
	ca.localFill(ca.xi)

	// ---- Latter smoothing S̃2 on the edge bands of the owned block and of
	// the received deep halo ----
	if fused {
		// The received original rows carry owned columns only; refresh
		// their periodic x halos before the δ⁴_λ reads.
		ca.origPhi.FillXPeriodic()
		ca.origPsa.FillXPeriodic()
		if ca.cfg.ShiftedPoleMirror {
			field.FillPolesYShifted(ca.origPhi, field.Even, field.CenterY)
			field.FillPolesY2Shifted(ca.origPsa, field.Even)
		} else {
			field.FillPolesY(ca.origPhi, field.Even, field.CenterY)
			field.FillPolesY2(ca.origPsa, field.Even)
		}
		s2r := ca.expandAsym(ca.depthY, ca.depthY, 0, ca.depthZ)
		if ca.spe != nil {
			wk := ca.spe.P2Latter(ca.origPhi, ca.xi.Phi, s2r, ca.availYFn)
			wk.Add(ca.spe.P2Latter2(ca.origPsa, ca.xi.Psa, s2r, ca.availYFn))
			ca.chargeSmooth(wk)
		} else {
			w := ca.smo.P2Latter(ca.origPhi, ca.xi.Phi, s2r, ca.availYFn)
			w += ca.smo.P2Latter2(ca.origPsa, ca.xi.Psa, s2r, ca.availYFn)
			ca.w.Compute(float64(w) * costSmooth)
		}
		ca.xi.FillLocalBounds()
	}

	// ---- η1 completion on the outer region, then the update ----
	ca.updateSurface(ca.xi)
	if ca.cfg.ExactC {
		ca.evalC(ca.xi, ca.cNew, r1)
		ca.cLast, ca.cNew = ca.cNew, ca.cLast
	}
	for _, s := range ca.slabs(r1, inner) {
		ca.adaptTendency(ca.xi, ca.cLast, s)
		ca.filterTendency(s)
	}
	ca.psi.CopyFrom(ca.xi)
	ca.applyUpdate(ca.eta1, ca.psi, ca.cfg.Dt1, r1)

	// ---- Remaining adaptation updates (Algorithm 2 lines 13–22) ----
	u := 1
	for i := 1; i <= ca.cfg.M; i++ {
		if i > 1 {
			// η1 of iteration i: reuse Ĉ from the previous iteration's
			// midpoint state (the stand-in for Ĉ(ψ^{i−2})) unless ExactC.
			u++
			if ca.stage > 0 && (i-1)%ca.stage == 0 {
				// Staged mode: the shallow halo is exhausted after `stage`
				// iterations. Refresh it with a ψ exchange (the cached Ĉ
				// rides along, so the lagged η1 inputs regain full halo
				// depth too), overlapped with the η1 interior tendency the
				// same way the step's first exchange overlaps.
				u = 1
				r := ca.region(u)
				f3s, f2s := ca.exchangeFields(ca.psi)
				spend := ca.stageEx.Begin(f3s, f2s)
				ca.n.HaloExchanges++
				if !ca.cfg.NoOverlap && !ca.cfg.ExactC {
					ca.localFill(ca.psi) // see Baseline.adaptUpdate
				}
				ca.updateSurface(ca.psi)
				sInner := field.Rect{}
				if !ca.cfg.NoOverlap && !ca.cfg.ExactC {
					sInner = owned
					if sInner.J0 != 0 {
						sInner.J0++
					}
					if sInner.J1 != ca.g.Ny {
						sInner.J1--
					}
					if sInner.K1 != ca.g.Nz {
						sInner.K1--
					}
					if !sInner.Empty() {
						ca.adaptTendency(ca.psi, ca.cLast, sInner)
						ca.filterTendency(sInner)
					}
				}
				spend.Finish()
				ca.localFill(ca.psi)
				ca.refreshSurface(ca.psi)
				cr := ca.cLast
				if ca.cfg.ExactC {
					ca.evalC(ca.psi, ca.cNew, r)
					cr = ca.cNew
				}
				for _, s := range ca.slabs(r, sInner) {
					ca.adaptTendency(ca.psi, cr, s)
					ca.filterTendency(s)
				}
				ca.applyUpdate(ca.eta1, ca.psi, ca.cfg.Dt1, r)
			} else {
				r := ca.region(u)
				ca.updateSurface(ca.psi)
				cr := ca.cLast
				if ca.cfg.ExactC {
					ca.evalC(ca.psi, ca.cNew, r)
					cr = ca.cNew
				}
				ca.adaptTendency(ca.psi, cr, r)
				ca.filterTendency(r)
				ca.applyUpdate(ca.eta1, ca.psi, ca.cfg.Dt1, r)
			}
		}

		// η2 = ψ + Δt1·F̃(Ĉ(η1) + Â(η1))
		u++
		r := ca.region(u)
		ca.updateSurface(ca.eta1)
		ca.evalC(ca.eta1, ca.cNew, r)
		ca.adaptTendency(ca.eta1, ca.cNew, r)
		ca.filterTendency(r)
		ca.applyUpdate(ca.eta2, ca.psi, ca.cfg.Dt1, r)
		r2 := r

		// η3 = ψ + Δt1·F̃(Ĉ(mid) + Â(mid)), mid = (ψ + η2)/2
		u++
		r = ca.region(u)
		ca.mid.Mean2Rect(ca.psi, ca.eta2, r2)
		ca.mid.FillLocalBounds()
		ca.updateSurface(ca.mid)
		ca.evalC(ca.mid, ca.cNew, r)
		ca.adaptTendency(ca.mid, ca.cNew, r)
		ca.filterTendency(r)
		ca.applyUpdate(ca.psi, ca.psi, ca.cfg.Dt1, r) // ψ ← η3
		ca.cLast, ca.cNew = ca.cNew, ca.cLast         // cache Ĉ(mid) for the next η1
	}

	// ---- Advection phase: one exchange, overlap on ζ1 ----
	f3, f2 = ca.exchangeFields(ca.psi)
	pend = ca.advEx.Begin(f3, f2)
	ca.n.HaloExchanges++
	if !ca.cfg.NoOverlap {
		ca.localFill(ca.psi) // see Baseline.adaptUpdate
	}
	ca.updateSurface(ca.psi)
	rz1 := ca.advRegion(2)
	inner = field.Rect{}
	if !ca.cfg.NoOverlap {
		inner = ca.shrinkInternal(owned, 1, 1)
		if !inner.Empty() {
			ca.advectTendency(ca.psi, ca.cLast, inner)
			ca.filterTendency(inner)
		}
	}
	pend.Finish()
	ca.localFill(ca.psi)
	ca.updateSurface(ca.psi)
	for _, s := range ca.slabs(rz1, inner) {
		ca.advectTendency(ca.psi, ca.cLast, s)
		ca.filterTendency(s)
	}
	ca.applyUpdate(ca.eta1, ca.psi, ca.cfg.Dt2, rz1) // ζ1

	// ζ2
	r := ca.advRegion(1)
	ca.updateSurface(ca.eta1)
	ca.advectTendency(ca.eta1, ca.cLast, r)
	ca.filterTendency(r)
	ca.applyUpdate(ca.eta2, ca.psi, ca.cfg.Dt2, r)

	// ζ3
	ca.mid.Mean2Rect(ca.psi, ca.eta2, r)
	ca.mid.FillLocalBounds()
	ca.updateSurface(ca.mid)
	ca.advectTendency(ca.mid, ca.cLast, owned)
	ca.filterTendency(owned)
	ca.applyUpdate(ca.psi, ca.psi, ca.cfg.Dt2, owned)

	ca.xi.CopyFrom(ca.psi)

	// Ablation: plain smoothing at the end of the step (baseline style).
	if ca.cfg.NoFusedSmoothing {
		ca.plainSmooth()
	}

	ca.n.Steps++
	_ = g
	ca.finalized = false
}

// advRegion is region() for the advection phase's shallower halo.
func (ca *CommAvoid) advRegion(depth int) field.Rect {
	return ca.expandInternal(depth, depth)
}

// plainSmooth applies full smoothing with its own exchange (ablation path
// and Finalize). The pre-smoothing state is snapshotted into ψ first so the
// exchange can target ψ directly: received halo rows then land in the field
// the smoothing reads, and the interior sweep (which only reads rows the
// exchange does not touch) overlaps the messages in flight.
func (ca *CommAvoid) plainSmooth() {
	owned := ca.tp.Block.Owned()
	ca.psi.CopyFrom(ca.xi)
	f3, f2 := ca.exchangeFields(ca.psi)
	pend := ca.smEx.Begin(f3, f2)
	ca.n.HaloExchanges++
	var inner field.Rect
	if !ca.cfg.NoOverlap {
		// ψ was copied from ξ after the step hook may have mutated the
		// owned cells, so its local ghosts can be stale (see
		// Baseline.adaptUpdate); the interior sweep must not read them.
		ca.localFill(ca.psi)
		inner = ca.shrinkByDepths(owned, ca.smEx.ExchangeDepths())
		if !inner.Empty() {
			if ca.spe != nil {
				ca.chargeSmooth(ca.spe.SmoothFull(ca.psi, ca.xi, inner))
			} else {
				w := ca.smo.SmoothFull(ca.psi, ca.xi, inner)
				ca.w.Compute(float64(w) * costSmooth)
			}
		}
	}
	//cadyvet:quiesce under NoOverlap the inner rect is empty and this Finish is the quiesced reference path
	pend.Finish()
	ca.localFill(ca.psi)
	for _, s := range ca.slabs(owned, inner) {
		if ca.spe != nil {
			ca.chargeSmooth(ca.spe.SmoothFull(ca.psi, ca.xi, s))
		} else {
			w := ca.smo.SmoothFull(ca.psi, ca.xi, s)
			ca.w.Compute(float64(w) * costSmooth)
		}
	}
	ca.n.SmoothingCalls++
	ca.localFill(ca.xi)
}

// Finalize applies the trailing smoothing of Algorithm 2 line 30 (deferred
// from the last step), making Xi() comparable with the baseline's output.
func (ca *CommAvoid) Finalize() {
	if ca.finalized || ca.cfg.NoFusedSmoothing || (ca.n.Steps == 0 && !ca.resumed) {
		ca.finalized = true
		return
	}
	ca.plainSmooth()
	ca.finalized = true
}

// copyRect2 copies rect r of src into dst for 2-D fields.
func copyRect2(dst *field.F2, r field.Rect, src *field.F2) {
	r = r.Flat2D()
	for j := r.J0; j < r.J1; j++ {
		d := dst.Index(r.I0, j)
		s := src.Index(r.I0, j)
		copy(dst.Data[d:d+(r.I1-r.I0)], src.Data[s:s+(r.I1-r.I0)])
	}
}
