package tune

import (
	"math"
	"sort"
	"testing"

	"cadycore/internal/grid"
)

// TestStagedCandidatesEnumeratedAndRanked drives the staged-exchange axis on
// the paper-scale mesh: on 192×96×24 with 8 ranks the enumeration must offer
// communication-avoiding candidates at every stage depth 0 < s < M, the
// analytic model must price them all finitely, and the overlap-aware ranking
// must order them deterministically alongside the full-depth variants.
func TestStagedCandidatesEnumeratedAndRanked(t *testing.T) {
	g := grid.New(192, 96, 24)
	prof := quickProfile()
	cfg := planCfg()
	cfg.M = 3 // the paper's experiments: stages s ∈ {1, 2} beside full depth

	cands := Candidates(g, 8, cfg, prof, SearchOptions{MaxWorkers: 1})
	staged := map[int]int{}
	for _, c := range cands {
		if c.Scheme == SchemeCA && c.Stage > 0 {
			if c.Stage >= c.M {
				t.Fatalf("candidate %s stages at s >= M", c.Key())
			}
			staged[c.Stage]++
		}
	}
	for s := 1; s < cfg.M; s++ {
		if staged[s] == 0 {
			t.Errorf("no staged candidate with stage depth %d enumerated", s)
		}
	}

	type ranked struct {
		c Candidate
		e Estimate
	}
	var rs []ranked
	for _, c := range cands {
		e := Evaluate(g, cfg, prof, c)
		if math.IsNaN(e.Total) || math.IsInf(e.Total, 0) || e.Total <= 0 {
			t.Fatalf("candidate %s priced at %g", c.Key(), e.Total)
		}
		rs = append(rs, ranked{c, e})
	}
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].e.Total != rs[j].e.Total {
			return rs[i].e.Total < rs[j].e.Total
		}
		return rs[i].c.Key() < rs[j].c.Key()
	})

	// The staged variants must be genuinely priced (not aliased to the
	// full-depth estimate): find a CA layout and compare.
	differs := false
	for _, r := range rs {
		if r.c.Scheme != SchemeCA || r.c.Stage == 0 || r.c.RowStarts != nil {
			continue
		}
		full := r.c
		full.Stage = 0
		fe := Evaluate(g, cfg, prof, full)
		if fe.Total != r.e.Total {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("every staged estimate equals its full-depth estimate; the stage axis is dead in the model")
	}

	// A staged candidate appears in the ranking, and plans round-trip its
	// depth.
	for _, r := range rs {
		if r.c.Scheme == SchemeCA && r.c.Stage > 0 {
			p := planFrom(g, 8, r.e, prof)
			if p.Stage != r.c.Stage {
				t.Errorf("plan lost the stage depth: got %d, want %d", p.Stage, r.c.Stage)
			}
			if got := p.Candidate(); got.Key() != r.c.Key() {
				t.Errorf("plan round-trip changed the candidate: %s vs %s", got.Key(), r.c.Key())
			}
			break
		}
	}

	// NoStaged prunes the axis completely.
	for _, c := range Candidates(g, 8, cfg, prof, SearchOptions{MaxWorkers: 1, NoStaged: true}) {
		if c.Stage != 0 {
			t.Fatalf("NoStaged enumeration produced staged candidate %s", c.Key())
		}
	}
}
