package tune

import (
	"time"

	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/field"
	"cadycore/internal/filter"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
	"cadycore/internal/operators"
	"cadycore/internal/state"
)

// CalibrateOptions controls the calibration measurements.
type CalibrateOptions struct {
	// Model is the network model of the simulated machine the LogP
	// microbenchmarks run against (default TianheLike).
	Model comm.NetModel
	// Rounds is the ping-pong repetition count (default 16).
	Rounds int
	// SmallMsg and LargeMsg are the two ping-pong payload sizes in float64
	// words used for the two-point α/β fit (defaults 8 and 8192).
	SmallMsg, LargeMsg int
	// Nx, Ny, Nz set the kernel-benchmark mesh (default 64×32×8).
	Nx, Ny, Nz int
	// MinKernelTime is the minimum wall time each kernel is measured for
	// (default 50 ms; lower it for smoke tests).
	MinKernelTime time.Duration
}

func (o CalibrateOptions) withDefaults() CalibrateOptions {
	zero := comm.NetModel{}
	if o.Model == zero {
		o.Model = comm.TianheLike()
	}
	if o.Rounds <= 0 {
		o.Rounds = 16
	}
	if o.SmallMsg <= 0 {
		o.SmallMsg = 8
	}
	if o.LargeMsg <= o.SmallMsg {
		o.LargeMsg = 8192
	}
	if o.Nx < 8 || o.Ny < 5 || o.Nz < 2 {
		o.Nx, o.Ny, o.Nz = 64, 32, 8
	}
	if o.MinKernelTime <= 0 {
		o.MinKernelTime = 50 * time.Millisecond
	}
	return o
}

// Calibrate measures the machine and returns a versioned profile: the LogP
// constants come from ping-pong microbenchmarks on the simulated network
// (two payload sizes, linear fit), the kernel rates from short wall-clock
// timings of the real stencil/filter kernels.
func Calibrate(opt CalibrateOptions) Profile {
	opt = opt.withDefaults()
	alpha, beta := fitLogP(opt)
	p := Profile{
		Version:     ProfileVersion,
		Alpha:       alpha,
		Beta:        beta,
		Overhead:    opt.Model.SendOverhead,
		ComputeRate: opt.Model.ComputeRate,
		Kernels:     measureKernels(opt),
	}
	return p
}

// fitLogP runs 2-rank ping-pong at two payload sizes and solves
// t(n) = α + β·8n for α and β from the simulated round times.
func fitLogP(opt CalibrateOptions) (alpha, beta float64) {
	oneWay := func(words int) float64 {
		w := comm.NewWorld(2, opt.Model)
		w.Run(func(c *comm.Comm) {
			buf := make([]float64, words)
			for r := 0; r < opt.Rounds; r++ {
				if c.Rank() == 0 {
					c.Send(1, r, buf)
					c.Recv(1, r)
				} else {
					c.Recv(0, r)
					c.Send(0, r, buf)
				}
			}
		})
		// SimTime covers Rounds round trips = 2·Rounds one-way transfers.
		return w.Stats().SimTime / float64(2*opt.Rounds)
	}
	t1 := oneWay(opt.SmallMsg)
	t2 := oneWay(opt.LargeMsg)
	beta = (t2 - t1) / (8 * float64(opt.LargeMsg-opt.SmallMsg))
	if beta < 0 {
		beta = 0
	}
	alpha = t1 - beta*8*float64(opt.SmallMsg)
	if alpha <= 0 {
		alpha = t1
	}
	return alpha, beta
}

// measureKernels times the real kernels on a full-domain block and converts
// to point-updates per second (FilterRow to nx·log2(nx) equivalents/s).
func measureKernels(opt CalibrateOptions) KernelRates {
	g := grid.New(opt.Nx, opt.Ny, opt.Nz)
	blk := field.Block{
		Nx: g.Nx, Ny: g.Ny, Nz: g.Nz,
		I0: 0, I1: g.Nx, J0: 0, J1: g.Ny, K0: 0, K1: g.Nz,
		Hx: 3, Hy: 2, Hz: 1,
	}
	st := state.New(blk)
	heldsuarez.InitialState(g, st)
	st.FillLocalBounds()
	points := float64(g.Nx * g.Ny * g.Nz)

	sur := operators.NewSurface(blk)
	sur.Update(st.Psa)
	divp := field.NewF3(blk)
	operators.DivP(g, st.U, st.V, sur, divp, blk.Owned())
	cres := operators.NewCRes(blk)
	operators.CSum(g, nil, nil, divp, cres, blk.Owned(), 0, g.Nz)
	cres.PWI.FillXPeriodic()
	cres.DBar.FillXPeriodic()
	field.FillPolesY(cres.PWI, field.Even, field.CenterY)
	out := operators.NewTendency(blk)
	acfg := operators.DefaultAdaptConfig()
	sc := operators.NewAdvScratch(blk)
	smo := operators.NewSmoother(g, 1.0)
	dst := state.New(blk)

	var r KernelRates
	r.Adapt = points / timeIt(opt.MinKernelTime, func() {
		operators.Adaptation(g, acfg, st, sur, cres, out, blk.Owned())
	})
	r.Advect = points / timeIt(opt.MinKernelTime, func() {
		operators.AdvectionScratch(g, st, sur, cres, out, blk.Owned(), sc)
	})
	r.Smooth = points / timeIt(opt.MinKernelTime, func() {
		smo.SmoothFull(st, dst, blk.Owned())
	})
	r.CSum = points / timeIt(opt.MinKernelTime, func() {
		operators.DivP(g, st.U, st.V, sur, divp, blk.Owned())
		operators.CSum(g, nil, nil, divp, cres, blk.Owned(), 0, g.Nz)
	})

	// Filter: time Apply over the whole block with a 60° cutoff and convert
	// the transformed-row count to nx·log2(nx) equivalents.
	flt := filter.New(g, dycore.DefaultConfig().FilterCutoffDeg)
	rows := 0
	sec := timeIt(opt.MinKernelTime, func() {
		rows = flt.Apply(st.Phi, blk.Owned())
	})
	if rows < 1 {
		rows = 1
	}
	r.FilterRow = float64(rows) * rowCost(g.Nx) / sec
	return r
}

// timeIt runs fn in a loop until at least minTime has elapsed and returns
// the mean seconds per call.
func timeIt(minTime time.Duration, fn func()) float64 {
	fn() // warm up
	n := 0
	start := time.Now()
	for {
		fn()
		n++
		if d := time.Since(start); d >= minTime && n >= 3 {
			return d.Seconds() / float64(n)
		}
	}
}
