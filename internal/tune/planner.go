package tune

import (
	"fmt"
	"sort"

	"cadycore/internal/comm"
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
	"cadycore/internal/heldsuarez"
)

// PlanVersion is bumped when the Plan schema changes; cached plans with
// another version are ignored. Version 3 added the spectral-smoothing axis.
const PlanVersion = 3

// Plan is the planner's decision for one (mesh, procs, config, profile)
// request — everything needed to launch the run, plus the evidence.
type Plan struct {
	Version int    `json:"version"`
	Mesh    [3]int `json:"mesh"`
	Procs   int    `json:"procs"`

	Scheme  Scheme `json:"scheme"`
	PA      int    `json:"pa"`
	PB      int    `json:"pb"`
	M       int    `json:"m"`
	Workers int    `json:"workers"`
	// Stage is the staged-exchange halo depth for the CA scheme (0 = full
	// depth M).
	Stage int `json:"stage,omitempty"`
	// Spectral turns on the composed-symbol spectral smoothing fast path.
	Spectral bool `json:"spectral,omitempty"`
	// RowStarts is the y-row partition (omitted = uniform).
	RowStarts []int `json:"row_starts,omitempty"`
	// HaloY, HaloZ record the halo depths the scheme implies (informational).
	HaloY int `json:"halo_y"`
	HaloZ int `json:"halo_z"`

	// PredictedStep is the analytic model's busiest-rank seconds per step.
	PredictedStep float64 `json:"predicted_step_s"`
	// PilotStep is the pilot run's simulated seconds per step (0 when the
	// plan was not refined empirically).
	PilotStep float64 `json:"pilot_step_s,omitempty"`
	// Refined reports whether the empirical refiner ran.
	Refined bool `json:"refined"`
	// ProfileHash ties the plan to the machine profile that produced it.
	ProfileHash string `json:"profile_hash"`
}

// Candidate reconstructs the plan's search-space point.
func (p Plan) Candidate() Candidate {
	return Candidate{Scheme: p.Scheme, PA: p.PA, PB: p.PB, M: p.M, Workers: p.Workers, Stage: p.Stage, Spectral: p.Spectral, RowStarts: p.RowStarts}
}

// Setup builds the dycore setup that executes the plan. The caller's config
// supplies the numerics; the plan overrides M and Workers.
func (p Plan) Setup(cfg dycore.Config) dycore.Setup {
	return p.Candidate().Setup(cfg)
}

// String implements fmt.Stringer.
func (p Plan) String() string {
	s := fmt.Sprintf("%s %dx%d m=%d workers=%d halo(y=%d,z=%d)",
		p.Scheme, p.PA, p.PB, p.M, p.Workers, p.HaloY, p.HaloZ)
	if p.Stage > 0 {
		s += fmt.Sprintf(" stage=%d", p.Stage)
	}
	if p.Spectral {
		s += " spectral"
	}
	if p.RowStarts != nil {
		s += fmt.Sprintf(" rows=%v", p.RowStarts)
	}
	return s
}

// Planner chooses decompositions: analytic ranking over the full candidate
// space, then (optionally) an empirical pilot of the top candidates, with
// an optional on-disk memo. The zero value is not usable; fill Profile.
type Planner struct {
	Profile Profile
	// Cache memoizes plans on disk (nil = no memoization).
	Cache *Cache
	// Search bounds the candidate enumeration.
	Search SearchOptions
	// TopK is how many analytic leaders the pilot stage re-measures
	// (default 4; 0 uses the default, negative disables the refiner).
	TopK int
	// PilotSteps is the length of each pilot run (default 2).
	PilotSteps int
}

// topK resolves the pilot width.
func (pl *Planner) topK() int {
	switch {
	case pl.TopK < 0:
		return 0
	case pl.TopK == 0:
		return 4
	default:
		return pl.TopK
	}
}

// Plan chooses a layout for running cfg on g with exactly procs ranks.
// It is deterministic: the same inputs and profile always return the same
// plan (pilot runs measure the simulated LogP clock, which is reproducible).
func (pl *Planner) Plan(g *grid.Grid, procs int, cfg dycore.Config) (Plan, error) {
	if procs < 1 {
		return Plan{}, fmt.Errorf("tune: procs must be ≥ 1, got %d", procs)
	}
	cfg.Validate()
	maxW := pl.Search.MaxWorkers
	if maxW < 1 {
		maxW = 1
	}
	key := PlanKey(g.Nx, g.Ny, g.Nz, procs, cfg.M, maxW, pl.Profile.Hash())
	if p, ok := pl.Cache.Get(key); ok {
		return p, nil
	}

	cands := Candidates(g, procs, cfg, pl.Profile, pl.Search)
	if len(cands) == 0 {
		return Plan{}, fmt.Errorf("tune: no feasible layout for %d ranks on mesh %dx%dx%d",
			procs, g.Nx, g.Ny, g.Nz)
	}
	ests := make([]Estimate, len(cands))
	for i, c := range cands {
		ests[i] = Evaluate(g, cfg, pl.Profile, c)
	}
	// Deterministic analytic ranking: by predicted time, candidate key as
	// the tiebreaker.
	sort.Slice(ests, func(a, b int) bool {
		if ests[a].Total != ests[b].Total {
			return ests[a].Total < ests[b].Total
		}
		return ests[a].Candidate.Key() < ests[b].Candidate.Key()
	})

	best := ests[0]
	plan := planFrom(g, procs, best, pl.Profile)

	// Empirical refinement: pilot-run the analytic leaders for a few steps
	// on the simulated network and keep the fastest simulated step time.
	if k := pl.topK(); k > 0 {
		if k > len(ests) {
			k = len(ests)
		}
		steps := pl.PilotSteps
		if steps < 1 {
			steps = 2
		}
		model := pl.Profile.NetModel()
		bestSim, bestIdx := 0.0, -1
		for i := 0; i < k; i++ {
			sim := pilotStep(ests[i].Candidate, g, cfg, model, steps)
			if bestIdx < 0 || sim < bestSim {
				bestSim, bestIdx = sim, i
			}
		}
		plan = planFrom(g, procs, ests[bestIdx], pl.Profile)
		plan.PilotStep = bestSim
		plan.Refined = true
	}

	if err := pl.Cache.Put(key, plan); err != nil {
		return plan, fmt.Errorf("tune: memoize plan: %w", err)
	}
	return plan, nil
}

// PlanOf builds a Plan directly from a chosen candidate and its predicted
// step time, bypassing the enumeration — the rebalancing controller's entry
// point for publishing a mid-run re-plan in the same schema the planner and
// the job service persist.
func PlanOf(g *grid.Grid, procs int, c Candidate, prof Profile, predicted float64) Plan {
	return planFrom(g, procs, Estimate{Candidate: c, Total: predicted}, prof)
}

// planFrom fills a Plan from an estimate.
func planFrom(g *grid.Grid, procs int, e Estimate, prof Profile) Plan {
	c := e.Candidate
	var hy, hz int
	if c.Scheme == SchemeCA {
		sd := c.M
		if c.Stage > 0 && c.Stage < c.M {
			sd = c.Stage
		}
		_, hy, hz = dycore.CommAvoidHalo(sd)
	} else {
		_, hy, hz = dycore.BaselineHalo()
	}
	return Plan{
		Version: PlanVersion,
		Mesh:    [3]int{g.Nx, g.Ny, g.Nz},
		Procs:   procs,
		Scheme:  c.Scheme, PA: c.PA, PB: c.PB, M: c.M, Workers: c.Workers,
		Stage:         c.Stage,
		Spectral:      c.Spectral,
		RowStarts:     c.RowStarts,
		HaloY:         hy,
		HaloZ:         hz,
		PredictedStep: e.Total,
		ProfileHash:   prof.Hash(),
	}
}

// pilotStep runs the candidate for steps steps on the simulated network and
// returns simulated seconds per step. The Held–Suarez initial state gives
// the pilot realistic filter activity.
func pilotStep(c Candidate, g *grid.Grid, cfg dycore.Config, model comm.NetModel, steps int) float64 {
	res := dycore.Run(c.Setup(cfg), g, model, heldsuarez.InitialState, steps)
	return res.Agg.SimTime / float64(steps)
}

// MeasureStep runs one candidate for the given steps under the profile's
// network model and returns simulated seconds per step — the quantity the
// refiner optimizes, exported for exhaustive benchmarking (cadytune bench).
func (pl *Planner) MeasureStep(c Candidate, g *grid.Grid, cfg dycore.Config, steps int) float64 {
	if steps < 1 {
		steps = 2
	}
	return pilotStep(c, g, cfg, pl.Profile.NetModel(), steps)
}
