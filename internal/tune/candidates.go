package tune

import (
	"fmt"
	"strconv"
	"strings"

	"cadycore/internal/dycore"
	"cadycore/internal/grid"
)

// Scheme names a decomposition/algorithm family.
type Scheme string

const (
	// SchemeCA is the communication-avoiding algorithm (Y-Z decomposition).
	SchemeCA Scheme = "ca"
	// SchemeYZ is the original algorithm under the Y-Z decomposition.
	SchemeYZ Scheme = "yz"
	// SchemeXY is the original algorithm under the X-Y decomposition.
	SchemeXY Scheme = "xy"
)

// Alg maps the scheme to its integrator.
func (s Scheme) Alg() dycore.Algorithm {
	switch s {
	case SchemeCA:
		return dycore.AlgCommAvoid
	case SchemeXY:
		return dycore.AlgBaselineXY
	default:
		return dycore.AlgBaselineYZ
	}
}

// Candidate is one point of the planner's search space.
type Candidate struct {
	Scheme Scheme
	// PA, PB follow dycore.Setup: (py, pz) for CA/YZ, (px, py) for XY.
	PA, PB int
	// M is the nonlinear iteration count (halo depth follows it for CA).
	M int
	// Workers is the intra-rank tiling width.
	Workers int
	// Stage is the staged-exchange halo depth s for SchemeCA: 0 (or M)
	// sizes the halo for all M iterations at once; 0 < s < M sizes it for s
	// iterations and refreshes it ⌈M/s⌉ times per step with overlapped
	// exchanges. Ignored by the baseline schemes.
	Stage int
	// Spectral turns on the composed-symbol spectral smoothing fast path
	// (Config.SpectralSmooth). Only enumerated for the full-zonal-circle
	// schemes (CA, YZ) — under SchemeXY no rank owns a whole x row and the
	// switch would be inert.
	Spectral bool
	// RowStarts is the y-row partition (nil = uniform).
	RowStarts []int
}

// Key is the candidate's canonical identity: deterministic, order-free, used
// for tie-breaking and logging.
func (c Candidate) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s-%dx%d-m%d-w%d", c.Scheme, c.PA, c.PB, c.M, c.Workers)
	if c.Stage > 0 {
		fmt.Fprintf(&sb, "-s%d", c.Stage)
	}
	if c.Spectral {
		sb.WriteString("-sp")
	}
	if c.RowStarts != nil {
		sb.WriteString("-rows")
		for _, s := range c.RowStarts {
			sb.WriteByte('.')
			sb.WriteString(strconv.Itoa(s))
		}
	}
	return sb.String()
}

// Setup builds the dycore setup of the candidate.
func (c Candidate) Setup(cfg dycore.Config) dycore.Setup {
	cfg.M = c.M
	cfg.Workers = c.Workers
	if c.Scheme == SchemeCA {
		cfg.StageM = c.Stage
	}
	cfg.SpectralSmooth = c.Spectral
	return dycore.Setup{Alg: c.Scheme.Alg(), PA: c.PA, PB: c.PB, Cfg: cfg, RowStarts: c.RowStarts}
}

// py returns the y extent of the process grid.
func (c Candidate) py() int {
	if c.Scheme == SchemeXY {
		return c.PB
	}
	return c.PA
}

// SearchOptions bounds the candidate enumeration.
type SearchOptions struct {
	// MaxWorkers caps the Config.Workers candidates (powers of two up to
	// this value; ≤ 1 pins Workers to 1).
	MaxWorkers int
	// VaryM additionally tries M−1 and M+1 around the configured nonlinear
	// iteration count. Off by default: changing M changes the physics
	// accuracy, so it is opt-in.
	VaryM bool
	// NoUnbalanced disables the weighted y-row partition candidates.
	NoUnbalanced bool
	// NoStaged disables the staged-exchange (Candidate.Stage) variants of
	// the communication-avoiding scheme.
	NoStaged bool
	// NoSpectral disables the spectral-smoothing (Candidate.Spectral)
	// variants of the full-zonal-circle schemes.
	NoSpectral bool
}

// minRowsCA is the minimum rows/layers per rank the communication-avoiding
// overlap machinery is comfortable with.
const minRowsCA = 2

// Candidates enumerates the search space for running cfg on an nx×ny×nz
// mesh with exactly procs ranks. The order is deterministic: schemes in
// {ca, yz, xy} order, factorizations by ascending PA, then M, workers,
// full-depth before staged halos (ascending stage depth), stencil before
// spectral smoothing, and uniform before weighted partitions.
func Candidates(g *grid.Grid, procs int, cfg dycore.Config, prof Profile, opt SearchOptions) []Candidate {
	ms := []int{cfg.M}
	if opt.VaryM {
		if cfg.M > 1 {
			ms = append(ms, cfg.M-1)
		}
		ms = append(ms, cfg.M+1)
	}
	var workers []int
	for w := 1; w <= opt.MaxWorkers || w == 1; w *= 2 {
		workers = append(workers, w)
		if w >= opt.MaxWorkers {
			break
		}
	}
	if last := workers[len(workers)-1]; opt.MaxWorkers > last {
		workers = append(workers, opt.MaxWorkers)
	}

	var out []Candidate
	add := func(c Candidate) { out = append(out, c) }
	for _, scheme := range []Scheme{SchemeCA, SchemeYZ, SchemeXY} {
		for pa := 1; pa <= procs; pa++ {
			if procs%pa != 0 {
				continue
			}
			pb := procs / pa
			if !feasible(scheme, g, pa, pb) {
				continue
			}
			for _, m := range ms {
				if scheme != SchemeCA && m != cfg.M {
					continue // M sweeps only matter where halo depth follows M
				}
				for _, w := range workers {
					base := Candidate{Scheme: scheme, PA: pa, PB: pb, M: m, Workers: w}
					stages := []int{0}
					if scheme == SchemeCA && !opt.NoStaged {
						// Staged-exchange variants: halo depth s < m with
						// ⌈m/s⌉ overlapped refreshes per step.
						for s := 1; s < m; s++ {
							stages = append(stages, s)
						}
					}
					for _, s := range stages {
						variants := []bool{false}
						if scheme != SchemeXY && !opt.NoSpectral {
							// Spectral smoothing variants: only where every
							// rank owns full zonal circles (p_x = 1).
							variants = append(variants, true)
						}
						for _, sp := range variants {
							c := base
							c.Stage = s
							c.Spectral = sp
							add(c)
							if !opt.NoUnbalanced {
								if rows := weightedRows(g, cfg, prof, c); rows != nil {
									cw := c
									cw.RowStarts = rows
									add(cw)
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// feasible mirrors the service's layout validation (py ≤ ny/2, pz ≤ nz/2;
// px ≤ nx/2 for X-Y), plus the CA minimum block thickness.
func feasible(scheme Scheme, g *grid.Grid, pa, pb int) bool {
	switch scheme {
	case SchemeXY:
		return pa <= g.Nx/2 && pb <= g.Ny/2
	case SchemeCA:
		return pa <= g.Ny/minRowsCA && pb <= g.Nz/2
	default:
		return pa <= g.Ny/2 && pb <= g.Nz/2
	}
}

// weightedRows builds the latitude-weighted y partition for a candidate:
// each row's weight is its stencil work plus — on filter-active rows — the
// FFT work, in seconds per (x, z)-pencil, so polar ranks end up with fewer
// rows. Returns nil when py < 2 or the weighted partition degenerates to
// the uniform one.
func weightedRows(g *grid.Grid, cfg dycore.Config, prof Profile, c Candidate) []int {
	py := c.py()
	if py < 2 {
		return nil
	}
	minRows := 2
	if c.Scheme == SchemeCA {
		minRows = minRowsCA
	}
	if py*minRows > g.Ny {
		return nil
	}
	weights := rowWeights(g, cfg, prof, c)
	rows := grid.WeightedRowStarts(weights, py, minRows)
	uniform := grid.UniformRowStarts(g.Ny, py)
	same := true
	for i := range rows {
		if rows[i] != uniform[i] {
			same = false
			break
		}
	}
	if same {
		return nil
	}
	return rows
}

// rowWeights returns the per-row cost (seconds per step, per y row) of the
// candidate's kernels: the stencil work of a row of nx·(nz/pz) points plus
// the Fourier-filter work on rows poleward of the cutoff.
func rowWeights(g *grid.Grid, cfg dycore.Config, prof Profile, c Candidate) []float64 {
	nxLocal, pz := g.Nx, 1
	switch c.Scheme {
	case SchemeXY:
		nxLocal = g.Nx / c.PA
	default:
		pz = c.PB
	}
	layers := float64(g.Nz) / float64(pz)
	rowPoints := float64(nxLocal) * layers
	k := prof.Kernels
	smooth := rowPoints / k.Smooth
	if c.Spectral {
		// Composed-symbol path: the zonal convolution becomes one real-FFT
		// round trip per (x, z)-pencil, priced at the calibrated FilterRow
		// rate; only the meridional coupling stays on the Smooth rate.
		smooth = rowPoints*spectralYRatio/k.Smooth + layers*rowCost(nxLocal)/k.FilterRow
	}
	stencil := rowPoints*(3*float64(c.M)/k.Adapt+3/k.Advect+float64(2*c.M)/k.CSum) + smooth
	// Filtered tendencies per step: every adaptation and advection update
	// filters ~3 field components.
	apps := float64(3*c.M+3) * 3 * layers
	filterRow := apps * rowCost(nxLocal) / k.FilterRow
	active := g.PolarRows(cfg.FilterCutoffDeg)
	weights := make([]float64, g.Ny)
	for j := range weights {
		weights[j] = stencil
		if active[j] {
			weights[j] += filterRow
		}
	}
	return weights
}
