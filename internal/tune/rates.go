package tune

import (
	"math"

	"cadycore/internal/dycore"
	"cadycore/internal/grid"
)

// This file is the rate-aware side of the §5.3 cost model: the same analytic
// column costs as Evaluate, but with the compute term scaled by measured
// per-rank slowdown factors. It is what the live load-rebalancing runtime
// (internal/balance) re-plans with — a straggler rank shows up as slow > 1,
// which biases both the candidate ranking and the weighted row partition
// toward giving that rank less work.

// rankColumn returns the y-column index of a world rank under the
// candidate's process grid. Ranks are laid out rank = (cz·py + cy)·px + cx,
// matching internal/topo.
func rankColumn(c Candidate, rank int) int {
	px, py := 1, c.PA
	if c.Scheme == SchemeXY {
		px, py = c.PA, c.PB
	}
	return (rank / px) % py
}

// PerRankCompute returns the modeled per-step compute seconds of every rank
// of the candidate, in rank order. Each rank inherits its y column's compute
// cost (the x and z splits are uniform). The rebalancing controller divides
// measured per-rank compute by this baseline to isolate slowdowns the model
// does not already explain — the polar-filter skew is modeled, a straggler
// is not.
func PerRankCompute(g *grid.Grid, cfg dycore.Config, prof Profile, c Candidate) []float64 {
	comp, _ := colCosts(g, cfg, prof, c)
	procs := c.PA * c.PB
	out := make([]float64, procs)
	for r := range out {
		out[r] = comp[rankColumn(c, r)]
	}
	return out
}

// EvaluateWithRates is Evaluate with the compute term of each rank scaled by
// its measured slowdown factor (slow[r] ≥ 1, fastest rank = 1; nil or
// mismatched slow falls back to the unrated Evaluate). The estimate is the
// busiest rank's seconds per step under the measured rates.
func EvaluateWithRates(g *grid.Grid, cfg dycore.Config, prof Profile, c Candidate, slow []float64) Estimate {
	if len(slow) != c.PA*c.PB {
		return Evaluate(g, cfg, prof, c)
	}
	comp, comm := colCosts(g, cfg, prof, c)
	worst := Estimate{Candidate: c}
	for r, s := range slow {
		cy := rankColumn(c, r)
		if t := comp[cy]*s + comm[cy]; t > worst.Total {
			worst.Comp, worst.Comm, worst.Total = comp[cy]*s, comm[cy], t
		}
	}
	return worst
}

// RatedRows builds the slowdown-aware y-row partition for a candidate: row
// weights come from the candidate's kernel costs (like the planner's
// weighted partitions), but each column's weight is additionally multiplied
// by the largest slowdown among its ranks, so slow columns receive fewer
// rows. Returns nil when py < 2, the partition is infeasible, or the rated
// partition equals the candidate's existing one.
func RatedRows(g *grid.Grid, cfg dycore.Config, prof Profile, c Candidate, slow []float64) []int {
	py := c.py()
	if py < 2 || len(slow) != c.PA*c.PB {
		return nil
	}
	minRows := 2
	if c.Scheme == SchemeCA {
		minRows = minRowsCA
	}
	if py*minRows > g.Ny {
		return nil
	}
	colSlow := make([]float64, py)
	for r, s := range slow {
		if cy := rankColumn(c, r); s > colSlow[cy] {
			colSlow[cy] = s
		}
	}
	for _, s := range colSlow {
		if s <= 0 {
			return nil
		}
	}
	weights := rowWeights(g, cfg, prof, c)
	rows := RatedRowStarts(weights, colSlow, minRows)
	existing := c.RowStarts
	if existing == nil {
		existing = grid.UniformRowStarts(g.Ny, py)
	}
	same := len(rows) == len(existing)
	if same {
		for i := range rows {
			if rows[i] != existing[i] {
				same = false
				break
			}
		}
	}
	if same {
		return nil
	}
	return rows
}

// RatedRowStarts partitions len(weights) rows into len(colSlow) contiguous
// chunks of at least minRows rows each, minimizing the maximum of
// colSlow[cy] · (chunk cy's weight) — grid.WeightedRowStarts generalized to
// position-dependent chunk multipliers, which a uniform relabeling cannot
// express. Deterministic: among optimal partitions it returns the
// lexicographically smallest boundary vector. Panics on infeasible inputs,
// mirroring grid.WeightedRowStarts.
func RatedRowStarts(weights, colSlow []float64, minRows int) []int {
	ny, parts := len(weights), len(colSlow)
	if parts < 1 || minRows < 1 || parts*minRows > ny {
		panic("tune: RatedRowStarts infeasible partition request")
	}
	prefix := make([]float64, ny+1)
	for j, w := range weights {
		prefix[j+1] = prefix[j] + w
	}
	// sdp[p][i]: minimal achievable max rated chunk cost splitting the
	// suffix rows [i, ny) over the LAST p columns (columns parts−p … parts−1,
	// so the multiplier of the first chunk is colSlow[parts−p]). O(parts·ny²)
	// like the unrated DP; the reconstruction reuses the exact floats the
	// recurrence minimized, so no epsilon slop is needed.
	const inf = math.MaxFloat64
	sdp := make([][]float64, parts+1)
	for p := range sdp {
		sdp[p] = make([]float64, ny+1)
		for i := range sdp[p] {
			sdp[p][i] = inf
		}
	}
	for i := 0; i+minRows <= ny; i++ {
		sdp[1][i] = colSlow[parts-1] * (prefix[ny] - prefix[i])
	}
	for p := 2; p <= parts; p++ {
		mult := colSlow[parts-p]
		for i := 0; i+p*minRows <= ny; i++ {
			best := inf
			for j := i + minRows; j+(p-1)*minRows <= ny; j++ {
				cost := math.Max(mult*(prefix[j]-prefix[i]), sdp[p-1][j])
				if cost < best {
					best = cost
				}
			}
			sdp[p][i] = best
		}
	}
	opt := sdp[parts][0]
	starts := make([]int, parts+1)
	starts[parts] = ny
	at := 0
	for p := 1; p < parts; p++ {
		rem := parts - p
		found := false
		for j := at + minRows; j+rem*minRows <= ny; j++ {
			if colSlow[p-1]*(prefix[j]-prefix[at]) <= opt && sdp[rem][j] <= opt {
				starts[p] = j
				at = j
				found = true
				break
			}
		}
		if !found {
			panic("tune: RatedRowStarts reconstruction stuck")
		}
	}
	return starts
}

// MigrationCost prices one in-flight layout switch with the profile's
// network constants: a quiesce barrier plus a full-state gather and
// re-scatter (three 3-D fields and the surface pressure, 8 bytes each),
// paid twice for the round trip through the checkpoint. The rebalancing
// controller only accepts a re-plan whose predicted win over the remaining
// steps clears this cost.
func MigrationCost(g *grid.Grid, procs int, prof Profile) float64 {
	bytes := 8 * float64(3*g.Nx*g.Ny*g.Nz+g.Nx*g.Ny)
	return 2*float64(procs)*prof.Alpha + 2*prof.Beta*bytes
}
