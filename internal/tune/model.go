package tune

import (
	"math"

	"cadycore/internal/costmodel"
	"cadycore/internal/dycore"
	"cadycore/internal/grid"
)

// Estimate is the analytic cost prediction of one candidate: seconds per
// step, split into compute and communication, maximized over ranks — the
// §5.3 W/S expressions with calibrated constants plus the latitude-weighted
// filter term the Θ forms drop.
type Estimate struct {
	Candidate Candidate
	// Comp and Comm are the busiest rank's per-step compute and
	// communication seconds; Total = Comp + Comm of that rank.
	Comp, Comm, Total float64
}

// rowCost is the work of one filtered row transform in point-equivalents.
func rowCost(nx int) float64 {
	if nx < 2 {
		return 1
	}
	return float64(nx) * math.Log2(float64(nx))
}

// workerEff is the parallel efficiency assumed for intra-rank tiling; the
// pilot stage measures the real value, this only ranks candidates.
const workerEff = 0.85

// spectralYRatio converts the spectral smoothing path's residual stencil
// work into Smooth-rate point equivalents: half the smoothed fields keep
// their meridional 5-point coupling, each charged the simulated y-coupling
// weight relative to a full stencil-smooth point. Derived from the dycore
// sim weights so the analytic model and the pilot runs price the switch
// identically.
var spectralYRatio = func() float64 {
	yPoint, _ := dycore.SimSpectralSmooth()
	_, _, smooth, _, _ := dycore.SimCosts()
	return 0.5 * yPoint / smooth
}()

// fieldsPerExchange approximates the state components a halo exchange
// carries (U, V, Φ as 3-D fields plus the surface pressure).
const fieldsPerExchange = 4

// Evaluate prices one candidate analytically. All terms are per step
// (K = 1); only relative order matters for planning, but the scale is real
// seconds so predictions are comparable with pilot measurements.
func Evaluate(g *grid.Grid, cfg dycore.Config, prof Profile, c Candidate) Estimate {
	comp, comm := colCosts(g, cfg, prof, c)
	worst := Estimate{Candidate: c}
	for cy := range comp {
		if t := comp[cy] + comm[cy]; t > worst.Total {
			worst.Comp, worst.Comm, worst.Total = comp[cy], comm[cy], t
		}
	}
	return worst
}

// colCosts prices every y column of the candidate's process grid separately,
// returning per-column compute and communication seconds per step (length
// py). All ranks of one column carry the same modeled cost: the x and z
// splits are uniform, only the y rows differ. The split form feeds both
// Evaluate (max over columns) and the rate-aware re-planner, which scales
// the compute term by measured per-rank slowdowns.
func colCosts(g *grid.Grid, cfg dycore.Config, prof Profile, c Candidate) (compCols, commCols []float64) {
	px, py, pz := 1, c.PA, c.PB
	if c.Scheme == SchemeXY {
		px, py, pz = c.PA, c.PB, 1
	}
	starts := c.RowStarts
	if starts == nil {
		starts = grid.UniformRowStarts(g.Ny, py)
	}
	active := g.PolarRows(cfg.FilterCutoffDeg)
	cal := prof.Calib()
	k := prof.Kernels
	m := float64(c.M)

	// Per-step communication round counts (the S terms of §5.3, split by
	// kind): the CA algorithm does 2 exchange rounds and 2M z-collectives;
	// the originals 3M+4 exchanges plus 3M z-collectives (YZ) or 3M+3
	// filter transposes (XY).
	var nEx, nColl, nFilt float64
	var hy, hz int
	switch c.Scheme {
	case SchemeCA:
		nEx, nColl = 2, 2*m
		sd := c.M
		if c.Stage > 0 && c.Stage < c.M {
			// Staged exchange: a depth-s halo serves s iterations, so the
			// step needs ⌈M/s⌉ adaptation rounds plus the advection round.
			sd = c.Stage
			nEx = math.Ceil(m/float64(sd)) + 1
		}
		_, hy, hz = dycore.CommAvoidHalo(sd)
	case SchemeYZ:
		nEx, nColl = 3*m+4, 3*m
		_, hy, hz = dycore.BaselineHalo()
	default:
		nEx, nFilt = 3*m+4, 3*m+3
		_, hy, hz = dycore.BaselineHalo()
	}

	compCols = make([]float64, py)
	commCols = make([]float64, py)
	nxl := g.Nx / px
	layers := g.Nz / pz
	for cy := 0; cy < py; cy++ {
		rows := starts[cy+1] - starts[cy]
		points := float64(nxl * rows * layers)

		// Compute: stencil kernels plus filter work on this rank's active
		// rows, divided by the effective intra-rank parallelism.
		filtRows := 0
		for j := starts[cy]; j < starts[cy+1]; j++ {
			if active[j] {
				filtRows++
			}
		}
		smoothComp := points / k.Smooth
		if c.Spectral && px == 1 {
			// Composed-symbol smoothing (§5.3 extension): one real-FFT
			// round trip per zonal pencil on the FilterRow rate plus the
			// residual meridional coupling on the Smooth rate. Inert when
			// p_x > 1 — no rank owns a full circle.
			smoothComp = points*spectralYRatio/k.Smooth +
				points/float64(nxl)*rowCost(nxl)/k.FilterRow
		}
		comp := points*(3*m/k.Adapt+3/k.Advect+(2*m+1)/k.CSum) + smoothComp
		apps := (3*m + 3) * 3 * float64(layers)
		comp += apps * float64(filtRows) * rowCost(nxl) / k.FilterRow
		if c.Workers > 1 {
			eff := math.Min(float64(c.Workers), float64(layers))
			if eff < 1 {
				eff = 1
			}
			comp /= 1 + (eff-1)*workerEff
		}

		// Halo exchange: nEx rounds; each moves the y faces (2·hy·nxl·layers)
		// and z faces (hz·nxl·rows; the deep z halo is one-sided) of
		// fieldsPerExchange components.
		yFace := float64(2*hy*nxl*layers) * boolF(py > 1)
		zFace := float64(hz*nxl*rows) * boolF(pz > 1)
		xFace := float64(2*3*rows*layers) * boolF(px > 1)
		exBytes := 8 * fieldsPerExchange * (yFace + zFace + xFace)
		round := cal.Alpha + cal.Beta*exBytes
		if !cfg.NoOverlap {
			// Overlapped exchange (§5.3 refinement): each Begin/Finish round
			// hides its flight time behind the interior share of the sweep it
			// overlaps; only the residual wait stays exposed. The window is
			// the round's slice of the interior compute — the owned block
			// shrunk by the halo the in-flight messages will fill.
			innerY := 1 - float64(2*hy)/float64(rows)*boolF(py > 1)
			innerZ := 1 - float64(hz)/float64(layers)*boolF(pz > 1)
			if innerY < 0 {
				innerY = 0
			}
			if innerZ < 0 {
				innerZ = 0
			}
			window := comp * innerY * innerZ / nEx
			round = costmodel.OverlapExposed(round, window)
		}
		comm := nEx * round

		// z-summation collective (Theorem 4.2 shape): an allreduce of the
		// rank's nxl·rows plane costs ~2 plane transfers times log pz.
		if nColl > 0 && pz > 1 {
			plane := float64(nxl * rows)
			comm += nColl * (cal.Alpha*math.Ceil(math.Log2(float64(pz))) +
				cal.Beta*8*2*plane*math.Log2(float64(pz)))
		}
		// Distributed-filter transposes (Theorem 4.1 shape): two all-to-all
		// passes over the rank's share per filtered tendency.
		if nFilt > 0 && px > 1 {
			comm += nFilt * (cal.Alpha*2*math.Ceil(math.Log2(float64(px))) +
				cal.Beta*8*2*points*math.Log2(float64(px)))
		}

		compCols[cy] = comp
		commCols[cy] = comm
	}
	return compCols, commCols
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
