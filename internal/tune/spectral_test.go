package tune

import (
	"math"
	"strings"
	"testing"

	"cadycore/internal/grid"
)

// TestSpectralCandidatesEnumeratedAndPriced drives the spectral-smoothing
// axis: the enumeration must offer spectral variants of every
// full-zonal-circle scheme (and never of SchemeXY), the analytic model must
// price them finitely and distinctly from their stencil twins, plans must
// round-trip the flag, and NoSpectral must prune the axis.
func TestSpectralCandidatesEnumeratedAndPriced(t *testing.T) {
	g := grid.New(192, 96, 24)
	prof := quickProfile()
	cfg := planCfg()
	cfg.M = 2

	cands := Candidates(g, 8, cfg, prof, SearchOptions{MaxWorkers: 1})
	bySch := map[Scheme]int{}
	for _, c := range cands {
		if !c.Spectral {
			continue
		}
		if c.Scheme == SchemeXY {
			t.Fatalf("spectral candidate %s under SchemeXY (p_x > 1, the switch is inert)", c.Key())
		}
		if !strings.HasSuffix(c.Key(), "-sp") && !strings.Contains(c.Key(), "-sp-") {
			t.Fatalf("spectral candidate key %q lacks the -sp marker", c.Key())
		}
		bySch[c.Scheme]++
	}
	for _, sch := range []Scheme{SchemeCA, SchemeYZ} {
		if bySch[sch] == 0 {
			t.Errorf("no spectral candidate enumerated for scheme %s", sch)
		}
	}

	// The axis must be priced, not aliased: a spectral candidate's estimate
	// differs from its stencil twin's, and on this mesh (nx = 192 is below
	// the crossover of the calibrated rates) the spectral one is cheaper.
	cheaper := false
	for _, c := range cands {
		if !c.Spectral || c.RowStarts != nil {
			continue
		}
		e := Evaluate(g, cfg, prof, c)
		if math.IsNaN(e.Total) || math.IsInf(e.Total, 0) || e.Total <= 0 {
			t.Fatalf("candidate %s priced at %g", c.Key(), e.Total)
		}
		sten := c
		sten.Spectral = false
		se := Evaluate(g, cfg, prof, sten)
		if e.Comp >= se.Comp {
			t.Errorf("spectral %s compute %g not below stencil twin's %g", c.Key(), e.Comp, se.Comp)
		}
		if e.Total < se.Total {
			cheaper = true
		}
		// The candidate's setup must actually carry the switch.
		if !c.Setup(cfg).Cfg.SpectralSmooth {
			t.Fatalf("candidate %s setup lost SpectralSmooth", c.Key())
		}
		if sten.Setup(cfg).Cfg.SpectralSmooth {
			t.Fatalf("stencil candidate %s setup gained SpectralSmooth", sten.Key())
		}
	}
	if !cheaper {
		t.Error("no spectral candidate out-priced its stencil twin at nx=192; the axis is dead in the model")
	}

	// Plans round-trip the flag, and the printed form names it.
	for _, c := range cands {
		if c.Spectral && c.Scheme == SchemeCA && c.RowStarts == nil {
			p := planFrom(g, 8, Evaluate(g, cfg, prof, c), prof)
			if !p.Spectral {
				t.Error("plan lost the spectral flag")
			}
			if got := p.Candidate(); got.Key() != c.Key() {
				t.Errorf("plan round-trip changed the candidate: %s vs %s", got.Key(), c.Key())
			}
			if !strings.Contains(p.String(), "spectral") {
				t.Errorf("plan string %q does not name the spectral switch", p.String())
			}
			break
		}
	}

	// NoSpectral prunes the axis completely.
	for _, c := range Candidates(g, 8, cfg, prof, SearchOptions{MaxWorkers: 1, NoSpectral: true}) {
		if c.Spectral {
			t.Fatalf("NoSpectral enumeration produced spectral candidate %s", c.Key())
		}
	}
}
