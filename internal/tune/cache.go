//cadyvet:persistence profile files and the plan cache survive restarts; writes go through the blessed writeFileAtomic helper
package tune

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Cache is the on-disk plan memo: one JSON file per (mesh, procs, config,
// profile) key, written atomically (temp + rename) so concurrent planners —
// multiple jobs in the service, or parallel cadytune invocations sharing a
// directory — never read a torn plan and last-writer-wins is safe.
type Cache struct {
	dir string
}

// NewCache opens (creating if needed at first Put) a plan cache directory.
func NewCache(dir string) *Cache { return &Cache{dir: dir} }

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// path maps a key to its file. Keys are produced by PlanKey and are already
// filesystem-safe.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the memoized plan for the key, if present and well-formed.
func (c *Cache) Get(key string) (Plan, bool) {
	if c == nil {
		return Plan{}, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return Plan{}, false
	}
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil || p.Version != PlanVersion {
		return Plan{}, false
	}
	return p, true
}

// Put memoizes a plan under the key.
func (c *Cache) Put(key string, p Plan) error {
	if c == nil {
		return nil
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("tune: marshal plan: %w", err)
	}
	data = append(data, '\n')
	return writeFileAtomic(c.path(key), data)
}

// PlanKey builds the cache key of a planning request. Everything the plan
// depends on is in the key: mesh extents, rank budget, the nonlinear
// iteration count and worker cap of the request, and the profile hash.
func PlanKey(nx, ny, nz, procs, m, maxWorkers int, profileHash string) string {
	return fmt.Sprintf("plan-%dx%dx%d-p%d-m%d-w%d-%s", nx, ny, nz, procs, m, maxWorkers, profileHash)
}
