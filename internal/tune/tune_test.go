package tune

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"cadycore/internal/dycore"
	"cadycore/internal/grid"
)

// quickProfile is a fixed profile for deterministic planner tests (no
// wall-clock measurement involved).
func quickProfile() Profile {
	p := DefaultProfile()
	return p
}

func planCfg() dycore.Config {
	cfg := dycore.DefaultConfig()
	cfg.M = 2
	cfg.Dt1, cfg.Dt2 = 40, 240
	return cfg
}

func TestProfileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "machine.json")
	p := Calibrate(CalibrateOptions{
		Rounds: 4, Nx: 16, Ny: 10, Nz: 4, MinKernelTime: time.Millisecond,
	})
	if err := p.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	q, err := LoadProfile(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip mismatch:\nsaved  %+v\nloaded %+v", p, q)
	}
	if p.Hash() != q.Hash() {
		t.Fatalf("hash changed across round trip")
	}
	// A different profile must hash differently.
	q.Kernels.Adapt *= 2
	if p.Hash() == q.Hash() {
		t.Fatal("distinct profiles share a hash")
	}
}

func TestLoadProfileRejectsVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "machine.json")
	p := DefaultProfile()
	p.Version = ProfileVersion + 1
	data := []byte(`{"version": 999, "alpha": 1e-5, "beta": 1e-10, "overhead": 1e-6, "compute_rate": 1e8,
		"kernels": {"adapt": 1, "advect": 1, "smooth": 1, "csum": 1, "filter_row": 1}}`)
	//cadyvet:volatile hand-writes an invalid profile for LoadProfile to reject; it never needs to survive a crash
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProfile(path); err == nil {
		t.Fatal("expected version-mismatch error")
	}
}

func TestCalibrateFitsNetworkModel(t *testing.T) {
	p := Calibrate(CalibrateOptions{
		Rounds: 8, Nx: 16, Ny: 10, Nz: 4, MinKernelTime: time.Millisecond,
	})
	m := p.NetModel()
	// The two-point fit must recover the simulated machine's constants.
	ref := DefaultProfile()
	relErr := func(got, want float64) float64 {
		if want == 0 {
			return got
		}
		d := (got - want) / want
		if d < 0 {
			d = -d
		}
		return d
	}
	if relErr(p.Alpha, ref.Alpha) > 0.05 {
		t.Errorf("alpha = %g, want ≈ %g", p.Alpha, ref.Alpha)
	}
	if relErr(p.Beta, ref.Beta) > 0.05 {
		t.Errorf("beta = %g, want ≈ %g", p.Beta, ref.Beta)
	}
	if m.ComputeRate != ref.ComputeRate {
		t.Errorf("compute rate = %g, want %g", m.ComputeRate, ref.ComputeRate)
	}
	if err := p.validate(); err != nil {
		t.Errorf("calibrated profile invalid: %v", err)
	}
}

func TestCandidatesDeterministicAndFeasible(t *testing.T) {
	g := grid.New(16, 12, 4)
	prof := quickProfile()
	cfg := planCfg()
	opt := SearchOptions{MaxWorkers: 4}
	a := Candidates(g, 4, cfg, prof, opt)
	b := Candidates(g, 4, cfg, prof, opt)
	if len(a) == 0 {
		t.Fatal("no candidates")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("candidate enumeration is not deterministic")
	}
	seen := map[string]bool{}
	for _, c := range a {
		if seen[c.Key()] {
			t.Fatalf("duplicate candidate %s", c.Key())
		}
		seen[c.Key()] = true
		if c.Scheme == SchemeXY {
			if c.PA > g.Nx/2 || c.PB > g.Ny/2 {
				t.Fatalf("infeasible XY candidate %s", c.Key())
			}
		} else if c.PA > g.Ny/2 || c.PB > g.Nz/2 {
			t.Fatalf("infeasible %s candidate %s", c.Scheme, c.Key())
		}
	}
}

func TestPlanDeterminism(t *testing.T) {
	g := grid.New(16, 12, 4)
	prof := quickProfile()
	cfg := planCfg()
	pl := &Planner{Profile: prof, TopK: 3, PilotSteps: 2}
	p1, err := pl.Plan(g, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pl.Plan(g, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("same profile, different plans:\n%+v\n%+v", p1, p2)
	}
	if p1.ProfileHash != prof.Hash() {
		t.Errorf("plan not stamped with profile hash")
	}
	if !p1.Refined || p1.PilotStep <= 0 {
		t.Errorf("expected a refined plan with a pilot time, got %+v", p1)
	}
}

func TestPlanPrefersCommAvoidingYZ(t *testing.T) {
	// On a mesh with a y extent big enough for a pure-y decomposition, the
	// planner must land on the paper's answer: the communication-avoiding
	// algorithm under Y-Z.
	g := grid.New(32, 24, 6)
	pl := &Planner{Profile: quickProfile(), TopK: 4, PilotSteps: 2}
	p, err := pl.Plan(g, 4, planCfg())
	if err != nil {
		t.Fatal(err)
	}
	if p.Scheme != SchemeCA {
		t.Errorf("planner chose %s (%s), want the communication-avoiding scheme", p.Scheme, p)
	}
	// The planned setup must actually run.
	setup := p.Setup(planCfg())
	if setup.Alg != dycore.AlgCommAvoid {
		t.Errorf("setup algorithm = %v", setup.Alg)
	}
}

func TestPlanCacheHitAndMiss(t *testing.T) {
	g := grid.New(16, 12, 4)
	prof := quickProfile()
	cfg := planCfg()
	dir := t.TempDir()
	pl := &Planner{Profile: prof, Cache: NewCache(dir), TopK: -1}
	p1, err := pl.Plan(g, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	key := PlanKey(g.Nx, g.Ny, g.Nz, 4, cfg.M, 1, prof.Hash())
	if _, ok := pl.Cache.Get(key); !ok {
		t.Fatal("plan not memoized")
	}
	p2, err := pl.Plan(g, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("cache returned a different plan")
	}
	// A re-calibrated machine must miss.
	prof2 := prof
	prof2.Kernels.FilterRow *= 3
	key2 := PlanKey(g.Nx, g.Ny, g.Nz, 4, cfg.M, 1, prof2.Hash())
	if _, ok := pl.Cache.Get(key2); ok {
		t.Fatal("cache hit for a different profile hash")
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	// Hammer one cache directory from many goroutines mixing Get and Put;
	// run under -race in CI. Atomic temp+rename must keep every read
	// well-formed.
	dir := t.TempDir()
	c := NewCache(dir)
	plan := Plan{Version: PlanVersion, Mesh: [3]int{16, 12, 4}, Procs: 4,
		Scheme: SchemeCA, PA: 2, PB: 2, M: 2, Workers: 1, ProfileHash: "abc"}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := PlanKey(16, 12, 4, 4, 2, 1, "h")
			for n := 0; n < 50; n++ {
				p := plan
				p.Workers = 1 + (i+n)%4
				if err := c.Put(key, p); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if got, ok := c.Get(key); ok {
					if got.Version != PlanVersion || got.Scheme != SchemeCA {
						t.Errorf("torn read: %+v", got)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestEvaluateUnbalancedBeatsUniformWhenFilterHeavy(t *testing.T) {
	// With an expensive filter, the weighted partition's busiest rank must
	// be predicted no slower than the uniform one's.
	g := grid.New(32, 24, 6)
	prof := quickProfile()
	prof.Kernels.FilterRow /= 50 // make filtering dominate
	cfg := planCfg()
	base := Candidate{Scheme: SchemeCA, PA: 4, PB: 1, M: cfg.M, Workers: 1}
	rows := weightedRows(g, cfg, prof, base)
	if rows == nil {
		t.Fatal("expected a non-uniform weighted partition")
	}
	weighted := base
	weighted.RowStarts = rows
	eu := Evaluate(g, cfg, prof, base)
	ew := Evaluate(g, cfg, prof, weighted)
	if ew.Total > eu.Total {
		t.Errorf("weighted partition predicted slower than uniform: %g > %g (rows %v)",
			ew.Total, eu.Total, rows)
	}
	// Polar chunks must be thinner than mid-latitude chunks.
	if rows[1]-rows[0] >= rows[2]-rows[1] {
		t.Errorf("polar chunk not thinner: %v", rows)
	}
}
