// Package tune is the cost-model-driven autotuner: it calibrates a machine
// profile (LogP network constants plus per-kernel compute rates), evaluates
// the paper's §5.3 W/S expressions with those constants over the full
// candidate space — scheme ∈ {CA, YZ, XY}, every py×pz factorization, worker
// count, and non-uniform y-row partitions that give the filter-heavy polar
// ranks fewer rows — and refines the top analytic candidates with short
// pilot runs, memoizing the chosen plan in an on-disk cache.
//
// The planner is deterministic: a given (mesh, procs, config, profile)
// always yields the same plan. Pilot runs measure the simulated LogP clock,
// not wall time, so refinement is reproducible too.
package tune

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"cadycore/internal/comm"
	"cadycore/internal/costmodel"
	"cadycore/internal/dycore"
)

// ProfileVersion is bumped whenever the profile schema or the meaning of a
// rate changes; loading a profile with a different version fails.
const ProfileVersion = 1

// KernelRates holds calibrated compute throughput per kernel, in mesh-point
// updates per second (FilterRow is in nx·log2(nx) point-equivalents per
// second, the natural unit of one filtered row transform).
type KernelRates struct {
	Adapt     float64 `json:"adapt"`
	Advect    float64 `json:"advect"`
	Smooth    float64 `json:"smooth"`
	CSum      float64 `json:"csum"`
	FilterRow float64 `json:"filter_row"`
}

// Profile is the versioned machine profile the planner consumes.
type Profile struct {
	Version int `json:"version"`
	// Alpha is the effective latency of one synchronization round
	// (network latency plus both software overheads), seconds.
	Alpha float64 `json:"alpha"`
	// Beta is the per-byte transfer time, seconds.
	Beta float64 `json:"beta"`
	// Overhead is the software send overhead (the LogP "o"), seconds.
	Overhead float64 `json:"overhead"`
	// ComputeRate is the simulated-clock compute rate of the network model
	// (point-updates per second); pilot runs advance the LogP clock with it.
	ComputeRate float64 `json:"compute_rate"`
	// Kernels are the measured wall-clock kernel rates.
	Kernels KernelRates `json:"kernels"`
}

// NetModel reconstructs the communication model pilot runs simulate under.
func (p Profile) NetModel() comm.NetModel {
	return comm.NetModel{
		Latency:      p.Alpha - 2*p.Overhead,
		ByteTime:     p.Beta,
		SendOverhead: p.Overhead,
		ComputeRate:  p.ComputeRate,
	}
}

// Calib projects the profile onto the calibrated cost-model constants.
func (p Profile) Calib() costmodel.Calib {
	return costmodel.Calib{Alpha: p.Alpha, Beta: p.Beta}
}

// Hash returns a short stable digest of the profile; it keys the plan cache
// so stale plans are never served for a re-calibrated machine.
func (p Profile) Hash() string {
	data, err := json.Marshal(p)
	if err != nil {
		panic(fmt.Sprintf("tune: profile hash: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:6])
}

// Save writes the profile atomically (temp file + rename, like checkpoints).
func (p Profile) Save(path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("tune: marshal profile: %w", err)
	}
	data = append(data, '\n')
	return writeFileAtomic(path, data)
}

// LoadProfile reads a profile and rejects version mismatches.
func LoadProfile(path string) (Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Profile{}, err
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return Profile{}, fmt.Errorf("tune: parse profile %s: %w", path, err)
	}
	if p.Version != ProfileVersion {
		return Profile{}, fmt.Errorf("tune: profile %s has version %d, want %d (re-run calibration)",
			path, p.Version, ProfileVersion)
	}
	if err := p.validate(); err != nil {
		return Profile{}, fmt.Errorf("tune: profile %s: %w", path, err)
	}
	return p, nil
}

func (p Profile) validate() error {
	if p.Alpha <= 0 || p.Beta < 0 || p.Overhead < 0 || p.ComputeRate <= 0 {
		return fmt.Errorf("non-positive network constants (alpha %g, beta %g, overhead %g, rate %g)",
			p.Alpha, p.Beta, p.Overhead, p.ComputeRate)
	}
	k := p.Kernels
	if k.Adapt <= 0 || k.Advect <= 0 || k.Smooth <= 0 || k.CSum <= 0 || k.FilterRow <= 0 {
		return fmt.Errorf("non-positive kernel rates %+v", k)
	}
	return nil
}

// ProfileFromModel derives a profile analytically from a network model:
// the kernel rates come from the simulated clock's own cost weights
// (dycore.SimCosts), so analytic estimates and pilot runs under this model
// price compute identically — usable whenever no wall-clock calibration
// has been run.
func ProfileFromModel(m comm.NetModel) Profile {
	aw, dw, sw, cw, fw := dycore.SimCosts()
	return Profile{
		Version:     ProfileVersion,
		Alpha:       m.Latency + 2*m.SendOverhead,
		Beta:        m.ByteTime,
		Overhead:    m.SendOverhead,
		ComputeRate: m.ComputeRate,
		Kernels: KernelRates{
			Adapt:     m.ComputeRate / aw,
			Advect:    m.ComputeRate / dw,
			Smooth:    m.ComputeRate / sw,
			CSum:      m.ComputeRate / cw,
			FilterRow: m.ComputeRate / fw,
		},
	}
}

// DefaultProfile is ProfileFromModel of the TianheLike machine.
func DefaultProfile() Profile {
	return ProfileFromModel(comm.TianheLike())
}

// writeFileAtomic writes data to path via a temp file in the same directory
// plus fsync + rename + parent-dir fsync, so concurrent readers never
// observe a partial file and a crash at any point leaves either the old or
// the new content — never a torn or lost file.
//
//cadyvet:blessed the package's one commit helper: CreateTemp in the destination dir, fsync, rename, parent-dir fsync
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
