// Fixture for the allocfree analyzer: each annotated function demonstrates
// one class of heap allocation the checker must flag, plus the suppression
// and cold-path exemptions it must honor.
package allocfree

type vec struct{ x, y float64 }

func (v *vec) norm() float64 { return v.x*v.x + v.y*v.y }

type summer interface{ Sum() float64 }

//cadyvet:allocfree
func useMake(n int) []float64 {
	x := make([]float64, n) // want "heap allocation in alloc-free function useMake: make"
	return x
}

//cadyvet:allocfree
func useAppend(xs []float64) []float64 {
	return append(xs, 1) // want "append may grow its backing array"
}

//cadyvet:allocfree
func useNew() *vec {
	return new(vec) // want "heap allocation in alloc-free function useNew: new"
}

//cadyvet:allocfree
func sliceLit() []float64 {
	return []float64{1, 2} // want "slice literal"
}

//cadyvet:allocfree
func mapLit() map[int]int {
	return map[int]int{} // want "map literal"
}

//cadyvet:allocfree
func addrLit() *vec {
	return &vec{1, 2} // want "address-taken composite literal"
}

//cadyvet:allocfree
func closure() func() {
	return func() {} // want "function literal"
}

//cadyvet:allocfree
func launches() {
	go helperClean() // want "go statement"
}

func helperClean() {}

//cadyvet:allocfree
func concat(a, b string) string {
	return a + b // want "string concatenation"
}

//cadyvet:allocfree
func convertToString(b []byte) string {
	return string(b) // want "string conversion"
}

//cadyvet:allocfree
func convertToBytes(s string) []byte {
	return []byte(s) // want "conversion"
}

//cadyvet:allocfree
func boxes(v vec) interface{} {
	return v // want "boxes into interface"
}

//cadyvet:allocfree
func boundMethod(v *vec) func() float64 {
	return v.norm // want "bound-method value"
}

//cadyvet:allocfree
func dynamicCall(f func()) {
	f() // want "call through function value"
}

//cadyvet:allocfree
func ifaceCall(s summer) float64 {
	return s.Sum() // want "interface method call Sum"
}

func variadicClean(xs ...float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t
}

//cadyvet:allocfree
func callsVariadic() float64 {
	return variadicClean(1, 2, 3) // want "implicit slice for variadic call"
}

func sink(vs ...interface{}) {}

//cadyvet:allocfree
func boxesVariadic(v vec) {
	sink(v) // want "boxes into interface" "implicit slice for variadic call"
}

// Transitive enforcement within the package.

func localAlloc(n int) []float64 { return make([]float64, n) }

//cadyvet:allocfree
func callsLocalAlloc(n int) []float64 {
	return localAlloc(n) // want "call in alloc-free function callsLocalAlloc to localAlloc, which allocates"
}

// Cold paths: a statement list that provably ends in panic is a failure path
// and is exempt.

//cadyvet:allocfree
func coldPath(n int) {
	if n < 0 {
		v := &vec{1, 2} // exempt: the enclosing list terminates in panic
		panic(v)
	}
}

// Suppressions.

//cadyvet:allocfree
func lazyInit(buf *[]float64, n int) {
	if cap(*buf) < n {
		//cadyvet:allow one-time growth; steady state reuses the buffer
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
}

//cadyvet:assumeclean stands in for a tracing hook that allocates only when tracing is enabled
func traceRecord() {
	_ = map[int]int{}
}

//cadyvet:allocfree
func callsAssumed() {
	traceRecord() // ok: callee is axiomatically clean
}

// Contradictory annotations are themselves a finding.

//cadyvet:allocfree
//cadyvet:assumeclean cannot both enforce and assume
func contradictory() {} // want "annotated both cadyvet:allocfree and cadyvet:assumeclean"
