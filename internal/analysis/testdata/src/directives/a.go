// Fixture for directive hygiene: unknown directive words and waivers without
// a written justification are themselves findings.
package directives

func bad(n int) int {
	//cadyvet:frobnicate typo of a real directive
	// want-above "unknown cadyvet directive"
	return n + 1
}

func lazy(buf *[]float64, n int) {
	//cadyvet:allow
	// want-above "requires a written justification"
	*buf = make([]float64, n)
}

//cadyvet:assumeclean a justified axiom produces no finding
func axiom() {}

type anonGuard struct {
	flag bool //cadyvet:guardedby
	// want-above "cadyvet:guardedby directive requires the guard .mutex. name"
}

func bareWaiver() {
	//cadyvet:shortlived
	// want-above "requires a written justification"
	go bareWaiver()
}
