// Fixture for the commsym analyzer: rank-conditional collectives, the
// early-exit pattern, taint through locals and topology coordinates, the
// rankuniform waiver, and Begin/Finish pairing.
package commsym

import (
	"comm"
	"topo"
)

func leaderOnly(c *comm.Comm) {
	if c.Rank() == 0 {
		c.Barrier() // want "collective Barrier is control-dependent on a rank-valued condition"
	}
}

func earlyExit(c *comm.Comm, buf []float64) {
	if c.Rank() != 0 {
		return
	}
	c.Bcast(buf, 0) // want "collective Bcast is control-dependent on a rank-valued condition"
}

func derived(c *comm.Comm) {
	leader := c.Rank() == 0
	if leader {
		c.Barrier() // want "collective Barrier is control-dependent"
	}
}

func coordGate(t *topo.Topology, c *comm.Comm) {
	if t.Cz == 0 {
		c.Barrier() // want "collective Barrier is control-dependent"
	}
}

func helper(c *comm.Comm) { c.Barrier() }

func indirect(c *comm.Comm) {
	if c.Rank() == 0 {
		helper(c) // want "collective-bearing call to helper is control-dependent"
	}
}

func uniformOK(c *comm.Comm, n int) {
	if n > 0 {
		c.Barrier() // ok: the condition is not rank-derived
	}
}

func p2pOK(c *comm.Comm, buf []float64) {
	if c.Rank() == 0 {
		c.Send(1, 7, buf) // ok: point-to-point is rank-addressed by design
	}
}

// Waivers.

//cadyvet:rankuniform the schedule flag is computed identically on every rank
func waivedFunc(c *comm.Comm) {
	if c.Rank() == 0 {
		c.Barrier()
	}
}

func waivedCall(c *comm.Comm) {
	if c.Size() == 1 || c.Rank() == 0 {
		//cadyvet:rankuniform single-rank fast path: the branch is uniform when it matters
		c.Barrier()
	}
}

// Begin/Finish pairing.

func discarded(e *topo.Exchanger, fs [][]float64) {
	e.Begin(fs) // want "Begin result discarded"
}

func blankAssign(e *topo.Exchanger, fs [][]float64) {
	_ = e.Begin(fs) // want "Begin result discarded"
}

func incomplete(e *topo.Exchanger, fs [][]float64) {
	p := e.Begin(fs) // want "never completed with Finish on any path in incomplete"
	if p == nil {
		panic("nil pending")
	}
}

func paired(e *topo.Exchanger, fs [][]float64) {
	p := e.Begin(fs)
	//cadyvet:quiesce pairing fixture; the overlap analyzer has its own fixture
	p.Finish() // ok
}

func chained(e *topo.Exchanger, fs [][]float64) {
	//cadyvet:quiesce pairing fixture; the overlap analyzer has its own fixture
	e.Begin(fs).Finish() // ok
}

func escapes(e *topo.Exchanger, fs [][]float64) *topo.Pending {
	p := e.Begin(fs)
	return p // ok: the caller completes it
}

func waivedPairing(e *topo.Exchanger, fs [][]float64) {
	//cadyvet:allow completion is driven by the step scheduler at the next barrier
	e.Begin(fs)
}
