// Fixture for cross-package Waits facts: pump.Run blocks on its channel,
// pump.Spin never does.
package goleakx

import "pump"

// Start launches the pumps.
//
//cadyvet:component
func Start(ch chan int) {
	go pump.Run(ch) // ok: Waits fact from pump
	go pump.Spin()  // want "goroutine launched in long-lived component Start has no shutdown path"
}
