// Package gstore is a fixture dependency for cross-package guardedby facts:
// PutLocked exports a NeedsLock fact its importers are checked against.
package gstore

import "sync"

// Store is a fixture shared map.
type Store struct {
	Mu   sync.Mutex
	vals map[string]int //cadyvet:guardedby Mu
}

// PutLocked records a value; the caller holds s.Mu.
//
//cadyvet:locked s.Mu
func (s *Store) PutLocked(k string, v int) {
	s.vals[k] = v
}

// Put is the self-locking form.
func (s *Store) Put(k string, v int) {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	s.PutLocked(k, v)
}
