// Fixture for guardedby: annotated fields demand their mutex, tracked
// flow-sensitively.
package guardedby

import (
	"atomic"
	"sync"
)

type counter struct {
	mu   sync.Mutex
	n    int   //cadyvet:guardedby mu
	hits int64 //cadyvet:guardedby mu
	name string
}

func good(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func goodDeferred(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func unguardedOK(c *counter) string {
	return c.name // not annotated
}

func badWrite(c *counter) {
	c.n = 1 // want "access to c.n .guarded by mu. without holding c.mu"
}

func badRead(c *counter) int {
	return c.n // want "access to c.n .guarded by mu. without holding c.mu"
}

func afterUnlock(c *counter) {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	c.n = 2 // want "access to c.n .guarded by mu. without holding c.mu"
}

func branchMerge(c *counter, cond bool) {
	if cond {
		c.mu.Lock()
	}
	c.n = 3 // want "access to c.n .guarded by mu. without holding c.mu"
	if cond {
		c.mu.Unlock()
	}
}

func earlyReturnOK(c *counter, cond bool) {
	c.mu.Lock()
	if cond {
		c.mu.Unlock()
		return
	}
	c.n = 4
	c.mu.Unlock()
}

// bumpLocked requires the caller to hold c.mu.
//
//cadyvet:locked c.mu
func (c *counter) bumpLocked() {
	c.n++
}

func callsLockedGood(c *counter) {
	c.mu.Lock()
	c.bumpLocked()
	c.mu.Unlock()
}

func callsLockedBad(c *counter) {
	c.bumpLocked() // want "call to bumpLocked requires c.mu held .declared cadyvet:locked."
}

func leak(c *counter, cond bool) {
	c.mu.Lock() // want "c.mu is locked here but not released on some return path"
	if cond {
		return
	}
	c.mu.Unlock()
}

func mixedAtomic(c *counter) {
	atomic.AddInt64(&c.hits, 1) // want "field hits is guarded by mu but its address is passed to atomic.AddInt64"
}

func freshStmt() *counter {
	c := &counter{}
	c.n = 1 //cadyvet:unshared freshly allocated, not yet shared
	return c
}

// freshFunc builds an unpublished value; no lock needed anywhere in it.
//
//cadyvet:unshared constructor owns the value exclusively until return
func freshFunc() *counter {
	c := &counter{}
	c.n = 2
	return c
}

func spawn(c *counter) {
	c.mu.Lock()
	go func() {
		c.n = 9 // want "access to c.n .guarded by mu. without holding c.mu"
	}()
	c.mu.Unlock()
}

func litLocked(c *counter) {
	c.mu.Lock()
	f := func() { //cadyvet:locked c.mu
		c.n = 4
	}
	f()
	c.mu.Unlock()
}
