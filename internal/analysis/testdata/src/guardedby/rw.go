package guardedby

import "sync"

type stats struct {
	mu  sync.RWMutex
	sum float64 //cadyvet:guardedby mu
}

func readShared(s *stats) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sum
}

func writeExclusive(s *stats, v float64) {
	s.mu.Lock()
	s.sum += v
	s.mu.Unlock()
}

func writeUnderReadLock(s *stats) {
	s.mu.RLock()
	s.sum = 1 // want "write to s.sum .guarded by mu. while holding only the read lock s.mu"
	s.mu.RUnlock()
}
