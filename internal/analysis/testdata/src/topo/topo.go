// Package topo is a fixture stand-in for the module's process topology and
// halo exchanger (matched by package and type name, like the comm fixture).
package topo

import "comm"

// Topology carries the rank's grid coordinates; Cx/Cy/Cz are rank-valued
// sources for the commsym taint analysis.
type Topology struct {
	Cx, Cy, Cz int
	World      *comm.Comm
}

// Pending is an in-flight halo exchange awaiting completion.
type Pending struct{ active bool }

func (p *Pending) Finish() { p.active = false }

// Exchanger issues halo exchanges.
type Exchanger struct{ pend Pending }

func (e *Exchanger) Begin(fs [][]float64) *Pending { return &e.pend }

func (e *Exchanger) Exchange(fs [][]float64) {
	//cadyvet:quiesce fixture mirror of the real Exchange, the deliberately blocking convenience form
	e.Begin(fs).Finish()
}
