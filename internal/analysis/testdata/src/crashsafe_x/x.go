// Fixture for cross-package crashsafe facts: diskio.Dump carries a RawWrite
// fact, diskio.Atomic a Blessed one.
//
//cadyvet:persistence ensemble result files
package crashsafex

import "diskio"

func bad(dir string, b []byte) {
	_ = diskio.Dump(dir+"/state", b) // want "call to Dump performs a raw durable write outside the blessed helpers"
}

func good(dir string, b []byte) {
	_ = diskio.Atomic(dir, dir+"/state", b)
}
