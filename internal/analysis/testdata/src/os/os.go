// Package os is a fixture stand-in for the standard library's os: crashsafe
// matches raw filesystem mutations by package name and function name, so this
// minimal replica exercises it without export data.
package os

// File mirrors os.File.
type File struct{ name string }

func (f *File) Name() string                { return f.name }
func (f *File) Write(b []byte) (int, error) { return len(b), nil }
func (f *File) Sync() error                 { return nil }
func (f *File) Close() error                { return nil }

func Create(name string) (*File, error)                          { return nil, nil }
func Open(name string) (*File, error)                            { return nil, nil }
func OpenFile(name string, flag int, perm uint32) (*File, error) { return nil, nil }
func CreateTemp(dir, pattern string) (*File, error)              { return nil, nil }
func Rename(oldpath, newpath string) error                       { return nil }
func Remove(name string) error                                   { return nil }
func WriteFile(name string, data []byte, perm uint32) error      { return nil }
func ReadFile(name string) ([]byte, error)                       { return nil, nil }
