// Package sync is a fixture stand-in for the standard library's sync:
// guardedby and goleak match lock and wait operations by package name and
// type name, so this minimal replica exercises them without export data.
package sync

// Mutex mirrors sync.Mutex.
type Mutex struct{ state int }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

// RWMutex mirrors sync.RWMutex.
type RWMutex struct{ state int }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}

// WaitGroup mirrors sync.WaitGroup.
type WaitGroup struct{ n int }

func (w *WaitGroup) Add(delta int) {}
func (w *WaitGroup) Done()         {}
func (w *WaitGroup) Wait()         {}
