// Fixture for cross-package fact propagation: the allocation status of
// kernels.* functions arrives via imported facts, not source inspection.
package allocfreex

import "kernels"

//cadyvet:allocfree
func CallsClean(a, b []float64) {
	kernels.Clean(a, b) // ok: imported fact says clean
}

//cadyvet:allocfree
func CallsAlloc(n int) []float64 {
	return kernels.Alloc(n) // want "call in alloc-free function CallsAlloc to Alloc, which allocates"
}

//cadyvet:allocfree
func CallsTransitive(n int) []float64 {
	return kernels.CallsAlloc(n) // want "which allocates"
}

//cadyvet:allocfree
func Waived(n int) []float64 {
	//cadyvet:allow setup path, runs once before the time loop
	return kernels.Alloc(n)
}
