// Package comm is a fixture stand-in for the module's communicator: cadyvet
// matches collective APIs by package name and type name, so this minimal
// replica exercises the analyzers without importing the real library (fixture
// packages are typechecked from source, with no stdlib export data).
package comm

// Op mirrors the reduction operator signature.
type Op func(dst, src []float64)

// Comm is the fixture communicator.
type Comm struct {
	rank, size int
}

func (c *Comm) Rank() int { return c.rank }
func (c *Comm) Size() int { return c.size }

// Collectives: bodies are empty on purpose — the fixtures test call *sites*.
func (c *Comm) Barrier()                                 {}
func (c *Comm) Bcast(buf []float64, root int)            {}
func (c *Comm) Allreduce(dst, src []float64, op Op)      {}
func (c *Comm) Reduce(dst, src []float64, root int)      {}
func (c *Comm) Allgather(dst, src []float64)             {}
func (c *Comm) AllreduceScalar(v float64, op Op) float64 { return v }

// Point-to-point: rank-addressed by design, not collectives.
func (c *Comm) Send(dst, tag int, data []float64)    {}
func (c *Comm) Recv(src, tag int) []float64          { return nil }
func (c *Comm) RecvInto(src, tag int, buf []float64) {}
