// Package time is a fixture stand-in for the standard library's time: goleak
// matches the timer-leak idioms by package name and function name.
package time

// Duration mirrors time.Duration.
type Duration int64

func After(d Duration) <-chan int { return nil }
func Tick(d Duration) <-chan int  { return nil }
func Sleep(d Duration)            {}

// Timer mirrors time.Timer.
type Timer struct{ C <-chan int }

func NewTimer(d Duration) *Timer       { return nil }
func (t *Timer) Stop() bool            { return true }
func (t *Timer) Reset(d Duration) bool { return true }

// Ticker mirrors time.Ticker.
type Ticker struct{ C <-chan int }

func NewTicker(d Duration) *Ticker { return nil }
func (t *Ticker) Stop()            {}
