// Package crashsafe exercises the crashsafe analyzer: raw durable writes,
// temp-dir placement, and discarded Sync/Close/Rename errors.
//
//cadyvet:persistence job state files under the fixture store directory
package crashsafe

import "os"

// commit is the one sanctioned durable write path of this fixture.
//
//cadyvet:blessed implements the temp+fsync+rename commit protocol
func commit(dir, path string, data []byte) error {
	f, err := os.CreateTemp(dir, "tmp*")
	if err != nil {
		return err
	}
	defer f.Close() // backstop; the explicit Close below is checked
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(dir+"/tmp", path)
}

func putGood(dir, key string, data []byte) error {
	return commit(dir, dir+"/"+key, data)
}

func rawCreate(path string) {
	f, _ := os.Create(path) // want "raw os.Create bypasses the blessed commit helpers"
	f.Close()               // want "Close error discarded on write handle f"
}

func rawRename(a, b string) {
	os.Rename(a, b) // want "raw os.Rename bypasses the blessed commit helpers" "os.Rename error discarded on a persistence write path"
}

func sysTemp() {
	os.CreateTemp("", "x*") // want "raw os.CreateTemp bypasses the blessed commit helpers" "temp file created in the system temp dir"
}

// blessedSysTemp is blessed yet still misplaces its temp file.
//
//cadyvet:blessed fixture helper with a deliberate temp-dir bug
func blessedSysTemp() (*os.File, error) {
	return os.CreateTemp("", "x*") // want "temp file created in the system temp dir"
}

// uncheckedSync is blessed; discarded fsync errors are still findings.
//
//cadyvet:blessed fixture helper exercising the discarded-sync check
func uncheckedSync(f *os.File) {
	f.Sync() // want "Sync error discarded on a persistence write path"
}

func helper(path string) error {
	return os.Rename(path+".tmp", path) // want "raw os.Rename bypasses the blessed commit helpers"
}

func viaHelper(path string) {
	// The raw event is reported once, inside helper — not again here.
	_ = helper(path)
}

func scratch(path string) {
	//cadyvet:volatile scratch probe file, loss is safe by design
	os.WriteFile(path, nil, 0)
}

func readsAreFine(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // read handle: Close error carries no data-loss signal
	return os.ReadFile(path)
}
