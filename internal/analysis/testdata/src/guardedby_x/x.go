// Fixture for cross-package caller-holds-lock contracts: gstore.PutLocked
// carries a NeedsLock fact.
package guardedbyx

import "gstore"

func good(s *gstore.Store) {
	s.Mu.Lock()
	s.PutLocked("a", 1)
	s.Mu.Unlock()
}

func bad(s *gstore.Store) {
	s.PutLocked("a", 1) // want "call to PutLocked requires s.Mu held .declared cadyvet:locked."
}
