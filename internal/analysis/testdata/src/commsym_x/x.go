// Fixture for cross-package collective facts: halo.Sync is collective-bearing
// only according to its imported fact.
package commsymx

import (
	"comm"
	"halo"
)

func gated(c *comm.Comm) {
	if c.Rank() == 0 {
		halo.Sync(c) // want "collective-bearing call to Sync is control-dependent"
	}
}

func uniform(c *comm.Comm) {
	halo.Sync(c) // ok: unconditional
}
