// Fixture for goleak: goroutines of //cadyvet:component functions need a
// shutdown path; timer-leak idioms are flagged module-wide.
package goleak

import (
	"sync"
	"time"
)

// New starts the component's workers.
//
//cadyvet:component
func New(done chan int, jobs chan int) {
	go worker(jobs) // ok: ranges over the jobs channel
	go func() {     // ok: selects on done
		for {
			select {
			case <-done:
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
	go spin() // want "goroutine launched in long-lived component New has no shutdown path"
}

func worker(jobs chan int) {
	for j := range jobs {
		_ = j
	}
}

func spin() {
	for {
	}
}

// NewDeep exercises the transitive waits resolution through local calls.
//
//cadyvet:component
func NewDeep(done chan int) {
	go runLoop(done) // ok: runLoop waits via waitDone
}

func runLoop(done chan int) {
	waitDone(done)
}

func waitDone(done chan int) {
	<-done
}

// Fanout spawns bounded members; the waiver vouches for their termination.
//
//cadyvet:component
func Fanout(n int, wg *sync.WaitGroup) {
	for i := 0; i < n; i++ {
		//cadyvet:shortlived each member simulates a bounded number of steps
		go member(i, wg)
	}
	wg.Wait()
}

func member(i int, wg *sync.WaitGroup) {
	wg.Done()
}

func helperSpawn() {
	go spin() // ok: not a component function
}

func pollLoop(stop chan int) {
	for {
		select {
		case <-stop:
			return
		case <-time.After(time.Duration(10)): // want "time.After inside a loop"
		}
	}
}

func tick() <-chan int {
	return time.Tick(time.Duration(5)) // want "time.Tick leaks its ticker"
}

func afterOnce() {
	<-time.After(time.Duration(1)) // ok: not in a loop
}

func goodLoop(stop chan int) {
	t := time.NewTimer(time.Duration(10))
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			t.Reset(time.Duration(10))
		}
	}
}
