// Package halo wraps a collective behind a helper, for the transitive
// collective-bearing-call tests.
package halo

import "comm"

// Sync runs a full barrier; callers inherit its collective nature via facts.
func Sync(c *comm.Comm) { c.Barrier() }
