// Fixture for the overlap analyzer: Finish calls that immediately follow
// their Begin (chained and adjacent-statement forms), the quiesce waiver,
// and legitimately overlapped rounds.
package overlap

import "topo"

func compute(fs [][]float64) {
	for _, f := range fs {
		for i := range f {
			f[i] *= 0.5
		}
	}
}

func chained(e *topo.Exchanger, fs [][]float64) {
	e.Begin(fs).Finish() // want "Finish chained onto Begin completes the exchange with no interior compute"
}

func adjacent(e *topo.Exchanger, fs [][]float64) {
	p := e.Begin(fs)
	p.Finish() // want "Finish immediately follows its Begin with no interior compute"
}

func overlapped(e *topo.Exchanger, fs [][]float64) {
	p := e.Begin(fs)
	compute(fs) // interior work inside the window
	p.Finish()  // ok: the exchange hid the compute above
}

func waivedChained(e *topo.Exchanger, fs [][]float64) {
	//cadyvet:quiesce bootstrap fill, no independent compute exists yet
	e.Begin(fs).Finish()
}

func waivedAdjacent(e *topo.Exchanger, fs [][]float64) {
	p := e.Begin(fs)
	//cadyvet:quiesce ablation reference path blocks by design
	p.Finish()
}

func branchAdjacent(e *topo.Exchanger, fs [][]float64, quiesce bool) {
	if quiesce {
		p := e.Begin(fs)
		p.Finish() // want "Finish immediately follows its Begin"
	} else {
		p := e.Begin(fs)
		compute(fs)
		p.Finish() // ok
	}
}

func otherPending(e *topo.Exchanger, fs [][]float64) {
	p := e.Begin(fs)
	q := e.Begin(fs)
	p.Finish() // ok: completes the earlier round, not the adjacent Begin
	q.Finish() // ok: separated from its Begin by p's completion
}
