// Package atomic is a fixture stand-in for sync/atomic: guardedby flags
// guarded fields whose address flows into this package's functions.
package atomic

func AddInt64(addr *int64, delta int64) int64 { return 0 }
func LoadInt64(addr *int64) int64             { return 0 }
func StoreInt64(addr *int64, val int64)       {}
