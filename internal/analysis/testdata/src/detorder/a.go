// Fixture for the detorder analyzer: map-ordered loops feeding float/string
// accumulation, communication, and serialization.
package detorder

import "comm"

func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "floating-point accumulation in map-iteration order"
	}
	return total
}

func sumIntsOK(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // ok: integer addition is associative
	}
	return n
}

func localAccOK(m map[string]float64) {
	for _, v := range m {
		x := 0.0
		x += v // ok: the accumulator lives inside the loop body
		_ = x
	}
}

func concatKeys(m map[string]bool) string {
	s := ""
	for k := range m {
		s = s + k // want "string accumulation in map-iteration order"
	}
	return s
}

func commInLoop(c *comm.Comm, m map[int][]float64) {
	for dst, buf := range m {
		c.Send(dst, 0, buf) // want "communication .Send. in map-iteration order"
	}
}

func collectiveInLoop(c *comm.Comm, m map[int]bool) {
	for range m {
		c.Barrier() // want "communication .Barrier. in map-iteration order"
	}
}

func bcastAll(c *comm.Comm, buf []float64) { c.Bcast(buf, 0) }

func transitively(c *comm.Comm, m map[int]bool, buf []float64) {
	for range m {
		bcastAll(c, buf) // want "communication .bcastAll, transitively. in map-iteration order"
	}
}

type sink struct{ n int }

func (s *sink) Write(p []byte) (int, error) { s.n += len(p); return len(p), nil }

func dumps(s *sink, m map[string][]byte) {
	for _, b := range m {
		s.Write(b) // want "serialization .Write. in map-iteration order"
	}
}

type writer interface {
	Write(p []byte) (int, error)
}

func dumpIface(w writer, m map[string][]byte) {
	for _, b := range m {
		w.Write(b) // want "serialization .Write. in map-iteration order"
	}
}

func waived(m map[string]float64) float64 {
	var t float64
	//cadyvet:unordered result feeds a diagnostic log line only; tolerance-compared downstream
	for _, v := range m {
		t += v
	}
	return t
}

func normalizeOK(m map[string]float64, denom float64) {
	for k := range m {
		m[k] /= denom // ok: element-wise update keyed by the loop variable
	}
}

func sortedSumOK(m map[string]float64, keys []string) float64 {
	var t float64
	for _, k := range keys {
		t += m[k] // ok: slice iteration is ordered
	}
	return t
}
