// Package pump is a fixture dependency for cross-package goleak facts: Run
// exports Waits=true, Spin does not.
package pump

// Run drains the channel until it closes.
func Run(ch chan int) {
	for range ch {
	}
}

// Spin never checks a shutdown signal.
func Spin() {
	for {
	}
}
