// Package diskio is a fixture dependency for cross-package crashsafe facts:
// Dump exports a RawWrite fact, Atomic a Blessed one. The package itself is
// not a persistence surface, so nothing is reported here.
package diskio

import "os"

// Dump writes state with a bare WriteFile — no fsync, no rename.
func Dump(path string, b []byte) error {
	return os.WriteFile(path, b, 0)
}

// Atomic is this fixture library's commit helper.
//
//cadyvet:blessed temp file in the destination dir, fsync, rename
func Atomic(dir, path string, b []byte) error {
	f, err := os.CreateTemp(dir, "t*")
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path)
}
