// Package kernels provides functions with known allocation behavior for the
// cross-package fact-propagation tests.
package kernels

// Clean is provably alloc-free.
func Clean(a, b []float64) {
	for i := range a {
		a[i] += b[i]
	}
}

// Alloc allocates directly.
func Alloc(n int) []float64 {
	return make([]float64, n)
}

// CallsAlloc allocates transitively (through Alloc).
func CallsAlloc(n int) []float64 {
	return Alloc(n)
}
