package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// CrashSafe enforces the crash-safe persistence protocol in packages marked
// //cadyvet:persistence: durable files must reach disk as temp-in-destination
// + fsync + rename + parent-dir fsync, implemented once in the
// //cadyvet:blessed helpers (checkpoint.WriteAtomic/commitTmp/SyncDir and
// friends). In a persistence package it flags:
//
//   - raw durable-path mutations — os.Create, os.OpenFile, os.WriteFile,
//     os.Rename, os.CreateTemp — outside a blessed function: hand-rolled
//     write paths drift from the protocol (the torn-write class the PR-5
//     chaos tests only catch probabilistically). Calls to imported functions
//     that transitively perform such a mutation are flagged too, via the
//     RawWrite fact.
//   - os.CreateTemp with dir "" (the system temp dir), anywhere including
//     blessed helpers: a cross-filesystem rename is not atomic, so the temp
//     file must live in the destination directory.
//   - discarded errors from Sync, Rename, and Close on write handles: a
//     failed fsync means the data may not be durable, and the caller must
//     see it. An unchecked Close is tolerated as a defer backstop when the
//     same handle also has a checked Close.
//
// //cadyvet:volatile waives a finding for state that is genuinely
// best-effort (scratch files, caches whose loss is safe).
var CrashSafe = &Analyzer{
	Name: "crashsafe",
	Doc:  "route durable writes in //cadyvet:persistence packages through the blessed commit helpers",
}

func init() { CrashSafe.Run = runCrashSafe }

// rawWriteFuncs are the os entry points that mutate a path.
var rawWriteFuncs = map[string]bool{
	"Create": true, "OpenFile": true, "WriteFile": true, "Rename": true, "CreateTemp": true,
}

type csfFunc struct {
	fd      funcDecl
	blessed *directive
	events  []afEvent // raw mutations in the body (waived ones excluded)
	temps   []token.Pos
	calls   []afCall
}

type csfState struct {
	p     *Pass
	decls map[*types.Func]*csfFunc
	memo  map[*types.Func]string // resolved RawWrite reason
	stack map[*types.Func]bool
}

func runCrashSafe(p *Pass) {
	s := &csfState{
		p:     p,
		decls: make(map[*types.Func]*csfFunc),
		memo:  make(map[*types.Func]string),
		stack: make(map[*types.Func]bool),
	}
	persistence := false
	for _, d := range p.ann.all {
		if d.kind == dirPersistence {
			d.used = true
			persistence = true
		}
	}

	fds := p.enclosingFuncs()
	for i := range fds {
		s.decls[fds[i].obj] = s.collect(fds[i])
	}

	// Export facts for every function, whether or not this package is a
	// persistence surface — its importers may be.
	for _, fd := range fds {
		key := funcKey(fd.obj)
		fact := p.Facts.Current.Funcs[key]
		fact.Blessed = s.decls[fd.obj].blessed != nil
		fact.RawWrite = s.resolve(fd.obj)
		p.Facts.Put(key, fact)
	}

	if !persistence {
		return
	}
	for _, fd := range fds {
		cf := s.decls[fd.obj]
		if cf.blessed == nil {
			for _, ev := range cf.events {
				p.report(CrashSafe.Name, ev.pos, dirVolatile,
					"raw %s bypasses the blessed commit helpers (use checkpoint.WriteAtomic/commitTmp or mark the helper cadyvet:blessed)", ev.desc)
			}
			for _, call := range cf.calls {
				if _, local := s.decls[call.fn.Origin()]; local {
					continue // its own raw events are reported at their sites
				}
				if reason := s.resolve(call.fn); reason != "" {
					p.report(CrashSafe.Name, call.pos, dirVolatile,
						"call to %s performs a raw durable write outside the blessed helpers: %s", call.fn.Name(), reason)
				}
			}
		}
		for _, pos := range cf.temps {
			p.report(CrashSafe.Name, pos, dirVolatile,
				"temp file created in the system temp dir: create it in the destination directory so the commit rename stays on one filesystem")
		}
		s.checkUnchecked(fd)
	}
}

// resolve computes the RawWrite reason of fn: the first raw mutation it
// (transitively) performs outside a blessed helper, or "".
func (s *csfState) resolve(fn *types.Func) string {
	fn = fn.Origin()
	if r, ok := s.memo[fn]; ok {
		return r
	}
	cf, local := s.decls[fn]
	if !local {
		pkg := fn.Pkg()
		if pkg == nil {
			return ""
		}
		if f, ok := s.p.Facts.Imported(pkg.Path(), funcKey(fn)); ok && !f.Blessed {
			return f.RawWrite
		}
		return ""
	}
	if cf.blessed != nil {
		cf.blessed.used = true
		s.memo[fn] = ""
		return ""
	}
	if s.stack[fn] {
		return ""
	}
	s.stack[fn] = true
	defer delete(s.stack, fn)

	reason := ""
	if len(cf.events) > 0 {
		reason = fmt.Sprintf("%s at %s", cf.events[0].desc, s.pos(cf.events[0].pos))
	} else {
		for _, call := range cf.calls {
			if r := s.resolve(call.fn); r != "" {
				reason = chain(call.fn, "writes raw", r)
				break
			}
		}
	}
	s.memo[fn] = reason
	return reason
}

func (s *csfState) pos(p token.Pos) string {
	return (&afState{p: s.p}).pos(p)
}

// collect gathers one function's raw-mutation events, temp-dir violations
// and outgoing static calls.
func (s *csfState) collect(fd funcDecl) *csfFunc {
	cf := &csfFunc{fd: fd}
	cf.blessed = s.p.funcDirective(fd.decl, dirBlessed)
	if fd.decl.Body == nil {
		return cf
	}
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(s.p.Info, call)
		if fn == nil {
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Name() == "os" && fn.Type().(*types.Signature).Recv() == nil {
			if fn.Name() == "CreateTemp" && len(call.Args) > 0 {
				if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Value == `""` {
					if d := s.p.ann.at(s.p.Fset.Position(call.Pos()), dirVolatile); d != nil {
						d.used = true
					} else {
						cf.temps = append(cf.temps, call.Pos())
					}
				}
			}
			if rawWriteFuncs[fn.Name()] {
				if d := s.p.ann.at(s.p.Fset.Position(call.Pos()), dirVolatile); d != nil {
					d.used = true
				} else {
					cf.events = append(cf.events, afEvent{call.Pos(), "os." + fn.Name()})
				}
				return true
			}
			return true
		}
		cf.calls = append(cf.calls, afCall{call.Pos(), fn})
		return true
	})
	return cf
}

// checkUnchecked flags discarded Sync/Rename/Close errors on the write paths
// of one function.
func (s *csfState) checkUnchecked(fd funcDecl) {
	if fd.decl.Body == nil {
		return
	}
	info := s.p.Info

	// Calls whose result is discarded: expression statements and deferred
	// calls.
	discarded := map[*ast.CallExpr]bool{}
	// Write handles: locals assigned from os.Create/os.OpenFile/os.CreateTemp.
	handles := map[types.Object]bool{}
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if c, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				discarded[c] = true
			}
		case *ast.DeferStmt:
			discarded[n.Call] = true
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok || len(n.Lhs) == 0 {
				return true
			}
			fn := staticCallee(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "os" {
				return true
			}
			switch fn.Name() {
			case "Create", "OpenFile", "CreateTemp":
				if id, ok := n.Lhs[0].(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						handles[obj] = true
					} else if obj := info.Uses[id]; obj != nil {
						handles[obj] = true
					}
				}
			}
		}
		return true
	})

	handleOf := func(call *ast.CallExpr) types.Object {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := info.Uses[id]
		if obj != nil && handles[obj] {
			return obj
		}
		return nil
	}

	checkedClose := map[types.Object]bool{}
	pendingClose := map[types.Object][]token.Pos{}
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(info, call)
		if fn == nil {
			return true
		}
		switch {
		case fn.Name() == "Rename" && fn.Pkg() != nil && fn.Pkg().Name() == "os":
			if discarded[call] {
				s.p.report(CrashSafe.Name, call.Pos(), dirVolatile,
					"os.Rename error discarded on a persistence write path")
			}
		case fn.Name() == "Sync" && methodOn(fn, "os", "File"):
			if discarded[call] {
				s.p.report(CrashSafe.Name, call.Pos(), dirVolatile,
					"Sync error discarded on a persistence write path: a failed fsync means the data may not be durable")
			}
		case fn.Name() == "Close" && methodOn(fn, "os", "File"):
			obj := handleOf(call)
			if obj == nil {
				return true
			}
			if discarded[call] {
				pendingClose[obj] = append(pendingClose[obj], call.Pos())
			} else {
				checkedClose[obj] = true
			}
		}
		return true
	})
	for obj, positions := range pendingClose {
		if checkedClose[obj] {
			continue // defer-close backstop alongside a checked Close
		}
		for _, pos := range positions {
			s.p.report(CrashSafe.Name, pos, dirVolatile,
				"Close error discarded on write handle %s: a buffered write error surfaces at Close", obj.Name())
		}
	}
}
