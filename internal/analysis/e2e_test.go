package analysis

// End-to-end test of the vet-tool protocol: build cmd/cadyvet and run it
// over the whole module exactly as CI does (`go vet -vettool=…`). A clean
// run means every //cadyvet annotation on the tree is in force, every
// waiver justified, and the unitchecker plumbing (vet.cfg parsing, export
// data import, fact files) works against the real toolchain.

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}

func TestVettoolModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets the whole module; skipped with -short")
	}
	root := moduleRoot(t)
	tool := filepath.Join(t.TempDir(), "cadyvet")
	build := exec.Command("go", "build", "-o", tool, "./cmd/cadyvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cadyvet: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	var buf bytes.Buffer
	vet.Stdout, vet.Stderr = &buf, &buf
	if err := vet.Run(); err != nil {
		t.Fatalf("go vet -vettool=cadyvet ./... reported findings: %v\n%s", err, buf.Bytes())
	}
}

// TestVettoolVersionHandshake checks the -V=full answer cmd/go uses to key
// its action cache: it must name the tool and carry a content-derived
// buildID so rebuilding the tool invalidates cached vet results.
func TestVettoolVersionHandshake(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool; skipped with -short")
	}
	root := moduleRoot(t)
	tool := filepath.Join(t.TempDir(), "cadyvet")
	build := exec.Command("go", "build", "-o", tool, "./cmd/cadyvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cadyvet: %v\n%s", err, out)
	}
	out, err := exec.Command(tool, "-V=full").Output()
	if err != nil {
		t.Fatalf("cadyvet -V=full: %v", err)
	}
	got := strings.TrimSpace(string(out))
	if !strings.HasPrefix(got, "cadyvet version ") || !strings.Contains(got, "buildID=") {
		t.Fatalf("cadyvet -V=full = %q, want \"cadyvet version … buildID=…\"", got)
	}
}
